package nfsrdma

// Tests of the public facade: the README / doc.go snippets must work as
// written, and the re-exported surface must stay wired to the internals.

import (
	"testing"
	"time"
)

func TestQuickstartSnippet(t *testing.T) {
	cluster := NewCluster(Config{
		Profile:   SolarisSDR(),
		Transport: TransportRDMA,
		Design:    DesignReadWrite,
		RegMode:   RegCache,
		CopyData:  true,
	})
	client := cluster.Clients[0]
	ok := false
	cluster.Start("app", func(p *Proc) {
		f, err := client.Create(p, "hello.txt")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		msg := "hello over simulated RDMA"
		buf := client.NewMaterializedBuffer(64)
		copy(buf.Bytes(), msg)
		if _, err := f.WriteAt(p, buf, 0, 0, len(msg), true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		rbuf := client.NewMaterializedBuffer(64)
		n, _, err := f.ReadAt(p, rbuf, 0, 0, len(msg), true)
		if err != nil || n != len(msg) || string(rbuf.Bytes()[:n]) != msg {
			t.Errorf("read: n=%d %q %v", n, rbuf.Bytes()[:n], err)
			return
		}
		ok = true
	})
	if end := cluster.Run(); end <= 0 {
		t.Error("no simulated time elapsed")
	}
	if !ok {
		t.Fatal("snippet did not complete")
	}
}

func TestPublicWorkloadEntryPoints(t *testing.T) {
	cluster := NewCluster(Config{
		Profile:   LinuxSDR(),
		Transport: TransportRDMA,
		Design:    DesignReadWrite,
		RegMode:   RegAllPhysical,
	})
	cluster.Start("io", func(p *Proc) {
		res, err := RunIOzone(p, cluster, IOzoneConfig{
			Threads: 2, FileSize: 2 << 20, RecordSize: 128 << 10,
		})
		if err != nil || res.Read.MBps <= 0 {
			t.Errorf("iozone via facade: %+v %v", res, err)
		}
		oltp, err := RunOLTP(p, cluster, OLTPConfig{
			Readers: 4, MeanIO: 64 << 10, FileSize: 8 << 20,
			Duration: 20 * time.Millisecond,
		})
		if err != nil || oltp.Ops == 0 {
			t.Errorf("oltp via facade: %+v %v", oltp, err)
		}
	})
	cluster.Run()
}

func TestTransportAndModeStringers(t *testing.T) {
	cases := map[string]string{
		TransportRDMA.String():    "rdma",
		TransportIPoIB.String():   "ipoib",
		TransportGigE.String():    "gige",
		DesignReadWrite.String():  "read-write",
		DesignReadRead.String():   "read-read",
		DesignReplyFetch.String(): "reply-fetch",
		RegDynamic.String():       "register",
		RegFMR.String():           "fmr",
		RegAllPhysical.String():   "all-physical",
		RegCache.String():         "cache",
		BackendTmpfs.String():     "tmpfs",
		BackendDisk.String():      "disk",
	}
	for got, want := range cases {
		if got != want {
			t.Errorf("stringer = %q, want %q", got, want)
		}
	}
}

func TestDeterministicAcrossRunsViaFacade(t *testing.T) {
	run := func() Time {
		cluster := NewCluster(Config{
			Profile: SolarisSDR(), Transport: TransportRDMA,
			Design: DesignReadRead, RegMode: RegFMR, Seed: 7,
		})
		cluster.Start("io", func(p *Proc) {
			RunIOzone(p, cluster, IOzoneConfig{Threads: 3, FileSize: 1 << 20, RecordSize: 64 << 10})
		})
		return cluster.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic end times: %v vs %v", a, b)
	}
}
