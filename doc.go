// Package nfsrdma is a from-scratch reproduction of "Designing NFS with
// RDMA for Security, Performance and Scalability" (Noronha, Chai, Talpey,
// Panda — ICPP 2007) as a Go library.
//
// Because Go has no mature RDMA verbs bindings and InfiniBand hardware is
// required by the original artifact, the repository substitutes a
// deterministic, discrete-event-simulated InfiniBand fabric
// (internal/ibsim) and runs the complete, real protocol stack on top of it:
//
//   - XDR and ONC RPC (internal/xdr, internal/oncrpc)
//   - the RPC/RDMA transport with the paper's header, chunk lists, inline
//     protocol, RPC long calls and long replies, in both the original
//     Read-Read design and the paper's proposed Read-Write design
//     (internal/rpcrdma)
//   - every §4.3 memory-registration strategy: dynamic registration,
//     Mellanox-style FMR, the all-physical global steering tag, and the
//     slab-backed buffer registration cache (internal/memreg)
//   - a full NFSv3 client and server (internal/nfs3) over a VFS with tmpfs
//     and page-cached RAID-0 back ends (internal/vfs)
//   - the NFS/TCP baselines over IPoIB and Gigabit Ethernet
//     (internal/tcpsim)
//
// This package is the public facade: it re-exports the cluster builder,
// client file API, workload generators and experiment harness so a
// downstream user never has to import the internal packages directly.
//
// # Quick start
//
//	cluster := nfsrdma.NewCluster(nfsrdma.Config{
//	    Profile:   nfsrdma.SolarisSDR(),
//	    Transport: nfsrdma.TransportRDMA,
//	    Design:    nfsrdma.DesignReadWrite,
//	    RegMode:   nfsrdma.RegCache,
//	    CopyData:  true,
//	})
//	client := cluster.Clients[0]
//	cluster.Start("app", func(p *nfsrdma.Proc) {
//	    f, _ := client.Create(p, "hello.txt")
//	    buf := client.NewMaterializedBuffer(64)
//	    copy(buf.Bytes(), "hello over simulated RDMA")
//	    f.WriteAt(p, buf, 0, 0, 25, true)
//	})
//	cluster.Run()
//
// All time is virtual: bandwidth figures are MB (10^6 bytes) per simulated
// second, CPU utilization comes from the simulated hosts' core models, and
// runs are bit-for-bit reproducible.
//
// The experiment harness (RunFigure5and6 … RunFigure10) regenerates every
// table and figure of the paper's evaluation; see EXPERIMENTS.md for the
// paper-vs-measured comparison and bench_test.go for the testing.B entry
// points.
package nfsrdma
