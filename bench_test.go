package nfsrdma

// One benchmark per table and figure of the paper's evaluation (§5). Each
// bench regenerates its experiment on the simulated testbed and reports the
// headline numbers as custom metrics (units are simulated MB/s, ops/s or
// CPU %). Absolute values are calibrated reproductions of the published
// *shapes*; EXPERIMENTS.md holds the full paper-vs-measured tables
// (regenerate with cmd/nfsrdma-experiments).
//
// The benches run at a reduced workload scale to keep wall-clock time
// reasonable; the experiment harness accepts Scale(1) for paper-size runs.

import (
	"testing"
)

const benchScale = ExperimentScale(8)

// BenchmarkTable1_PrimitiveProperties verifies and renders the
// communication-primitive property matrix (the semantics themselves are
// asserted by internal/ibsim's tests).
func BenchmarkTable1_PrimitiveProperties(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := Table1()
		if t == nil {
			b.Fatal("no table")
		}
	}
}

// BenchmarkFigure5_SolarisReadRRvsRW regenerates Fig. 5: IOzone Read
// bandwidth, Read-Read vs Read-Write, Solaris tmpfs, direct I/O.
func BenchmarkFigure5_SolarisReadRRvsRW(b *testing.B) {
	var rr8, rw8, rr1, rw1 float64
	for i := 0; i < b.N; i++ {
		r := RunFigure5and6(benchScale)
		for _, pt := range r.Points {
			if pt.RecordSize != 128<<10 {
				continue
			}
			switch {
			case pt.Threads == 8 && pt.Design == DesignReadRead:
				rr8 = pt.Result.Read.MBps
			case pt.Threads == 8 && pt.Design == DesignReadWrite:
				rw8 = pt.Result.Read.MBps
			case pt.Threads == 1 && pt.Design == DesignReadRead:
				rr1 = pt.Result.Read.MBps
			case pt.Threads == 1 && pt.Design == DesignReadWrite:
				rw1 = pt.Result.Read.MBps
			}
		}
	}
	b.ReportMetric(rr8, "RR-128K@8thr-MB/s")          // paper: ~375
	b.ReportMetric(rw8, "RW-128K@8thr-MB/s")          // paper: ~400
	b.ReportMetric(rw1/rr1*100-100, "RW-gain@1thr-%") // paper: ~47
	if rw8 <= rr8 {
		b.Errorf("Read-Write (%.0f) should beat Read-Read (%.0f) at saturation", rw8, rr8)
	}
}

// BenchmarkFigure6_SolarisWriteRRvsRW regenerates Fig. 6: IOzone Write
// bandwidth plus the client CPU divergence (Read-Read's copies vs the
// Read-Write zero-copy direct-I/O path).
func BenchmarkFigure6_SolarisWriteRRvsRW(b *testing.B) {
	var wrRR, wrRW, cpuRR, cpuRW float64
	for i := 0; i < b.N; i++ {
		r := RunFigure5and6(benchScale)
		for _, pt := range r.Points {
			if pt.Threads != 8 || pt.RecordSize != 128<<10 {
				continue
			}
			if pt.Design == DesignReadRead {
				wrRR = pt.Result.Write.MBps
				cpuRR = pt.Result.Read.ClientCPUPct
			} else {
				wrRW = pt.Result.Write.MBps
				cpuRW = pt.Result.Read.ClientCPUPct
			}
		}
	}
	b.ReportMetric(wrRR, "RR-write@8thr-MB/s")
	b.ReportMetric(wrRW, "RW-write@8thr-MB/s")
	b.ReportMetric(cpuRR, "RR-clientCPU-%") // paper: ~24
	b.ReportMetric(cpuRW, "RW-clientCPU-%") // paper: ~5
	if cpuRR <= cpuRW {
		b.Errorf("Read-Read client CPU (%.1f%%) should exceed Read-Write (%.1f%%)", cpuRR, cpuRW)
	}
}

// BenchmarkFigure7_SolarisRegistrationStrategies regenerates Fig. 7:
// dynamic registration vs FMR vs the buffer registration cache on Solaris.
func BenchmarkFigure7_SolarisRegistrationStrategies(b *testing.B) {
	var reg, fmr, cache, cacheW float64
	for i := 0; i < b.N; i++ {
		r := RunFigure7(benchScale)
		for _, pt := range r.Points {
			if pt.Threads != 8 {
				continue
			}
			switch pt.Mode {
			case RegDynamic:
				reg = pt.Result.Read.MBps
			case RegFMR:
				fmr = pt.Result.Read.MBps
			case RegCache:
				cache = pt.Result.Read.MBps
				cacheW = pt.Result.Write.MBps
			}
		}
	}
	b.ReportMetric(reg, "Register-read-MB/s")  // paper: ~350
	b.ReportMetric(fmr, "FMR-read-MB/s")       // paper: ~400
	b.ReportMetric(cache, "Cache-read-MB/s")   // paper: ~730
	b.ReportMetric(cacheW, "Cache-write-MB/s") // paper: ~515
	if !(cache > fmr && fmr > reg) {
		b.Errorf("ordering violated: cache %.0f, fmr %.0f, register %.0f", cache, fmr, reg)
	}
}

// BenchmarkFigure8_OLTPRegistrationSchemes regenerates Fig. 8: the
// FileBench-style OLTP mix under the registration schemes.
func BenchmarkFigure8_OLTPRegistrationSchemes(b *testing.B) {
	var regOps, fmrOps, cacheOps, cacheUS float64
	for i := 0; i < b.N; i++ {
		r := RunFigure8(benchScale)
		last := func(mode RegMode) (float64, float64) {
			pts := r.Series[mode]
			if len(pts) == 0 {
				return 0, 0
			}
			p := pts[len(pts)-1]
			return p.Result.OpsPerSec, p.Result.ClientUSPerOp
		}
		regOps, _ = last(RegDynamic)
		fmrOps, _ = last(RegFMR)
		cacheOps, cacheUS = last(RegCache)
	}
	b.ReportMetric(regOps, "Register-ops/s")
	b.ReportMetric(fmrOps, "FMR-ops/s")
	b.ReportMetric(cacheOps, "Cache-ops/s")
	b.ReportMetric(cacheUS, "Cache-uscpu/op")
	b.ReportMetric(cacheOps/regOps*100-100, "Cache-gain-%") // paper: up to ~50
	if cacheOps <= regOps {
		b.Errorf("cache (%.0f ops/s) should beat dynamic registration (%.0f ops/s)", cacheOps, regOps)
	}
}

// BenchmarkFigure9_LinuxRegistrationStrategies regenerates Fig. 9: on
// Linux, all-physical registration wins READ but loses WRITE to FMR
// (physical fragmentation pressing the IRD/ORD limit).
func BenchmarkFigure9_LinuxRegistrationStrategies(b *testing.B) {
	var regR, fmrR, physR, fmrW, physW float64
	for i := 0; i < b.N; i++ {
		r := RunFigure9(benchScale)
		for _, pt := range r.Points {
			if pt.Threads != 8 {
				continue
			}
			switch pt.Mode {
			case RegDynamic:
				regR = pt.Result.Read.MBps
			case RegFMR:
				fmrR = pt.Result.Read.MBps
				fmrW = pt.Result.Write.MBps
			case RegAllPhysical:
				physR = pt.Result.Read.MBps
				physW = pt.Result.Write.MBps
			}
		}
	}
	b.ReportMetric(regR, "Register-read-MB/s")
	b.ReportMetric(fmrR, "FMR-read-MB/s")
	b.ReportMetric(physR, "AllPhysical-read-MB/s") // paper: best, ~900
	b.ReportMetric(fmrW, "FMR-write-MB/s")
	b.ReportMetric(physW, "AllPhysical-write-MB/s") // paper: below FMR
	if physR <= fmrR || physR <= regR {
		b.Errorf("all-physical read (%.0f) should be best (fmr %.0f, register %.0f)", physR, fmrR, regR)
	}
	if physW >= fmrW {
		b.Errorf("all-physical write (%.0f) should lose to FMR (%.0f)", physW, fmrW)
	}
}

// BenchmarkFigure10a_MultiClient4GB regenerates Fig. 10(a): multi-client
// aggregate read bandwidth against the RAID back end with a 4 GB server.
func BenchmarkFigure10a_MultiClient4GB(b *testing.B) {
	var rdmaPeak, rdmaTail, ipoib, gige float64
	for i := 0; i < b.N; i++ {
		r := RunFigure10(benchScale, 4<<30, 5)
		for _, pt := range r.Series[TransportRDMA] {
			if pt.Result.AggregateReadMBps > rdmaPeak {
				rdmaPeak = pt.Result.AggregateReadMBps
			}
			rdmaTail = pt.Result.AggregateReadMBps
		}
		for _, pt := range r.Series[TransportIPoIB] {
			if pt.Result.AggregateReadMBps > ipoib {
				ipoib = pt.Result.AggregateReadMBps
			}
		}
		for _, pt := range r.Series[TransportGigE] {
			if pt.Result.AggregateReadMBps > gige {
				gige = pt.Result.AggregateReadMBps
			}
		}
	}
	b.ReportMetric(rdmaPeak, "RDMA-peak-MB/s") // paper: 883
	b.ReportMetric(rdmaTail, "RDMA-tail-MB/s") // paper: declines past 3 clients
	b.ReportMetric(ipoib, "IPoIB-peak-MB/s")   // paper: 326
	b.ReportMetric(gige, "GigE-peak-MB/s")     // paper: 107
	if rdmaPeak <= ipoib || ipoib <= gige {
		b.Errorf("ordering violated: rdma %.0f, ipoib %.0f, gige %.0f", rdmaPeak, ipoib, gige)
	}
	if rdmaTail >= rdmaPeak/2 {
		b.Errorf("RDMA should collapse once the working set overflows the cache (peak %.0f, tail %.0f)", rdmaPeak, rdmaTail)
	}
}

// BenchmarkFigure10b_MultiClient8GB regenerates Fig. 10(b): with 8 GB of
// server memory, RDMA sustains wire-class bandwidth to 7 clients while
// IPoIB saturates near 360 MB/s.
func BenchmarkFigure10b_MultiClient8GB(b *testing.B) {
	var rdmaMin, rdmaMax, ipoibMax float64
	for i := 0; i < b.N; i++ {
		r := RunFigure10(benchScale, 8<<30, 7)
		rdmaMin, rdmaMax = 1e18, 0
		for _, pt := range r.Series[TransportRDMA] {
			v := pt.Result.AggregateReadMBps
			if pt.Clients >= 2 {
				if v < rdmaMin {
					rdmaMin = v
				}
			}
			if v > rdmaMax {
				rdmaMax = v
			}
		}
		for _, pt := range r.Series[TransportIPoIB] {
			if v := pt.Result.AggregateReadMBps; v > ipoibMax {
				ipoibMax = v
			}
		}
	}
	b.ReportMetric(rdmaMax, "RDMA-peak-MB/s")      // paper: >900
	b.ReportMetric(rdmaMin, "RDMA-sustained-MB/s") // paper: >900 through 7 clients
	b.ReportMetric(ipoibMax, "IPoIB-peak-MB/s")    // paper: ~360
	if ipoibMax > rdmaMin {
		b.Errorf("RDMA sustained (%.0f) should stay above IPoIB (%.0f)", rdmaMin, ipoibMax)
	}
}

// BenchmarkSecurity_ExposureWindow quantifies §4.1: the count of remotely
// accessible server registrations per 100 READs under each design.
func BenchmarkSecurity_ExposureWindow(b *testing.B) {
	var rwExposed, rrExposed float64
	for i := 0; i < b.N; i++ {
		for _, design := range []Design{DesignReadWrite, DesignReadRead} {
			cluster := NewCluster(Config{
				Profile:   SolarisSDR(),
				Transport: TransportRDMA,
				Design:    design,
				RegMode:   RegDynamic,
			})
			cl := cluster.Clients[0]
			d := design
			cluster.Start("io", func(p *Proc) {
				f, err := cl.Create(p, "x")
				if err != nil {
					return
				}
				buf := cl.NewBuffer(128 << 10)
				f.WriteAt(p, buf, 0, 0, 128<<10, false)
				for j := 0; j < 100; j++ {
					f.ReadAt(p, buf, 0, 0, 128<<10, false)
				}
				exposed := float64(cluster.Server.Node.HCA.RemoteExposedEver())
				if d == DesignReadWrite {
					rwExposed = exposed
				} else {
					rrExposed = exposed
				}
			})
			cluster.Run()
		}
	}
	b.ReportMetric(rwExposed, "RW-exposed-MRs/100reads") // 0 by design
	b.ReportMetric(rrExposed, "RR-exposed-MRs/100reads") // ~100
	if rwExposed != 0 {
		b.Errorf("Read-Write design exposed %v server MRs", rwExposed)
	}
	if rrExposed == 0 {
		b.Error("Read-Read design should have exposed server MRs")
	}
}

// BenchmarkAblation_PhysicalContiguity sweeps the fragmentation that
// all-physical registration suffers — the mechanism behind Fig. 9(b).
func BenchmarkAblation_PhysicalContiguity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := AblationPhysicalContiguity(benchScale)
		if t == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkAblation_ORDLimit sweeps the IRD/ORD limit of §4.1.
func BenchmarkAblation_ORDLimit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := AblationORD(benchScale)
		if t == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkAblation_CacheBound sweeps the registration-cache slab bound —
// the static-limit pathology §4.3 warns about.
func BenchmarkAblation_CacheBound(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := AblationCacheBound(benchScale)
		if t == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkAblation_InterruptCost sweeps per-interrupt cost against the
// Read-Write design's interrupt-elimination gain.
func BenchmarkAblation_InterruptCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if AblationInterruptCost(benchScale) == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkAblation_InlineThreshold sweeps the inline threshold, exercising
// the long-call path and the squeezed-inline reply fallback.
func BenchmarkAblation_InlineThreshold(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if AblationInlineThreshold(benchScale) == nil {
			b.Fatal("no result")
		}
	}
}

// BenchmarkAblation_ClientCache measures the paper's motivating claim: an
// undersized client data cache cannot defend a client from server traffic.
func BenchmarkAblation_ClientCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if AblationClientCache(benchScale) == nil {
			b.Fatal("no result")
		}
	}
}
