// Command nfsrdma-experiments regenerates every table and figure of the
// paper's evaluation section and prints them as text or markdown tables.
//
// Usage:
//
//	nfsrdma-experiments [-scale N] [-markdown] [-only fig4,fig5,fig7,...]
//	                    [-workers N] [-bench-out BENCH.json] [-bench-note S]
//	                    [-trace TRACE.json]
//
// -scale divides workload sizes (1 = the paper's sizes; the default 4 keeps
// a full run to a few minutes of wall-clock time). Results are simulated
// time, so scale changes convergence detail, not the steady-state shape.
//
// Sweep points run as concurrent simulations, one worker per core by
// default; -workers pins the count (1 forces the sequential reference
// path). Results are deterministic and identical at any worker count.
//
// -bench-out runs the selected figures, times each sweep's wall clock, and
// writes a JSON benchmark record (see README.md, "Benchmark records") —
// the repo's perf trajectory is the series BENCH_1.json, BENCH_2.json, ...
// committed over time.
//
// -trace writes the fig4 run's structured event stream as a Chrome
// trace-event JSON file (load it in chrome://tracing or https://ui.perfetto.dev)
// and prints a per-layer span summary. It implies fig4 when -only does not
// already select it.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/des"
	"repro/internal/experiments"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// benchRecord is the schema of a BENCH_N.json file.
type benchRecord struct {
	Schema     int           `json:"schema"`
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	GOMAXPROCS int           `json:"gomaxprocs"`
	Scale      int           `json:"scale"`
	Workers    int           `json:"workers"`
	Note       string        `json:"note,omitempty"`
	Figures    []figureBench `json:"figures"`
}

// figureBench is one timed sweep. Points is the sweep's point count (0 =
// not a point sweep); bench-compare normalizes wall clock per point with
// it, so a sweep that legitimately grows (e.g. capacity going from two
// transfer designs to three) does not read as a perf regression.
type figureBench struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Points int     `json:"points,omitempty"`
}

func main() {
	scale := flag.Int("scale", 4, "workload scale divisor (1 = paper sizes)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	only := flag.String("only", "", "comma-separated subset: table1,fig4,fig5,fig6,fig7,fig8,fig9,fig10a,fig10b,ablations,recovery,capacity,muxcap,chaos,adversary")
	workers := flag.Int("workers", 0, "concurrent simulations per sweep (0 = one per core, 1 = sequential)")
	benchOut := flag.String("bench-out", "", "write a JSON wall-clock benchmark record to this file")
	benchNote := flag.String("bench-note", "", "free-form annotation stored in the benchmark record")
	traceOut := flag.String("trace", "", "write the fig4 run's Chrome trace-event JSON to this file (implies fig4)")
	telemetryPrefix := flag.String("telemetry", "", "per-point telemetry for capacity/muxcap: write <prefix>-<clients>-<mode>-<design>-<load>.csv series and print detector findings")
	telemetryIval := flag.Duration("telemetry-interval", 100*time.Microsecond, "virtual-time sampling period for -telemetry")
	flag.Parse()

	experiments.SetParallelism(*workers)

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			k = strings.TrimSpace(k)
			if k == "figure4" { // long-form alias
				k = "fig4"
			}
			want[k] = true
		}
	}
	if *traceOut != "" && len(want) > 0 {
		want["fig4"] = true
	}
	known := []string{"table1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "ablations", "recovery", "capacity", "muxcap", "chaos", "adversary"}
	for k := range want {
		found := false
		for _, ok := range known {
			if k == ok {
				found = true
			}
		}
		if !found {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", k, strings.Join(known, ", "))
			os.Exit(2)
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	emit := func(t *stats.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
	s := experiments.Scale(*scale)

	rec := &benchRecord{
		Schema:     1,
		Date:       time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Scale:      *scale,
		Workers:    experiments.Parallelism(),
		Note:       *benchNote,
	}
	timed := func(name string, fn func() int) {
		start := time.Now()
		points := fn()
		rec.Figures = append(rec.Figures, figureBench{
			Name:   name,
			WallMS: float64(time.Since(start).Microseconds()) / 1e3,
			Points: points,
		})
	}

	if sel("table1") {
		emit(experiments.Table1())
	}
	if sel("fig4") {
		timed("fig4", func() int {
			r := experiments.RunFigure4(s)
			emit(r.PerProc)
			emit(r.Transport)
			emit(r.Counters)
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					os.Exit(1)
				}
				events := r.Tracer.Events()
				if err := trace.WriteChrome(f, events); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					os.Exit(1)
				}
				if err := f.Close(); err != nil {
					fmt.Fprintf(os.Stderr, "trace: %v\n", err)
					os.Exit(1)
				}
				fmt.Fprintf(os.Stderr, "wrote %s (%d events, %d dropped)\n",
					*traceOut, len(events), r.Tracer.Dropped())
				fmt.Println(trace.Summary(events))
			}
			// Three-way anatomy: the same traced run under the other two
			// transfer designs, so the exchange structures (server Send
			// vs client pull vs doorbell fetch) line up side by side.
			for _, d := range []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReplyFetch} {
				rd := experiments.RunFigure4Design(s, d)
				emit(rd.PerProc)
				emit(rd.Transport)
				emit(rd.Counters)
			}
			return 3 // one anatomy cluster per design
		})
	}
	if sel("fig5") || sel("fig6") {
		timed("fig5+6", func() int {
			r := experiments.RunFigure5and6(s)
			if sel("fig5") {
				emit(r.Read)
			}
			if sel("fig6") {
				emit(r.Write)
			}
			emit(r.CPU)
			return len(r.Points)
		})
	}
	if sel("fig7") {
		timed("fig7", func() int {
			r := experiments.RunFigure7(s)
			emit(r.Read)
			emit(r.Write)
			emit(r.CPU)
			return 0
		})
	}
	if sel("fig8") {
		timed("fig8", func() int { emit(experiments.RunFigure8(s).Table); return 0 })
	}
	if sel("fig9") {
		timed("fig9", func() int {
			r := experiments.RunFigure9(s)
			emit(r.Read)
			emit(r.Write)
			return 0
		})
	}
	if sel("fig10a") {
		timed("fig10a", func() int { emit(experiments.RunFigure10(s, 4<<30, 8).Table); return 0 })
	}
	if sel("fig10b") {
		timed("fig10b", func() int { emit(experiments.RunFigure10(s, 8<<30, 8).Table); return 0 })
	}
	if sel("recovery") {
		timed("recovery", func() int {
			r := experiments.RunRecovery(s)
			emit(r.Table)
			return len(r.Points)
		})
	}
	if sel("chaos") {
		timed("chaos", func() int {
			r := experiments.RunChaos(s)
			emit(r.Table)
			return len(r.Points)
		})
	}
	if sel("adversary") {
		timed("adversary", func() int {
			r := experiments.RunAdversary(s)
			emit(r.Table)
			return len(r.Points)
		})
	}
	telIval := des.Duration(0)
	if *telemetryPrefix != "" {
		telIval = des.Duration(*telemetryIval)
	}
	if sel("capacity") {
		timed("capacity", func() int {
			r := experiments.RunCapacityWith(s, experiments.CapacityOptions{TelemetryInterval: telIval})
			emit(r.Curves)
			emit(r.Knee)
			for _, pt := range r.Points {
				name := fmt.Sprintf("%s-cap-%d-%s-%.0f", *telemetryPrefix,
					pt.Clients, pt.Design, pt.OfferedMBps)
				emitTelemetry(*telemetryPrefix, name, pt.Telemetry)
			}
			return len(r.Points)
		})
	}
	if sel("muxcap") {
		timed("muxcap", func() int {
			r := experiments.RunMuxCapacityWith(s, experiments.MuxCapacityOptions{TelemetryInterval: telIval})
			emit(r.Curves)
			emit(r.Memory)
			for _, pt := range r.Points {
				mode := "perconn"
				if pt.Multiplex {
					mode = "mux"
				}
				name := fmt.Sprintf("%s-mux-%d-%s-%s-%.0f", *telemetryPrefix,
					pt.Clients, mode, pt.Design, pt.OfferedMBps)
				emitTelemetry(*telemetryPrefix, name, pt.Telemetry)
			}
			return len(r.Points)
		})
	}
	if want["ablations"] {
		timed("ablations", func() int {
			emit(experiments.AblationORD(s))
			emit(experiments.AblationPhysicalContiguity(s))
			emit(experiments.AblationInlineThreshold(s))
			emit(experiments.AblationInterruptCost(s))
			emit(experiments.AblationCacheBound(s))
			emit(experiments.AblationClientCache(s))
			return 0
		})
	}

	if *benchOut != "" {
		data, err := json.MarshalIndent(rec, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
			os.Exit(1)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*benchOut, data, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "bench-out: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d timed sweeps)\n", *benchOut, len(rec.Figures))
	}
}

// emitTelemetry writes one sweep point's series to <name>.csv and prints its
// detector findings; a no-op when telemetry was not requested for the run.
func emitTelemetry(prefix, name string, r *telemetry.Report) {
	if prefix == "" || r == nil {
		return
	}
	path := name + ".csv"
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
		os.Exit(1)
	}
	err = r.WriteCSV(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: write %s: %v\n", path, err)
		os.Exit(1)
	}
	fmt.Printf("telemetry: %s (%d samples)", path, len(r.TimesS))
	if len(r.Findings) == 0 {
		fmt.Println("  no findings")
		return
	}
	fmt.Println()
	for _, fd := range r.Findings {
		fmt.Printf("  %s\n", fd)
	}
}
