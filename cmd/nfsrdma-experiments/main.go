// Command nfsrdma-experiments regenerates every table and figure of the
// paper's evaluation section and prints them as text or markdown tables.
//
// Usage:
//
//	nfsrdma-experiments [-scale N] [-markdown] [-only fig5,fig7,...]
//
// -scale divides workload sizes (1 = the paper's sizes; the default 4 keeps
// a full run to a few minutes of wall-clock time). Results are simulated
// time, so scale changes convergence detail, not the steady-state shape.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func main() {
	scale := flag.Int("scale", 4, "workload scale divisor (1 = paper sizes)")
	markdown := flag.Bool("markdown", false, "emit GitHub-flavoured markdown tables")
	only := flag.String("only", "", "comma-separated subset: table1,fig5,fig6,fig7,fig8,fig9,fig10a,fig10b,ablations")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	sel := func(k string) bool { return len(want) == 0 || want[k] }
	emit := func(t *stats.Table) {
		if *markdown {
			fmt.Println(t.Markdown())
		} else {
			fmt.Println(t)
		}
	}
	s := experiments.Scale(*scale)

	if sel("table1") {
		emit(experiments.Table1())
	}
	if sel("fig5") || sel("fig6") {
		r := experiments.RunFigure5and6(s)
		if sel("fig5") {
			emit(r.Read)
		}
		if sel("fig6") {
			emit(r.Write)
		}
		emit(r.CPU)
	}
	if sel("fig7") {
		r := experiments.RunFigure7(s)
		emit(r.Read)
		emit(r.Write)
		emit(r.CPU)
	}
	if sel("fig8") {
		emit(experiments.RunFigure8(s).Table)
	}
	if sel("fig9") {
		r := experiments.RunFigure9(s)
		emit(r.Read)
		emit(r.Write)
	}
	if sel("fig10a") {
		emit(experiments.RunFigure10(s, 4<<30, 8).Table)
	}
	if sel("fig10b") {
		emit(experiments.RunFigure10(s, 8<<30, 8).Table)
	}
	if want["ablations"] {
		emit(experiments.AblationORD(s))
		emit(experiments.AblationPhysicalContiguity(s))
		emit(experiments.AblationInlineThreshold(s))
		emit(experiments.AblationInterruptCost(s))
		emit(experiments.AblationCacheBound(s))
		emit(experiments.AblationClientCache(s))
	}
	if len(want) > 0 {
		known := []string{"table1", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10a", "fig10b", "ablations"}
		for k := range want {
			found := false
			for _, ok := range known {
				if k == ok {
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (known: %s)\n", k, strings.Join(known, ", "))
				os.Exit(2)
			}
		}
	}
}
