package main

import (
	"strings"
	"testing"
)

func rec(figs ...struct {
	Name   string
	WallMS float64
}) *benchRecord {
	r := &benchRecord{Schema: 1}
	for _, f := range figs {
		r.Figures = append(r.Figures, struct {
			Name   string  `json:"name"`
			WallMS float64 `json:"wall_ms"`
		}{f.Name, f.WallMS})
	}
	return r
}

type fig = struct {
	Name   string
	WallMS float64
}

func TestCompareMatchesAndFlagsRegressions(t *testing.T) {
	oldRec := rec(fig{"fig5+6", 1000}, fig{"fig7", 500}, fig{"gone", 50})
	newRec := rec(fig{"fig5+6", 1200}, fig{"fig7", 400}, fig{"added", 25})
	rows := compare(oldRec, newRec)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	if !rows[0].Both || rows[0].DeltaPct != 20 {
		t.Fatalf("fig5+6 row = %+v, want both with +20%%", rows[0])
	}
	if !rows[1].Both || rows[1].DeltaPct != -20 {
		t.Fatalf("fig7 row = %+v, want both with -20%%", rows[1])
	}
	if rows[2].Both || rows[2].Name != "gone" {
		t.Fatalf("removed row = %+v", rows[2])
	}
	if rows[3].Both || rows[3].Name != "added" {
		t.Fatalf("new row = %+v", rows[3])
	}

	if bad := regressions(rows, 10); len(bad) != 1 || bad[0] != "fig5+6" {
		t.Fatalf("regressions(10%%) = %v, want [fig5+6]", bad)
	}
	// At a looser threshold the +20% figure passes; removed/new rows never
	// gate regardless.
	if bad := regressions(rows, 25); len(bad) != 0 {
		t.Fatalf("regressions(25%%) = %v, want none", bad)
	}
}

func TestRenderShowsAllRowKinds(t *testing.T) {
	rows := compare(
		rec(fig{"a", 100}, fig{"gone", 10}),
		rec(fig{"a", 90}, fig{"new", 5}),
	)
	out := render(rows)
	for _, want := range []string{"a", "gone", "new", "removed", "-10.0%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
