package main

import (
	"strings"
	"testing"
)

func rec(figs ...benchFigure) *benchRecord {
	r := &benchRecord{Schema: 1}
	r.Figures = append(r.Figures, figs...)
	return r
}

type fig = benchFigure

func TestCompareMatchesAndFlagsRegressions(t *testing.T) {
	oldRec := rec(fig{Name: "fig5+6", WallMS: 1000}, fig{Name: "fig7", WallMS: 500}, fig{Name: "gone", WallMS: 50})
	newRec := rec(fig{Name: "fig5+6", WallMS: 1200}, fig{Name: "fig7", WallMS: 400}, fig{Name: "added", WallMS: 25})
	rows := compare(oldRec, newRec)
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4: %+v", len(rows), rows)
	}
	if !rows[0].Both || rows[0].DeltaPct != 20 {
		t.Fatalf("fig5+6 row = %+v, want both with +20%%", rows[0])
	}
	if !rows[1].Both || rows[1].DeltaPct != -20 {
		t.Fatalf("fig7 row = %+v, want both with -20%%", rows[1])
	}
	if rows[2].Both || rows[2].Name != "gone" {
		t.Fatalf("removed row = %+v", rows[2])
	}
	if rows[3].Both || rows[3].Name != "added" {
		t.Fatalf("new row = %+v", rows[3])
	}

	if bad := regressions(rows, 10); len(bad) != 1 || bad[0] != "fig5+6" {
		t.Fatalf("regressions(10%%) = %v, want [fig5+6]", bad)
	}
	// At a looser threshold the +20% figure passes; removed/new rows never
	// gate regardless.
	if bad := regressions(rows, 25); len(bad) != 0 {
		t.Fatalf("regressions(25%%) = %v, want none", bad)
	}
}

// TestComparePerPointNormalization: when both records carry sweep point
// counts, the gate normalizes wall clock per point — the capacity sweep
// growing from 32 two-design points to 48 three-design points at equal
// per-point cost must NOT read as a regression, while a genuine per-point
// slowdown still must.
func TestComparePerPointNormalization(t *testing.T) {
	oldRec := rec(
		fig{Name: "capacity", WallMS: 1000, Points: 32},
		fig{Name: "muxcap", WallMS: 600, Points: 8},
		fig{Name: "fig7", WallMS: 500}, // no counts: raw wall-clock gating
	)
	newRec := rec(
		fig{Name: "capacity", WallMS: 1500, Points: 48}, // same 31.25 ms/pt
		fig{Name: "muxcap", WallMS: 900, Points: 8},     // 75 → 112.5 ms/pt: real
		fig{Name: "fig7", WallMS: 500},
	)
	rows := compare(oldRec, newRec)
	if !rows[0].PerPoint || rows[0].DeltaPct != 0 {
		t.Fatalf("capacity row = %+v, want per-point delta 0", rows[0])
	}
	if !rows[1].PerPoint || rows[1].DeltaPct != 50 {
		t.Fatalf("muxcap row = %+v, want per-point delta +50%%", rows[1])
	}
	if rows[2].PerPoint {
		t.Fatalf("fig7 row = %+v, want raw (no point counts)", rows[2])
	}
	if bad := regressions(rows, 10); len(bad) != 1 || bad[0] != "muxcap" {
		t.Fatalf("regressions(10%%) = %v, want [muxcap]", bad)
	}
	// Mixed records (one side predates the points field) fall back to raw.
	mixed := compare(rec(fig{Name: "capacity", WallMS: 1000}), newRec)
	if mixed[0].PerPoint {
		t.Fatalf("mixed row = %+v, want raw fallback", mixed[0])
	}
	if mixed[0].DeltaPct != 50 {
		t.Fatalf("mixed delta = %.1f, want raw +50%%", mixed[0].DeltaPct)
	}
}

func TestRenderShowsAllRowKinds(t *testing.T) {
	rows := compare(
		rec(fig{Name: "a", WallMS: 100}, fig{Name: "gone", WallMS: 10}, fig{Name: "pts", WallMS: 100, Points: 2}),
		rec(fig{Name: "a", WallMS: 90}, fig{Name: "new", WallMS: 5}, fig{Name: "pts", WallMS: 220, Points: 4}),
	)
	out := render(rows)
	for _, want := range []string{"a", "gone", "new", "removed", "-10.0%", "+10.0%/pt"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render output missing %q:\n%s", want, out)
		}
	}
}
