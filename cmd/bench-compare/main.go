// Command bench-compare diffs two wall-clock benchmark records
// (BENCH_N.json files written by nfsrdma-experiments -bench-out) and prints
// a per-figure delta table. It exits non-zero when any figure present in
// both records slowed down by more than the threshold, so CI can gate on
// the repo's perf trajectory:
//
//	bench-compare -old BENCH_1.json -new BENCH_6.json [-threshold 10]
//
// A negative delta is a speedup. Figures present in only one record are
// listed but never gate — the figure set grows over time. When both
// records carry a figure's sweep point count (the capacity sweep went from
// two transfer designs to three, growing its grid 1.5x), the delta is
// computed on wall clock *per point* (marked /pt in the table), so a
// legitimately larger sweep does not read as a regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// benchRecord mirrors the schema written by nfsrdma-experiments -bench-out.
type benchRecord struct {
	Schema    int           `json:"schema"`
	Date      string        `json:"date"`
	GoVersion string        `json:"go_version"`
	Scale     int           `json:"scale"`
	Workers   int           `json:"workers"`
	Note      string        `json:"note,omitempty"`
	Figures   []benchFigure `json:"figures"`
}

// benchFigure is one timed sweep; Points is 0 in records written before
// the field existed.
type benchFigure struct {
	Name   string  `json:"name"`
	WallMS float64 `json:"wall_ms"`
	Points int     `json:"points,omitempty"`
}

// row is one line of the comparison table.
type row struct {
	Name     string
	OldMS    float64
	NewMS    float64
	DeltaPct float64 // (new-old)/old, percent; meaningless unless Both
	Both     bool
	PerPoint bool // DeltaPct is per sweep point (both records carry counts)
}

// compare matches figures by name in old-record order, appending new-only
// figures at the end.
func compare(oldRec, newRec *benchRecord) []row {
	newBy := map[string]benchFigure{}
	for _, f := range newRec.Figures {
		newBy[f.Name] = f
	}
	var rows []row
	seen := map[string]bool{}
	for _, f := range oldRec.Figures {
		r := row{Name: f.Name, OldMS: f.WallMS}
		if nf, ok := newBy[f.Name]; ok {
			r.NewMS = nf.WallMS
			r.Both = true
			oldV, newV := f.WallMS, nf.WallMS
			if f.Points > 0 && nf.Points > 0 {
				oldV /= float64(f.Points)
				newV /= float64(nf.Points)
				r.PerPoint = true
			}
			if oldV > 0 {
				r.DeltaPct = (newV - oldV) / oldV * 100
			}
		}
		seen[f.Name] = true
		rows = append(rows, r)
	}
	for _, f := range newRec.Figures {
		if !seen[f.Name] {
			rows = append(rows, row{Name: f.Name, NewMS: f.WallMS})
		}
	}
	return rows
}

// regressions returns the names of figures that slowed down past the
// threshold (in percent). Records from different machines or scales are
// the caller's problem — the table header shows both configurations.
func regressions(rows []row, thresholdPct float64) []string {
	var out []string
	for _, r := range rows {
		if r.Both && r.DeltaPct > thresholdPct {
			out = append(out, r.Name)
		}
	}
	return out
}

// render formats the comparison table.
func render(rows []row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %14s %14s %10s\n", "figure", "old ms", "new ms", "delta")
	for _, r := range rows {
		switch {
		case !r.Both && r.OldMS > 0:
			fmt.Fprintf(&b, "%-12s %14.1f %14s %10s\n", r.Name, r.OldMS, "-", "removed")
		case !r.Both:
			fmt.Fprintf(&b, "%-12s %14s %14.1f %10s\n", r.Name, "-", r.NewMS, "new")
		default:
			unit := "%"
			if r.PerPoint {
				unit = "%/pt"
			}
			fmt.Fprintf(&b, "%-12s %14.1f %14.1f %+9.1f%s\n", r.Name, r.OldMS, r.NewMS, r.DeltaPct, unit)
		}
	}
	return b.String()
}

func load(path string) (*benchRecord, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rec benchRecord
	if err := json.Unmarshal(data, &rec); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rec.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, rec.Schema)
	}
	return &rec, nil
}

func main() {
	oldPath := flag.String("old", "", "baseline BENCH_N.json")
	newPath := flag.String("new", "", "candidate BENCH_N.json")
	threshold := flag.Float64("threshold", 10, "max allowed slowdown, percent")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "usage: bench-compare -old BENCH_A.json -new BENCH_B.json [-threshold pct]")
		os.Exit(2)
	}
	oldRec, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	newRec, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Printf("old: %s (%s, scale %d, %d workers)\n", *oldPath, oldRec.Date, oldRec.Scale, oldRec.Workers)
	fmt.Printf("new: %s (%s, scale %d, %d workers)\n", *newPath, newRec.Date, newRec.Scale, newRec.Workers)
	if oldRec.Scale != newRec.Scale || oldRec.Workers != newRec.Workers {
		fmt.Println("note: records use different scale/worker settings; deltas are not like-for-like")
	}
	rows := compare(oldRec, newRec)
	fmt.Print(render(rows))
	if bad := regressions(rows, *threshold); len(bad) > 0 {
		fmt.Fprintf(os.Stderr, "FAIL: %s regressed more than %.0f%%\n", strings.Join(bad, ", "), *threshold)
		os.Exit(1)
	}
}
