// Command nfsrdma-bench runs a single IOzone-style measurement on a chosen
// configuration and prints the result — the quickest way to explore the
// design space by hand.
//
// Usage:
//
//	nfsrdma-bench -profile solaris-sdr -transport rdma -design read-write \
//	              -reg cache -threads 8 -record 131072 -file 134217728 -direct
//
// With -sweep N the command instead sweeps thread counts 1..N as
// independent simulations fanned across the machine's cores (see
// internal/experiments/runner) and prints one row per point; -workers pins
// the concurrency. The per-run inspection flags (-metrics, -latency,
// -trace, -tracelog) apply only to single runs.
//
// With -openloop the command runs the open-loop load generator instead of
// IOzone: -clients hosts each offer -offered/clients MB/s on a
// deterministic Poisson arrival process for -duration simulated
// milliseconds, reporting achieved throughput, drops, and latency
// quantiles. -shards enables the server's sharded SRQ dispatch path and
// -max-conns its admission control; per-shard SRQ counters are printed
// when sharding is on. -mux multiplexes every client onto one shared QP
// per shard (DCT-style endpoints, O(shards) server connection state) and
// -affinity pins shard reply processing to the completion CPU; the
// open-loop report then includes the server's receive-state bytes and the
// migration/local-wake split.
//
// -cpuprofile and -memprofile write Go pprof profiles of the simulator
// process itself (not the simulated machines) on clean exit — for finding
// host-side hot spots in large runs.
//
// -trace FILE records the run's structured virtual-time events in every
// layer (DES kernel, fabric, RPC/RDMA, ONC RPC, NFS) and writes them as a
// Chrome trace-event JSON file for chrome://tracing or ui.perfetto.dev,
// plus a per-layer span summary and transport latency histograms on stdout.
// -tracelog streams the older free-form protocol log lines to stderr.
//
// With -chaos the command runs one seeded chaos schedule (see
// internal/chaos) instead of IOzone: a fault schedule of QP errors, link
// flaps, and server crash/restart cycles generated from -chaos-seed is
// applied to a recovering cluster under the integrity workload, and the
// oracle's verdict is printed. On a failing run, -chaos-shrink bisects the
// schedule to a minimal reproducer. -chaos-broken-drc disables the server's
// duplicate request cache — the deliberately broken server the oracle is
// designed to catch.
//
// With -adversary the command runs the full attack suite (see
// internal/adversary) from a seeded attacker client against a live cluster
// instead of IOzone: rkey scanning, spoofed RDMA_DONE messages, forged
// client credentials against the DRC, and stale-rkey probes, reporting
// time-to-compromise, the server's defensive counters, and the integrity
// oracle's blast radius over the victim clients. -adversary-seed picks the
// run, -adversary-hardened flips the cluster to the hardened posture
// (randomized rkeys, FMR key rotation, stream-claim validation, peer-keyed
// DRC, misbehavior quarantine), and -adversary-faults composes a chaos
// fault schedule with the attack; -design, -reg, -shards and -mux select
// the surface under attack.
//
// -telemetry FILE samples per-layer gauges and counter rates on a
// virtual-time timer (period -telemetry-interval) during -openloop and
// -chaos runs and writes the series to FILE (.json for a JSON report,
// anything else CSV). -v prints the sparkline dashboard with detector
// findings — saturation-knee onset, starvation windows, SLO burn, and (for
// chaos runs) per-fault recovery times — after the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"repro/internal/adversary"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// telemetryFlags bundles the CLI's telemetry switches: sampling is enabled
// when any of them asks for it.
type telemetryFlags struct {
	out       string
	interval  time.Duration
	dashboard bool
}

func (t telemetryFlags) enabled() bool {
	return t.out != "" || t.dashboard || t.interval > 0
}

func (t telemetryFlags) options() telemetry.Options {
	return telemetry.Options{Interval: des.Duration(t.interval)}
}

// emit writes the report per the flags: -telemetry FILE gets CSV (or a full
// JSON report when FILE ends in .json), -v prints the dashboard.
func (t telemetryFlags) emit(r *telemetry.Report) {
	if r == nil {
		return
	}
	if t.out != "" {
		f, err := os.Create(t.out)
		if err != nil {
			fatal("telemetry: %v", err)
		}
		if strings.HasSuffix(t.out, ".json") {
			err = r.WriteJSON(f)
		} else {
			err = r.WriteCSV(f)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fatal("telemetry: write %s: %v", t.out, err)
		}
		fmt.Printf("telemetry written to %s\n", t.out)
	}
	if t.dashboard {
		fmt.Print(r.Dashboard())
	}
}

func main() {
	profileName := flag.String("profile", "solaris-sdr", "testbed profile: solaris-sdr, linux-sdr, linux-ddr")
	transport := flag.String("transport", "rdma", "transport: rdma, ipoib, gige")
	design := flag.String("design", "read-write", "bulk design: read-write, read-read, rfp (reply-fetch)")
	reg := flag.String("reg", "register", "registration mode: register, fmr, all-physical, cache")
	threads := flag.Int("threads", 1, "IOzone threads")
	record := flag.Int("record", 128<<10, "record size in bytes")
	fileSize := flag.Int64("file", 128<<20, "file size per thread in bytes")
	direct := flag.Bool("direct", false, "use the zero-copy direct-I/O read path")
	disk := flag.Bool("disk", false, "use the RAID disk back end instead of tmpfs")
	cacheGB := flag.Int("server-mem", 4, "server memory in GiB (disk back end)")
	metrics := flag.Bool("metrics", false, "print a full cluster metrics snapshot")
	latency := flag.Bool("latency", false, "print per-procedure latency histograms")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON file of the run")
	traceLog := flag.Bool("tracelog", false, "stream protocol trace lines to stderr (very verbose)")
	sweep := flag.Int("sweep", 0, "sweep thread counts 1..N in parallel instead of one run")
	workers := flag.Int("workers", 0, "concurrent simulations for -sweep (0 = one per core)")
	openLoop := flag.Bool("openloop", false, "run the open-loop load generator instead of IOzone")
	clients := flag.Int("clients", 1, "client hosts (-openloop)")
	offered := flag.Float64("offered", 600, "aggregate offered load in MB/s (-openloop)")
	durationMS := flag.Int("duration", 200, "measured window in simulated milliseconds (-openloop)")
	shards := flag.Int("shards", 0, "server dispatch shards with a shared receive queue (0 = per-connection path)")
	mux := flag.Bool("mux", false, "multiplex clients onto one shared QP per shard (implies -shards, default 8)")
	affinity := flag.Bool("affinity", false, "pin shard reply processing to the completion CPU (sharded dispatch)")
	maxConns := flag.Int("max-conns", 0, "server admission-control connection cap (0 = unlimited)")
	maxOut := flag.Int("max-outstanding", 32, "per-client in-flight cap before drops (-openloop)")
	adversaryRun := flag.Bool("adversary", false, "run the attacker client against a live cluster instead of IOzone")
	adversarySeed := flag.Uint64("adversary-seed", 1, "attacker/cluster seed (-adversary)")
	adversaryHardened := flag.Bool("adversary-hardened", false, "run the hardened security posture (-adversary)")
	adversaryFaults := flag.Int("adversary-faults", 0, "compose a chaos fault schedule with the attack (-adversary)")
	chaosRun := flag.Bool("chaos", false, "run one seeded chaos schedule instead of IOzone")
	chaosSeed := flag.Uint64("chaos-seed", 1, "fault-schedule seed (-chaos)")
	chaosFaults := flag.Int("chaos-faults", 4, "faults in the generated schedule (-chaos)")
	chaosMaxCrashes := flag.Int("chaos-max-crashes", 0, "cap on server crashes in the schedule (0 = generator default)")
	chaosShrink := flag.Bool("chaos-shrink", false, "on a failing chaos run, shrink the schedule to a minimal reproducer")
	chaosBrokenDRC := flag.Bool("chaos-broken-drc", false, "disable the server DRC (the broken server the oracle catches)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile of the simulator process to this file")
	memProfile := flag.String("memprofile", "", "write a pprof heap profile of the simulator process to this file")
	telemetryOut := flag.String("telemetry", "", "write telemetry time series to this file (.json for a JSON report, else CSV); -openloop and -chaos only")
	telemetryIval := flag.Duration("telemetry-interval", 0, "virtual-time sampling period (e.g. 50us); 0 with -telemetry/-v uses the 100µs default")
	verbose := flag.Bool("v", false, "print the telemetry sparkline dashboard and detector findings after the run")
	flag.Parse()

	tf := telemetryFlags{out: *telemetryOut, interval: *telemetryIval, dashboard: *verbose}

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fatal("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal("cpuprofile: %v", err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fatal("memprofile: %v", err)
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal("memprofile: %v", err)
			}
			f.Close()
		}()
	}

	cfg := core.Config{Backend: core.BackendTmpfs}
	switch *profileName {
	case "solaris-sdr":
		cfg.Profile = profiles.SolarisSDR()
	case "linux-sdr":
		cfg.Profile = profiles.LinuxSDR()
	case "linux-ddr":
		cfg.Profile = profiles.LinuxDDR()
	default:
		fatal("unknown profile %q", *profileName)
	}
	switch *transport {
	case "rdma":
		cfg.Transport = core.TransportRDMA
	case "ipoib":
		cfg.Transport = core.TransportIPoIB
	case "gige":
		cfg.Transport = core.TransportGigE
	default:
		fatal("unknown transport %q", *transport)
	}
	switch *design {
	case "read-write":
		cfg.Design = rpcrdma.ReadWrite
	case "read-read":
		cfg.Design = rpcrdma.ReadRead
	case "rfp", "reply-fetch":
		cfg.Design = rpcrdma.ReplyFetch
	default:
		fatal("unknown design %q", *design)
	}
	switch *reg {
	case "register":
		cfg.RegMode = memreg.Regular
	case "fmr":
		cfg.RegMode = memreg.FMR
	case "all-physical":
		cfg.RegMode = memreg.AllPhysical
	case "cache":
		cfg.RegMode = memreg.Cache
	default:
		fatal("unknown registration mode %q", *reg)
	}
	if *disk {
		cfg.Backend = core.BackendDisk
		cfg.PageCacheBytes = int64(*cacheGB)<<30 - 1<<30
	}
	cfg.ServerShards = *shards
	cfg.MaxConns = *maxConns
	cfg.Multiplex = *mux
	cfg.Affinity = *affinity
	if cfg.Multiplex && cfg.ServerShards == 0 {
		cfg.ServerShards = 8
	}

	if *adversaryRun {
		runAdversary(cfg, *adversarySeed, *adversaryHardened, *adversaryFaults)
		return
	}

	if *chaosRun {
		runChaos(cfg, *chaosSeed, *chaosFaults, *chaosMaxCrashes, *chaosShrink, *chaosBrokenDRC, tf)
		return
	}

	if *openLoop {
		cfg.Clients = *clients
		runOpenLoop(cfg, *record, *fileSize, *offered, *durationMS, *maxOut, tf)
		return
	}

	if *sweep > 0 {
		runSweep(cfg, *sweep, *workers, *record, *fileSize, *direct)
		return
	}

	cluster := core.NewCluster(cfg)
	if *traceLog {
		cluster.EnableTrace(os.Stderr)
	}
	var tracer *trace.Tracer
	if *traceOut != "" {
		tracer = cluster.EnableTracing(1 << 20)
	}
	if *latency {
		cluster.Start("latency-setup", func(p *des.Proc) {
			cluster.Clients[0].NFS.EnableLatencyStats(cluster.Sim)
		})
	}
	var res workload.IOzoneResult
	var err error
	cluster.Start("bench", func(p *des.Proc) {
		res, err = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
			Threads: *threads, FileSize: *fileSize, RecordSize: *record, DirectIO: *direct,
		})
	})
	end := cluster.Run()
	if err != nil {
		fatal("run failed: %v", err)
	}
	fmt.Printf("profile=%s transport=%v design=%v reg=%v threads=%d record=%d file=%d direct=%v\n",
		cfg.Profile.Name, cfg.Transport, cfg.Design, cfg.RegMode, *threads, *record, *fileSize, *direct)
	fmt.Printf("write: %8.1f MB/s   clientCPU %5.1f%%   serverCPU %5.1f%%\n",
		res.Write.MBps, res.Write.ClientCPUPct, res.Write.ServerCPUPct)
	fmt.Printf("read:  %8.1f MB/s   clientCPU %5.1f%%   serverCPU %5.1f%%   interrupts %d\n",
		res.Read.MBps, res.Read.ClientCPUPct, res.Read.ServerCPUPct, res.Read.Interrupts)
	fmt.Printf("simulated time: %v\n", end)
	if *metrics {
		cluster.Metrics(0).Write(os.Stdout)
	}
	if rdma := cluster.Server.RDMA; rdma != nil {
		fmt.Printf("server: requests=%d bulkReads=%d bulkWrites=%d longCalls=%d longReplies=%d\n",
			rdma.Requests, rdma.BulkReads, rdma.BulkWrites, rdma.LongCalls, rdma.LongReplies)
		st := cluster.Server.Mgr.Stats()
		fmt.Printf("server registrations: dynamic=%d fmrMaps=%d fmrFallbacks=%d cacheHits=%d cacheMisses=%d\n",
			st.Registers, st.FMRMaps, st.FMRFallback, st.CacheHits, st.CacheMisses)
	}
	if *latency {
		fmt.Println("per-procedure latency:")
		for proc := uint32(0); proc <= nfs3.ProcCommit; proc++ {
			h := cluster.Clients[0].NFS.Latency(proc)
			if h == nil || h.Count() == 0 {
				continue
			}
			fmt.Printf("  %-12s %s\n", nfs3.ProcName(proc), h.Summary())
		}
	}
	if tracer != nil {
		f, ferr := os.Create(*traceOut)
		if ferr != nil {
			fatal("trace: %v", ferr)
		}
		events := tracer.Events()
		if werr := trace.WriteChrome(f, events); werr != nil {
			fatal("trace: %v", werr)
		}
		if cerr := f.Close(); cerr != nil {
			fatal("trace: %v", cerr)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (%d events, %d dropped)\n", *traceOut, len(events), tracer.Dropped())
		fmt.Println(trace.Summary(events))
		for _, nh := range tracer.Histograms() {
			fmt.Printf("  %-16s %s\n", nh.Name, nh.Hist.Summary())
		}
	}
}

// runSweep fans thread counts 1..n out across the runner's worker pool,
// each point an independent cluster, and prints the results in thread
// order (results are keyed by point index, so the table is deterministic
// at any worker count).
func runSweep(cfg core.Config, n, workers, record int, fileSize int64, direct bool) {
	if workers <= 0 {
		workers = runner.Workers()
	}
	results := runner.MapWorkers(workers, n, func(i int) workload.IOzoneResult {
		cluster := core.NewCluster(cfg)
		var res workload.IOzoneResult
		var err error
		cluster.Start("bench", func(p *des.Proc) {
			res, err = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: i + 1, FileSize: fileSize, RecordSize: record, DirectIO: direct,
			})
		})
		cluster.Run()
		if err != nil {
			fatal("sweep point %d failed: %v", i+1, err)
		}
		return res
	})
	fmt.Printf("profile=%s transport=%v design=%v reg=%v record=%d file=%d direct=%v workers=%d\n",
		cfg.Profile.Name, cfg.Transport, cfg.Design, cfg.RegMode, record, fileSize, direct, workers)
	t := stats.NewTable("", "threads", "write MB/s", "read MB/s", "client CPU %", "server CPU %")
	for i, res := range results {
		t.AddRow(i+1, res.Write.MBps, res.Read.MBps, res.Read.ClientCPUPct, res.Read.ServerCPUPct)
	}
	fmt.Print(t)
}

// runOpenLoop drives every client with a deterministic Poisson arrival
// process at the given aggregate offered load and prints throughput,
// latency quantiles, and — when the server runs sharded dispatch — the
// per-shard SRQ counters.
func runOpenLoop(cfg core.Config, record int, fileSize int64, offeredMBps float64, durationMS, maxOut int, tf telemetryFlags) {
	cluster := core.NewCluster(cfg)
	if tf.enabled() {
		cluster.EnableTelemetry(tf.options())
	}
	var res workload.OpenLoopResult
	var err error
	cluster.Start("openloop", func(p *des.Proc) {
		res, err = workload.RunOpenLoop(p, cluster, workload.OpenLoopConfig{
			RecordSize:          record,
			FileSize:            fileSize,
			OfferedPerClientBps: offeredMBps * 1e6 / float64(cfg.Clients),
			Duration:            des.Duration(durationMS) * des.Duration(1e6),
			MaxOutstanding:      maxOut,
		})
	})
	cluster.Run()
	if err != nil {
		fatal("open-loop run failed: %v", err)
	}
	fmt.Printf("profile=%s transport=%v design=%v reg=%v clients=%d record=%d shards=%d mux=%v affinity=%v\n",
		cfg.Profile.Name, cfg.Transport, cfg.Design, cfg.RegMode, cfg.Clients, record,
		cfg.ServerShards, cfg.Multiplex, cfg.Affinity)
	fmt.Printf("offered %8.1f MB/s   achieved %8.1f MB/s   serverCPU %5.1f%%\n",
		res.OfferedMBps, res.AchievedMBps, res.ServerCPUPct)
	fmt.Printf("issued=%d completed=%d dropped=%d errors=%d\n",
		res.Issued, res.Completed, res.Dropped, res.Errors)
	fmt.Printf("latency µs: p50 %.1f  p95 %.1f  p99 %.1f  max %.1f\n",
		res.P50, res.P95, res.P99, res.Latency.Max())
	fmt.Printf("server recv state: %d bytes   completion handoffs: %d migrated, %d local\n",
		res.ServerRecvStateBytes, res.ServerMigrations, res.ServerLocalWakes)
	if rdma := cluster.Server.RDMA; rdma != nil {
		for _, sh := range rdma.ShardStats() {
			extra := ""
			if cfg.Multiplex {
				extra = fmt.Sprintf(" endpoints=%d muxSlots=%d", sh.Endpoints, sh.MuxSlots)
			}
			fmt.Printf("shard %d: conns=%d requests=%d maxQ=%d srqPosted=%d srqConsumed=%d limitEvents=%d starved=%d%s\n",
				sh.Shard, sh.Conns, sh.Requests, sh.MaxQueueDepth,
				sh.SRQPosted, sh.SRQConsumed, sh.SRQLimitEvents, sh.SRQStarved, extra)
		}
	}
	tf.emit(cluster.TelemetryReport())
}

// runAdversary runs the full attack suite from one seeded attacker client
// against a live cluster and prints the run's security verdict:
// time-to-compromise (censored to the run end if nothing landed), the
// per-attack counters, the server's defensive counters, and the integrity
// oracle's blast radius over the victim clients. Exit status 1 when any
// victim's data was corrupted.
func runAdversary(cfg core.Config, seed uint64, hardened bool, faults int) {
	res := adversary.Run(adversary.Config{
		Seed:      seed,
		Design:    cfg.Design,
		RegMode:   cfg.RegMode,
		Shards:    cfg.ServerShards,
		Multiplex: cfg.Multiplex,
		Hardened:  hardened,
		Attacks:   adversary.AttackAll,
		Faults:    faults,
	})
	fmt.Printf("adversary seed=%d design=%v reg=%v mux=%v hardened=%v faults=%d\n",
		seed, cfg.Design, cfg.RegMode, cfg.Multiplex, hardened, res.FaultCount)
	if res.Compromised {
		fmt.Printf("compromised at t=%v via %s\n", time.Duration(res.TimeToCompromise), res.CompromiseVia)
	} else {
		fmt.Printf("not compromised (time-to-compromise censored at %v)\n", time.Duration(res.FinalTime))
	}
	fmt.Printf("scan: probes=%d hits=%d writeHits=%d reconnects=%d   stale: sent=%d hits=%d\n",
		res.Probes, res.ProbeHits, res.WriteHits, res.Reconnects, res.StaleSent, res.StaleHits)
	fmt.Printf("spoof: sent=%d   forge: sent=%d failed=%d\n", res.SpoofSent, res.ForgeSent, res.ForgeFails)
	fmt.Printf("server: doneRejected=%d spoofDrops=%d crossClientFrees=%d quarantines=%d\n",
		res.DoneRejected, res.SpoofDrops, res.CrossClientFrees, res.Quarantines)
	fmt.Printf("victims: writesAcked=%d reads=%d reconnects=%d crashes=%d blastRadius=%d\n",
		res.Load.WritesAcked, res.Load.ReadsChecked, res.VictimRecon, res.Crashes, res.BlastRadius)
	fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	if len(res.Violations) == 0 {
		fmt.Println("verdict: victims CLEAN (integrity oracle satisfied)")
		return
	}
	fmt.Printf("verdict: victims CORRUPTED (%d violations)\n", len(res.Violations))
	for _, v := range res.Violations {
		fmt.Printf("  oracle: %s\n", v)
	}
	os.Exit(1)
}

// runChaos executes one seeded chaos schedule, prints the schedule and the
// oracle's verdict, and — with shrink on a failure — bisects the schedule to
// a minimal reproducer. The exit status is the verdict: 0 clean, 1 failed.
func runChaos(cfg core.Config, seed uint64, faults, maxCrashes int, shrink, brokenDRC bool, tf telemetryFlags) {
	ccfg := chaos.Config{
		Seed:          seed,
		Design:        cfg.Design,
		Shards:        cfg.ServerShards,
		Multiplex:     cfg.Multiplex,
		Affinity:      cfg.Affinity,
		Faults:        faults,
		MaxCrashes:    maxCrashes,
		DisableDRC:    brokenDRC,
		TraceCapacity: 1 << 20,
	}
	if tf.enabled() {
		ccfg.TelemetryInterval = des.Duration(tf.interval)
		if ccfg.TelemetryInterval <= 0 {
			ccfg.TelemetryInterval = des.Duration(telemetry.DefaultInterval)
		}
	}
	res := chaos.Run(ccfg)
	fmt.Printf("chaos seed=%d design=%v shards=%d faults=%d maxCrashes=%d brokenDRC=%v\n",
		seed, cfg.Design, cfg.ServerShards, faults, maxCrashes, brokenDRC)
	fmt.Printf("schedule: %v\n", res.Schedule)
	fmt.Printf("crashes=%d reconnects=%d replays=%d timeouts=%d retrans=%d drcHits=%d drcMisses=%d\n",
		res.Crashes, res.Reconnects, res.Replays, res.Timeouts, res.Retransmits, res.DRCHits, res.DRCMisses)
	fmt.Printf("writes acked=%d failed=%d   oracle reads=%d   renames ok=%d enoent=%d failed=%d\n",
		res.Load.WritesAcked, res.Load.WritesFailed, res.OracleReads,
		res.Load.RenamesOK, res.Load.RenameENOENTs, res.Load.RenamesFailed)
	fmt.Printf("fingerprint: %s\n", res.Fingerprint)
	tf.emit(res.Report)
	if !res.Failed() {
		fmt.Println("verdict: CLEAN (oracle and trace invariants satisfied)")
		return
	}
	fmt.Println("verdict: FAILED")
	for _, v := range res.Violations {
		fmt.Printf("  oracle: %s\n", v)
	}
	for _, v := range res.InvariantViolations {
		fmt.Printf("  invariant: %s\n", v)
	}
	if shrink {
		fmt.Println("shrinking...")
		minimal := chaos.Shrink(res.Schedule, func(s chaos.Schedule) bool {
			c := ccfg
			c.Schedule = &s
			return len(chaos.Run(c).Violations) > 0
		})
		fmt.Printf("minimal reproducer (%d faults): %v\n", len(minimal.Faults), minimal)
		extra := ""
		if maxCrashes > 0 {
			extra += fmt.Sprintf(" -chaos-max-crashes %d", maxCrashes)
		}
		if brokenDRC {
			extra += " -chaos-broken-drc"
		}
		fmt.Printf("replay with: nfsrdma-bench -chaos -chaos-seed %d -chaos-faults %d%s -design %s -chaos-shrink\n",
			seed, faults, extra, cfg.Design)
	}
	os.Exit(1)
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
