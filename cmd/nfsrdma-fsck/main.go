// Command nfsrdma-fsck is the stack's integrity checker: it drives a
// randomized mixed workload (creates, writes at random offsets, reads,
// renames, removes) against every transport × design × registration-mode
// combination with real data movement enabled, maintaining a reference
// model and verifying byte-exact agreement. A clean exit means every wire
// path in the repository moved data correctly.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

type refFile struct {
	name string
	data []byte
}

func main() {
	ops := flag.Int("ops", 400, "operations per configuration")
	seed := flag.Uint64("seed", 1, "workload seed")
	flag.Parse()

	type combo struct {
		tr     core.Transport
		design rpcrdma.Design
		mode   memreg.Mode
	}
	var combos []combo
	for _, mode := range []memreg.Mode{memreg.Regular, memreg.FMR, memreg.AllPhysical, memreg.Cache} {
		combos = append(combos, combo{core.TransportRDMA, rpcrdma.ReadWrite, mode})
		combos = append(combos, combo{core.TransportRDMA, rpcrdma.ReadRead, mode})
		combos = append(combos, combo{core.TransportRDMA, rpcrdma.ReplyFetch, mode})
	}
	combos = append(combos, combo{core.TransportIPoIB, rpcrdma.ReadWrite, memreg.Regular})
	combos = append(combos, combo{core.TransportGigE, rpcrdma.ReadWrite, memreg.Regular})

	failures := 0
	for _, c := range combos {
		label := fmt.Sprintf("%v/%v/%v", c.tr, c.design, c.mode)
		if err := fsck(c.tr, c.design, c.mode, *ops, *seed); err != nil {
			fmt.Printf("FAIL %-35s %v\n", label, err)
			failures++
		} else {
			fmt.Printf("ok   %-35s %d ops verified\n", label, *ops)
		}
	}
	// The client data cache path (cached reads/writes, write-back, flush)
	// against the same reference model.
	if err := fsckCached(*ops, *seed); err != nil {
		fmt.Printf("FAIL %-35s %v\n", "rdma/read-write/cache+datacache", err)
		failures++
	} else {
		fmt.Printf("ok   %-35s %d ops verified\n", "rdma/read-write/cache+datacache", *ops)
	}
	if failures > 0 {
		os.Exit(1)
	}
}

// fsckCached drives the client data-cache API (ReadAtCached/WriteAtCached/
// Flush) with randomized interleavings of cached and uncached access,
// verifying against the same reference model.
func fsckCached(ops int, seed uint64) error {
	cluster := core.NewCluster(core.Config{
		Profile:   profiles.LinuxSDR(),
		Transport: core.TransportRDMA,
		Design:    rpcrdma.ReadWrite,
		RegMode:   memreg.Cache,
		CopyData:  true,
		Seed:      seed,
	})
	cl := cluster.Clients[0]
	var failure error
	cluster.Start("fsck-cached", func(p *des.Proc) {
		cl.EnableDataCache(1 << 20) // small: force eviction traffic
		rng := des.NewRand(seed*131 + 9)
		f, err := cl.Create(p, "cached")
		if err != nil {
			failure = err
			return
		}
		var ref []byte
		grow := func(end int) {
			if len(ref) < end {
				g := make([]byte, end)
				copy(g, ref)
				ref = g
			}
		}
		for i := 0; i < ops; i++ {
			off := rng.Intn(512 << 10)
			n := 1 + rng.Intn(128<<10)
			switch rng.Intn(4) {
			case 0: // cached write
				data := make([]byte, n)
				for j := range data {
					data[j] = byte(rng.Uint32())
				}
				if _, err := f.WriteAtCached(p, data, int64(off)); err != nil {
					failure = fmt.Errorf("cached write: %w", err)
					return
				}
				grow(off + n)
				copy(ref[off:off+n], data)
			case 1: // flush then uncached verify
				if err := f.Flush(p); err != nil {
					failure = fmt.Errorf("flush: %w", err)
					return
				}
				if len(ref) == 0 {
					continue
				}
				buf := cl.NewMaterializedBuffer(len(ref))
				got, _, err := f.ReadAt(p, buf, 0, 0, len(ref), false)
				if err != nil {
					failure = fmt.Errorf("verify read: %w", err)
					return
				}
				for j := 0; j < got; j++ {
					if buf.Bytes()[j] != ref[j] {
						failure = fmt.Errorf("server data mismatch at %d after flush", j)
						return
					}
				}
			default: // cached read
				if len(ref) == 0 {
					continue
				}
				if off >= len(ref) {
					off = rng.Intn(len(ref))
				}
				if off+n > len(ref) {
					n = len(ref) - off
				}
				dst := make([]byte, n)
				got, _, err := f.ReadAtCached(p, dst, int64(off))
				if err != nil {
					failure = fmt.Errorf("cached read: %w", err)
					return
				}
				for j := 0; j < got; j++ {
					if dst[j] != ref[off+j] {
						failure = fmt.Errorf("cached read mismatch at %d+%d", off, j)
						return
					}
				}
			}
		}
	})
	cluster.Run()
	return failure
}

func fsck(tr core.Transport, design rpcrdma.Design, mode memreg.Mode, ops int, seed uint64) error {
	cluster := core.NewCluster(core.Config{
		Profile:   profiles.LinuxSDR(),
		Transport: tr,
		Design:    design,
		RegMode:   mode,
		CopyData:  true,
		Seed:      seed,
	})
	cl := cluster.Clients[0]
	var failure error
	cluster.Start("fsck", func(p *des.Proc) {
		rng := des.NewRand(seed*77 + 5)
		var files []*refFile
		handles := map[string]*core.File{}
		check := func(err error, what string) bool {
			if err != nil && failure == nil {
				failure = fmt.Errorf("%s: %w", what, err)
			}
			return err == nil
		}
		for i := 0; i < ops; i++ {
			switch op := rng.Intn(10); {
			case op < 3 || len(files) == 0: // create
				name := fmt.Sprintf("f%04d", len(files))
				f, err := cl.Create(p, name)
				if !check(err, "create") {
					return
				}
				files = append(files, &refFile{name: name})
				handles[name] = f
			case op < 7: // write random extent
				rf := files[rng.Intn(len(files))]
				off := rng.Intn(256 << 10)
				n := 1 + rng.Intn(192<<10)
				buf := cl.NewMaterializedBuffer(n)
				for j := range buf.Bytes() {
					buf.Bytes()[j] = byte(rng.Uint32())
				}
				_, err := handles[rf.name].WriteAt(p, buf, 0, int64(off), n, rng.Intn(2) == 0)
				if !check(err, "write") {
					return
				}
				if len(rf.data) < off+n {
					grown := make([]byte, off+n)
					copy(grown, rf.data)
					rf.data = grown
				}
				copy(rf.data[off:off+n], buf.Bytes())
			default: // read back and verify an extent
				rf := files[rng.Intn(len(files))]
				if len(rf.data) == 0 {
					continue
				}
				off := rng.Intn(len(rf.data))
				n := 1 + rng.Intn(len(rf.data)-off)
				buf := cl.NewMaterializedBuffer(n)
				got, _, err := handles[rf.name].ReadAt(p, buf, 0, int64(off), n, rng.Intn(2) == 0)
				if !check(err, "read") {
					return
				}
				want := rf.data[off : off+got]
				for j := 0; j < got; j++ {
					if buf.Bytes()[j] != want[j] {
						failure = fmt.Errorf("data mismatch in %s at %d+%d", rf.name, off, j)
						return
					}
				}
			}
		}
		// Final full verification pass.
		for _, rf := range files {
			if len(rf.data) == 0 {
				continue
			}
			buf := cl.NewMaterializedBuffer(len(rf.data))
			got, _, err := handles[rf.name].ReadAt(p, buf, 0, 0, len(rf.data), false)
			if !check(err, "final read") {
				return
			}
			for j := 0; j < got; j++ {
				if buf.Bytes()[j] != rf.data[j] {
					failure = fmt.Errorf("final mismatch in %s at %d", rf.name, j)
					return
				}
			}
		}
	})
	cluster.Run()
	return failure
}
