// Package stats collects experiment metrics and renders them as aligned
// text tables, the form in which benchmark harnesses report the paper's
// figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counters is a simple named-counter set. It is safe for concurrent use so
// both simulation code (single-threaded) and test assertions can share it.
// Hot names can be pre-registered with Slot, which moves them onto a
// lock-free atomic fast path consulted by Add/Inc/Get before the mutex.
type Counters struct {
	mu    sync.Mutex
	m     map[string]int64
	slots atomic.Value // map[string]*Slot, copy-on-write under mu
}

// Slot is a single pre-registered counter bound to an atomic cell, for call
// sites hot enough that taking the set's mutex per increment would serialize
// otherwise-independent work. Obtain one with Counters.Slot and keep it.
type Slot struct {
	v atomic.Int64
	// touched mirrors map-key existence in the mutex path: a slot appears
	// in Snapshot only once something has written it, so pre-registering a
	// name that never fires does not change the snapshot.
	touched atomic.Bool
}

// Add increments the slot by delta.
func (s *Slot) Add(delta int64) {
	s.v.Add(delta)
	if !s.touched.Load() {
		s.touched.Store(true)
	}
}

// Inc increments the slot by one.
func (s *Slot) Inc() { s.Add(1) }

// Load returns the slot's current value.
func (s *Slot) Load() int64 { return s.v.Load() }

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// slotMap returns the current slot registry, nil when nothing registered.
func (c *Counters) slotMap() map[string]*Slot {
	m, _ := c.slots.Load().(map[string]*Slot)
	return m
}

// Slot pre-registers name on the atomic fast path and returns its slot.
// Any value the name accumulated through the mutex path migrates into the
// slot; subsequent Add/Inc/Get calls for the name are lock-free. Safe to
// call repeatedly — the same slot comes back.
func (c *Counters) Slot(name string) *Slot {
	c.mu.Lock()
	defer c.mu.Unlock()
	old := c.slotMap()
	if s := old[name]; s != nil {
		return s
	}
	next := make(map[string]*Slot, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	s := &Slot{}
	if v, ok := c.m[name]; ok {
		s.v.Store(v)
		s.touched.Store(true)
		delete(c.m, name)
	}
	next[name] = s
	c.slots.Store(next)
	return s
}

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	if s := c.slotMap()[name]; s != nil {
		s.Add(delta)
		return
	}
	c.mu.Lock()
	// Re-check under the mutex: Slot may have migrated the name between
	// the lock-free probe and acquiring the lock.
	if s := c.slotMap()[name]; s != nil {
		c.mu.Unlock()
		s.Add(delta)
		return
	}
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of the named counter.
func (c *Counters) Get(name string) int64 {
	if s := c.slotMap()[name]; s != nil {
		return s.Load()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if s := c.slotMap()[name]; s != nil {
		return s.Load()
	}
	return c.m[name]
}

// Reset zeroes every counter. Registered slots stay registered (call sites
// hold pointers to them) but read as absent until written again.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.m = make(map[string]int64)
	for _, s := range c.slotMap() {
		s.v.Store(0)
		s.touched.Store(false)
	}
	c.mu.Unlock()
}

// Snapshot returns a sorted copy of all counters, merging the mutex map and
// the atomic slots; names that were never written do not appear, whether or
// not a slot was pre-registered for them.
func (c *Counters) Snapshot() []CounterValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	slots := c.slotMap()
	out := make([]CounterValue, 0, len(c.m)+len(slots))
	for k, v := range c.m {
		out = append(out, CounterValue{Name: k, Value: v})
	}
	for k, s := range slots {
		if s.touched.Load() {
			out = append(out, CounterValue{Name: k, Value: s.Load()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value int64
}

// Table is a simple text table builder used for experiment reports.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool // column alignment
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v, and float64 values are
// rendered with one decimal place.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// MBps converts (bytes, seconds) to megabytes per second (1 MB = 10^6 bytes,
// matching the paper's units).
func MBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / seconds
}
