// Package stats collects experiment metrics and renders them as aligned
// text tables, the form in which benchmark harnesses report the paper's
// figures.
package stats

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Counters is a simple named-counter set. It is safe for concurrent use so
// both simulation code (single-threaded) and test assertions can share it.
type Counters struct {
	mu sync.Mutex
	m  map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters { return &Counters{m: make(map[string]int64)} }

// Add increments the named counter by delta.
func (c *Counters) Add(name string, delta int64) {
	c.mu.Lock()
	c.m[name] += delta
	c.mu.Unlock()
}

// Inc increments the named counter by one.
func (c *Counters) Inc(name string) { c.Add(name, 1) }

// Get returns the current value of the named counter.
func (c *Counters) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.m[name]
}

// Reset zeroes every counter.
func (c *Counters) Reset() {
	c.mu.Lock()
	c.m = make(map[string]int64)
	c.mu.Unlock()
}

// Snapshot returns a sorted copy of all counters.
func (c *Counters) Snapshot() []CounterValue {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]CounterValue, 0, len(c.m))
	for k, v := range c.m {
		out = append(out, CounterValue{Name: k, Value: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// CounterValue is one named counter reading.
type CounterValue struct {
	Name  string
	Value int64
}

// Table is a simple text table builder used for experiment reports.
type Table struct {
	Title   string
	header  []string
	rows    [][]string
	numeric []bool // column alignment
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, header: header}
}

// AddRow appends a row; cells are formatted with %v, and float64 values are
// rendered with one decimal place.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	cols := len(t.header)
	for _, r := range t.rows {
		if len(r) > cols {
			cols = len(r)
		}
	}
	width := make([]int, cols)
	measure := func(r []string) {
		for i, c := range r {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	measure(t.header)
	for _, r := range t.rows {
		measure(r)
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(r []string) {
		for i := 0; i < cols; i++ {
			c := ""
			if i < len(r) {
				c = r[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	sep := make([]string, cols)
	for i := range sep {
		sep[i] = strings.Repeat("-", width[i])
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	b.WriteString("| " + strings.Join(t.header, " | ") + " |\n")
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = "---"
	}
	b.WriteString("| " + strings.Join(sep, " | ") + " |\n")
	for _, r := range t.rows {
		b.WriteString("| " + strings.Join(r, " | ") + " |\n")
	}
	return b.String()
}

// MBps converts (bytes, seconds) to megabytes per second (1 MB = 10^6 bytes,
// matching the paper's units).
func MBps(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / 1e6 / seconds
}
