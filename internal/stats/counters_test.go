package stats

import (
	"sort"
	"testing"
)

// TestSnapshotSorted pins the determinism contract experiment tables rely
// on: Snapshot returns counters sorted by name regardless of insertion
// order, so reports are byte-identical across runs and map iteration order.
func TestSnapshotSorted(t *testing.T) {
	c := NewCounters()
	names := []string{"zeta", "alpha", "mid", "beta", "omega", "a0", "z9"}
	for i, n := range names {
		c.Add(n, int64(i+1))
	}
	for trial := 0; trial < 10; trial++ {
		snap := c.Snapshot()
		if len(snap) != len(names) {
			t.Fatalf("Snapshot has %d entries, want %d", len(snap), len(names))
		}
		if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
			t.Fatalf("Snapshot not sorted by name: %v", snap)
		}
	}
	snap := c.Snapshot()
	if snap[0].Name != "a0" || snap[len(snap)-1].Name != "zeta" {
		t.Fatalf("unexpected order: first=%q last=%q", snap[0].Name, snap[len(snap)-1].Name)
	}
	for _, cv := range snap {
		if cv.Value != c.Get(cv.Name) {
			t.Fatalf("counter %q snapshot=%d live=%d", cv.Name, cv.Value, c.Get(cv.Name))
		}
	}
}

// TestSlotSnapshotByteIdentical is the regression contract for the atomic
// fast path: a counter set where some names live on pre-registered slots and
// some on the mutex map must render exactly the same Snapshot — same names,
// same sorted order, same values — as a plain set fed the same increments.
func TestSlotSnapshotByteIdentical(t *testing.T) {
	type op struct {
		name  string
		delta int64
	}
	ops := []op{
		{"op.send", 3}, {"bytes.send", 4096}, {"qp.error", 1},
		{"op.send", 2}, {"rnr", 1}, {"bytes.send", 512},
		{"wqe.flushed", 7}, {"fault.injected", 2}, {"op.read", 9},
	}
	plain := NewCounters()
	slotted := NewCounters()
	// Pre-register a mix: some before any writes, one after (migration),
	// one that never fires (must stay out of the snapshot).
	slotted.Slot("op.send")
	slotted.Slot("bytes.send")
	slotted.Slot("never.fired")
	for i, o := range ops {
		plain.Add(o.name, o.delta)
		slotted.Add(o.name, o.delta)
		if i == 4 {
			// Migrate a name that already accumulated through the mutex map.
			slotted.Slot("rnr")
		}
	}
	a, b := plain.Snapshot(), slotted.Snapshot()
	if len(a) != len(b) {
		t.Fatalf("snapshot lengths differ: plain=%v slotted=%v", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("snapshot[%d] differs: plain=%+v slotted=%+v", i, a[i], b[i])
		}
	}
	for _, cv := range a {
		if got := slotted.Get(cv.Name); got != cv.Value {
			t.Fatalf("Get(%q)=%d, want %d", cv.Name, got, cv.Value)
		}
	}
}

// TestSlotMigrationAndReset pins the slot lifecycle: registration migrates
// the accumulated mutex-map value, re-registration returns the same slot,
// and Reset zeroes slots and hides never-rewritten names from Snapshot.
func TestSlotMigrationAndReset(t *testing.T) {
	c := NewCounters()
	c.Add("hot", 41)
	s := c.Slot("hot")
	if s.Load() != 41 {
		t.Fatalf("migrated slot = %d, want 41", s.Load())
	}
	s.Inc()
	if got := c.Get("hot"); got != 42 {
		t.Fatalf("Get after slot Inc = %d, want 42", got)
	}
	if again := c.Slot("hot"); again != s {
		t.Fatalf("re-registration returned a different slot")
	}
	c.Add("cold", 5)
	c.Reset()
	if got := c.Get("hot"); got != 0 {
		t.Fatalf("Get after Reset = %d, want 0", got)
	}
	if snap := c.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot after Reset = %v, want empty", snap)
	}
	// The held slot pointer keeps working after Reset.
	s.Add(3)
	snap := c.Snapshot()
	if len(snap) != 1 || snap[0] != (CounterValue{Name: "hot", Value: 3}) {
		t.Fatalf("Snapshot after post-Reset Add = %v", snap)
	}
}

// TestSlotConcurrent exercises the fast path from many goroutines under the
// race detector: concurrent Add on slotted and unslotted names, mid-flight
// registration, and Snapshot readers.
func TestSlotConcurrent(t *testing.T) {
	c := NewCounters()
	hot := c.Slot("hot")
	const workers, n = 8, 1000
	done := make(chan struct{})
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < n; i++ {
				hot.Inc()
				c.Add("hot", 1)
				c.Add("cold", 1)
				if i == n/2 && w == 0 {
					c.Slot("cold")
				}
				if i%100 == 0 {
					c.Snapshot()
				}
			}
		}(w)
	}
	for w := 0; w < workers; w++ {
		<-done
	}
	if got := c.Get("hot"); got != 2*workers*n {
		t.Fatalf("hot = %d, want %d", got, 2*workers*n)
	}
	if got := c.Get("cold"); got != workers*n {
		t.Fatalf("cold = %d, want %d", got, workers*n)
	}
}
