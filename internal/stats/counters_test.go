package stats

import (
	"sort"
	"testing"
)

// TestSnapshotSorted pins the determinism contract experiment tables rely
// on: Snapshot returns counters sorted by name regardless of insertion
// order, so reports are byte-identical across runs and map iteration order.
func TestSnapshotSorted(t *testing.T) {
	c := NewCounters()
	names := []string{"zeta", "alpha", "mid", "beta", "omega", "a0", "z9"}
	for i, n := range names {
		c.Add(n, int64(i+1))
	}
	for trial := 0; trial < 10; trial++ {
		snap := c.Snapshot()
		if len(snap) != len(names) {
			t.Fatalf("Snapshot has %d entries, want %d", len(snap), len(names))
		}
		if !sort.SliceIsSorted(snap, func(i, j int) bool { return snap[i].Name < snap[j].Name }) {
			t.Fatalf("Snapshot not sorted by name: %v", snap)
		}
	}
	snap := c.Snapshot()
	if snap[0].Name != "a0" || snap[len(snap)-1].Name != "zeta" {
		t.Fatalf("unexpected order: first=%q last=%q", snap[0].Name, snap[len(snap)-1].Name)
	}
	for _, cv := range snap {
		if cv.Value != c.Get(cv.Name) {
			t.Fatalf("counter %q snapshot=%d live=%d", cv.Name, cv.Value, c.Get(cv.Name))
		}
	}
}
