package stats

import (
	"strings"
	"testing"
)

func TestCounters(t *testing.T) {
	c := NewCounters()
	c.Inc("a")
	c.Add("a", 4)
	c.Add("b", -2)
	if c.Get("a") != 5 || c.Get("b") != -2 || c.Get("missing") != 0 {
		t.Fatalf("a=%d b=%d", c.Get("a"), c.Get("b"))
	}
	snap := c.Snapshot()
	if len(snap) != 2 || snap[0].Name != "a" || snap[1].Name != "b" {
		t.Fatalf("snapshot = %+v", snap)
	}
	c.Reset()
	if c.Get("a") != 0 {
		t.Fatal("reset failed")
	}
}

func TestCountersConcurrent(t *testing.T) {
	c := NewCounters()
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		go func() {
			for j := 0; j < 1000; j++ {
				c.Inc("n")
			}
			done <- struct{}{}
		}()
	}
	for i := 0; i < 8; i++ {
		<-done
	}
	if c.Get("n") != 8000 {
		t.Fatalf("n = %d", c.Get("n"))
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("Title", "col1", "column2")
	tb.AddRow(1, 2.5)
	tb.AddRow("long-value", 100.0)
	s := tb.String()
	if !strings.Contains(s, "Title") || !strings.Contains(s, "col1") {
		t.Fatalf("render:\n%s", s)
	}
	if !strings.Contains(s, "2.5") || !strings.Contains(s, "100.0") {
		t.Fatalf("floats not formatted:\n%s", s)
	}
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("T", "a", "b")
	tb.AddRow(1, 2)
	md := tb.Markdown()
	if !strings.Contains(md, "| a | b |") || !strings.Contains(md, "| 1 | 2 |") {
		t.Fatalf("markdown:\n%s", md)
	}
}

func TestMBps(t *testing.T) {
	if v := MBps(2e6, 2); v != 1 {
		t.Fatalf("MBps = %v", v)
	}
	if v := MBps(100, 0); v != 0 {
		t.Fatalf("zero-time MBps = %v", v)
	}
}
