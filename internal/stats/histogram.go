package stats

import (
	"fmt"
	"math"
	"strings"
)

// Histogram is a log-scale latency histogram (powers of √2 from 1 µs to
// ~17 s), cheap enough to record every RPC in a simulation and precise
// enough for p50/p95/p99 reporting.
type Histogram struct {
	buckets [50]int64
	count   int64
	sum     float64 // microseconds
	min     float64
	max     float64
}

// bucketFor maps a value in microseconds to its bucket index.
func bucketFor(us float64) int {
	if us < 1 {
		return 0
	}
	idx := int(math.Log2(us) * 2) // √2 steps
	if idx < 0 {
		idx = 0
	}
	if idx >= len((&Histogram{}).buckets) {
		idx = len((&Histogram{}).buckets) - 1
	}
	return idx
}

// bucketLower returns the lower bound (µs) of bucket i.
func bucketLower(i int) float64 {
	return math.Pow(2, float64(i)/2)
}

// Observe records one value in microseconds.
func (h *Histogram) Observe(us float64) {
	h.buckets[bucketFor(us)]++
	h.count++
	h.sum += us
	if h.count == 1 || us < h.min {
		h.min = us
	}
	if us > h.max {
		h.max = us
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count }

// Mean returns the mean in microseconds.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Min and Max return the observed extremes in microseconds.
func (h *Histogram) Min() float64 { return h.min }

// Max returns the largest observation in microseconds.
func (h *Histogram) Max() float64 { return h.max }

// Quantile returns an estimate of the q-quantile (0 < q < 1) in
// microseconds, by linear interpolation within the containing bucket.
func (h *Histogram) Quantile(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	target := q * float64(h.count)
	var seen float64
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		if seen+float64(n) >= target {
			lo := bucketLower(i)
			hi := bucketLower(i + 1)
			frac := (target - seen) / float64(n)
			v := lo + (hi-lo)*frac
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
		seen += float64(n)
	}
	return h.max
}

// Summary renders "count mean p50 p95 p99 max" in microseconds.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%.1fµs p50=%.1fµs p95=%.1fµs p99=%.1fµs max=%.1fµs",
		h.count, h.Mean(), h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.max)
}

// Bars renders a compact ASCII distribution (one row per occupied bucket).
func (h *Histogram) Bars() string {
	var peak int64
	for _, n := range h.buckets {
		if n > peak {
			peak = n
		}
	}
	if peak == 0 {
		return "(empty)\n"
	}
	var b strings.Builder
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		width := int(float64(n) / float64(peak) * 40)
		if width == 0 {
			width = 1
		}
		fmt.Fprintf(&b, "%10.0fµs %7d %s\n", bucketLower(i), n, strings.Repeat("#", width))
	}
	return b.String()
}
