package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d", h.Count())
	}
	if m := h.Mean(); m < 499 || m > 502 {
		t.Fatalf("mean = %v", m)
	}
	if h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 300 || p50 > 700 {
		t.Fatalf("p50 = %v for uniform 1..1000 (log buckets are coarse, but not this coarse)", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < 800 || p99 > 1000 {
		t.Fatalf("p99 = %v", p99)
	}
	if !strings.Contains(h.Summary(), "n=1000") {
		t.Fatalf("summary: %s", h.Summary())
	}
	if h.Bars() == "(empty)\n" {
		t.Fatal("bars empty")
	}
}

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	if h.Bars() != "(empty)\n" {
		t.Fatal("empty bars")
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	f := func(vals []uint32) bool {
		var h Histogram
		for _, v := range vals {
			h.Observe(float64(v%10_000_000) + 0.5)
		}
		if h.Count() == 0 {
			return true
		}
		prev := 0.0
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
			v := h.Quantile(q)
			if v < prev || math.IsNaN(v) {
				return false
			}
			if v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramExtremes(t *testing.T) {
	var h Histogram
	h.Observe(0.01) // below first bucket
	h.Observe(1e12) // beyond last bucket
	if h.Count() != 2 {
		t.Fatal("extremes not recorded")
	}
	if h.Quantile(0.99) > 1e12 {
		t.Fatal("quantile exceeded max")
	}
}
