package ibsim

import "repro/internal/des"

// SRQConfig sizes a shared receive queue.
type SRQConfig struct {
	// Depth bounds the posted receive WQEs; PostRecv beyond it fails.
	Depth int

	// Limit is the low watermark: when a take drops the available count
	// below it, the armed limit event fires (once per arming), telling the
	// consumer to repost buffers. Zero disables the watermark.
	Limit int
}

func (c *SRQConfig) defaults() {
	if c.Depth <= 0 {
		c.Depth = 256
	}
	if c.Limit < 0 {
		c.Limit = 0
	}
	if c.Limit >= c.Depth {
		c.Limit = c.Depth - 1
	}
}

// SRQ is a shared receive queue: one pooled stock of receive WQEs that any
// number of attached QPs draw from, instead of each connection pre-posting
// its own ring. This is the standard fix for per-connection receive memory
// growing linearly with connection count (the RDMAvisor observation): N
// connections share Depth buffers sized for the server's actual concurrency,
// not N×credits buffers sized for the worst case of every connection.
//
// The hardware-style limit event makes the pool self-refilling: software
// arms a watermark, and when the HCA's consumption crosses it the event
// fires exactly once, waking a refill thread to top the pool back up.
type SRQ struct {
	node *Node
	name string
	cfg  SRQConfig
	pool des.Ring[*RecvWQE]

	limitArmed bool
	limitEv    *des.Event

	// pooledBytes is the receive capacity currently sitting in the pool;
	// commitBytes is its high-water mark — the ring the driver actually
	// allocated, which is what receive-side memory accounting reports.
	pooledBytes int64
	commitBytes int64

	// Stats.
	Posted      int64 // successful PostRecv calls
	PostFailed  int64 // PostRecv calls rejected at Depth
	Consumed    int64 // WQEs taken by arriving sends
	Starved     int64 // takes that found the pool empty (RNR at the QP)
	LimitEvents int64 // watermark crossings that fired the armed event
}

// NewSRQ creates a shared receive queue on the node. QPs join it with
// QP.AttachSRQ; attached QPs must not post to their own receive queues.
func NewSRQ(n *Node, name string, cfg SRQConfig) *SRQ {
	cfg.defaults()
	return &SRQ{node: n, name: name, cfg: cfg}
}

// Depth returns the configured pool bound.
func (s *SRQ) Depth() int { return s.cfg.Depth }

// Limit returns the configured low watermark.
func (s *SRQ) Limit() int { return s.cfg.Limit }

// Avail returns the number of posted receive WQEs currently in the pool.
func (s *SRQ) Avail() int { return s.pool.Len() }

// PostRecv adds a receive buffer to the shared pool. It reports whether the
// buffer was accepted; posting beyond Depth fails (the pool is already as
// full as it can get, so a refused repost is not a lost buffer).
func (s *SRQ) PostRecv(wrid uint64, capacity int) bool {
	if s.pool.Len() >= s.cfg.Depth {
		s.PostFailed++
		return false
	}
	s.pool.Push(&RecvWQE{WRID: wrid, Cap: capacity})
	s.Posted++
	s.pooledBytes += int64(capacity)
	if s.pooledBytes > s.commitBytes {
		s.commitBytes = s.pooledBytes
	}
	return true
}

// CommittedBytes returns the high-water receive capacity ever pooled — the
// memory a driver would have allocated for this SRQ's ring.
func (s *SRQ) CommittedBytes() int64 { return s.commitBytes }

// ArmLimit arms the low-watermark event and returns it: the event fires the
// next time a take leaves fewer than Limit buffers available (immediately,
// if the pool is already below the watermark), then disarms. The consumer's
// refill loop waits on it, reposts, and re-arms — the IB SRQ limit
// asynchronous-event pattern.
func (s *SRQ) ArmLimit() *des.Event {
	s.limitEv = des.NewEvent(s.node.fab.Sim)
	s.limitArmed = true
	if s.pool.Len() < s.cfg.Limit {
		s.fireLimit()
	}
	return s.limitEv
}

func (s *SRQ) fireLimit() {
	s.limitArmed = false
	s.LimitEvents++
	s.node.fab.Counters.Inc("srq.limit")
	s.limitEv.Fire(s.pool.Len())
}

// take pops the next pooled WQE for an arriving send, firing the armed
// limit event when consumption crosses the watermark. It returns nil when
// the pool is empty (the QP sees RNR, exactly as with an empty private
// receive queue).
func (s *SRQ) take() *RecvWQE {
	if s.pool.Len() == 0 {
		s.Starved++
		return nil
	}
	r := s.pool.Pop()
	s.Consumed++
	s.pooledBytes -= int64(r.Cap)
	if s.limitArmed && s.cfg.Limit > 0 && s.pool.Len() < s.cfg.Limit {
		s.fireLimit()
	}
	return r
}
