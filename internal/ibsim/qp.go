package ibsim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/des"
	"repro/internal/trace"
)

// Opcode identifies a work request type.
type Opcode int

// Work request opcodes.
const (
	OpSend Opcode = iota
	OpWrite
	OpRead
	OpRecv
)

func (o Opcode) String() string {
	switch o {
	case OpSend:
		return "SEND"
	case OpWrite:
		return "RDMA_WRITE"
	case OpRead:
		return "RDMA_READ"
	case OpRecv:
		return "RECV"
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// LocalSeg is one entry of a local gather/scatter list.
type LocalSeg struct {
	Buf *Buffer
	Off int
	Len int
}

// SendWQE is a work request posted to a send queue.
type SendWQE struct {
	WRID uint64
	Op   Opcode

	// Payload carries the wire bytes of an RDMA Send (always materialized:
	// sends are the protocol's control messages).
	Payload []byte

	// Local is the gather (Write/Read) list for memory primitives; segment
	// lengths define the transfer size.
	Local []LocalSeg

	// Remote addresses the peer memory for Write/Read.
	RemoteKey  uint32
	RemoteAddr uint64

	// Signaled requests a completion on the send CQ.
	Signaled bool

	// Done, when non-nil, is fired with the *CQE regardless of Signaled;
	// protocol engines use it to wait for one specific WR without draining
	// the CQ.
	Done *des.Event

	// Stream addresses one logical endpoint of a multiplexed (shared) QP:
	// on a mux QP it selects which attached endpoint the request targets,
	// and the receive CQE at the far side carries it for demultiplexing.
	// Zero on ordinary point-to-point connections. Endpoint-side QPs stamp
	// their own stream automatically at PostSend.
	Stream uint32

	// seq is the fabric-wide trace id assigned at PostSend while tracing;
	// zero means the request predates the tracer (or tracing is off).
	seq uint64
}

// Size returns the wire size of the request's data.
func (w *SendWQE) Size() int {
	if w.Op == OpSend {
		return len(w.Payload)
	}
	n := 0
	for _, s := range w.Local {
		n += s.Len
	}
	return n
}

// RecvWQE is a posted receive buffer.
type RecvWQE struct {
	WRID uint64
	Cap  int // receive buffer capacity; larger sends fail
}

// CQE is a completion queue entry.
type CQE struct {
	WRID    uint64
	Op      Opcode
	Err     error // nil on success
	Bytes   int
	Payload []byte // received Send payload (OpRecv only)
	QP      *QP

	// Stream identifies the logical endpoint on a multiplexed QP. On a
	// shared CQ the consumer demultiplexes by Stream instead of by QP; an
	// error CQE with Stream != 0 is endpoint-scoped (only that endpoint
	// died), while Stream == 0 on a mux QP means the shared QP itself is
	// gone.
	Stream uint32

	// SrcStream is the authenticated source of a received Send on a shared
	// QP: the sending endpoint's own slot id, stamped by the fabric at
	// delivery, never by the sender's software. Stream above is the
	// sender's *claim* (SendWQE.Stream, attacker-controlled); a mismatch
	// between the two is a spoofed message. Zero for traffic that did not
	// originate on a mux endpoint.
	SrcStream uint32

	seq      uint64   // trace id, zero when tracing is off
	postedAt des.Time // post time, for CQ-delivery latency
}

// CQ is a completion queue. Waiting on an empty CQ and being woken by a new
// completion costs the node one interrupt (event-driven mode); finding a
// completion already queued is a poll and costs nothing — this is how the
// Read-Write design's interrupt elimination becomes visible in CPU numbers.
type CQ struct {
	node   *Node
	q      *des.Queue
	track  string
	closed bool
}

// NewCQ creates a completion queue on the node.
func NewCQ(n *Node, name string) *CQ {
	return &CQ{node: n, q: des.NewQueue(n.fab.Sim, name), track: name}
}

// Close destroys the completion queue: blocked waiters drain what is already
// queued and then see nil, and completions posted after the close are dropped
// on the floor — exactly what destroying a CQ does to flush CQEs of dying
// QPs on real hardware. Used by the server crash path, where in-flight work
// keeps flushing at later virtual instants than the crash itself.
func (cq *CQ) Close() {
	if cq.closed {
		return
	}
	cq.closed = true
	cq.q.Close()
}

func (cq *CQ) post(c *CQE) {
	if cq.closed {
		cq.node.fab.hot.cqeDropped.Inc()
		return
	}
	fab := cq.node.fab
	if tr := fab.Sim.Tracer(); tr != nil {
		fab.cqeSeq++
		c.seq = fab.cqeSeq
		c.postedAt = fab.Sim.Now()
		tr.Begin(int64(c.postedAt), trace.LayerIbsim, trace.KindCQE, cq.track, c.Op.String(), c.seq, int64(c.Bytes))
	}
	cq.q.Put(c)
}

// consumed closes a completion's trace interval when software picks it up
// and feeds the CQ-delivery latency histogram.
func (cq *CQ) consumed(c *CQE) {
	if c.seq == 0 {
		return
	}
	if tr := cq.node.fab.Sim.Tracer(); tr != nil {
		now := cq.node.fab.Sim.Now()
		tr.End(int64(now), trace.LayerIbsim, trace.KindCQE, cq.track, c.Op.String(), c.seq, 0)
		tr.Observe("cq.deliver", (now - c.postedAt).Micros())
	}
}

// Wait blocks until a completion is available and returns it. If the caller
// had to block, the wake-up is charged as a hardware interrupt.
func (cq *CQ) Wait(p *des.Proc) *CQE {
	blocked := cq.q.Len() == 0
	v, ok := cq.q.Get(p)
	if !ok {
		return nil
	}
	if blocked {
		cq.node.CPU.Interrupt(p)
	}
	c := v.(*CQE)
	cq.consumed(c)
	return c
}

// Poll returns a completion without blocking.
func (cq *CQ) Poll() (*CQE, bool) {
	v, ok := cq.q.TryGet()
	if !ok {
		return nil, false
	}
	c := v.(*CQE)
	cq.consumed(c)
	return c, true
}

// Len returns the number of queued completions.
func (cq *CQ) Len() int { return cq.q.Len() }

// QPConfig tunes a connection.
type QPConfig struct {
	// RNRRetryDelay is the wait before redelivering a send that found no
	// posted receive; RNRRetryLimit bounds the attempts.
	RNRRetryDelay des.Duration
	RNRRetryLimit int
}

func (c *QPConfig) defaults() {
	if c.RNRRetryDelay <= 0 {
		c.RNRRetryDelay = 100 * time.Microsecond
	}
	if c.RNRRetryLimit <= 0 {
		c.RNRRetryLimit = 7
	}
}

const readRequestWireSize = 16 // RDMA Read request packet (header only)

// QP is one endpoint of a reliable connection.
type QP struct {
	node  *Node
	cfg   QPConfig
	qpn   int
	peer  *QP
	track string // trace row: "<node>/qp<N>"

	sq     *des.Queue // *SendWQE
	rq     []*RecvWQE
	srq    *SRQ // when attached, receives draw from the shared pool, not rq
	SendCQ *CQ
	RecvCQ *CQ

	ord    *des.Resource // outstanding RDMA Read slots (requester side)
	errSt  error         // non-nil once in error state
	closed bool

	// Multiplexed (shared) connection state — see mux.go. A mux QP fans out
	// to many lightweight endpoints through a slot table; an endpoint QP
	// records the stream id of its slot on the peer mux QP.
	mux       bool
	stream    uint32    // endpoint side: slot id on the peer mux QP
	slots     []muxSlot // mux side: attached endpoints by slot index
	freeSlots []int     // mux side: reusable slot indices (LIFO)
	liveEps   int       // mux side: attached, not-yet-dead endpoints
}

func newQP(n *Node, cfg QPConfig, qpn int) *QP {
	cfg.defaults()
	qp := &QP{
		node:  n,
		cfg:   cfg,
		qpn:   qpn,
		track: fmt.Sprintf("%s/qp%d", n.name, qpn),
		sq:    des.NewQueue(n.fab.Sim, fmt.Sprintf("%s/qp%d/sq", n.name, qpn)),
	}
	qp.SendCQ = NewCQ(n, fmt.Sprintf("%s/qp%d/scq", n.name, qpn))
	qp.RecvCQ = NewCQ(n, fmt.Sprintf("%s/qp%d/rcq", n.name, qpn))
	return qp
}

// Node returns the node owning this endpoint.
func (q *QP) Node() *Node { return q.node }

// Peer returns the remote endpoint.
func (q *QP) Peer() *QP { return q.peer }

// QPN returns the queue pair number.
func (q *QP) QPN() int { return q.qpn }

// MaxORD returns the negotiated outstanding-RDMA-Read limit.
func (q *QP) MaxORD() int { return q.ord.Capacity() }

// Err returns the error that moved the QP to the error state, or nil.
func (q *QP) Err() error { return q.errSt }

// setError transitions the QP (and its peer) to the error state and
// flushes both completion queues: consumers blocked on the RecvCQ or the
// SendCQ get an error completion, as flushed WRs do on real hardware, so
// protocol engines on both ends learn of the failure instead of waiting
// forever. Work already launched onto the wire checks the error state again
// at delivery time, so in-flight WQEs flush too rather than completing as
// if the connection were still healthy.
func (q *QP) setError(err error) {
	if q.errSt == nil {
		q.errSt = err
		q.node.fab.Counters.Inc("qp.error")
		if tr := q.node.fab.Sim.Tracer(); tr != nil {
			tr.Instant(int64(q.node.fab.Sim.Now()), trace.LayerIbsim, trace.KindQPError, q.track, "qp-error", uint64(q.qpn), 0)
		}
		flushed := fmt.Errorf("%w: flushed", err)
		q.RecvCQ.post(&CQE{Op: OpRecv, Err: flushed, QP: q})
		q.SendCQ.post(&CQE{Op: OpSend, Err: flushed, QP: q})
	}
	switch {
	case q.mux:
		// A shared QP dying takes every attached endpoint with it, in slot
		// order for determinism. Each endpoint's teardown frees its slot via
		// endpointDead (which no-ops the per-endpoint CQE once the shared QP
		// itself is in error — the QP-scope flush CQE already covers them).
		for i := range q.slots {
			if ep := q.slots[i].ep; ep != nil && ep.errSt == nil {
				ep.setError(fmt.Errorf("%w (shared qp: %w)", ErrQPError, err))
			}
		}
	case q.peer != nil && q.peer.mux:
		// Endpoint death stays endpoint-scoped: the shared QP frees the slot
		// and posts an endpoint-scoped error CQE instead of going down.
		q.peer.endpointDead(q)
	case q.peer != nil && q.peer.errSt == nil:
		// Double-wrap so the peer can still classify the root cause (e.g.
		// errors.Is(err, ErrInjected)) while seeing it arrived via the peer.
		q.peer.setError(fmt.Errorf("%w (peer: %w)", ErrQPError, err))
	}
}

// Terminate moves the endpoint (and, via propagation, its peer) to the
// error state with the given protocol-level cause — e.g. a server rejecting
// a connection at admission. Unlike InjectError it preserves err's chain
// unwrapped, so both ends can classify the cause with errors.Is.
func (q *QP) Terminate(err error) {
	if err == nil {
		err = ErrQPError
	}
	q.setError(err)
}

// InjectError forces the connection into the error state at the current
// virtual instant — the fault-injection entry point. In-flight WQEs flush
// with errors and both ends' CQs observe the death (see setError). The
// error surfaced through CQEs wraps ErrInjected unless err already carries
// a fabric sentinel.
func (q *QP) InjectError(err error) {
	if err == nil {
		err = ErrInjected
	} else if !errors.Is(err, ErrInjected) {
		err = fmt.Errorf("%w: %v", ErrInjected, err)
	}
	q.node.fab.Counters.Inc("fault.injected")
	q.setError(err)
}

// PostRecv posts a receive buffer of the given capacity. A QP attached to
// an SRQ has no private receive queue; receives must be posted to the SRQ.
func (q *QP) PostRecv(wrid uint64, capacity int) {
	if q.srq != nil {
		panic("ibsim: PostRecv on an SRQ-attached QP")
	}
	q.rq = append(q.rq, &RecvWQE{WRID: wrid, Cap: capacity})
}

// PostedRecvs returns the current receive queue depth (0 when the QP draws
// from an SRQ).
func (q *QP) PostedRecvs() int { return len(q.rq) }

// AttachSRQ switches the endpoint's receive side to the shared receive
// queue: arriving sends consume pooled WQEs instead of the private ring.
// Must be attached before any private receives are posted.
func (q *QP) AttachSRQ(s *SRQ) {
	if len(q.rq) > 0 {
		panic("ibsim: AttachSRQ after PostRecv")
	}
	q.srq = s
}

// SRQ returns the attached shared receive queue, or nil.
func (q *QP) SRQ() *SRQ { return q.srq }

// SetRecvCQ redirects receive completions to cq (a shared per-shard CQ, in
// the scale-out server). Call before any traffic arrives; CQEs carry their
// QP, so consumers of a shared CQ demultiplex by CQE.QP.
func (q *QP) SetRecvCQ(cq *CQ) { q.RecvCQ = cq }

// takeRecv pops the next receive buffer for an arriving send: from the
// attached SRQ when present, else from the private receive queue. Nil means
// receiver-not-ready.
func (q *QP) takeRecv() *RecvWQE {
	if q.srq != nil {
		return q.srq.take()
	}
	if len(q.rq) == 0 {
		return nil
	}
	r := q.rq[0]
	q.rq = q.rq[1:]
	return r
}

// PostSend enqueues a work request for the send engine. Posting to a closed
// endpoint completes the request with a flush error instead of panicking:
// with connection recovery in play, a reply handler or retransmission timer
// can legitimately race a Close issued by the reconnect path.
func (q *QP) PostSend(w *SendWQE) {
	if q.closed {
		q.complete(w, fmt.Errorf("%w: flushed", ErrQPError), 0)
		return
	}
	if q.stream != 0 && w.Stream == 0 {
		w.Stream = q.stream // endpoint QPs always speak on their own stream
	}
	fab := q.node.fab
	if tr := fab.Sim.Tracer(); tr != nil {
		fab.wqeSeq++
		w.seq = fab.wqeSeq
		tr.Begin(int64(fab.Sim.Now()), trace.LayerIbsim, trace.KindWQE, q.track, w.Op.String(), w.seq, int64(w.Size()))
	}
	q.sq.Put(w)
}

// PostAndWait posts a work request and blocks until its completion, which it
// returns. This is the synchronous pattern kernel RPC threads use (e.g. the
// server blocking on its RDMA Read of a write chunk).
func (q *QP) PostAndWait(p *des.Proc, w *SendWQE) *CQE {
	w.Done = des.NewEvent(q.node.fab.Sim)
	q.PostSend(w)
	blocked := !w.Done.Fired()
	cqe := w.Done.Wait(p).(*CQE)
	if blocked {
		q.node.CPU.Interrupt(p)
	}
	return cqe
}

// Close shuts the endpoint down; queued and future work is flushed.
func (q *QP) Close() {
	if q.closed {
		return
	}
	q.closed = true
	q.setError(ErrQPError)
	q.sq.Close()
}

// start launches the send-queue engine.
func (q *QP) start() {
	q.node.fab.Sim.Spawn(fmt.Sprintf("%s/qp%d/engine", q.node.name, q.qpn), q.engine)
}

// complete posts a CQE for w and fires its done event.
func (q *QP) complete(w *SendWQE, err error, bytes int) {
	if w.seq != 0 {
		if tr := q.node.fab.Sim.Tracer(); tr != nil {
			var errFlag int64
			if err != nil {
				errFlag = 1
			}
			tr.End(int64(q.node.fab.Sim.Now()), trace.LayerIbsim, trace.KindWQE, q.track, w.Op.String(), w.seq, errFlag)
		}
	}
	cqe := &CQE{WRID: w.WRID, Op: w.Op, Err: err, Bytes: bytes, QP: q, Stream: w.Stream}
	if w.Signaled {
		q.SendCQ.post(cqe)
	}
	if w.Done != nil {
		w.Done.Fire(cqe)
	}
}

// engine is the per-QP send-queue processor. It launches work requests
// strictly in order: Send/Write data serializes on the transmit port (so a
// Send posted after a Write arrives after the Write's data — the ordering
// guarantee the Read-Write design exploits), while an RDMA Read only
// transmits its small request packet and its data returns asynchronously
// (so nothing orders a later Send against Read data — the reason the
// Read-Read server must block).
func (q *QP) engine(p *des.Proc) {
	ctr := &q.node.fab.hot
	for {
		v, ok := q.sq.Get(p)
		if !ok {
			return
		}
		w := v.(*SendWQE)
		if w.seq != 0 {
			if tr := q.node.fab.Sim.Tracer(); tr != nil {
				tr.Instant(int64(p.Now()), trace.LayerIbsim, trace.KindDoorbell, q.track, w.Op.String(), w.seq, int64(q.sq.Len()))
			}
		}
		if q.errSt != nil {
			ctr.wqeFlushed.Inc()
			q.complete(w, fmt.Errorf("%w: flushed", q.errSt), 0)
			continue
		}
		p.Sleep(q.node.cfg.WQEOverhead)
		switch w.Op {
		case OpSend:
			q.launchSend(p, w)
		case OpWrite:
			q.launchWrite(p, w)
		case OpRead:
			q.launchRead(p, w)
		default:
			panic("ibsim: bad opcode on send queue")
		}
	}
}

// dmaSpan wraps one wire occupancy interval of a traced work request.
func (q *QP) dmaSpan(p *des.Proc, w *SendWQE, size int, fn func()) {
	tr := q.node.fab.Sim.Tracer()
	if tr == nil || w.seq == 0 {
		fn()
		return
	}
	start := p.Now()
	fn()
	tr.Span(int64(start), int64(p.Now()), trace.LayerIbsim, trace.KindDMA, q.track, w.Op.String(), w.seq, int64(size))
}

func (q *QP) launchSend(p *des.Proc, w *SendWQE) {
	ctr := &q.node.fab.hot
	peer := q.peerFor(w.Stream)
	if peer == nil {
		ctr.wqeFlushed.Inc()
		q.complete(w, fmt.Errorf("%w: stale stream: flushed", ErrQPError), 0)
		return
	}
	size := len(w.Payload)
	ctr.opSend.Inc()
	ctr.bytesSend.Add(int64(size))
	q.dmaSpan(p, w, size, func() { transfer(p, q.node, peer.node, size) })
	s := q.node.fab.Sim
	lat := latency(q.node, peer.node)
	arrive := s.Now() + des.Time(lat)
	s.SpawnAt(arrive, "deliver-send", func(dp *des.Proc) {
		q.deliverSend(dp, w, 0)
	})
}

// deliverSend consumes a posted receive at the peer, retrying on RNR. The
// peer is re-resolved on every attempt: on a mux QP the target endpoint can
// detach between retries, in which case the send flushes instead of landing
// on a recycled slot.
func (q *QP) deliverSend(dp *des.Proc, w *SendWQE, attempt int) {
	ctr := &q.node.fab.hot
	s := q.node.fab.Sim
	if q.errSt != nil {
		q.complete(w, fmt.Errorf("%w: flushed", q.errSt), 0)
		return
	}
	peer := q.peerFor(w.Stream)
	if peer == nil {
		ctr.wqeFlushed.Inc()
		q.complete(w, fmt.Errorf("%w: stale stream: flushed", ErrQPError), 0)
		return
	}
	if peer.errSt != nil {
		q.complete(w, peer.errSt, 0)
		return
	}
	r := peer.takeRecv()
	if r == nil {
		ctr.rnr.Inc()
		if w.seq != 0 {
			if tr := s.Tracer(); tr != nil {
				tr.Instant(int64(dp.Now()), trace.LayerIbsim, trace.KindRNR, q.track, w.Op.String(), w.seq, int64(attempt))
			}
		}
		if attempt >= q.cfg.RNRRetryLimit {
			err := fmt.Errorf("%w after %d retries", ErrRNR, attempt)
			if q.mux {
				// One endpoint not posting receives must not take the shared
				// QP down: error stays scoped to the offending endpoint.
				peer.setError(err)
			} else {
				q.setError(err)
			}
			q.complete(w, err, 0)
			return
		}
		dp.Sleep(q.cfg.RNRRetryDelay)
		q.deliverSend(dp, w, attempt+1)
		return
	}
	if len(w.Payload) > r.Cap {
		err := fmt.Errorf("%w: %d > %d", ErrRecvOverflow, len(w.Payload), r.Cap)
		if q.mux {
			peer.setError(err)
		} else {
			q.setError(err)
		}
		peer.RecvCQ.post(&CQE{WRID: r.WRID, Op: OpRecv, Err: err, QP: peer, Stream: w.Stream, SrcStream: q.stream})
		q.complete(w, err, 0)
		return
	}
	peer.RecvCQ.post(&CQE{
		WRID: r.WRID, Op: OpRecv,
		Bytes: len(w.Payload), Payload: w.Payload, QP: peer, Stream: w.Stream,
		SrcStream: q.stream,
	})
	// Ack returns to the sender one latency later.
	lat := latency(q.node, peer.node)
	s.SpawnAt(s.Now()+des.Time(lat), "send-ack", func(*des.Proc) {
		q.complete(w, nil, len(w.Payload))
	})
}

func (q *QP) launchWrite(p *des.Proc, w *SendWQE) {
	ctr := &q.node.fab.hot
	peer := q.peerFor(w.Stream)
	if peer == nil {
		ctr.wqeFlushed.Inc()
		q.complete(w, fmt.Errorf("%w: stale stream: flushed", ErrQPError), 0)
		return
	}
	size := w.Size()
	ctr.opWrite.Inc()
	ctr.bytesWrite.Add(int64(size))
	q.dmaSpan(p, w, size, func() { transfer(p, q.node, peer.node, size) })
	s := q.node.fab.Sim
	lat := latency(q.node, peer.node)
	s.SpawnAt(s.Now()+des.Time(lat), "deliver-write", func(*des.Proc) {
		// A fault injected while the data was on the wire flushes the
		// in-flight WQE instead of letting it land as if healthy. The peer is
		// re-resolved so a write to a detached endpoint flushes too rather
		// than landing in a recycled slot.
		if q.errSt != nil {
			ctr.wqeFlushed.Inc()
			q.complete(w, fmt.Errorf("%w: flushed", q.errSt), 0)
			return
		}
		peer := q.peerFor(w.Stream)
		if peer == nil || peer.errSt != nil {
			ctr.wqeFlushed.Inc()
			q.complete(w, fmt.Errorf("%w: flushed", ErrQPError), 0)
			return
		}
		mr, err := peer.node.HCA.lookup(w.RemoteKey, w.RemoteAddr, size, AccessRemoteWrite)
		if err != nil {
			q.node.fab.Counters.Inc("protection_error")
			q.setError(err)
			q.complete(w, err, 0)
			return
		}
		// Data moves whenever both endpoints are materialized: control
		// payloads (long calls/replies) are always real even in
		// phantom-data mode; phantom bulk buffers skip naturally.
		copyOut(mr, w.RemoteAddr, w.Local)
		peer.node.HCA.notifyWrite(w.RemoteKey, w.RemoteAddr, size)
		q.complete(w, nil, size)
	})
}

func (q *QP) launchRead(p *des.Proc, w *SendWQE) {
	ctr := &q.node.fab.hot
	peer := q.peerFor(w.Stream)
	if peer == nil {
		ctr.wqeFlushed.Inc()
		q.complete(w, fmt.Errorf("%w: stale stream: flushed", ErrQPError), 0)
		return
	}
	size := w.Size()
	ctr.opRead.Inc()
	ctr.bytesRead.Add(int64(size))
	// ORD throttling: a Read that cannot get a slot stalls the send queue
	// head (strict in-order initiation), serializing everything behind it.
	// On a mux QP the ORD slots are shared across every endpoint — the
	// realistic contention cost of collapsing connections onto one QP.
	ordStart := p.Now()
	q.ord.Acquire(p, 1)
	if w.seq != 0 && p.Now() > ordStart {
		if tr := q.node.fab.Sim.Tracer(); tr != nil {
			tr.Span(int64(ordStart), int64(p.Now()), trace.LayerIbsim, trace.KindORDWait, q.track, "ord-wait", w.seq, int64(q.ord.Capacity()))
		}
	}
	q.dmaSpan(p, w, readRequestWireSize, func() { transfer(p, q.node, peer.node, readRequestWireSize) })
	s := q.node.fab.Sim
	lat := latency(q.node, peer.node)
	s.SpawnAt(s.Now()+des.Time(lat), "read-responder", func(rp *des.Proc) {
		if q.errSt != nil {
			ctr.wqeFlushed.Inc()
			q.ord.Release(1)
			q.complete(w, fmt.Errorf("%w: flushed", q.errSt), 0)
			return
		}
		peer := q.peerFor(w.Stream)
		if peer == nil || peer.errSt != nil {
			ctr.wqeFlushed.Inc()
			q.ord.Release(1)
			q.complete(w, fmt.Errorf("%w: flushed", ErrQPError), 0)
			return
		}
		mr, err := peer.node.HCA.lookup(w.RemoteKey, w.RemoteAddr, size, AccessRemoteRead)
		if err != nil {
			q.node.fab.Counters.Inc("protection_error")
			s.SpawnAt(s.Now()+des.Time(lat), "read-nak", func(*des.Proc) {
				q.setError(err)
				q.ord.Release(1)
				q.complete(w, err, 0)
			})
			return
		}
		// Responder streams the data back on its transmit port, paying the
		// per-read channel turnaround.
		transferExtra(rp, peer.node, q.node, size, peer.node.cfg.ReadResponseOverhead)
		s.SpawnAt(s.Now()+des.Time(lat), "read-data", func(*des.Proc) {
			if q.errSt != nil {
				ctr.wqeFlushed.Inc()
				q.ord.Release(1)
				q.complete(w, fmt.Errorf("%w: flushed", q.errSt), 0)
				return
			}
			copyIn(w.Local, mr, w.RemoteAddr)
			q.ord.Release(1)
			q.complete(w, nil, size)
		})
	})
}

// copyOut materializes an RDMA Write: local gather list -> remote MR bytes.
func copyOut(mr *MR, remoteAddr uint64, local []LocalSeg) {
	buf, off := mr.resolve(remoteAddr)
	if buf == nil || buf.data == nil {
		return
	}
	for _, seg := range local {
		if seg.Buf != nil && seg.Buf.data != nil {
			copy(buf.data[off:off+seg.Len], seg.Buf.data[seg.Off:seg.Off+seg.Len])
		}
		off += seg.Len
	}
}

// copyIn materializes an RDMA Read: remote MR bytes -> local scatter list.
func copyIn(local []LocalSeg, mr *MR, remoteAddr uint64) {
	buf, off := mr.resolve(remoteAddr)
	if buf == nil || buf.data == nil {
		return
	}
	for _, seg := range local {
		if seg.Buf != nil && seg.Buf.data != nil {
			copy(seg.Buf.data[seg.Off:seg.Off+seg.Len], buf.data[off:off+seg.Len])
		}
		off += seg.Len
	}
}
