package ibsim

import (
	"testing"
	"time"

	"repro/internal/des"
)

// watchPair posts one RDMA Write from qa into mr at the given offset and
// returns after the simulation drains.
func postWrite(p *des.Proc, qa *QP, src *Buffer, mr *MR, off uint64, n int) {
	cqe := qa.PostAndWait(p, &SendWQE{
		WRID: 1, Op: OpWrite,
		Local:     []LocalSeg{{Buf: src, Off: 0, Len: n}},
		RemoteKey: mr.Rkey(), RemoteAddr: mr.Start() + off,
	})
	if cqe.Err != nil {
		panic(cqe.Err)
	}
}

// TestWatchWriteFiresOnOverlap: a watch on the doorbell range fires exactly
// when a delivered Write overlaps it, after the data is placed.
func TestWatchWriteFiresOnOverlap(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(64)
	dst := b.Mem.Alloc(4096)
	fill(src, 5)
	var sawData bool
	sim.Spawn("watcher", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
		w := b.HCA.WatchWrite(mr.Rkey(), mr.Start(), 8)
		sim.Spawn("writer", func(wp *des.Proc) {
			postWrite(wp, qa, src, mr, 0, 64)
		})
		if !w.Wait(p) {
			t.Error("watch cancelled, want fired")
		}
		sawData = dst.Bytes(0, 1)[0] == src.Bytes(0, 1)[0]
	})
	sim.Run()
	if !sawData {
		t.Fatal("watch fired before the write's data was visible")
	}
}

// TestWatchWriteIgnoresNonOverlap: a Write outside the watched range must
// not fire the watch; Cancel then releases the waiter with false.
func TestWatchWriteIgnoresNonOverlap(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(64)
	dst := b.Mem.Alloc(4096)
	var fired, cancelled bool
	sim.Spawn("watcher", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
		w := b.HCA.WatchWrite(mr.Rkey(), mr.Start(), 8) // watch [0, 8)
		sim.Spawn("writer", func(wp *des.Proc) {
			postWrite(wp, qa, src, mr, 1024, 64) // lands at [1024, 1088)
			w.Cancel()
		})
		fired = w.Wait(p)
		cancelled = true
	})
	sim.Run()
	if fired {
		t.Error("non-overlapping write fired the watch")
	}
	if !cancelled {
		t.Error("cancel did not release the waiter")
	}
}

// TestWatchWriteFiresOnce: after firing, the watch is deregistered — a
// second overlapping Write must not fire it again, and re-watching works.
func TestWatchWriteFiresOnce(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(64)
	dst := b.Mem.Alloc(4096)
	wakes := 0
	sim.Spawn("watcher", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
		w := b.HCA.WatchWrite(mr.Rkey(), mr.Start(), 8)
		sim.Spawn("writer", func(wp *des.Proc) {
			postWrite(wp, qa, src, mr, 0, 64)
			postWrite(wp, qa, src, mr, 0, 64)
		})
		if w.Wait(p) {
			wakes++
		}
		if len(b.HCA.watches) != 0 {
			t.Errorf("fired watch still registered: %v", b.HCA.watches)
		}
		// Re-arm: a fresh watch over the same range sees the next Write.
		w2 := b.HCA.WatchWrite(mr.Rkey(), mr.Start(), 8)
		sim.Spawn("writer2", func(wp *des.Proc) {
			wp.Sleep(time.Microsecond)
			postWrite(wp, qa, src, mr, 4, 64)
		})
		if w2.Wait(p) {
			wakes++
		}
	})
	sim.Run()
	if wakes != 2 {
		t.Fatalf("wakes = %d, want 2 (one per armed watch)", wakes)
	}
}

// TestWatchWriteMultipleWatchers: two watches on disjoint ranges of one
// region each fire only for their own range, in registration order.
func TestWatchWriteMultipleWatchers(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(64)
	dst := b.Mem.Alloc(4096)
	var loFired, hiFired bool
	sim.Spawn("watcher", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
		lo := b.HCA.WatchWrite(mr.Rkey(), mr.Start(), 8)
		hi := b.HCA.WatchWrite(mr.Rkey(), mr.Start()+2048, 8)
		sim.Spawn("writer", func(wp *des.Proc) {
			postWrite(wp, qa, src, mr, 2048, 8) // hits hi only
		})
		hiFired = hi.Wait(p)
		loFired = lo.fired
		lo.Cancel()
	})
	sim.Run()
	if !hiFired {
		t.Error("watch over the written range did not fire")
	}
	if loFired {
		t.Error("watch over the untouched range fired")
	}
}
