package ibsim

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
)

func TestCQPollVsWaitInterrupts(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	a.Config() // silence unused warning paths
	_ = b
	sim.Spawn("p", func(p *des.Proc) {
		// Polling an empty CQ returns immediately with no interrupt.
		if _, ok := qa.SendCQ.Poll(); ok {
			t.Error("poll on empty CQ returned an entry")
		}
		before := a.CPU.Interrupts()
		qa.PostSend(&SendWQE{WRID: 1, Op: OpSend, Payload: []byte("x"), Signaled: true})
		qa.Peer().PostRecv(1, 64)
		cqe := qa.SendCQ.Wait(p)
		if cqe == nil || cqe.Err != nil {
			t.Errorf("send completion: %+v", cqe)
		}
		if a.CPU.Interrupts() != before+1 {
			t.Errorf("blocked CQ wait should cost exactly one interrupt")
		}
		// A completion already queued is a poll: no interrupt.
		qa.PostSend(&SendWQE{WRID: 2, Op: OpSend, Payload: []byte("y"), Signaled: true})
		qa.Peer().PostRecv(2, 64)
		p.Sleep(time.Millisecond) // let it complete
		before = a.CPU.Interrupts()
		if cqe := qa.SendCQ.Wait(p); cqe == nil || cqe.Err != nil {
			t.Errorf("second completion: %+v", cqe)
		}
		if a.CPU.Interrupts() != before {
			t.Error("ready completion should not cost an interrupt")
		}
	})
	sim.Run()
}

func TestCloseFlushesQueuedWork(t *testing.T) {
	sim, _, a, _, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(64)
	sim.Spawn("p", func(p *des.Proc) {
		qa.Close()
		if qa.Err() == nil {
			t.Error("closed QP should be in error state")
		}
		// Posting to a closed endpoint flushes the WR with an error instead
		// of panicking: recovery paths legitimately race Close.
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpWrite, Local: []LocalSeg{{Buf: src, Len: 64}},
		})
		if cqe.Err == nil {
			t.Error("post on closed QP should flush with an error")
		}
	})
	sim.Run()
}

func TestMemoryFindProperty(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "n"})
	var bufs []*Buffer
	for i := 0; i < 50; i++ {
		bufs = append(bufs, n.Mem.Alloc(1+i*37))
	}
	f := func(pick, off uint16) bool {
		b := bufs[int(pick)%len(bufs)]
		o := int(off) % b.Size
		got, gotOff := n.Mem.find(b.Addr(o))
		return got == b && gotOff == o
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	// Addresses in guard gaps resolve to nothing.
	if b, _ := n.Mem.find(bufs[0].Base + uint64(bufs[0].Size) + 1); b != nil {
		t.Error("guard gap resolved to a buffer")
	}
	// Freed buffers resolve to nothing.
	n.Mem.Free(bufs[3])
	if b, _ := n.Mem.find(bufs[3].Base); b != nil {
		t.Error("freed buffer still resolvable")
	}
}

func TestAllocationAccounting(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "n"})
	a := n.Mem.Alloc(1000)
	b := n.Mem.Alloc(2000)
	if n.Mem.AllocatedBytes() != 3000 {
		t.Fatalf("allocated = %d", n.Mem.AllocatedBytes())
	}
	n.Mem.Free(a)
	if n.Mem.AllocatedBytes() != 2000 {
		t.Fatalf("after free = %d", n.Mem.AllocatedBytes())
	}
	n.Mem.Free(b)
	defer func() {
		if recover() == nil {
			t.Fatal("double free should panic")
		}
	}()
	n.Mem.Free(b)
}

func TestAccessStringer(t *testing.T) {
	cases := map[Access]string{
		0:                                   "-",
		AccessLocalWrite:                    "L",
		AccessLocalWrite | AccessRemoteRead: "LR",
		AccessRemoteWrite:                   "W",
		AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite: "LRW",
	}
	for a, want := range cases {
		if a.String() != want {
			t.Errorf("%d.String() = %q, want %q", a, a.String(), want)
		}
	}
}

func TestOpcodeStringer(t *testing.T) {
	if OpSend.String() != "SEND" || OpRead.String() != "RDMA_READ" ||
		OpWrite.String() != "RDMA_WRITE" || OpRecv.String() != "RECV" {
		t.Fatal("opcode stringers wrong")
	}
}

func TestRecvOverflowErrors(t *testing.T) {
	sim, _, _, _, qa, qb := testPair(t, true)
	sim.Spawn("p", func(p *des.Proc) {
		qb.PostRecv(1, 8) // tiny buffer
		cqe := qa.PostAndWait(p, &SendWQE{WRID: 1, Op: OpSend, Payload: make([]byte, 100)})
		if cqe.Err == nil {
			t.Error("oversized send into tiny recv should error")
		}
	})
	sim.Run()
}
