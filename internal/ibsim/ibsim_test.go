package ibsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
)

// testPair builds a two-node fabric with a connected QP pair.
func testPair(t testing.TB, copyData bool) (*des.Sim, *Fabric, *Node, *Node, *QP, *QP) {
	t.Helper()
	sim := des.New()
	fab := NewFabric(sim, copyData)
	a := fab.AddNode(NodeConfig{Name: "client", Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond})
	b := fab.AddNode(NodeConfig{Name: "server", Cores: 4, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond})
	qa, qb := fab.Connect(a, b, QPConfig{})
	return sim, fab, a, b, qa, qb
}

func fill(b *Buffer, seed byte) {
	d := b.Data()
	for i := range d {
		d[i] = seed + byte(i%251)
	}
}

func TestSendRecvDeliversPayload(t *testing.T) {
	sim, _, _, _, qa, qb := testPair(t, true)
	msg := []byte("rpc call: NFSPROC3_GETATTR")
	var got []byte
	sim.Spawn("server", func(p *des.Proc) {
		qb.PostRecv(1, 1024)
		cqe := qb.RecvCQ.Wait(p)
		if cqe.Err != nil {
			t.Errorf("recv error: %v", cqe.Err)
		}
		got = cqe.Payload
	})
	sim.Spawn("client", func(p *des.Proc) {
		p.Sleep(time.Microsecond)
		cqe := qa.PostAndWait(p, &SendWQE{WRID: 7, Op: OpSend, Payload: msg})
		if cqe.Err != nil {
			t.Errorf("send error: %v", cqe.Err)
		}
	})
	sim.Run()
	if string(got) != string(msg) {
		t.Fatalf("payload = %q, want %q", got, msg)
	}
}

func TestRDMAWriteMovesBytes(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(4096)
	dst := b.Mem.Alloc(8192)
	fill(src, 3)
	sim.Spawn("client", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 1024, 4096, AccessLocalWrite|AccessRemoteWrite)
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: src, Off: 0, Len: 4096}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(),
		})
		if cqe.Err != nil {
			t.Errorf("write error: %v", cqe.Err)
		}
	})
	sim.Run()
	want := src.Bytes(0, 4096)
	gotB := dst.Bytes(1024, 4096)
	for i := range want {
		if gotB[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], want[i])
		}
	}
}

func TestRDMAReadMovesBytes(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	remote := b.Mem.Alloc(64 << 10)
	local := a.Mem.Alloc(64 << 10)
	fill(remote, 9)
	sim.Spawn("client", func(p *des.Proc) {
		mr := b.HCA.Register(p, remote, 0, 64<<10, AccessRemoteRead)
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 2, Op: OpRead,
			Local:     []LocalSeg{{Buf: local, Off: 0, Len: 64 << 10}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(),
		})
		if cqe.Err != nil {
			t.Errorf("read error: %v", cqe.Err)
		}
	})
	sim.Run()
	want := remote.Bytes(0, 64<<10)
	gotB := local.Bytes(0, 64<<10)
	for i := range want {
		if gotB[i] != want[i] {
			t.Fatalf("byte %d = %d, want %d", i, gotB[i], want[i])
		}
	}
}

// TestTable1PrimitiveProperties verifies the four properties of Table 1.
func TestTable1PrimitiveProperties(t *testing.T) {
	// Channel primitives: receive buffer NOT exposed, must be pre-posted,
	// no steering tag, no rendezvous.
	t.Run("ChannelPrimitives", func(t *testing.T) {
		sim, fab, _, b, qa, qb := testPair(t, true)
		var rnrBefore int64
		sim.Spawn("client", func(p *des.Proc) {
			// No receive posted at the server: the send cannot land
			// (pre-posting required), and nothing about the server's memory
			// was ever exposed (no rkey exists for its receive buffers).
			rnrBefore = fab.Counters.Get("rnr")
			qa.PostSend(&SendWQE{WRID: 1, Op: OpSend, Payload: []byte("x")})
			p.Sleep(200 * time.Microsecond)
			qb.PostRecv(1, 64) // now it can complete on a retry
		})
		sim.Run()
		if fab.Counters.Get("rnr") <= rnrBefore {
			t.Error("send without pre-posted receive should hit RNR")
		}
		if got := b.HCA.RemoteExposedBytes(); got != 0 {
			t.Errorf("channel primitives exposed %d bytes", got)
		}
	})
	// Memory primitives: buffer exposed via steering tag, no pre-posted
	// receive needed, rendezvous (address+tag exchange) required.
	t.Run("MemoryPrimitives", func(t *testing.T) {
		sim, _, a, b, qa, _ := testPair(t, true)
		buf := b.Mem.Alloc(4096)
		src := a.Mem.Alloc(4096)
		sim.Spawn("client", func(p *des.Proc) {
			mr := b.HCA.Register(p, buf, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
			if b.HCA.RemoteExposedBytes() != 4096 {
				t.Errorf("exposed = %d, want 4096", b.HCA.RemoteExposedBytes())
			}
			// No PostRecv anywhere: RDMA Write completes without receiver
			// involvement, but only because the rkey rendezvous happened.
			cqe := qa.PostAndWait(p, &SendWQE{
				WRID: 1, Op: OpWrite,
				Local:     []LocalSeg{{Buf: src, Len: 4096}},
				RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(),
			})
			if cqe.Err != nil {
				t.Errorf("write error: %v", cqe.Err)
			}
		})
		sim.Run()
	})
}

func TestProtectionInvalidRkey(t *testing.T) {
	sim, fab, a, _, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(4096)
	sim.Spawn("client", func(p *des.Proc) {
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: src, Len: 4096}},
			RemoteKey: 0xdeadbeef, RemoteAddr: 0x1000,
		})
		if !errors.Is(cqe.Err, ErrProtection) {
			t.Errorf("err = %v, want protection error", cqe.Err)
		}
	})
	sim.Run()
	if fab.Counters.Get("protection_error") != 1 {
		t.Fatalf("protection_error = %d, want 1", fab.Counters.Get("protection_error"))
	}
	if qa.Err() == nil {
		t.Fatal("QP should be in error state after protection violation")
	}
}

func TestProtectionStaleRkeyAfterDeregister(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	remote := b.Mem.Alloc(4096)
	local := a.Mem.Alloc(4096)
	sim.Spawn("client", func(p *des.Proc) {
		mr := b.HCA.Register(p, remote, 0, 4096, AccessRemoteRead)
		rkey, addr := mr.Rkey(), mr.Start()
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpRead,
			Local:     []LocalSeg{{Buf: local, Len: 4096}},
			RemoteKey: rkey, RemoteAddr: addr,
		})
		if cqe.Err != nil {
			t.Errorf("first read failed: %v", cqe.Err)
		}
		b.HCA.Deregister(p, mr)
		// Stale-rkey replay: the attack the Read-Write design prevents by
		// never exposing server buffers at all.
		cqe = qa.PostAndWait(p, &SendWQE{
			WRID: 2, Op: OpRead,
			Local:     []LocalSeg{{Buf: local, Len: 4096}},
			RemoteKey: rkey, RemoteAddr: addr,
		})
		if !errors.Is(cqe.Err, ErrProtection) {
			t.Errorf("stale rkey read: err = %v, want protection error", cqe.Err)
		}
	})
	sim.Run()
}

func TestProtectionWrongPermission(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	remote := b.Mem.Alloc(4096)
	local := a.Mem.Alloc(4096)
	sim.Spawn("client", func(p *des.Proc) {
		// Registered for remote READ only; a write must be rejected.
		mr := b.HCA.Register(p, remote, 0, 4096, AccessRemoteRead)
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: local, Len: 4096}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(),
		})
		if !errors.Is(cqe.Err, ErrProtection) {
			t.Errorf("err = %v, want protection error", cqe.Err)
		}
	})
	sim.Run()
}

func TestProtectionOutOfBounds(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	remote := b.Mem.Alloc(8192)
	local := a.Mem.Alloc(8192)
	sim.Spawn("client", func(p *des.Proc) {
		mr := b.HCA.Register(p, remote, 0, 4096, AccessRemoteRead)
		cqe := qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpRead,
			Local:     []LocalSeg{{Buf: local, Len: 8192}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(), // 8 KiB from a 4 KiB MR
		})
		if !errors.Is(cqe.Err, ErrProtection) {
			t.Errorf("err = %v, want protection error", cqe.Err)
		}
	})
	sim.Run()
}

func TestRkeyGuessingAlmostNeverHits(t *testing.T) {
	sim, fab, a, b, qa, _ := testPair(t, true)
	remote := b.Mem.Alloc(4096)
	local := a.Mem.Alloc(4096)
	sim.Spawn("victim-reg", func(p *des.Proc) {
		b.HCA.Register(p, remote, 0, 4096, AccessRemoteRead)
	})
	hits := 0
	sim.Spawn("attacker", func(p *des.Proc) {
		p.Sleep(time.Millisecond)
		rng := des.NewRand(0xbad)
		for i := 0; i < 500; i++ {
			cqe := qa.PostAndWait(p, &SendWQE{
				WRID: uint64(i), Op: OpRead,
				Local:     []LocalSeg{{Buf: local, Len: 16}},
				RemoteKey: rng.Uint32(), RemoteAddr: remote.Base,
			})
			if cqe.Err == nil {
				hits++
			}
			// A protection error kills the QP; model the attacker
			// reconnecting by clearing the error (white-box reset).
			qa.errSt = nil
			qa.peer.errSt = nil
		}
	})
	sim.Run()
	if hits != 0 {
		t.Fatalf("random 32-bit rkey guessing hit %d times in 500 attempts", hits)
	}
	if fab.Counters.Get("protection_error") != 500 {
		t.Fatalf("protection_error = %d, want 500", fab.Counters.Get("protection_error"))
	}
}

// TestWriteThenSendOrdering verifies the guarantee the Read-Write design
// depends on: a Send posted after an RDMA Write is delivered after the
// Write's data is placed in client memory.
func TestWriteThenSendOrdering(t *testing.T) {
	sim, _, a, b, qa, qb := testPair(t, true)
	cbuf := a.Mem.Alloc(1 << 20)
	sbuf := b.Mem.Alloc(1 << 20)
	fill(sbuf, 42)
	ok := false
	sim.Spawn("client", func(p *des.Proc) {
		mr := a.HCA.Register(p, cbuf, 0, 1<<20, AccessLocalWrite|AccessRemoteWrite)
		qa.PostRecv(1, 1024)
		// Hand the rkey to the "server" side out of band (rendezvous).
		qb.PostSend(&SendWQE{WRID: 10, Op: OpWrite,
			Local:     []LocalSeg{{Buf: sbuf, Len: 1 << 20}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start()})
		qb.PostSend(&SendWQE{WRID: 11, Op: OpSend, Payload: []byte("reply")})
		cqe := qa.RecvCQ.Wait(p)
		if cqe.Err != nil {
			t.Errorf("recv: %v", cqe.Err)
			return
		}
		// On reply receipt, every byte of the preceding write must be
		// visible.
		want := sbuf.Bytes(0, 1<<20)
		got := cbuf.Bytes(0, 1<<20)
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("write data not placed before send delivery (byte %d)", i)
				return
			}
		}
		ok = true
	})
	sim.Run()
	if !ok {
		t.Fatal("ordering check did not complete")
	}
}

// TestSendNotOrderedAfterRead verifies that a Send posted after an RDMA Read
// can be delivered before the Read's data returns — the reason the
// Read-Read server must block on Read completions.
func TestSendNotOrderedAfterRead(t *testing.T) {
	sim, _, a, b, qa, qb := testPair(t, true)
	remote := a.Mem.Alloc(8 << 20) // large read: data return takes a while
	local := b.Mem.Alloc(8 << 20)
	var sendDelivered, readDone des.Time
	sim.Spawn("setup", func(p *des.Proc) {
		mr := a.HCA.Register(p, remote, 0, 8<<20, AccessRemoteRead)
		qa.PostRecv(1, 1024)
		readEv := des.NewEvent(sim)
		qb.PostSend(&SendWQE{WRID: 20, Op: OpRead,
			Local:     []LocalSeg{{Buf: local, Len: 8 << 20}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(), Done: readEv})
		qb.PostSend(&SendWQE{WRID: 21, Op: OpSend, Payload: []byte("reply")})
		sim.Spawn("recv", func(rp *des.Proc) {
			qa.RecvCQ.Wait(rp)
			sendDelivered = rp.Now()
		})
		readEv.Wait(p)
		readDone = p.Now()
	})
	sim.Run()
	if sendDelivered == 0 || readDone == 0 {
		t.Fatal("operations did not complete")
	}
	if sendDelivered >= readDone {
		t.Fatalf("send delivered at %v, read done at %v: send should overtake read data", sendDelivered, readDone)
	}
}

// TestORDLimitSerializesReads verifies that a 9th outstanding RDMA Read
// stalls until a slot frees, and that read throughput is bounded by
// ORD * size / RTT-ish pipelining rather than scaling with queue depth.
func TestORDLimitSerializesReads(t *testing.T) {
	sim, _, a, b, _, qb := testPair(t, true)
	remote := a.Mem.Alloc(16 << 10)
	local := b.Mem.Alloc(16 << 10)
	maxOutstanding := 0
	sim.Spawn("driver", func(p *des.Proc) {
		mr := a.HCA.Register(p, remote, 0, 16<<10, AccessRemoteRead)
		events := make([]*des.Event, 0, 32)
		for i := 0; i < 32; i++ {
			ev := des.NewEvent(sim)
			qb.PostSend(&SendWQE{WRID: uint64(i), Op: OpRead,
				Local:     []LocalSeg{{Buf: local, Len: 512}},
				RemoteKey: mr.Rkey(), RemoteAddr: mr.Start(), Done: ev})
			events = append(events, ev)
		}
		sim.Spawn("watch", func(wp *des.Proc) {
			for wp.Now() < des.Time(10*time.Millisecond) {
				if n := qb.ord.InUse(); n > maxOutstanding {
					maxOutstanding = n
				}
				wp.Sleep(100 * time.Nanosecond)
			}
		})
		des.WaitAll(p, events...)
		sim.Stop()
	})
	sim.Run()
	if maxOutstanding > 8 {
		t.Fatalf("outstanding reads = %d, want <= 8 (ORD limit)", maxOutstanding)
	}
	if maxOutstanding < 2 {
		t.Fatalf("outstanding reads = %d, expected pipelining", maxOutstanding)
	}
}

// TestBandwidthSaturation sanity-checks the link model: a single large
// RDMA Write should achieve close to port bandwidth.
func TestBandwidthSaturation(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, false)
	const size = 64 << 20
	src := a.Mem.Alloc(size)
	var elapsed des.Time
	sim.Spawn("client", func(p *des.Proc) {
		mr := b.HCA.Register(p, b.Mem.Alloc(size), 0, size, AccessLocalWrite|AccessRemoteWrite)
		start := p.Now()
		cqe := qa.PostAndWait(p, &SendWQE{WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: src, Len: size}},
			RemoteKey: mr.Rkey(), RemoteAddr: mr.Start()})
		if cqe.Err != nil {
			t.Errorf("write: %v", cqe.Err)
		}
		elapsed = p.Now() - start
	})
	sim.Run()
	mbps := float64(size) / 1e6 / elapsed.Seconds()
	if mbps < 850 || mbps > 905 {
		t.Fatalf("single-stream bandwidth = %.1f MB/s, want ~900", mbps)
	}
}

// TestIncastSharesReceiverPort checks that concurrent senders into one node
// share its port bandwidth (the Fig. 10 server-egress model, mirrored).
func TestIncastSharesReceiverPort(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	server := fab.AddNode(NodeConfig{Name: "server", PortBandwidth: 900e6})
	const size = 8 << 20
	var last des.Time
	for i := 0; i < 3; i++ {
		client := fab.AddNode(NodeConfig{Name: "client", PortBandwidth: 900e6})
		qc, _ := fab.Connect(client, server, QPConfig{})
		src := client.Mem.Alloc(size)
		dst := server.Mem.Alloc(size)
		sim.Spawn("c", func(p *des.Proc) {
			mr := server.HCA.Register(p, dst, 0, size, AccessLocalWrite|AccessRemoteWrite)
			qc.PostAndWait(p, &SendWQE{WRID: 1, Op: OpWrite,
				Local:     []LocalSeg{{Buf: src, Len: size}},
				RemoteKey: mr.Rkey(), RemoteAddr: mr.Start()})
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	sim.Run()
	aggMBps := float64(3*size) / 1e6 / last.Seconds()
	if aggMBps > 910 {
		t.Fatalf("aggregate into one port = %.1f MB/s, should be capped at ~900", aggMBps)
	}
	if aggMBps < 800 {
		t.Fatalf("aggregate = %.1f MB/s, port should still be well utilized", aggMBps)
	}
}

func TestFMRMapUnmapReuse(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	local := a.Mem.Alloc(4096)
	sim.Spawn("p", func(p *des.Proc) {
		h := b.HCA.NewFMRHandle(p, 1<<20)
		for i := 0; i < 3; i++ {
			buf := b.Mem.Alloc(64 << 10)
			fill(buf, byte(i))
			mr := h.Map(p, buf, 0, 64<<10, AccessRemoteRead)
			cqe := qa.PostAndWait(p, &SendWQE{WRID: uint64(i), Op: OpRead,
				Local:     []LocalSeg{{Buf: local, Len: 4096}},
				RemoteKey: mr.Rkey(), RemoteAddr: mr.Start()})
			if cqe.Err != nil {
				t.Errorf("read %d: %v", i, cqe.Err)
			}
			if local.Bytes(0, 1)[0] != buf.Bytes(0, 1)[0] {
				t.Errorf("iteration %d read wrong data", i)
			}
			h.Unmap(p)
		}
	})
	sim.Run()
}

func TestGlobalRkeyReachesAnyBuffer(t *testing.T) {
	sim, _, a, b, qa, _ := testPair(t, true)
	g := b.HCA.EnableGlobalRkey()
	buf1 := b.Mem.Alloc(4096)
	buf2 := b.Mem.Alloc(4096)
	fill(buf1, 1)
	fill(buf2, 2)
	local := a.Mem.Alloc(4096)
	sim.Spawn("p", func(p *des.Proc) {
		for _, buf := range []*Buffer{buf1, buf2} {
			cqe := qa.PostAndWait(p, &SendWQE{WRID: 1, Op: OpRead,
				Local:     []LocalSeg{{Buf: local, Len: 4096}},
				RemoteKey: g.Rkey(), RemoteAddr: buf.Base})
			if cqe.Err != nil {
				t.Errorf("read via global rkey: %v", cqe.Err)
			}
			if local.Bytes(10, 1)[0] != buf.Bytes(10, 1)[0] {
				t.Error("global-rkey read returned wrong data")
			}
		}
	})
	sim.Run()
}

func TestPhysicalRunsCoverBuffer(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "n", MeanPhysRun: 32 << 10})
	for _, size := range []int{4096, 128 << 10, 1 << 20} {
		b := n.Mem.Alloc(size)
		runs := b.PhysicalRuns(0, size)
		sum := 0
		for _, r := range runs {
			sum += r
		}
		if sum != size {
			t.Fatalf("runs sum to %d, want %d", sum, size)
		}
	}
	// A 128 KiB buffer with 32 KiB mean runs should need several segments.
	b := n.Mem.Alloc(128 << 10)
	if runs := b.PhysicalRuns(0, 128<<10); len(runs) < 2 {
		t.Fatalf("expected fragmentation, got %d runs", len(runs))
	}
	// A contiguous allocation is one run.
	cb := n.Mem.AllocContiguous(128 << 10)
	if runs := cb.PhysicalRuns(0, 128<<10); len(runs) != 1 {
		t.Fatalf("contiguous alloc has %d runs", len(runs))
	}
}

func TestQPErrorFlushesQueuedWork(t *testing.T) {
	sim, _, a, _, qa, _ := testPair(t, true)
	src := a.Mem.Alloc(4096)
	var second error
	sim.Spawn("p", func(p *des.Proc) {
		bad := qa.PostAndWait(p, &SendWQE{WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: src, Len: 64}},
			RemoteKey: 0x1234, RemoteAddr: 0x1000})
		if bad.Err == nil {
			t.Error("expected protection error")
		}
		cqe := qa.PostAndWait(p, &SendWQE{WRID: 2, Op: OpSend, Payload: []byte("x")})
		second = cqe.Err
	})
	sim.Run()
	if !errors.Is(second, ErrQPError) && !errors.Is(second, ErrProtection) {
		t.Fatalf("post-error work completed with %v, want flush", second)
	}
}
