package ibsim

import (
	"fmt"
	"time"

	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/stats"
)

// Fabric is one simulated InfiniBand subnet: a set of nodes connected
// through a non-blocking switch. Per-node port bandwidth is the only link
// capacity constraint (the switch fabric itself is never the bottleneck,
// matching a single-switch cluster like the paper's testbed).
type Fabric struct {
	Sim *des.Sim
	// CopyData selects whether bulk RDMA payloads are materialized and
	// copied between node memories. Tests enable it to verify end-to-end
	// integrity; large experiments disable it to keep wall-clock time down.
	// Control messages (Send payloads) are always real.
	CopyData bool
	Counters *stats.Counters
	// hot binds the per-WQE counters to pre-registered atomic slots so the
	// data path never takes the counter set's mutex; see hotCounters.
	hot   hotCounters
	nodes []*Node
	qpn   int
	// wqeSeq/cqeSeq hand out fabric-wide unique ids for trace pairing:
	// WRIDs are caller-chosen and reused, so they cannot key Begin/End
	// pairs on their own.
	wqeSeq uint64
	cqeSeq uint64
	// conns records every QP created by Connect in creation order, so fault
	// injection by node pair visits endpoints deterministically and keeps
	// working across reconnects (new QPs join the registry as they are made).
	conns []*QP
}

// NewFabric creates an empty fabric on the given simulation.
func NewFabric(sim *des.Sim, copyData bool) *Fabric {
	f := &Fabric{Sim: sim, CopyData: copyData, Counters: stats.NewCounters()}
	f.hot = newHotCounters(f.Counters)
	return f
}

// hotCounters are the fabric counters incremented on every data-path work
// request or completion. They live on the stats.Counters atomic-slot fast
// path: the named-counter mutex would otherwise serialize each WQE against
// telemetry sampling and cross-shard traffic at high client counts. Cold
// events (QP errors, protection faults, injected faults) stay on the plain
// named path. Snapshot output is unchanged — slots merge into the same
// sorted listing and never-fired names stay absent.
type hotCounters struct {
	opSend, bytesSend   *stats.Slot
	opWrite, bytesWrite *stats.Slot
	opRead, bytesRead   *stats.Slot
	wqeFlushed          *stats.Slot
	rnr                 *stats.Slot
	cqeDropped          *stats.Slot
}

func newHotCounters(c *stats.Counters) hotCounters {
	return hotCounters{
		opSend:     c.Slot("op.send"),
		bytesSend:  c.Slot("bytes.send"),
		opWrite:    c.Slot("op.write"),
		bytesWrite: c.Slot("bytes.write"),
		opRead:     c.Slot("op.read"),
		bytesRead:  c.Slot("bytes.read"),
		wqeFlushed: c.Slot("wqe.flushed"),
		rnr:        c.Slot("rnr"),
		cqeDropped: c.Slot("cqe.dropped"),
	}
}

// NodeConfig sizes one host and its HCA.
type NodeConfig struct {
	Name  string
	Cores int // CPU cores

	// HCA port characteristics.
	PortBandwidth float64      // bytes/second each direction (full duplex)
	PortLatency   des.Duration // one-way wire+switch latency

	// MaxORD bounds the outstanding RDMA Reads a local QP may have in
	// flight (and, symmetrically, the IRD it advertises). The Mellanox
	// HCAs of the paper's era allow at most 8.
	MaxORD int

	// WQEOverhead is HCA processing time to launch one work request.
	WQEOverhead des.Duration

	// ReadResponseOverhead is channel turnaround per RDMA Read served by
	// this node as responder: request decode, DMA setup and response
	// scheduling occupy the transmit port beyond pure serialization. It is
	// why splitting one transfer into many small Reads (the all-physical
	// fragmentation of §5.2) costs real bandwidth and presses the IRD/ORD
	// limit.
	ReadResponseOverhead des.Duration

	// Registration cost model. TPT updates are transactions across the I/O
	// bus serviced by a single TPT engine on the HCA, so the *Bus costs
	// serialize across all registrations on the node — this is why dynamic
	// registration throughput is bounded by PageSize / per-page-bus-cost
	// regardless of record size (the flat saturation of Fig. 5), and why
	// §4.3 stresses that HCA response time grows with load.
	RegPerPageCPU    des.Duration // pin + translate, charged to host CPU, per page
	RegBase          des.Duration // per-registration TPT transaction overhead (serial)
	RegPerPageBus    des.Duration // per-page TPT entry install (serial)
	DeregPerPageCPU  des.Duration // unpin per page (host CPU)
	DeregBase        des.Duration // TPT invalidate transaction overhead (serial)
	DeregPerPageBus  des.Duration // per-page TPT entry invalidate (serial)
	FMRMapCPU        des.Duration // FMR map pin/translate per page (host CPU)
	FMRMapPerPageBus des.Duration // FMR map TPT write per page (serial, cheaper)

	// CPU cost parameters (see package cpu). CopyNsPerByte is in
	// nanoseconds per byte (fractional values allowed). MigrationCost is the
	// penalty for completing work on one CPU and resuming the waiting thread
	// on another (completion-to-CPU affinity; zero disables the model).
	CopyNsPerByte float64
	InterruptCost des.Duration
	SyscallCost   des.Duration
	MigrationCost des.Duration

	// MeanPhysRun overrides the memory physical-contiguity model when > 0.
	MeanPhysRun int

	// SequentialRkeys switches steering-tag allocation from the default
	// randomized draw to a sequential counter, modelling mlx4-era drivers
	// that handed out monotonically increasing keys. Sequential tags make
	// rkey guessing trivial — an attacker scans upward from 1 — which is
	// exactly what the adversary experiments measure against the default.
	SequentialRkeys bool

	// FMRKeyRotate allocates a fresh steering tag on every FMR re-map
	// instead of reusing the handle's pool-time tag. Reuse is what opens
	// the FMR remap window: a peer holding a pre-remap rkey silently
	// addresses whatever the handle maps next. Rotation closes the window
	// at the cost of one tag allocation per remap.
	FMRKeyRotate bool

	Seed uint64
}

// Node is one simulated host: CPU complex, memory, and an HCA.
type Node struct {
	fab  *Fabric
	name string
	cfg  NodeConfig

	CPU *cpu.Model
	Mem *Memory
	HCA *HCA

	txPort *des.Resource
	rxPort *des.Resource
}

// AddNode creates a host on the fabric.
func (f *Fabric) AddNode(cfg NodeConfig) *Node {
	if cfg.Cores <= 0 {
		cfg.Cores = 2
	}
	if cfg.PortBandwidth <= 0 {
		cfg.PortBandwidth = 900e6 // SDR x8 PCIe practical unidirectional
	}
	if cfg.PortLatency <= 0 {
		cfg.PortLatency = 3 * time.Microsecond
	}
	if cfg.MaxORD <= 0 {
		cfg.MaxORD = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = uint64(len(f.nodes) + 1)
	}
	n := &Node{
		fab:    f,
		name:   cfg.Name,
		cfg:    cfg,
		txPort: des.NewResource(f.Sim, cfg.Name+"/tx", 1),
		rxPort: des.NewResource(f.Sim, cfg.Name+"/rx", 1),
	}
	n.CPU = cpu.New(f.Sim, cfg.Name, cfg.Cores)
	n.CPU.CopyNsPerByte = cfg.CopyNsPerByte
	n.CPU.InterruptCost = cfg.InterruptCost
	n.CPU.SyscallCost = cfg.SyscallCost
	n.CPU.MigrationCost = cfg.MigrationCost
	n.Mem = newMemory(n, cfg.Seed*0x9E37+1)
	if cfg.MeanPhysRun > 0 {
		n.Mem.MeanPhysRun = cfg.MeanPhysRun
	}
	n.HCA = newHCA(n, cfg)
	f.nodes = append(f.nodes, n)
	return n
}

// Name returns the node's configured name.
func (n *Node) Name() string { return n.name }

// Config returns the node configuration.
func (n *Node) Config() NodeConfig { return n.cfg }

// Sim returns the owning simulation.
func (n *Node) Sim() *des.Sim { return n.fab.Sim }

// Fabric returns the owning fabric.
func (n *Node) Fabric() *Fabric { return n.fab }

// transferDuration computes wire occupancy for size bytes between two nodes:
// the stream is clocked at the slower of the two port rates.
func transferDuration(size int, from, to *Node) des.Duration {
	bw := from.cfg.PortBandwidth
	if to.cfg.PortBandwidth < bw {
		bw = to.cfg.PortBandwidth
	}
	return des.Duration(float64(size) / bw * 1e9)
}

// transfer serializes size bytes from one node's port to another's,
// occupying both ends (cut-through: both are held for the same interval, so
// a single stream achieves full port bandwidth while concurrent streams
// into one node share its port — the incast behaviour Fig. 10 relies on).
// It returns after the last byte has left; the data arrives one PortLatency
// later (callers schedule delivery).
func transfer(p *des.Proc, from, to *Node, size int) {
	transferExtra(p, from, to, size, 0)
}

// transferExtra is transfer with additional port occupancy (channel
// turnaround for read responses).
func transferExtra(p *des.Proc, from, to *Node, size int, extra des.Duration) {
	from.txPort.Acquire(p, 1)
	to.rxPort.Acquire(p, 1)
	p.Sleep(transferDuration(size, from, to) + extra)
	to.rxPort.Release(1)
	from.txPort.Release(1)
}

// latency returns the one-way delivery latency between two nodes (the max
// of the two port latencies: dominated by the slower NIC).
func latency(from, to *Node) des.Duration {
	l := from.cfg.PortLatency
	if to.cfg.PortLatency > l {
		l = to.cfg.PortLatency
	}
	return l
}

// PortUtilization returns (tx, rx) utilization of the node's port since
// simulation start of the given window.
func (n *Node) PortUtilization(since des.Time) (tx, rx float64) {
	return n.txPort.Utilization(since), n.rxPort.Utilization(since)
}

// TxPort exposes the transmit-side port resource for transports (e.g. the
// NFS/TCP baseline) that serialize their own wire occupancy.
func (n *Node) TxPort() *des.Resource { return n.txPort }

// RxPort exposes the receive-side port resource.
func (n *Node) RxPort() *des.Resource { return n.rxPort }

// WireDuration returns the serialization time of size bytes toward peer
// (clocked at the slower port).
func (n *Node) WireDuration(peer *Node, size int) des.Duration {
	return transferDuration(size, n, peer)
}

// WireLatency returns the one-way delivery latency toward peer.
func (n *Node) WireLatency(peer *Node) des.Duration { return latency(n, peer) }

func (f *Fabric) nextQPN() int {
	f.qpn++
	return f.qpn
}

// Connect establishes a reliable connection between two nodes and returns
// the two queue-pair endpoints. ORD on each side is clamped to the peer's
// advertised inbound depth (IRD), as the CM negotiation does on real
// hardware.
func (f *Fabric) Connect(a, b *Node, cfg QPConfig) (*QP, *QP) {
	qa := newQP(a, cfg, f.nextQPN())
	qb := newQP(b, cfg, f.nextQPN())
	qa.peer, qb.peer = qb, qa
	ordA := min(a.cfg.MaxORD, b.cfg.MaxORD)
	ordB := ordA
	qa.ord = des.NewResource(f.Sim, fmt.Sprintf("%s/qp%d/ord", a.name, qa.qpn), ordA)
	qb.ord = des.NewResource(f.Sim, fmt.Sprintf("%s/qp%d/ord", b.name, qb.qpn), ordB)
	qa.start()
	qb.start()
	f.conns = append(f.conns, qa, qb)
	return qa, qb
}

// ScheduleQPError arms a fault: at virtual time at, the given QP (and, via
// error propagation, its peer) transitions to the error state. In-flight
// WQEs flush with errors wrapping ErrInjected and both CQs of both
// endpoints observe the death. Injecting into an endpoint that already died
// or was closed is a no-op, so schedules laid out in advance stay safe
// across reconnects.
func (f *Fabric) ScheduleQPError(at des.Time, q *QP, err error) {
	f.Sim.SpawnAt(at, "fault-qp", func(*des.Proc) {
		if q.closed || q.errSt != nil {
			return
		}
		q.InjectError(err)
	})
}

// ScheduleLinkFlap arms a fault: at virtual time at, every live connection
// between nodes a and b is killed, as a port bounce on either host would do.
// Connections established after the flap (e.g. by recovery reconnecting) are
// untouched, so a schedule of flaps at increasing times tests repeated
// failure/recovery cycles. Endpoints are visited in creation order for
// determinism.
func (f *Fabric) ScheduleLinkFlap(at des.Time, a, b *Node) {
	f.Sim.SpawnAt(at, "fault-flap", func(*des.Proc) {
		f.Counters.Inc("fault.flap")
		for _, q := range f.conns {
			if q.closed || q.errSt != nil || q.peer == nil {
				continue
			}
			if (q.node == a && q.peer.node == b) || (q.node == b && q.peer.node == a) {
				q.InjectError(fmt.Errorf("%w: link flap %s<->%s", ErrInjected, a.name, b.name))
			}
		}
	})
}
