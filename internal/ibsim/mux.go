package ibsim

import (
	"fmt"

	"repro/internal/des"
)

// Multiplexed (shared) queue pairs.
//
// A dedicated RC connection per client is what stops RDMA servers from
// scaling: QP context, receive rings and CQ slots all grow O(connections)
// (the RDMAvisor observation). The fix, modelled here after dynamically
// connected transport (DCT), is to let many lightweight client endpoints
// share one server-side QP. The shared QP owns all the heavy state — send
// engine, ORD slots, SRQ attachment, CQs — while each endpoint costs only a
// slot-table entry. Work requests carry a stream id that selects the target
// endpoint on the way out and demultiplexes arrivals on the way in, so a
// consumer of the shared CQ routes by CQE.Stream instead of CQE.QP.
//
// Failure scoping follows the transport split: an endpoint dying frees its
// slot and surfaces as an endpoint-scoped error CQE (Stream != 0) on the
// shared QP's receive CQ; the shared QP dying takes every attached endpoint
// with it (Stream == 0 error CQE) but nothing else.

// muxSlot is one endpoint attachment on a shared QP. The generation tag
// makes recycled slots safe: stream ids embed the generation, so traffic
// addressed to a detached endpoint resolves to nothing (and flushes) instead
// of landing on the slot's next occupant.
type muxSlot struct {
	ep  *QP
	gen uint16
}

// Modelled control-state footprints, used by the receive-side memory
// accounting (rpcrdma.ServerTransport.RecvStateBytes). Order-of-magnitude
// honest for the paper era: a QP costs its HCA context plus host-side queue
// structures; a mux endpoint costs one slot entry (pointer, stream id,
// generation, credit sub-account).
const (
	QPContextBytes    = 4096
	EndpointSlotBytes = 96
)

const maxMuxSlots = 0xFFFE // slot index + 1 must fit in 16 stream bits

// streamID encodes a slot index and generation into a wire stream id.
// Stream 0 is reserved to mean "not multiplexed" / "QP scope".
func streamID(idx int, gen uint16) uint32 {
	return uint32(idx+1) | uint32(gen)<<16
}

// NewMuxQP creates a shared (multiplexed) queue pair on the node. It has no
// single peer; endpoints attach with AttachEndpoint and sends address them
// by SendWQE.Stream. ORD slots are provisioned once for the whole QP and
// contended by every endpoint, as a DCT responder context would be.
func (f *Fabric) NewMuxQP(n *Node, cfg QPConfig) *QP {
	q := newQP(n, cfg, f.nextQPN())
	q.mux = true
	q.ord = des.NewResource(f.Sim, fmt.Sprintf("%s/qp%d/ord", n.name, q.qpn), n.cfg.MaxORD)
	q.start()
	f.Counters.Inc("mux.qp")
	return q
}

// AttachEndpoint connects a lightweight endpoint on the client node to a
// shared QP, returning the endpoint's own (full) QP. The client side keeps
// per-connection state as usual — that is the client's own business — while
// the shared side spends only a slot entry. The endpoint's stream id is
// stamped on everything it posts, and everything the shared QP sends toward
// it must carry the same stream (rpcrdma stamps it per logical connection).
func (f *Fabric) AttachEndpoint(client *Node, mqp *QP, cfg QPConfig) (*QP, error) {
	if !mqp.mux {
		panic("ibsim: AttachEndpoint on a non-mux QP")
	}
	if mqp.closed || mqp.errSt != nil {
		return nil, fmt.Errorf("%w: shared qp is down", ErrQPError)
	}
	var idx int
	if n := len(mqp.freeSlots); n > 0 {
		idx = mqp.freeSlots[n-1]
		mqp.freeSlots = mqp.freeSlots[:n-1]
	} else {
		if len(mqp.slots) >= maxMuxSlots {
			return nil, fmt.Errorf("%w: mux slot table full", ErrQPError)
		}
		idx = len(mqp.slots)
		mqp.slots = append(mqp.slots, muxSlot{})
	}
	ep := newQP(client, cfg, f.nextQPN())
	ep.peer = mqp
	ep.stream = streamID(idx, mqp.slots[idx].gen)
	ord := min(client.cfg.MaxORD, mqp.node.cfg.MaxORD)
	ep.ord = des.NewResource(f.Sim, fmt.Sprintf("%s/qp%d/ord", client.name, ep.qpn), ord)
	mqp.slots[idx].ep = ep
	mqp.liveEps++
	ep.start()
	// Endpoints join the fault-injection registry like any connection, so
	// link flaps by node pair keep finding them; the shared QP itself is not
	// registered (it has no single peer node).
	f.conns = append(f.conns, ep)
	f.Counters.Inc("mux.attach")
	return ep, nil
}

// peerFor resolves the effective remote endpoint of a work request: the
// fixed peer on an ordinary connection, or the slot-table entry addressed by
// the stream id on a mux QP. Nil means the stream is stale (endpoint
// detached, or its slot was recycled under a newer generation); callers
// flush the request. This is the demultiplex hot path — it must not
// allocate.
func (q *QP) peerFor(stream uint32) *QP {
	if !q.mux {
		return q.peer
	}
	idx := int(stream&0xFFFF) - 1
	if idx < 0 || idx >= len(q.slots) {
		return nil
	}
	sl := &q.slots[idx]
	if sl.ep == nil || sl.gen != uint16(stream>>16) {
		return nil
	}
	return sl.ep
}

// endpointDead detaches a dying endpoint from its shared QP: the slot is
// freed for reuse under a bumped generation, and — while the shared QP
// itself is healthy — an endpoint-scoped error CQE (Stream set) tells the
// shared CQ's consumer that exactly this endpoint is gone. Idempotent.
func (q *QP) endpointDead(ep *QP) {
	idx := int(ep.stream&0xFFFF) - 1
	if idx < 0 || idx >= len(q.slots) || q.slots[idx].ep != ep {
		return // already detached
	}
	q.slots[idx].ep = nil
	q.slots[idx].gen++
	q.freeSlots = append(q.freeSlots, idx)
	q.liveEps--
	q.node.fab.Counters.Inc("mux.detach")
	if q.errSt == nil && !q.closed {
		q.RecvCQ.post(&CQE{
			Op: OpRecv, QP: q, Stream: ep.stream,
			Err: fmt.Errorf("%w: endpoint detached", ErrQPError),
		})
	}
}

// TerminateEndpoint moves exactly one attached endpoint of a mux QP into the
// error state, leaving the shared QP — and every sibling endpoint — healthy.
// This is the server-initiated quarantine primitive: terminating a
// misbehaving client must not take the shard's whole population down the way
// Terminate on the shared QP would. Returns false when the stream is stale
// (endpoint already gone), which makes repeated quarantine calls idempotent.
func (q *QP) TerminateEndpoint(stream uint32, err error) bool {
	if !q.mux {
		panic("ibsim: TerminateEndpoint on a non-mux QP")
	}
	ep := q.peerFor(stream)
	if ep == nil {
		return false
	}
	if err == nil {
		err = ErrQPError
	}
	ep.setError(err) // routes through endpointDead: slot freed, scoped CQE
	return true
}

// IsMux reports whether this is a shared (multiplexed) QP.
func (q *QP) IsMux() bool { return q.mux }

// Stream returns the endpoint's stream id on its shared QP (0 on ordinary
// connections and on the mux QP itself).
func (q *QP) Stream() uint32 { return q.stream }

// Endpoints returns the number of live endpoints attached to a mux QP.
func (q *QP) Endpoints() int { return q.liveEps }

// SlotTableSize returns the high-water slot count of a mux QP (live plus
// free-for-reuse slots). A stable value across attach/detach churn is the
// no-leak signal.
func (q *QP) SlotTableSize() int { return len(q.slots) }

// RecvStateBytes models the receive-side control memory this QP pins on its
// node: the QP context plus private posted receive buffers plus (mux side)
// the endpoint slot table. SRQ-pooled buffers are accounted on the SRQ.
func (q *QP) RecvStateBytes() int64 {
	n := int64(QPContextBytes)
	for _, r := range q.rq {
		n += int64(r.Cap)
	}
	n += int64(q.liveEps) * EndpointSlotBytes
	return n
}
