package ibsim

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/trace"
)

// Access is the permission set of a memory region.
type Access uint8

// Access flags. LocalWrite allows the HCA to place received/read data into
// the region; RemoteRead / RemoteWrite expose it to the peer's memory
// primitives — exposure is precisely what the paper's security analysis is
// about, so fabric counters track remotely accessible registrations.
const (
	AccessLocalWrite Access = 1 << iota
	AccessRemoteRead
	AccessRemoteWrite
)

func (a Access) String() string {
	s := ""
	if a&AccessLocalWrite != 0 {
		s += "L"
	}
	if a&AccessRemoteRead != 0 {
		s += "R"
	}
	if a&AccessRemoteWrite != 0 {
		s += "W"
	}
	if s == "" {
		return "-"
	}
	return s
}

// MR is a registered memory region: a TPT entry binding a steering tag to a
// virtual address range with access permissions.
type MR struct {
	hca    *HCA
	buf    *Buffer
	bufOff int
	start  uint64 // virtual start address
	length int
	rkey   uint32
	access Access
	valid  bool
	fmr    bool // registered through the FMR path
	global bool // the all-physical global steering tag
}

// Rkey returns the region's steering tag.
func (m *MR) Rkey() uint32 { return m.rkey }

// Start returns the region's starting virtual address.
func (m *MR) Start() uint64 { return m.start }

// Length returns the registered length in bytes.
func (m *MR) Length() int { return m.length }

// Access returns the permission set.
func (m *MR) Access() Access { return m.access }

// Valid reports whether the TPT entry is still installed.
func (m *MR) Valid() bool { return m.valid }

// Buffer returns the underlying buffer (nil for the global region).
func (m *MR) Buffer() *Buffer { return m.buf }

// HCA is the host channel adapter: it owns the TPT and provides the
// cost-modelled registration primitives out of which the package memreg
// strategies are composed.
type HCA struct {
	node *Node
	cfg  NodeConfig
	tpt  map[uint32]*MR
	rng  *des.Rand

	// tptEngine serializes TPT update transactions: one engine per HCA, so
	// concurrent registrations queue — registration throughput is a node
	// property, not a per-thread one.
	tptEngine *des.Resource

	globalMR *MR

	// tagSeq is the last steering tag handed out in sequential-allocation
	// mode (NodeConfig.SequentialRkeys); unused under randomized draws.
	tagSeq uint32

	// watches are write-watch doorbells (see watch.go), keyed by rkey.
	// Nil until the first WatchWrite, so non-RFP runs pay one nil check
	// per delivered Write.
	watches map[uint32][]*WriteWatch

	// Exposure accounting for the security evaluation.
	remoteExposedBytes int64
	remoteExposedEver  int64 // cumulative count of remotely accessible MRs
}

func newHCA(n *Node, cfg NodeConfig) *HCA {
	return &HCA{
		node:      n,
		cfg:       cfg,
		tpt:       make(map[uint32]*MR),
		rng:       des.NewRand(cfg.Seed*0x51ED + 7),
		tptEngine: des.NewResource(n.fab.Sim, cfg.Name+"/tpt-engine", 1),
	}
}

// busTxn occupies the TPT engine for d.
func (h *HCA) busTxn(p *des.Proc, d des.Duration) {
	if d <= 0 {
		return
	}
	h.tptEngine.Use(p, 1, d)
}

// TPTEngineUtilization reports how loaded the registration path is.
func (h *HCA) TPTEngineUtilization(since des.Time) float64 {
	return h.tptEngine.Utilization(since)
}

// Node returns the owning node.
func (h *HCA) Node() *Node { return h.node }

func (h *HCA) pages(length int) int {
	return (length + pageSize - 1) / pageSize
}

func (h *HCA) allocTag() uint32 {
	if h.cfg.SequentialRkeys {
		// Sequential tags, as mlx4-era drivers allocated them: the next
		// key is always last+1, so a malicious peer scanning upward from 1
		// hits every live registration. Kept as an opt-in policy precisely
		// so the adversary experiments can measure how bad it is.
		for {
			h.tagSeq++
			if h.tagSeq == 0 {
				h.tagSeq = 1
			}
			if _, exists := h.tpt[h.tagSeq]; !exists {
				return h.tagSeq
			}
		}
	}
	for {
		// 32-bit steering tags, as in the paper's security discussion: large
		// enough that guessing is improbable per attempt, small enough that a
		// patient malicious client can scan the space.
		k := h.rng.Uint32()
		if k == 0 {
			continue
		}
		if _, exists := h.tpt[k]; !exists {
			return k
		}
	}
}

func (h *HCA) install(mr *MR) {
	h.tpt[mr.rkey] = mr
	mr.valid = true
	if mr.access&(AccessRemoteRead|AccessRemoteWrite) != 0 {
		h.remoteExposedBytes += int64(mr.length)
		h.remoteExposedEver++
		h.node.fab.Counters.Inc("mr.remote_exposed")
	}
	h.node.fab.Counters.Inc("mr.registered")
	if tr := h.node.fab.Sim.Tracer(); tr != nil {
		tr.Begin(int64(h.node.fab.Sim.Now()), trace.LayerIbsim, trace.KindMR, h.node.name, "mr",
			uint64(mr.rkey), trace.MRArg(uint8(mr.access), mr.length))
	}
}

func (h *HCA) remove(mr *MR) {
	if !mr.valid {
		panic("ibsim: deregistering invalid MR")
	}
	delete(h.tpt, mr.rkey)
	mr.valid = false
	if mr.access&(AccessRemoteRead|AccessRemoteWrite) != 0 {
		h.remoteExposedBytes -= int64(mr.length)
	}
	h.node.fab.Counters.Inc("mr.deregistered")
	if tr := h.node.fab.Sim.Tracer(); tr != nil {
		tr.End(int64(h.node.fab.Sim.Now()), trace.LayerIbsim, trace.KindMR, h.node.name, "mr",
			uint64(mr.rkey), 0)
	}
}

// RemoteExposedBytes returns the number of bytes currently registered with
// remote read or write access — the server's attack surface in the
// Read-Read design.
func (h *HCA) RemoteExposedBytes() int64 { return h.remoteExposedBytes }

// RemoteExposedEver returns the cumulative count of remotely accessible
// registrations this HCA ever installed. A Read-Write NFS server keeps this
// at zero for its lifetime.
func (h *HCA) RemoteExposedEver() int64 { return h.remoteExposedEver }

// Register performs a full dynamic registration: pin and translate each
// page (host CPU), then one I/O-bus transaction to install the TPT entry
// (the caller waits for the HCA response). This is the paper's "regular
// registration" whose critical-path cost motivates §4.3.
func (h *HCA) Register(p *des.Proc, buf *Buffer, off, length int, access Access) *MR {
	if off < 0 || length <= 0 || off+length > buf.Size {
		panic(fmt.Sprintf("ibsim: register [%d,%d) outside buffer size %d", off, off+length, buf.Size))
	}
	pages := h.pages(length)
	start := p.Now()
	h.node.CPU.Work(p, des.Duration(pages)*h.cfg.RegPerPageCPU)
	h.busTxn(p, h.cfg.RegBase+des.Duration(pages)*h.cfg.RegPerPageBus)
	mr := &MR{
		hca: h, buf: buf, bufOff: off,
		start: buf.Addr(off), length: length,
		rkey: h.allocTag(), access: access,
	}
	h.install(mr)
	if tr := h.node.fab.Sim.Tracer(); tr != nil {
		tr.Span(int64(start), int64(p.Now()), trace.LayerIbsim, trace.KindRegCall, h.node.name, "register",
			uint64(mr.rkey), int64(length))
		tr.Observe("reg.register", (p.Now() - start).Micros())
	}
	return mr
}

// Deregister tears a registration down: TPT invalidate (I/O-bus
// transaction), then per-page unpinning on the host CPU.
func (h *HCA) Deregister(p *des.Proc, mr *MR) {
	if mr.global {
		panic("ibsim: cannot deregister the global steering tag")
	}
	pages := h.pages(mr.length)
	start := p.Now()
	h.busTxn(p, h.cfg.DeregBase+des.Duration(pages)*h.cfg.DeregPerPageBus)
	h.node.CPU.Work(p, des.Duration(pages)*h.cfg.DeregPerPageCPU)
	h.remove(mr)
	if tr := h.node.fab.Sim.Tracer(); tr != nil {
		tr.Span(int64(start), int64(p.Now()), trace.LayerIbsim, trace.KindRegCall, h.node.name, "deregister",
			uint64(mr.rkey), int64(mr.length))
		tr.Observe("reg.deregister", (p.Now() - start).Micros())
	}
}

// FMRHandle is a pre-allocated fast-registration context: the steering tag
// and TPT slot were allocated at pool-creation time, so mapping a buffer
// into it skips the TPT allocation round trip.
type FMRHandle struct {
	hca     *HCA
	rkey    uint32
	maxLen  int
	mr      *MR // currently mapped region, nil when unmapped
	remaps  int
	created bool
}

// NewFMRHandle pre-allocates an FMR context able to map regions up to
// maxLen bytes. This is done at pool initialization, off the critical path,
// so it charges a full registration's base transaction once.
func (h *HCA) NewFMRHandle(p *des.Proc, maxLen int) *FMRHandle {
	h.busTxn(p, h.cfg.RegBase)
	return &FMRHandle{hca: h, rkey: h.allocTag(), maxLen: maxLen, created: true}
}

// MaxLen returns the largest mappable region.
func (f *FMRHandle) MaxLen() int { return f.maxLen }

// Rkey returns the handle's current steering tag. Without FMRKeyRotate it is
// fixed for the handle's lifetime — the property the remap-window tests pin.
func (f *FMRHandle) Rkey() uint32 { return f.rkey }

// Remaps returns how many times the handle has been mapped.
func (f *FMRHandle) Remaps() int { return f.remaps }

// Map binds the handle's steering tag to a buffer range. Cost is pin +
// translate only (host CPU); no I/O-bus wait — this is what makes FMR
// "considerably faster than a regular registration call" (§4.3).
func (f *FMRHandle) Map(p *des.Proc, buf *Buffer, off, length int, access Access) *MR {
	if f.mr != nil {
		panic("ibsim: FMR handle already mapped")
	}
	if length > f.maxLen {
		panic("ibsim: FMR map larger than handle max (caller must use the fall-back path)")
	}
	h := f.hca
	if f.remaps > 0 {
		if h.cfg.FMRKeyRotate {
			// Fresh tag per remap: a peer holding the previous cycle's rkey
			// faults instead of silently addressing the new mapping.
			f.rkey = h.allocTag()
			h.node.fab.Counters.Inc("fmr.key_rotations")
		} else {
			// Pool-time tag reused across mappings — the remap window the
			// adversary's stale-rkey probe exploits.
			h.node.fab.Counters.Inc("fmr.remap_reuse")
		}
	}
	pages := h.pages(length)
	start := p.Now()
	h.node.CPU.Work(p, des.Duration(pages)*h.cfg.FMRMapCPU)
	h.busTxn(p, des.Duration(pages)*h.cfg.FMRMapPerPageBus)
	mr := &MR{
		hca: h, buf: buf, bufOff: off,
		start: buf.Addr(off), length: length,
		rkey: f.rkey, access: access, fmr: true,
	}
	h.install(mr)
	if tr := h.node.fab.Sim.Tracer(); tr != nil {
		tr.Span(int64(start), int64(p.Now()), trace.LayerIbsim, trace.KindRegCall, h.node.name, "fmr-map",
			uint64(mr.rkey), int64(length))
		tr.Observe("reg.fmr_map", (p.Now() - start).Micros())
	}
	f.mr = mr
	f.remaps++
	return mr
}

// Unmap releases the current mapping; the steering tag remains allocated
// for reuse. Unmapping is deferred-cheap (batched invalidation in the
// Mellanox implementation), modelled as per-page CPU only.
func (f *FMRHandle) Unmap(p *des.Proc) {
	if f.mr == nil {
		panic("ibsim: FMR handle not mapped")
	}
	h := f.hca
	h.node.CPU.Work(p, des.Duration(h.pages(f.mr.length))*h.cfg.FMRMapCPU/2)
	h.remove(f.mr)
	f.mr = nil
}

// EnableGlobalRkey installs the all-physical global steering tag: one TPT
// entry spanning the node's entire address space with full remote access.
// Available to privileged consumers only; using it concedes the security
// argument, which is why the paper reserves it for trusted environments.
func (h *HCA) EnableGlobalRkey() *MR {
	if h.globalMR != nil {
		return h.globalMR
	}
	mr := &MR{
		hca:    h,
		start:  0,
		length: 1 << 40, // effectively all of memory
		rkey:   h.allocTag(),
		access: AccessLocalWrite | AccessRemoteRead | AccessRemoteWrite,
		global: true,
	}
	h.install(mr)
	h.globalMR = mr
	return mr
}

// GlobalMR returns the global region, or nil if not enabled.
func (h *HCA) GlobalMR() *MR { return h.globalMR }

// lookup validates a remote access against the TPT and returns the MR.
func (h *HCA) lookup(rkey uint32, addr uint64, length int, want Access) (*MR, error) {
	mr, ok := h.tpt[rkey]
	if !ok {
		return nil, fmt.Errorf("%w: rkey %#x not in TPT", ErrProtection, rkey)
	}
	if mr.access&want == 0 {
		return nil, fmt.Errorf("%w: rkey %#x lacks %v access", ErrProtection, rkey, want)
	}
	if addr < mr.start || addr+uint64(length) > mr.start+uint64(mr.length) {
		return nil, fmt.Errorf("%w: [%#x,+%d) outside MR [%#x,+%d)", ErrProtection, addr, length, mr.start, mr.length)
	}
	return mr, nil
}

// resolve maps a validated (mr, addr) pair to the backing buffer slice
// coordinates. The global MR has no single buffer, so it resolves through
// the node's address space instead.
func (mr *MR) resolve(addr uint64) (*Buffer, int) {
	if mr.global || mr.buf == nil {
		return mr.hca.node.Mem.find(addr)
	}
	return mr.buf, int(addr-mr.start) + mr.bufOff
}
