package ibsim

import (
	"testing"
	"time"

	"repro/internal/des"
)

// TestSRQPostTakeFIFO verifies pooled WQEs are consumed in post order and
// the Depth cap refuses over-posting.
func TestSRQPostTakeFIFO(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "srv"})
	srq := NewSRQ(n, "srv/srq", SRQConfig{Depth: 4})
	for i := 0; i < 4; i++ {
		if !srq.PostRecv(uint64(i), 1024) {
			t.Fatalf("post %d refused below depth", i)
		}
	}
	if srq.PostRecv(99, 1024) {
		t.Fatal("post beyond depth accepted")
	}
	if srq.PostFailed != 1 {
		t.Fatalf("PostFailed = %d, want 1", srq.PostFailed)
	}
	for i := 0; i < 4; i++ {
		r := srq.take()
		if r == nil || r.WRID != uint64(i) {
			t.Fatalf("take %d = %+v, want WRID %d", i, r, i)
		}
	}
	if r := srq.take(); r != nil {
		t.Fatalf("take on empty pool = %+v, want nil", r)
	}
	if srq.Starved != 1 || srq.Consumed != 4 || srq.Posted != 4 {
		t.Fatalf("stats = starved %d consumed %d posted %d", srq.Starved, srq.Consumed, srq.Posted)
	}
}

// TestSRQLimitEventFiresOnce verifies the armed low-watermark event fires
// exactly once when consumption crosses the limit, and re-arming after a
// refill makes the next crossing fire again.
func TestSRQLimitEventFiresOnce(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "srv"})
	srq := NewSRQ(n, "srv/srq", SRQConfig{Depth: 8, Limit: 3})
	for i := 0; i < 8; i++ {
		srq.PostRecv(uint64(i), 1024)
	}
	ev := srq.ArmLimit()
	// Takes 8→7→6→5→4→3: still at or above the watermark.
	for i := 0; i < 5; i++ {
		srq.take()
		if ev.Fired() {
			t.Fatalf("limit fired early at avail %d", srq.Avail())
		}
	}
	srq.take() // 3→2: crossed
	if !ev.Fired() {
		t.Fatal("limit event did not fire on crossing")
	}
	srq.take() // further takes must not re-fire a disarmed event
	if srq.LimitEvents != 1 {
		t.Fatalf("LimitEvents = %d, want 1", srq.LimitEvents)
	}
	// Refill, re-arm, cross again.
	for i := 0; i < 6; i++ {
		srq.PostRecv(uint64(10+i), 1024)
	}
	ev2 := srq.ArmLimit()
	if ev2.Fired() {
		t.Fatal("re-armed event fired with pool above watermark")
	}
	for srq.Avail() >= srq.Limit() {
		srq.take()
	}
	if !ev2.Fired() || srq.LimitEvents != 2 {
		t.Fatalf("second crossing: fired=%v events=%d", ev2.Fired(), srq.LimitEvents)
	}
}

// TestSRQArmBelowWatermarkFiresImmediately covers arming when the pool is
// already depleted: the event must fire at once, or the refill loop would
// sleep through an empty pool.
func TestSRQArmBelowWatermarkFiresImmediately(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	n := fab.AddNode(NodeConfig{Name: "srv"})
	srq := NewSRQ(n, "srv/srq", SRQConfig{Depth: 8, Limit: 4})
	srq.PostRecv(0, 1024)
	if ev := srq.ArmLimit(); !ev.Fired() {
		t.Fatal("arming below the watermark did not fire immediately")
	}
}

// TestSRQSharedAcrossQPs drives sends over two QPs attached to one SRQ and
// a shared receive CQ: every message consumes a pooled WQE, and completions
// demultiplex by CQE.QP.
func TestSRQSharedAcrossQPs(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, true)
	srv := fab.AddNode(NodeConfig{Name: "srv"})
	cl1 := fab.AddNode(NodeConfig{Name: "cl1"})
	cl2 := fab.AddNode(NodeConfig{Name: "cl2"})

	srq := NewSRQ(srv, "srv/srq", SRQConfig{Depth: 16, Limit: 2})
	scq := NewCQ(srv, "srv/shard-rcq")
	for i := 0; i < 16; i++ {
		srq.PostRecv(uint64(i), 1024)
	}

	c1, s1 := fab.Connect(cl1, srv, QPConfig{})
	c2, s2 := fab.Connect(cl2, srv, QPConfig{})
	for _, q := range []*QP{s1, s2} {
		q.AttachSRQ(srq)
		q.SetRecvCQ(scq)
	}

	const per = 5
	done := des.NewEvent(sim)
	got := map[*QP]int{}
	sim.Spawn("recv", func(p *des.Proc) {
		for i := 0; i < 2*per; i++ {
			cqe := scq.Wait(p)
			if cqe.Err != nil {
				t.Errorf("recv %d: %v", i, cqe.Err)
				return
			}
			got[cqe.QP]++
		}
		done.Fire(nil)
	})
	for qi, q := range []*QP{c1, c2} {
		q := q
		qi := qi
		sim.Spawn("send", func(p *des.Proc) {
			for i := 0; i < per; i++ {
				q.PostAndWait(p, &SendWQE{WRID: uint64(qi*100 + i), Op: OpSend, Payload: []byte("ping")})
			}
		})
	}
	sim.Spawn("check", func(p *des.Proc) {
		done.Wait(p)
		if got[s1] != per || got[s2] != per {
			t.Errorf("demux = qp1:%d qp2:%d, want %d each", got[s1], got[s2], per)
		}
		if srq.Consumed != 2*per {
			t.Errorf("Consumed = %d, want %d", srq.Consumed, 2*per)
		}
		if s1.PostedRecvs() != 0 || s2.PostedRecvs() != 0 {
			t.Error("SRQ-attached QPs grew private receive queues")
		}
	})
	sim.Run()
}

// TestSRQQPErrorMidRefillNoStrandedWQEs is the fault-injection balance
// check: drain the pool to RNR, start a refill, and kill one of the attached
// QPs in the middle of it. The dead QP must not strand pooled WQEs — the
// pool belongs to the SRQ, not any QP — so the accounting identity
// Posted == Consumed + Avail() holds throughout, and a surviving QP drains
// exactly what the refill posted.
func TestSRQQPErrorMidRefillNoStrandedWQEs(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, true)
	srv := fab.AddNode(NodeConfig{Name: "srv"})
	cl1 := fab.AddNode(NodeConfig{Name: "cl1"})
	cl2 := fab.AddNode(NodeConfig{Name: "cl2"})
	srq := NewSRQ(srv, "srv/srq", SRQConfig{Depth: 8, Limit: 2})
	scq := NewCQ(srv, "srv/rcq")
	c1, s1 := fab.Connect(cl1, srv, QPConfig{RNRRetryDelay: 50 * time.Microsecond, RNRRetryLimit: 7})
	c2, s2 := fab.Connect(cl2, srv, QPConfig{RNRRetryDelay: 50 * time.Microsecond, RNRRetryLimit: 7})
	for _, q := range []*QP{s1, s2} {
		q.AttachSRQ(srq)
		q.SetRecvCQ(scq)
	}

	balance := func(where string) {
		if srq.Posted != srq.Consumed+int64(srq.Avail()) {
			t.Fatalf("%s: posted %d != consumed %d + avail %d (stranded WQEs)",
				where, srq.Posted, srq.Consumed, srq.Avail())
		}
	}

	// Two pooled WQEs; the first two sends drain them, the third hits RNR.
	srq.PostRecv(0, 1024)
	srq.PostRecv(1, 1024)
	sim.Spawn("senders", func(p *des.Proc) {
		for i := 0; i < 2; i++ {
			if cqe := c1.PostAndWait(p, &SendWQE{WRID: uint64(i), Op: OpSend, Payload: []byte("x")}); cqe.Err != nil {
				t.Errorf("warmup send %d: %v", i, cqe.Err)
			}
		}
		balance("after drain")
		// Pool empty: this send spins on RNR until the refill below.
		if cqe := c1.PostAndWait(p, &SendWQE{WRID: 9, Op: OpSend, Payload: []byte("rnr")}); cqe.Err == nil {
			t.Error("send on the QP killed mid-refill completed cleanly")
		}
	})
	sim.Spawn("refill", func(p *des.Proc) {
		p.Sleep(120 * time.Microsecond)
		if srq.Starved == 0 {
			t.Error("pool never starved before the refill")
		}
		srq.PostRecv(10, 1024)
		// Mid-refill: the RNR-spinning QP dies between the two posts.
		s1.InjectError(nil)
		srq.PostRecv(11, 1024)
		balance("mid-refill after QP error")
	})
	sim.Spawn("survivor", func(p *des.Proc) {
		p.Sleep(400 * time.Microsecond)
		// The surviving QP consumes everything the refill posted: nothing is
		// stranded on the dead QP.
		for i := 0; i < 2; i++ {
			if cqe := c2.PostAndWait(p, &SendWQE{WRID: uint64(20 + i), Op: OpSend, Payload: []byte("y")}); cqe.Err != nil {
				t.Errorf("survivor send %d: %v", i, cqe.Err)
			}
		}
	})
	sim.Run()
	balance("end of run")
	if srq.Consumed != 4 {
		t.Errorf("Consumed = %d, want 4 (2 warmup + 2 refill)", srq.Consumed)
	}
	if srq.Avail() != 0 {
		t.Errorf("Avail = %d, want 0", srq.Avail())
	}
}

// TestSRQEmptyPoolRNRThenRecover exhausts the pool, observes the RNR retry
// path hold the send, then reposts and sees it delivered — SRQ starvation
// behaves exactly like an empty private receive queue.
func TestSRQEmptyPoolRNRThenRecover(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, true)
	srv := fab.AddNode(NodeConfig{Name: "srv"})
	cl := fab.AddNode(NodeConfig{Name: "cl"})
	srq := NewSRQ(srv, "srv/srq", SRQConfig{Depth: 4, Limit: 1})
	scq := NewCQ(srv, "srv/rcq")
	cq, sq := fab.Connect(cl, srv, QPConfig{RNRRetryDelay: 50 * time.Microsecond, RNRRetryLimit: 7})
	sq.AttachSRQ(srq)
	sq.SetRecvCQ(scq)

	// No WQEs posted: the first send must spin on RNR until the repost.
	sim.Spawn("repost", func(p *des.Proc) {
		p.Sleep(120 * time.Microsecond)
		srq.PostRecv(1, 1024)
	})
	delivered := false
	sim.Spawn("send", func(p *des.Proc) {
		cqe := cq.PostAndWait(p, &SendWQE{WRID: 7, Op: OpSend, Payload: []byte("late")})
		if cqe.Err != nil {
			t.Errorf("send failed: %v", cqe.Err)
			return
		}
		delivered = true
	})
	sim.Run()
	if !delivered {
		t.Fatal("send never delivered after repost")
	}
	if srq.Starved == 0 {
		t.Fatal("empty pool never counted starvation")
	}
	if fab.Counters.Get("rnr") == 0 {
		t.Fatal("no RNR recorded for the starved send")
	}
}
