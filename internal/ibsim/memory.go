// Package ibsim simulates an InfiniBand fabric at the verbs level: nodes
// with HCAs, reliable-connection queue pairs, completion queues, memory
// regions protected by 32-bit steering tags in a translation protection
// table (TPT), RDMA Send/Recv channel primitives and RDMA Read/Write memory
// primitives, with the ordering rules and IRD/ORD limits the paper's
// protocol analysis depends on.
//
// The simulator moves real bytes for control messages (RDMA Send payloads)
// always, and for bulk RDMA Read/Write data when Fabric.CopyData is enabled,
// so protocol stacks built on it can be verified end to end. Timing flows
// through the des kernel: link serialization on per-node port resources,
// one-way wire latency, per-WQE HCA overhead, and a memory-registration cost
// model.
package ibsim

import (
	"fmt"

	"repro/internal/des"
)

// Buffer is a contiguous virtual-address allocation in a node's memory.
// The paper's all-physical registration mode depends on the fact that a
// virtually contiguous buffer is generally NOT physically contiguous: the
// buffer records its physical runs, and physical-mode chunk building must
// emit one segment per run.
type Buffer struct {
	mem   *Memory
	Base  uint64 // virtual base address (node-local address space)
	Size  int
	data  []byte // materialized only when the fabric copies data
	runs  []int  // physical run lengths, summing to Size
	freed bool
}

// Addr returns the virtual address of byte off within the buffer.
func (b *Buffer) Addr(off int) uint64 { return b.Base + uint64(off) }

// Data returns the materialized bytes, or nil when the fabric is running in
// phantom-data mode.
func (b *Buffer) Data() []byte { return b.data }

// Bytes returns the sub-slice [off, off+n) of the materialized data. It
// panics on out-of-range access — that is always a simulator-user bug, never
// a simulated protocol condition.
func (b *Buffer) Bytes(off, n int) []byte {
	if off < 0 || n < 0 || off+n > b.Size {
		panic(fmt.Sprintf("ibsim: buffer access [%d,%d) outside size %d", off, off+n, b.Size))
	}
	if b.data == nil {
		return nil
	}
	return b.data[off : off+n]
}

// PhysicalRuns returns the lengths of the physically contiguous extents
// covering [off, off+n) of the buffer, in order. DMA addressed by physical
// pages (the all-physical / global steering tag mode) needs one descriptor —
// and hence one RPC/RDMA chunk segment — per run.
func (b *Buffer) PhysicalRuns(off, n int) []int {
	if off < 0 || n < 0 || off+n > b.Size {
		panic(fmt.Sprintf("ibsim: PhysicalRuns [%d,%d) outside size %d", off, off+n, b.Size))
	}
	var out []int
	pos := 0
	for _, run := range b.runs {
		runStart, runEnd := pos, pos+run
		pos = runEnd
		if runEnd <= off {
			continue
		}
		if runStart >= off+n {
			break
		}
		s := max(runStart, off)
		e := min(runEnd, off+n)
		out = append(out, e-s)
	}
	return out
}

// Freed reports whether the buffer has been released.
func (b *Buffer) Freed() bool { return b.freed }

// Memory is one node's virtual address space: a bump allocator handing out
// Buffers at increasing addresses, with a synthetic physical-contiguity
// model.
type Memory struct {
	node *Node
	next uint64
	rng  *des.Rand

	buffers []*Buffer // all live allocations, ordered by Base

	// pool recycles materialized data slices by power-of-two size class.
	// Staging-heavy protocol paths (the Read-Read design materializes a
	// MaxBulk-sized reply buffer per call) would otherwise churn gigabytes
	// of host allocations per simulated second. Reused slices are NOT
	// zero-filled — simulated memory behaves like real DRAM, whose contents
	// after allocation are whatever the previous owner left there.
	pool map[int][][]byte

	// MeanPhysRun is the mean physically contiguous run length in bytes.
	// Kernel slab/page allocators on a busy machine rarely produce long
	// contiguous ranges; the default (32 KiB) is chosen so that all-physical
	// registration of a 128 KiB record needs ~4 read segments, reproducing
	// the paper's §5.2 observation that all-physical WRITE hits the IRD/ORD
	// limit.
	MeanPhysRun int

	allocated int64
}

const pageSize = 4096

func newMemory(node *Node, seed uint64) *Memory {
	return &Memory{node: node, next: 0x1000, rng: des.NewRand(seed), MeanPhysRun: 32 << 10,
		pool: make(map[int][][]byte)}
}

// dataClass rounds a materialized allocation up to its recycling class
// (powers of two ≥ 4 KiB).
func dataClass(size int) int {
	c := 4096
	for c < size {
		c <<= 1
	}
	return c
}

// dataFor returns a byte slice of exactly size bytes, reusing a pooled slice
// of the matching class when one is free (LIFO, deterministic).
func (m *Memory) dataFor(size int) []byte {
	c := dataClass(size)
	if free := m.pool[c]; len(free) > 0 {
		d := free[len(free)-1]
		m.pool[c] = free[:len(free)-1]
		return d[:size]
	}
	return make([]byte, c)[:size]
}

// Alloc returns a new buffer of the given size. Physical runs are drawn
// deterministically from the node's RNG: page-aligned, geometric-ish run
// lengths around MeanPhysRun.
func (m *Memory) Alloc(size int) *Buffer {
	if size <= 0 {
		panic("ibsim: Alloc with non-positive size")
	}
	b := &Buffer{mem: m, Base: m.next, Size: size}
	m.next += uint64(size)
	// Keep a guard gap so adjacent buffers are never part of the same
	// registered range by accident.
	m.next += pageSize
	if m.node.fab.CopyData {
		b.data = m.dataFor(size)
	}
	remaining := size
	for remaining > 0 {
		pagesMean := m.MeanPhysRun / pageSize
		if pagesMean < 1 {
			pagesMean = 1
		}
		// Uniform in [1, 2*mean] pages approximates a geometric distribution
		// closely enough and is cheap and bounded.
		run := (1 + m.rng.Intn(2*pagesMean)) * pageSize
		if run > remaining {
			run = remaining
		}
		b.runs = append(b.runs, run)
		remaining -= run
	}
	m.allocated += int64(size)
	m.buffers = append(m.buffers, b)
	return b
}

// find resolves a virtual address to the live buffer containing it, plus the
// offset within that buffer. It returns (nil, 0) for unmapped addresses.
// Buffers are allocated at increasing Base, so binary search applies.
func (m *Memory) find(addr uint64) (*Buffer, int) {
	lo, hi := 0, len(m.buffers)
	for lo < hi {
		mid := (lo + hi) / 2
		if m.buffers[mid].Base+uint64(m.buffers[mid].Size) <= addr {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.buffers) {
		b := m.buffers[lo]
		if addr >= b.Base && addr < b.Base+uint64(b.Size) && !b.freed {
			return b, int(addr - b.Base)
		}
	}
	return nil, 0
}

// AllocMaterialized returns a buffer whose bytes are always backed by real
// storage, even when the fabric runs in phantom-data mode. Protocol engines
// use it for buffers that carry control information moved by RDMA (long
// calls, long replies), which must survive the trip byte-exact.
func (m *Memory) AllocMaterialized(size int) *Buffer {
	b := m.Alloc(size)
	if b.data == nil {
		b.data = m.dataFor(size)
	}
	return b
}

// AllocContiguous returns a buffer that is physically contiguous (a single
// run), modelling a reserved DMA region.
func (m *Memory) AllocContiguous(size int) *Buffer {
	b := m.Alloc(size)
	b.runs = []int{size}
	return b
}

// Free releases the buffer. The address range is not reused (bump
// allocator), which makes stale-address bugs in protocol code detectable —
// but the materialized bytes go back to the recycling pool, so touching a
// freed buffer's Data is also detectable (it is nil).
func (m *Memory) Free(b *Buffer) {
	if b.freed {
		panic("ibsim: double free")
	}
	b.freed = true
	m.allocated -= int64(b.Size)
	if b.data != nil {
		d := b.data[:cap(b.data)]
		if len(d) == dataClass(b.Size) {
			m.pool[len(d)] = append(m.pool[len(d)], d)
		}
		b.data = nil
	}
}

// AllocatedBytes returns the total live allocation, for leak assertions in
// tests (e.g. the malicious-client buffer-pinning experiment).
func (m *Memory) AllocatedBytes() int64 { return m.allocated }

// Watermark returns the bump allocator's high-water address: every buffer
// ever allocated lives below it. The adversary engine samples probe
// addresses uniformly under the victim's watermark — the best an attacker
// who knows the allocator's shape but not its contents can do.
func (m *Memory) Watermark() uint64 { return m.next }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
