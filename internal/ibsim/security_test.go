package ibsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
)

// securityPair builds an attacker/server node pair; rotate selects the
// server's FMR key-rotation posture.
func securityPair(rotate bool) (*des.Sim, *Fabric, *Node, *Node) {
	sim := des.New()
	fab := NewFabric(sim, true)
	atk := fab.AddNode(NodeConfig{Name: "attacker", Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond})
	srv := fab.AddNode(NodeConfig{Name: "server", Cores: 4, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond,
		FMRKeyRotate: rotate})
	return sim, fab, atk, srv
}

// probe issues one one-sided access from a fresh QP. A fresh QP per probe is
// required because a protection fault moves the QP to the error state — the
// same redial an attacker would pay.
func probe(p *des.Proc, fab *Fabric, atk, srv *Node, local *Buffer, op Opcode, rkey uint32, addr uint64, n int) error {
	qa, _ := fab.Connect(atk, srv, QPConfig{})
	cqe := qa.PostAndWait(p, &SendWQE{
		WRID: 1, Op: op,
		Local:     []LocalSeg{{Buf: local, Len: n}},
		RemoteKey: rkey, RemoteAddr: addr,
	})
	return cqe.Err
}

// TestMRAccessEnforcementMatrix drives the TPT's access-flag and bounds
// checks through every registration regime a transfer design can produce:
// a transient per-I/O registration, an FMR mapping, and a long-lived
// cache-style registration, plus the all-physical global key. For each:
// remote reads must fault on write-only MRs, remote writes on read-only
// MRs, zero-length accesses at the exact end of the region pass, and
// one-past-the-end accesses fault.
func TestMRAccessEnforcementMatrix(t *testing.T) {
	sim, fab, atk, srv := securityPair(false)
	sim.Spawn("matrix", func(p *des.Proc) {
		local := atk.Mem.AllocMaterialized(8 << 10)
		buf := srv.Mem.AllocMaterialized(8 << 10)

		type regime struct {
			name string
			// expose registers 4 KiB of buf with the given access and
			// returns the steering tag, region start, and a teardown.
			expose func(access Access) (uint32, uint64, func())
		}
		regimes := []regime{
			{"regular", func(a Access) (uint32, uint64, func()) {
				mr := srv.HCA.Register(p, buf, 0, 4096, a)
				return mr.Rkey(), mr.Start(), func() { srv.HCA.Deregister(p, mr) }
			}},
			{"fmr", func(a Access) (uint32, uint64, func()) {
				fh := srv.HCA.NewFMRHandle(p, 8<<10)
				mr := fh.Map(p, buf, 0, 4096, a)
				return mr.Rkey(), mr.Start(), func() { fh.Unmap(p) }
			}},
			// The registration cache amortizes one long-lived MR across many
			// I/Os; at the TPT the enforcement is identical, the exposure
			// just lasts longer.
			{"cache", func(a Access) (uint32, uint64, func()) {
				mr := srv.HCA.Register(p, buf, 0, 4096, a)
				for i := 0; i < 3; i++ { // reuse across several probes
					probe(p, fab, atk, srv, local, OpRead, mr.Rkey(), mr.Start(), 64)
				}
				return mr.Rkey(), mr.Start(), func() { srv.HCA.Deregister(p, mr) }
			}},
		}

		for _, r := range regimes {
			// Read-only region: reads land, writes fault.
			rkey, start, drop := r.expose(AccessRemoteRead)
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start, 64); err != nil {
				t.Errorf("%s: read on read-only MR: %v", r.name, err)
			}
			if err := probe(p, fab, atk, srv, local, OpWrite, rkey, start, 64); !errors.Is(err, ErrProtection) {
				t.Errorf("%s: write on read-only MR: err = %v, want protection fault", r.name, err)
			}
			// Bounds: zero-length at the exact end is legal; one byte past
			// the end is not; an overlong read from the start is not.
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start+4096, 0); err != nil {
				t.Errorf("%s: zero-length read at region end: %v", r.name, err)
			}
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start+4095, 1); err != nil {
				t.Errorf("%s: last-byte read: %v", r.name, err)
			}
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start+4096, 1); !errors.Is(err, ErrProtection) {
				t.Errorf("%s: one-past-end read: err = %v, want protection fault", r.name, err)
			}
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start, 4097); !errors.Is(err, ErrProtection) {
				t.Errorf("%s: overlong read: err = %v, want protection fault", r.name, err)
			}
			drop()
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start, 64); !errors.Is(err, ErrProtection) {
				t.Errorf("%s: read after teardown: err = %v, want protection fault", r.name, err)
			}

			// Write-only region: writes land, reads fault.
			rkey, start, drop = r.expose(AccessRemoteWrite)
			if err := probe(p, fab, atk, srv, local, OpWrite, rkey, start, 64); err != nil {
				t.Errorf("%s: write on write-only MR: %v", r.name, err)
			}
			if err := probe(p, fab, atk, srv, local, OpRead, rkey, start, 64); !errors.Is(err, ErrProtection) {
				t.Errorf("%s: read on write-only MR: err = %v, want protection fault", r.name, err)
			}
			drop()
		}

		// All-physical: the global key grants read+write to the entire
		// address space — no flag or bound saves the target.
		g := srv.HCA.EnableGlobalRkey()
		if err := probe(p, fab, atk, srv, local, OpRead, g.Rkey(), buf.Addr(100), 64); err != nil {
			t.Errorf("all-physical: read via global key: %v", err)
		}
		if err := probe(p, fab, atk, srv, local, OpWrite, g.Rkey(), buf.Addr(100), 64); err != nil {
			t.Errorf("all-physical: write via global key: %v", err)
		}
	})
	sim.Run()
}

// TestFMRRemapWindow pins the FMR pool's stale-rkey semantics. Without key
// rotation the pool-time steering tag survives remapping, so a peer holding
// the previous cycle's rkey silently reads the *new* mapping — the exposure
// window the simulator counts as fmr.remap_reuse. With FMRKeyRotate the old
// tag faults after remap and the rotation is counted.
func TestFMRRemapWindow(t *testing.T) {
	for _, rotate := range []bool{false, true} {
		rotate := rotate
		name := "reuse"
		if rotate {
			name = "rotate"
		}
		t.Run(name, func(t *testing.T) {
			sim, fab, atk, srv := securityPair(rotate)
			sim.Spawn("remap", func(p *des.Proc) {
				local := atk.Mem.AllocMaterialized(4096)
				bufA := srv.Mem.AllocMaterialized(4096)
				bufB := srv.Mem.AllocMaterialized(4096)
				for i := range bufA.Data() {
					bufA.Data()[i] = 0xAA
					bufB.Data()[i] = 0xBB
				}
				fh := srv.HCA.NewFMRHandle(p, 4096)
				mrA := fh.Map(p, bufA, 0, 4096, AccessRemoteRead)
				oldKey := fh.Rkey()
				if err := probe(p, fab, atk, srv, local, OpRead, oldKey, mrA.Start(), 16); err != nil {
					t.Fatalf("read of live mapping: %v", err)
				}
				if local.Data()[0] != 0xAA {
					t.Fatalf("live read got %#x, want 0xAA", local.Data()[0])
				}
				fh.Unmap(p)
				if err := probe(p, fab, atk, srv, local, OpRead, oldKey, mrA.Start(), 16); !errors.Is(err, ErrProtection) {
					t.Fatalf("read while unmapped: err = %v, want protection fault", err)
				}
				mrB := fh.Map(p, bufB, 0, 4096, AccessRemoteRead)
				if rotate {
					if fh.Rkey() == oldKey {
						t.Fatalf("rotation kept rkey %#x across remap", oldKey)
					}
					if err := probe(p, fab, atk, srv, local, OpRead, oldKey, mrB.Start(), 16); !errors.Is(err, ErrProtection) {
						t.Fatalf("stale rkey after rotated remap: err = %v, want protection fault", err)
					}
					if got := fab.Counters.Get("fmr.key_rotations"); got != 1 {
						t.Fatalf("fmr.key_rotations = %d, want 1", got)
					}
				} else {
					if err := probe(p, fab, atk, srv, local, OpRead, oldKey, mrB.Start(), 16); err != nil {
						t.Fatalf("stale rkey after reused remap: %v (expected silent alias)", err)
					}
					if local.Data()[0] != 0xBB {
						t.Fatalf("stale-key read got %#x, want the new mapping's 0xBB", local.Data()[0])
					}
					if got := fab.Counters.Get("fmr.remap_reuse"); got != 1 {
						t.Fatalf("fmr.remap_reuse = %d, want 1", got)
					}
				}
			})
			sim.Run()
		})
	}
}
