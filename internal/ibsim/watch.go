package ibsim

import "repro/internal/des"

// WriteWatch observes incoming RDMA Writes landing in a watched address
// range — the doorbell primitive of the reply-fetch design. An RNIC raises
// no target-side completion for an inbound RDMA Write, so a consumer that
// expects a peer to deposit data (the RFP client waiting for its reply
// slot) must poll the memory itself. Real implementations spin on the
// doorbell word; the simulator models the poll loop's detection with an
// event fired at the instant the overlapping Write is delivered, and the
// consumer charges its own polling cost on wake.
//
// A watch fires at most once and deregisters itself on firing. Cancel
// removes an unfired watch and wakes any waiter with nil so its process
// can exit.
type WriteWatch struct {
	hca   *HCA
	rkey  uint32
	lo    uint64
	hi    uint64
	ev    *des.Event
	fired bool
}

// WatchWrite registers a watch over [addr, addr+length) of the region
// named by rkey. The returned watch's event fires with a non-nil value
// when a delivered RDMA Write overlaps the range.
func (h *HCA) WatchWrite(rkey uint32, addr uint64, length int) *WriteWatch {
	w := &WriteWatch{
		hca: h, rkey: rkey,
		lo: addr, hi: addr + uint64(length),
		ev: des.NewEvent(h.node.fab.Sim),
	}
	if h.watches == nil {
		h.watches = make(map[uint32][]*WriteWatch)
	}
	h.watches[rkey] = append(h.watches[rkey], w)
	return w
}

// Wait blocks until a Write lands in the watched range (returns true) or
// the watch is cancelled (returns false).
func (w *WriteWatch) Wait(p *des.Proc) bool {
	return w.ev.Wait(p) != nil
}

// Cancel removes an unfired watch and releases its waiter. Safe to call
// after firing (no-op).
func (w *WriteWatch) Cancel() {
	if !w.fired {
		w.fired = true
		w.hca.unwatch(w)
	}
	w.ev.TryFire(nil)
}

func (h *HCA) unwatch(w *WriteWatch) {
	list := h.watches[w.rkey]
	for i, o := range list {
		if o == w {
			h.watches[w.rkey] = append(list[:i], list[i+1:]...)
			break
		}
	}
	if len(h.watches[w.rkey]) == 0 {
		delete(h.watches, w.rkey)
	}
}

// notifyWrite fires every watch overlapping a just-delivered RDMA Write.
// Called from the write delivery path after the data is placed; with no
// watches registered (every non-RFP workload) it is a nil-map lookup.
// Watches fire in registration order, keeping wakeups deterministic.
func (h *HCA) notifyWrite(rkey uint32, addr uint64, length int) {
	if h.watches == nil {
		return
	}
	list := h.watches[rkey]
	if len(list) == 0 {
		return
	}
	end := addr + uint64(length)
	fired := false
	for _, w := range list {
		if w.fired || end <= w.lo || addr >= w.hi {
			continue
		}
		w.fired = true
		fired = true
		w.ev.TryFire(w)
	}
	if !fired {
		return
	}
	keep := list[:0]
	for _, w := range list {
		if !w.fired {
			keep = append(keep, w)
		}
	}
	if len(keep) == 0 {
		delete(h.watches, rkey)
	} else {
		h.watches[rkey] = keep
	}
}
