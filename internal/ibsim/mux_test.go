package ibsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
)

// testMux builds a fabric with one server-side mux QP and n client endpoints.
func testMux(t testing.TB, n int) (*des.Sim, *Fabric, *Node, []*Node, *QP, []*QP) {
	t.Helper()
	sim := des.New()
	fab := NewFabric(sim, true)
	srv := fab.AddNode(NodeConfig{Name: "server", Cores: 4, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond})
	mqp := fab.NewMuxQP(srv, QPConfig{})
	var nodes []*Node
	var eps []*QP
	for i := 0; i < n; i++ {
		cn := fab.AddNode(NodeConfig{Name: "client", Cores: 2, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond})
		ep, err := fab.AttachEndpoint(cn, mqp, QPConfig{})
		if err != nil {
			t.Fatalf("attach %d: %v", i, err)
		}
		nodes = append(nodes, cn)
		eps = append(eps, ep)
	}
	return sim, fab, srv, nodes, mqp, eps
}

func TestMuxSendDemuxesByStream(t *testing.T) {
	sim, _, _, _, mqp, eps := testMux(t, 3)
	for i := 0; i < 6; i++ {
		mqp.PostRecv(uint64(i), 1024)
	}
	got := map[uint32]string{}
	sim.Spawn("server", func(p *des.Proc) {
		for i := 0; i < 3; i++ {
			cqe := mqp.RecvCQ.Wait(p)
			if cqe.Err != nil {
				t.Errorf("recv error: %v", cqe.Err)
				return
			}
			if cqe.Stream == 0 {
				t.Error("arrival without stream id on mux QP")
			}
			got[cqe.Stream] = string(cqe.Payload)
			// Reply on the same stream.
			mqp.PostSend(&SendWQE{WRID: uint64(i), Op: OpSend, Stream: cqe.Stream,
				Payload: append([]byte("re: "), cqe.Payload...)})
		}
	})
	for i, ep := range eps {
		i, ep := i, ep
		sim.Spawn("client", func(p *des.Proc) {
			ep.PostRecv(1, 1024)
			msg := []byte{'c', byte('0' + i)}
			cqe := ep.PostAndWait(p, &SendWQE{WRID: 9, Op: OpSend, Payload: msg})
			if cqe.Err != nil {
				t.Errorf("client %d send: %v", i, cqe.Err)
				return
			}
			r := ep.RecvCQ.Wait(p)
			if r.Err != nil || string(r.Payload) != "re: c"+string(byte('0'+i)) {
				t.Errorf("client %d reply = %q err=%v", i, r.Payload, r.Err)
			}
		})
	}
	sim.Run()
	if len(got) != 3 {
		t.Fatalf("demuxed %d distinct streams, want 3", len(got))
	}
	for _, ep := range eps {
		if _, ok := got[ep.Stream()]; !ok {
			t.Fatalf("stream %#x never arrived", ep.Stream())
		}
	}
}

func TestMuxWriteAndReadByStream(t *testing.T) {
	sim, _, _, nodes, mqp, eps := testMux(t, 2)
	// Server writes into client 0's memory and reads client 1's, addressing
	// each through its stream.
	src := mqp.Node().Mem.Alloc(4096)
	dst := mqp.Node().Mem.Alloc(4096)
	cbuf0 := nodes[0].Mem.Alloc(4096)
	cbuf1 := nodes[1].Mem.Alloc(4096)
	fill(src, 7)
	fill(cbuf1, 11)
	sim.Spawn("server", func(p *des.Proc) {
		mr0 := nodes[0].HCA.Register(p, cbuf0, 0, 4096, AccessLocalWrite|AccessRemoteWrite)
		mr1 := nodes[1].HCA.Register(p, cbuf1, 0, 4096, AccessRemoteRead)
		cqe := mqp.PostAndWait(p, &SendWQE{WRID: 1, Op: OpWrite, Stream: eps[0].Stream(),
			Local: []LocalSeg{{Buf: src, Off: 0, Len: 4096}}, RemoteKey: mr0.Rkey(), RemoteAddr: mr0.Start()})
		if cqe.Err != nil {
			t.Errorf("mux write: %v", cqe.Err)
		}
		cqe = mqp.PostAndWait(p, &SendWQE{WRID: 2, Op: OpRead, Stream: eps[1].Stream(),
			Local: []LocalSeg{{Buf: dst, Off: 0, Len: 4096}}, RemoteKey: mr1.Rkey(), RemoteAddr: mr1.Start()})
		if cqe.Err != nil {
			t.Errorf("mux read: %v", cqe.Err)
		}
	})
	sim.Run()
	if got, want := cbuf0.Bytes(0, 4096), src.Bytes(0, 4096); string(got) != string(want) {
		t.Fatal("mux write did not land in the stream's endpoint memory")
	}
	if got, want := dst.Bytes(0, 4096), cbuf1.Bytes(0, 4096); string(got) != string(want) {
		t.Fatal("mux read did not pull the stream's endpoint memory")
	}
}

func TestMuxEndpointDeathIsScopedAndFreesSlot(t *testing.T) {
	sim, _, _, _, mqp, eps := testMux(t, 3)
	mqp.PostRecv(0, 1024)
	var epErr *CQE
	sim.Spawn("server", func(p *des.Proc) {
		epErr = mqp.RecvCQ.Wait(p)
	})
	sim.Spawn("killer", func(p *des.Proc) {
		p.Sleep(time.Microsecond)
		eps[1].InjectError(nil)
	})
	sim.Run()
	if epErr == nil || epErr.Err == nil {
		t.Fatal("no endpoint-scoped error CQE on the shared CQ")
	}
	if epErr.Stream != eps[1].Stream() {
		t.Fatalf("error CQE stream = %#x, want %#x", epErr.Stream, eps[1].Stream())
	}
	if mqp.Err() != nil {
		t.Fatalf("shared QP died with its endpoint: %v", mqp.Err())
	}
	if eps[0].Err() != nil || eps[2].Err() != nil {
		t.Fatal("sibling endpoints died with endpoint 1")
	}
	if mqp.Endpoints() != 2 {
		t.Fatalf("live endpoints = %d, want 2", mqp.Endpoints())
	}
}

func TestMuxSlotReuseNoLeak(t *testing.T) {
	sim, fab, _, nodes, mqp, eps := testMux(t, 2)
	sim.Spawn("churn", func(p *des.Proc) {
		stale := eps[1].Stream()
		for i := 0; i < 50; i++ {
			eps[1].Close()
			p.Sleep(time.Microsecond)
			ep, err := fab.AttachEndpoint(nodes[1], mqp, QPConfig{})
			if err != nil {
				t.Errorf("reattach %d: %v", i, err)
				return
			}
			if ep.Stream() == stale {
				t.Errorf("reattach %d reused a stream id without a generation bump", i)
				return
			}
			eps[1] = ep
		}
	})
	sim.Run()
	if mqp.Endpoints() != 2 {
		t.Fatalf("live endpoints = %d, want 2", mqp.Endpoints())
	}
	if mqp.SlotTableSize() != 2 {
		t.Fatalf("slot table grew to %d across churn, want 2 (slot leak)", mqp.SlotTableSize())
	}
}

func TestMuxStaleStreamFlushes(t *testing.T) {
	sim, _, _, _, mqp, eps := testMux(t, 1)
	stale := eps[0].Stream()
	sim.Spawn("server", func(p *des.Proc) {
		eps[0].Close() // slot freed, generation bumped
		cqe := mqp.PostAndWait(p, &SendWQE{WRID: 1, Op: OpSend, Stream: stale, Payload: []byte("late reply")})
		if cqe.Err == nil {
			t.Error("send on a stale stream completed successfully")
		}
		if !errors.Is(cqe.Err, ErrQPError) {
			t.Errorf("stale-stream error = %v, want ErrQPError", cqe.Err)
		}
	})
	sim.Run()
	if mqp.Err() != nil {
		t.Fatalf("stale-stream send killed the shared QP: %v", mqp.Err())
	}
}

func TestMuxSharedQPErrorKillsOnlyItsEndpoints(t *testing.T) {
	sim := des.New()
	fab := NewFabric(sim, false)
	srv := fab.AddNode(NodeConfig{Name: "server", Cores: 4})
	mqpA := fab.NewMuxQP(srv, QPConfig{})
	mqpB := fab.NewMuxQP(srv, QPConfig{})
	var epsA, epsB []*QP
	for i := 0; i < 3; i++ {
		cn := fab.AddNode(NodeConfig{Name: "client", Cores: 2})
		ea, _ := fab.AttachEndpoint(cn, mqpA, QPConfig{})
		eb, _ := fab.AttachEndpoint(cn, mqpB, QPConfig{})
		epsA, epsB = append(epsA, ea), append(epsB, eb)
	}
	sim.Spawn("fault", func(p *des.Proc) {
		p.Sleep(time.Microsecond)
		mqpA.InjectError(nil)
	})
	sim.Run()
	for i, ep := range epsA {
		if ep.Err() == nil {
			t.Errorf("endpoint %d on the dead shared QP survived", i)
		}
		if !errors.Is(ep.Err(), ErrInjected) {
			t.Errorf("endpoint %d error = %v, want ErrInjected in chain", i, ep.Err())
		}
	}
	for i, ep := range epsB {
		if ep.Err() != nil {
			t.Errorf("endpoint %d on the healthy shared QP died: %v", i, ep.Err())
		}
	}
	if mqpB.Err() != nil {
		t.Fatalf("sibling shared QP died: %v", mqpB.Err())
	}
	if mqpA.Endpoints() != 0 {
		t.Fatalf("dead shared QP still counts %d live endpoints", mqpA.Endpoints())
	}
}

func TestMuxRecvStateBytes(t *testing.T) {
	_, _, _, _, mqp, _ := testMux(t, 3)
	want := int64(QPContextBytes) + 3*EndpointSlotBytes
	if got := mqp.RecvStateBytes(); got != want {
		t.Fatalf("RecvStateBytes = %d, want %d", got, want)
	}
	mqp.PostRecv(1, 2048)
	if got := mqp.RecvStateBytes(); got != want+2048 {
		t.Fatalf("RecvStateBytes with one posted recv = %d, want %d", got, want+2048)
	}
}

// TestMuxPeerForZeroAlloc pins the demultiplex hot path at zero allocations:
// it runs per completion on the shard receive loop, so an allocation here is
// per-message garbage at 10k clients.
func TestMuxPeerForZeroAlloc(t *testing.T) {
	res := testing.Benchmark(BenchmarkMuxPeerFor)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("peerFor allocates %d objects/op, want 0", a)
	}
}

func BenchmarkMuxPeerFor(b *testing.B) {
	sim := des.New()
	fab := NewFabric(sim, false)
	srv := fab.AddNode(NodeConfig{Name: "server", Cores: 4})
	mqp := fab.NewMuxQP(srv, QPConfig{})
	cn := fab.AddNode(NodeConfig{Name: "client", Cores: 2})
	streams := make([]uint32, 1024)
	for i := range streams {
		ep, err := fab.AttachEndpoint(cn, mqp, QPConfig{})
		if err != nil {
			b.Fatal(err)
		}
		streams[i] = ep.Stream()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if mqp.peerFor(streams[i%len(streams)]) == nil {
			b.Fatal("live stream failed to resolve")
		}
	}
}
