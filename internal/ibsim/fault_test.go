package ibsim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
)

// An injected QP error must flush an in-flight RDMA Write: the waiter
// unblocks with an error wrapping ErrInjected, the remote memory is never
// written, and both endpoints observe the death on both CQs.
func TestInjectErrorFlushesInFlightWrite(t *testing.T) {
	sim, fab, a, b, qa, qb := testPair(t, true)
	src := a.Mem.Alloc(1 << 20)
	dst := b.Mem.Alloc(1 << 20)
	fill(src, 7)

	// 1 MiB at 900 MB/s serializes for ~1.16 ms; kill the QP mid-transfer.
	fab.ScheduleQPError(des.Time(200*time.Microsecond), qa, nil)

	var cqe *CQE
	sim.Spawn("writer", func(p *des.Proc) {
		mr := b.HCA.Register(p, dst, 0, dst.Size, AccessRemoteWrite)
		cqe = qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpWrite,
			Local:     []LocalSeg{{Buf: src, Len: src.Size}},
			RemoteKey: mr.Rkey(), RemoteAddr: dst.Addr(0),
		})
	})
	sim.Run()

	if cqe == nil || cqe.Err == nil {
		t.Fatalf("in-flight write should flush with an error, got %+v", cqe)
	}
	if !errors.Is(cqe.Err, ErrInjected) {
		t.Errorf("flush error should wrap ErrInjected, got %v", cqe.Err)
	}
	if qa.Err() == nil || qb.Err() == nil {
		t.Error("both endpoints should be in error state")
	}
	for i, d := range dst.Data() {
		if d != 0 {
			t.Fatalf("flushed write landed data at offset %d", i)
		}
	}
	// Death is observable on both ends, on both queues.
	for _, tc := range []struct {
		name string
		cq   *CQ
	}{
		{"a/recv", qa.RecvCQ}, {"a/send", qa.SendCQ},
		{"b/recv", qb.RecvCQ}, {"b/send", qb.SendCQ},
	} {
		c, ok := tc.cq.Poll()
		if !ok || c.Err == nil {
			t.Errorf("%s: expected a flush CQE, got %+v (ok=%v)", tc.name, c, ok)
		}
	}
	if fab.Counters.Get("fault.injected") != 1 {
		t.Errorf("fault.injected = %d, want 1", fab.Counters.Get("fault.injected"))
	}
}

// An injected error must also flush an in-flight RDMA Read and release its
// ORD slot so the requester is not left with a leaked outstanding-read.
func TestInjectErrorFlushesInFlightRead(t *testing.T) {
	sim, fab, a, b, qa, _ := testPair(t, true)
	src := b.Mem.Alloc(1 << 20)
	dst := a.Mem.Alloc(1 << 20)
	fill(src, 3)

	fab.ScheduleQPError(des.Time(200*time.Microsecond), qa, nil)

	var cqe *CQE
	sim.Spawn("reader", func(p *des.Proc) {
		mr := b.HCA.Register(p, src, 0, src.Size, AccessRemoteRead)
		cqe = qa.PostAndWait(p, &SendWQE{
			WRID: 1, Op: OpRead,
			Local:     []LocalSeg{{Buf: dst, Len: dst.Size}},
			RemoteKey: mr.Rkey(), RemoteAddr: src.Addr(0),
		})
	})
	sim.Run()

	if cqe == nil || cqe.Err == nil {
		t.Fatalf("in-flight read should flush with an error, got %+v", cqe)
	}
	if !errors.Is(cqe.Err, ErrInjected) {
		t.Errorf("flush error should wrap ErrInjected, got %v", cqe.Err)
	}
	if got := qa.ord.InUse(); got != 0 {
		t.Errorf("ORD slots leaked: %d still in use, want 0", got)
	}
}

// A link flap kills every live connection between the node pair, while a
// connection established afterwards (the recovery path) stays healthy.
func TestScheduleLinkFlapSparesReconnect(t *testing.T) {
	sim, fab, a, b, qa1, qb1 := testPair(t, true)
	qa2, qb2 := fab.Connect(a, b, QPConfig{})

	fab.ScheduleLinkFlap(des.Time(time.Millisecond), a, b)

	var qa3, qb3 *QP
	sim.SpawnAt(des.Time(2*time.Millisecond), "reconnect", func(p *des.Proc) {
		qa3, qb3 = fab.Connect(a, b, QPConfig{})
		qb3.PostRecv(1, 64)
		cqe := qa3.PostAndWait(p, &SendWQE{WRID: 1, Op: OpSend, Payload: []byte("hello")})
		if cqe.Err != nil {
			t.Errorf("post-flap connection should be healthy, got %v", cqe.Err)
		}
	})
	sim.Run()

	for i, q := range []*QP{qa1, qb1, qa2, qb2} {
		if q.Err() == nil {
			t.Errorf("pre-flap QP %d should be dead", i)
		}
		if !errors.Is(q.Err(), ErrInjected) {
			t.Errorf("pre-flap QP %d error should wrap ErrInjected, got %v", i, q.Err())
		}
	}
	if qa3.Err() != nil || qb3.Err() != nil {
		t.Error("post-flap connection should not be in error state")
	}
	if fab.Counters.Get("fault.flap") != 1 {
		t.Errorf("fault.flap = %d, want 1", fab.Counters.Get("fault.flap"))
	}
}

// Scheduling faults against endpoints that already died (or were closed)
// is a no-op, so fault schedules laid out in advance are safe.
func TestScheduledFaultOnDeadQPIsNoOp(t *testing.T) {
	sim, fab, _, _, qa, _ := testPair(t, true)
	fab.ScheduleQPError(des.Time(time.Millisecond), qa, nil)
	fab.ScheduleQPError(des.Time(2*time.Millisecond), qa, nil)
	sim.Run()
	if fab.Counters.Get("fault.injected") != 1 {
		t.Errorf("fault.injected = %d, want 1 (second injection should no-op)",
			fab.Counters.Get("fault.injected"))
	}
}
