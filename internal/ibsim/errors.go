package ibsim

import "errors"

// Sentinel errors surfaced through CQE.Err and the verbs API.
var (
	// ErrProtection is a remote access that failed TPT validation: unknown
	// or stale steering tag, missing permission, or out-of-bounds range.
	ErrProtection = errors.New("ibsim: protection error")

	// ErrQPError is returned for work posted to (or flushed from) a queue
	// pair that has transitioned to the error state.
	ErrQPError = errors.New("ibsim: queue pair in error state")

	// ErrRNR is a send that found no posted receive after exhausting
	// receiver-not-ready retries.
	ErrRNR = errors.New("ibsim: receiver not ready")

	// ErrRecvOverflow is a send whose payload exceeded the posted receive
	// buffer.
	ErrRecvOverflow = errors.New("ibsim: receive buffer overflow")

	// ErrInjected is an administratively injected fault (a simulated link
	// flap or QP error from the fault-injection API); it wraps every error
	// delivered by Fabric.ScheduleLinkFlap / QP.InjectError.
	ErrInjected = errors.New("ibsim: injected fault")
)
