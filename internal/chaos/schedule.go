package chaos

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/telemetry"
)

// FaultKind classifies one scheduled fault.
type FaultKind int

// Fault kinds composed by the generator.
const (
	// FaultQPError injects a QP error on one client's live connection
	// (in-flight WQEs flush, both ends observe the death).
	FaultQPError FaultKind = iota
	// FaultLinkFlap kills every live connection between one client and the
	// server at the fire instant; connections created afterwards survive.
	FaultLinkFlap
	// FaultServerCrash crashes the server (DRC, registration state, parked
	// replies, SRQ pools, page cache all die) and restarts it after
	// Downtime.
	FaultServerCrash
)

func (k FaultKind) String() string {
	switch k {
	case FaultQPError:
		return "qperr"
	case FaultLinkFlap:
		return "flap"
	case FaultServerCrash:
		return "crash"
	}
	return fmt.Sprintf("fault(%d)", int(k))
}

// Fault is one scheduled fault.
type Fault struct {
	At   des.Time
	Kind FaultKind
	// Client targets FaultQPError / FaultLinkFlap (index into the cluster's
	// clients).
	Client int
	// Downtime is the crash-to-restart delay (FaultServerCrash only).
	Downtime des.Duration
}

func (f Fault) String() string {
	switch f.Kind {
	case FaultServerCrash:
		return fmt.Sprintf("t=%dµs crash(down=%dµs)", int64(f.At)/1000, int64(f.Downtime)/1000)
	default:
		return fmt.Sprintf("t=%dµs %v(client%d)", int64(f.At)/1000, f.Kind, f.Client)
	}
}

// Schedule is a reproducible fault schedule: the seed that generated it
// plus the (possibly shrunk) fault list, sorted by time.
type Schedule struct {
	Seed   uint64
	Faults []Fault
}

func (s Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return fmt.Sprintf("seed=%d [%s]", s.Seed, strings.Join(parts, "; "))
}

// FaultWindows converts the schedule to telemetry fault windows: a crash
// spans [At, At+Downtime]; QP errors and link flaps are instantaneous.
func (s Schedule) FaultWindows() []telemetry.FaultWindow {
	out := make([]telemetry.FaultWindow, 0, len(s.Faults))
	for _, f := range s.Faults {
		w := telemetry.FaultWindow{
			Name:   f.String(),
			StartS: f.At.Seconds(),
			EndS:   f.At.Seconds(),
		}
		if f.Kind == FaultServerCrash {
			w.EndS = (f.At + des.Time(f.Downtime)).Seconds()
		}
		out = append(out, w)
	}
	return out
}

// GenConfig parameterizes schedule generation.
type GenConfig struct {
	// Faults is how many faults to compose.
	Faults int
	// Clients is the cluster size faults target.
	Clients int
	// Horizon is the workload's expected span; fault times are drawn from
	// [Horizon/8, 3·Horizon/4] so they land while work is in flight.
	Horizon des.Duration
	// MinDowntime/MaxDowntime bound crash downtimes.
	MinDowntime, MaxDowntime des.Duration
	// MaxCrashes bounds how many of the faults may be server crashes.
	MaxCrashes int
}

func (c *GenConfig) defaults() {
	if c.Faults <= 0 {
		c.Faults = 4
	}
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Millisecond
	}
	if c.MinDowntime <= 0 {
		c.MinDowntime = 200 * time.Microsecond
	}
	if c.MaxDowntime <= c.MinDowntime {
		c.MaxDowntime = c.MinDowntime + 2*time.Millisecond
	}
	if c.MaxCrashes <= 0 {
		c.MaxCrashes = 2
	}
}

// Generate composes a fault schedule from a single seeded des.Rand stream.
// The same (seed, cfg) always yields the same schedule.
func Generate(seed uint64, cfg GenConfig) Schedule {
	cfg.defaults()
	rng := des.NewRand(seed*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d)
	lo := int64(cfg.Horizon) / 8
	hi := int64(cfg.Horizon) * 3 / 4
	crashes := 0
	faults := make([]Fault, 0, cfg.Faults)
	for i := 0; i < cfg.Faults; i++ {
		f := Fault{At: des.Time(lo + rng.Int63n(hi-lo))}
		switch r := rng.Intn(100); {
		case r < 30 && crashes < cfg.MaxCrashes:
			crashes++
			f.Kind = FaultServerCrash
			f.Downtime = cfg.MinDowntime + des.Duration(rng.Int63n(int64(cfg.MaxDowntime-cfg.MinDowntime)))
		case r < 65:
			f.Kind = FaultQPError
			f.Client = rng.Intn(cfg.Clients)
		default:
			f.Kind = FaultLinkFlap
			f.Client = rng.Intn(cfg.Clients)
		}
		faults = append(faults, f)
	}
	sort.Slice(faults, func(i, j int) bool {
		a, b := faults[i], faults[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Client != b.Client {
			return a.Client < b.Client
		}
		return a.Downtime < b.Downtime
	})
	return Schedule{Seed: seed, Faults: faults}
}

// Apply arms every fault on the cluster's simulation. Must be called before
// Run. Fault actions resolve their targets at fire time — the client's
// CURRENT connection, the server's CURRENT transport — because recovery
// replaces both while the schedule plays out. Crashes notify the oracle
// (when non-nil) so it can judge replay anomalies against crash windows;
// a crash firing while the server is already down is a no-op.
func (s Schedule) Apply(c *core.Cluster, o *Oracle) {
	for _, f := range s.Faults {
		f := f
		switch f.Kind {
		case FaultQPError:
			c.Sim.SpawnAt(f.At, "chaos-qperr", func(p *des.Proc) {
				cl := c.Clients[f.Client%len(c.Clients)]
				if cl.RDMA != nil && !cl.RDMA.Broken() {
					cl.RDMA.QP().InjectError(nil)
				}
			})
		case FaultLinkFlap:
			cl := c.Clients[f.Client%len(c.Clients)]
			c.Fabric.ScheduleLinkFlap(f.At, cl.Node, c.Server.Node)
		case FaultServerCrash:
			c.Sim.SpawnAt(f.At, "chaos-crash", func(p *des.Proc) {
				if c.ServerDown() {
					return
				}
				if o != nil {
					o.ServerCrashed(p.Now(), p.Now()+des.Time(f.Downtime))
				}
				c.CrashServer(p)
				p.Sleep(f.Downtime)
				c.RestartServer(p)
			})
		}
	}
}
