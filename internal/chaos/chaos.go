package chaos

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Config parameterizes one chaos run: a fully wired cluster, the chaos
// workload, and a fault schedule (generated from Seed unless an explicit
// Schedule — e.g. a shrinker candidate — is supplied).
type Config struct {
	Seed   uint64
	Design rpcrdma.Design
	Shards int // server dispatch shards (0 = per-connection receive path)

	// Multiplex runs the server's shared-QP connection mode: clients attach
	// DCT-style endpoints demultiplexed by stream id. Faults then exercise
	// the endpoint-scoped error paths — a killed client must not take its
	// shared QP's siblings with it, and crash/restart must rebuild the
	// shared QPs. Implies sharded dispatch.
	Multiplex bool

	// Affinity pins shard reply processing to the completion CPU.
	Affinity bool

	Clients int
	Load    workload.ChaosLoadConfig

	// Faults/MaxCrashes/Horizon feed the schedule generator.
	Faults     int
	MaxCrashes int
	Horizon    des.Duration

	// Schedule overrides generation: the exact fault list to apply
	// (shrinking replays candidates this way). Seed is still used for the
	// cluster's own randomness.
	Schedule *Schedule

	// DisableDRC turns the server's duplicate request cache off — the
	// deliberately-broken-server ablation the oracle must catch (replayed
	// RENAMEs re-execute and surface illegal ENOENTs).
	DisableDRC bool

	// TraceCapacity > 0 enables tracing and runs the trace invariant
	// checkers (WQE/CQE pairing, MR exposure bounds, and — Read-Write only
	// — no remote exposure of server memory) after the run.
	TraceCapacity int

	// TelemetryInterval > 0 enables virtual-time sampling at this period;
	// the run's Result then carries a telemetry report with every scheduled
	// fault annotated with its measured recovery time.
	TelemetryInterval des.Duration
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Faults <= 0 {
		c.Faults = 4
	}
	if c.MaxCrashes <= 0 {
		c.MaxCrashes = 2
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Millisecond
	}
}

// Result is one chaos run's outcome: the schedule that was applied, every
// oracle and invariant violation, and the counters that make up the
// determinism fingerprint.
type Result struct {
	Schedule Schedule

	// Violations are data-integrity oracle failures; InvariantViolations
	// are trace invariant checker failures.
	Violations          []string
	InvariantViolations []string

	Crashes             int64
	Reconnects, Replays int64
	Timeouts            int64
	Retransmits         int64
	DRCHits, DRCMisses  int64
	Load                workload.ChaosLoadResult
	WritesIssued        int64
	OracleReads         int64
	OracleRenameENOENTs int64
	FinalTime           des.Time

	// Fingerprint condenses every counter and the final virtual time into
	// one string; equal fingerprints mean byte-identical runs.
	Fingerprint string

	// Report is the telemetry report with chaos-recovery findings (one per
	// scheduled fault); nil unless Config.TelemetryInterval was set.
	Report *telemetry.Report
}

// Failed reports whether the run violated the oracle or a trace invariant.
func (r *Result) Failed() bool {
	return len(r.Violations) > 0 || len(r.InvariantViolations) > 0
}

// chaosProfile arms per-call watchdogs on LinuxSDR so silent losses (e.g. a
// reply swallowed by a crash) time out and retransmit instead of hanging.
func chaosProfile() profiles.Profile {
	prof := profiles.LinuxSDR()
	prof.RDMAClient.CallTimeout = 1 * time.Millisecond
	prof.RDMAClient.RetryLimit = 4
	return prof
}

// chaosPolicy is the recovery budget: generous enough to ride out every
// outage a generated schedule can produce, so terminal failures stay rare
// and the oracle's pending sets stay small.
func chaosPolicy() core.RetryPolicy {
	return core.RetryPolicy{
		MaxReconnects: 40,
		Backoff:       50 * time.Microsecond,
		MaxBackoff:    1 * time.Millisecond,
	}
}

// Run executes one seeded chaos run and returns its result. Identical
// configs produce identical results (see Result.Fingerprint).
func Run(cfg Config) *Result {
	cfg.defaults()
	drcEntries := 0
	if cfg.DisableDRC {
		drcEntries = -1
	}
	cluster := core.NewCluster(core.Config{
		Profile:      chaosProfile(),
		Transport:    core.TransportRDMA,
		Design:       cfg.Design,
		Clients:      cfg.Clients,
		Backend:      core.BackendTmpfs,
		CopyData:     true, // integrity checking needs real bytes
		DRCEntries:   drcEntries,
		ServerShards: cfg.Shards,
		Multiplex:    cfg.Multiplex,
		Affinity:     cfg.Affinity,
		Seed:         cfg.Seed,
	})
	var tr *trace.Tracer
	if cfg.TraceCapacity > 0 {
		tr = cluster.EnableTracing(cfg.TraceCapacity)
	}
	if cfg.TelemetryInterval > 0 {
		cluster.EnableTelemetry(telemetry.Options{Interval: cfg.TelemetryInterval})
	}

	oracle := NewOracle()
	sched := Generate(cfg.Seed, GenConfig{
		Faults:     cfg.Faults,
		Clients:    cfg.Clients,
		Horizon:    cfg.Horizon,
		MaxCrashes: cfg.MaxCrashes,
	})
	if cfg.Schedule != nil {
		sched = *cfg.Schedule
	}
	sched.Apply(cluster, oracle)

	res := &Result{Schedule: sched}
	cluster.Start("chaos", func(p *des.Proc) {
		for _, cl := range cluster.Clients {
			cl.EnableRecovery(chaosPolicy())
		}
		load, err := workload.RunChaosLoad(p, cluster, cfg.Load, oracle)
		if err != nil {
			oracle.Violation("workload error: %v", err)
		}
		res.Load = load
	})
	res.FinalTime = cluster.RunUntil(des.Time(10 * time.Second))

	res.Violations = append(res.Violations, oracle.Violations...)
	if oracle.ViolationCount > int64(len(oracle.Violations)) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("... and %d more", oracle.ViolationCount-int64(len(oracle.Violations))))
	}
	res.Crashes = cluster.Crashes
	for _, cl := range cluster.Clients {
		rc, rp := cl.RecoveryStats()
		res.Reconnects += rc
		res.Replays += rp
		to, rt := cl.TransportStats()
		res.Timeouts += to
		res.Retransmits += rt
	}
	res.DRCHits, res.DRCMisses = cluster.Server.Dispatcher.DRCStats()
	res.WritesIssued = oracle.WritesIssued
	res.OracleReads = oracle.ReadsChecked
	res.OracleRenameENOENTs = oracle.RenameChecks

	if tr != nil {
		res.checkInvariants(tr, cfg.Design)
	}
	if tel := cluster.Telemetry(); tel != nil {
		res.Report = tel.Report()
		res.Report.Findings = append(res.Report.Findings,
			res.Report.AnnotateFaults(sched.FaultWindows(), "workload.writes_acked")...)
	}

	res.Fingerprint = fmt.Sprintf(
		"t=%d crashes=%d rc=%d rp=%d to=%d rt=%d drc=%d/%d wi=%d wa=%d wf=%d reads=%d ren=%d/%d/%d viol=%d inv=%d",
		int64(res.FinalTime), res.Crashes, res.Reconnects, res.Replays,
		res.Timeouts, res.Retransmits, res.DRCHits, res.DRCMisses,
		res.WritesIssued, res.Load.WritesAcked, res.Load.WritesFailed,
		res.OracleReads, res.Load.RenamesOK, res.Load.RenameENOENTs, res.Load.RenamesFailed,
		len(res.Violations), len(res.InvariantViolations))
	return res
}

// checkInvariants runs the PR 3 trace invariant checkers over the run's
// event stream. A full ring (dropped events) makes pairing checks
// unreliable, so it is itself reported instead of false positives.
func (res *Result) checkInvariants(tr *trace.Tracer, design rpcrdma.Design) {
	if d := tr.Dropped(); d > 0 {
		res.InvariantViolations = append(res.InvariantViolations,
			fmt.Sprintf("trace ring dropped %d events; raise TraceCapacity", d))
		return
	}
	events := tr.Events()
	if err := trace.CheckWQECQE(events); err != nil {
		res.InvariantViolations = append(res.InvariantViolations, fmt.Sprintf("WQE/CQE pairing: %v", err))
	}
	if err := trace.CheckExposureBounds(events); err != nil {
		res.InvariantViolations = append(res.InvariantViolations, fmt.Sprintf("MR exposure bounds: %v", err))
	}
	// The server side must stay unexposed in both designs that avoid
	// server-advertised chunks: Read-Write (the paper's §4 claim) and
	// reply-fetch (the server only ever Writes into client-owned slots).
	// Read-Read exposes the server by construction; reply-fetch instead
	// exposes the *clients*, which CheckExposureBounds above still bounds
	// to each RPC's lifetime.
	if design == rpcrdma.ReadWrite || design == rpcrdma.ReplyFetch {
		if err := trace.CheckNoRemoteExposure(events, "server"); err != nil {
			res.InvariantViolations = append(res.InvariantViolations, fmt.Sprintf("remote exposure: %v", err))
		}
	}
}
