package chaos

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/rpcrdma"
)

// TestChaosSingleRunClean: one seeded schedule against a healthy server
// passes the oracle and actually exercises the machinery (faults fired,
// recovery ran, writes landed).
func TestChaosSingleRunClean(t *testing.T) {
	res := Run(Config{Seed: 7, Design: rpcrdma.ReadWrite, Faults: 4, TraceCapacity: 1 << 20})
	if res.Failed() {
		t.Fatalf("violations: %v %v\nschedule: %v", res.Violations, res.InvariantViolations, res.Schedule)
	}
	if res.Load.WritesAcked == 0 {
		t.Fatal("no writes acknowledged")
	}
	if res.Load.RenamesOK == 0 {
		t.Fatal("no renames completed")
	}
	t.Logf("schedule: %v", res.Schedule)
	t.Logf("fingerprint: %s", res.Fingerprint)
}

// TestChaosDeterministic: same seed, same config => byte-identical run.
func TestChaosDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Design: rpcrdma.ReadRead, Faults: 5}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same-seed fingerprints differ:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestChaosReplyFetchDeterministic: the doorbell write-watch and fetch
// proc introduce new event orderings; same seed must still mean a
// byte-identical run, crash/replay deposits included.
func TestChaosReplyFetchDeterministic(t *testing.T) {
	cfg := Config{Seed: 17, Design: rpcrdma.ReplyFetch, Faults: 5}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same-seed reply-fetch fingerprints differ:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestChaosReplyFetchCrashReplayClean covers the deposited-but-unfetched
// corner directly: a reply-fetch run whose schedule includes server
// crashes must replay every interrupted call through the rebuilt DRC with
// byte-identical results — the integrity oracle reads back every byte, so
// a replay that deposited different bytes (or re-executed a
// non-idempotent op) would surface as a violation.
func TestChaosReplyFetchCrashReplayClean(t *testing.T) {
	res := Run(Config{Seed: 9, Design: rpcrdma.ReplyFetch, Faults: 5,
		MaxCrashes: 2, TraceCapacity: 1 << 20})
	if res.Failed() {
		t.Fatalf("violations: %v %v\nschedule: %v", res.Violations, res.InvariantViolations, res.Schedule)
	}
	if res.Crashes == 0 {
		t.Skip("seed produced no crash; crash replay not exercised")
	}
	if res.Replays == 0 {
		t.Fatal("crash happened but nothing was replayed")
	}
	t.Logf("crashes=%d replays=%d drc=%d/%d", res.Crashes, res.Replays, res.DRCHits, res.DRCMisses)
}

// chaosSoakSeeds returns the soak width: 32 seeds by default (the
// acceptance floor), overridable with CHAOS_SEEDS=n for longer campaigns.
func chaosSoakSeeds(t *testing.T) int {
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			t.Fatalf("bad CHAOS_SEEDS=%q", s)
		}
		return n
	}
	return 32
}

// TestChaosSoak: N seeded schedules × {Read-Read, Read-Write, Reply-Fetch}
// must pass the data-integrity oracle and every trace invariant checker.
// Runs fan out across cores deterministically (index-keyed results).
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	seeds := chaosSoakSeeds(t)
	type point struct {
		seed   uint64
		design rpcrdma.Design
	}
	var grid []point
	for _, d := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReadRead, rpcrdma.ReplyFetch} {
		for s := 1; s <= seeds; s++ {
			grid = append(grid, point{seed: uint64(s), design: d})
		}
	}
	results := runner.Map(len(grid), func(i int) *Result {
		pt := grid[i]
		shards := 0
		if pt.seed%2 == 0 {
			shards = 2 // alternate seeds exercise the sharded dispatch path
		}
		return Run(Config{
			Seed: pt.seed, Design: pt.design, Shards: shards,
			Faults: 4, TraceCapacity: 1 << 20,
		})
	})
	failed := 0
	for i, res := range results {
		if res.Failed() {
			failed++
			t.Errorf("seed=%d design=%v: %v %v\n  schedule: %v",
				grid[i].seed, grid[i].design, res.Violations, res.InvariantViolations, res.Schedule)
		}
	}
	if failed == 0 {
		t.Logf("%d runs clean (%d seeds × 3 designs)", len(results), seeds)
	}
}

// TestChaosSoakMux: the same seeded fault schedules against the shared-QP
// (multiplexed) server. Faults now land on endpoints of a shared QP, so the
// runs soak the endpoint-scoped error paths — a killed client's siblings
// must keep running, redials must reuse freed slots, and crash/restart must
// tear down and re-arm the shared QPs. Alternate seeds pin reply processing
// to the completion CPU so both affinity paths soak too.
func TestChaosSoakMux(t *testing.T) {
	if testing.Short() {
		t.Skip("soak; skipped in -short")
	}
	seeds := chaosSoakSeeds(t)
	type point struct {
		seed   uint64
		design rpcrdma.Design
	}
	var grid []point
	for _, d := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReadRead, rpcrdma.ReplyFetch} {
		for s := 1; s <= seeds; s++ {
			grid = append(grid, point{seed: uint64(s), design: d})
		}
	}
	results := runner.Map(len(grid), func(i int) *Result {
		pt := grid[i]
		return Run(Config{
			Seed: pt.seed, Design: pt.design, Shards: 2,
			Multiplex: true, Affinity: pt.seed%2 == 0,
			Faults: 4, TraceCapacity: 1 << 20,
		})
	})
	failed := 0
	for i, res := range results {
		if res.Failed() {
			failed++
			t.Errorf("seed=%d design=%v: %v %v\n  schedule: %v",
				grid[i].seed, grid[i].design, res.Violations, res.InvariantViolations, res.Schedule)
		}
	}
	if failed == 0 {
		t.Logf("%d mux runs clean (%d seeds × 3 designs)", len(results), seeds)
	}
}

// TestChaosMuxDeterministic: same seed, same multiplexed config =>
// byte-identical run, fingerprint included.
func TestChaosMuxDeterministic(t *testing.T) {
	cfg := Config{Seed: 13, Design: rpcrdma.ReadWrite, Shards: 2, Multiplex: true, Affinity: true, Faults: 5}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same-seed mux fingerprints differ:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
}

// TestChaosBrokenDRCCaughtAndShrinks: with the DRC disabled (the
// deliberately-broken server), some seed must produce an illegal RENAME
// re-execution that the oracle flags, and the shrinker must reduce that
// schedule to at most 3 faults.
func TestChaosBrokenDRCCaughtAndShrinks(t *testing.T) {
	cfgFor := func(seed uint64, sched *Schedule) Config {
		return Config{
			Seed: seed, Design: rpcrdma.ReadWrite,
			Faults: 6, MaxCrashes: 1, DisableDRC: true,
			Schedule: sched,
		}
	}
	var failing *Result
	var seed uint64
	for s := uint64(1); s <= 24; s++ {
		res := Run(cfgFor(s, nil))
		if len(res.Violations) > 0 {
			failing = res
			seed = s
			break
		}
	}
	if failing == nil {
		t.Fatal("no seed in 1..24 made the broken DRC visible; oracle or workload too weak")
	}
	t.Logf("seed=%d caught broken DRC: %v", seed, failing.Violations[0])
	t.Logf("original schedule (%d faults): %v", len(failing.Schedule.Faults), failing.Schedule)

	shrunk := Shrink(failing.Schedule, func(s Schedule) bool {
		r := Run(cfgFor(seed, &s))
		return len(r.Violations) > 0
	})
	t.Logf("shrunk schedule (%d faults): %v", len(shrunk.Faults), shrunk)
	if len(shrunk.Faults) > 3 {
		t.Errorf("shrunk schedule still has %d faults, want <= 3: %v", len(shrunk.Faults), shrunk)
	}
	// The shrunk schedule must still reproduce.
	if r := Run(cfgFor(seed, &shrunk)); len(r.Violations) == 0 {
		t.Error("shrunk schedule no longer reproduces the violation")
	}
}

// TestShrinkMinimizesSyntheticPredicate pins the ddmin mechanics without
// simulation cost: failure requires faults {2, 5} to both survive.
func TestShrinkMinimizesSyntheticPredicate(t *testing.T) {
	var faults []Fault
	for i := 0; i < 8; i++ {
		faults = append(faults, Fault{At: des.Time(1000 * i), Client: i})
	}
	full := Schedule{Seed: 42, Faults: faults}
	fails := func(s Schedule) bool {
		has := func(client int) bool {
			for _, f := range s.Faults {
				if f.Client == client {
					return true
				}
			}
			return false
		}
		return has(2) && has(5)
	}
	shrunk := Shrink(full, fails)
	if len(shrunk.Faults) != 2 {
		t.Fatalf("shrunk to %d faults, want 2: %v", len(shrunk.Faults), shrunk)
	}
	if !fails(shrunk) {
		t.Fatal("shrunk schedule does not fail")
	}
}

// TestGenerateDeterministicAndSorted pins the generator: same seed, same
// schedule; fault times are sorted.
func TestGenerateDeterministicAndSorted(t *testing.T) {
	cfg := GenConfig{Faults: 12, Clients: 3, MaxCrashes: 3}
	a := Generate(99, cfg)
	b := Generate(99, cfg)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("same-seed schedules differ:\n%v\n%v", a, b)
	}
	for i := 1; i < len(a.Faults); i++ {
		if a.Faults[i].At < a.Faults[i-1].At {
			t.Fatalf("faults not sorted by time: %v", a)
		}
	}
	if Generate(100, cfg).String() == a.String() {
		t.Fatal("different seeds produced identical schedules")
	}
}
