package chaos

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/rpcrdma"
	"repro/internal/telemetry"
)

// chaosReportDigest folds a chaos run's telemetry — CSV series plus every
// finding — into one comparable string.
func chaosReportDigest(r *telemetry.Report) string {
	if r == nil {
		return "<nil>"
	}
	var csv bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		return "csv error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString(csv.String())
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}

// TestChaosRecoveryAnnotation is the acceptance check for chaos-window
// annotation: a run with one scheduled server crash must produce a
// telemetry report whose chaos-recovery finding carries a measured,
// positive recovery duration — the time from the crash to the acked-write
// rate regaining its pre-fault baseline.
func TestChaosRecoveryAnnotation(t *testing.T) {
	sched := &Schedule{Seed: 9, Faults: []Fault{{
		At:       des.Time(1 * time.Millisecond),
		Kind:     FaultServerCrash,
		Downtime: des.Duration(500 * time.Microsecond),
	}}}
	cfg := Config{
		Seed:              9,
		Design:            rpcrdma.ReadWrite,
		Schedule:          sched,
		TelemetryInterval: des.Duration(50 * time.Microsecond),
	}
	res := Run(cfg)
	if res.Failed() {
		t.Fatalf("violations: %v %v", res.Violations, res.InvariantViolations)
	}
	if res.Report == nil || len(res.Report.TimesS) == 0 {
		t.Fatal("telemetry-enabled chaos run produced no report")
	}
	if res.Crashes != 1 {
		t.Fatalf("got %d crashes, want 1", res.Crashes)
	}

	var rec []telemetry.Finding
	for _, f := range res.Report.Findings {
		if f.Detector == "chaos-recovery" {
			rec = append(rec, f)
		}
	}
	if len(rec) != 1 {
		t.Fatalf("got %d chaos-recovery findings, want 1:\n%v", len(rec), res.Report.Findings)
	}
	f := rec[0]
	t.Logf("recovery finding: %s", f)
	if f.Value < 0 {
		t.Fatalf("crash not recovered within the run: %s", f)
	}
	// The measured recovery can't beat the scheduled downtime: the server
	// is gone for the whole window.
	if down := (500 * time.Microsecond).Seconds(); f.Value < down {
		t.Fatalf("recovery %.6fs shorter than the crash window %.6fs", f.Value, down)
	}
	if f.StartS != (1 * time.Millisecond).Seconds() {
		t.Fatalf("finding starts at %.6fs, want the crash instant 0.001s", f.StartS)
	}
}

// TestChaosTelemetryDeterministic: same seed and schedule produce
// byte-identical telemetry — series and findings — alongside the existing
// fingerprint identity.
func TestChaosTelemetryDeterministic(t *testing.T) {
	cfg := Config{
		Seed:              11,
		Design:            rpcrdma.ReadRead,
		Faults:            5,
		TelemetryInterval: des.Duration(100 * time.Microsecond),
	}
	a := Run(cfg)
	b := Run(cfg)
	if a.Fingerprint != b.Fingerprint {
		t.Fatalf("same-seed fingerprints differ:\n  %s\n  %s", a.Fingerprint, b.Fingerprint)
	}
	da, db := chaosReportDigest(a.Report), chaosReportDigest(b.Report)
	if da != db {
		t.Fatalf("same-seed telemetry differs:\n%s\n---\n%s", da, db)
	}
	if da == "<nil>" {
		t.Fatal("telemetry-enabled chaos run produced no report")
	}
	// Every scheduled fault must be annotated, recovered or not.
	var rec int
	for _, f := range a.Report.Findings {
		if f.Detector == "chaos-recovery" {
			rec++
		}
	}
	if rec != len(a.Schedule.Faults) {
		t.Fatalf("%d chaos-recovery findings for %d scheduled faults", rec, len(a.Schedule.Faults))
	}
}
