// Package chaos is the deterministic chaos engine: seeded fault schedules
// composing QP errors, link flaps, and server crash/restart cycles on top
// of the DES; a data-integrity oracle that checks every byte a client
// observes against the legal write history; and a delta-debugging shrinker
// that reduces a failing schedule to a minimal reproducer. Everything is
// driven from des.Rand streams, so any failure reproduces from its seed.
package chaos

import (
	"fmt"

	"repro/internal/des"
)

// maxViolations bounds the recorded violation messages per run; counts keep
// accumulating past the cap.
const maxViolations = 16

type recKey struct {
	file string
	rec  int
}

// record is the oracle's model of one fixed-size record slot in a file.
// The workload writes whole records filled with a single value byte, so
// the legal contents of a slot at any instant are:
//
//   - the value of the last acknowledged write (committed), or
//   - any issued-but-unresolved value (pending): the write's call failed
//     terminally, so the client cannot know whether it executed — the
//     workload retires such records and never supersedes the value, which
//     keeps this set sound forever, or
//   - zero, if no write was ever acknowledged (the slot may be a hole).
//
// All writes are FileSync against stable storage, so an acknowledged value
// survives crashes; an in-flight (not yet failed, not yet acked) value is
// also pending during its call window.
type record struct {
	committed byte
	acked     bool
	pending   map[byte]bool
}

type crashWindow struct {
	start, end des.Time
}

// Oracle is the data-integrity model filesystem. All methods run inside the
// simulation (single-threaded cooperative procs), so there is no locking.
type Oracle struct {
	recs    map[recKey]*record
	crashes []crashWindow

	// Violations holds the first maxViolations failure descriptions.
	Violations []string
	// ViolationCount is the total, including ones past the message cap.
	ViolationCount int64

	WritesIssued, WritesAcked, WritesFailed int64
	ReadsChecked                            int64
	RenameChecks                            int64
}

// NewOracle creates an empty model.
func NewOracle() *Oracle {
	return &Oracle{recs: make(map[recKey]*record)}
}

func (o *Oracle) rec(file string, rec int) *record {
	k := recKey{file, rec}
	r, ok := o.recs[k]
	if !ok {
		r = &record{pending: make(map[byte]bool)}
		o.recs[k] = r
	}
	return r
}

// Violation records one oracle failure.
func (o *Oracle) Violation(format string, args ...any) {
	o.ViolationCount++
	if len(o.Violations) < maxViolations {
		o.Violations = append(o.Violations, fmt.Sprintf(format, args...))
	}
}

// WriteIssued records that a write of val to (file, rec) is on the wire:
// from this instant the value may legally appear in reads.
func (o *Oracle) WriteIssued(file string, rec int, val byte) {
	o.WritesIssued++
	o.rec(file, rec).pending[val] = true
}

// WriteAcked resolves an issued write as executed: val becomes the
// committed value and stops being merely pending.
func (o *Oracle) WriteAcked(file string, rec int, val byte) {
	o.WritesAcked++
	r := o.rec(file, rec)
	r.committed = val
	r.acked = true
	delete(r.pending, val)
}

// WriteFailed resolves an issued write as terminally failed at the client:
// the server may or may not have executed it, so val stays in the pending
// set forever. The workload must retire the record (never write it again) —
// a later write superseding an unresolved value would make this set
// unsound.
func (o *Oracle) WriteFailed(file string, rec int, val byte) {
	o.WritesFailed++
	_ = o.rec(file, rec) // pending entry already present from WriteIssued
}

// ReadObserved checks the bytes a READ returned for (file, rec) against the
// legal set. data shorter than the record means the tail was a hole (the
// caller zero-fills), which is legal only when no write was ever
// acknowledged.
func (o *Oracle) ReadObserved(file string, rec int, data []byte) {
	o.ReadsChecked++
	r := o.rec(file, rec)
	for i, b := range data {
		if b == r.committed && r.acked {
			continue
		}
		if b == 0 && !r.acked {
			continue
		}
		if r.pending[b] {
			continue
		}
		o.Violation("read %s rec %d byte %d: got %#x, legal committed=%#x(acked=%v) pending=%v",
			file, rec, i, b, r.committed, r.acked, pendingSet(r.pending))
		return // one violation per read is enough
	}
}

func pendingSet(m map[byte]bool) []int {
	var out []int
	for b := range m {
		out = append(out, int(b))
	}
	// Deterministic order for messages.
	for i := 0; i < len(out); i++ {
		for j := i + 1; j < len(out); j++ {
			if out[j] < out[i] {
				out[i], out[j] = out[j], out[i]
			}
		}
	}
	return out
}

// ServerCrashed records a crash window [at, until): the instant the DRC
// died through the restart that made the server reachable again.
func (o *Oracle) ServerCrashed(at, until des.Time) {
	o.crashes = append(o.crashes, crashWindow{start: at, end: until})
}

// Crashes returns how many server crashes the oracle was told about.
func (o *Oracle) Crashes() int { return len(o.crashes) }

// RenameENOENT judges an NFS3ERR_NOENT returned by a RENAME whose call
// window was [start, end]. A healthy server never re-executes a replayed
// RENAME — the DRC answers it — so ENOENT is legal ONLY when the call
// overlapped a server crash: the crash wiped the DRC, and the post-restart
// replay legitimately re-executed. An ENOENT outside every crash window
// means the DRC failed to suppress a duplicate — the replay bug this
// oracle exists to catch. Returns whether the ENOENT was legal.
func (o *Oracle) RenameENOENT(start, end des.Time) bool {
	o.RenameChecks++
	for _, w := range o.crashes {
		if start <= w.end && w.start <= end {
			return true
		}
	}
	o.Violation("RENAME got NFS3ERR_NOENT at t=[%d,%d] with no overlapping server crash: duplicate RENAME re-executed (DRC replay failure)",
		int64(start), int64(end))
	return false
}
