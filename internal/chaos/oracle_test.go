package chaos

import (
	"testing"

	"repro/internal/des"
)

// TestOracleReadLegality pins the legal-content rules for one record slot:
// committed-and-acked, zero-before-any-ack, and unresolved pending values
// are legal; anything else is a violation.
func TestOracleReadLegality(t *testing.T) {
	o := NewOracle()

	// Never written: only zeroes are legal.
	o.ReadObserved("f", 0, []byte{0, 0, 0})
	if o.ViolationCount != 0 {
		t.Fatalf("zero read of a hole flagged: %v", o.Violations)
	}
	o.ReadObserved("f", 0, []byte{0, 7, 0})
	if o.ViolationCount != 1 {
		t.Fatalf("nonzero byte in a never-written slot not flagged")
	}

	// Acked write: its value is legal, zero no longer is.
	o = NewOracle()
	o.WriteIssued("f", 1, 0xAA)
	o.WriteAcked("f", 1, 0xAA)
	o.ReadObserved("f", 1, []byte{0xAA, 0xAA})
	if o.ViolationCount != 0 {
		t.Fatalf("committed value flagged: %v", o.Violations)
	}
	o.ReadObserved("f", 1, []byte{0xAA, 0x00})
	if o.ViolationCount != 1 {
		t.Fatal("zero after an acked write not flagged")
	}

	// Terminally failed write: the unresolved value stays legal forever,
	// alongside the last committed value.
	o = NewOracle()
	o.WriteIssued("f", 2, 0x11)
	o.WriteAcked("f", 2, 0x11)
	o.WriteIssued("f", 2, 0x22)
	o.WriteFailed("f", 2, 0x22)
	o.ReadObserved("f", 2, []byte{0x11})
	o.ReadObserved("f", 2, []byte{0x22})
	if o.ViolationCount != 0 {
		t.Fatalf("committed or pending value flagged: %v", o.Violations)
	}
	o.ReadObserved("f", 2, []byte{0x33})
	if o.ViolationCount != 1 {
		t.Fatal("value never issued not flagged")
	}
}

// TestOracleRenameENOENTWindows pins the non-idempotent-replay rule: an
// ENOENT is legal exactly when the call window overlaps a crash window.
func TestOracleRenameENOENTWindows(t *testing.T) {
	o := NewOracle()
	o.ServerCrashed(des.Time(1000), des.Time(2000))

	if !o.RenameENOENT(des.Time(1500), des.Time(1600)) {
		t.Error("ENOENT inside the crash window judged illegal")
	}
	if !o.RenameENOENT(des.Time(500), des.Time(1000)) {
		t.Error("ENOENT touching the window start judged illegal")
	}
	if !o.RenameENOENT(des.Time(900), des.Time(2500)) {
		t.Error("ENOENT spanning the whole window judged illegal")
	}
	if o.ViolationCount != 0 {
		t.Fatalf("legal ENOENTs recorded violations: %v", o.Violations)
	}
	if o.RenameENOENT(des.Time(2001), des.Time(2100)) {
		t.Error("ENOENT after the window judged legal")
	}
	if o.RenameENOENT(des.Time(100), des.Time(999)) {
		t.Error("ENOENT before the window judged legal")
	}
	if o.ViolationCount != 2 {
		t.Fatalf("ViolationCount = %d, want 2", o.ViolationCount)
	}
	if o.Crashes() != 1 {
		t.Fatalf("Crashes() = %d, want 1", o.Crashes())
	}
}
