package chaos

// Shrink reduces a failing schedule to a (1-)minimal reproducer by delta
// debugging (ddmin): it repeatedly tries dropping chunks of the fault list,
// keeping any reduced schedule for which fails still reports true, and
// refines the chunk granularity when no drop reproduces. fails must be
// deterministic — with the seeded DES, re-running the same schedule is.
// The returned schedule keeps the original seed for provenance.
//
// The input is returned unchanged if fails(s) is false (nothing to shrink).
func Shrink(s Schedule, fails func(Schedule) bool) Schedule {
	if !fails(s) {
		return s
	}
	cur := s
	n := 2 // granularity: the list is split into n chunks
	for len(cur.Faults) >= 2 {
		if n > len(cur.Faults) {
			n = len(cur.Faults)
		}
		chunk := (len(cur.Faults) + n - 1) / n
		reduced := false
		for start := 0; start < len(cur.Faults); start += chunk {
			end := start + chunk
			if end > len(cur.Faults) {
				end = len(cur.Faults)
			}
			cand := Schedule{Seed: cur.Seed}
			cand.Faults = append(cand.Faults, cur.Faults[:start]...)
			cand.Faults = append(cand.Faults, cur.Faults[end:]...)
			if fails(cand) {
				cur = cand
				if n > 2 {
					n--
				}
				reduced = true
				break
			}
		}
		if !reduced {
			if chunk == 1 {
				break // removing any single fault stops the failure: minimal
			}
			n *= 2
		}
	}
	return cur
}
