// Package adversary is the executable threat model of the paper's §6
// security discussion (and of NeVerMore's attack taxonomy for RDMA storage
// protocols): a deterministic attacker node — "mallory" — joins a live
// cluster next to honest clients and runs the attack classes an RPC/RDMA
// NFS actually faces:
//
//   - rkey scanning: guessing steering tags and addresses and issuing raw
//     one-sided Reads/Writes against whatever the server's HCA has exposed,
//     measuring how each registration strategy of §4.3 changes the search
//     space (all-physical's single global tag is spectacularly bad);
//   - spoofed RDMA_DONE: forging the Read-Read design's completion message
//     with guessed XIDs — and, on a shared multiplexed QP, forged stream
//     claims — to free another client's parked replies out from under it;
//   - DRC forgery: replaying and pre-priming the duplicate request cache
//     with a forged client credential so a victim's retransmission is
//     answered from the attacker's poisoned entry;
//   - stale-buffer reads: re-using previously valid rkeys after the owner
//     deregistered, probing the FMR remap window.
//
// Each run reports time-to-compromise (virtual time until the first
// unauthorized read, write, or free succeeds) and blast radius (how many
// victim clients the integrity oracle saw corrupted), per transfer design
// and registration mode. All attacker randomness comes from one seeded
// des.Rand stream, so runs are byte-identical for a given Config (see
// Result.Fingerprint).
//
// The same package measures the hardening that closes each hole: randomized
// steering tags (the default; Config.Hardened=false re-opens sequential
// allocation), fabric-authenticated stream sources (CQE.SrcStream),
// transport-authenticated DRC keying (DispatchOpts.Peer), FMR key rotation,
// and per-endpoint misbehavior scoring that quarantines only the attacker's
// endpoint on a shared QP.
package adversary

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/workload"
)

// Attack selects attack classes; combine with bitwise or.
type Attack int

// Attack classes.
const (
	// AttackRkeyScan guesses (rkey, address) pairs and issues raw one-sided
	// RDMA Reads against the server, escalating to a Write spray on the
	// first hit.
	AttackRkeyScan Attack = 1 << iota
	// AttackSpoofDone sends forged RDMA_DONE messages with guessed XIDs —
	// and forged stream claims on a shared QP — to free victims' parked
	// replies.
	AttackSpoofDone
	// AttackDRCForge connects with a forged client credential and pre-primes
	// the duplicate request cache at the victim's future XIDs.
	AttackDRCForge
	// AttackStaleProbe replays rkeys discovered by the scan after their
	// owners' I/O windows closed, probing deregistration and FMR remap.
	AttackStaleProbe

	// AttackAll runs every class.
	AttackAll = AttackRkeyScan | AttackSpoofDone | AttackDRCForge | AttackStaleProbe
)

// Config parameterizes one adversary run: a fully wired cluster with honest
// clients running the integrity-checked chaos workload, plus the mallory
// node running the selected attacks.
type Config struct {
	Seed    uint64
	Design  rpcrdma.Design
	RegMode memreg.Mode
	Clients int

	// Shards/Multiplex select the server receive path (as in chaos.Config).
	// Multiplex defaults Shards to 1 so every endpoint — victims and
	// attacker — shares one QP, the worst case for stream spoofing.
	Shards    int
	Multiplex bool

	// Hardened selects the defended posture: randomized rkey allocation,
	// FMR key rotation, fabric-authenticated stream claims, transport-
	// authenticated DRC keying, and misbehavior quarantine. False re-opens
	// every pre-hardening hole (sequential rkeys, trusted stream claims,
	// credential-keyed DRC, no quarantine) so the attacks can land.
	Hardened bool

	// Attacks is the class selection; zero means AttackAll.
	Attacks Attack

	// Budgets bound each attack: rkey-scan probes, forged DONEs, forged
	// DRC-priming writes.
	ProbeBudget int
	SpoofBudget int
	ForgeBudget int

	// Load drives the honest clients (workload defaults apply).
	Load workload.ChaosLoadConfig

	// Faults > 0 composes a chaos fault schedule under the attack — QP
	// errors, link flaps, server crashes — generated from Seed.
	Faults     int
	MaxCrashes int
	Horizon    des.Duration
}

func (c *Config) defaults() {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Clients <= 0 {
		c.Clients = 2
	}
	if c.Multiplex && c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Attacks == 0 {
		c.Attacks = AttackAll
	}
	if c.ProbeBudget <= 0 {
		c.ProbeBudget = 256
	}
	if c.SpoofBudget <= 0 {
		c.SpoofBudget = 64
	}
	if c.ForgeBudget <= 0 {
		c.ForgeBudget = 16
	}
	if c.Horizon <= 0 {
		c.Horizon = 4 * time.Millisecond
	}
	if c.MaxCrashes <= 0 {
		c.MaxCrashes = 2
	}
}

// Result is one adversary run's outcome. Counters split into what the
// attacker observed (probes, hits, spoofs sent) and what the server's
// defenses recorded (rejects, drops, quarantines); the oracle supplies the
// ground truth on victim damage.
type Result struct {
	// Compromised reports whether any unauthorized read, write, or free
	// succeeded; TimeToCompromise is the virtual time of the first success,
	// censored to FinalTime when the run ended uncompromised (so comparisons
	// across configurations stay well-defined).
	Compromised      bool
	TimeToCompromise des.Time
	CompromiseVia    string

	// Attacker-side counters.
	Probes     int64 // raw one-sided read probes issued
	ProbeHits  int64 // probes that read server memory
	WriteHits  int64 // unauthorized one-sided writes that landed
	Reconnects int64 // attacker redials after protection faults/quarantine
	SpoofSent  int64 // forged DONE messages sent
	ForgeSent  int64 // forged-credential calls that completed
	ForgeFails int64 // forged-credential calls that errored
	StaleSent  int64 // replays of previously discovered rkeys
	StaleHits  int64 // replays that still read memory (remap window)

	// Server-side defense counters (mirrors of rpcrdma.ServerTransport;
	// after a composed server crash they cover the post-restart transport
	// only).
	DoneRecv         int64
	DoneRejected     int64
	CrossClientFrees int64
	SpoofDrops       int64
	Quarantines      int64

	// Victim ground truth.
	Violations []string
	// BlastRadius is the number of distinct victim clients whose oracle
	// records were corrupted (parsed from violation file names).
	BlastRadius int
	Load        workload.ChaosLoadResult
	VictimRecon int64 // honest clients' reconnects (attribution check)
	Crashes     int64 // composed chaos crashes
	FaultCount  int   // composed chaos faults applied

	FinalTime des.Time

	// Fingerprint condenses every counter and the final virtual time; equal
	// fingerprints mean byte-identical runs.
	Fingerprint string
}

// adversaryProfile arms per-call watchdogs like the chaos engine does, so
// victims ride out attacker- or fault-induced connection kills instead of
// hanging.
func adversaryProfile() profiles.Profile {
	prof := profiles.LinuxSDR()
	prof.RDMAClient.CallTimeout = 1 * time.Millisecond
	prof.RDMAClient.RetryLimit = 4
	return prof
}

func recoveryPolicy() core.RetryPolicy {
	return core.RetryPolicy{
		MaxReconnects: 40,
		Backoff:       50 * time.Microsecond,
		MaxBackoff:    1 * time.Millisecond,
	}
}

// quarantineThreshold is the hardened posture's misbehavior budget: low
// enough that a spoof burst dies quickly, high enough that a stray decode
// glitch never kills an honest client.
const quarantineThreshold = 8

// Run executes one seeded adversary run and returns its result. Identical
// configs produce identical results (see Result.Fingerprint).
func Run(cfg Config) *Result {
	cfg.defaults()
	cluster := core.NewCluster(core.Config{
		Profile:      adversaryProfile(),
		Transport:    core.TransportRDMA,
		Design:       cfg.Design,
		RegMode:      cfg.RegMode,
		Clients:      cfg.Clients,
		Backend:      core.BackendTmpfs,
		CopyData:     true, // integrity checking needs real bytes
		ServerShards: cfg.Shards,
		Multiplex:    cfg.Multiplex,
		Affinity:     cfg.Multiplex,
		Seed:         cfg.Seed,

		SequentialRkeys:   !cfg.Hardened,
		FMRKeyRotate:      cfg.Hardened,
		TrustStreamClaims: !cfg.Hardened,
		TrustCredDRC:      !cfg.Hardened,
		QuarantineThreshold: func() int {
			if cfg.Hardened {
				return quarantineThreshold
			}
			return 0
		}(),
	})

	// The attacker host joins the same fabric as one more client-class
	// node. Its HCA follows the cluster's rkey-allocation policy (the
	// policy under attack is the server's, but keeping the fabric uniform
	// keeps fingerprints honest).
	malloryCfg := adversaryProfile().Client
	malloryCfg.Name = "mallory"
	malloryCfg.Seed = cfg.Seed*7919 + 13
	malloryCfg.SequentialRkeys = !cfg.Hardened
	malloryCfg.FMRKeyRotate = cfg.Hardened
	mallory := cluster.Fabric.AddNode(malloryCfg)

	oracle := chaos.NewOracle()
	res := &Result{}
	if cfg.Faults > 0 {
		sched := chaos.Generate(cfg.Seed, chaos.GenConfig{
			Faults:     cfg.Faults,
			Clients:    cfg.Clients,
			Horizon:    cfg.Horizon,
			MaxCrashes: cfg.MaxCrashes,
		})
		sched.Apply(cluster, oracle)
		res.FaultCount = len(sched.Faults)
	}

	cluster.Start("victims", func(p *des.Proc) {
		for _, cl := range cluster.Clients {
			cl.EnableRecovery(recoveryPolicy())
		}
		load, err := workload.RunChaosLoad(p, cluster, cfg.Load, oracle)
		if err != nil {
			oracle.Violation("victim workload error: %v", err)
		}
		res.Load = load
	})

	atk := &attacker{
		cfg:     &cfg,
		cluster: cluster,
		node:    mallory,
		rng:     des.NewRand(cfg.Seed*0xAD5E + 3),
		res:     res,
	}
	cluster.Start("mallory", atk.run)

	res.FinalTime = cluster.RunUntil(des.Time(10 * time.Second))
	if !res.Compromised {
		res.TimeToCompromise = res.FinalTime
	}

	res.Violations = append(res.Violations, oracle.Violations...)
	if oracle.ViolationCount > int64(len(oracle.Violations)) {
		res.Violations = append(res.Violations,
			fmt.Sprintf("... and %d more", oracle.ViolationCount-int64(len(oracle.Violations))))
	}
	res.BlastRadius = blastRadius(oracle.Violations, cfg.Clients)
	res.Crashes = cluster.Crashes
	for _, cl := range cluster.Clients {
		rc, _ := cl.RecoveryStats()
		res.VictimRecon += rc
	}
	if srv := cluster.Server.RDMA; srv != nil {
		res.DoneRecv = srv.DoneRecv
		res.DoneRejected = srv.DoneRejected
		res.CrossClientFrees = srv.CrossClientFrees
		res.SpoofDrops = srv.SpoofDrops
		res.Quarantines = srv.Quarantines
	}

	res.Fingerprint = fmt.Sprintf(
		"t=%d ttc=%d comp=%t probes=%d/%d wr=%d rc=%d spoof=%d forge=%d/%d stale=%d/%d done=%d/%d xfree=%d drop=%d quar=%d wa=%d wf=%d reads=%d vrc=%d crash=%d blast=%d viol=%d",
		int64(res.FinalTime), int64(res.TimeToCompromise), res.Compromised,
		res.Probes, res.ProbeHits, res.WriteHits, res.Reconnects,
		res.SpoofSent, res.ForgeSent, res.ForgeFails, res.StaleSent, res.StaleHits,
		res.DoneRecv, res.DoneRejected, res.CrossClientFrees, res.SpoofDrops, res.Quarantines,
		res.Load.WritesAcked, res.Load.WritesFailed, res.Load.ReadsChecked,
		res.VictimRecon, res.Crashes, res.BlastRadius, len(res.Violations))
	return res
}

// blastRadius counts distinct victim clients named in oracle violations.
// The chaos workload writes per-client files "chaos.c<i>", so corruption
// attributes directly to its victim.
func blastRadius(violations []string, clients int) int {
	hit := 0
	for i := 0; i < clients; i++ {
		tag := fmt.Sprintf("chaos.c%d", i)
		for _, v := range violations {
			if strings.Contains(v, tag) {
				hit++
				break
			}
		}
	}
	return hit
}
