package adversary

import (
	"testing"

	"repro/internal/memreg"
	"repro/internal/rpcrdma"
)

// scanConfig is the rkey-scan experiment: attacker only scans, victims run
// the integrity-checked load.
func scanConfig(mode memreg.Mode, hardened bool) Config {
	return Config{
		Seed:        7,
		Design:      rpcrdma.ReadRead,
		RegMode:     mode,
		Clients:     2,
		Hardened:    hardened,
		Attacks:     AttackRkeyScan,
		ProbeBudget: 1200,
	}
}

// TestAllPhysicalTTC is the paper's §4.3 security ranking made executable:
// the all-physical strategy's single global steering tag falls to an
// enumerating scanner orders of magnitude faster than per-I/O regular
// registration, whose keys are transient and always ahead of the scan.
func TestAllPhysicalTTC(t *testing.T) {
	ap := Run(scanConfig(memreg.AllPhysical, false))
	if !ap.Compromised {
		t.Fatalf("all-physical + sequential rkeys must fall to the scan: %s", ap.Fingerprint)
	}
	if ap.WriteHits == 0 {
		t.Fatalf("all-physical global key is writable; spray must land: %s", ap.Fingerprint)
	}
	reg := Run(scanConfig(memreg.Regular, false))
	if reg.Compromised && reg.TimeToCompromise < ap.TimeToCompromise*100 {
		t.Fatalf("regular registration fell too fast: ttc=%d vs all-physical %d",
			reg.TimeToCompromise, ap.TimeToCompromise)
	}
	if ap.TimeToCompromise*100 > reg.TimeToCompromise {
		t.Fatalf("want all-physical TTC (%d) two orders of magnitude under regular (censored %d)",
			ap.TimeToCompromise, reg.TimeToCompromise)
	}
}

// TestHardenedRandomizedKeysResistScan: with randomized allocation even the
// global all-physical key hides in a 2^32 space; a budget-bounded scan must
// not land.
func TestHardenedRandomizedKeysResistScan(t *testing.T) {
	r := Run(scanConfig(memreg.AllPhysical, true))
	if r.Compromised {
		t.Fatalf("scan compromised hardened all-physical: %s", r.Fingerprint)
	}
	if r.ProbeHits != 0 || r.WriteHits != 0 {
		t.Fatalf("no probe may land under randomized rkeys: %s", r.Fingerprint)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("victims corrupted: %v", r.Violations)
	}
}

// TestServersSurviveScanAndSpoof: the Read-Write and reply-fetch servers
// never advertise server memory, and hardened DONE handling verifies
// ownership — scanning plus forged DONEs must produce zero oracle
// violations and zero cross-client frees.
func TestServersSurviveScanAndSpoof(t *testing.T) {
	for _, design := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReplyFetch} {
		cfg := Config{
			Seed:     11,
			Design:   design,
			RegMode:  memreg.Regular,
			Clients:  2,
			Hardened: true,
			Attacks:  AttackRkeyScan | AttackSpoofDone,
		}
		r := Run(cfg)
		if len(r.Violations) != 0 {
			t.Fatalf("%v: oracle violations under attack: %v", design, r.Violations)
		}
		if r.CrossClientFrees != 0 {
			t.Fatalf("%v: cross-client frees: %s", design, r.Fingerprint)
		}
		if r.Compromised {
			t.Fatalf("%v: hardened server compromised: %s", design, r.Fingerprint)
		}
		if r.Load.WritesAcked == 0 {
			t.Fatalf("%v: victim load did not run: %s", design, r.Fingerprint)
		}
	}
}

// TestQuarantineScopedToAttacker: on a shared multiplexed QP, misbehavior
// scoring must terminate only the attacker's endpoint — victims on the same
// QP see no reconnects and no corruption while the server racks up
// quarantines.
func TestQuarantineScopedToAttacker(t *testing.T) {
	r := Run(Config{
		Seed:        5,
		Design:      rpcrdma.ReadRead,
		RegMode:     memreg.Regular,
		Clients:     3,
		Multiplex:   true,
		Hardened:    true,
		Attacks:     AttackSpoofDone,
		SpoofBudget: 64,
	})
	if r.Quarantines == 0 {
		t.Fatalf("spoof burst must trip quarantine: %s", r.Fingerprint)
	}
	if r.SpoofDrops == 0 {
		t.Fatalf("forged stream claims must be dropped: %s", r.Fingerprint)
	}
	if r.VictimRecon != 0 {
		t.Fatalf("an innocent endpoint was killed (victim reconnects=%d): %s", r.VictimRecon, r.Fingerprint)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("victims corrupted: %v", r.Violations)
	}
	if r.CrossClientFrees != 0 {
		t.Fatalf("hardened server freed cross-client: %s", r.Fingerprint)
	}
	if r.Load.WritesAcked == 0 {
		t.Fatalf("victim load did not complete: %s", r.Fingerprint)
	}
}

// TestVulnerableMuxSpoofMeasured: with trusted stream claims the same spoof
// burst reaches the DONE handler impersonating victims; the run must record
// the traffic (rejected or freed) rather than silently dropping it.
func TestVulnerableMuxSpoofMeasured(t *testing.T) {
	r := Run(Config{
		Seed:        5,
		Design:      rpcrdma.ReadRead,
		RegMode:     memreg.Regular,
		Clients:     3,
		Multiplex:   true,
		Hardened:    false,
		Attacks:     AttackSpoofDone,
		SpoofBudget: 64,
	})
	if r.SpoofSent == 0 {
		t.Fatalf("no spoofs sent: %s", r.Fingerprint)
	}
	if r.SpoofDrops != 0 {
		t.Fatalf("trusting server must not drop spoofs: %s", r.Fingerprint)
	}
	if r.Quarantines != 0 {
		t.Fatalf("vulnerable posture has no quarantine: %s", r.Fingerprint)
	}
	if r.DoneRejected+r.CrossClientFrees == 0 {
		t.Fatalf("forged DONEs disappeared without trace: %s", r.Fingerprint)
	}
}

// TestAttackUnderChaos composes the full attack suite with a generated
// fault schedule. The hardened stack must keep every victim's data intact
// while faults and the attacker interleave.
func TestAttackUnderChaos(t *testing.T) {
	r := Run(Config{
		Seed:     3,
		Design:   rpcrdma.ReadWrite,
		RegMode:  memreg.Regular,
		Clients:  2,
		Hardened: true,
		Attacks:  AttackAll,
		Faults:   4,
	})
	if r.FaultCount == 0 {
		t.Fatalf("no faults composed: %s", r.Fingerprint)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("oracle violations under attack+chaos: %v", r.Violations)
	}
	if r.Compromised {
		t.Fatalf("hardened stack compromised under chaos: %s", r.Fingerprint)
	}
}

// TestDeterminism: identical configs must produce byte-identical runs.
func TestDeterminism(t *testing.T) {
	configs := []Config{
		scanConfig(memreg.AllPhysical, false),
		{Seed: 5, Design: rpcrdma.ReadRead, RegMode: memreg.Regular, Clients: 3,
			Multiplex: true, Hardened: true, Attacks: AttackAll, Faults: 3},
		{Seed: 9, Design: rpcrdma.ReplyFetch, RegMode: memreg.FMR, Clients: 2,
			Hardened: false, Attacks: AttackAll},
	}
	for i, cfg := range configs {
		a, b := Run(cfg), Run(cfg)
		if a.Fingerprint != b.Fingerprint {
			t.Fatalf("config %d not deterministic:\n  %s\n  %s", i, a.Fingerprint, b.Fingerprint)
		}
	}
}

// TestDRCForgeIsolatedByPeerKeying: the forged-credential attack floods the
// duplicate request cache under the victim's machine name; hardened keying
// pins those entries to the transport-authenticated peer, so victims stay
// clean.
func TestDRCForgeIsolatedByPeerKeying(t *testing.T) {
	r := Run(Config{
		Seed:        13,
		Design:      rpcrdma.ReadWrite,
		RegMode:     memreg.Regular,
		Clients:     2,
		Hardened:    true,
		Attacks:     AttackDRCForge,
		ForgeBudget: 24,
	})
	if r.ForgeSent == 0 {
		t.Fatalf("forged calls did not run: %s", r.Fingerprint)
	}
	if len(r.Violations) != 0 {
		t.Fatalf("peer-keyed DRC leaked attacker entries to victims: %v", r.Violations)
	}
}
