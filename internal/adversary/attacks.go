package adversary

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/rpcrdma"
)

// attacker is the mallory node's state: one seeded randomness stream drives
// every probe, guess, and pause, so a run's interleaving with the victims
// is a pure function of Config.
type attacker struct {
	cfg     *Config
	cluster *core.Cluster
	node    *ibsim.Node
	rng     *des.Rand
	res     *Result

	// hits are (rkey, addr) pairs the scan read successfully; the stale
	// probe replays them after the owners' I/O windows closed.
	hits []probeHit
}

type probeHit struct {
	rkey uint32
	addr uint64
}

// Attack pacing. Redials are cheap and fast: a real attacker is not polite.
const (
	warmup      = 20 * time.Microsecond
	probeRedial = 2 * time.Microsecond
	spoofGap    = 1 * time.Microsecond
	staleQuiet  = 1 * time.Millisecond
	sprayBudget = 16
	maxScanHits = 4
	dialRetries = 20
)

// nfs3XIDBase is where every honest client's NFS XID sequence starts (the
// simulator seeds XIDs from the program number for determinism — exactly
// the predictability a DONE- or DRC-forging attacker exploits).
const nfs3XIDBase = nfs3.Program<<8 + 3

func (a *attacker) run(p *des.Proc) {
	p.Sleep(warmup) // let the victims register memory and start calling
	// DRC forgery races the victims' live XID window, so it goes first;
	// the stale probe needs the scan's discovered keys, so it goes last.
	if a.cfg.Attacks&AttackDRCForge != 0 {
		a.drcForge(p)
	}
	if a.cfg.Attacks&AttackSpoofDone != 0 {
		a.spoofDone(p)
	}
	if a.cfg.Attacks&AttackRkeyScan != 0 {
		a.rkeyScan(p)
	}
	if a.cfg.Attacks&AttackStaleProbe != 0 {
		a.staleProbe(p)
	}
}

// compromise records the first unauthorized success.
func (a *attacker) compromise(p *des.Proc, how string) {
	if a.res.Compromised {
		return
	}
	a.res.Compromised = true
	a.res.TimeToCompromise = p.Now()
	a.res.CompromiseVia = how
}

// sampleAddr draws a server virtual address from the allocated range. The
// bump allocator's watermark bounds the search space the way a host's
// physical memory size would.
func (a *attacker) sampleAddr() uint64 {
	const base = 0x1000
	hi := a.cluster.Server.Node.Mem.Watermark()
	if hi <= base+1 {
		return base
	}
	return base + uint64(a.rng.Int63n(int64(hi-base)))
}

// rkeyScan guesses steering tags and addresses and issues raw one-sided
// Reads against the server's HCA. Every protection fault kills the QP (the
// responder NAKs and the connection enters the error state — the fabric's
// own rate limiting), so the attacker redials per miss. Sequential tag
// allocation (the vulnerable posture) makes the key space enumerable;
// all-physical registration collapses it to one global key covering all of
// memory.
func (a *attacker) rkeyScan(p *des.Proc) {
	res := a.res
	srv := a.cluster.Server.Node
	local := a.node.Mem.AllocMaterialized(8)
	guess := uint32(0)
	for res.Probes < int64(a.cfg.ProbeBudget) && len(a.hits) < maxScanHits {
		qp, _ := a.cluster.Fabric.Connect(a.node, srv, ibsim.QPConfig{})
		for res.Probes < int64(a.cfg.ProbeBudget) && len(a.hits) < maxScanHits {
			guess++
			addr := a.sampleAddr()
			cqe := qp.PostAndWait(p, &ibsim.SendWQE{
				WRID:       uint64(res.Probes),
				Op:         ibsim.OpRead,
				Local:      []ibsim.LocalSeg{{Buf: local, Len: 1}},
				RemoteKey:  guess,
				RemoteAddr: addr,
			})
			res.Probes++
			if cqe.Err != nil {
				break // protection fault: the QP is dead, redial
			}
			res.ProbeHits++
			a.hits = append(a.hits, probeHit{rkey: guess, addr: addr})
			a.compromise(p, "rkey-scan read")
		}
		qp.Close()
		res.Reconnects++
		p.Sleep(probeRedial)
	}
	if len(a.hits) > 0 {
		a.writeSpray(p, a.hits[0].rkey)
	}
}

// writeSpray escalates a read compromise: one-sided Writes of a poison byte
// at random addresses under a discovered key. Against a read-only exposure
// (Read-Read reply chunks) every write faults; against the all-physical
// global key they land anywhere in server memory — the blast the oracle
// then attributes to individual victims.
func (a *attacker) writeSpray(p *des.Proc, rkey uint32) {
	srv := a.cluster.Server.Node
	local := a.node.Mem.AllocMaterialized(1)
	if d := local.Data(); d != nil {
		d[0] = 0xEE
	}
	for i := 0; i < sprayBudget; i++ {
		qp, _ := a.cluster.Fabric.Connect(a.node, srv, ibsim.QPConfig{})
		cqe := qp.PostAndWait(p, &ibsim.SendWQE{
			Op:         ibsim.OpWrite,
			Local:      []ibsim.LocalSeg{{Buf: local, Len: 1}},
			RemoteKey:  rkey,
			RemoteAddr: a.sampleAddr(),
		})
		qp.Close()
		if cqe.Err != nil {
			a.res.Reconnects++
			p.Sleep(probeRedial)
			continue
		}
		a.res.WriteHits++
		a.compromise(p, "rkey-scan write")
	}
}

// spoofDone forges the Read-Read design's RDMA_DONE completion with guessed
// XIDs. On a shared multiplexed QP it also forges the stream claim, trying
// to speak as a victim endpoint and free that victim's parked replies; on a
// dedicated connection the parked-reply map is keyed by connection, so
// guessed XIDs can only ever name the attacker's own (empty) parking and
// every forgery is rejected.
func (a *attacker) spoofDone(p *des.Proc) {
	if a.cfg.Multiplex {
		a.spoofDoneMux(p)
	} else {
		a.spoofDoneDedicated(p)
	}
}

func (a *attacker) spoofDoneMux(p *des.Proc) {
	before := a.cluster.Server.RDMA.CrossClientFrees
	var ep *ibsim.QP
	attach := func() bool {
		for try := 0; try < dialRetries; try++ {
			q, _, ok := a.cluster.Server.RDMA.TryAttach(a.node)
			if ok {
				ep = q
				return true
			}
			p.Sleep(4 * probeRedial) // server mid-crash or table full
		}
		return false
	}
	if !attach() {
		return
	}
	for i := 0; i < a.cfg.SpoofBudget; i++ {
		// Victims attach first, so their endpoints sit in the low slots of
		// the shared QP: slot k carries stream id k+1 at generation 0.
		victim := uint32(1 + a.rng.Intn(a.cfg.Clients))
		hdr := &rpcrdma.Header{
			XID:  uint32(nfs3XIDBase + 1 + a.rng.Intn(64)),
			Type: rpcrdma.MsgDone,
		}
		cqe := ep.PostAndWait(p, &ibsim.SendWQE{
			Op:      ibsim.OpSend,
			Payload: hdr.Encode(),
			Stream:  victim, // forged claim; the fabric stamps the true source
		})
		a.res.SpoofSent++
		if cqe.Err != nil {
			// Quarantined (or collateral of a composed fault): re-attach and
			// keep going — the server must only ever have killed us.
			a.res.Reconnects++
			if !attach() {
				return
			}
		}
		p.Sleep(spoofGap)
	}
	if a.cluster.Server.RDMA.CrossClientFrees > before {
		a.compromise(p, "spoofed DONE cross-client free")
	}
	ep.Close()
}

func (a *attacker) spoofDoneDedicated(p *des.Proc) {
	var qp *ibsim.QP
	dial := func() bool {
		for try := 0; try < dialRetries; try++ {
			cq, sq := a.cluster.Fabric.Connect(a.node, a.cluster.Server.Node, ibsim.QPConfig{})
			if a.cluster.Server.RDMA.TryServe(sq) {
				qp = cq
				return true
			}
			cq.Close()
			p.Sleep(4 * probeRedial)
		}
		return false
	}
	if !dial() {
		return
	}
	for i := 0; i < a.cfg.SpoofBudget; i++ {
		hdr := &rpcrdma.Header{
			XID:  uint32(nfs3XIDBase + 1 + a.rng.Intn(64)),
			Type: rpcrdma.MsgDone,
		}
		cqe := qp.PostAndWait(p, &ibsim.SendWQE{Op: ibsim.OpSend, Payload: hdr.Encode()})
		a.res.SpoofSent++
		if cqe.Err != nil {
			a.res.Reconnects++
			if !dial() {
				return
			}
		}
		p.Sleep(spoofGap)
	}
	qp.Close()
}

// drcForge connects a full RPC/RDMA transport under a forged client
// credential (the first victim's machine name) and floods WRITEs to the
// attacker's own file. Honest XID sequences are seeded from the program
// number, so the attacker's XIDs collide with the victim's: with the
// credential-keyed duplicate request cache (the vulnerable posture) the
// attacker's committed entries squat on XIDs the victim has yet to issue,
// and the victim's colliding WRITE is answered from the poisoned cache
// without executing. Transport-authenticated keying (DispatchOpts.Peer)
// pins the attacker's entries to "mallory" no matter what the credential
// claims.
func (a *attacker) drcForge(p *des.Proc) {
	mgr := memreg.NewManager(p, a.node, memreg.Config{Mode: a.cfg.RegMode})
	t := a.dialTransport(p, mgr)
	if t == nil {
		return
	}
	defer t.Close()
	victim := "client0"
	mc := nfs3.NewMountClient(t, victim)
	root, err := mc.Mount(p, "/")
	if err != nil {
		a.res.ForgeFails++
		return
	}
	forged := nfs3.NewClient(t, victim)
	fh, _, err := forged.Create(p, root, "mallory.dat", 0644)
	if err != nil {
		a.res.ForgeFails++
		return
	}
	size := a.cfg.Load.RecSize
	if size <= 0 {
		size = 4096
	}
	payload := make([]byte, size)
	for i := range payload {
		payload[i] = 0xEE
	}
	for i := 0; i < a.cfg.ForgeBudget; i++ {
		if _, err := forged.Write(p, fh, 0, oncrpc.NewBulk(payload), nfs3.FileSync); err != nil {
			a.res.ForgeFails++
			return // transport dead (quarantine or composed fault)
		}
		a.res.ForgeSent++
	}
}

// dialTransport builds the attacker's full client transport, honouring the
// cluster's connection mode, with the same backoff honest dialers use.
func (a *attacker) dialTransport(p *des.Proc, mgr *memreg.Manager) *rpcrdma.ClientTransport {
	cfgC := adversaryProfile().RDMAClient
	cfgC.Design = a.cfg.Design
	backoff := des.Duration(50 * time.Microsecond)
	for try := 0; try < 12; try++ {
		if a.cluster.Cfg.Multiplex {
			cfgC.Multiplex = true
			if q, grant, ok := a.cluster.Server.RDMA.TryAttach(a.node); ok {
				if grant > 0 && grant < cfgC.Credits {
					cfgC.Credits = grant
				}
				return rpcrdma.NewClientTransport(p, q, mgr, cfgC)
			}
		} else {
			cq, sq := a.cluster.Fabric.Connect(a.node, a.cluster.Server.Node, ibsim.QPConfig{})
			if a.cluster.Server.RDMA.TryServe(sq) {
				return rpcrdma.NewClientTransport(p, cq, mgr, cfgC)
			}
			cq.Close()
		}
		p.Sleep(backoff)
		backoff *= 2
	}
	return nil
}

// staleProbe replays the scan's discovered keys after a quiet period. A
// regular registration faults once the owner deregistered; an FMR without
// key rotation silently aliases whatever the handle was remapped to — the
// exposure window of §4.3 made readable — and rotation closes it.
func (a *attacker) staleProbe(p *des.Proc) {
	if len(a.hits) == 0 {
		return
	}
	p.Sleep(staleQuiet) // let victims' I/O windows close and handles remap
	srv := a.cluster.Server.Node
	local := a.node.Mem.AllocMaterialized(8)
	for _, h := range a.hits {
		qp, _ := a.cluster.Fabric.Connect(a.node, srv, ibsim.QPConfig{})
		cqe := qp.PostAndWait(p, &ibsim.SendWQE{
			Op:         ibsim.OpRead,
			Local:      []ibsim.LocalSeg{{Buf: local, Len: 1}},
			RemoteKey:  h.rkey,
			RemoteAddr: h.addr,
		})
		a.res.StaleSent++
		if cqe.Err == nil {
			a.res.StaleHits++
			a.compromise(p, "stale-rkey read")
		} else {
			a.res.Reconnects++
		}
		qp.Close()
		p.Sleep(probeRedial)
	}
}
