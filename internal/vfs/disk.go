package vfs

import (
	"time"

	"repro/internal/des"
)

// DiskArrayConfig sizes a RAID-0 stripe set, defaulting to the paper's
// testbed: eight HighPoint SCSI disks, each capable of 30 MB/s, striped.
type DiskArrayConfig struct {
	Disks         int
	StripeSize    int          // bytes per stripe unit
	DiskBandwidth float64      // bytes/second streaming per disk
	SeekTime      des.Duration // positioning cost per non-sequential access
}

func (c *DiskArrayConfig) defaults() {
	if c.Disks <= 0 {
		c.Disks = 8
	}
	if c.StripeSize <= 0 {
		c.StripeSize = 64 << 10
	}
	if c.DiskBandwidth <= 0 {
		c.DiskBandwidth = 30e6
	}
	if c.SeekTime <= 0 {
		c.SeekTime = 4 * time.Millisecond
	}
}

// DiskArray models a RAID-0 stripe set. Each member disk is a des.Resource
// so concurrent requests queue per disk, and a large request is served by
// its stripes in parallel — aggregate streaming bandwidth approaches
// Disks × DiskBandwidth, the ceiling that bounds Fig. 10(a) beyond the
// page-cache knee.
type DiskArray struct {
	sim   *des.Sim
	cfg   DiskArrayConfig
	disks []*des.Resource
	// lastPos tracks the last accessed block per disk for sequentiality.
	lastPos []int64

	BytesRead    int64
	BytesWritten int64
}

// NewDiskArray builds the array.
func NewDiskArray(sim *des.Sim, name string, cfg DiskArrayConfig) *DiskArray {
	cfg.defaults()
	a := &DiskArray{sim: sim, cfg: cfg, lastPos: make([]int64, cfg.Disks)}
	for i := 0; i < cfg.Disks; i++ {
		a.disks = append(a.disks, des.NewResource(sim, name+"/disk", 1))
	}
	return a
}

// Config returns the array configuration.
func (a *DiskArray) Config() DiskArrayConfig { return a.cfg }

// xfer performs one striped transfer of n bytes at logical offset off,
// blocking until the slowest stripe completes.
func (a *DiskArray) xfer(p *des.Proc, off int64, n int) {
	if n <= 0 {
		return
	}
	stripe := int64(a.cfg.StripeSize)
	var events []*des.Event
	pos := off
	remaining := n
	for remaining > 0 {
		unit := int(stripe - pos%stripe)
		if unit > remaining {
			unit = remaining
		}
		disk := int((pos / stripe) % int64(a.cfg.Disks))
		blockPos := pos
		unitLen := unit
		ev := des.NewEvent(a.sim)
		events = append(events, ev)
		a.sim.Spawn("stripe-io", func(sp *des.Proc) {
			r := a.disks[disk]
			r.Acquire(sp, 1)
			cost := des.Duration(float64(unitLen) / a.cfg.DiskBandwidth * 1e9)
			// Sequential continuation skips the seek. A RAID-0 member sees
			// its stripe units at a constant forward stride, which the drive
			// (and its track cache) services without repositioning, so short
			// forward skips count as sequential; only backward motion or a
			// long jump pays the positioning cost.
			const maxForwardSkip = 8 << 20
			if blockPos < a.lastPos[disk] || blockPos-a.lastPos[disk] > maxForwardSkip {
				cost += a.cfg.SeekTime
			}
			sp.Sleep(cost)
			a.lastPos[disk] = blockPos + int64(unitLen)
			r.Release(1)
			ev.Fire(nil)
		})
		pos += int64(unit)
		remaining -= unit
	}
	des.WaitAll(p, events...)
}

// Read blocks for a striped read of n bytes at off.
func (a *DiskArray) Read(p *des.Proc, off int64, n int) {
	a.BytesRead += int64(n)
	a.xfer(p, off, n)
}

// Write blocks for a striped write of n bytes at off.
func (a *DiskArray) Write(p *des.Proc, off int64, n int) {
	a.BytesWritten += int64(n)
	a.xfer(p, off, n)
}

// Utilization returns the mean utilization of the member disks since
// simulation start. For measurement windows, snapshot BusySeconds before
// and after instead.
func (a *DiskArray) Utilization(since des.Time) float64 {
	if since != 0 {
		// Cumulative accounting cannot be windowed retroactively; callers
		// needing a window must use BusySeconds deltas.
		since = 0
	}
	var u float64
	for _, d := range a.disks {
		u += d.Utilization(since)
	}
	return u / float64(len(a.disks))
}

// BusySeconds returns cumulative disk-seconds consumed across the array.
func (a *DiskArray) BusySeconds() float64 {
	var b float64
	for _, d := range a.disks {
		b += d.BusySeconds()
	}
	return b
}

// Disks returns the member count.
func (a *DiskArray) Disks() int { return len(a.disks) }
