// Package vfs provides the server-side file system substrate for the NFS
// server: a common in-memory namespace (directories, attributes, links)
// over pluggable data stores — a memory store standing in for the paper's
// tmpfs back end, and a page-cached striped disk array standing in for its
// XFS-on-RAID-0 back end (§5.3).
package vfs

import (
	"errors"

	"repro/internal/des"
)

// FileID is a stable inode number.
type FileID uint64

// FileType enumerates inode types.
type FileType int

// Inode types (matching the NFSv3 ftype3 values we use).
const (
	TypeReg FileType = 1
	TypeDir FileType = 2
	TypeLnk FileType = 5
)

// Attr is the attribute set the NFS fattr3 maps onto.
type Attr struct {
	Type   FileType
	Mode   uint32
	Nlink  uint32
	UID    uint32
	GID    uint32
	Size   int64
	FileID FileID
	Atime  des.Time
	Mtime  des.Time
	Ctime  des.Time
}

// SetAttr carries the settable attribute subset; nil-able fields use
// presence flags.
type SetAttr struct {
	Mode    *uint32
	UID     *uint32
	GID     *uint32
	Size    *int64
	SetTime bool // touch mtime
}

// DirEntry is one readdir record.
type DirEntry struct {
	FileID FileID
	Name   string
	Cookie int64
}

// Errors mapped to NFS status codes by the protocol layer.
var (
	ErrNotExist    = errors.New("vfs: no such file or directory")
	ErrExist       = errors.New("vfs: file exists")
	ErrNotDir      = errors.New("vfs: not a directory")
	ErrIsDir       = errors.New("vfs: is a directory")
	ErrNotEmpty    = errors.New("vfs: directory not empty")
	ErrStale       = errors.New("vfs: stale file handle")
	ErrInval       = errors.New("vfs: invalid argument")
	ErrNoSpace     = errors.New("vfs: no space left on device")
	ErrROFS        = errors.New("vfs: read-only file system")
	ErrNameTooLong = errors.New("vfs: name too long")
)

// FS is the interface the NFS server drives. Calls run on server worker
// processes and may block on simulated I/O.
type FS interface {
	Root() FileID
	Lookup(p *des.Proc, dir FileID, name string) (FileID, Attr, error)
	GetAttr(p *des.Proc, id FileID) (Attr, error)
	SetAttr(p *des.Proc, id FileID, s SetAttr) (Attr, error)
	Create(p *des.Proc, dir FileID, name string, mode uint32) (FileID, Attr, error)
	Mkdir(p *des.Proc, dir FileID, name string, mode uint32) (FileID, Attr, error)
	Symlink(p *des.Proc, dir FileID, name, target string) (FileID, Attr, error)
	ReadLink(p *des.Proc, id FileID) (string, error)
	Remove(p *des.Proc, dir FileID, name string) error
	Rmdir(p *des.Proc, dir FileID, name string) error
	Rename(p *des.Proc, fromDir FileID, fromName string, toDir FileID, toName string) error
	Link(p *des.Proc, id FileID, dir FileID, name string) (Attr, error)

	// Read fills dst (when non-nil) with up to count bytes from off and
	// returns the byte count and EOF flag. dst==nil runs the same timing
	// path without materializing data (phantom mode).
	Read(p *des.Proc, id FileID, off int64, count int, dst []byte) (n int, eof bool, err error)

	// Write stores count bytes at off (data may be nil in phantom mode).
	// stable requests synchronous durability (NFSv3 FILE_SYNC).
	Write(p *des.Proc, id FileID, off int64, count int, data []byte, stable bool) (n int, err error)

	// Commit flushes [off, off+count) (NFSv3 COMMIT).
	Commit(p *des.Proc, id FileID, off int64, count int) error

	ReadDir(p *des.Proc, dir FileID, cookie int64, maxEntries int) ([]DirEntry, bool, error)

	// FSStat returns total and free bytes.
	FSStat() (total, free int64)
}
