package vfs

import (
	"repro/internal/des"
)

// Store holds file data for the namespace layer. Implementations charge
// whatever simulated time their medium costs; CPU costs of moving data
// between the store and transport buffers are charged by the NFS server
// layer, which knows whether a copy actually happens.
type Store interface {
	// Read copies up to count bytes at off of file id into dst (when
	// non-nil), bounded by the current size. It returns bytes read.
	Read(p *des.Proc, id FileID, size int64, off int64, count int, dst []byte) int
	// Write stores count bytes at off (data may be nil in phantom mode).
	Write(p *des.Proc, id FileID, off int64, count int, data []byte, stable bool)
	// Commit flushes dirty data in [off, off+count) (0,0 = whole file).
	Commit(p *des.Proc, id FileID, off int64, count int)
	// Truncate adjusts stored data to the new size.
	Truncate(id FileID, size int64)
	// Drop discards all data of a removed file.
	Drop(id FileID)
}

// MemStore is the tmpfs-equivalent data store: all file contents live in
// memory, reads and writes cost nothing beyond the copies charged at the
// NFS layer. Contents are materialized only when built with materialize
// set, so phantom-mode experiments can use terabyte-scale files.
type MemStore struct {
	materialize bool
	files       map[FileID][]byte
}

// NewMemStore builds a memory store. materialize selects whether actual
// bytes are kept (tests) or only sizes (large experiments).
func NewMemStore(materialize bool) *MemStore {
	return &MemStore{materialize: materialize, files: make(map[FileID][]byte)}
}

// Read implements Store.
func (s *MemStore) Read(p *des.Proc, id FileID, size, off int64, count int, dst []byte) int {
	if off >= size {
		return 0
	}
	n := count
	if int64(n) > size-off {
		n = int(size - off)
	}
	if dst != nil && s.materialize {
		content := s.files[id]
		for i := 0; i < n; i++ {
			if off+int64(i) < int64(len(content)) {
				dst[i] = content[off+int64(i)]
			} else {
				dst[i] = 0 // hole
			}
		}
	}
	return n
}

// Write implements Store.
func (s *MemStore) Write(p *des.Proc, id FileID, off int64, count int, data []byte, stable bool) {
	if !s.materialize {
		return
	}
	content := s.files[id]
	end := off + int64(count)
	if int64(len(content)) < end {
		grown := make([]byte, end)
		copy(grown, content)
		content = grown
	}
	if data != nil {
		copy(content[off:end], data[:count])
	}
	s.files[id] = content
}

// Commit implements Store (memory is always "stable").
func (s *MemStore) Commit(p *des.Proc, id FileID, off int64, count int) {}

// Truncate implements Store.
func (s *MemStore) Truncate(id FileID, size int64) {
	if !s.materialize {
		return
	}
	content := s.files[id]
	if int64(len(content)) > size {
		s.files[id] = content[:size]
	}
}

// Drop implements Store.
func (s *MemStore) Drop(id FileID) { delete(s.files, id) }
