package vfs

import (
	"container/list"

	"repro/internal/des"
)

// PageCacheConfig sizes the server page cache.
type PageCacheConfig struct {
	// CapacityBytes is the memory available for cached file pages (server
	// RAM minus OS/daemon overhead: the paper's 4 GB and 8 GB server
	// configurations).
	CapacityBytes int64
	// PageSize is the cache granule. 64 KiB keeps simulations fast while
	// preserving hit/miss behaviour at the record sizes the paper uses.
	PageSize int
	// ReadAhead is the sequential prefetch window; it must span enough
	// stripe units that a single sequential reader drives all array disks.
	ReadAhead int
	// DirtyLimitBytes throttles writers once this much dirty data
	// accumulates (writeback then happens on the writer's clock).
	DirtyLimitBytes int64
}

func (c *PageCacheConfig) defaults() {
	if c.CapacityBytes <= 0 {
		c.CapacityBytes = 3 << 30
	}
	if c.PageSize <= 0 {
		c.PageSize = 64 << 10
	}
	if c.ReadAhead <= 0 {
		c.ReadAhead = 2 << 20
	}
	if c.DirtyLimitBytes <= 0 {
		c.DirtyLimitBytes = c.CapacityBytes / 4
	}
}

type pageKey struct {
	id   FileID
	page int64
}

type page struct {
	key   pageKey
	dirty bool
	elem  *list.Element
}

// PageCache is an LRU cache of file pages in front of a DiskArray. It is
// deliberately a plain LRU: the paper's Fig. 10(a) knee — aggregate
// throughput collapsing once the clients' combined working set exceeds
// server memory — is a direct consequence of LRU behaviour under cyclic
// sequential re-reads.
type PageCache struct {
	cfg   PageCacheConfig
	disk  *DiskArray
	pages map[pageKey]*page
	lru   *list.List // front = most recent
	dirty int64

	// next expected sequential read offset per file, for readahead.
	nextSeq map[FileID]int64

	Hits, Misses int64
}

// NewPageCache builds a cache over the given array.
func NewPageCache(disk *DiskArray, cfg PageCacheConfig) *PageCache {
	cfg.defaults()
	return &PageCache{
		cfg:     cfg,
		disk:    disk,
		pages:   make(map[pageKey]*page),
		lru:     list.New(),
		nextSeq: make(map[FileID]int64),
	}
}

// Config returns the cache configuration.
func (c *PageCache) Config() PageCacheConfig { return c.cfg }

// CachedBytes returns resident page bytes.
func (c *PageCache) CachedBytes() int64 {
	return int64(len(c.pages)) * int64(c.cfg.PageSize)
}

func (c *PageCache) capacityPages() int {
	return int(c.cfg.CapacityBytes / int64(c.cfg.PageSize))
}

// diskOffset maps a file page to a logical array offset. Files are laid out
// at wide intervals; only intra-file sequentiality matters to the model.
func diskOffset(id FileID, pageIdx int64, pageSize int) int64 {
	return int64(id)<<42 + pageIdx*int64(pageSize)
}

// touch marks a resident page most recently used.
func (c *PageCache) touch(pg *page) { c.lru.MoveToFront(pg.elem) }

// insert adds a page, evicting from the LRU tail as needed. Dirty victims
// are written back on the caller's clock (the simple writeback model).
func (c *PageCache) insert(p *des.Proc, key pageKey, dirty bool) *page {
	for len(c.pages) >= c.capacityPages() {
		tail := c.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*page)
		// Detach before any blocking disk write so concurrent workers never
		// observe (or double-evict) a half-removed page.
		c.lru.Remove(tail)
		delete(c.pages, victim.key)
		if victim.dirty {
			victim.dirty = false
			c.dirty -= int64(c.cfg.PageSize)
			c.disk.Write(p, diskOffset(victim.key.id, victim.key.page, c.cfg.PageSize), c.cfg.PageSize)
		}
	}
	pg := &page{key: key, dirty: dirty}
	pg.elem = c.lru.PushFront(pg)
	c.pages[key] = pg
	if dirty {
		c.dirty += int64(c.cfg.PageSize)
	}
	return pg
}

// Read brings [off, off+n) of file id resident, charging disk time for
// misses, with sequential readahead.
func (c *PageCache) Read(p *des.Proc, id FileID, off int64, n int) {
	ps := int64(c.cfg.PageSize)
	first := off / ps
	last := (off + int64(n) - 1) / ps
	var missStart, missEnd int64 = -1, -1
	flushMisses := func() {
		if missStart < 0 {
			return
		}
		count := missEnd - missStart + 1
		// Sequential detection: extend with readahead when this miss run
		// continues the previous read.
		raPages := int64(0)
		if missStart*ps <= c.nextSeq[id] && c.nextSeq[id] <= missEnd*ps+ps {
			raPages = int64(c.cfg.ReadAhead) / ps
		}
		c.disk.Read(p, diskOffset(id, missStart, c.cfg.PageSize), int((count+raPages)*ps))
		for pg := missStart; pg <= missEnd+raPages; pg++ {
			if _, ok := c.pages[pageKey{id, pg}]; !ok {
				c.insert(p, pageKey{id, pg}, false)
			}
		}
		missStart, missEnd = -1, -1
	}
	for pgIdx := first; pgIdx <= last; pgIdx++ {
		if pg, ok := c.pages[pageKey{id, pgIdx}]; ok {
			c.Hits++
			c.touch(pg)
			flushMisses()
			continue
		}
		c.Misses++
		if missStart < 0 {
			missStart = pgIdx
		}
		missEnd = pgIdx
	}
	flushMisses()
	c.nextSeq[id] = off + int64(n)
}

// Write dirties [off, off+n) of file id, throttling the writer once the
// dirty limit is reached by synchronously writing back LRU-tail dirty
// pages.
func (c *PageCache) Write(p *des.Proc, id FileID, off int64, n int) {
	ps := int64(c.cfg.PageSize)
	first := off / ps
	last := (off + int64(n) - 1) / ps
	for pgIdx := first; pgIdx <= last; pgIdx++ {
		key := pageKey{id, pgIdx}
		if pg, ok := c.pages[key]; ok {
			if !pg.dirty {
				pg.dirty = true
				c.dirty += int64(c.cfg.PageSize)
			}
			c.touch(pg)
		} else {
			c.insert(p, key, true)
		}
	}
	for c.dirty > c.cfg.DirtyLimitBytes {
		c.writebackOldest(p)
	}
}

// writebackOldest flushes the least recently used dirty page.
func (c *PageCache) writebackOldest(p *des.Proc) {
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*page)
		if pg.dirty {
			// Mark clean before the blocking write so a concurrent throttled
			// writer picks a different victim.
			pg.dirty = false
			c.dirty -= int64(c.cfg.PageSize)
			c.disk.Write(p, diskOffset(pg.key.id, pg.key.page, c.cfg.PageSize), c.cfg.PageSize)
			return
		}
	}
	c.dirty = 0 // nothing dirty found; resynchronize
}

// Commit flushes all dirty pages of file id (0,0 = whole file). Victims are
// collected first: the flush writes block, and the LRU may change under a
// blocked worker.
func (c *PageCache) Commit(p *des.Proc, id FileID, off int64, count int) {
	var victims []*page
	for e := c.lru.Back(); e != nil; e = e.Prev() {
		pg := e.Value.(*page)
		if pg.key.id != id || !pg.dirty {
			continue
		}
		if count > 0 {
			ps := int64(c.cfg.PageSize)
			pos := pg.key.page * ps
			if pos+ps <= off || pos >= off+int64(count) {
				continue
			}
		}
		pg.dirty = false
		c.dirty -= int64(c.cfg.PageSize)
		victims = append(victims, pg)
	}
	for _, pg := range victims {
		c.disk.Write(p, diskOffset(pg.key.id, pg.key.page, c.cfg.PageSize), c.cfg.PageSize)
	}
}

// Crash discards the entire cache without writeback: resident pages, dirty
// state, and readahead tracking all die with the server's RAM. Dirty pages
// that had not reached the disk are simply gone — which is exactly why NFSv3
// clients must not trust unstable WRITEs until COMMIT (or a FileSync ack)
// and must re-send them when the write verifier changes across a restart.
func (c *PageCache) Crash() {
	c.pages = make(map[pageKey]*page)
	c.lru.Init()
	c.dirty = 0
	c.nextSeq = make(map[FileID]int64)
}

// Drop discards all pages of file id (file removal).
func (c *PageCache) Drop(id FileID) {
	for e := c.lru.Front(); e != nil; {
		next := e.Next()
		pg := e.Value.(*page)
		if pg.key.id == id {
			if pg.dirty {
				c.dirty -= int64(c.cfg.PageSize)
			}
			c.lru.Remove(e)
			delete(c.pages, pg.key)
		}
		e = next
	}
	delete(c.nextSeq, id)
}

// DiskStore is a Store backed by the page cache + disk array. Contents are
// never materialized (disk experiments run at scales where that would be
// prohibitive); integrity testing uses the MemStore.
type DiskStore struct {
	cache *PageCache
}

// NewDiskStore builds a disk-backed store.
func NewDiskStore(cache *PageCache) *DiskStore { return &DiskStore{cache: cache} }

// Cache returns the underlying page cache.
func (s *DiskStore) Cache() *PageCache { return s.cache }

// Read implements Store.
func (s *DiskStore) Read(p *des.Proc, id FileID, size, off int64, count int, dst []byte) int {
	if off >= size {
		return 0
	}
	n := count
	if int64(n) > size-off {
		n = int(size - off)
	}
	s.cache.Read(p, id, off, n)
	if dst != nil {
		for i := range dst[:n] {
			dst[i] = 0
		}
	}
	return n
}

// Write implements Store.
func (s *DiskStore) Write(p *des.Proc, id FileID, off int64, count int, data []byte, stable bool) {
	s.cache.Write(p, id, off, count)
	if stable {
		s.cache.Commit(p, id, off, count)
	}
}

// Commit implements Store.
func (s *DiskStore) Commit(p *des.Proc, id FileID, off int64, count int) {
	s.cache.Commit(p, id, off, count)
}

// Truncate implements Store.
func (s *DiskStore) Truncate(id FileID, size int64) {}

// Drop implements Store.
func (s *DiskStore) Drop(id FileID) { s.cache.Drop(id) }
