package vfs

import (
	"testing"
	"testing/quick"

	"repro/internal/des"
)

// Property tests on the page cache's invariants: residency never exceeds
// capacity, dirty bytes never exceed the limit after a write returns, a
// resident page is served without disk traffic, and the disk-backed store
// agrees with the flat memory store on sizes and EOF behaviour.

func TestQuickCacheCapacityInvariant(t *testing.T) {
	f := func(ops []uint32) bool {
		ok := true
		sim := des.New()
		arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
		pc := NewPageCache(arr, PageCacheConfig{
			CapacityBytes: 2 << 20, PageSize: 64 << 10, DirtyLimitBytes: 512 << 10,
		})
		sim.Spawn("ops", func(p *des.Proc) {
			for _, op := range ops {
				id := FileID(op%3 + 1)
				off := int64(op%97) * 64 << 10
				n := int(op%5+1) * 32 << 10
				if op%2 == 0 {
					pc.Read(p, id, off, n)
				} else {
					pc.Write(p, id, off, n)
				}
				if pc.CachedBytes() > pc.Config().CapacityBytes+int64(pc.Config().PageSize) {
					ok = false
					return
				}
				if pc.dirty > pc.Config().DirtyLimitBytes {
					ok = false
					return
				}
			}
		})
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResidentPageCostsNoDisk(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
	pc := NewPageCache(arr, PageCacheConfig{CapacityBytes: 64 << 20, PageSize: 64 << 10})
	sim.Spawn("io", func(p *des.Proc) {
		pc.Read(p, 1, 0, 1<<20)
		before := arr.BytesRead
		pc.Read(p, 1, 0, 1<<20)
		if arr.BytesRead != before {
			t.Errorf("resident re-read touched the disks (%d extra bytes)", arr.BytesRead-before)
		}
	})
	sim.Run()
}

// TestQuickDiskStoreMatchesMemStoreSemantics drives the same random op
// sequence through a MemStore-backed namespace and a DiskStore-backed one
// and checks that sizes, read counts and EOF flags agree (the disk layer
// changes timing, never semantics).
func TestQuickDiskStoreMatchesMemStoreSemantics(t *testing.T) {
	type op struct {
		Write bool
		Off   uint16
		N     uint16
	}
	f := func(ops []op) bool {
		ok := true
		sim := des.New()
		mem := NewNamespace(sim, NewMemStore(false), 1<<40)
		arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
		disk := NewNamespace(sim, NewDiskStore(NewPageCache(arr, PageCacheConfig{CapacityBytes: 1 << 20})), 1<<40)
		sim.Spawn("ops", func(p *des.Proc) {
			mID, _, _ := mem.Create(p, mem.Root(), "f", 0644)
			dID, _, _ := disk.Create(p, disk.Root(), "f", 0644)
			for _, o := range ops {
				off, n := int64(o.Off), int(o.N)+1
				if o.Write {
					mn, merr := mem.Write(p, mID, off, n, nil, false)
					dn, derr := disk.Write(p, dID, off, n, nil, false)
					if mn != dn || (merr == nil) != (derr == nil) {
						ok = false
						return
					}
				} else {
					mn, meof, merr := mem.Read(p, mID, off, n, nil)
					dn, deof, derr := disk.Read(p, dID, off, n, nil)
					if mn != dn || meof != deof || (merr == nil) != (derr == nil) {
						ok = false
						return
					}
				}
			}
			ma, _ := mem.GetAttr(p, mID)
			da, _ := disk.GetAttr(p, dID)
			if ma.Size != da.Size {
				ok = false
			}
		})
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestSlowDiskDegradesGracefully(t *testing.T) {
	// Failure-injection-style check: a crippled array (one disk at 1 MB/s)
	// slows reads proportionally but never wedges or corrupts accounting.
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{Disks: 1, DiskBandwidth: 1e6})
	pc := NewPageCache(arr, PageCacheConfig{CapacityBytes: 1 << 20, PageSize: 64 << 10})
	var elapsed des.Time
	sim.Spawn("io", func(p *des.Proc) {
		start := p.Now()
		pc.Read(p, 1, 0, 8<<20)
		elapsed = p.Now() - start
	})
	sim.Run()
	// 8 MiB at 1 MB/s ≥ 8 seconds of simulated time.
	if elapsed.Seconds() < 8 {
		t.Fatalf("slow disk finished in %v, expected >= 8s", elapsed)
	}
}
