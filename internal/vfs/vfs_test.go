package vfs

import (
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func memFS(sim *des.Sim) *Namespace {
	return NewNamespace(sim, NewMemStore(true), 1<<40)
}

// inProc runs fn inside a simulation process and completes the sim.
func inProc(t *testing.T, fn func(sim *des.Sim, p *des.Proc)) {
	t.Helper()
	sim := des.New()
	sim.Spawn("test", func(p *des.Proc) { fn(sim, p) })
	sim.Run()
}

func TestCreateLookupReadWrite(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, attr, err := fs.Create(p, fs.Root(), "hello.txt", 0644)
		if err != nil {
			t.Fatal(err)
		}
		if attr.Type != TypeReg || attr.Size != 0 {
			t.Fatalf("attr = %+v", attr)
		}
		data := []byte("the quick brown fox")
		if _, err := fs.Write(p, id, 0, len(data), data, false); err != nil {
			t.Fatal(err)
		}
		got, gotAttr, err := fs.Lookup(p, fs.Root(), "hello.txt")
		if err != nil || got != id {
			t.Fatalf("lookup: %v %v", got, err)
		}
		if gotAttr.Size != int64(len(data)) {
			t.Fatalf("size = %d", gotAttr.Size)
		}
		buf := make([]byte, 64)
		n, eof, err := fs.Read(p, id, 0, 64, buf)
		if err != nil || !eof || n != len(data) {
			t.Fatalf("read: n=%d eof=%v err=%v", n, eof, err)
		}
		if string(buf[:n]) != string(data) {
			t.Fatalf("data = %q", buf[:n])
		}
	})
}

func TestSparseWriteReadsZeros(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, _, _ := fs.Create(p, fs.Root(), "sparse", 0644)
		if _, err := fs.Write(p, id, 1000, 4, []byte("tail"), false); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 8)
		n, _, err := fs.Read(p, id, 0, 8, buf)
		if err != nil || n != 8 {
			t.Fatalf("n=%d err=%v", n, err)
		}
		for i, b := range buf {
			if b != 0 {
				t.Fatalf("hole byte %d = %d", i, b)
			}
		}
	})
}

func TestDirectoryLifecycle(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		d1, _, err := fs.Mkdir(p, fs.Root(), "a", 0755)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Mkdir(p, fs.Root(), "a", 0755); !errors.Is(err, ErrExist) {
			t.Fatalf("dup mkdir: %v", err)
		}
		if _, _, err := fs.Create(p, d1, "f", 0644); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(p, fs.Root(), "a"); !errors.Is(err, ErrNotEmpty) {
			t.Fatalf("rmdir non-empty: %v", err)
		}
		if err := fs.Remove(p, d1, "f"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(p, fs.Root(), "a"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Lookup(p, fs.Root(), "a"); !errors.Is(err, ErrNotExist) {
			t.Fatalf("lookup after rmdir: %v", err)
		}
	})
}

func TestRemoveIsDirMismatch(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		fs.Mkdir(p, fs.Root(), "d", 0755)
		fs.Create(p, fs.Root(), "f", 0644)
		if err := fs.Remove(p, fs.Root(), "d"); !errors.Is(err, ErrIsDir) {
			t.Fatalf("remove dir: %v", err)
		}
		if err := fs.Rmdir(p, fs.Root(), "f"); !errors.Is(err, ErrNotDir) {
			t.Fatalf("rmdir file: %v", err)
		}
	})
}

func TestSymlink(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, attr, err := fs.Symlink(p, fs.Root(), "ln", "/target/path")
		if err != nil {
			t.Fatal(err)
		}
		if attr.Type != TypeLnk {
			t.Fatalf("type = %v", attr.Type)
		}
		target, err := fs.ReadLink(p, id)
		if err != nil || target != "/target/path" {
			t.Fatalf("readlink: %q %v", target, err)
		}
		fid, _, _ := fs.Create(p, fs.Root(), "file", 0644)
		if _, err := fs.ReadLink(p, fid); !errors.Is(err, ErrInval) {
			t.Fatalf("readlink on file: %v", err)
		}
	})
}

func TestRename(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, _, _ := fs.Create(p, fs.Root(), "old", 0644)
		d, _, _ := fs.Mkdir(p, fs.Root(), "dir", 0755)
		if err := fs.Rename(p, fs.Root(), "old", d, "new"); err != nil {
			t.Fatal(err)
		}
		if _, _, err := fs.Lookup(p, fs.Root(), "old"); !errors.Is(err, ErrNotExist) {
			t.Fatal("old name still present")
		}
		got, _, err := fs.Lookup(p, d, "new")
		if err != nil || got != id {
			t.Fatalf("lookup new: %v %v", got, err)
		}
		// Rename over an existing file replaces it.
		fs.Create(p, fs.Root(), "victim", 0644)
		fs.Create(p, fs.Root(), "src", 0644)
		if err := fs.Rename(p, fs.Root(), "src", fs.Root(), "victim"); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHardLink(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, _, _ := fs.Create(p, fs.Root(), "f", 0644)
		attr, err := fs.Link(p, id, fs.Root(), "f2")
		if err != nil || attr.Nlink != 2 {
			t.Fatalf("link: %+v %v", attr, err)
		}
		fs.Write(p, id, 0, 3, []byte("abc"), false)
		id2, _, _ := fs.Lookup(p, fs.Root(), "f2")
		buf := make([]byte, 3)
		fs.Read(p, id2, 0, 3, buf)
		if string(buf) != "abc" {
			t.Fatalf("link content = %q", buf)
		}
		// Removing one name keeps the data alive.
		fs.Remove(p, fs.Root(), "f")
		if _, _, err := fs.Read(p, id2, 0, 3, buf); err != nil {
			t.Fatal(err)
		}
		fs.Remove(p, fs.Root(), "f2")
		if _, err := fs.GetAttr(p, id); !errors.Is(err, ErrStale) {
			t.Fatalf("inode should be gone: %v", err)
		}
	})
}

func TestReadDirPagination(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		for i := 0; i < 25; i++ {
			fs.Create(p, fs.Root(), fmt.Sprintf("f%02d", i), 0644)
		}
		var all []string
		cookie := int64(0)
		for {
			ents, eof, err := fs.ReadDir(p, fs.Root(), cookie, 10)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range ents {
				all = append(all, e.Name)
				cookie = e.Cookie
			}
			if eof {
				break
			}
		}
		if len(all) != 25 {
			t.Fatalf("listed %d entries", len(all))
		}
		for i := 1; i < len(all); i++ {
			if all[i] <= all[i-1] {
				t.Fatalf("entries not sorted: %v", all)
			}
		}
	})
}

func TestTruncateViaSetAttr(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		id, _, _ := fs.Create(p, fs.Root(), "f", 0644)
		fs.Write(p, id, 0, 10, []byte("0123456789"), false)
		size := int64(4)
		attr, err := fs.SetAttr(p, id, SetAttr{Size: &size})
		if err != nil || attr.Size != 4 {
			t.Fatalf("setattr: %+v %v", attr, err)
		}
		buf := make([]byte, 10)
		n, eof, _ := fs.Read(p, id, 0, 10, buf)
		if n != 4 || !eof {
			t.Fatalf("read after truncate: n=%d eof=%v", n, eof)
		}
	})
}

func TestNameValidation(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := memFS(sim)
		for _, bad := range []string{"", ".", ".."} {
			if _, _, err := fs.Create(p, fs.Root(), bad, 0644); !errors.Is(err, ErrInval) {
				t.Errorf("create %q: %v", bad, err)
			}
		}
		long := make([]byte, 300)
		for i := range long {
			long[i] = 'x'
		}
		if _, _, err := fs.Create(p, fs.Root(), string(long), 0644); !errors.Is(err, ErrNameTooLong) {
			t.Errorf("long name: %v", err)
		}
	})
}

func TestNoSpace(t *testing.T) {
	inProc(t, func(sim *des.Sim, p *des.Proc) {
		fs := NewNamespace(sim, NewMemStore(true), 1000)
		id, _, _ := fs.Create(p, fs.Root(), "f", 0644)
		if _, err := fs.Write(p, id, 0, 2000, make([]byte, 2000), false); !errors.Is(err, ErrNoSpace) {
			t.Fatalf("want ENOSPC, got %v", err)
		}
	})
}

// TestQuickReadAfterWrite drives random writes then verifies reads against
// a reference model.
func TestQuickReadAfterWrite(t *testing.T) {
	type op struct {
		Off  uint16
		Data []byte
	}
	f := func(ops []op) bool {
		okResult := true
		inProc(t, func(sim *des.Sim, p *des.Proc) {
			fs := memFS(sim)
			id, _, _ := fs.Create(p, fs.Root(), "f", 0644)
			ref := make([]byte, 0)
			for _, o := range ops {
				if len(o.Data) == 0 {
					continue
				}
				off := int64(o.Off)
				fs.Write(p, id, off, len(o.Data), o.Data, false)
				end := off + int64(len(o.Data))
				if int64(len(ref)) < end {
					grown := make([]byte, end)
					copy(grown, ref)
					ref = grown
				}
				copy(ref[off:end], o.Data)
			}
			buf := make([]byte, len(ref))
			n, _, err := fs.Read(p, id, 0, len(ref), buf)
			if err != nil || n != len(ref) {
				okResult = false
				return
			}
			for i := range ref {
				if buf[i] != ref[i] {
					okResult = false
					return
				}
			}
		})
		return okResult
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDiskArrayParallelStripes(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{Disks: 8, StripeSize: 64 << 10, DiskBandwidth: 30e6})
	var big, small des.Time
	sim.Spawn("io", func(p *des.Proc) {
		start := p.Now()
		arr.Read(p, 0, 8*64<<10) // spans all 8 disks
		big = des.Time(p.Now() - start)
		start = p.Now()
		arr.Read(p, 8*64<<10, 64<<10) // single stripe, sequential continuation on disk 0? (new position)
		small = des.Time(p.Now() - start)
	})
	sim.Run()
	// 512 KiB across 8 disks should take barely longer than 64 KiB on one.
	if big > 2*small {
		t.Fatalf("striped read %v vs single-unit %v: striping not parallel", big, small)
	}
}

func TestDiskArrayAggregateBandwidth(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{Disks: 8, StripeSize: 64 << 10, DiskBandwidth: 30e6})
	const total = 64 << 20
	var elapsed des.Time
	sim.Spawn("io", func(p *des.Proc) {
		start := p.Now()
		arr.Read(p, 0, total)
		elapsed = des.Time(p.Now() - start)
	})
	sim.Run()
	mbps := float64(total) / 1e6 / elapsed.Seconds()
	if mbps < 200 || mbps > 245 {
		t.Fatalf("aggregate = %.1f MB/s, want ~240 (8 x 30)", mbps)
	}
}

func TestPageCacheHitsAfterWarm(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
	pc := NewPageCache(arr, PageCacheConfig{CapacityBytes: 16 << 20, PageSize: 64 << 10})
	sim.Spawn("io", func(p *des.Proc) {
		pc.Read(p, 1, 0, 8<<20)
		missesAfterWarm := pc.Misses
		start := p.Now()
		pc.Read(p, 1, 0, 8<<20)
		if pc.Misses != missesAfterWarm {
			t.Errorf("re-read missed %d pages", pc.Misses-missesAfterWarm)
		}
		if p.Now() != start {
			t.Errorf("cached re-read cost %v", p.Now()-start)
		}
	})
	sim.Run()
}

func TestPageCacheLRUScanEviction(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
	// Cache holds 8 MiB; working set is 32 MiB: cyclic sequential re-reads
	// must keep missing (the Fig. 10(a) >3-client regime).
	pc := NewPageCache(arr, PageCacheConfig{CapacityBytes: 8 << 20, PageSize: 64 << 10})
	sim.Spawn("io", func(p *des.Proc) {
		pc.Read(p, 1, 0, 32<<20)
		m1 := pc.Misses
		pc.Read(p, 1, 0, 32<<20)
		if rescanMisses := pc.Misses - m1; rescanMisses < 100 {
			t.Errorf("cyclic scan re-read only missed %d pages; LRU should thrash", rescanMisses)
		}
	})
	sim.Run()
}

func TestPageCacheWritebackBounded(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
	pc := NewPageCache(arr, PageCacheConfig{
		CapacityBytes: 64 << 20, PageSize: 64 << 10, DirtyLimitBytes: 4 << 20,
	})
	sim.Spawn("io", func(p *des.Proc) {
		pc.Write(p, 1, 0, 32<<20)
		if pc.dirty > 4<<20 {
			t.Errorf("dirty bytes = %d exceeds limit", pc.dirty)
		}
		if arr.BytesWritten == 0 {
			t.Error("writeback never reached the disks")
		}
	})
	sim.Run()
}

func TestDiskStoreCommitFlushes(t *testing.T) {
	sim := des.New()
	arr := NewDiskArray(sim, "raid", DiskArrayConfig{})
	pc := NewPageCache(arr, PageCacheConfig{CapacityBytes: 64 << 20, PageSize: 64 << 10})
	store := NewDiskStore(pc)
	fs := NewNamespace(sim, store, 1<<40)
	sim.Spawn("io", func(p *des.Proc) {
		id, _, _ := fs.Create(p, fs.Root(), "f", 0644)
		fs.Write(p, id, 0, 1<<20, nil, false)
		written := arr.BytesWritten
		if err := fs.Commit(p, id, 0, 0); err != nil {
			t.Fatal(err)
		}
		if arr.BytesWritten <= written {
			t.Error("commit did not flush dirty pages")
		}
	})
	sim.Run()
}
