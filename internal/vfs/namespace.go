package vfs

import (
	"sort"

	"repro/internal/des"
)

// MaxNameLen bounds directory entry names (NFSv3 name limit we enforce).
const MaxNameLen = 255

type inode struct {
	attr     Attr
	children map[string]FileID // directories
	target   string            // symlinks
}

// Namespace is the common in-memory hierarchy over a pluggable data Store:
// with a MemStore it is the tmpfs back end, with a DiskStore it is the
// XFS-on-RAID back end.
type Namespace struct {
	sim    *des.Sim
	store  Store
	inodes map[FileID]*inode
	nextID FileID
	root   FileID
	total  int64 // advertised capacity
	used   int64
}

var _ FS = (*Namespace)(nil)

// NewNamespace creates an empty file system of the given advertised
// capacity over the store.
func NewNamespace(sim *des.Sim, store Store, capacity int64) *Namespace {
	ns := &Namespace{
		sim:    sim,
		store:  store,
		inodes: make(map[FileID]*inode),
		nextID: 1,
		total:  capacity,
	}
	ns.root = ns.newInode(TypeDir, 0755).attr.FileID
	return ns
}

func (ns *Namespace) newInode(t FileType, mode uint32) *inode {
	id := ns.nextID
	ns.nextID++
	now := ns.sim.Now()
	ino := &inode{attr: Attr{
		Type: t, Mode: mode, Nlink: 1, FileID: id,
		Atime: now, Mtime: now, Ctime: now,
	}}
	if t == TypeDir {
		ino.children = make(map[string]FileID)
		ino.attr.Nlink = 2
	}
	ns.inodes[id] = ino
	return ino
}

func (ns *Namespace) get(id FileID) (*inode, error) {
	ino, ok := ns.inodes[id]
	if !ok {
		return nil, ErrStale
	}
	return ino, nil
}

func (ns *Namespace) getDir(id FileID) (*inode, error) {
	ino, err := ns.get(id)
	if err != nil {
		return nil, err
	}
	if ino.attr.Type != TypeDir {
		return nil, ErrNotDir
	}
	return ino, nil
}

func checkName(name string) error {
	if name == "" || name == "." || name == ".." {
		return ErrInval
	}
	if len(name) > MaxNameLen {
		return ErrNameTooLong
	}
	return nil
}

// Root implements FS.
func (ns *Namespace) Root() FileID { return ns.root }

// Lookup implements FS.
func (ns *Namespace) Lookup(p *des.Proc, dir FileID, name string) (FileID, Attr, error) {
	d, err := ns.getDir(dir)
	if err != nil {
		return 0, Attr{}, err
	}
	if name == "." {
		return dir, d.attr, nil
	}
	id, ok := d.children[name]
	if !ok {
		return 0, Attr{}, ErrNotExist
	}
	ino := ns.inodes[id]
	return id, ino.attr, nil
}

// GetAttr implements FS.
func (ns *Namespace) GetAttr(p *des.Proc, id FileID) (Attr, error) {
	ino, err := ns.get(id)
	if err != nil {
		return Attr{}, err
	}
	return ino.attr, nil
}

// SetAttr implements FS.
func (ns *Namespace) SetAttr(p *des.Proc, id FileID, s SetAttr) (Attr, error) {
	ino, err := ns.get(id)
	if err != nil {
		return Attr{}, err
	}
	if s.Mode != nil {
		ino.attr.Mode = *s.Mode
	}
	if s.UID != nil {
		ino.attr.UID = *s.UID
	}
	if s.GID != nil {
		ino.attr.GID = *s.GID
	}
	if s.Size != nil {
		if ino.attr.Type == TypeDir {
			return Attr{}, ErrIsDir
		}
		ns.used += *s.Size - ino.attr.Size
		ino.attr.Size = *s.Size
		ns.store.Truncate(id, *s.Size)
	}
	ino.attr.Ctime = ns.sim.Now()
	if s.SetTime {
		ino.attr.Mtime = ns.sim.Now()
	}
	return ino.attr, nil
}

func (ns *Namespace) createIn(dir FileID, name string, t FileType, mode uint32) (*inode, error) {
	if err := checkName(name); err != nil {
		return nil, err
	}
	d, err := ns.getDir(dir)
	if err != nil {
		return nil, err
	}
	if _, exists := d.children[name]; exists {
		return nil, ErrExist
	}
	ino := ns.newInode(t, mode)
	d.children[name] = ino.attr.FileID
	if t == TypeDir {
		d.attr.Nlink++
	}
	d.attr.Mtime = ns.sim.Now()
	return ino, nil
}

// Create implements FS.
func (ns *Namespace) Create(p *des.Proc, dir FileID, name string, mode uint32) (FileID, Attr, error) {
	ino, err := ns.createIn(dir, name, TypeReg, mode)
	if err != nil {
		return 0, Attr{}, err
	}
	return ino.attr.FileID, ino.attr, nil
}

// Mkdir implements FS.
func (ns *Namespace) Mkdir(p *des.Proc, dir FileID, name string, mode uint32) (FileID, Attr, error) {
	ino, err := ns.createIn(dir, name, TypeDir, mode)
	if err != nil {
		return 0, Attr{}, err
	}
	return ino.attr.FileID, ino.attr, nil
}

// Symlink implements FS.
func (ns *Namespace) Symlink(p *des.Proc, dir FileID, name, target string) (FileID, Attr, error) {
	ino, err := ns.createIn(dir, name, TypeLnk, 0777)
	if err != nil {
		return 0, Attr{}, err
	}
	ino.target = target
	ino.attr.Size = int64(len(target))
	return ino.attr.FileID, ino.attr, nil
}

// ReadLink implements FS.
func (ns *Namespace) ReadLink(p *des.Proc, id FileID) (string, error) {
	ino, err := ns.get(id)
	if err != nil {
		return "", err
	}
	if ino.attr.Type != TypeLnk {
		return "", ErrInval
	}
	return ino.target, nil
}

func (ns *Namespace) unlink(dir FileID, name string, wantDir bool) error {
	d, err := ns.getDir(dir)
	if err != nil {
		return err
	}
	id, ok := d.children[name]
	if !ok {
		return ErrNotExist
	}
	ino := ns.inodes[id]
	isDir := ino.attr.Type == TypeDir
	if wantDir && !isDir {
		return ErrNotDir
	}
	if !wantDir && isDir {
		return ErrIsDir
	}
	if isDir && len(ino.children) > 0 {
		return ErrNotEmpty
	}
	delete(d.children, name)
	if isDir {
		d.attr.Nlink--
	}
	d.attr.Mtime = ns.sim.Now()
	ino.attr.Nlink--
	if ino.attr.Nlink == 0 || (isDir && ino.attr.Nlink <= 1) {
		ns.used -= ino.attr.Size
		ns.store.Drop(id)
		delete(ns.inodes, id)
	}
	return nil
}

// Remove implements FS.
func (ns *Namespace) Remove(p *des.Proc, dir FileID, name string) error {
	return ns.unlink(dir, name, false)
}

// Rmdir implements FS.
func (ns *Namespace) Rmdir(p *des.Proc, dir FileID, name string) error {
	return ns.unlink(dir, name, true)
}

// Rename implements FS.
func (ns *Namespace) Rename(p *des.Proc, fromDir FileID, fromName string, toDir FileID, toName string) error {
	if err := checkName(toName); err != nil {
		return err
	}
	fd, err := ns.getDir(fromDir)
	if err != nil {
		return err
	}
	td, err := ns.getDir(toDir)
	if err != nil {
		return err
	}
	id, ok := fd.children[fromName]
	if !ok {
		return ErrNotExist
	}
	if existing, ok := td.children[toName]; ok {
		if existing == id {
			return nil
		}
		// Replace: target must be removable.
		vt := ns.inodes[existing]
		if vt.attr.Type == TypeDir {
			if len(vt.children) > 0 {
				return ErrNotEmpty
			}
			if err := ns.unlink(toDir, toName, true); err != nil {
				return err
			}
		} else if err := ns.unlink(toDir, toName, false); err != nil {
			return err
		}
	}
	delete(fd.children, fromName)
	td.children[toName] = id
	moved := ns.inodes[id]
	if moved.attr.Type == TypeDir && fromDir != toDir {
		fd.attr.Nlink--
		td.attr.Nlink++
	}
	now := ns.sim.Now()
	fd.attr.Mtime, td.attr.Mtime, moved.attr.Ctime = now, now, now
	return nil
}

// Link implements FS.
func (ns *Namespace) Link(p *des.Proc, id FileID, dir FileID, name string) (Attr, error) {
	if err := checkName(name); err != nil {
		return Attr{}, err
	}
	ino, err := ns.get(id)
	if err != nil {
		return Attr{}, err
	}
	if ino.attr.Type == TypeDir {
		return Attr{}, ErrIsDir
	}
	d, err := ns.getDir(dir)
	if err != nil {
		return Attr{}, err
	}
	if _, exists := d.children[name]; exists {
		return Attr{}, ErrExist
	}
	d.children[name] = id
	ino.attr.Nlink++
	ino.attr.Ctime = ns.sim.Now()
	return ino.attr, nil
}

// Read implements FS.
func (ns *Namespace) Read(p *des.Proc, id FileID, off int64, count int, dst []byte) (int, bool, error) {
	ino, err := ns.get(id)
	if err != nil {
		return 0, false, err
	}
	if ino.attr.Type == TypeDir {
		return 0, false, ErrIsDir
	}
	if off < 0 || count < 0 {
		return 0, false, ErrInval
	}
	n := ns.store.Read(p, id, ino.attr.Size, off, count, dst)
	ino.attr.Atime = ns.sim.Now()
	return n, off+int64(n) >= ino.attr.Size, nil
}

// Write implements FS.
func (ns *Namespace) Write(p *des.Proc, id FileID, off int64, count int, data []byte, stable bool) (int, error) {
	ino, err := ns.get(id)
	if err != nil {
		return 0, err
	}
	if ino.attr.Type == TypeDir {
		return 0, ErrIsDir
	}
	if off < 0 || count < 0 {
		return 0, ErrInval
	}
	if ns.total > 0 && ns.used+int64(count) > ns.total {
		return 0, ErrNoSpace
	}
	ns.store.Write(p, id, off, count, data, stable)
	if off+int64(count) > ino.attr.Size {
		ns.used += off + int64(count) - ino.attr.Size
		ino.attr.Size = off + int64(count)
	}
	now := ns.sim.Now()
	ino.attr.Mtime, ino.attr.Ctime = now, now
	return count, nil
}

// Commit implements FS.
func (ns *Namespace) Commit(p *des.Proc, id FileID, off int64, count int) error {
	if _, err := ns.get(id); err != nil {
		return err
	}
	ns.store.Commit(p, id, off, count)
	return nil
}

// ReadDir implements FS.
func (ns *Namespace) ReadDir(p *des.Proc, dir FileID, cookie int64, maxEntries int) ([]DirEntry, bool, error) {
	d, err := ns.getDir(dir)
	if err != nil {
		return nil, false, err
	}
	names := make([]string, 0, len(d.children))
	for name := range d.children {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []DirEntry
	for i, name := range names {
		ck := int64(i + 1)
		if ck <= cookie {
			continue
		}
		if maxEntries > 0 && len(out) >= maxEntries {
			return out, false, nil
		}
		out = append(out, DirEntry{FileID: d.children[name], Name: name, Cookie: ck})
	}
	return out, true, nil
}

// FSStat implements FS.
func (ns *Namespace) FSStat() (total, free int64) {
	return ns.total, ns.total - ns.used
}
