package workload

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func openLoopCluster(clients int) *core.Cluster {
	return core.NewCluster(core.Config{
		Profile:      profiles.LinuxSDR(),
		Transport:    core.TransportRDMA,
		Design:       rpcrdma.ReadWrite,
		RegMode:      memreg.AllPhysical,
		Clients:      clients,
		ServerShards: 2,
		Seed:         7,
	})
}

// TestOpenLoopUnderloadedTracksOffered drives well below capacity: the
// generator must achieve roughly what it offers, drop nothing, and record a
// latency sample per completion.
func TestOpenLoopUnderloadedTracksOffered(t *testing.T) {
	cluster := openLoopCluster(2)
	var res OpenLoopResult
	cluster.Start("drv", func(p *des.Proc) {
		var err error
		res, err = RunOpenLoop(p, cluster, OpenLoopConfig{
			RecordSize:          64 << 10,
			FileSize:            2 << 20,
			OfferedPerClientBps: 50e6, // 100 MB/s aggregate, far below the wire
			Duration:            des.Duration(50 * time.Millisecond),
			Seed:                7,
		})
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	cluster.Run()
	if res.Issued == 0 || res.Completed == 0 {
		t.Fatalf("no traffic: %+v", res)
	}
	if res.Dropped != 0 {
		t.Fatalf("dropped %d requests while underloaded", res.Dropped)
	}
	if res.Completed != res.Issued {
		t.Fatalf("issued %d but completed %d with no drops", res.Issued, res.Completed)
	}
	if res.AchievedMBps < res.OfferedMBps*0.7 || res.AchievedMBps > res.OfferedMBps*1.3 {
		t.Fatalf("achieved %.1f MB/s vs offered %.1f MB/s: not tracking offered load",
			res.AchievedMBps, res.OfferedMBps)
	}
	if res.Latency.Count() != res.Completed {
		t.Fatalf("latency samples %d != completions %d", res.Latency.Count(), res.Completed)
	}
	if res.P99 < res.P50 || res.P50 <= 0 {
		t.Fatalf("quantiles inverted: p50=%.1f p99=%.1f", res.P50, res.P99)
	}
}

// TestOpenLoopDeterministic pins the arrival process: same seed, same
// byte-identical result.
func TestOpenLoopDeterministic(t *testing.T) {
	run := func() string {
		cluster := openLoopCluster(3)
		var res OpenLoopResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = RunOpenLoop(p, cluster, OpenLoopConfig{
				RecordSize:          32 << 10,
				FileSize:            1 << 20,
				OfferedPerClientBps: 80e6,
				ThinkTime:           des.Duration(10 * time.Microsecond),
				Duration:            des.Duration(20 * time.Millisecond),
				Seed:                42,
			})
		})
		cluster.Run()
		return fmt.Sprintf("%+v", res)
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("same-seed open-loop runs differ:\n%s\n%s", a, b)
	}
}

// TestOpenLoopOverloadDropsAndSaturates wildly over-offers a tiny cluster:
// the outstanding cap must shed load instead of queueing without bound, and
// achieved throughput must land below offered.
func TestOpenLoopOverloadDropsAndSaturates(t *testing.T) {
	cluster := openLoopCluster(2)
	var res OpenLoopResult
	cluster.Start("drv", func(p *des.Proc) {
		res, _ = RunOpenLoop(p, cluster, OpenLoopConfig{
			RecordSize:          64 << 10,
			FileSize:            2 << 20,
			OfferedPerClientBps: 3e9, // 6 GB/s aggregate against a ~900 MB/s wire
			Duration:            des.Duration(20 * time.Millisecond),
			MaxOutstanding:      8,
			Seed:                7,
		})
	})
	cluster.Run()
	if res.Dropped == 0 {
		t.Fatalf("overload produced no drops: %+v", res)
	}
	if res.AchievedMBps >= res.OfferedMBps*0.9 {
		t.Fatalf("achieved %.1f MB/s should saturate far below offered %.1f MB/s",
			res.AchievedMBps, res.OfferedMBps)
	}
}
