package workload

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
)

// OpenLoopConfig parameterizes the open-loop load generator. Unlike the
// closed-loop IOzone shape — where each thread's next request waits for the
// previous one, so offered load collapses to match capacity and latency
// never shows the overload regime — an open-loop generator keeps issuing
// requests on its own deterministic arrival process regardless of how slow
// replies are. Driving offered load past the knee is what exposes the
// throughput-vs-p99-latency tradeoff (RFP's motivation for measuring the
// knee rather than bandwidth alone).
type OpenLoopConfig struct {
	// RecordSize is the read size per request (default 64 KiB).
	RecordSize int

	// FileSize is the per-client file each generator reads at random
	// record-aligned offsets (default 64 records).
	FileSize int64

	// OfferedPerClientBps is the offered load per client in bytes per
	// simulated second; arrivals are Poisson with mean gap
	// RecordSize/OfferedPerClientBps.
	OfferedPerClientBps float64

	// ThinkTime is added to every arrival gap (a pessimistic client-side
	// processing delay); zero for pure Poisson arrivals.
	ThinkTime des.Duration

	// Duration is the measured generation window in virtual time.
	Duration des.Duration

	// MaxOutstanding caps in-flight requests per client; arrivals beyond it
	// are counted as drops rather than queued without bound (default 64).
	// Drops are the open-loop signal that the server is past saturation.
	MaxOutstanding int

	// Seed derives every client's arrival process; same seed, same arrivals.
	Seed uint64
}

func (c *OpenLoopConfig) defaults() {
	if c.RecordSize <= 0 {
		c.RecordSize = 64 << 10
	}
	if c.FileSize <= 0 {
		c.FileSize = 64 * int64(c.RecordSize)
	}
	if c.MaxOutstanding <= 0 {
		c.MaxOutstanding = 64
	}
	if c.Duration <= 0 {
		c.Duration = des.Duration(100 * time.Millisecond)
	}
}

// OpenLoopResult is the measured outcome of one open-loop run.
type OpenLoopResult struct {
	OfferedMBps   float64 // aggregate offered load
	AchievedMBps  float64 // completed bytes over the full run incl. drain
	Issued        int64   // arrivals inside the window
	Completed     int64   // requests that finished successfully
	Dropped       int64   // arrivals rejected at the outstanding cap
	Errors        int64
	Latency       stats.Histogram // per-request latency, µs
	P50, P95, P99 float64         // µs
	ServerCPUPct  float64
	Elapsed       des.Time

	// ServerRecvStateBytes is the server transport's receive-side control
	// memory for the run's client population (RDMA transport only) — the
	// capacity sweep's O(connections)-vs-O(shards) axis.
	ServerRecvStateBytes int64

	// ServerMigrations / ServerLocalWakes split the server's completion
	// handoffs by whether reply processing stayed on the completing CPU
	// (counted over the measurement window; see cpu.Model.Migrate).
	ServerMigrations int64
	ServerLocalWakes int64
}

// RunOpenLoop drives every client of the cluster with an independent
// deterministic Poisson arrival process for cfg.Duration, then drains the
// in-flight tail and reports aggregate throughput and latency quantiles.
func RunOpenLoop(p *des.Proc, cluster *core.Cluster, cfg OpenLoopConfig) (OpenLoopResult, error) {
	cfg.defaults()
	n := len(cluster.Clients)
	sim := p.Sim()
	files := make([]*core.File, n)
	var firstErr error
	fail := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	// Populate: each client writes its own file so reads hit allocated
	// space (and warm the server page cache the way the paper's sequence
	// does).
	parallel(p, "ol-populate", n, func(wp *des.Proc, i int) {
		cl := cluster.Clients[i]
		f, err := cl.Create(wp, fmt.Sprintf("openloop.%d", i))
		if err != nil {
			fail(err)
			return
		}
		files[i] = f
		buf := cl.NewBuffer(cfg.RecordSize)
		for off := int64(0); off < cfg.FileSize; off += int64(cfg.RecordSize) {
			if _, err := f.WriteAt(wp, buf, 0, off, cfg.RecordSize, false); err != nil {
				fail(err)
				return
			}
		}
	})
	if firstErr != nil {
		return OpenLoopResult{}, firstErr
	}

	cluster.Server.Node.CPU.ResetWindow()
	start := p.Now()
	deadline := start + des.Time(cfg.Duration)
	meanGap := des.Duration(float64(cfg.RecordSize) / cfg.OfferedPerClientBps * 1e9)
	blocks := cfg.FileSize / int64(cfg.RecordSize)

	res := OpenLoopResult{
		OfferedMBps: cfg.OfferedPerClientBps * float64(n) / 1e6,
	}
	var completedBytes int64

	// Telemetry (nil engine when disabled): workload-side series alongside
	// the cluster's layer probes, sampled over the measurement window only.
	var totalOutstanding int
	tel := cluster.Telemetry()
	tel.Gauge("workload.inflight", func() float64 { return float64(totalOutstanding) })
	tel.Counter("workload.issued", func() float64 { return float64(res.Issued) })
	tel.Counter("workload.completed", func() float64 { return float64(res.Completed) })
	tel.Counter("workload.dropped", func() float64 { return float64(res.Dropped) })
	latWin := tel.LatencyWindow("workload.lat")
	tel.Start(p)

	parallel(p, "ol-gen", n, func(wp *des.Proc, i int) {
		cl := cluster.Clients[i]
		f := files[i]
		// splitmix-style decorrelation so adjacent clients do not share an
		// arrival stream.
		rng := des.NewRand(cfg.Seed*1_000_003 + uint64(i)*2654435761 + 1)
		outstanding := 0
		genDone := false
		drained := des.NewEvent(sim)
		var free []*core.Buffer
		for {
			wp.Sleep(rng.ExpDuration(meanGap) + cfg.ThinkTime)
			if wp.Now() >= deadline {
				break
			}
			res.Issued++
			if outstanding >= cfg.MaxOutstanding {
				res.Dropped++
				continue
			}
			outstanding++
			totalOutstanding++
			off := rng.Int63n(blocks) * int64(cfg.RecordSize)
			var buf *core.Buffer
			if len(free) > 0 {
				buf, free = free[len(free)-1], free[:len(free)-1]
			} else {
				buf = cl.NewBuffer(cfg.RecordSize)
			}
			sim.Spawn(fmt.Sprintf("ol-op-%d", i), func(op *des.Proc) {
				t0 := op.Now()
				r, _, err := f.ReadAt(op, buf, 0, off, cfg.RecordSize, false)
				if err != nil {
					res.Errors++
					fail(err)
				} else {
					res.Completed++
					completedBytes += int64(r)
					lat := (op.Now() - t0).Micros()
					res.Latency.Observe(lat)
					latWin.Observe(lat)
				}
				free = append(free, buf)
				outstanding--
				totalOutstanding--
				if genDone && outstanding == 0 {
					drained.Fire(nil)
				}
			})
		}
		genDone = true
		if outstanding > 0 {
			drained.Wait(wp)
		}
	})

	tel.Stop()
	res.Elapsed = p.Now() - start
	res.AchievedMBps = stats.MBps(completedBytes, res.Elapsed.Seconds())
	res.P50 = res.Latency.Quantile(0.50)
	res.P95 = res.Latency.Quantile(0.95)
	res.P99 = res.Latency.Quantile(0.99)
	res.ServerCPUPct = cluster.Server.Node.CPU.Utilization() * 100
	res.ServerMigrations = cluster.Server.Node.CPU.Migrations()
	res.ServerLocalWakes = cluster.Server.Node.CPU.LocalWakes()
	if cluster.Server.RDMA != nil {
		res.ServerRecvStateBytes = cluster.Server.RDMA.RecvStateBytes()
	}
	return res, firstErr
}
