package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
)

// MetadataConfig parameterizes a metadata-heavy small-op mix (an
// SPECsfs-flavoured blend of LOOKUP/GETATTR/CREATE/REMOVE/READDIR plus
// small reads and writes). Bulk transfer barely matters here; what this
// stresses is the inline RPC path, per-op latency, and the client metadata
// caches.
type MetadataConfig struct {
	Threads  int
	Dirs     int // directories in the working tree
	Files    int // files per directory, pre-created
	Ops      int // operations per thread
	SmallIO  int // size of the occasional small read/write (default 8 KiB)
	Client   int
	Seed     uint64
	UseCache bool // enable the client attribute/lookup cache
}

// MetadataResult is the measured outcome.
type MetadataResult struct {
	OpsPerSec    float64
	Ops          int64
	AvgLatencyUS float64
	ClientCPUPct float64
	ServerCPUPct float64
}

// RunMetadata pre-builds the tree and runs the mix.
func RunMetadata(p *des.Proc, cluster *core.Cluster, cfg MetadataConfig) (MetadataResult, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 4
	}
	if cfg.Dirs <= 0 {
		cfg.Dirs = 8
	}
	if cfg.Files <= 0 {
		cfg.Files = 32
	}
	if cfg.Ops <= 0 {
		cfg.Ops = 200
	}
	if cfg.SmallIO <= 0 {
		cfg.SmallIO = 8 << 10
	}
	cl := cluster.Clients[cfg.Client]
	if cfg.UseCache && cl.AttrCacheStats() == nil {
		cl.EnableAttrCache(30 * 1e9)
	}
	var firstErr error
	check := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for d := 0; d < cfg.Dirs; d++ {
		check(cl.Mkdir(p, fmt.Sprintf("md%02d", d)))
		for f := 0; f < cfg.Files; f++ {
			file, err := cl.Create(p, fmt.Sprintf("md%02d/f%03d", d, f))
			check(err)
			if err == nil {
				buf := cl.NewBuffer(cfg.SmallIO)
				_, err = file.WriteAt(p, buf, 0, 0, cfg.SmallIO, false)
				check(err)
			}
		}
	}
	if firstErr != nil {
		return MetadataResult{}, firstErr
	}

	cl.Node.CPU.ResetWindow()
	cluster.Server.Node.CPU.ResetWindow()
	start := p.Now()
	var ops int64
	parallel(p, "metadata", cfg.Threads, func(wp *des.Proc, i int) {
		rng := des.NewRand(cfg.Seed*31 + uint64(i) + 1)
		buf := cl.NewBuffer(cfg.SmallIO)
		scratch := 0
		for n := 0; n < cfg.Ops; n++ {
			dir := fmt.Sprintf("md%02d", rng.Intn(cfg.Dirs))
			path := fmt.Sprintf("%s/f%03d", dir, rng.Intn(cfg.Files))
			switch rng.Intn(10) {
			case 0, 1, 2: // stat (GETATTR via LOOKUP path)
				_, err := cl.Stat(wp, path)
				check(err)
			case 3, 4, 5: // open + small read
				f, err := cl.Open(wp, path)
				check(err)
				if err == nil {
					_, _, err = f.ReadAt(wp, buf, 0, 0, cfg.SmallIO, false)
					check(err)
				}
			case 6, 7: // small overwrite
				f, err := cl.Open(wp, path)
				check(err)
				if err == nil {
					_, err = f.WriteAt(wp, buf, 0, 0, cfg.SmallIO, false)
					check(err)
				}
			case 8: // create + remove a scratch file
				scratch++
				name := fmt.Sprintf("%s/tmp%d_%d", dir, i, scratch)
				_, err := cl.Create(wp, name)
				check(err)
				check(cl.Remove(wp, name))
			default: // list the directory
				dirFH, _, err := cl.NFS.Lookup(wp, cl.Root, dir)
				check(err)
				if err == nil {
					_, err = cl.NFS.ReadDir(wp, dirFH, 0, 4096, false)
					check(err)
				}
			}
			ops++
		}
	})
	elapsed := p.Now() - start
	res := MetadataResult{
		Ops:          ops,
		OpsPerSec:    float64(ops) / elapsed.Seconds(),
		ClientCPUPct: cl.Node.CPU.Utilization() * 100,
		ServerCPUPct: cluster.Server.Node.CPU.Utilization() * 100,
	}
	if ops > 0 {
		res.AvgLatencyUS = elapsed.Micros() / float64(ops) * float64(cfg.Threads)
	}
	return res, firstErr
}
