package workload

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/nfs3"
)

// ChaosOracle is the integrity model the chaos load reports into (implemented
// by chaos.Oracle; an interface here so the workload layer does not depend
// on the chaos package).
type ChaosOracle interface {
	WriteIssued(file string, rec int, val byte)
	WriteAcked(file string, rec int, val byte)
	WriteFailed(file string, rec int, val byte)
	ReadObserved(file string, rec int, data []byte)
	RenameENOENT(start, end des.Time) bool
	Violation(format string, args ...any)
}

// ChaosLoadConfig parameterizes the chaos workload: per client, Workers
// procs stripe FileSync record writes across one file for Rounds passes
// (each round writing a fresh value per record), with periodic read-back
// checks; client 0 additionally drives a RENAME chain — the operation whose
// replay semantics across DRC loss the oracle judges. After all drivers
// finish, a verify pass reads every record back through the protocol.
type ChaosLoadConfig struct {
	Workers int // writer procs per client
	Records int // records per client file
	Rounds  int // full passes over the records
	RecSize int // bytes per record
	Renames int // length of the rename chain (client 0)
	Think   des.Duration
}

func (c *ChaosLoadConfig) defaults() {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.Records <= 0 {
		c.Records = 6
	}
	if c.Rounds <= 0 {
		c.Rounds = 3
	}
	if c.RecSize <= 0 {
		c.RecSize = 4096
	}
	if c.Renames <= 0 {
		c.Renames = 8
	}
	if c.Think <= 0 {
		c.Think = 20 * time.Microsecond
	}
}

// ChaosLoadResult aggregates the drivers' outcomes. Integrity verdicts live
// in the oracle, not here.
type ChaosLoadResult struct {
	WritesAcked, WritesFailed int64
	ReadsChecked, ReadsFailed int64
	RenamesOK                 int64
	RenameENOENTs             int64
	RenamesFailed             int64
	VerifyReads               int64
	VerifyFailures            int64
}

// chaosFill is the value byte of (client, record, round): nonzero, and
// distinct across consecutive rounds of the same record so a lost or stale
// write is observable.
func chaosFill(client, rec, round int) byte {
	return byte(1 + (client*131+rec*31+round*7)%254)
}

// isNoEnt reports an NFS3ERR_NOENT outcome.
func isNoEnt(err error) bool {
	var se *nfs3.StatusError
	return errors.As(err, &se) && se.Status == nfs3.ErrNoEnt
}

// RunChaosLoad drives the chaos workload inside an existing cluster process
// (recovery must already be enabled on every client). It returns after the
// final verify pass; every byte observed by a READ has been checked against
// o.
func RunChaosLoad(p *des.Proc, cluster *core.Cluster, cfg ChaosLoadConfig, o ChaosOracle) (ChaosLoadResult, error) {
	cfg.defaults()
	var res ChaosLoadResult

	// Telemetry (nil engine when disabled): the acked-write rate is the
	// series chaos fault windows are annotated against — it collapses during
	// an outage and climbing back to baseline marks recovery.
	tel := cluster.Telemetry()
	tel.Counter("workload.writes_acked", func() float64 { return float64(res.WritesAcked) })
	tel.Counter("workload.writes_failed", func() float64 { return float64(res.WritesFailed) })
	tel.Counter("workload.reads_checked", func() float64 { return float64(res.ReadsChecked) })
	tel.Counter("workload.renames_ok", func() float64 { return float64(res.RenamesOK) })
	tel.Start(p)
	defer tel.Stop()

	files := make([]*core.File, len(cluster.Clients))
	names := make([]string, len(cluster.Clients))
	for ci, cl := range cluster.Clients {
		names[ci] = fmt.Sprintf("chaos.c%d", ci)
		f, err := cl.Create(p, names[ci])
		if err != nil {
			return res, fmt.Errorf("chaos: create %s: %w", names[ci], err)
		}
		files[ci] = f
	}

	// Writers and the rename chain run concurrently, so scheduled faults
	// land on in-flight WRITEs and RENAMEs alike.
	writers := len(cluster.Clients) * cfg.Workers
	parallel(p, "chaos-driver", writers+1, func(wp *des.Proc, i int) {
		if i == writers {
			res.renameChain(wp, cluster.Clients[0], cfg, o)
			return
		}
		ci, wi := i/cfg.Workers, i%cfg.Workers
		res.writer(wp, cluster.Clients[ci], files[ci], names[ci], ci, wi, cfg, o)
	})

	// End-of-run verify: every record of every file, read back through the
	// protocol. All faults have fired by now (the generator places them
	// inside the workload horizon) and every crash restarts, so reads
	// eventually succeed; the retry budget is generous, not infinite.
	for ci, cl := range cluster.Clients {
		buf := cl.NewMaterializedBuffer(cfg.RecSize)
		for rec := 0; rec < cfg.Records; rec++ {
			fillBytes(buf.Bytes(), 0)
			off := int64(rec) * int64(cfg.RecSize)
			ok := false
			for attempt := 0; attempt < 60; attempt++ {
				_, _, err := files[ci].ReadAt(p, buf, 0, off, cfg.RecSize, false)
				if err == nil {
					ok = true
					break
				}
				p.Sleep(250 * time.Microsecond)
			}
			if !ok {
				res.VerifyFailures++
				o.Violation("verify: read %s rec %d never succeeded", names[ci], rec)
				continue
			}
			res.VerifyReads++
			o.ReadObserved(names[ci], rec, buf.Bytes()[:cfg.RecSize])
		}
	}
	return res, nil
}

// writer is one striped record writer: records wi, wi+Workers, ... of the
// client's file, Rounds passes, FileSync, read-back check every third write.
// A record whose write fails terminally is RETIRED — never written again —
// so its unresolved value stays legal in the oracle forever (see
// Oracle.WriteFailed).
func (res *ChaosLoadResult) writer(wp *des.Proc, cl *core.Client, f *core.File, name string, ci, wi int, cfg ChaosLoadConfig, o ChaosOracle) {
	buf := cl.NewMaterializedBuffer(cfg.RecSize)
	retired := make(map[int]bool)
	ops := 0
	for round := 0; round < cfg.Rounds; round++ {
		for rec := wi; rec < cfg.Records; rec += cfg.Workers {
			if retired[rec] {
				continue
			}
			val := chaosFill(ci, rec, round)
			fillBytes(buf.Bytes(), val)
			off := int64(rec) * int64(cfg.RecSize)
			o.WriteIssued(name, rec, val)
			_, err := f.WriteAt(wp, buf, 0, off, cfg.RecSize, true)
			if err != nil {
				o.WriteFailed(name, rec, val)
				res.WritesFailed++
				retired[rec] = true
				continue
			}
			o.WriteAcked(name, rec, val)
			res.WritesAcked++
			ops++
			if ops%3 == 0 {
				fillBytes(buf.Bytes(), 0)
				if _, _, rerr := f.ReadAt(wp, buf, 0, off, cfg.RecSize, false); rerr != nil {
					res.ReadsFailed++
				} else {
					o.ReadObserved(name, rec, buf.Bytes()[:cfg.RecSize])
					res.ReadsChecked++
				}
			}
			if cfg.Think > 0 {
				wp.Sleep(cfg.Think)
			}
		}
	}
}

// renameChain renames chain.0 → chain.1 → ... → chain.N on client 0. RENAME
// is the canonical non-idempotent procedure: once chain.(k-1) is renamed
// away, re-executing the same RENAME returns NFS3ERR_NOENT. With a healthy
// DRC a recovery replay is answered from the cache; across a server crash
// the DRC is legitimately gone and the replay re-executes — the oracle
// decides which case an observed ENOENT was.
func (res *ChaosLoadResult) renameChain(wp *des.Proc, cl *core.Client, cfg ChaosLoadConfig, o ChaosOracle) {
	if _, err := cl.Create(wp, "chain.0"); err != nil {
		o.Violation("rename chain: create chain.0: %v", err)
		return
	}
	cur := "chain.0"
	for k := 1; k <= cfg.Renames; k++ {
		next := fmt.Sprintf("chain.%d", k)
		for attempt := 0; ; attempt++ {
			start := wp.Now()
			err := cl.NFS.Rename(wp, cl.Root, cur, cl.Root, next)
			end := wp.Now()
			if err == nil {
				res.RenamesOK++
				cur = next
				break
			}
			if isNoEnt(err) {
				res.RenameENOENTs++
				o.RenameENOENT(start, end) // records a violation when illegal
				if res.chainExists(wp, cl, next) && !res.chainExists(wp, cl, cur) {
					cur = next // the first execution did the work
				} else {
					o.Violation("rename chain wedged after ENOENT: neither %s nor %s resolves cleanly", cur, next)
					return
				}
				break
			}
			// Terminal transport failure: the rename may or may not have
			// executed. Probe the namespace to find out.
			res.RenamesFailed++
			if res.chainExists(wp, cl, next) && !res.chainExists(wp, cl, cur) {
				cur = next
				break
			}
			if attempt >= 20 {
				o.Violation("rename %s -> %s stuck after %d attempts: %v", cur, next, attempt+1, err)
				return
			}
			wp.Sleep(200 * time.Microsecond)
		}
		if cfg.Think > 0 {
			wp.Sleep(cfg.Think)
		}
	}
}

// chaosLookupAttempts bounds namespace probes; LOOKUP is idempotent, so
// retrying across faults is always safe.
const chaosLookupAttempts = 60

// chainExists probes whether name resolves at the root, retrying transport
// failures.
func (res *ChaosLoadResult) chainExists(wp *des.Proc, cl *core.Client, name string) bool {
	for attempt := 0; attempt < chaosLookupAttempts; attempt++ {
		_, _, err := cl.NFS.Lookup(wp, cl.Root, name)
		if err == nil {
			return true
		}
		if isNoEnt(err) {
			return false
		}
		wp.Sleep(250 * time.Microsecond)
	}
	return false
}

func fillBytes(b []byte, v byte) {
	for i := range b {
		b[i] = v
	}
}
