// Package workload implements the paper's benchmark drivers: an
// IOzone-style multi-threaded sequential read/write generator (§5.1, §5.2),
// a FileBench-style OLTP mix (§5.2), and the multi-client streaming-read
// scale-out test (§5.3). All timing is virtual; throughput numbers are
// MB (10^6 bytes) per simulated second, CPU numbers come from the hosts'
// core models.
package workload

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/stats"
)

// parallel runs n workers and blocks until all finish.
func parallel(p *des.Proc, name string, n int, fn func(wp *des.Proc, i int)) {
	sim := p.Sim()
	events := make([]*des.Event, n)
	for i := 0; i < n; i++ {
		i := i
		ev := des.NewEvent(sim)
		events[i] = ev
		sim.Spawn(fmt.Sprintf("%s-%d", name, i), func(wp *des.Proc) {
			fn(wp, i)
			ev.Fire(nil)
		})
	}
	des.WaitAll(p, events...)
}

// IOzoneConfig parameterizes one IOzone-style run on a single client.
// IOzone creates a separate file per thread (as the paper notes), writes it
// sequentially, then reads it back sequentially.
type IOzoneConfig struct {
	Threads    int
	FileSize   int64 // bytes per thread
	RecordSize int
	DirectIO   bool // zero-copy read placement (§4, Read-Write design only)
	Client     int  // index of the driving client
}

// Phase is one measured IOzone phase.
type Phase struct {
	MBps         float64
	ClientCPUPct float64
	ServerCPUPct float64
	Interrupts   int64 // client-side interrupts taken during the phase
	Elapsed      des.Time
}

// IOzoneResult carries both phases.
type IOzoneResult struct {
	Write Phase
	Read  Phase
}

// RunIOzone executes the write and read phases inside an existing cluster
// process and returns the measured result.
func RunIOzone(p *des.Proc, cluster *core.Cluster, cfg IOzoneConfig) (IOzoneResult, error) {
	if cfg.Threads <= 0 {
		cfg.Threads = 1
	}
	cl := cluster.Clients[cfg.Client]
	files := make([]*core.File, cfg.Threads)
	for i := range files {
		f, err := cl.Create(p, fmt.Sprintf("iozone.%d.%d", cfg.Client, i))
		if err != nil {
			return IOzoneResult{}, err
		}
		files[i] = f
	}
	var res IOzoneResult
	var firstErr error
	record := func(err error) {
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}

	runPhase := func(write bool) Phase {
		cl.Node.CPU.ResetWindow()
		cluster.Server.Node.CPU.ResetWindow()
		start := p.Now()
		var moved int64
		parallel(p, "iozone", cfg.Threads, func(wp *des.Proc, i int) {
			buf := cl.NewBuffer(cfg.RecordSize)
			f := files[i]
			for off := int64(0); off < cfg.FileSize; off += int64(cfg.RecordSize) {
				n := cfg.RecordSize
				if rem := cfg.FileSize - off; int64(n) > rem {
					n = int(rem)
				}
				if write {
					w, err := f.WriteAt(wp, buf, 0, off, n, false)
					record(err)
					moved += int64(w)
				} else {
					r, _, err := f.ReadAt(wp, buf, 0, off, n, cfg.DirectIO)
					record(err)
					moved += int64(r)
				}
			}
		})
		elapsed := p.Now() - start
		return Phase{
			MBps:         stats.MBps(moved, elapsed.Seconds()),
			ClientCPUPct: cl.Node.CPU.Utilization() * 100,
			ServerCPUPct: cluster.Server.Node.CPU.Utilization() * 100,
			Interrupts:   cl.Node.CPU.Interrupts(),
			Elapsed:      elapsed,
		}
	}

	res.Write = runPhase(true)
	res.Read = runPhase(false)
	return res, firstErr
}

// OLTPConfig parameterizes the FileBench-style OLTP mix: reader threads
// performing random reads of MeanIOSize against a shared datafile, writer
// threads performing random writes, and a log writer appending
// synchronously — the ratio FileBench's oltp personality uses, reduced to
// its I/O essentials.
type OLTPConfig struct {
	Readers  int
	Writers  int
	MeanIO   int
	FileSize int64
	Duration des.Duration
	Client   int
	Seed     uint64
}

// OLTPResult is the measured OLTP outcome.
type OLTPResult struct {
	OpsPerSec     float64
	Ops           int64
	ClientUSPerOp float64 // client CPU microseconds per operation
	ServerUSPerOp float64
	ClientCPUPct  float64
	ServerCPUPct  float64
}

// RunOLTP executes the OLTP mix for the configured virtual duration.
func RunOLTP(p *des.Proc, cluster *core.Cluster, cfg OLTPConfig) (OLTPResult, error) {
	if cfg.MeanIO <= 0 {
		cfg.MeanIO = 128 << 10
	}
	if cfg.FileSize <= 0 {
		cfg.FileSize = 512 << 20
	}
	if cfg.Writers <= 0 {
		cfg.Writers = max(1, cfg.Readers/4)
	}
	cl := cluster.Clients[cfg.Client]
	data, err := cl.Create(p, "oltp.datafile")
	if err != nil {
		return OLTPResult{}, err
	}
	logf, err := cl.Create(p, "oltp.log")
	if err != nil {
		return OLTPResult{}, err
	}
	// Populate the datafile so reads hit allocated space.
	{
		buf := cl.NewBuffer(1 << 20)
		for off := int64(0); off < cfg.FileSize; off += 1 << 20 {
			if _, err := data.WriteAt(p, buf, 0, off, 1<<20, false); err != nil {
				return OLTPResult{}, err
			}
		}
	}

	cl.Node.CPU.ResetWindow()
	cluster.Server.Node.CPU.ResetWindow()
	start := p.Now()
	deadline := start + des.Time(cfg.Duration)
	var ops int64
	var firstErr error

	blocks := cfg.FileSize / int64(cfg.MeanIO)
	worker := func(wp *des.Proc, seed uint64, write bool) {
		rng := des.NewRand(seed)
		buf := cl.NewBuffer(cfg.MeanIO)
		for wp.Now() < deadline {
			off := rng.Int63n(blocks) * int64(cfg.MeanIO)
			var err error
			if write {
				_, err = data.WriteAt(wp, buf, 0, off, cfg.MeanIO, false)
			} else {
				_, _, err = data.ReadAt(wp, buf, 0, off, cfg.MeanIO, false)
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
			ops++
		}
	}

	total := cfg.Readers + cfg.Writers + 1
	parallel(p, "oltp", total, func(wp *des.Proc, i int) {
		switch {
		case i < cfg.Readers:
			worker(wp, cfg.Seed*1000+uint64(i)+1, false)
		case i < cfg.Readers+cfg.Writers:
			worker(wp, cfg.Seed*2000+uint64(i)+1, true)
		default:
			// Log writer: small sequential synchronous appends.
			buf := cl.NewBuffer(16 << 10)
			off := int64(0)
			for wp.Now() < deadline {
				if _, err := logf.WriteAt(wp, buf, 0, off, 16<<10, true); err != nil && firstErr == nil {
					firstErr = err
				}
				off += 16 << 10
				ops++
			}
		}
	})
	elapsed := p.Now() - start
	res := OLTPResult{
		Ops:          ops,
		OpsPerSec:    float64(ops) / elapsed.Seconds(),
		ClientCPUPct: cl.Node.CPU.Utilization() * 100,
		ServerCPUPct: cluster.Server.Node.CPU.Utilization() * 100,
	}
	if ops > 0 {
		res.ClientUSPerOp = cl.Node.CPU.BusySeconds() * 1e6 / float64(ops)
		res.ServerUSPerOp = cluster.Server.Node.CPU.BusySeconds() * 1e6 / float64(ops)
	}
	return res, firstErr
}

// MultiClientConfig parameterizes the §5.3 scale-out read test: every
// client first writes its own file (populating the server cache the way the
// paper's IOzone sequence does), then all clients stream-read concurrently.
type MultiClientConfig struct {
	FileSize   int64 // per client
	RecordSize int
}

// MultiClientResult is the aggregate outcome.
type MultiClientResult struct {
	AggregateReadMBps float64
	PerClientMBps     []float64
	ServerCPUPct      float64
	CacheHitRatio     float64 // -1 for tmpfs
	DiskUtilization   float64
}

// RunMultiClient executes the populate and read phases across all clients
// of the cluster.
func RunMultiClient(p *des.Proc, cluster *core.Cluster, cfg MultiClientConfig) (MultiClientResult, error) {
	if cfg.RecordSize <= 0 {
		cfg.RecordSize = 1 << 20
	}
	n := len(cluster.Clients)
	files := make([]*core.File, n)
	var firstErr error

	// Populate phase: sequential, one client at a time (the paper creates
	// the files before the measured read).
	parallel(p, "populate", n, func(wp *des.Proc, i int) {
		cl := cluster.Clients[i]
		f, err := cl.Create(wp, fmt.Sprintf("stream.%d", i))
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			return
		}
		files[i] = f
		buf := cl.NewBuffer(cfg.RecordSize)
		for off := int64(0); off < cfg.FileSize; off += int64(cfg.RecordSize) {
			if _, err := f.WriteAt(wp, buf, 0, off, cfg.RecordSize, false); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	})
	if firstErr != nil {
		return MultiClientResult{}, firstErr
	}

	cluster.Server.Node.CPU.ResetWindow()
	readStart := p.Now()
	var diskBusyBefore float64
	if disk := cluster.Server.Disk; disk != nil {
		diskBusyBefore = disk.BusySeconds()
	}
	perClient := make([]float64, n)
	var aggregate int64
	parallel(p, "stream-read", n, func(wp *des.Proc, i int) {
		cl := cluster.Clients[i]
		buf := cl.NewBuffer(cfg.RecordSize)
		start := wp.Now()
		var moved int64
		for off := int64(0); off < cfg.FileSize; off += int64(cfg.RecordSize) {
			r, _, err := files[i].ReadAt(wp, buf, 0, off, cfg.RecordSize, true)
			if err != nil && firstErr == nil {
				firstErr = err
			}
			moved += int64(r)
		}
		perClient[i] = stats.MBps(moved, (wp.Now() - start).Seconds())
		aggregate += moved
	})
	elapsed := p.Now() - readStart

	res := MultiClientResult{
		AggregateReadMBps: stats.MBps(aggregate, elapsed.Seconds()),
		PerClientMBps:     perClient,
		ServerCPUPct:      cluster.Server.Node.CPU.Utilization() * 100,
		CacheHitRatio:     -1,
	}
	if cache := cluster.Server.Cache; cache != nil {
		if tot := cache.Hits + cache.Misses; tot > 0 {
			res.CacheHitRatio = float64(cache.Hits) / float64(tot)
		}
	}
	if disk := cluster.Server.Disk; disk != nil {
		if window := (p.Now() - readStart).Seconds(); window > 0 {
			res.DiskUtilization = (disk.BusySeconds() - diskBusyBefore) /
				(float64(disk.Disks()) * window)
		}
	}
	return res, firstErr
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
