package workload

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func smallCluster(tr core.Transport, design rpcrdma.Design, mode memreg.Mode, clients int) *core.Cluster {
	return core.NewCluster(core.Config{
		Profile:   profiles.LinuxSDR(),
		Transport: tr,
		Design:    design,
		RegMode:   mode,
		Clients:   clients,
	})
}

func TestIOzoneProducesSaneResults(t *testing.T) {
	cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Cache, 1)
	var res IOzoneResult
	cluster.Start("drv", func(p *des.Proc) {
		var err error
		res, err = RunIOzone(p, cluster, IOzoneConfig{
			Threads: 2, FileSize: 4 << 20, RecordSize: 128 << 10, DirectIO: true,
		})
		if err != nil {
			t.Errorf("run: %v", err)
		}
	})
	cluster.Run()
	if res.Write.MBps <= 0 || res.Read.MBps <= 0 {
		t.Fatalf("non-positive throughput: %+v", res)
	}
	if res.Read.MBps > 950 || res.Write.MBps > 950 {
		t.Fatalf("throughput exceeds the wire: %+v", res)
	}
	if res.Read.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
	if res.Read.ClientCPUPct < 0 || res.Read.ClientCPUPct > 100 {
		t.Fatalf("CPU%% out of range: %v", res.Read.ClientCPUPct)
	}
}

func TestIOzoneDeterministic(t *testing.T) {
	run := func() IOzoneResult {
		cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Regular, 1)
		var res IOzoneResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = RunIOzone(p, cluster, IOzoneConfig{
				Threads: 4, FileSize: 2 << 20, RecordSize: 64 << 10,
			})
		})
		cluster.Run()
		return res
	}
	a, b := run(), run()
	if a.Read.MBps != b.Read.MBps || a.Write.MBps != b.Write.MBps {
		t.Fatalf("non-deterministic: %+v vs %+v", a, b)
	}
}

func TestIOzoneMoreThreadsNotSlower(t *testing.T) {
	measure := func(threads int) float64 {
		cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Regular, 1)
		var res IOzoneResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = RunIOzone(p, cluster, IOzoneConfig{
				Threads: threads, FileSize: 4 << 20, RecordSize: 128 << 10,
			})
		})
		cluster.Run()
		return res.Read.MBps
	}
	one, four := measure(1), measure(4)
	if four < one {
		t.Fatalf("4 threads (%.1f) slower than 1 (%.1f)", four, one)
	}
}

func TestOLTPRunsToDeadline(t *testing.T) {
	cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Cache, 1)
	var res OLTPResult
	cluster.Start("drv", func(p *des.Proc) {
		var err error
		res, err = RunOLTP(p, cluster, OLTPConfig{
			Readers: 8, Writers: 2, MeanIO: 64 << 10,
			FileSize: 16 << 20, Duration: 50 * time.Millisecond, Seed: 3,
		})
		if err != nil {
			t.Errorf("oltp: %v", err)
		}
	})
	cluster.Run()
	if res.Ops == 0 || res.OpsPerSec <= 0 {
		t.Fatalf("no ops: %+v", res)
	}
	if res.ClientUSPerOp <= 0 || res.ServerUSPerOp <= 0 {
		t.Fatalf("per-op CPU not measured: %+v", res)
	}
}

func TestMultiClientTmpfsAggregates(t *testing.T) {
	cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.AllPhysical, 3)
	var res MultiClientResult
	cluster.Start("drv", func(p *des.Proc) {
		var err error
		res, err = RunMultiClient(p, cluster, MultiClientConfig{
			FileSize: 8 << 20, RecordSize: 1 << 20,
		})
		if err != nil {
			t.Errorf("multiclient: %v", err)
		}
	})
	cluster.Run()
	if len(res.PerClientMBps) != 3 {
		t.Fatalf("per-client results = %d", len(res.PerClientMBps))
	}
	var sum float64
	for _, v := range res.PerClientMBps {
		if v <= 0 {
			t.Fatalf("client with zero throughput: %+v", res)
		}
		sum += v
	}
	// Aggregate over shared wall-clock must not exceed the per-client sum.
	if res.AggregateReadMBps > sum+1 {
		t.Fatalf("aggregate %.1f exceeds per-client sum %.1f", res.AggregateReadMBps, sum)
	}
	if res.CacheHitRatio != -1 {
		t.Fatalf("tmpfs back end should report no cache ratio, got %v", res.CacheHitRatio)
	}
}

func TestMultiClientDiskReportsCacheAndDisk(t *testing.T) {
	cluster := core.NewCluster(core.Config{
		Profile:        profiles.LinuxDDR(),
		Transport:      core.TransportRDMA,
		Design:         rpcrdma.ReadWrite,
		RegMode:        memreg.AllPhysical,
		Clients:        2,
		Backend:        core.BackendDisk,
		PageCacheBytes: 8 << 20, // tiny: force disk traffic
	})
	var res MultiClientResult
	cluster.Start("drv", func(p *des.Proc) {
		res, _ = RunMultiClient(p, cluster, MultiClientConfig{
			FileSize: 32 << 20, RecordSize: 1 << 20,
		})
	})
	cluster.Run()
	// Readahead converts per-page misses into hits even while thrashing, so
	// the ratio is not near zero — but it must be measured and bounded.
	if res.CacheHitRatio < 0 || res.CacheHitRatio > 0.95 {
		t.Fatalf("hit ratio = %v, want a measured, sub-unity value", res.CacheHitRatio)
	}
	if res.DiskUtilization <= 0 {
		t.Fatal("disk utilization not measured")
	}
	// Disk-bound aggregate: well under the wire.
	if res.AggregateReadMBps > 300 {
		t.Fatalf("aggregate %.1f should be disk-bound (~240 max)", res.AggregateReadMBps)
	}
}

func TestWorkloadsOverTCPBaseline(t *testing.T) {
	cluster := smallCluster(core.TransportIPoIB, rpcrdma.ReadWrite, memreg.Regular, 1)
	var res IOzoneResult
	cluster.Start("drv", func(p *des.Proc) {
		res, _ = RunIOzone(p, cluster, IOzoneConfig{
			Threads: 2, FileSize: 4 << 20, RecordSize: 128 << 10,
		})
	})
	cluster.Run()
	if res.Read.MBps <= 0 {
		t.Fatalf("tcp baseline produced nothing: %+v", res)
	}
	// The TCP baseline must stay well under the RDMA ceiling.
	if res.Read.MBps > 500 {
		t.Fatalf("IPoIB read %.1f MB/s implausibly high", res.Read.MBps)
	}
}

func TestMetadataWorkload(t *testing.T) {
	for _, useCache := range []bool{false, true} {
		cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Cache, 1)
		var res MetadataResult
		cluster.Start("drv", func(p *des.Proc) {
			var err error
			res, err = RunMetadata(p, cluster, MetadataConfig{
				Threads: 2, Dirs: 3, Files: 8, Ops: 50, Seed: 5, UseCache: useCache,
			})
			if err != nil {
				t.Errorf("metadata (cache=%v): %v", useCache, err)
			}
		})
		cluster.Run()
		if res.Ops != 100 || res.OpsPerSec <= 0 {
			t.Fatalf("metadata (cache=%v): %+v", useCache, res)
		}
	}
}

func TestMetadataCacheImprovesOpRate(t *testing.T) {
	measure := func(useCache bool) float64 {
		cluster := smallCluster(core.TransportRDMA, rpcrdma.ReadWrite, memreg.Cache, 1)
		var res MetadataResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = RunMetadata(p, cluster, MetadataConfig{
				Threads: 4, Dirs: 4, Files: 16, Ops: 100, Seed: 9, UseCache: useCache,
			})
		})
		cluster.Run()
		return res.OpsPerSec
	}
	plain, cached := measure(false), measure(true)
	if cached <= plain {
		t.Fatalf("metadata cache did not help: %.0f vs %.0f ops/s", plain, cached)
	}
}
