// Package oncrpc implements the ONC Remote Procedure Call protocol
// (RFC 1831): call and reply message encoding, AUTH_NONE / AUTH_SYS
// credentials, a client with XID management, and a server-side program
// registry. Transports — the RPC/RDMA transport that is the subject of the
// paper, and the stream transport used by the NFS/TCP baselines — plug in
// underneath through the Transport interface.
package oncrpc

import (
	"errors"
	"fmt"

	"repro/internal/xdr"
)

// RPC protocol constants (RFC 1831).
const (
	RPCVersion = 2

	msgTypeCall  = 0
	msgTypeReply = 1

	replyStatAccepted = 0
	replyStatDenied   = 1
)

// AcceptStat is the accepted-reply status.
type AcceptStat uint32

// Accepted-reply status values.
const (
	Success      AcceptStat = 0
	ProgUnavail  AcceptStat = 1
	ProgMismatch AcceptStat = 2
	ProcUnavail  AcceptStat = 3
	GarbageArgs  AcceptStat = 4
	SystemErr    AcceptStat = 5
)

func (s AcceptStat) String() string {
	switch s {
	case Success:
		return "SUCCESS"
	case ProgUnavail:
		return "PROG_UNAVAIL"
	case ProgMismatch:
		return "PROG_MISMATCH"
	case ProcUnavail:
		return "PROC_UNAVAIL"
	case GarbageArgs:
		return "GARBAGE_ARGS"
	case SystemErr:
		return "SYSTEM_ERR"
	}
	return fmt.Sprintf("accept_stat(%d)", uint32(s))
}

// Errors surfaced by the client.
var (
	ErrDenied      = errors.New("oncrpc: call denied")
	ErrBadReply    = errors.New("oncrpc: malformed reply")
	ErrXIDMismatch = errors.New("oncrpc: reply XID mismatch")
)

// AuthFlavor identifies a credential flavour.
type AuthFlavor uint32

// Credential flavours.
const (
	AuthNone AuthFlavor = 0
	AuthSys  AuthFlavor = 1
)

// Auth is an RPC credential/verifier.
type Auth struct {
	Flavor AuthFlavor
	// AUTH_SYS fields.
	Machine string
	UID     uint32
	GID     uint32
	GIDs    []uint32
	Stamp   uint32
}

// encode writes the opaque_auth structure.
func (a *Auth) encode(e *xdr.Encoder) {
	e.Uint32(uint32(a.Flavor))
	switch a.Flavor {
	case AuthNone:
		e.Uint32(0) // zero-length body
	case AuthSys:
		body := xdr.NewEncoder(nil)
		body.Uint32(a.Stamp)
		body.String(a.Machine)
		body.Uint32(a.UID)
		body.Uint32(a.GID)
		body.Uint32(uint32(len(a.GIDs)))
		for _, g := range a.GIDs {
			body.Uint32(g)
		}
		e.Opaque(body.Bytes())
	default:
		e.Uint32(0)
	}
}

func decodeAuth(d *xdr.Decoder) (Auth, error) {
	var a Auth
	f, err := d.Uint32()
	if err != nil {
		return a, err
	}
	a.Flavor = AuthFlavor(f)
	body, err := d.Opaque()
	if err != nil {
		return a, err
	}
	if a.Flavor == AuthSys {
		bd := xdr.NewDecoder(body)
		if a.Stamp, err = bd.Uint32(); err != nil {
			return a, err
		}
		if a.Machine, err = bd.String(); err != nil {
			return a, err
		}
		if a.UID, err = bd.Uint32(); err != nil {
			return a, err
		}
		if a.GID, err = bd.Uint32(); err != nil {
			return a, err
		}
		n, err := bd.Uint32()
		if err != nil {
			return a, err
		}
		if n > 16 {
			return a, fmt.Errorf("%w: %d gids", ErrBadReply, n)
		}
		for i := uint32(0); i < n; i++ {
			g, err := bd.Uint32()
			if err != nil {
				return a, err
			}
			a.GIDs = append(a.GIDs, g)
		}
	}
	return a, nil
}

// CallHeader is the decoded fixed part of an RPC call.
type CallHeader struct {
	XID  uint32
	Prog uint32
	Vers uint32
	Proc uint32
	Cred Auth
	Verf Auth
}

// EncodeCall marshals an RPC call message: header followed by the
// pre-marshaled procedure arguments.
func EncodeCall(h *CallHeader, args []byte) []byte {
	e := xdr.NewEncoder(make([]byte, 0, 64+len(args)))
	e.Uint32(h.XID)
	e.Uint32(msgTypeCall)
	e.Uint32(RPCVersion)
	e.Uint32(h.Prog)
	e.Uint32(h.Vers)
	e.Uint32(h.Proc)
	h.Cred.encode(e)
	h.Verf.encode(e)
	return append(e.Bytes(), args...)
}

// DecodeCall unmarshals an RPC call message, returning the header and the
// remaining argument bytes.
func DecodeCall(msg []byte) (*CallHeader, []byte, error) {
	d := xdr.NewDecoder(msg)
	var h CallHeader
	var err error
	if h.XID, err = d.Uint32(); err != nil {
		return nil, nil, err
	}
	mt, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if mt != msgTypeCall {
		return nil, nil, fmt.Errorf("%w: msg type %d is not a call", ErrBadReply, mt)
	}
	rv, err := d.Uint32()
	if err != nil {
		return nil, nil, err
	}
	if rv != RPCVersion {
		return nil, nil, fmt.Errorf("%w: rpc version %d", ErrBadReply, rv)
	}
	if h.Prog, err = d.Uint32(); err != nil {
		return nil, nil, err
	}
	if h.Vers, err = d.Uint32(); err != nil {
		return nil, nil, err
	}
	if h.Proc, err = d.Uint32(); err != nil {
		return nil, nil, err
	}
	if h.Cred, err = decodeAuth(d); err != nil {
		return nil, nil, err
	}
	if h.Verf, err = decodeAuth(d); err != nil {
		return nil, nil, err
	}
	return &h, msg[d.Offset():], nil
}

// EncodeReply marshals an accepted RPC reply with the given status and
// pre-marshaled results.
func EncodeReply(xid uint32, stat AcceptStat, results []byte) []byte {
	e := xdr.NewEncoder(make([]byte, 0, 32+len(results)))
	e.Uint32(xid)
	e.Uint32(msgTypeReply)
	e.Uint32(replyStatAccepted)
	(&Auth{Flavor: AuthNone}).encode(e) // verifier
	e.Uint32(uint32(stat))
	return append(e.Bytes(), results...)
}

// DecodeReply unmarshals an RPC reply, returning the XID, accept status and
// remaining result bytes.
func DecodeReply(msg []byte) (xid uint32, stat AcceptStat, results []byte, err error) {
	d := xdr.NewDecoder(msg)
	if xid, err = d.Uint32(); err != nil {
		return
	}
	mt, err := d.Uint32()
	if err != nil {
		return
	}
	if mt != msgTypeReply {
		err = fmt.Errorf("%w: msg type %d is not a reply", ErrBadReply, mt)
		return
	}
	rs, err := d.Uint32()
	if err != nil {
		return
	}
	if rs == replyStatDenied {
		err = ErrDenied
		return
	}
	if _, err = decodeAuth(d); err != nil {
		return
	}
	st, err := d.Uint32()
	if err != nil {
		return
	}
	stat = AcceptStat(st)
	results = msg[d.Offset():]
	return
}
