package oncrpc

// The duplicate request cache (DRC) every production NFS server carries:
// retransmitted calls (same XID from the same client) must not re-execute
// non-idempotent procedures — a replayed REMOVE would return ENOENT, a
// replayed WRITE could clobber newer data. The server replays the cached
// reply instead.
//
// The simulated RC transport never retransmits on its own, but the DRC is
// part of the server's contract (and a real concern for the RPC/RDMA
// transport too, where a reconnecting client retries in-flight calls), so
// it is implemented and tested at the dispatch layer.

// drcKey identifies a request for replay detection. Real servers also hash
// the client address; the simulator's dispatcher is per-transport-server,
// and the Machine credential stands in for the address.
type drcKey struct {
	machine string
	xid     uint32
	prog    uint32
	proc    uint32
}

type drcEntry struct {
	key   drcKey
	reply []byte
	bulk  *Bulk
}

// drc is a bounded FIFO replay cache.
type drc struct {
	capacity int
	entries  map[drcKey]*drcEntry
	order    []drcKey

	Hits, Misses int64
}

// EnableDRC attaches a duplicate request cache of the given capacity to the
// dispatcher. Must be called before serving.
func (d *Dispatcher) EnableDRC(capacity int) {
	if capacity <= 0 {
		capacity = 1024
	}
	d.drc = &drc{capacity: capacity, entries: make(map[drcKey]*drcEntry)}
}

// DRCStats returns (hits, misses), or zeros when no DRC is attached.
func (d *Dispatcher) DRCStats() (hits, misses int64) {
	if d.drc == nil {
		return 0, 0
	}
	return d.drc.Hits, d.drc.Misses
}

func (c *drc) lookup(k drcKey) (*drcEntry, bool) {
	e, ok := c.entries[k]
	if ok {
		c.Hits++
	} else {
		c.Misses++
	}
	return e, ok
}

func (c *drc) insert(k drcKey, reply []byte, bulk *Bulk) {
	if _, dup := c.entries[k]; dup {
		return
	}
	for len(c.entries) >= c.capacity {
		oldest := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, oldest)
	}
	c.entries[k] = &drcEntry{key: k, reply: reply, bulk: bulk}
	c.order = append(c.order, k)
}
