package oncrpc

// The duplicate request cache (DRC) every production NFS server carries:
// retransmitted calls (same XID from the same client) must not re-execute
// non-idempotent procedures — a replayed REMOVE would return ENOENT, a
// replayed WRITE could clobber newer data. The server replays the cached
// reply instead.
//
// The cache is bounded PER CLIENT (the Machine credential stands in for the
// client address, as real servers hash it), so one client churning XIDs
// cannot evict another client's replay window. Entries exist in two states:
//
//   - executing: the original call is still in a service handler. A
//     retransmission arriving now is dropped outright (Dispatch returns a
//     nil reply) — the original will answer, and answering twice would
//     duplicate the reply's side effects on the transport.
//   - completed: the reply is cached; a retransmission replays it.
//
// Services may implement IdempotencyClassifier to restrict caching to their
// non-idempotent procedures; re-executing an idempotent call (GETATTR,
// READ) is harmless and skipping the cache keeps bulk-carrying READ replies
// out of it — cached bulk references transport staging that is recycled
// after the first send, so replaying it would push stale bytes. Services
// without the classifier get every completed call cached.

// IdempotencyClassifier is optionally implemented by services whose
// procedures differ in replay safety. NonIdempotent(proc) returning true
// means a retransmission of proc must be answered from the cache, never
// re-executed.
type IdempotencyClassifier interface {
	NonIdempotent(proc uint32) bool
}

// clientKey identifies a request within one client's replay window.
type clientKey struct {
	xid  uint32
	prog uint32
	proc uint32
}

type drcEntry struct {
	key       clientKey
	executing bool
	reply     []byte
	bulk      *Bulk
}

// drcClient is one client's bounded FIFO replay window.
type drcClient struct {
	entries map[clientKey]*drcEntry
	order   []clientKey
}

// evict removes completed entries in FIFO order until at most target
// remain. Executing placeholders are never evicted: dropping one would let
// a retransmission re-execute a call that is still running. A single
// forward pass compacts order in place — the old rescan-from-the-head loop
// was O(n²) whenever executing placeholders sat at the FIFO head. If every
// entry is in flight the window transiently exceeds capacity; that is
// tolerated.
func (cl *drcClient) evict(target int) {
	if len(cl.entries) <= target {
		return
	}
	keep := cl.order[:0]
	for i, k := range cl.order {
		if len(cl.entries) > target && !cl.entries[k].executing {
			delete(cl.entries, k)
			continue
		}
		if len(cl.entries) <= target {
			// Done evicting: keep the rest of the window wholesale.
			keep = append(keep, cl.order[i:]...)
			break
		}
		keep = append(keep, k)
	}
	cl.order = keep
}

type drcState int

const (
	drcMiss drcState = iota
	drcHit
	drcExecuting
)

// drc is the dispatcher's replay cache: per-client bounded FIFO windows.
type drc struct {
	capacity int
	clients  map[string]*drcClient

	Hits, Misses    int64
	InProgressDrops int64 // retransmissions of still-executing calls dropped
}

// EnableDRC attaches a duplicate request cache to the dispatcher; capacity
// bounds the cached replies per client machine. Must be called before
// serving.
func (d *Dispatcher) EnableDRC(capacity int) {
	if capacity <= 0 {
		capacity = 1024
	}
	d.drc = &drc{capacity: capacity, clients: make(map[string]*drcClient)}
}

// DRCStats returns (hits, misses), or zeros when no DRC is attached.
func (d *Dispatcher) DRCStats() (hits, misses int64) {
	if d.drc == nil {
		return 0, 0
	}
	return d.drc.Hits, d.drc.Misses
}

// DropDRC wipes the replay windows of every client — the DRC is volatile
// server memory and dies with a crash. Executing placeholders go too: the
// handlers running them die with the server, so nothing would ever commit
// them, and a stale placeholder would silently drop the client's replay
// after restart. Cumulative hit/miss counters survive (they are
// measurement, not server state). No-op without a DRC.
func (d *Dispatcher) DropDRC() {
	if d.drc != nil {
		d.drc.clients = make(map[string]*drcClient)
	}
}

// DRCEntries returns the total cached or executing entries across all
// client replay windows, zero without a DRC. A sum over clients is
// iteration-order independent, so telemetry sampling it stays deterministic.
func (d *Dispatcher) DRCEntries() int {
	if d.drc == nil {
		return 0
	}
	n := 0
	for _, cl := range d.drc.clients {
		n += len(cl.entries)
	}
	return n
}

// DRCClients returns how many client replay windows exist, zero without a
// DRC. After DropDRC this must count only clients that have actually been
// served since the wipe — a commit racing the wipe must not resurrect an
// empty window.
func (d *Dispatcher) DRCClients() int {
	if d.drc == nil {
		return 0
	}
	return len(d.drc.clients)
}

// DRCInProgressDrops returns how many retransmissions were dropped because
// their original call was still executing.
func (d *Dispatcher) DRCInProgressDrops() int64 {
	if d.drc == nil {
		return 0
	}
	return d.drc.InProgressDrops
}

func (c *drc) client(machine string) *drcClient {
	cl, ok := c.clients[machine]
	if !ok {
		cl = &drcClient{entries: make(map[clientKey]*drcEntry)}
		c.clients[machine] = cl
	}
	return cl
}

func (c *drc) lookup(machine string, k clientKey) (*drcEntry, drcState) {
	cl, ok := c.clients[machine]
	if !ok {
		c.Misses++
		return nil, drcMiss
	}
	e, ok := cl.entries[k]
	if !ok {
		c.Misses++
		return nil, drcMiss
	}
	if e.executing {
		c.InProgressDrops++
		return e, drcExecuting
	}
	c.Hits++
	return e, drcHit
}

// begin installs an executing placeholder before the service handler runs,
// closing the window where a retransmission of an in-flight call would
// double-execute.
func (c *drc) begin(machine string, k clientKey) {
	cl := c.client(machine)
	if _, dup := cl.entries[k]; dup {
		return
	}
	cl.evict(c.capacity - 1)
	cl.entries[k] = &drcEntry{key: k, executing: true}
	cl.order = append(cl.order, k)
}

// commit completes a placeholder with the reply to replay for future
// retransmissions. It looks the client window up WITHOUT creating: if
// DropDRC wiped the windows while this call was executing (crash path), the
// placeholder is gone and creating an empty drcClient here would leak it —
// nothing ever removes a clientless window, and it skews DRCClients.
func (c *drc) commit(machine string, k clientKey, reply []byte, bulk *Bulk) {
	cl, ok := c.clients[machine]
	if !ok {
		return
	}
	if e, ok := cl.entries[k]; ok {
		e.executing = false
		e.reply = reply
		e.bulk = bulk
	}
}
