package oncrpc

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/trace"
)

// ProcNamer is implemented by services that can name their procedures for
// tracing; without it, dispatch spans fall back to the service name.
type ProcNamer interface {
	ProcName(proc uint32) string
}

// Dispatcher routes decoded calls to registered services and encodes
// replies. Server transports (RPC/RDMA, stream) own the worker model and
// call Dispatch from their worker processes.
type Dispatcher struct {
	services map[[2]uint32]Service
	drc      *drc // nil unless EnableDRC was called
}

// NewDispatcher returns an empty dispatcher.
func NewDispatcher() *Dispatcher {
	return &Dispatcher{services: make(map[[2]uint32]Service)}
}

// Register adds a service; registering a duplicate (program, version)
// panics, as that is always a wiring bug.
func (d *Dispatcher) Register(s Service) {
	k := [2]uint32{s.Program(), s.Version()}
	if _, dup := d.services[k]; dup {
		panic(fmt.Sprintf("oncrpc: duplicate service %d/%d", k[0], k[1]))
	}
	d.services[k] = s
}

// DispatchOpts carries the transport-side context of one call.
type DispatchOpts struct {
	// Bulk is pulled call payload (e.g. WRITE data).
	Bulk *Bulk
	// RecvBulkCap is the client's advertised reply-payload capacity.
	RecvBulkCap int
	// ReplyBuf is a transport-provided reply staging buffer (see
	// ServerRequest.ReplyBuf).
	ReplyBuf *Bulk
	// Peer is the transport-authenticated identity of the calling machine
	// (e.g. the node name behind the connection). When set, the DRC keys
	// replay state by it instead of the forgeable AUTH_SYS machine-name
	// credential — a client lying about Cred.Machine can then neither read
	// another machine's cached replies nor pre-poison its replay keys.
	Peer string
}

// Dispatch executes one raw call message and returns the marshaled reply
// plus any reply payload for placement. A nil error with a non-Success
// accept status is a protocol-level rejection encoded in the reply; a
// non-nil error means the call could not even be parsed (the transport
// should drop the connection). A nil reply with a nil error means the call
// was a retransmission of a request still executing: the transport must
// drop it silently — the original execution will produce the reply.
func (d *Dispatcher) Dispatch(p *des.Proc, rawCall []byte, opts DispatchOpts) (reply []byte, bulkOut *Bulk, err error) {
	hdr, args, err := DecodeCall(rawCall)
	if err != nil {
		return nil, nil, err
	}
	tr := p.Sim().Tracer()
	key := clientKey{xid: hdr.XID, prog: hdr.Prog, proc: hdr.Proc}
	// DRC identity: the transport-authenticated peer when the transport
	// knows one, else the (spoofable) credential machine name. Trace labels
	// keep the credential — what the client *claimed* is the interesting
	// datum when the two diverge.
	drcID := hdr.Cred.Machine
	if opts.Peer != "" {
		drcID = opts.Peer
	}
	if d.drc != nil {
		switch e, state := d.drc.lookup(drcID, key); state {
		case drcHit:
			// Retransmission: replay the cached reply without re-executing.
			if tr != nil {
				tr.Instant(int64(p.Now()), trace.LayerONCRPC, trace.KindDRCHit, hdr.Cred.Machine, "drc-hit", uint64(hdr.XID), int64(hdr.Proc))
			}
			return e.reply, e.bulk, nil
		case drcExecuting:
			// The original call is still in a handler; drop this copy.
			if tr != nil {
				tr.Instant(int64(p.Now()), trace.LayerONCRPC, trace.KindDRCSuppress, hdr.Cred.Machine, "drc-suppress", uint64(hdr.XID), int64(hdr.Proc))
			}
			return nil, nil, nil
		}
	}
	svc, ok := d.services[[2]uint32{hdr.Prog, hdr.Vers}]
	if !ok {
		return EncodeReply(hdr.XID, ProgUnavail, nil), nil, nil
	}
	// Cache when the service cannot classify (conservative: everything) or
	// classifies this procedure as non-idempotent. The placeholder goes in
	// before Handle so a duplicate arriving mid-execution is suppressed.
	cache := d.drc != nil
	if cl, ok := svc.(IdempotencyClassifier); ok && cache {
		cache = cl.NonIdempotent(hdr.Proc)
	}
	if cache {
		d.drc.begin(drcID, key)
	}
	dispatchStart := p.Now()
	resp := svc.Handle(p, &ServerRequest{
		Header:      hdr,
		Args:        args,
		Bulk:        opts.Bulk,
		RecvBulkCap: opts.RecvBulkCap,
		ReplyBuf:    opts.ReplyBuf,
	})
	if tr != nil {
		name := svc.Name()
		if pn, ok := svc.(ProcNamer); ok {
			name = pn.ProcName(hdr.Proc)
		}
		tr.Span(int64(dispatchStart), int64(p.Now()), trace.LayerONCRPC, trace.KindDispatch,
			hdr.Cred.Machine, name, uint64(hdr.XID), int64(hdr.Proc))
	}
	reply = EncodeReply(hdr.XID, resp.Stat, resp.Results)
	if cache {
		d.drc.commit(drcID, key, reply, resp.Bulk)
	}
	return reply, resp.Bulk, nil
}
