package oncrpc

import (
	"repro/internal/des"
)

// Bulk describes a large data payload that capable transports move by
// direct data placement (RDMA chunks) instead of inline XDR, mirroring the
// page-list portion of the kernel's xdr_buf.
//
// Data may be nil when the simulation runs in phantom-data mode; Len is
// always authoritative. Handle carries a transport- or layer-specific
// placement token (for the simulator: the *ibsim.Buffer backing the
// payload and its offset), opaque to this package.
type Bulk struct {
	Data   []byte
	Len    int
	Handle any
	// Offset of the payload within the backing Handle buffer.
	Off int
}

// NewBulk builds a Bulk over materialized bytes.
func NewBulk(data []byte) *Bulk {
	return &Bulk{Data: data, Len: len(data)}
}

// Request is one RPC exchange as seen by a transport.
type Request struct {
	XID uint32

	// Header is the fully marshaled RPC call (header + inline args).
	Header []byte

	// SendBulk is payload the server must obtain before executing the
	// procedure (an NFS WRITE's data). RDMA transports advertise it as a
	// read chunk list for the server to pull; stream transports append it
	// inline.
	SendBulk *Bulk

	// RecvBulk, when non-nil, provides placement for the procedure's reply
	// payload (an NFS READ's data). Len gives the capacity. RDMA transports
	// advertise it (Read-Write design) or pull into it (Read-Read design);
	// stream transports copy inline reply data into it.
	RecvBulk *Bulk

	// LongReplyCap, when > 0, announces that the inline reply may exceed
	// the inline threshold (READDIR/READLINK) and gives the maximum
	// expected size, letting RDMA transports set up a reply chunk.
	LongReplyCap int

	// DirectIO marks RecvBulk as application memory eligible for the
	// zero-copy direct-I/O placement path (no staging copy at the client).
	DirectIO bool
}

// Response is the transport-level result of a Request.
type Response struct {
	// Header is the marshaled RPC reply (header + inline results).
	Header []byte

	// BulkLen is the number of payload bytes placed into RecvBulk.
	BulkLen int
}

// Transport performs RPC exchanges for a client.
type Transport interface {
	// Roundtrip sends the call and blocks until the matching reply arrives
	// and all payload placement for it has completed.
	Roundtrip(p *des.Proc, req *Request) (*Response, error)
	// Close releases transport resources.
	Close()
}

// ServerRequest is one received call as seen by the service dispatcher.
type ServerRequest struct {
	Header *CallHeader

	// Args is the inline argument bytes following the RPC call header.
	Args []byte

	// Bulk is the pulled SendBulk payload (nil when the call carried none).
	Bulk *Bulk

	// RecvBulkCap is the client's advertised reply-payload capacity
	// (0 when the client advertised no placement).
	RecvBulkCap int

	// ReplyBuf, when non-nil, is a transport-provided staging buffer the
	// service fills with the reply payload (the server-side buffer that the
	// paper's registration flow allocates at call receipt and registers
	// when control returns from the file system). Services that produce a
	// payload must use it when present and set ServerResponse.Bulk to it.
	ReplyBuf *Bulk
}

// ServerResponse is what a service hands back to the server transport.
type ServerResponse struct {
	Stat AcceptStat

	// Results is the inline result bytes (excluding the RPC reply header).
	Results []byte

	// Bulk is the reply payload to place at the client, if any.
	Bulk *Bulk
}

// Service handles decoded calls for one (program, version).
type Service interface {
	Name() string
	Program() uint32
	Version() uint32
	// Handle executes one procedure. It runs on a server worker process and
	// may block on simulated I/O.
	Handle(p *des.Proc, req *ServerRequest) *ServerResponse
}
