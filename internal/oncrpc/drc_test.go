package oncrpc

import (
	"testing"

	"repro/internal/des"
)

// countingService counts executions so replays are visible.
type countingService struct{ calls int }

func (s *countingService) Name() string    { return "count" }
func (s *countingService) Program() uint32 { return 555 }
func (s *countingService) Version() uint32 { return 1 }
func (s *countingService) Handle(p *des.Proc, req *ServerRequest) *ServerResponse {
	s.calls++
	return &ServerResponse{Stat: Success, Results: []byte{byte(s.calls)}}
}

func TestDRCReplaysWithoutReexecution(t *testing.T) {
	d := NewDispatcher()
	svc := &countingService{}
	d.Register(svc)
	d.EnableDRC(8)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		hdr := &CallHeader{XID: 99, Prog: 555, Vers: 1, Proc: 1,
			Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
		raw := EncodeCall(hdr, nil)
		r1, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		// Retransmit: identical bytes, must replay the SAME reply.
		r2, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if svc.calls != 1 {
			t.Errorf("service executed %d times for a retransmission", svc.calls)
		}
		if string(r1) != string(r2) {
			t.Error("replayed reply differs from the original")
		}
		// A different XID executes normally.
		hdr.XID = 100
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != 2 {
			t.Errorf("calls = %d", svc.calls)
		}
		// A different client machine with the same XID is NOT a replay.
		hdr.Cred.Machine = "c1"
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != 3 {
			t.Errorf("cross-client xid collision replayed: calls = %d", svc.calls)
		}
		hits, misses := d.DRCStats()
		if hits != 1 || misses != 3 {
			t.Errorf("drc stats = %d/%d, want 1/3", hits, misses)
		}
	})
	sim.Run()
}

func TestDRCBounded(t *testing.T) {
	d := NewDispatcher()
	svc := &countingService{}
	d.Register(svc)
	d.EnableDRC(4)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		hdr := &CallHeader{Prog: 555, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "c"}}
		for xid := uint32(1); xid <= 10; xid++ {
			hdr.XID = xid
			d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		}
		// XID 1 was evicted: re-dispatching executes again (a real server
		// accepts this window; the cache is bounded by design).
		hdr.XID = 1
		before := svc.calls
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != before+1 {
			t.Error("evicted entry should re-execute")
		}
		// XID 10 is still cached.
		hdr.XID = 10
		before = svc.calls
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != before {
			t.Error("recent entry should replay")
		}
	})
	sim.Run()
}
