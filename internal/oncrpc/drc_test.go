package oncrpc

import (
	"testing"
	"time"

	"repro/internal/des"
)

// countingService counts executions so replays are visible.
type countingService struct{ calls int }

func (s *countingService) Name() string    { return "count" }
func (s *countingService) Program() uint32 { return 555 }
func (s *countingService) Version() uint32 { return 1 }
func (s *countingService) Handle(p *des.Proc, req *ServerRequest) *ServerResponse {
	s.calls++
	return &ServerResponse{Stat: Success, Results: []byte{byte(s.calls)}}
}

func TestDRCReplaysWithoutReexecution(t *testing.T) {
	d := NewDispatcher()
	svc := &countingService{}
	d.Register(svc)
	d.EnableDRC(8)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		hdr := &CallHeader{XID: 99, Prog: 555, Vers: 1, Proc: 1,
			Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
		raw := EncodeCall(hdr, nil)
		r1, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		// Retransmit: identical bytes, must replay the SAME reply.
		r2, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if svc.calls != 1 {
			t.Errorf("service executed %d times for a retransmission", svc.calls)
		}
		if string(r1) != string(r2) {
			t.Error("replayed reply differs from the original")
		}
		// A different XID executes normally.
		hdr.XID = 100
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != 2 {
			t.Errorf("calls = %d", svc.calls)
		}
		// A different client machine with the same XID is NOT a replay.
		hdr.Cred.Machine = "c1"
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != 3 {
			t.Errorf("cross-client xid collision replayed: calls = %d", svc.calls)
		}
		hits, misses := d.DRCStats()
		if hits != 1 || misses != 3 {
			t.Errorf("drc stats = %d/%d, want 1/3", hits, misses)
		}
	})
	sim.Run()
}

// slowService executes for a fixed virtual duration, so a test can land a
// retransmission while the original call is still inside the handler.
type slowService struct {
	calls int
	delay time.Duration
}

func (s *slowService) Name() string    { return "slow" }
func (s *slowService) Program() uint32 { return 556 }
func (s *slowService) Version() uint32 { return 1 }
func (s *slowService) Handle(p *des.Proc, req *ServerRequest) *ServerResponse {
	s.calls++
	p.Sleep(s.delay)
	return &ServerResponse{Stat: Success, Results: []byte{byte(s.calls)}}
}

func TestDRCSuppressesDuplicateWhileExecuting(t *testing.T) {
	d := NewDispatcher()
	svc := &slowService{delay: time.Millisecond}
	d.Register(svc)
	d.EnableDRC(8)
	sim := des.New()
	hdr := &CallHeader{XID: 42, Prog: 556, Vers: 1, Proc: 1,
		Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
	raw := EncodeCall(hdr, nil)
	sim.Spawn("original", func(p *des.Proc) {
		reply, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil || reply == nil {
			t.Errorf("original call failed: reply=%v err=%v", reply, err)
		}
	})
	sim.SpawnAt(des.Time(100*time.Microsecond), "retransmit", func(p *des.Proc) {
		reply, bulk, err := d.Dispatch(p, raw, DispatchOpts{})
		if reply != nil || bulk != nil || err != nil {
			t.Errorf("mid-execution duplicate should drop silently, got reply=%v bulk=%v err=%v", reply, bulk, err)
		}
	})
	sim.SpawnAt(des.Time(5*time.Millisecond), "late-retransmit", func(p *des.Proc) {
		reply, _, err := d.Dispatch(p, raw, DispatchOpts{})
		if err != nil || string(reply) == "" {
			t.Errorf("post-completion duplicate should replay, got %v/%v", reply, err)
		}
	})
	sim.Run()
	if svc.calls != 1 {
		t.Errorf("service executed %d times, want 1", svc.calls)
	}
	if d.DRCInProgressDrops() != 1 {
		t.Errorf("InProgressDrops = %d, want 1", d.DRCInProgressDrops())
	}
}

// classifierService caches only proc 7 (its sole non-idempotent procedure).
type classifierService struct{ calls [10]int }

func (s *classifierService) Name() string                { return "classified" }
func (s *classifierService) Program() uint32             { return 557 }
func (s *classifierService) Version() uint32             { return 1 }
func (s *classifierService) NonIdempotent(p uint32) bool { return p == 7 }
func (s *classifierService) Handle(p *des.Proc, req *ServerRequest) *ServerResponse {
	s.calls[req.Header.Proc]++
	return &ServerResponse{Stat: Success}
}

func TestDRCHonorsIdempotencyClassifier(t *testing.T) {
	d := NewDispatcher()
	svc := &classifierService{}
	d.Register(svc)
	d.EnableDRC(8)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		hdr := &CallHeader{XID: 1, Prog: 557, Vers: 1, Proc: 7,
			Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
		raw := EncodeCall(hdr, nil)
		d.Dispatch(p, raw, DispatchOpts{})
		d.Dispatch(p, raw, DispatchOpts{})
		if svc.calls[7] != 1 {
			t.Errorf("non-idempotent proc re-executed: %d", svc.calls[7])
		}
		hdr.Proc = 6 // idempotent: replays re-execute, harmlessly
		raw = EncodeCall(hdr, nil)
		d.Dispatch(p, raw, DispatchOpts{})
		d.Dispatch(p, raw, DispatchOpts{})
		if svc.calls[6] != 2 {
			t.Errorf("idempotent proc should re-execute: %d", svc.calls[6])
		}
	})
	sim.Run()
}

// Each client machine gets its own bounded window: one client churning
// through XIDs must not evict another client's cached replies.
func TestDRCPerClientBounds(t *testing.T) {
	d := NewDispatcher()
	svc := &countingService{}
	d.Register(svc)
	d.EnableDRC(4)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		a := &CallHeader{XID: 1, Prog: 555, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "a"}}
		d.Dispatch(p, EncodeCall(a, nil), DispatchOpts{})
		// Client b floods far past the per-client capacity.
		b := &CallHeader{Prog: 555, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "b"}}
		for xid := uint32(1); xid <= 20; xid++ {
			b.XID = xid
			d.Dispatch(p, EncodeCall(b, nil), DispatchOpts{})
		}
		// Client a's entry survived b's churn.
		before := svc.calls
		d.Dispatch(p, EncodeCall(a, nil), DispatchOpts{})
		if svc.calls != before {
			t.Error("client a's cached reply was evicted by client b's traffic")
		}
	})
	sim.Run()
}

// TestDRCEvictSkipsExecutingHead covers eviction when the FIFO head is an
// executing placeholder: the single forward pass must skip it (an executing
// entry is never evicted), remove completed entries beyond it, and leave
// order and entries consistent.
func TestDRCEvictSkipsExecutingHead(t *testing.T) {
	cl := &drcClient{entries: make(map[clientKey]*drcEntry)}
	add := func(xid uint32, executing bool) {
		k := clientKey{xid: xid, prog: 1, proc: 1}
		cl.entries[k] = &drcEntry{key: k, executing: executing}
		cl.order = append(cl.order, k)
	}
	add(1, true) // head: in flight, must survive
	add(2, false)
	add(3, false)
	add(4, false)
	cl.evict(2)
	if len(cl.entries) != 2 || len(cl.order) != 2 {
		t.Fatalf("entries=%d order=%d, want 2/2", len(cl.entries), len(cl.order))
	}
	if _, ok := cl.entries[clientKey{xid: 1, prog: 1, proc: 1}]; !ok {
		t.Fatal("executing head was evicted")
	}
	if _, ok := cl.entries[clientKey{xid: 4, prog: 1, proc: 1}]; !ok {
		t.Fatal("newest completed entry was evicted before older ones")
	}
	for _, k := range cl.order {
		if _, ok := cl.entries[k]; !ok {
			t.Fatalf("order holds evicted key %+v", k)
		}
	}
	// All-executing window: eviction tolerates transient over-capacity.
	cl2 := &drcClient{entries: make(map[clientKey]*drcEntry)}
	for xid := uint32(1); xid <= 3; xid++ {
		k := clientKey{xid: xid, prog: 1, proc: 1}
		cl2.entries[k] = &drcEntry{key: k, executing: true}
		cl2.order = append(cl2.order, k)
	}
	cl2.evict(1)
	if len(cl2.entries) != 3 || len(cl2.order) != 3 {
		t.Fatalf("all-executing window shrank: entries=%d order=%d", len(cl2.entries), len(cl2.order))
	}
}

// TestDRCEvictionAroundExecutingCall drives the same scenario through the
// dispatcher: a slow call holds the FIFO head as an executing placeholder
// while fast traffic churns the window past capacity. The churn must evict
// only completed entries, and the slow call must still replay afterwards.
func TestDRCEvictionAroundExecutingCall(t *testing.T) {
	d := NewDispatcher()
	slow := &slowService{delay: time.Millisecond}
	fast := &countingService{}
	d.Register(slow)
	d.Register(fast)
	d.EnableDRC(2)
	sim := des.New()
	slowHdr := &CallHeader{XID: 1, Prog: 556, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
	slowRaw := EncodeCall(slowHdr, nil)
	sim.Spawn("original", func(p *des.Proc) {
		if reply, _, err := d.Dispatch(p, slowRaw, DispatchOpts{}); err != nil || reply == nil {
			t.Errorf("original slow call: reply=%v err=%v", reply, err)
		}
	})
	sim.SpawnAt(des.Time(100*time.Microsecond), "churn", func(p *des.Proc) {
		hdr := &CallHeader{Prog: 555, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
		for xid := uint32(2); xid <= 6; xid++ {
			hdr.XID = xid
			d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		}
	})
	sim.SpawnAt(des.Time(5*time.Millisecond), "retransmit", func(p *des.Proc) {
		if reply, _, err := d.Dispatch(p, slowRaw, DispatchOpts{}); err != nil || reply == nil {
			t.Errorf("slow call should replay after churn: reply=%v err=%v", reply, err)
		}
	})
	sim.Run()
	if slow.calls != 1 {
		t.Errorf("slow call executed %d times, want 1 (placeholder evicted by churn?)", slow.calls)
	}
}

// TestDRCCrashMidExecution is the regression test for commit resurrecting
// wiped clients: DropDRC (the server crash path) wipes every client window
// while a call is still inside its handler; the commit on handler return
// used to go through the creating client() accessor and rebuild an empty
// drcClient for the wiped machine — a silent map leak that nothing ever
// removes, skewing the client count. Post-fix, no empty window may linger.
func TestDRCCrashMidExecution(t *testing.T) {
	d := NewDispatcher()
	svc := &slowService{delay: time.Millisecond}
	d.Register(svc)
	d.EnableDRC(8)
	sim := des.New()
	hdr := &CallHeader{XID: 7, Prog: 556, Vers: 1, Proc: 1,
		Cred: Auth{Flavor: AuthSys, Machine: "c0"}}
	raw := EncodeCall(hdr, nil)
	sim.Spawn("original", func(p *des.Proc) {
		d.Dispatch(p, raw, DispatchOpts{}) // handler runs until t=1ms
	})
	sim.SpawnAt(des.Time(100*time.Microsecond), "crash", func(p *des.Proc) {
		d.DropDRC() // crash wipes the windows mid-execution
		if n := d.DRCClients(); n != 0 {
			t.Errorf("DropDRC left %d client windows", n)
		}
	})
	sim.Run()
	// The handler returned after the wipe; its commit must not have
	// recreated the client's (now empty) window.
	if n := d.DRCClients(); n != 0 {
		t.Errorf("commit resurrected %d wiped client window(s)", n)
	}
	if n := d.DRCEntries(); n != 0 {
		t.Errorf("wiped entries linger: %d", n)
	}
	// The machine is live again as soon as it issues a fresh call.
	sim2 := des.New()
	sim2.Spawn("fresh", func(p *des.Proc) {
		if _, _, err := d.Dispatch(p, raw, DispatchOpts{}); err != nil {
			t.Errorf("post-crash dispatch failed: %v", err)
		}
	})
	sim2.Run()
	if n := d.DRCClients(); n != 1 {
		t.Errorf("fresh call after crash should rebuild the window: clients=%d", n)
	}
}

func TestDRCBounded(t *testing.T) {
	d := NewDispatcher()
	svc := &countingService{}
	d.Register(svc)
	d.EnableDRC(4)
	sim := des.New()
	sim.Spawn("t", func(p *des.Proc) {
		hdr := &CallHeader{Prog: 555, Vers: 1, Proc: 1, Cred: Auth{Flavor: AuthSys, Machine: "c"}}
		for xid := uint32(1); xid <= 10; xid++ {
			hdr.XID = xid
			d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		}
		// XID 1 was evicted: re-dispatching executes again (a real server
		// accepts this window; the cache is bounded by design).
		hdr.XID = 1
		before := svc.calls
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != before+1 {
			t.Error("evicted entry should re-execute")
		}
		// XID 10 is still cached.
		hdr.XID = 10
		before = svc.calls
		d.Dispatch(p, EncodeCall(hdr, nil), DispatchOpts{})
		if svc.calls != before {
			t.Error("recent entry should replay")
		}
	})
	sim.Run()
}
