package oncrpc

import (
	"fmt"

	"repro/internal/des"
)

// Client issues calls for one (program, version) over a Transport.
type Client struct {
	prog, vers uint32
	cred       Auth
	transport  Transport
	nextXID    uint32
}

// NewClient creates a client. The initial XID is randomized in real stacks
// to survive server reboots; the simulator seeds it from the program number
// for determinism.
func NewClient(transport Transport, prog, vers uint32, cred Auth) *Client {
	return &Client{prog: prog, vers: vers, cred: cred, transport: transport, nextXID: prog<<8 + vers}
}

// CallOpts carries the bulk-data descriptors for one call.
type CallOpts struct {
	SendBulk     *Bulk
	RecvBulk     *Bulk
	LongReplyCap int
	DirectIO     bool
}

// Call marshals and performs one RPC. It returns the inline result bytes
// and the number of payload bytes placed into opts.RecvBulk.
func (c *Client) Call(p *des.Proc, proc uint32, args []byte, opts CallOpts) (results []byte, bulkLen int, err error) {
	c.nextXID++
	xid := c.nextXID
	hdr := &CallHeader{
		XID: xid, Prog: c.prog, Vers: c.vers, Proc: proc,
		Cred: c.cred, Verf: Auth{Flavor: AuthNone},
	}
	req := &Request{
		XID:          xid,
		Header:       EncodeCall(hdr, args),
		SendBulk:     opts.SendBulk,
		RecvBulk:     opts.RecvBulk,
		LongReplyCap: opts.LongReplyCap,
		DirectIO:     opts.DirectIO,
	}
	resp, err := c.transport.Roundtrip(p, req)
	if err != nil {
		return nil, 0, err
	}
	gotXID, stat, results, err := DecodeReply(resp.Header)
	if err != nil {
		return nil, 0, err
	}
	if gotXID != xid {
		return nil, 0, fmt.Errorf("%w: got %#x want %#x", ErrXIDMismatch, gotXID, xid)
	}
	if stat != Success {
		return nil, 0, fmt.Errorf("oncrpc: call rejected: %v", stat)
	}
	return results, resp.BulkLen, nil
}

// Close shuts down the underlying transport.
func (c *Client) Close() { c.transport.Close() }

// SetTransport swaps the transport under the client, preserving the XID
// counter and credentials — the reconnect path. XID continuity matters:
// restarting XIDs after a reconnect would collide with the server's
// duplicate request cache and replay stale replies.
func (c *Client) SetTransport(t Transport) { c.transport = t }
