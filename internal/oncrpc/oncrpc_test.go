package oncrpc

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"repro/internal/des"
)

func TestCallRoundTrip(t *testing.T) {
	h := &CallHeader{
		XID: 0x1234, Prog: 100003, Vers: 3, Proc: 6,
		Cred: Auth{Flavor: AuthSys, Machine: "client0", UID: 1000, GID: 100, GIDs: []uint32{100, 2000}, Stamp: 7},
		Verf: Auth{Flavor: AuthNone},
	}
	args := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	msg := EncodeCall(h, args)
	got, gotArgs, err := DecodeCall(msg)
	if err != nil {
		t.Fatal(err)
	}
	if got.XID != h.XID || got.Prog != h.Prog || got.Vers != h.Vers || got.Proc != h.Proc {
		t.Fatalf("header = %+v", got)
	}
	if got.Cred.Flavor != AuthSys || got.Cred.UID != 1000 || got.Cred.Machine != "client0" || len(got.Cred.GIDs) != 2 {
		t.Fatalf("cred = %+v", got.Cred)
	}
	if !bytes.Equal(gotArgs, args) {
		t.Fatalf("args = %v", gotArgs)
	}
}

func TestReplyRoundTrip(t *testing.T) {
	msg := EncodeReply(0xabcd, Success, []byte{9, 9, 9, 9})
	xid, stat, res, err := DecodeReply(msg)
	if err != nil {
		t.Fatal(err)
	}
	if xid != 0xabcd || stat != Success || !bytes.Equal(res, []byte{9, 9, 9, 9}) {
		t.Fatalf("got %x %v %v", xid, stat, res)
	}
}

func TestReplyNonSuccessStatus(t *testing.T) {
	msg := EncodeReply(1, ProcUnavail, nil)
	_, stat, _, err := DecodeReply(msg)
	if err != nil || stat != ProcUnavail {
		t.Fatalf("stat=%v err=%v", stat, err)
	}
}

func TestDecodeCallRejectsReply(t *testing.T) {
	msg := EncodeReply(1, Success, nil)
	if _, _, err := DecodeCall(msg); err == nil {
		t.Fatal("decoding a reply as a call should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	h := &CallHeader{XID: 1, Prog: 2, Vers: 3, Proc: 4}
	msg := EncodeCall(h, nil)
	for i := 0; i < len(msg); i += 3 {
		if _, _, err := DecodeCall(msg[:i]); err == nil {
			t.Fatalf("truncated call at %d decoded successfully", i)
		}
	}
}

func TestQuickCallHeaderRoundTrip(t *testing.T) {
	f := func(xid, prog, vers, proc, uid, gid uint32, machine string, args []byte) bool {
		h := &CallHeader{
			XID: xid, Prog: prog, Vers: vers, Proc: proc,
			Cred: Auth{Flavor: AuthSys, Machine: machine, UID: uid, GID: gid},
		}
		msg := EncodeCall(h, args)
		got, gotArgs, err := DecodeCall(msg)
		if err != nil {
			return false
		}
		return got.XID == xid && got.Prog == prog && got.Vers == vers &&
			got.Proc == proc && got.Cred.UID == uid && got.Cred.Machine == machine &&
			bytes.Equal(gotArgs, args)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// echoService reflects args back as results for transport-level tests.
type echoService struct{}

func (echoService) Name() string    { return "echo" }
func (echoService) Program() uint32 { return 777 }
func (echoService) Version() uint32 { return 1 }
func (echoService) Handle(p *des.Proc, req *ServerRequest) *ServerResponse {
	res := append([]byte(nil), req.Args...)
	var bulk *Bulk
	if req.Bulk != nil {
		bulk = &Bulk{Data: req.Bulk.Data, Len: req.Bulk.Len}
	}
	return &ServerResponse{Stat: Success, Results: res, Bulk: bulk}
}

// loopbackTransport dispatches calls directly, with no simulated network.
type loopbackTransport struct {
	d *Dispatcher
}

func (lt *loopbackTransport) Roundtrip(p *des.Proc, req *Request) (*Response, error) {
	reply, bulkOut, err := lt.d.Dispatch(p, req.Header, DispatchOpts{Bulk: req.SendBulk, RecvBulkCap: bulkCap(req)})
	if err != nil {
		return nil, err
	}
	n := 0
	if bulkOut != nil && req.RecvBulk != nil {
		n = bulkOut.Len
		if req.RecvBulk.Data != nil && bulkOut.Data != nil {
			copy(req.RecvBulk.Data, bulkOut.Data)
		}
	}
	return &Response{Header: reply, BulkLen: n}, nil
}

func bulkCap(req *Request) int {
	if req.RecvBulk == nil {
		return 0
	}
	return req.RecvBulk.Len
}

func (lt *loopbackTransport) Close() {}

func TestClientDispatcherLoopback(t *testing.T) {
	d := NewDispatcher()
	d.Register(echoService{})
	c := NewClient(&loopbackTransport{d: d}, 777, 1, Auth{Flavor: AuthNone})
	sim := des.New()
	sim.Spawn("caller", func(p *des.Proc) {
		res, n, err := c.Call(p, 5, []byte("ping"), CallOpts{
			SendBulk: NewBulk([]byte("payload")),
			RecvBulk: &Bulk{Data: make([]byte, 64), Len: 64},
		})
		if err != nil {
			t.Errorf("call: %v", err)
			return
		}
		if string(res) != "ping" {
			t.Errorf("results = %q", res)
		}
		if n != 7 {
			t.Errorf("bulk len = %d", n)
		}
	})
	sim.Run()
}

func TestDispatcherUnknownProgram(t *testing.T) {
	d := NewDispatcher()
	c := NewClient(&loopbackTransport{d: d}, 999, 1, Auth{})
	sim := des.New()
	sim.Spawn("caller", func(p *des.Proc) {
		_, _, err := c.Call(p, 1, nil, CallOpts{})
		if err == nil {
			t.Error("unknown program should fail")
		}
	})
	sim.Run()
}

func TestXIDsIncrease(t *testing.T) {
	d := NewDispatcher()
	d.Register(echoService{})
	lt := &loopbackTransport{d: d}
	c := NewClient(lt, 777, 1, Auth{})
	sim := des.New()
	var xids []uint32
	origRoundtrip := lt.d
	_ = origRoundtrip
	sim.Spawn("caller", func(p *des.Proc) {
		for i := 0; i < 5; i++ {
			before := c.nextXID
			if _, _, err := c.Call(p, 1, nil, CallOpts{}); err != nil {
				t.Errorf("call %d: %v", i, err)
			}
			if c.nextXID != before+1 {
				t.Errorf("xid did not advance")
			}
			xids = append(xids, c.nextXID)
		}
	})
	sim.Run()
	for i := 1; i < len(xids); i++ {
		if xids[i] <= xids[i-1] {
			t.Fatalf("xids not strictly increasing: %v", xids)
		}
	}
}

func TestDeniedReplyDecode(t *testing.T) {
	// Hand-construct a denied reply.
	e := encodeDenied(42)
	_, _, _, err := DecodeReply(e)
	if !errors.Is(err, ErrDenied) {
		t.Fatalf("err = %v, want ErrDenied", err)
	}
}

func encodeDenied(xid uint32) []byte {
	b := EncodeReply(xid, Success, nil)
	// Patch reply_stat (offset 8) to denied.
	b[8], b[9], b[10], b[11] = 0, 0, 0, 1
	return b
}
