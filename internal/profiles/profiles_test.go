package profiles

import (
	"testing"
)

func TestProfilesConstructNodes(t *testing.T) {
	for _, p := range []Profile{SolarisSDR(), LinuxSDR(), LinuxDDR()} {
		if p.Name == "" {
			t.Error("profile without a name")
		}
		if p.Client.Cores <= 0 || p.Server.Cores <= 0 {
			t.Errorf("%s: missing cores", p.Name)
		}
		if p.Client.PortBandwidth <= 0 || p.Server.PortBandwidth <= 0 {
			t.Errorf("%s: missing port bandwidth", p.Name)
		}
		if p.Client.MaxORD != 8 || p.Server.MaxORD != 8 {
			t.Errorf("%s: IRD/ORD must be the Mellanox limit of 8", p.Name)
		}
		if p.NFSPerOpCPU <= 0 {
			t.Errorf("%s: NFS per-op CPU unset", p.Name)
		}
	}
}

func TestRegistrationCostOrdering(t *testing.T) {
	// The calibration must preserve the paper's cost hierarchy:
	// full registration > FMR map > (all-physical: zero).
	for _, p := range []Profile{SolarisSDR(), LinuxSDR()} {
		n := p.Server
		regPerPage := n.RegPerPageBus
		fmrPerPage := n.FMRMapPerPageBus
		if fmrPerPage >= regPerPage {
			t.Errorf("%s: FMR per-page bus (%v) must be cheaper than regular (%v)",
				p.Name, fmrPerPage, regPerPage)
		}
	}
}

func TestLinuxFasterStackThanSolaris(t *testing.T) {
	sol, lin := SolarisSDR(), LinuxSDR()
	if lin.RDMAServer.SerialBase >= sol.RDMAServer.SerialBase {
		t.Error("the Linux stack must have a smaller serialized base than the Solaris taskq")
	}
	if !sol.RDMAServer.SerializeSyncRead {
		t.Error("the Solaris profile models the serialized synchronous RDMA Read wait")
	}
	if lin.RDMAServer.SerializeSyncRead {
		t.Error("the Linux profile has independent svc threads")
	}
}

func TestDDRUpgradesWireAndDisk(t *testing.T) {
	sdr, ddr := LinuxSDR(), LinuxDDR()
	if ddr.Server.PortBandwidth <= sdr.Server.PortBandwidth {
		t.Error("DDR must be faster than SDR")
	}
	if ddr.Disk.Disks != 8 || ddr.Disk.DiskBandwidth != 30e6 {
		t.Errorf("DDR disk array must be the paper's 8 x 30 MB/s: %+v", ddr.Disk)
	}
	if ddr.PageCacheBytes <= 0 {
		t.Error("DDR profile needs a default page-cache size")
	}
}

func TestTCPBaselineProfiles(t *testing.T) {
	ipoib, gige := ipoibTCP(), GigETCP()
	if ipoib.SoftirqNsPerByte <= gige.SoftirqNsPerByte {
		t.Error("IPoIB's stack must be heavier per byte than GigE's")
	}
	if gige.IncastPenalty <= 0 {
		t.Error("GigE models multi-client incast degradation")
	}
	if GigEPortBandwidth != 125e6 {
		t.Error("GigE port must be 125 MB/s theoretical")
	}
}
