// Package profiles holds the named cost-model calibrations that stand in
// for the paper's testbeds. Absolute constants are calibrated so that the
// simulated curves reproduce the published *shapes* (who wins, rough
// factors, crossovers) — see EXPERIMENTS.md for the paper-vs-measured
// comparison. Every constant is documented with the mechanism it models.
package profiles

import (
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/rpcrdma"
	"repro/internal/tcpsim"
	"repro/internal/vfs"
)

// Profile is one complete testbed calibration.
type Profile struct {
	Name string

	// Client and Server are node templates (Name and Seed are filled in by
	// the cluster builder).
	Client ibsim.NodeConfig
	Server ibsim.NodeConfig

	// RDMAClient / RDMAServer configure the RPC/RDMA endpoints.
	RDMAClient rpcrdma.Config
	RDMAServer rpcrdma.Config

	// TCP configures the stream-baseline endpoints.
	TCP tcpsim.Config

	// NFSPerOpCPU is the NFS+VFS processing cost per procedure at the
	// server.
	NFSPerOpCPU des.Duration

	// Disk is the back-end array (multi-client experiments).
	Disk vfs.DiskArrayConfig

	// PageCacheBytes is the default server page-cache capacity for the
	// disk back end (overridable per experiment: the paper uses 4 GB and
	// 8 GB server configurations, minus OS overhead).
	PageCacheBytes int64
}

// SolarisSDR models the paper's §5.1/§5.2 testbed: dual-core Opteron x2100
// hosts, x8 PCI-Express SDR InfiniBand (~900 MB/s practical), OpenSolaris
// NFS/RDMA stack.
//
// Key calibrated mechanisms:
//   - RegPerPageBus ≈ 6 µs: each TPT entry install is an I/O-bus
//     transaction on the HCA's serial TPT engine. This bounds dynamic
//     registration throughput at ~PageSize/6.4µs ≈ 580 MB/s of *registered*
//     bytes regardless of record size — combined with the taskq costs below
//     it produces the flat ~350-400 MB/s saturation of Figs. 5-7.
//   - FMRMapPerPageBus ≈ 4.5 µs: FMR skips tag allocation but still writes
//     entries; modestly faster, as measured (Fig. 7: 350 → 400 MB/s).
//   - SerialBase/SerialPerByteNs: the single RPC/RDMA send taskq of the
//     OpenSolaris stack (Figure 1); its per-byte component caps the
//     registration-cache configuration at ~700-750 MB/s (Fig. 7).
//   - SerializeSyncRead: the Solaris server blocks its taskq on the
//     synchronous RDMA Read of write chunks, depressing WRITE throughput
//     relative to READ (Figs. 6, 7b).
func SolarisSDR() Profile {
	node := ibsim.NodeConfig{
		Cores:                2, // one dual-core Opteron
		PortBandwidth:        900e6,
		PortLatency:          4 * time.Microsecond,
		MaxORD:               8,
		WQEOverhead:          500 * time.Nanosecond,
		ReadResponseOverhead: 12 * time.Microsecond,

		RegPerPageCPU:    800 * time.Nanosecond,
		RegBase:          25 * time.Microsecond,
		RegPerPageBus:    5 * time.Microsecond,
		DeregPerPageCPU:  300 * time.Nanosecond,
		DeregBase:        10 * time.Microsecond,
		DeregPerPageBus:  400 * time.Nanosecond,
		FMRMapCPU:        500 * time.Nanosecond,
		FMRMapPerPageBus: 4500 * time.Nanosecond,

		// Opteron-era memory system: ~0.8 GB/s effective touch-copy rate.
		CopyNsPerByte: 1.2,
		InterruptCost: 6 * time.Microsecond,
		SyscallCost:   1500 * time.Nanosecond,
		MeanPhysRun:   32 << 10,
	}
	client, server := node, node
	return Profile{
		Name:   "solaris-sdr",
		Client: client,
		Server: server,
		RDMAClient: rpcrdma.Config{
			PerOpCPU:   12 * time.Microsecond,
			SerialBase: 25 * time.Microsecond,
		},
		RDMAServer: rpcrdma.Config{
			PerOpCPU:          15 * time.Microsecond,
			Workers:           16,
			SerialBase:        25 * time.Microsecond,
			SerialPerByteNs:   0.75,
			SerializeSyncRead: true,
		},
		TCP:         ipoibTCP(),
		NFSPerOpCPU: 18 * time.Microsecond,
		Disk:        vfs.DiskArrayConfig{},
	}
}

// LinuxSDR models the Linux NFS/RDMA port on the same SDR hardware
// (§5.2 / Fig. 9): faster host stack (3.6 GHz Xeons in the paper's later
// runs; independent svc threads, no global taskq), so the stack ceiling is
// close to the 900 MB/s wire and the registration mode dominates.
func LinuxSDR() Profile {
	node := ibsim.NodeConfig{
		Cores:                4, // dual 3.6 GHz Xeon with HT
		PortBandwidth:        900e6,
		PortLatency:          3 * time.Microsecond,
		MaxORD:               8,
		WQEOverhead:          400 * time.Nanosecond,
		ReadResponseOverhead: 12 * time.Microsecond,

		RegPerPageCPU:    500 * time.Nanosecond,
		RegBase:          15 * time.Microsecond,
		RegPerPageBus:    5 * time.Microsecond,
		DeregPerPageCPU:  200 * time.Nanosecond,
		DeregBase:        8 * time.Microsecond,
		DeregPerPageBus:  300 * time.Nanosecond,
		FMRMapCPU:        400 * time.Nanosecond,
		FMRMapPerPageBus: 4500 * time.Nanosecond,

		CopyNsPerByte: 0.7,
		InterruptCost: 4 * time.Microsecond,
		SyscallCost:   1 * time.Microsecond,
		MeanPhysRun:   32 << 10,
	}
	return Profile{
		Name:   "linux-sdr",
		Client: node,
		Server: node,
		RDMAClient: rpcrdma.Config{
			PerOpCPU: 8 * time.Microsecond,
		},
		RDMAServer: rpcrdma.Config{
			PerOpCPU:        10 * time.Microsecond,
			Workers:         16,
			SerialBase:      8 * time.Microsecond,
			SerialPerByteNs: 0.05,
		},
		TCP:         ipoibTCP(),
		NFSPerOpCPU: 12 * time.Microsecond,
		Disk:        vfs.DiskArrayConfig{},
	}
}

// LinuxDDR models the §5.3 multi-client testbed: dual 3.6 GHz Xeon hosts
// with DDR HCAs (~1500 MB/s practical per port), eight 30 MB/s SCSI disks
// in RAID-0 under XFS, server page cache of 4 or 8 GB.
func LinuxDDR() Profile {
	p := LinuxSDR()
	p.Name = "linux-ddr"
	p.Client.PortBandwidth = 1500e6
	p.Server.PortBandwidth = 1500e6
	// Fig. 10 runs the all-physical mode; the NFS/RDMA stack tops out a bit
	// above 900 MB/s on these hosts (the paper's sustained number), which
	// the per-byte stack cost reproduces.
	p.RDMAServer.SerialPerByteNs = 1.13
	p.RDMAServer.SerialBase = 10 * time.Microsecond
	p.Disk = vfs.DiskArrayConfig{
		Disks:         8,
		StripeSize:    64 << 10,
		DiskBandwidth: 30e6,
		SeekTime:      4 * time.Millisecond,
	}
	p.PageCacheBytes = 3 << 30 // 4 GB server minus kernel/daemons
	return p
}

// ipoibTCP is the NFS/TCP-over-IPoIB cost set: the wire is the InfiniBand
// port, but every byte crosses both host stacks (two copies + checksum per
// side), which is what pins the aggregate near 330-360 MB/s (§5.3).
func ipoibTCP() tcpsim.Config {
	return tcpsim.Config{
		MSS:              16 << 10, // IPoIB connected-mode large MTU
		FrameOverhead:    58,
		PerSegmentCPU:    3 * time.Microsecond,
		CopiesPerByte:    2,
		SoftirqNsPerByte: 2.6,
		PerOpCPU:         20 * time.Microsecond,
		Workers:          16,
	}
}

// GigETCP is the Gigabit Ethernet baseline: 125 MB/s theoretical, ~107
// effective after frame overhead, with an incast penalty that degrades
// aggregate throughput as client count grows (Fig. 10a).
func GigETCP() tcpsim.Config {
	return tcpsim.Config{
		MSS:              1448,
		FrameOverhead:    78,
		PerSegmentCPU:    500 * time.Nanosecond,
		CopiesPerByte:    1,
		SoftirqNsPerByte: 0.2,
		IncastPenalty:    0.06,
		PerOpCPU:         20 * time.Microsecond,
		Workers:          16,
	}
}

// GigEPortBandwidth is the node port speed for the GigE baseline.
const GigEPortBandwidth = 125e6

// GigEPortLatency is the one-way latency for the GigE baseline.
const GigEPortLatency = 40 * time.Microsecond
