package des

import (
	"runtime"
	"testing"
	"time"
)

// settleGoroutines polls until the goroutine count drops to want or a
// deadline passes; unwound process goroutines exit asynchronously after the
// final scheduler handshake, so an immediate count can transiently read
// high.
func settleGoroutines(t *testing.T, want int) int {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= want || time.Now().After(deadline) {
			return n
		}
		time.Sleep(time.Millisecond)
	}
}

// TestRunUntilUnwindsAllBlockedShapes stops a simulation while processes
// are blocked in every way the kernel knows — parked on an event, parked on
// a sleep, queue-blocked, resource-blocked, and spawned-but-never-started —
// and asserts that all of their goroutines terminate and their deferred
// cleanup runs.
func TestRunUntilUnwindsAllBlockedShapes(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New()
	ev := NewEvent(s)     // never fired
	q := NewQueue(s, "q") // never put
	r := NewResource(s, "r", 1)

	cleaned := make(map[string]bool)
	shape := func(name string, fn func(p *Proc)) {
		s.Spawn(name, func(p *Proc) {
			defer func() { cleaned[name] = true }()
			fn(p)
			t.Errorf("%s resumed normally after stop", name)
		})
	}
	shape("event-parked", func(p *Proc) { ev.Wait(p) })
	shape("sleeper", func(p *Proc) { p.Sleep(time.Hour) })
	shape("queue-blocked", func(p *Proc) { q.Get(p) })
	shape("holder-then-sleep", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(time.Hour)
	})
	shape("resource-blocked", func(p *Proc) {
		p.Sleep(1) // let holder-then-sleep take the unit first
		r.Acquire(p, 1)
	})
	neverStarted := false
	s.SpawnAt(Time(time.Hour), "never-started", func(p *Proc) { neverStarted = true })

	s.RunUntil(Time(time.Minute))

	for _, name := range []string{"event-parked", "sleeper", "queue-blocked", "holder-then-sleep", "resource-blocked"} {
		if !cleaned[name] {
			t.Errorf("%s: deferred cleanup did not run", name)
		}
	}
	if neverStarted {
		t.Error("never-started process body ran")
	}
	if after := settleGoroutines(t, before); after > before {
		t.Errorf("goroutine leak: %d before, %d after unwind", before, after)
	}
}

// TestStopMidRunLeaksNothing stops from inside an event while other
// processes are parked and pending events remain queued.
func TestStopMidRunLeaksNothing(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New()
	for i := 0; i < 50; i++ {
		s.Spawn("sleeper", func(p *Proc) {
			for {
				p.Sleep(time.Millisecond)
			}
		})
	}
	s.Spawn("stopper", func(p *Proc) {
		p.Sleep(10 * time.Millisecond)
		s.Stop()
	})
	s.Run()
	if after := settleGoroutines(t, before); after > before {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestAbandonedReportedOnUnwind verifies processes observe Abandoned from
// deferred cleanup when the run loop exits with them parked.
func TestAbandonedReportedOnUnwind(t *testing.T) {
	s := New()
	var sawAbandoned bool
	s.Spawn("stuck", func(p *Proc) {
		defer func() { sawAbandoned = p.Abandoned() }()
		NewEvent(s).Wait(p)
	})
	s.Spawn("stopper", func(p *Proc) { s.Stop() })
	s.Run()
	if !sawAbandoned {
		t.Fatal("parked process did not report Abandoned after unwind")
	}
}

// TestUnwindIsDeterministic runs the same stop-heavy simulation twice and
// asserts the unwind visits processes in the same order (the seed kernel
// unwound never-started processes in map iteration order).
func TestUnwindIsDeterministic(t *testing.T) {
	run := func() []string {
		s := New()
		var order []string
		for i := 0; i < 8; i++ {
			name := string(rune('a' + i))
			s.SpawnAt(Time(time.Hour), name, func(p *Proc) {})
			s.Spawn(name+"-parked", func(p *Proc) {
				defer func() { order = append(order, p.Name()) }()
				NewEvent(s).Wait(p)
			})
		}
		s.Spawn("stopper", func(p *Proc) { p.Sleep(1); s.Stop() })
		s.Run()
		return order
	}
	a, b := run(), run()
	if len(a) != 8 {
		t.Fatalf("unwound %d parked processes, want 8", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("unwind order diverged:\n%v\n%v", a, b)
		}
	}
}
