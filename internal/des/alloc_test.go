package des

import (
	"testing"
)

// TestKernelBenchmarksAllocFree pins the kernel's allocation contract with
// tracing disabled (the default): every BenchmarkKernel* hot path runs at
// 0 allocs/op. The tracing layer must remain a nil-check when off — a
// regression here means an instrumentation site allocates even when no
// tracer is installed.
func TestKernelBenchmarksAllocFree(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark-driven; skipped in -short")
	}
	benches := []struct {
		name string
		fn   func(*testing.B)
		max  int64 // EventFire's fresh one-shot Event grows a waiters slice per op
	}{
		{"ScheduleResume", BenchmarkKernelScheduleResume, 0},
		{"QueuePutGet", BenchmarkKernelQueuePutGet, 0},
		{"EventFire", BenchmarkKernelEventFire, 1},
		{"Resource", BenchmarkKernelResource, 0},
		{"TimerHeap", BenchmarkKernelTimerHeap, 0},
	}
	for _, b := range benches {
		b := b
		t.Run(b.name, func(t *testing.T) {
			r := testing.Benchmark(b.fn)
			if allocs := r.AllocsPerOp(); allocs > b.max {
				t.Fatalf("BenchmarkKernel%s: %d allocs/op with tracing disabled, want <= %d", b.name, allocs, b.max)
			}
		})
	}
}
