package des

// Ring is a growable FIFO ring buffer with a power-of-two backing array.
//
// It replaces the `q = q[1:]` front-pop idiom used by queues and waiter
// lists, which has two defects at scale: every pop is O(1) but the backing
// array's dead prefix can never be reclaimed while the slice lives, and the
// popped slots keep their element references alive, pinning arbitrarily
// large object graphs. Ring pops zero the vacated slot and reuse the array
// circularly, so steady-state operation allocates nothing and retains
// nothing.
//
// The zero value is an empty ring ready for use. Ring is not safe for
// concurrent use; like everything in this package it relies on the
// kernel's one-at-a-time execution discipline.
type Ring[T any] struct {
	buf  []T // len(buf) is always zero or a power of two
	head int // index of the oldest element
	n    int // number of live elements
}

// Len returns the number of buffered elements.
func (r *Ring[T]) Len() int { return r.n }

// Push appends v at the tail.
func (r *Ring[T]) Push(v T) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = v
	r.n++
}

// Pop removes and returns the oldest element, zeroing its slot so the ring
// drops its reference. It panics on an empty ring.
func (r *Ring[T]) Pop() T {
	if r.n == 0 {
		panic("des: Pop from empty ring")
	}
	var zero T
	v := r.buf[r.head]
	r.buf[r.head] = zero
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return v
}

// Peek returns the oldest element without removing it. It panics on an
// empty ring.
func (r *Ring[T]) Peek() T {
	if r.n == 0 {
		panic("des: Peek at empty ring")
	}
	return r.buf[r.head]
}

// grow doubles the backing array (minimum 8) and linearizes the live
// elements to the front.
func (r *Ring[T]) grow() {
	size := 2 * len(r.buf)
	if size == 0 {
		size = 8
	}
	nb := make([]T, size)
	mask := len(r.buf) - 1
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)&mask]
	}
	r.buf = nb
	r.head = 0
}
