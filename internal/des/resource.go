package des

// Resource is a FIFO counting semaphore with utilization accounting.
// It models contended hardware: CPU cores, a DMA engine, a disk, the
// transmit side of a network port. Acquire blocks until the requested
// units are available; requests are granted strictly in arrival order
// (no barging), which keeps simulations deterministic and models the
// in-order hardware queues the paper's analysis depends on.
type Resource struct {
	sim      *Sim
	name     string
	capacity int
	inUse    int
	waiters  Ring[resWaiter]

	// busy accounting: integral of inUse over time, for utilization
	// reports. busyIntegral covers [accounting start, lastChange];
	// lastChange is the time of the last occupancy *change* (or reset), so
	// the integral over (lastChange, now] is the exact linear segment
	// inUse × elapsed and windowed queries within it stay exact.
	busyIntegral float64 // unit-seconds
	lastChange   Time
}

type resWaiter struct {
	proc *Proc
	n    int
}

// NewResource creates a resource with the given capacity (must be > 0).
func NewResource(s *Sim, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic("des: resource capacity must be positive")
	}
	return &Resource{sim: s, name: name, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// accumulate folds the elapsed interval into the busy integral.
func (r *Resource) accumulate() {
	now := r.sim.now
	r.busyIntegral += float64(r.inUse) * Time(now-r.lastChange).Seconds()
	r.lastChange = now
}

// Acquire blocks p until n units are available and takes them.
// n must be between 1 and the capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic("des: invalid acquire count for resource " + r.name)
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		return
	}
	r.waiters.Push(resWaiter{proc: p, n: n})
	p.park()
}

// TryAcquire takes n units if immediately available and no earlier waiter is
// queued; it reports whether it succeeded.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		panic("des: invalid acquire count for resource " + r.name)
	}
	if r.waiters.Len() == 0 && r.inUse+n <= r.capacity {
		r.accumulate()
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and hands them to queued waiters in FIFO order.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic("des: invalid release count for resource " + r.name)
	}
	r.accumulate()
	r.inUse -= n
	s := r.sim
	for r.waiters.Len() > 0 {
		w := r.waiters.Peek()
		if r.inUse+w.n > r.capacity {
			break // strict FIFO: do not let later small requests overtake
		}
		r.waiters.Pop()
		r.inUse += w.n
		s.wake(w.proc)
	}
}

// Use acquires n units, sleeps for d, and releases: the common
// "occupy the device for a service time" pattern.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// BusySeconds returns the integral of units-in-use over virtual time, in
// unit-seconds, up to the current instant. It does not disturb lastChange,
// so windowed queries keep their exact current segment.
func (r *Resource) BusySeconds() float64 {
	return r.busyIntegral + float64(r.inUse)*Time(r.sim.now-r.lastChange).Seconds()
}

// BusySecondsSince returns unit-seconds consumed in [start, now). The
// result is exact when start falls inside the current linear segment (no
// occupancy change since start) — which covers the common "snapshot after
// the work finished" window — and is otherwise the total integral clamped
// to the window's physical maximum (capacity × elapsed), since the
// occupancy step history before the segment is not retained.
func (r *Resource) BusySecondsSince(start Time) float64 {
	now := r.sim.now
	if start <= 0 {
		return r.BusySeconds()
	}
	if start >= r.lastChange {
		return float64(r.inUse) * Time(now-start).Seconds()
	}
	busy := r.BusySeconds()
	if max := float64(r.capacity) * Time(now-start).Seconds(); busy > max {
		return max
	}
	return busy
}

// Utilization returns average utilization (0..1) over the window from start
// to the current virtual time (see BusySecondsSince for window semantics).
func (r *Resource) Utilization(start Time) float64 {
	elapsed := Time(r.sim.now - start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return r.BusySecondsSince(start) / (float64(r.capacity) * elapsed)
}

// ResetAccounting zeroes the busy integral; utilization windows then start
// from the current virtual time.
func (r *Resource) ResetAccounting() {
	r.busyIntegral = 0
	r.lastChange = r.sim.now
}
