package des

import (
	"testing"
)

func TestRingFIFOAcrossGrowthAndWrap(t *testing.T) {
	var r Ring[int]
	next, want := 0, 0
	// Interleave pushes and pops so the window slides across several
	// wrap-arounds and two growth steps.
	for round := 0; round < 200; round++ {
		for i := 0; i < 3; i++ {
			r.Push(next)
			next++
		}
		for i := 0; i < 2; i++ {
			if got := r.Pop(); got != want {
				t.Fatalf("Pop = %d, want %d", got, want)
			}
			want++
		}
	}
	if r.Len() != next-want {
		t.Fatalf("Len = %d, want %d", r.Len(), next-want)
	}
	for r.Len() > 0 {
		if got := r.Pop(); got != want {
			t.Fatalf("drain Pop = %d, want %d", got, want)
		}
		want++
	}
	if want != next {
		t.Fatalf("drained %d items, pushed %d", want, next)
	}
}

func TestRingPeek(t *testing.T) {
	var r Ring[string]
	r.Push("a")
	r.Push("b")
	if r.Peek() != "a" {
		t.Fatalf("Peek = %q", r.Peek())
	}
	if r.Pop() != "a" || r.Peek() != "b" {
		t.Fatal("Peek after Pop wrong")
	}
}

func TestRingEmptyOpsPanic(t *testing.T) {
	for _, op := range []struct {
		name string
		fn   func(*Ring[int])
	}{
		{"Pop", func(r *Ring[int]) { r.Pop() }},
		{"Peek", func(r *Ring[int]) { r.Peek() }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on empty ring did not panic", op.name)
				}
			}()
			var r Ring[int]
			op.fn(&r)
		}()
	}
}

// TestRingPopDropsReferences is the memory-retention regression test for
// the old `q = q[1:]` idiom: after Pop, no slot of the backing array may
// still reference the popped element.
func TestRingPopDropsReferences(t *testing.T) {
	var r Ring[*int]
	for i := 0; i < 20; i++ {
		v := i
		r.Push(&v)
	}
	for r.Len() > 0 {
		r.Pop()
	}
	for i, p := range r.buf {
		if p != nil {
			t.Fatalf("buf[%d] still references a popped element", i)
		}
	}
}

// TestQueueGetDropsReferences asserts the same property through the Queue
// API: delivered items must not be pinned by the queue's internal storage
// (the seed's items[1:] re-slicing kept every delivered item reachable).
func TestQueueGetDropsReferences(t *testing.T) {
	s := New()
	q := NewQueue(s, "ret")
	s.Spawn("prod", func(p *Proc) {
		for i := 0; i < 40; i++ {
			buf := make([]byte, 1<<10)
			q.Put(&buf)
			if i%8 == 0 {
				p.Sleep(1) // force getter park/wake interleavings
			}
		}
	})
	s.Spawn("cons", func(p *Proc) {
		for i := 0; i < 40; i++ {
			q.Get(p)
		}
	})
	s.Run()
	if q.items.Len() != 0 {
		t.Fatalf("queue not drained: %d left", q.items.Len())
	}
	for i, v := range q.items.buf {
		if v != nil {
			t.Fatalf("items.buf[%d] still references a delivered item", i)
		}
	}
	for i, p := range q.getters.buf {
		if p != nil {
			t.Fatalf("getters.buf[%d] still references a woken process", i)
		}
	}
}

// TestResourceWaiterSlotsCleared asserts the resource waiter ring drops
// process references once waiters are granted.
func TestResourceWaiterSlotsCleared(t *testing.T) {
	s := New()
	r := NewResource(s, "res", 1)
	for i := 0; i < 12; i++ {
		s.Spawn("w", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(1)
			r.Release(1)
		})
	}
	s.Run()
	if r.waiters.Len() != 0 {
		t.Fatalf("waiters not drained: %d left", r.waiters.Len())
	}
	for i, w := range r.waiters.buf {
		if w.proc != nil {
			t.Fatalf("waiters.buf[%d] still references a granted process", i)
		}
	}
}
