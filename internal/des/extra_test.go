package des

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestTryAcquire(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 2)
	s.Spawn("p", func(p *Proc) {
		if !r.TryAcquire(2) {
			t.Error("try on idle resource failed")
		}
		if r.TryAcquire(1) {
			t.Error("try on full resource succeeded")
		}
		r.Release(2)
		if !r.TryAcquire(1) {
			t.Error("try after release failed")
		}
		r.Release(1)
	})
	s.Run()
}

func TestTryAcquireNoBargePastWaiters(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 1)
	s.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 1)
		p.Sleep(100)
		r.Release(1)
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 1) // queued behind holder
		r.Release(1)
	})
	s.Spawn("barger", func(p *Proc) {
		p.Sleep(2)
		if r.TryAcquire(1) {
			t.Error("TryAcquire barged past a queued waiter")
			r.Release(1)
		}
	})
	s.Run()
}

func TestResourceUse(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 1)
	var end Time
	s.Spawn("u", func(p *Proc) {
		r.Use(p, 1, 42*time.Nanosecond)
		end = p.Now()
	})
	s.Run()
	if end != 42 {
		t.Fatalf("end = %v", end)
	}
	if r.InUse() != 0 {
		t.Fatal("resource not released by Use")
	}
}

func TestTraceSink(t *testing.T) {
	s := New()
	var sb strings.Builder
	s.SetTrace(func(at Time, format string, args ...any) {
		fmt.Fprintf(&sb, "%d ", at)
		fmt.Fprintf(&sb, format+"\n", args...)
	})
	s.Spawn("worker", func(p *Proc) {
		p.Sleep(7)
		p.Logf("did %s", "thing")
	})
	s.Run()
	if !strings.Contains(sb.String(), "7 [worker] did thing") {
		t.Fatalf("trace = %q", sb.String())
	}
}

func TestWaitAllMixedFiredState(t *testing.T) {
	s := New()
	a, b, c := NewEvent(s), NewEvent(s), NewEvent(s)
	done := false
	s.Spawn("firer", func(p *Proc) {
		a.Fire(nil) // already fired before anyone waits
		p.Sleep(10)
		b.Fire(nil)
		p.Sleep(10)
		c.Fire(nil)
	})
	s.Spawn("waiter", func(p *Proc) {
		p.Sleep(1)
		WaitAll(p, a, b, c)
		if p.Now() != 20 {
			t.Errorf("woke at %v, want 20", p.Now())
		}
		done = true
	})
	s.Run()
	if !done {
		t.Fatal("WaitAll never completed")
	}
}

func TestQueueTryGet(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	s.Spawn("p", func(p *Proc) {
		if _, ok := q.TryGet(); ok {
			t.Error("TryGet on empty queue succeeded")
		}
		q.Put(5)
		v, ok := q.TryGet()
		if !ok || v != 5 {
			t.Errorf("TryGet = %v %v", v, ok)
		}
	})
	s.Run()
}

func TestYieldOrdersBehindSameTimeEvents(t *testing.T) {
	s := New()
	var order []string
	s.Spawn("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	s.Spawn("b", func(p *Proc) {
		order = append(order, "b1")
	})
	s.Run()
	want := "[a1 b1 a2]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1_500_000_000)
	if tm.Seconds() != 1.5 {
		t.Errorf("Seconds = %v", tm.Seconds())
	}
	if tm.Micros() != 1.5e6 {
		t.Errorf("Micros = %v", tm.Micros())
	}
	if tm.String() != "1.5s" {
		t.Errorf("String = %q", tm.String())
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRand(3)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
