package des

// The pending-event set is an inlined 4-ary heap ordered by (at, seq).
//
// A 4-ary heap halves the tree depth of a binary heap, trading a few extra
// comparisons per level for far fewer cache-missing hops — the classic win
// for priority queues whose elements are pointers. Inlining the sift loops
// (instead of going through container/heap's interface) removes the
// dynamic dispatch and the any-boxing of Push/Pop, which together with the
// event free list makes the schedule→resume path allocation-free.

// eventKind discriminates what firing an event does. The dominant kinds
// target a *Proc directly so no closure is ever allocated.
type eventKind uint8

const (
	// evSleep resumes a process that parked itself via Sleep: the kernel
	// unparks it at fire time (nothing else can wake a sleeper).
	evSleep eventKind = iota
	// evResume resumes a process a primitive (Queue, Event, Resource, ...)
	// has already unparked; the wake-up was scheduled at unpark time.
	evResume
	// evStart performs the first resume of a freshly spawned process.
	evStart
)

// event is a scheduled kernel action. Instances are recycled through
// Sim.free once popped or cancelled, so steady-state scheduling does not
// allocate.
type event struct {
	at    Time
	seq   int64 // tie-breaker: schedule order
	proc  *Proc
	index int // heap index, -1 when popped/cancelled
	kind  eventKind
}

// eventLess orders events by virtual time, then schedule order.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// heapPush inserts e into the pending set.
func (s *Sim) heapPush(e *event) {
	s.queue = append(s.queue, e)
	s.siftUp(len(s.queue)-1, e)
}

// heapPop removes and returns the earliest event.
func (s *Sim) heapPop() *event {
	q := s.queue
	e := q[0]
	n := len(q) - 1
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if n > 0 {
		s.siftDown(0, last)
	}
	e.index = -1
	return e
}

// heapRemove deletes the event at heap index i (for cancellation).
func (s *Sim) heapRemove(i int) {
	q := s.queue
	n := len(q) - 1
	e := q[i]
	last := q[n]
	q[n] = nil
	s.queue = q[:n]
	if i < n {
		s.siftDown(i, last)
		if s.queue[i] == last {
			s.siftUp(i, last)
		}
	}
	e.index = -1
}

// siftUp places e at index i, moving parents down while they sort after e.
func (s *Sim) siftUp(i int, e *event) {
	q := s.queue
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(e, q[parent]) {
			break
		}
		q[i] = q[parent]
		q[i].index = i
		i = parent
	}
	q[i] = e
	e.index = i
}

// siftDown places e at index i, promoting the smallest child while it sorts
// before e.
func (s *Sim) siftDown(i int, e *event) {
	q := s.queue
	n := len(q)
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		best := first
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if eventLess(q[c], q[best]) {
				best = c
			}
		}
		if !eventLess(q[best], e) {
			break
		}
		q[i] = q[best]
		q[i].index = i
		i = best
	}
	q[i] = e
	e.index = i
}
