package des

import (
	"fmt"
	"testing"
	"time"
)

func TestSleepOrdering(t *testing.T) {
	s := New()
	var log []string
	s.Spawn("a", func(p *Proc) {
		p.Sleep(10 * time.Nanosecond)
		log = append(log, fmt.Sprintf("a@%d", p.Now()))
		p.Sleep(20 * time.Nanosecond)
		log = append(log, fmt.Sprintf("a@%d", p.Now()))
	})
	s.Spawn("b", func(p *Proc) {
		p.Sleep(15 * time.Nanosecond)
		log = append(log, fmt.Sprintf("b@%d", p.Now()))
	})
	end := s.Run()
	if end != 30 {
		t.Fatalf("end time = %v, want 30", end)
	}
	want := []string{"a@10", "b@15", "a@30"}
	if fmt.Sprint(log) != fmt.Sprint(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
}

func TestSameTimeEventsRunInScheduleOrder(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(5 * time.Nanosecond)
			order = append(order, i)
		})
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		q := NewQueue(s, "q")
		for i := 0; i < 4; i++ {
			i := i
			s.Spawn(fmt.Sprintf("prod%d", i), func(p *Proc) {
				for j := 0; j < 3; j++ {
					p.Sleep(Duration(1+i) * time.Nanosecond)
					q.Put(fmt.Sprintf("%d.%d", i, j))
				}
			})
		}
		s.Spawn("cons", func(p *Proc) {
			for k := 0; k < 12; k++ {
				v, ok := q.Get(p)
				if !ok {
					return
				}
				log = append(log, fmt.Sprintf("%v@%d", v, p.Now()))
			}
		})
		s.Run()
		return log
	}
	a, b := run(), run()
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("non-deterministic runs:\n%v\n%v", a, b)
	}
	if len(a) != 12 {
		t.Fatalf("consumed %d items, want 12", len(a))
	}
}

func TestEventBroadcast(t *testing.T) {
	s := New()
	ev := NewEvent(s)
	got := 0
	for i := 0; i < 5; i++ {
		s.Spawn(fmt.Sprintf("w%d", i), func(p *Proc) {
			v := ev.Wait(p)
			if v.(string) != "go" {
				t.Errorf("event value = %v", v)
			}
			got++
		})
	}
	s.Spawn("firer", func(p *Proc) {
		p.Sleep(100 * time.Nanosecond)
		ev.Fire("go")
	})
	s.Run()
	if got != 5 {
		t.Fatalf("woke %d waiters, want 5", got)
	}
}

func TestEventWaitAfterFire(t *testing.T) {
	s := New()
	ev := NewEvent(s)
	s.Spawn("firer", func(p *Proc) { ev.Fire(42) })
	var got any
	s.Spawn("late", func(p *Proc) {
		p.Sleep(time.Microsecond)
		got = ev.Wait(p)
	})
	s.Run()
	if got != 42 {
		t.Fatalf("late waiter got %v, want 42", got)
	}
}

func TestEventDoubleFirePanics(t *testing.T) {
	s := New()
	ev := NewEvent(s)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double fire")
		}
	}()
	ev.Fire(nil)
	ev.Fire(nil)
}

func TestResourceFIFOAndCapacity(t *testing.T) {
	s := New()
	r := NewResource(s, "cores", 2)
	var order []string
	worker := func(name string, arrive, hold Duration) {
		s.Spawn(name, func(p *Proc) {
			p.Sleep(arrive)
			r.Acquire(p, 1)
			order = append(order, name+"+")
			p.Sleep(hold)
			r.Release(1)
			order = append(order, name+"-")
		})
	}
	worker("a", 0, 100)
	worker("b", 1, 100)
	worker("c", 2, 10) // must wait for a or b despite short hold
	worker("d", 3, 10)
	s.Run()
	// c and d cannot start before a and b release at t=100 and t=101; the
	// releasing process resumes before the waiter it woke.
	want := "[a+ b+ a- c+ b- d+ c- d-]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestResourceMultiUnitNoBarging(t *testing.T) {
	s := New()
	r := NewResource(s, "r", 4)
	var order []string
	s.Spawn("big", func(p *Proc) {
		r.Acquire(p, 3)
		order = append(order, "big")
		p.Sleep(10)
		r.Release(3)
	})
	s.Spawn("big2", func(p *Proc) {
		p.Sleep(1)
		r.Acquire(p, 3) // needs 3, only 1 free -> waits
		order = append(order, "big2")
		p.Sleep(10)
		r.Release(3)
	})
	s.Spawn("small", func(p *Proc) {
		p.Sleep(2)
		r.Acquire(p, 1) // 1 free, but big2 queued first: must not barge
		order = append(order, "small")
		r.Release(1)
	})
	s.Run()
	want := "[big big2 small]"
	if got := fmt.Sprint(order); got != want {
		t.Fatalf("order = %v, want %v", got, want)
	}
}

func TestResourceUtilization(t *testing.T) {
	s := New()
	r := NewResource(s, "disk", 1)
	s.Spawn("u", func(p *Proc) {
		r.Use(p, 1, 500*time.Millisecond)
		p.Sleep(500 * time.Millisecond)
	})
	s.Run()
	u := r.Utilization(0)
	if u < 0.49 || u > 0.51 {
		t.Fatalf("utilization = %v, want ~0.5", u)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	s := New()
	q := NewQueue(s, "q")
	var got []any
	s.Spawn("c", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	s.Spawn("p", func(p *Proc) {
		q.Put(1)
		q.Put(2)
		p.Sleep(10)
		q.Close()
	})
	s.Run()
	if fmt.Sprint(got) != "[1 2]" {
		t.Fatalf("got %v", got)
	}
}

func TestStopUnwindsParkedProcesses(t *testing.T) {
	s := New()
	ev := NewEvent(s) // never fired
	cleaned := false
	s.Spawn("stuck", func(p *Proc) {
		defer func() { cleaned = true }()
		ev.Wait(p)
		t.Error("stuck process should never resume normally")
	})
	s.Spawn("stopper", func(p *Proc) {
		p.Sleep(time.Second)
		s.Stop()
	})
	s.Run()
	if !cleaned {
		t.Fatal("deferred cleanup did not run for abandoned process")
	}
}

func TestSpawnNeverStartedUnwound(t *testing.T) {
	s := New()
	s.Spawn("stopper", func(p *Proc) { s.Stop() })
	ran := false
	s.SpawnAt(Time(time.Hour), "late", func(p *Proc) { ran = true })
	s.Run()
	if ran {
		t.Fatal("late process should not have started")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(7), NewRand(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed generators diverged")
		}
	}
	r := NewRand(1)
	n := 0
	for i := 0; i < 10000; i++ {
		if r.Float64() < 0.25 {
			n++
		}
	}
	if n < 2200 || n > 2800 {
		t.Fatalf("Float64 quartile count = %d, want ~2500", n)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(42)
	var sum time.Duration
	const iters = 20000
	for i := 0; i < iters; i++ {
		sum += r.ExpDuration(time.Millisecond)
	}
	mean := sum / iters
	if mean < 900*time.Microsecond || mean > 1100*time.Microsecond {
		t.Fatalf("exp mean = %v, want ~1ms", mean)
	}
}

func TestRunUntilBoundsRunawaySim(t *testing.T) {
	s := New()
	s.Spawn("forever", func(p *Proc) {
		for {
			p.Sleep(time.Second)
		}
	})
	end := s.RunUntil(Time(5 * time.Second))
	if end > Time(5*time.Second) {
		t.Fatalf("ran past limit: %v", end)
	}
}
