package des

import (
	"testing"
	"time"
)

// BenchmarkKernelScheduleResume measures the dominant kernel hot path: a
// parked process is scheduled for a future instant and resumed (one Sleep).
// Every simulated service time, link delay, and interrupt in the system
// funnels through this path.
func BenchmarkKernelScheduleResume(b *testing.B) {
	s := New()
	s.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Nanosecond)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// BenchmarkKernelQueuePutGet measures the mailbox handoff between two
// processes: producer Put wakes a blocked consumer Get.
func BenchmarkKernelQueuePutGet(b *testing.B) {
	s := New()
	q := NewQueue(s, "bench")
	s.Spawn("producer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			q.Put(i)
			p.Sleep(time.Nanosecond)
		}
		q.Close()
	})
	s.Spawn("consumer", func(p *Proc) {
		for {
			if _, ok := q.Get(p); !ok {
				return
			}
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// BenchmarkKernelEventFire measures one-shot event synchronization: a waiter
// parks on a fresh Event and the firer wakes it.
func BenchmarkKernelEventFire(b *testing.B) {
	s := New()
	evs := make([]*Event, b.N)
	for i := range evs {
		evs[i] = NewEvent(s)
	}
	s.Spawn("waiter", func(p *Proc) {
		for _, ev := range evs {
			ev.Wait(p)
		}
	})
	s.Spawn("firer", func(p *Proc) {
		for _, ev := range evs {
			p.Sleep(time.Nanosecond)
			ev.Fire(nil)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// BenchmarkKernelResource measures semaphore churn under contention:
// 4 workers cycling through a capacity-2 resource.
func BenchmarkKernelResource(b *testing.B) {
	s := New()
	r := NewResource(s, "bench", 2)
	for w := 0; w < 4; w++ {
		s.Spawn("worker", func(p *Proc) {
			for i := 0; i < b.N/4; i++ {
				r.Acquire(p, 1)
				p.Sleep(time.Nanosecond)
				r.Release(1)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}

// BenchmarkKernelTimerHeap measures heap behaviour with a deep pending-event
// set: 1024 staggered sleepers keep the priority queue populated so every
// push/pop pays the full sift cost.
func BenchmarkKernelTimerHeap(b *testing.B) {
	s := New()
	const procs = 1024
	per := b.N/procs + 1
	for w := 0; w < procs; w++ {
		w := w
		s.Spawn("sleeper", func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Sleep(time.Duration(1 + (w*7+i)%1000))
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	s.Run()
}
