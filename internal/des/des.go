// Package des implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel follows the classic SimPy model: simulated activities run as
// ordinary Go functions ("processes") on their own goroutines, but exactly
// one process executes at a time and control is handed off explicitly through
// unbuffered channels. Combined with a totally ordered event queue (ordered
// by virtual time, then by scheduling sequence number) this makes every
// simulation run bit-for-bit reproducible regardless of GOMAXPROCS.
//
// A process interacts with the kernel through its *Proc handle: it can Sleep
// for a virtual duration, Wait on an Event, or block on higher level
// primitives (Resource, Queue) built from those two. Virtual time only
// advances when every process is blocked.
//
// The hot path — schedule an event, pop it, resume the target process — is
// allocation-free in steady state: events are typed records (kind + target
// process) rather than closures, popped records are recycled through a free
// list, and the pending set is an inlined 4-ary heap (see heap.go).
// Different Sim instances share no state, so independent simulations may
// run concurrently on separate goroutines (see internal/experiments/runner).
package des

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately an
// alias of time.Duration so literals like 3*time.Microsecond convert
// directly.
type Duration = time.Duration

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns the time as a floating point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return time.Duration(t).String() }

// Sim is a single simulation instance. It is not safe for concurrent use by
// multiple OS threads; all interaction must happen either before Run or from
// within simulation processes. Distinct Sim instances are fully independent
// and may run in parallel.
type Sim struct {
	now      Time
	queue    []*event // 4-ary heap, see heap.go
	free     []*event // recycled event records
	seq      int64
	yield    chan struct{} // signalled when the running process parks or exits
	stopped  bool
	parked   []*Proc // processes currently blocked inside the kernel
	starting []*Proc // spawned but not yet started processes
	trace    func(t Time, format string, args ...any)
	tracer   *trace.Tracer // structured event sink, nil when disabled
	procSeq  uint64
}

// New creates an empty simulation positioned at virtual time zero.
func New() *Sim {
	return &Sim{yield: make(chan struct{})}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace sink invoked by Proc.Logf. A nil sink disables
// tracing (the default).
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// SetTracer installs a structured event tracer. Every layer built on the
// kernel reaches it through Sim; a nil tracer (the default) disables
// structured tracing, and all emission sites guard on that nil so the
// kernel hot path stays allocation-free and branch-cheap.
func (s *Sim) SetTracer(tr *trace.Tracer) { s.tracer = tr }

// Tracer returns the installed structured tracer, or nil.
func (s *Sim) Tracer() *trace.Tracer { return s.tracer }

// schedule enqueues a typed event firing at virtual time at (which must not
// be in the past) targeting process p, and returns the event so it can be
// cancelled. The record comes from the free list when possible.
func (s *Sim) schedule(at Time, kind eventKind, p *Proc) *event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past: %v < %v", at, s.now))
	}
	var e *event
	if n := len(s.free); n > 0 {
		e = s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
	} else {
		e = &event{}
	}
	e.at = at
	e.seq = s.seq
	e.kind = kind
	e.proc = p
	s.seq++
	s.heapPush(e)
	return e
}

// recycle returns a popped or cancelled event record to the free list,
// dropping its process reference.
func (s *Sim) recycle(e *event) {
	e.proc = nil
	s.free = append(s.free, e)
}

// cancel removes a pending event. Cancelling an already-fired event is a
// no-op.
func (s *Sim) cancel(e *event) {
	if e.index >= 0 {
		s.heapRemove(e.index)
		s.recycle(e)
	}
}

// Stop terminates the run loop after the current event completes. Pending
// events are discarded and parked processes are unwound.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called, and
// returns the final virtual time. On return every process goroutine has
// terminated.
func (s *Sim) Run() Time { return s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamp <= limit and returns the current
// virtual time afterwards. Like Run, it unwinds all remaining process
// goroutines before returning, so it cannot be used to single-step a
// simulation; it exists to bound runaway simulations.
func (s *Sim) RunUntil(limit Time) Time {
	for !s.stopped && len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > limit {
			break
		}
		s.heapPop()
		s.now = e.at
		p, kind := e.proc, e.kind
		s.recycle(e)
		switch kind {
		case evSleep:
			s.unpark(p)
		case evStart:
			s.removeStarting(p)
		}
		s.resumeProc(p)
	}
	s.unwindAll()
	return s.now
}

// unwindAll unblocks every process that is still parked (or never started)
// when the run loop exits, so their goroutines terminate. Each such Proc
// reports Abandoned. Unwinding order is deterministic: most recently parked
// first, then most recently spawned.
func (s *Sim) unwindAll() {
	for len(s.parked) > 0 || len(s.starting) > 0 {
		var p *Proc
		if n := len(s.parked); n > 0 {
			p = s.parked[n-1]
			s.parked[n-1] = nil
			s.parked = s.parked[:n-1]
			p.parkedIdx = -1
		} else {
			n := len(s.starting)
			p = s.starting[n-1]
			s.starting[n-1] = nil
			s.starting = s.starting[:n-1]
			s.cancel(p.startEv)
			p.startIdx = -1
			p.startEv = nil
		}
		p.abandoned = true
		p.resume <- struct{}{}
		<-s.yield
	}
}

// Proc is the handle a simulated process uses to interact with the kernel.
type Proc struct {
	sim       *Sim
	name      string
	resume    chan struct{}
	abandoned bool
	parkedIdx int    // index into sim.parked, -1 when running
	startIdx  int    // index into sim.starting, -1 once started
	startEv   *event // pending start event, nil once started
	id        uint64 // stable process id for trace pairing
	blockT    Time   // park time, recorded only while tracing
}

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Abandoned reports whether the simulation stopped while this process was
// parked. It is primarily useful in deferred cleanup: the kernel unwinds
// abandoned processes with a panic that is recovered by the spawn wrapper,
// so ordinary code never observes it mid-function.
func (p *Proc) Abandoned() bool { return p.abandoned }

// Logf emits a trace line through the simulation's trace sink, if installed.
func (p *Proc) Logf(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.sim.now, "["+p.name+"] "+format, args...)
	}
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. fn runs on its own goroutine but under the kernel's
// one-at-a-time discipline.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt is Spawn with an explicit (future) start time.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	s.procSeq++
	p := &Proc{sim: s, name: name, resume: make(chan struct{}), parkedIdx: -1, id: s.procSeq}
	if s.tracer != nil {
		s.tracer.Instant(int64(s.now), trace.LayerDES, trace.KindSpawn, name, "spawn", p.id, int64(at))
	}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abandonedPanic); !ok {
					// Re-panic on another goroutine would lose the scheduler
					// handshake; report loudly instead.
					panic(fmt.Sprintf("des: process %q panicked: %v", name, r))
				}
			}
			s.yield <- struct{}{}
		}()
		<-p.resume
		if p.abandoned {
			return
		}
		fn(p)
	}()
	p.startEv = s.schedule(at, evStart, p)
	p.startIdx = len(s.starting)
	s.starting = append(s.starting, p)
	return p
}

// removeStarting clears p's pending-start registration when its start event
// fires.
func (s *Sim) removeStarting(p *Proc) {
	i := p.startIdx
	if i < 0 {
		return
	}
	last := len(s.starting) - 1
	s.starting[i] = s.starting[last]
	s.starting[i].startIdx = i
	s.starting[last] = nil
	s.starting = s.starting[:last]
	p.startIdx = -1
	p.startEv = nil
}

// resumeProc transfers control to p and waits for it to park or exit.
// It must only be called from the scheduler loop (i.e. from an event fn).
func (s *Sim) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-s.yield
}

// park blocks the calling process until something resumes it. The caller
// must already have arranged for a wake-up (a scheduled event or a waiter
// registration on some primitive).
func (p *Proc) park() {
	s := p.sim
	if s.tracer != nil {
		p.blockT = s.now
	}
	p.parkedIdx = len(s.parked)
	s.parked = append(s.parked, p)
	s.yield <- struct{}{}
	<-p.resume
	if p.abandoned {
		panic(abandonedPanic{})
	}
	// A blocked span is only interesting when virtual time passed; emitting
	// after the resume keeps this off the zero-length same-instant handoffs.
	if s.tracer != nil && s.now > p.blockT {
		s.tracer.Span(int64(p.blockT), int64(s.now), trace.LayerDES, trace.KindBlocked, p.name, "blocked", p.id, 0)
	}
}

// unpark removes p from the parked set; primitives call it right before
// scheduling p's resume so that Stop-time unwinding cannot double-resume.
func (s *Sim) unpark(p *Proc) {
	i := p.parkedIdx
	if i < 0 {
		return
	}
	last := len(s.parked) - 1
	s.parked[i] = s.parked[last]
	s.parked[i].parkedIdx = i
	s.parked[last] = nil
	s.parked = s.parked[:last]
	p.parkedIdx = -1
}

// wake unparks p and schedules its resume at the current instant. It is the
// single wake-up primitive every synchronization object uses.
func (s *Sim) wake(p *Proc) {
	s.unpark(p)
	s.schedule(s.now, evResume, p)
}

// abandonedPanic unwinds a process goroutine whose simulation has stopped.
type abandonedPanic struct{}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events scheduled earlier).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.schedule(s.now+Time(d), evSleep, p)
	p.park()
}

// Yield cedes control so that other events scheduled at the current instant
// run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
