// Package des implements a deterministic, process-oriented discrete-event
// simulation kernel.
//
// The kernel follows the classic SimPy model: simulated activities run as
// ordinary Go functions ("processes") on their own goroutines, but exactly
// one process executes at a time and control is handed off explicitly through
// unbuffered channels. Combined with a totally ordered event queue (ordered
// by virtual time, then by scheduling sequence number) this makes every
// simulation run bit-for-bit reproducible regardless of GOMAXPROCS.
//
// A process interacts with the kernel through its *Proc handle: it can Sleep
// for a virtual duration, Wait on an Event, or block on higher level
// primitives (Resource, Queue) built from those two. Virtual time only
// advances when every process is blocked.
package des

import (
	"container/heap"
	"fmt"
	"time"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds. It is deliberately an
// alias of time.Duration so literals like 3*time.Microsecond convert
// directly.
type Duration = time.Duration

// Seconds returns the time as a floating point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// Micros returns the time as a floating point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / 1e3 }

func (t Time) String() string { return time.Duration(t).String() }

// event is a scheduled callback.
type event struct {
	at    Time
	seq   int64 // tie-breaker: schedule order
	fn    func()
	index int // heap index, -1 when popped/cancelled
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Sim is a single simulation instance. It is not safe for concurrent use by
// multiple OS threads; all interaction must happen either before Run or from
// within simulation processes.
type Sim struct {
	now      Time
	queue    eventHeap
	seq      int64
	yield    chan struct{} // signalled when the running process parks or exits
	stopped  bool
	parked   []*Proc          // processes currently blocked inside the kernel
	starting map[*Proc]*event // spawned but not yet started processes
	trace    func(t Time, format string, args ...any)
}

// New creates an empty simulation positioned at virtual time zero.
func New() *Sim {
	return &Sim{
		yield:    make(chan struct{}),
		starting: make(map[*Proc]*event),
	}
}

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// SetTrace installs a trace sink invoked by Proc.Logf. A nil sink disables
// tracing (the default).
func (s *Sim) SetTrace(fn func(t Time, format string, args ...any)) { s.trace = fn }

// schedule enqueues fn to run at virtual time at (which must not be in the
// past) and returns the event so it can be cancelled.
func (s *Sim) schedule(at Time, fn func()) *event {
	if at < s.now {
		panic(fmt.Sprintf("des: scheduling into the past: %v < %v", at, s.now))
	}
	e := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, e)
	return e
}

// cancel removes a pending event. Cancelling an already-fired event is a
// no-op.
func (s *Sim) cancel(e *event) {
	if e.index >= 0 {
		heap.Remove(&s.queue, e.index)
	}
}

// Stop terminates the run loop after the current event completes. Pending
// events are discarded and parked processes are unwound.
func (s *Sim) Stop() { s.stopped = true }

// Run executes events until the queue is empty or Stop is called, and
// returns the final virtual time. On return every process goroutine has
// terminated.
func (s *Sim) Run() Time { return s.RunUntil(Time(1<<62 - 1)) }

// RunUntil executes events with timestamp <= limit and returns the current
// virtual time afterwards. Like Run, it unwinds all remaining process
// goroutines before returning, so it cannot be used to single-step a
// simulation; it exists to bound runaway simulations.
func (s *Sim) RunUntil(limit Time) Time {
	for !s.stopped && len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > limit {
			break
		}
		heap.Pop(&s.queue)
		s.now = e.at
		e.fn()
	}
	s.unwindAll()
	return s.now
}

// unwindAll unblocks every process that is still parked (or never started)
// when the run loop exits, so their goroutines terminate. Each such Proc
// reports Abandoned.
func (s *Sim) unwindAll() {
	for len(s.parked) > 0 || len(s.starting) > 0 {
		var p *Proc
		if n := len(s.parked); n > 0 {
			p = s.parked[n-1]
			s.parked = s.parked[:n-1]
			p.parkedIdx = -1
		} else {
			for q, ev := range s.starting {
				p = q
				s.cancel(ev)
				break
			}
			delete(s.starting, p)
		}
		p.abandoned = true
		p.resume <- struct{}{}
		<-s.yield
	}
}

// Proc is the handle a simulated process uses to interact with the kernel.
type Proc struct {
	sim       *Sim
	name      string
	resume    chan struct{}
	abandoned bool
	parkedIdx int // index into sim.parked, -1 when running
}

// Sim returns the simulation this process belongs to.
func (p *Proc) Sim() *Sim { return p.sim }

// Name returns the name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.sim.now }

// Abandoned reports whether the simulation stopped while this process was
// parked. It is primarily useful in deferred cleanup: the kernel unwinds
// abandoned processes with a panic that is recovered by the spawn wrapper,
// so ordinary code never observes it mid-function.
func (p *Proc) Abandoned() bool { return p.abandoned }

// Logf emits a trace line through the simulation's trace sink, if installed.
func (p *Proc) Logf(format string, args ...any) {
	if p.sim.trace != nil {
		p.sim.trace(p.sim.now, "["+p.name+"] "+format, args...)
	}
}

// Spawn creates a new process executing fn and schedules it to start at the
// current virtual time. fn runs on its own goroutine but under the kernel's
// one-at-a-time discipline.
func (s *Sim) Spawn(name string, fn func(p *Proc)) *Proc {
	return s.SpawnAt(s.now, name, fn)
}

// SpawnAt is Spawn with an explicit (future) start time.
func (s *Sim) SpawnAt(at Time, name string, fn func(p *Proc)) *Proc {
	p := &Proc{sim: s, name: name, resume: make(chan struct{}), parkedIdx: -1}
	go func() {
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(abandonedPanic); !ok {
					// Re-panic on another goroutine would lose the scheduler
					// handshake; report loudly instead.
					panic(fmt.Sprintf("des: process %q panicked: %v", name, r))
				}
			}
			s.yield <- struct{}{}
		}()
		<-p.resume
		if p.abandoned {
			return
		}
		fn(p)
	}()
	ev := s.schedule(at, func() {
		delete(s.starting, p)
		s.resumeProc(p)
	})
	s.starting[p] = ev
	return p
}

// resumeProc transfers control to p and waits for it to park or exit.
// It must only be called from the scheduler loop (i.e. from an event fn).
func (s *Sim) resumeProc(p *Proc) {
	p.resume <- struct{}{}
	<-s.yield
}

// park blocks the calling process until something resumes it. The caller
// must already have arranged for a wake-up (a scheduled event or a waiter
// registration on some primitive).
func (p *Proc) park() {
	s := p.sim
	p.parkedIdx = len(s.parked)
	s.parked = append(s.parked, p)
	s.yield <- struct{}{}
	<-p.resume
	if p.abandoned {
		panic(abandonedPanic{})
	}
}

// unpark removes p from the parked set; primitives call it right before
// scheduling p's resume so that Stop-time unwinding cannot double-resume.
func (s *Sim) unpark(p *Proc) {
	i := p.parkedIdx
	if i < 0 {
		return
	}
	last := len(s.parked) - 1
	s.parked[i] = s.parked[last]
	s.parked[i].parkedIdx = i
	s.parked = s.parked[:last]
	p.parkedIdx = -1
}

// abandonedPanic unwinds a process goroutine whose simulation has stopped.
type abandonedPanic struct{}

// Sleep suspends the process for d of virtual time. Negative durations are
// treated as zero (yield to same-time events scheduled earlier).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	s := p.sim
	s.schedule(s.now+Time(d), func() {
		s.unpark(p)
		s.resumeProc(p)
	})
	p.park()
}

// Yield cedes control so that other events scheduled at the current instant
// run before this process continues.
func (p *Proc) Yield() { p.Sleep(0) }
