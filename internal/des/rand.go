package des

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64). Every simulated
// component that needs randomness owns its own Rand seeded from the
// experiment configuration, so results are reproducible and independent of
// map iteration or scheduling order.
type Rand struct{ state uint64 }

// NewRand returns a generator seeded with seed.
func NewRand(seed uint64) *Rand { return &Rand{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Uint32 returns 32 random bits.
func (r *Rand) Uint32() uint32 { return uint32(r.Uint64() >> 32) }

// Intn returns a uniform integer in [0, n). n must be > 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("des: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("des: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean, for Poisson arrival/think-time modelling.
func (r *Rand) ExpDuration(mean Duration) Duration {
	u := r.Float64()
	if u <= 0 {
		u = 1e-12
	}
	return Duration(-math.Log(u) * float64(mean))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
