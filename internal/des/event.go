package des

// Event is a one-shot synchronization point carrying an optional value.
// Any number of processes may Wait on it; firing it wakes them all (in the
// deterministic order they began waiting). Waiting on an already-fired event
// returns immediately.
type Event struct {
	sim     *Sim
	fired   bool
	value   any
	waiters []*Proc
}

// NewEvent creates an unfired event bound to s.
func NewEvent(s *Sim) *Event { return &Event{sim: s} }

// Fired reports whether the event has been fired.
func (e *Event) Fired() bool { return e.fired }

// Value returns the value passed to Fire, or nil if not yet fired.
func (e *Event) Value() any { return e.value }

// Fire marks the event fired with the given value and schedules every waiter
// to resume at the current virtual time. Firing twice panics: events are
// one-shot by design, and double-firing always indicates a protocol bug in
// the caller.
func (e *Event) Fire(value any) {
	if e.fired {
		panic("des: event fired twice")
	}
	e.fired = true
	e.value = value
	s := e.sim
	for i, p := range e.waiters {
		s.wake(p)
		e.waiters[i] = nil
	}
	e.waiters = nil
}

// TryFire fires the event if it has not fired yet and reports whether it
// did. Unlike Fire, a lost race is not a bug: protocol engines use it when
// two legitimate sources can complete the same wait — a reply arriving and
// a retransmission timer expiring, for example — and whichever fires first
// wins while the loser becomes a no-op.
func (e *Event) TryFire(value any) bool {
	if e.fired {
		return false
	}
	e.Fire(value)
	return true
}

// Wait blocks p until the event fires and returns the fired value.
func (e *Event) Wait(p *Proc) any {
	if e.fired {
		return e.value
	}
	e.waiters = append(e.waiters, p)
	p.park()
	return e.value
}

// WaitAll blocks until every event in evs has fired.
func WaitAll(p *Proc, evs ...*Event) {
	for _, e := range evs {
		e.Wait(p)
	}
}
