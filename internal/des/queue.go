package des

// Queue is an unbounded FIFO mailbox connecting simulated processes.
// Put never blocks; Get blocks while the queue is empty. Multiple getters
// are served in the order they began waiting.
type Queue struct {
	sim     *Sim
	name    string
	items   []any
	getters []*Proc
	closed  bool
}

// NewQueue creates an empty queue bound to s.
func NewQueue(s *Sim, name string) *Queue { return &Queue{sim: s, name: name} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// Put appends v and wakes the longest-waiting getter, if any.
func (q *Queue) Put(v any) {
	if q.closed {
		panic("des: put on closed queue " + q.name)
	}
	q.items = append(q.items, v)
	q.wakeOne()
}

// Close marks the queue closed. Blocked and future Gets return (nil, false)
// once the queue drains.
func (q *Queue) Close() {
	q.closed = true
	// Wake all getters; they will either receive remaining items or observe
	// the close.
	for len(q.getters) > 0 {
		q.wakeOne()
	}
}

func (q *Queue) wakeOne() {
	if len(q.getters) == 0 {
		return
	}
	p := q.getters[0]
	q.getters = q.getters[1:]
	s := q.sim
	s.unpark(p)
	s.schedule(s.now, func() { s.resumeProc(p) })
}

// Get removes and returns the oldest item. ok is false if the queue is
// closed and empty.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.getters = append(q.getters, p)
		p.park()
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (v any, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}
