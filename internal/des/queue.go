package des

// Queue is an unbounded FIFO mailbox connecting simulated processes.
// Put never blocks; Get blocks while the queue is empty. Multiple getters
// are served in the order they began waiting.
//
// Items and waiting getters live in ring buffers, so popping the front
// neither pins the backing array nor retains references to delivered items
// (the old q.items[1:] re-slicing did both).
type Queue struct {
	sim     *Sim
	name    string
	items   Ring[any]
	getters Ring[*Proc]
	closed  bool
}

// NewQueue creates an empty queue bound to s.
func NewQueue(s *Sim, name string) *Queue { return &Queue{sim: s, name: name} }

// Len returns the number of queued items.
func (q *Queue) Len() int { return q.items.Len() }

// Put appends v and wakes the longest-waiting getter, if any.
func (q *Queue) Put(v any) {
	if q.closed {
		panic("des: put on closed queue " + q.name)
	}
	q.items.Push(v)
	q.wakeOne()
}

// Close marks the queue closed. Blocked and future Gets return (nil, false)
// once the queue drains.
func (q *Queue) Close() {
	q.closed = true
	// Wake all getters; they will either receive remaining items or observe
	// the close.
	for q.getters.Len() > 0 {
		q.wakeOne()
	}
}

func (q *Queue) wakeOne() {
	if q.getters.Len() == 0 {
		return
	}
	q.sim.wake(q.getters.Pop())
}

// Get removes and returns the oldest item. ok is false if the queue is
// closed and empty.
func (q *Queue) Get(p *Proc) (v any, ok bool) {
	for q.items.Len() == 0 {
		if q.closed {
			return nil, false
		}
		q.getters.Push(p)
		p.park()
	}
	return q.items.Pop(), true
}

// TryGet removes and returns the oldest item without blocking.
func (q *Queue) TryGet() (v any, ok bool) {
	if q.items.Len() == 0 {
		return nil, false
	}
	return q.items.Pop(), true
}
