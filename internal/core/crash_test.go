package core

import (
	"errors"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/trace"
)

// TestCrashRestartRecovery is the crash/restart primitive end to end: a
// server crash mid-burst kills every connection, the downtime window rejects
// redials, and once the server restarts the recovery layer reconnects and
// replays so every write still lands. The bumped write verifier makes the
// reboot observable at the protocol level.
func TestCrashRestartRecovery(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: recoveryProfile(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]
	const (
		records = 16
		recSize = 128 << 10
	)
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableRecovery(RetryPolicy{
			MaxReconnects: 20, Backoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond,
		})
		verfBefore := cluster.Server.NFS.WriteVerf()
		cluster.ScheduleServerCrash(p.Now()+des.Time(1*time.Millisecond), 300*time.Microsecond)

		f, err := cl.Create(p, "data")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		buf := cl.NewMaterializedBuffer(recSize)
		for rec := 0; rec < records; rec++ {
			fill := byte(1 + rec)
			b := buf.Bytes()
			for i := range b {
				b[i] = fill
			}
			n, err := f.WriteAt(p, buf, 0, int64(rec)*recSize, recSize, true)
			if err != nil || n != recSize {
				t.Errorf("write %d: n=%d err=%v", rec, n, err)
			}
		}

		if cluster.Crashes != 1 {
			t.Errorf("Crashes = %d, want 1", cluster.Crashes)
		}
		if cluster.ServerDown() {
			t.Error("server still down after scheduled restart")
		}
		rc, _ := cl.RecoveryStats()
		if rc < 1 {
			t.Errorf("reconnects = %d, want >= 1 (crash did not land on the burst?)", rc)
		}
		if got := cluster.Server.NFS.WriteVerf(); got == verfBefore {
			t.Errorf("write verifier unchanged across restart (%#x); clients cannot detect the reboot", got)
		}

		// Every byte survived the crash exactly once.
		rbuf := cl.NewMaterializedBuffer(recSize)
		for rec := 0; rec < records; rec++ {
			n, _, err := f.ReadAt(p, rbuf, 0, int64(rec)*recSize, recSize, false)
			if err != nil || n != recSize {
				t.Errorf("read %d: n=%d err=%v", rec, n, err)
				continue
			}
			want := byte(1 + rec)
			for i, got := range rbuf.Bytes() {
				if got != want {
					t.Errorf("rec %d byte %d = %#x, want %#x", rec, i, got, want)
					break
				}
			}
		}
	})
	cluster.RunUntil(des.Time(2 * time.Second))
}

// blackholeService accepts NFS calls and never finishes handling them: every
// dispatched request parks its worker forever, so no reply is ever sent and
// clients see pure per-call timeouts (not connection deaths).
type blackholeService struct{}

func (blackholeService) Name() string    { return "blackhole" }
func (blackholeService) Program() uint32 { return 100003 }
func (blackholeService) Version() uint32 { return 3 }
func (blackholeService) Handle(p *des.Proc, req *oncrpc.ServerRequest) *oncrpc.ServerResponse {
	p.Sleep(des.Duration(time.Hour))
	return nil
}

// TestRecoveryPropagatesRetriesExhausted pins the typed-error contract
// through the recovery layer: when every attempt times out (server accepts
// connections but never replies), the error that finally surfaces to the
// application after the reconnect budget is spent must still match
// rpcrdma.ErrRetriesExhausted — recovery wraps and retries, it does not
// flatten the sentinel or hang.
func TestRecoveryPropagatesRetriesExhausted(t *testing.T) {
	prof := profiles.LinuxSDR()
	prof.RDMAClient.CallTimeout = 1 * time.Millisecond
	prof.RDMAClient.RetryLimit = 2
	cluster := NewCluster(Config{
		Profile: prof, Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		// Swap the wired server for one whose dispatcher swallows every call:
		// reconnects succeed, replies never come.
		silent := oncrpc.NewDispatcher()
		silent.Register(blackholeService{})
		mgr := memreg.NewManager(p, cluster.Server.Node, memreg.Config{Mode: memreg.Regular})
		cluster.Server.RDMA = rpcrdma.NewServerTransport(p, cluster.Server.Node, mgr, silent, cluster.serverRDMACfg)

		cl.EnableRecovery(RetryPolicy{MaxReconnects: 2, Backoff: 50 * time.Microsecond})
		breakConnection(p, cl)
		_, err := cl.Stat(p, "anything")
		if err == nil {
			t.Fatal("call against a never-replying server succeeded")
		}
		if !errors.Is(err, rpcrdma.ErrRetriesExhausted) {
			t.Errorf("surfaced err = %v, want errors.Is(err, ErrRetriesExhausted)", err)
		}
		if !errors.Is(err, rpcrdma.ErrTimeout) {
			t.Errorf("surfaced err = %v, must still match ErrTimeout", err)
		}
		rc, _ := cl.RecoveryStats()
		if rc < 1 {
			t.Errorf("reconnects = %d, want >= 1 (the broken connection was never replaced)", rc)
		}
	})
	cluster.RunUntil(des.Time(time.Second))
}

// TestCheckExposureBoundsWatchdogMidPull is the MR-leak regression for the
// abandoned-call path: bulk transfers bigger than the per-call watchdog can
// ride out get abandoned mid-pull, and a link flap lands on whatever is
// still in flight. Whatever the outcome of each call, the trace must show
// every staged/exposed client MR torn down within its RPC bounds — a leaked
// registration here was exactly the bug this test pins.
func TestCheckExposureBoundsWatchdogMidPull(t *testing.T) {
	for _, design := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReadRead} {
		t.Run(design.String(), func(t *testing.T) {
			prof := profiles.LinuxSDR()
			// 512 KiB at 900 MB/s is ~580 µs on the wire: a 200 µs watchdog
			// always fires mid-pull.
			prof.RDMAClient.CallTimeout = 200 * time.Microsecond
			prof.RDMAClient.RetryLimit = 1
			cluster := NewCluster(Config{
				Profile: prof, Transport: TransportRDMA,
				Design: design, RegMode: memreg.Regular, CopyData: true,
			})
			tr := cluster.EnableTracing(1 << 20)
			cl := cluster.Clients[0]
			timedOut := false
			cluster.Start("t", func(p *des.Proc) {
				cl.EnableRecovery(RetryPolicy{MaxReconnects: 2, Backoff: 50 * time.Microsecond})
				cluster.Fabric.ScheduleLinkFlap(p.Now()+des.Time(500*time.Microsecond), cl.Node, cluster.Server.Node)
				f, err := cl.Create(p, "big")
				if err != nil {
					t.Fatalf("create: %v", err)
				}
				buf := cl.NewMaterializedBuffer(512 << 10)
				for rec := 0; rec < 4; rec++ {
					// Expected to fail: the watchdog cannot ride out the
					// transfer. The staged chunks must still be torn down.
					f.WriteAt(p, buf, 0, int64(rec)<<19, 512<<10, true)
					f.ReadAt(p, buf, 0, int64(rec)<<19, 512<<10, design == rpcrdma.ReadWrite)
				}
				to, _ := cl.TransportStats()
				timedOut = to >= 1
			})
			cluster.RunUntil(des.Time(time.Second))
			if !timedOut {
				t.Fatal("no watchdog timeout fired; the mid-pull abandon path was not exercised")
			}
			if d := tr.Dropped(); d != 0 {
				t.Fatalf("trace ring dropped %d events", d)
			}
			events := tr.Events()
			if err := trace.CheckWQECQE(events); err != nil {
				t.Errorf("WQE/CQE pairing: %v", err)
			}
			if err := trace.CheckExposureBounds(events); err != nil {
				t.Errorf("exposure bounds (leaked staged MR?): %v", err)
			}
		})
	}
}
