package core

import (
	"fmt"

	"repro/internal/des"
)

// Reconnect replaces a failed RDMA connection with a fresh queue pair and
// client transport, re-attaching it to the server. The new transport is
// built by the same constructor as initial wiring (newClientTransport), so
// it inherits the cluster's design, profile, and timeout policy. The NFS
// client keeps its XID stream across the swap, so the server's duplicate
// request cache stays coherent: retried non-idempotent calls replay their
// cached replies instead of re-executing.
//
// In-flight calls on the old connection have already failed back to their
// callers with transport errors. With recovery enabled (EnableRecovery)
// the recovering transport replays them transparently after this
// reconnect; without it the caller retries by hand. Either way the
// retransmission carries the original XID, which is what makes retrying
// non-idempotent procedures safe against the DRC.
func (c *Client) Reconnect(p *des.Proc) error {
	if c.RDMA == nil {
		return fmt.Errorf("core: reconnect applies to RDMA transports only")
	}
	// Bank the retired connection's counters so TransportStats stays
	// cumulative across the swap.
	c.lostTimeouts += c.RDMA.Timeouts
	c.lostRetransmits += c.RDMA.Retransmits
	c.RDMA.Close()
	nt, err := connectRDMA(p, c)
	if err != nil {
		// Dial window exhausted — e.g. the server is crashed for longer than
		// the whole redial budget. The old transport stays installed (closed,
		// so Broken() keeps reporting true) and the caller decides whether to
		// retry the reconnect later.
		return err
	}
	c.RDMA = nt
	if c.recovery == nil {
		// No recovery wrapper: callers talk to the raw transport, so swap
		// it in directly. With recovery enabled the wrapper stays installed
		// and reads c.RDMA on every call.
		c.Transport = c.RDMA
		c.NFS.SetTransport(c.RDMA)
	}
	return nil
}
