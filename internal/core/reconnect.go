package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
)

// Reconnect replaces a failed RDMA connection with a fresh queue pair and
// client transport, re-attaching it to the server. The NFS client keeps
// its XID stream across the swap, so a server-side duplicate request cache
// stays coherent (retried calls replay; new calls execute).
//
// In-flight calls on the old connection are lost (their Roundtrips have
// already returned transport errors); the caller retries them — NFSv3 is
// stateless, and the DRC makes retries of non-idempotent procedures safe.
func (c *Client) Reconnect(p *des.Proc) error {
	if c.RDMA == nil {
		return fmt.Errorf("core: reconnect applies to RDMA transports only")
	}
	c.RDMA.Close()
	cluster := c.cluster
	cq, sq := cluster.Fabric.Connect(c.Node, cluster.Server.Node, ibsim.QPConfig{})
	cluster.Server.RDMA.Serve(sq)
	cfg := cluster.Cfg.Profile.RDMAClient
	cfg.Design = cluster.Cfg.Design
	c.RDMA = newClientTransport(p, cq, c)
	c.Transport = c.RDMA
	c.NFS.SetTransport(c.RDMA)
	return nil
}
