package core

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

// recoveryProfile is LinuxSDR with per-call timeouts armed, so calls whose
// retransmission was silently dropped by the server (duplicate of a
// still-executing request) eventually retransmit again instead of hanging.
func recoveryProfile() profiles.Profile {
	prof := profiles.LinuxSDR()
	prof.RDMAClient.CallTimeout = 5 * time.Millisecond
	prof.RDMAClient.RetryLimit = 6
	return prof
}

// TestRecoveryReplaysInFlightWrites is the tentpole end-to-end check: a
// burst of concurrent WRITEs, a QP error injected mid-burst, and transparent
// recovery must land every byte exactly once — the server's duplicate
// request cache suppresses re-execution of replayed non-idempotent calls,
// and the connection teardown leaks no reply slots.
func TestRecoveryReplaysInFlightWrites(t *testing.T) {
	for _, design := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReadRead} {
		t.Run(design.String(), func(t *testing.T) {
			cluster := NewCluster(Config{
				Profile: recoveryProfile(), Transport: TransportRDMA,
				Design: design, RegMode: memreg.Regular, CopyData: true,
			})
			cl := cluster.Clients[0]
			const (
				workers   = 4
				perWorker = 12
				recSize   = 128 << 10
			)
			cluster.Start("t", func(p *des.Proc) {
				cl.EnableRecovery(RetryPolicy{})
				// Three faults spaced through the burst. ScheduleLinkFlap
				// resolves live connections at fire time, so later flaps kill
				// the replacement connections too.
				for i, d := range []des.Duration{500 * time.Microsecond, 2 * time.Millisecond, 4 * time.Millisecond} {
					_ = i
					cluster.Fabric.ScheduleLinkFlap(p.Now()+des.Time(d), cl.Node, cluster.Server.Node)
				}
				sim := p.Sim()
				events := make([]*des.Event, workers)
				for w := 0; w < workers; w++ {
					w := w
					ev := des.NewEvent(sim)
					events[w] = ev
					sim.Spawn(fmt.Sprintf("writer-%d", w), func(wp *des.Proc) {
						defer ev.Fire(nil)
						f, err := cl.Create(wp, fmt.Sprintf("f%d", w))
						if err != nil {
							t.Errorf("worker %d create: %v", w, err)
							return
						}
						buf := cl.NewMaterializedBuffer(recSize)
						for rec := 0; rec < perWorker; rec++ {
							fill := byte(1 + w*perWorker + rec)
							b := buf.Bytes()
							for i := range b {
								b[i] = fill
							}
							n, err := f.WriteAt(wp, buf, 0, int64(rec)*recSize, recSize, true)
							if err != nil || n != recSize {
								t.Errorf("worker %d write %d: n=%d err=%v", w, rec, n, err)
								return
							}
						}
					})
				}
				des.WaitAll(p, events...)

				reconnects, replays := cl.RecoveryStats()
				if reconnects < 1 {
					t.Errorf("reconnects = %d, want >= 1 (faults did not land?)", reconnects)
				}
				if replays < reconnects {
					t.Errorf("replays = %d < reconnects = %d", replays, reconnects)
				}

				// Every byte landed, exactly once per record.
				rbuf := cl.NewMaterializedBuffer(recSize)
				for w := 0; w < workers; w++ {
					f, err := cl.Open(p, fmt.Sprintf("f%d", w))
					if err != nil {
						t.Errorf("open f%d: %v", w, err)
						continue
					}
					for rec := 0; rec < perWorker; rec++ {
						n, _, err := f.ReadAt(p, rbuf, 0, int64(rec)*recSize, recSize, false)
						if err != nil || n != recSize {
							t.Errorf("read f%d rec %d: n=%d err=%v", w, rec, n, err)
							continue
						}
						want := byte(1 + w*perWorker + rec)
						for i, got := range rbuf.Bytes() {
							if got != want {
								t.Errorf("f%d rec %d byte %d = %#x, want %#x", w, rec, i, got, want)
								break
							}
						}
					}
				}

				// Zero duplicate side effects: the server executed each WRITE
				// exactly once even though some were retransmitted.
				if got := cluster.Server.NFS.Ops[nfs3.ProcWrite]; got != workers*perWorker {
					t.Errorf("server executed %d WRITEs, want exactly %d", got, workers*perWorker)
				}
				// Dead connections leaked nothing.
				p.Sleep(10 * time.Millisecond)
				if got := cluster.Server.RDMA.ParkedReplies(); got != 0 {
					t.Errorf("parked replies = %d after recovery, want 0", got)
				}
			})
			cluster.Run()
		})
	}
}

// TestReconnectInheritsConfig pins the bugfix in Reconnect: the replacement
// transport must carry the cluster's design and timeout policy, not package
// defaults.
func TestReconnectInheritsConfig(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: recoveryProfile(), Transport: TransportRDMA,
		Design: rpcrdma.ReadRead, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		breakConnection(p, cl)
		if err := cl.Reconnect(p); err != nil {
			t.Fatalf("reconnect: %v", err)
		}
		if got := cl.RDMA.Design(); got != rpcrdma.ReadRead {
			t.Errorf("reconnected transport design = %v, want ReadRead", got)
		}
		if got := cl.RDMA.Config().CallTimeout; got != 5*time.Millisecond {
			t.Errorf("reconnected transport CallTimeout = %v, want 5ms", got)
		}
		// And the fresh connection actually serves traffic.
		f, err := cl.Create(p, "after")
		if err != nil {
			t.Fatalf("create after reconnect: %v", err)
		}
		buf := cl.NewMaterializedBuffer(4096)
		if _, err := f.WriteAt(p, buf, 0, 0, 4096, true); err != nil {
			t.Errorf("write after reconnect: %v", err)
		}
	})
	cluster.Run()
}

// TestRecoverySurfacesErrorWhenExhausted: when every reconnect lands on a
// freshly faulted fabric, the retry policy eventually gives up and the
// transport error reaches the caller instead of looping forever.
func TestRecoverySurfacesErrorWhenExhausted(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: recoveryProfile(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableRecovery(RetryPolicy{MaxReconnects: 2, Backoff: 50 * time.Microsecond})
		f, err := cl.Create(p, "doomed")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		// Kill the current connection and every replacement as it appears.
		stop := false
		sim := p.Sim()
		var hammer func(fp *des.Proc)
		hammer = func(fp *des.Proc) {
			if stop {
				return
			}
			qp := cl.RDMA.QP()
			if qp.Err() == nil {
				qp.InjectError(nil)
			}
			sim.SpawnAt(fp.Now()+des.Time(100*time.Microsecond), "hammer", hammer)
		}
		sim.Spawn("hammer", hammer)
		buf := cl.NewMaterializedBuffer(64 << 10)
		_, err = f.WriteAt(p, buf, 0, 0, 64<<10, true)
		stop = true
		if err == nil {
			t.Error("write on a permanently faulted fabric should fail")
		}
		rc, _ := cl.RecoveryStats()
		if rc < 1 || rc > 3 {
			t.Errorf("reconnects = %d, want 1..3 (policy MaxReconnects=2)", rc)
		}
	})
	cluster.RunUntil(des.Time(time.Second))
}
