package core

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func cacheCluster() *Cluster {
	return NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, CopyData: true,
	})
}

func TestAttrCacheAvoidsGetAttrRPCs(t *testing.T) {
	cluster := cacheCluster()
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		ac := cl.EnableAttrCache(10 * time.Second)
		f, err := cl.Create(p, "f")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewBuffer(4096)
		f.WriteAt(p, buf, 0, 0, 4096, false)
		getattrsBefore := cluster.Server.NFS.Ops[nfs3.ProcGetAttr]
		for i := 0; i < 20; i++ {
			if sz, err := f.Size(p); err != nil || sz != 4096 {
				t.Errorf("size: %d %v", sz, err)
				return
			}
		}
		extra := cluster.Server.NFS.Ops[nfs3.ProcGetAttr] - getattrsBefore
		// The WRITE's post-op attributes seeded the cache: zero or one
		// GETATTR should reach the server for 20 Size calls.
		if extra > 1 {
			t.Errorf("%d GETATTR RPCs reached the server; cache ineffective", extra)
		}
		if ac.AttrHits < 19 {
			t.Errorf("attr hits = %d", ac.AttrHits)
		}
	})
	cluster.Run()
}

func TestAttrCacheTTLExpires(t *testing.T) {
	cluster := cacheCluster()
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableAttrCache(1 * time.Millisecond)
		f, _ := cl.Create(p, "f")
		buf := cl.NewBuffer(100)
		f.WriteAt(p, buf, 0, 0, 100, false)
		f.Size(p) // populate / hit
		before := cluster.Server.NFS.Ops[nfs3.ProcGetAttr]
		p.Sleep(2 * time.Millisecond) // expire
		f.Size(p)
		if cluster.Server.NFS.Ops[nfs3.ProcGetAttr] != before+1 {
			t.Error("expired entry did not refetch")
		}
	})
	cluster.Run()
}

func TestAttrCacheCoherenceAfterWrite(t *testing.T) {
	cluster := cacheCluster()
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableAttrCache(time.Minute)
		f, _ := cl.Create(p, "f")
		buf := cl.NewBuffer(1000)
		f.WriteAt(p, buf, 0, 0, 1000, false)
		if sz, _ := f.Size(p); sz != 1000 {
			t.Errorf("size = %d", sz)
		}
		// A further write must update the cached size (post-op attrs).
		f.WriteAt(p, buf, 0, 1000, 1000, false)
		if sz, _ := f.Size(p); sz != 2000 {
			t.Errorf("size after extend = %d (stale cache)", sz)
		}
		// Truncate invalidates; the next Size refetches.
		f.Truncate(p, 10)
		if sz, _ := f.Size(p); sz != 10 {
			t.Errorf("size after truncate = %d", sz)
		}
	})
	cluster.Run()
}

func TestLookupCacheAvoidsPathWalks(t *testing.T) {
	cluster := cacheCluster()
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		ac := cl.EnableAttrCache(time.Minute)
		cl.Mkdir(p, "a")
		cl.Mkdir(p, "a/b")
		if _, err := cl.Create(p, "a/b/f"); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		lookupsBefore := cluster.Server.NFS.Ops[nfs3.ProcLookup]
		for i := 0; i < 10; i++ {
			if _, err := cl.Open(p, "a/b/f"); err != nil {
				t.Errorf("open: %v", err)
				return
			}
		}
		extra := cluster.Server.NFS.Ops[nfs3.ProcLookup] - lookupsBefore
		if extra > 3 { // first walk may miss; the rest must hit
			t.Errorf("%d LOOKUP RPCs for 10 cached opens", extra)
		}
		if ac.LookupHits < 20 {
			t.Errorf("lookup hits = %d", ac.LookupHits)
		}
	})
	cluster.Run()
}

func TestStatThroughCache(t *testing.T) {
	cluster := cacheCluster()
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableAttrCache(time.Minute)
		cl.Mkdir(p, "d")
		f, _ := cl.Create(p, "d/x")
		buf := cl.NewBuffer(512)
		f.WriteAt(p, buf, 0, 0, 512, false)
		attr, err := cl.Stat(p, "d/x")
		if err != nil || attr.Size != 512 {
			t.Errorf("stat: %+v %v", attr, err)
		}
		if _, err := cl.Stat(p, "missing"); err == nil {
			t.Error("stat of missing file succeeded")
		}
	})
	cluster.Run()
}
