package core

import (
	"container/list"
	"fmt"

	"repro/internal/des"
	"repro/internal/nfs3"
	"repro/internal/trace"
)

// Client-side data caching with close-to-open consistency — the standard
// NFS client behaviour whose *limits* motivate the paper's introduction
// (client memory pressure and revalidation cost are why fast uncached
// server access matters). The cache is page-based and bounded: reads are
// served locally while the file's cached mtime validator holds, writes are
// buffered dirty and pushed back on Flush (write-back + COMMIT), and a
// changed validator drops every cached page of the file.
//
// The cache is deliberately opt-in and separate from the direct-I/O path
// used by the paper's experiments: enable it with Client.EnableDataCache
// and use File.ReadAtCached / WriteAtCached / Flush.

const dataCachePageSize = 64 << 10

// DataCache is one client's file data cache.
type DataCache struct {
	c        *Client
	maxBytes int64
	files    map[nfs3.FH]*cachedFile
	lru      *list.List // *cachedPage, front = most recent
	bytes    int64

	// Stats.
	Hits, Misses   int64
	Revalidations  int64
	Invalidations  int64
	WritebackPages int64
}

type cachedFile struct {
	fh    nfs3.FH
	mtime nfs3.NFSTime // validator
	size  int64
	pages map[int64]*cachedPage
}

type cachedPage struct {
	file  *cachedFile
	idx   int64
	data  []byte
	valid int // bytes of data that are meaningful
	dirty bool
	elem  *list.Element
}

// EnableDataCache turns on client-side data caching bounded to maxBytes.
// Requires the attribute cache (enabled implicitly if absent) for
// validator bookkeeping.
func (c *Client) EnableDataCache(maxBytes int64) *DataCache {
	if c.attrCache == nil {
		c.EnableAttrCache(3e9) // 3s actimeo default
	}
	c.dataCache = &DataCache{
		c:        c,
		maxBytes: maxBytes,
		files:    make(map[nfs3.FH]*cachedFile),
		lru:      list.New(),
	}
	return c.dataCache
}

// DataCacheStats returns the cache, or nil when disabled.
func (c *Client) DataCacheStats() *DataCache { return c.dataCache }

// CachedBytes returns resident cached bytes.
func (dc *DataCache) CachedBytes() int64 { return dc.bytes }

func (dc *DataCache) file(fh nfs3.FH) *cachedFile {
	cf, ok := dc.files[fh]
	if !ok {
		cf = &cachedFile{fh: fh, pages: make(map[int64]*cachedPage)}
		dc.files[fh] = cf
	}
	return cf
}

// revalidate checks the file's mtime against the cached validator,
// dropping the file's pages on change (close-to-open: another client wrote).
func (dc *DataCache) revalidate(p *des.Proc, f *File, cf *cachedFile) error {
	attr, err := f.c.NFS.GetAttr(p, f.fh)
	if err != nil {
		return err
	}
	dc.Revalidations++
	if f.c.attrCache != nil {
		f.c.attrCache.putAttr(f.fh, attr)
	}
	if attr.Mtime != cf.mtime {
		dc.invalidateFile(cf)
		cf.mtime = attr.Mtime
	}
	cf.size = int64(attr.Size)
	return nil
}

// invalidateFile drops every clean page of the file (dirty pages are local
// truth awaiting writeback and survive).
func (dc *DataCache) invalidateFile(cf *cachedFile) {
	for idx, pg := range cf.pages {
		if pg.dirty {
			continue
		}
		dc.lru.Remove(pg.elem)
		delete(cf.pages, idx)
		dc.bytes -= int64(len(pg.data))
		dc.Invalidations++
	}
}

func (dc *DataCache) touch(pg *cachedPage) { dc.lru.MoveToFront(pg.elem) }

// insert adds a page, evicting LRU pages (flushing dirty victims) to stay
// within the bound.
func (dc *DataCache) insert(p *des.Proc, f *File, cf *cachedFile, idx int64, data []byte, valid int, dirty bool) *cachedPage {
	for dc.bytes+int64(len(data)) > dc.maxBytes {
		tail := dc.lru.Back()
		if tail == nil {
			break
		}
		victim := tail.Value.(*cachedPage)
		if victim.dirty {
			if err := dc.writeback(p, victim); err != nil {
				break // keep the page; caller will surface errors on Flush
			}
		}
		dc.lru.Remove(tail)
		delete(victim.file.pages, victim.idx)
		dc.bytes -= int64(len(victim.data))
	}
	pg := &cachedPage{file: cf, idx: idx, data: data, valid: valid, dirty: dirty}
	pg.elem = dc.lru.PushFront(pg)
	cf.pages[idx] = pg
	dc.bytes += int64(len(data))
	return pg
}

// writeback pushes one dirty page to the server (unstable; Flush commits).
func (dc *DataCache) writeback(p *des.Proc, pg *cachedPage) error {
	buf := dc.c.NewMaterializedBuffer(pg.valid)
	if d := buf.Bytes(); d != nil {
		copy(d, pg.data[:pg.valid])
	}
	f := &File{c: dc.c, fh: pg.file.fh}
	if _, err := f.WriteAt(p, buf, 0, pg.idx*dataCachePageSize, pg.valid, false); err != nil {
		return err
	}
	pg.dirty = false
	dc.WritebackPages++
	return nil
}

// fetch reads one page from the server into the cache.
func (dc *DataCache) fetch(p *des.Proc, f *File, cf *cachedFile, idx int64) (*cachedPage, error) {
	buf := dc.c.NewMaterializedBuffer(dataCachePageSize)
	n, _, err := f.ReadAt(p, buf, 0, idx*dataCachePageSize, dataCachePageSize, false)
	if err != nil {
		return nil, err
	}
	data := make([]byte, dataCachePageSize)
	if d := buf.Bytes(); d != nil {
		copy(data, d[:n])
	}
	return dc.insert(p, f, cf, idx, data, n, false), nil
}

// ReadAtCached reads through the client data cache into dst. It returns the
// bytes read and an EOF flag.
func (f *File) ReadAtCached(p *des.Proc, dst []byte, off int64) (int, bool, error) {
	dc := f.c.dataCache
	if dc == nil {
		return 0, false, fmt.Errorf("core: data cache not enabled")
	}
	cf := dc.file(f.fh)
	// Revalidate when the attribute entry has gone stale (actimeo model).
	if _, ok := f.c.attrCache.getAttr(f.fh); !ok || cf.mtime == (nfs3.NFSTime{}) && len(cf.pages) == 0 {
		if err := dc.revalidate(p, f, cf); err != nil {
			return 0, false, err
		}
	}
	got := 0
	for got < len(dst) {
		pos := off + int64(got)
		if pos >= cf.size {
			break
		}
		idx := pos / dataCachePageSize
		tr := f.c.Node.Sim().Tracer()
		pg, ok := cf.pages[idx]
		if ok {
			dc.Hits++
			if tr != nil {
				tr.Instant(int64(p.Now()), trace.LayerCore, trace.KindCacheHit,
					f.c.Node.Name(), "data-hit", uint64(idx), 0)
			}
			dc.touch(pg)
		} else {
			dc.Misses++
			if tr != nil {
				tr.Instant(int64(p.Now()), trace.LayerCore, trace.KindCacheMiss,
					f.c.Node.Name(), "data-miss", uint64(idx), 0)
			}
			var err error
			pg, err = dc.fetch(p, f, cf, idx)
			if err != nil {
				return got, false, err
			}
		}
		pageOff := int(pos - idx*dataCachePageSize)
		if pageOff >= pg.valid {
			break
		}
		n := copy(dst[got:], pg.data[pageOff:pg.valid])
		// Charge the local copy.
		f.c.Node.CPU.Copy(p, n)
		got += n
	}
	return got, off+int64(got) >= cf.size, nil
}

// WriteAtCached buffers src into the cache as dirty pages (write-back).
// Partial-page writes read-modify-write; Flush pushes everything out and
// commits.
func (f *File) WriteAtCached(p *des.Proc, src []byte, off int64) (int, error) {
	dc := f.c.dataCache
	if dc == nil {
		return 0, fmt.Errorf("core: data cache not enabled")
	}
	cf := dc.file(f.fh)
	written := 0
	for written < len(src) {
		pos := off + int64(written)
		idx := pos / dataCachePageSize
		pageOff := int(pos - idx*dataCachePageSize)
		n := dataCachePageSize - pageOff
		if rem := len(src) - written; n > rem {
			n = rem
		}
		pg, ok := cf.pages[idx]
		if !ok {
			if pageOff == 0 && n == dataCachePageSize {
				// Full-page overwrite: no fetch needed.
				pg = dc.insert(p, f, cf, idx, make([]byte, dataCachePageSize), 0, true)
			} else if idx*dataCachePageSize < cf.size {
				var err error
				pg, err = dc.fetch(p, f, cf, idx)
				if err != nil {
					return written, err
				}
			} else {
				pg = dc.insert(p, f, cf, idx, make([]byte, dataCachePageSize), 0, true)
			}
		}
		copy(pg.data[pageOff:], src[written:written+n])
		if pageOff+n > pg.valid {
			pg.valid = pageOff + n
		}
		pg.dirty = true
		dc.touch(pg)
		f.c.Node.CPU.Copy(p, n)
		written += n
		if end := pos + int64(n); end > cf.size {
			cf.size = end
		}
	}
	return written, nil
}

// Flush writes every dirty page of the file back and commits (the NFS
// close/fsync path). The file's validator is refreshed so the client's own
// writes do not invalidate its cache.
func (f *File) Flush(p *des.Proc) error {
	dc := f.c.dataCache
	if dc == nil {
		return nil
	}
	cf := dc.file(f.fh)
	for _, pg := range cf.pages {
		if pg.dirty {
			if err := dc.writeback(p, pg); err != nil {
				return err
			}
		}
	}
	if err := f.Commit(p); err != nil {
		return err
	}
	attr, err := f.c.NFS.GetAttr(p, f.fh)
	if err != nil {
		return err
	}
	cf.mtime = attr.Mtime
	cf.size = int64(attr.Size)
	if f.c.attrCache != nil {
		f.c.attrCache.putAttr(f.fh, attr)
	}
	return nil
}
