package core

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

// TestDynamicCreditsIsolateMisbehavingClient drives the §4.1 DONE-
// withholding attack end to end and verifies the future-work credit scheme:
// with static credits the shared reply pool starves the honest client; with
// dynamic credits the pool and grant are per connection, so only the
// attacker wedges.
func TestDynamicCreditsIsolateMisbehavingClient(t *testing.T) {
	run := func(dynamic bool) (victimOps int, attackerGrant int) {
		profile := profiles.SolarisSDR()
		profile.RDMAClient.DynamicCredits = dynamic
		profile.RDMAServer.DynamicCredits = dynamic
		profile.RDMAClient.Credits = 8
		profile.RDMAServer.Credits = 8
		profile.RDMAServer.ReplyBufPool = 8
		cluster := NewCluster(Config{
			Profile: profile, Transport: TransportRDMA,
			Design: rpcrdma.ReadRead, RegMode: memreg.Regular,
			Clients: 2,
		})
		evil, good := cluster.Clients[0], cluster.Clients[1]
		cluster.Start("attacker", func(p *des.Proc) {
			evil.RDMA.DropDone = true
			f, _ := evil.Create(p, "bait")
			buf := evil.NewBuffer(32 << 10)
			f.WriteAt(p, buf, 0, 0, 32<<10, false)
			for i := 0; i < 20; i++ {
				if _, _, err := f.ReadAt(p, buf, 0, 0, 32<<10, false); err != nil {
					return
				}
			}
		})
		cluster.Start("victim", func(p *des.Proc) {
			p.Sleep(30 * time.Millisecond)
			f, err := good.Create(p, "work")
			if err != nil {
				return
			}
			buf := good.NewBuffer(32 << 10)
			f.WriteAt(p, buf, 0, 0, 32<<10, false)
			deadline := p.Now() + des.Time(200*time.Millisecond)
			for p.Now() < deadline {
				if _, _, err := f.ReadAt(p, buf, 0, 0, 32<<10, false); err != nil {
					return
				}
				victimOps++
			}
		})
		cluster.RunUntil(des.Time(time.Second))
		return victimOps, evil.RDMA.GrantedCredits()
	}

	staticOps, staticGrant := run(false)
	dynOps, dynGrant := run(true)
	if staticOps != 0 {
		t.Errorf("static credits: victim completed %d ops; the shared pool should starve it", staticOps)
	}
	if staticGrant != 8 {
		t.Errorf("static grant = %d, want the constant 8", staticGrant)
	}
	if dynOps == 0 {
		t.Error("dynamic credits: victim starved; per-connection pools should isolate the attacker")
	}
	if dynGrant != 1 {
		t.Errorf("attacker grant = %d, want collapsed to 1", dynGrant)
	}
}
