package core

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func testConfigs() []Config {
	var out []Config
	for _, tr := range []Transport{TransportRDMA, TransportIPoIB, TransportGigE} {
		cfg := Config{
			Profile:   profiles.LinuxSDR(),
			Transport: tr,
			Design:    rpcrdma.ReadWrite,
			RegMode:   memreg.Regular,
			CopyData:  true,
		}
		out = append(out, cfg)
	}
	// RDMA variants: Read-Read design, every registration mode.
	rr := Config{Profile: profiles.SolarisSDR(), Transport: TransportRDMA, Design: rpcrdma.ReadRead, RegMode: memreg.Regular, CopyData: true}
	out = append(out, rr)
	for _, mode := range []memreg.Mode{memreg.FMR, memreg.AllPhysical, memreg.Cache} {
		out = append(out, Config{Profile: profiles.LinuxSDR(), Transport: TransportRDMA, Design: rpcrdma.ReadWrite, RegMode: mode, CopyData: true})
	}
	return out
}

func cfgName(cfg Config) string {
	return fmt.Sprintf("%v-%v-%v", cfg.Transport, cfg.Design, cfg.RegMode)
}

// TestEndToEndIntegrity writes and reads back a patterned file across every
// transport/design/registration combination.
func TestEndToEndIntegrity(t *testing.T) {
	for _, cfg := range testConfigs() {
		cfg := cfg
		t.Run(cfgName(cfg), func(t *testing.T) {
			cluster := NewCluster(cfg)
			cl := cluster.Clients[0]
			cluster.Start("test", func(p *des.Proc) {
				f, err := cl.Create(p, "it.bin")
				if err != nil {
					t.Errorf("create: %v", err)
					return
				}
				const size = 300 << 10
				wbuf := cl.NewMaterializedBuffer(size)
				for i, d := 0, wbuf.Bytes(); i < size; i++ {
					d[i] = byte(i*13 + 7)
				}
				// Write in two records crossing the max-bulk boundary.
				if _, err := f.WriteAt(p, wbuf, 0, 0, 200<<10, false); err != nil {
					t.Errorf("write1: %v", err)
					return
				}
				if _, err := f.WriteAt(p, wbuf, 200<<10, 200<<10, 100<<10, true); err != nil {
					t.Errorf("write2: %v", err)
					return
				}
				if sz, _ := f.Size(p); sz != size {
					t.Errorf("size = %d", sz)
				}
				for _, direct := range []bool{false, true} {
					rbuf := cl.NewMaterializedBuffer(size)
					var got int
					for got < size {
						req := 128 << 10
						if size-got < req {
							req = size - got
						}
						n, eof, err := f.ReadAt(p, rbuf, got, int64(got), req, direct)
						if err != nil {
							t.Errorf("read(direct=%v): %v", direct, err)
							return
						}
						got += n
						if eof {
							break
						}
					}
					if got != size {
						t.Errorf("read %d bytes, want %d", got, size)
						return
					}
					if !bytes.Equal(rbuf.Bytes(), wbuf.Bytes()) {
						t.Errorf("data corrupted (direct=%v)", direct)
						return
					}
				}
			})
			cluster.Run()
		})
	}
}

func TestDirectoryTreeOverCluster(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Cache, CopyData: true,
	})
	cl := cluster.Clients[0]
	cluster.Start("tree", func(p *des.Proc) {
		if err := cl.Mkdir(p, "a"); err != nil {
			t.Errorf("mkdir a: %v", err)
			return
		}
		if err := cl.Mkdir(p, "a/b"); err != nil {
			t.Errorf("mkdir a/b: %v", err)
			return
		}
		f, err := cl.Create(p, "a/b/file.txt")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewMaterializedBuffer(10)
		copy(buf.Bytes(), "hello tree")
		f.WriteAt(p, buf, 0, 0, 10, false)
		g, err := cl.Open(p, "a/b/file.txt")
		if err != nil {
			t.Errorf("open: %v", err)
			return
		}
		rbuf := cl.NewMaterializedBuffer(10)
		n, _, err := g.ReadAt(p, rbuf, 0, 0, 10, false)
		if err != nil || n != 10 || string(rbuf.Bytes()) != "hello tree" {
			t.Errorf("read: n=%d %q %v", n, rbuf.Bytes(), err)
		}
		// READDIR of a large directory exercises the long-reply path over
		// the full stack.
		for i := 0; i < 200; i++ {
			if _, err := cl.Create(p, fmt.Sprintf("a/f%03d", i)); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		dirFH, _, err := cl.NFS.Lookup(p, cl.Root, "a")
		if err != nil {
			t.Errorf("lookup a: %v", err)
			return
		}
		count := 0
		cookie := uint64(0)
		for {
			res, err := cl.NFS.ReadDir(p, dirFH, cookie, 8192, false)
			if err != nil {
				t.Errorf("readdir: %v", err)
				return
			}
			for _, ent := range res.Entries {
				count++
				cookie = ent.Cookie
			}
			if res.EOF {
				break
			}
		}
		if count != 201 { // 200 files + subdir b
			t.Errorf("listed %d entries, want 201", count)
		}
		if err := cl.Remove(p, "a/b/file.txt"); err != nil {
			t.Errorf("remove: %v", err)
		}
	})
	cluster.Run()
}

func TestMultipleClientsShareNamespace(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular,
		Clients: 3, CopyData: true,
	})
	cluster.Start("writer", func(p *des.Proc) {
		cl := cluster.Clients[0]
		f, err := cl.Create(p, "shared.dat")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewMaterializedBuffer(4096)
		for i := range buf.Bytes() {
			buf.Bytes()[i] = 0xAB
		}
		f.WriteAt(p, buf, 0, 0, 4096, true)
		// Other clients read it back.
		for _, other := range cluster.Clients[1:] {
			g, err := other.Open(p, "shared.dat")
			if err != nil {
				t.Errorf("open from client: %v", err)
				return
			}
			rbuf := other.NewMaterializedBuffer(4096)
			n, _, err := g.ReadAt(p, rbuf, 0, 0, 4096, false)
			if err != nil || n != 4096 {
				t.Errorf("cross-client read: n=%d %v", n, err)
				return
			}
			if rbuf.Bytes()[100] != 0xAB {
				t.Error("cross-client data mismatch")
			}
		}
	})
	cluster.Run()
}

func TestDiskBackendEndToEnd(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxDDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.AllPhysical,
		Backend: BackendDisk, PageCacheBytes: 32 << 20,
	})
	cl := cluster.Clients[0]
	cluster.Start("disk", func(p *des.Proc) {
		f, err := cl.Create(p, "big.dat")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewBuffer(1 << 20)
		const size = 64 << 20
		for off := int64(0); off < size; off += 1 << 20 {
			if _, err := f.WriteAt(p, buf, 0, off, 1<<20, false); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		if err := f.Commit(p); err != nil {
			t.Errorf("commit: %v", err)
		}
		start := p.Now()
		for off := int64(0); off < size; off += 1 << 20 {
			if _, _, err := f.ReadAt(p, buf, 0, off, 1<<20, true); err != nil {
				t.Errorf("read: %v", err)
				return
			}
		}
		if p.Now() == start {
			t.Error("disk-backed read took no simulated time")
		}
		if cluster.Server.Disk.BytesWritten == 0 {
			t.Error("nothing reached the disks")
		}
		// Working set (64 MiB) exceeds the cache (32 MiB): must miss.
		if cluster.Server.Cache.Misses == 0 {
			t.Error("expected cache misses with oversubscribed working set")
		}
	})
	cluster.Run()
}

// TestSecurityPostureByDesign asserts the §4 exposure claims at cluster
// level: Read-Write never exposes server memory; Read-Read does.
func TestSecurityPostureByDesign(t *testing.T) {
	run := func(design rpcrdma.Design) (exposedNow int64, exposedEver int64) {
		cluster := NewCluster(Config{
			Profile: profiles.SolarisSDR(), Transport: TransportRDMA,
			Design: design, RegMode: memreg.Regular, CopyData: true,
		})
		cl := cluster.Clients[0]
		cluster.Start("io", func(p *des.Proc) {
			f, _ := cl.Create(p, "x")
			buf := cl.NewBuffer(128 << 10)
			f.WriteAt(p, buf, 0, 0, 128<<10, false)
			for i := 0; i < 4; i++ {
				f.ReadAt(p, buf, 0, 0, 128<<10, false)
			}
			exposedNow = cluster.Server.Node.HCA.RemoteExposedBytes()
			exposedEver = cluster.Server.Node.HCA.RemoteExposedEver()
		})
		cluster.Run()
		return
	}
	if _, ever := run(rpcrdma.ReadWrite); ever != 0 {
		t.Errorf("read-write design exposed server MRs %d times", ever)
	}
	if _, ever := run(rpcrdma.ReadRead); ever == 0 {
		t.Error("read-read design should expose server MRs")
	}
}
