package core

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

// breakConnection forces the client's QP into the error state by issuing a
// bogus remote write (protection error), as a misprogrammed ULP or cable
// event would.
func breakConnection(p *des.Proc, cl *Client) {
	junk := cl.Node.Mem.Alloc(64)
	cl.RDMA.QP().PostAndWait(p, &ibsim.SendWQE{
		WRID: 0xdead, Op: ibsim.OpWrite,
		Local:     []ibsim.LocalSeg{{Buf: junk, Len: 64}},
		RemoteKey: 0x0BADBEEF, RemoteAddr: 0x1000,
	})
}

func TestReconnectRestoresService(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		f, err := cl.Create(p, "persist")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewMaterializedBuffer(4096)
		copy(buf.Bytes(), "survives the reconnect")
		if _, err := f.WriteAt(p, buf, 0, 0, 4096, true); err != nil {
			t.Errorf("write: %v", err)
			return
		}

		breakConnection(p, cl)
		if !cl.RDMA.Broken() {
			t.Error("connection should report broken after protection error")
		}
		if _, _, err := f.ReadAt(p, buf, 0, 0, 4096, false); err == nil {
			t.Error("I/O on a broken connection should fail")
		}

		if err := cl.Reconnect(p); err != nil {
			t.Errorf("reconnect: %v", err)
			return
		}
		rbuf := cl.NewMaterializedBuffer(4096)
		n, _, err := f.ReadAt(p, rbuf, 0, 0, 4096, false)
		if err != nil || n != 4096 {
			t.Errorf("read after reconnect: n=%d err=%v", n, err)
			return
		}
		if string(rbuf.Bytes()[:22]) != "survives the reconnect" {
			t.Error("data lost across reconnect")
		}
		// The file handle (stateless NFSv3) and the whole namespace survive.
		if _, err := cl.Open(p, "persist"); err != nil {
			t.Errorf("open after reconnect: %v", err)
		}
	})
	cluster.Run()
}

// TestBrokenConnectionReleasesParkedReplies: reply buffers a dead client
// never acknowledged must be reclaimed when the connection drops — without
// this, §4.1's resource pinning would outlive the attacker.
func TestBrokenConnectionReleasesParkedReplies(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.SolarisSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadRead, RegMode: memreg.Regular,
	})
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.RDMA.DropDone = true
		f, _ := cl.Create(p, "bait")
		buf := cl.NewBuffer(32 << 10)
		f.WriteAt(p, buf, 0, 0, 32<<10, false)
		for i := 0; i < 6; i++ {
			if _, _, err := f.ReadAt(p, buf, 0, 0, 32<<10, false); err != nil {
				return
			}
		}
		if cluster.Server.RDMA.ParkedReplies() != 6 {
			t.Errorf("parked = %d, want 6", cluster.Server.RDMA.ParkedReplies())
		}
		exposedBefore := cluster.Server.Node.HCA.RemoteExposedBytes()
		if exposedBefore == 0 {
			t.Error("read-read replies should be exposed while parked")
		}
		breakConnection(p, cl)
		p.Sleep(10 * time.Millisecond) // let the server's receiver observe the flush
		if got := cluster.Server.RDMA.ParkedReplies(); got != 0 {
			t.Errorf("parked = %d after connection death, want 0", got)
		}
		if got := cluster.Server.Node.HCA.RemoteExposedBytes(); got != 0 {
			t.Errorf("%d bytes still exposed after connection death", got)
		}
	})
	cluster.Run()
}
