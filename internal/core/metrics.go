package core

import (
	"fmt"
	"io"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/stats"
)

// Metrics is a point-in-time snapshot of a cluster's observable state,
// suitable for experiment reports and the command-line tools.
type Metrics struct {
	SimTime des.Time

	// Server side.
	ServerCPUPct      float64
	ServerInterrupts  int64
	ServerTPTUtilPct  float64
	ServerPortTxPct   float64
	ServerPortRxPct   float64
	ServerExposedMRs  int64 // remotely accessible registrations right now
	ServerExposedEver int64
	ParkedReplies     int
	Registration      memreg.Stats

	// Disk back end (zero-valued for tmpfs).
	DiskUtilPct   float64
	CacheHitRatio float64
	DiskBytesRead int64

	// Per-client CPU utilization.
	ClientCPUPct []float64

	// Fabric counters (op counts, bytes, errors).
	Fabric []stats.CounterValue
}

// Metrics snapshots the cluster. Utilizations are computed over the window
// starting at since (zero = since simulation start).
func (c *Cluster) Metrics(since des.Time) Metrics {
	m := Metrics{
		SimTime:           c.Sim.Now(),
		ServerCPUPct:      c.Server.Node.CPU.UtilizationSince(since) * 100,
		ServerInterrupts:  c.Server.Node.CPU.Interrupts(),
		ServerTPTUtilPct:  c.Server.Node.HCA.TPTEngineUtilization(since) * 100,
		ServerExposedMRs:  c.Server.Node.HCA.RemoteExposedBytes(),
		ServerExposedEver: c.Server.Node.HCA.RemoteExposedEver(),
		Fabric:            c.Fabric.Counters.Snapshot(),
	}
	tx, rx := c.Server.Node.PortUtilization(since)
	m.ServerPortTxPct, m.ServerPortRxPct = tx*100, rx*100
	if c.Server.Mgr != nil {
		m.Registration = c.Server.Mgr.Stats()
	}
	if c.Server.RDMA != nil {
		m.ParkedReplies = c.Server.RDMA.ParkedReplies()
	}
	if c.Server.Disk != nil {
		m.DiskUtilPct = c.Server.Disk.Utilization(since) * 100
		m.DiskBytesRead = c.Server.Disk.BytesRead
	}
	if c.Server.Cache != nil {
		if tot := c.Server.Cache.Hits + c.Server.Cache.Misses; tot > 0 {
			m.CacheHitRatio = float64(c.Server.Cache.Hits) / float64(tot)
		}
	}
	for _, cl := range c.Clients {
		m.ClientCPUPct = append(m.ClientCPUPct, cl.Node.CPU.UtilizationSince(since)*100)
	}
	return m
}

// Write renders the snapshot as a human-readable report.
func (m Metrics) Write(w io.Writer) {
	fmt.Fprintf(w, "simulated time: %v\n", m.SimTime)
	fmt.Fprintf(w, "server: cpu %.1f%%  tpt-engine %.1f%%  port tx/rx %.1f%%/%.1f%%  interrupts %d\n",
		m.ServerCPUPct, m.ServerTPTUtilPct, m.ServerPortTxPct, m.ServerPortRxPct, m.ServerInterrupts)
	fmt.Fprintf(w, "server exposure: %d bytes now, %d MRs ever; parked replies %d\n",
		m.ServerExposedMRs, m.ServerExposedEver, m.ParkedReplies)
	fmt.Fprintf(w, "registration: dynamic=%d fmr=%d fallbacks=%d cacheHits=%d cacheMisses=%d evictions=%d\n",
		m.Registration.Registers, m.Registration.FMRMaps, m.Registration.FMRFallback,
		m.Registration.CacheHits, m.Registration.CacheMisses, m.Registration.Evictions)
	if m.DiskBytesRead > 0 || m.DiskUtilPct > 0 {
		fmt.Fprintf(w, "disk: util %.1f%%  read %d bytes  cache hit ratio %.2f\n",
			m.DiskUtilPct, m.DiskBytesRead, m.CacheHitRatio)
	}
	for i, u := range m.ClientCPUPct {
		fmt.Fprintf(w, "client%d: cpu %.1f%%\n", i, u)
	}
	for _, cv := range m.Fabric {
		fmt.Fprintf(w, "  fabric %-24s %d\n", cv.Name, cv.Value)
	}
}

// EnableTrace streams every simulator trace line (protocol engines call
// Proc.Logf at interesting points) to w with virtual timestamps.
func (c *Cluster) EnableTrace(w io.Writer) {
	c.Sim.SetTrace(func(t des.Time, format string, args ...any) {
		fmt.Fprintf(w, "%12v  ", t)
		fmt.Fprintf(w, format+"\n", args...)
	})
}
