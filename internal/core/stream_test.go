package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
)

func streamCluster(tr Transport) *Cluster {
	return NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: tr,
		Design: rpcrdma.ReadWrite, RegMode: memreg.AllPhysical,
	})
}

func TestStreamMovesEverything(t *testing.T) {
	cluster := streamCluster(TransportRDMA)
	cl := cluster.Clients[0]
	cluster.Start("s", func(p *des.Proc) {
		f, _ := cl.Create(p, "s")
		const size = 10<<20 + 12345 // deliberately unaligned
		n, err := f.WriteSequential(p, size, StreamConfig{Depth: 4})
		if err != nil || n != size {
			t.Errorf("write: n=%d err=%v", n, err)
			return
		}
		if sz, _ := f.Size(p); sz != size {
			t.Errorf("file size = %d, want %d", sz, size)
		}
		n, err = f.ReadSequential(p, size, StreamConfig{Depth: 4, DirectIO: true})
		if err != nil || n != size {
			t.Errorf("read: n=%d err=%v", n, err)
		}
	})
	cluster.Run()
}

func TestWriteBehindCommitsOnce(t *testing.T) {
	cluster := streamCluster(TransportRDMA)
	cl := cluster.Clients[0]
	cluster.Start("s", func(p *des.Proc) {
		f, _ := cl.Create(p, "wb")
		commitsBefore := cluster.Server.NFS.Ops[nfs3.ProcCommit]
		if _, err := f.WriteSequential(p, 4<<20, StreamConfig{Depth: 8}); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if got := cluster.Server.NFS.Ops[nfs3.ProcCommit] - commitsBefore; got != 1 {
			t.Errorf("commits = %d, want exactly 1 (write-behind)", got)
		}
		// Stable mode must not commit.
		g, _ := cl.Create(p, "sync")
		commitsBefore = cluster.Server.NFS.Ops[nfs3.ProcCommit]
		if _, err := g.WriteSequential(p, 1<<20, StreamConfig{Depth: 2, Stable: true}); err != nil {
			t.Errorf("stable write: %v", err)
			return
		}
		if got := cluster.Server.NFS.Ops[nfs3.ProcCommit] - commitsBefore; got != 0 {
			t.Errorf("stable mode issued %d commits", got)
		}
	})
	cluster.Run()
}

// TestPipeliningFillsLink reproduces why readahead matters: a single
// synchronous stream is bounded by per-request latency, while a modest
// readahead depth approaches the transport's ceiling.
func TestPipeliningFillsLink(t *testing.T) {
	measure := func(tr Transport, depth, rec int) float64 {
		cluster := streamCluster(tr)
		cl := cluster.Clients[0]
		var mbps float64
		cluster.Start("s", func(p *des.Proc) {
			f, _ := cl.Create(p, "g")
			const size = 16 << 20
			if _, err := f.WriteSequential(p, size, StreamConfig{Depth: 8, RecordSize: rec}); err != nil {
				t.Errorf("populate: %v", err)
				return
			}
			start := p.Now()
			n, err := f.ReadSequential(p, size, StreamConfig{Depth: depth, RecordSize: rec, DirectIO: true})
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			mbps = stats.MBps(n, (p.Now() - start).Seconds())
		})
		cluster.Run()
		return mbps
	}
	// RDMA, 128 KiB records: per-op latency dominates a serial stream.
	serial := measure(TransportRDMA, 1, 128<<10)
	pipelined := measure(TransportRDMA, 4, 128<<10)
	if pipelined < serial*1.5 {
		t.Fatalf("RDMA pipelining gained too little: depth1 %.1f vs depth4 %.1f MB/s", serial, pipelined)
	}
	// GigE approaches link speed with readahead (the paper's 107 MB/s
	// single-process number presumes the kernel's readahead).
	gige := measure(TransportGigE, 4, 1<<20)
	if gige < 95 || gige > 120 {
		t.Fatalf("pipelined GigE read = %.1f MB/s, want near link speed (~105-115)", gige)
	}
}

func TestStreamDeterministic(t *testing.T) {
	run := func() des.Time {
		cluster := streamCluster(TransportRDMA)
		cl := cluster.Clients[0]
		cluster.Start("s", func(p *des.Proc) {
			f, _ := cl.Create(p, "d")
			f.WriteSequential(p, 2<<20, StreamConfig{Depth: 3})
			f.ReadSequential(p, 2<<20, StreamConfig{Depth: 3})
		})
		return cluster.Run()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("non-deterministic: %v vs %v", a, b)
	}
}
