package core

import (
	"strings"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/rpcrdma"
)

// Client is one simulated NFS client host with a mounted export.
type Client struct {
	cluster *Cluster
	Index   int
	Node    *ibsim.Node
	Mgr     *memreg.Manager

	Transport oncrpc.Transport
	RDMA      *rpcrdma.ClientTransport // nil on TCP transports
	NFS       *nfs3.Client
	Root      nfs3.FH

	attrCache *AttrCache           // nil unless EnableAttrCache was called
	dataCache *DataCache           // nil unless EnableDataCache was called
	recovery  *recoveringTransport // nil unless EnableRecovery was called

	// Transport counters carried over from connections retired by Reconnect,
	// so TransportStats stays cumulative across transport swaps.
	lostTimeouts    int64
	lostRetransmits int64
}

// TransportStats returns cumulative RDMA transport timeout and
// retransmission counts across every connection this client has used,
// including ones replaced by Reconnect. Zeros on TCP transports.
func (c *Client) TransportStats() (timeouts, retransmits int64) {
	timeouts, retransmits = c.lostTimeouts, c.lostRetransmits
	if c.RDMA != nil {
		timeouts += c.RDMA.Timeouts
		retransmits += c.RDMA.Retransmits
	}
	return timeouts, retransmits
}

// Buffer is client application memory used for file I/O: it is backed by a
// simulator buffer so the RDMA transport can register it for the zero-copy
// direct-I/O path.
type Buffer struct {
	buf  *ibsim.Buffer
	size int
}

// NewBuffer allocates application memory on the client.
func (c *Client) NewBuffer(size int) *Buffer {
	return &Buffer{buf: c.Node.Mem.Alloc(size), size: size}
}

// NewMaterializedBuffer allocates application memory whose bytes are always
// real, regardless of the cluster's phantom-data setting (for integrity
// checks).
func (c *Client) NewMaterializedBuffer(size int) *Buffer {
	return &Buffer{buf: c.Node.Mem.AllocMaterialized(size), size: size}
}

// Size returns the buffer capacity.
func (b *Buffer) Size() int { return b.size }

// Bytes returns the materialized contents (nil in phantom mode).
func (b *Buffer) Bytes() []byte { return b.buf.Data() }

// bulk builds the transport descriptor for [off, off+n).
func (b *Buffer) bulk(off, n int) *oncrpc.Bulk {
	var data []byte
	if d := b.buf.Data(); d != nil {
		data = d[off : off+n]
	}
	return &oncrpc.Bulk{Data: data, Len: n, Handle: b.buf, Off: off}
}

// resolvePath walks a '/'-separated path from the root, returning the
// containing directory handle and the final component.
func (c *Client) resolvePath(p *des.Proc, path string) (dir nfs3.FH, name string, err error) {
	parts := splitPath(path)
	if len(parts) == 0 {
		return c.Root, ".", nil
	}
	dir = c.Root
	for _, comp := range parts[:len(parts)-1] {
		dir, _, err = c.lookup(p, dir, comp)
		if err != nil {
			return nfs3.FH{}, "", err
		}
	}
	return dir, parts[len(parts)-1], nil
}

func splitPath(path string) []string {
	var out []string
	for _, s := range strings.Split(path, "/") {
		if s != "" && s != "." {
			out = append(out, s)
		}
	}
	return out
}

// File is an open file on the mount. NFSv3 is stateless: a File is just a
// handle plus the client it came from.
type File struct {
	c  *Client
	fh nfs3.FH
}

// FH returns the file handle.
func (f *File) FH() nfs3.FH { return f.fh }

// Create creates (or opens, if present) a regular file at path.
func (c *Client) Create(p *des.Proc, path string) (*File, error) {
	dir, name, err := c.resolvePath(p, path)
	if err != nil {
		return nil, err
	}
	fh, _, err := c.NFS.Create(p, dir, name, 0644)
	if err != nil {
		if fh2, _, lerr := c.NFS.Lookup(p, dir, name); lerr == nil {
			return &File{c: c, fh: fh2}, nil
		}
		return nil, err
	}
	return &File{c: c, fh: fh}, nil
}

// Open opens an existing file at path.
func (c *Client) Open(p *des.Proc, path string) (*File, error) {
	dir, name, err := c.resolvePath(p, path)
	if err != nil {
		return nil, err
	}
	fh, _, err := c.lookup(p, dir, name)
	if err != nil {
		return nil, err
	}
	return &File{c: c, fh: fh}, nil
}

// Mkdir creates a directory at path.
func (c *Client) Mkdir(p *des.Proc, path string) error {
	dir, name, err := c.resolvePath(p, path)
	if err != nil {
		return err
	}
	_, _, err = c.NFS.Mkdir(p, dir, name, 0755)
	return err
}

// Remove unlinks the file at path.
func (c *Client) Remove(p *des.Proc, path string) error {
	dir, name, err := c.resolvePath(p, path)
	if err != nil {
		return err
	}
	if c.attrCache != nil {
		c.attrCache.invalidateLookup(dir, name)
	}
	return c.NFS.Remove(p, dir, name)
}

// ReadAt reads up to n bytes at off into buf[bufOff:]. directIO selects the
// zero-copy placement path (Read-Write design only; the Read-Read design
// always stages and copies, per §5.1).
func (f *File) ReadAt(p *des.Proc, buf *Buffer, bufOff int, off int64, n int, directIO bool) (int, bool, error) {
	res, err := f.c.NFS.Read(p, f.fh, uint64(off), buf.bulk(bufOff, n), directIO)
	if err != nil {
		return 0, false, err
	}
	return int(res.Count), res.EOF, nil
}

// WriteAt writes n bytes from buf[bufOff:] at off.
func (f *File) WriteAt(p *des.Proc, buf *Buffer, bufOff int, off int64, n int, stable bool) (int, error) {
	st := uint32(nfs3.Unstable)
	if stable {
		st = nfs3.FileSync
	}
	res, err := f.c.NFS.Write(p, f.fh, uint64(off), buf.bulk(bufOff, n), st)
	if err != nil {
		return 0, err
	}
	if ac := f.c.attrCache; ac != nil {
		if res.Wcc.Post.Present {
			ac.putAttr(f.fh, res.Wcc.Post.Attr)
		} else {
			ac.invalidate(f.fh)
		}
	}
	return int(res.Count), nil
}

// Commit flushes unstable writes (NFSv3 COMMIT).
func (f *File) Commit(p *des.Proc) error {
	_, err := f.c.NFS.Commit(p, f.fh, 0, 0)
	return err
}

// Size returns the file's current size, served from the attribute cache
// when fresh.
func (f *File) Size(p *des.Proc) (int64, error) {
	if ac := f.c.attrCache; ac != nil {
		if attr, ok := ac.getAttr(f.fh); ok {
			return int64(attr.Size), nil
		}
	}
	attr, err := f.c.NFS.GetAttr(p, f.fh)
	if err != nil {
		return 0, err
	}
	if ac := f.c.attrCache; ac != nil {
		ac.putAttr(f.fh, attr)
	}
	return int64(attr.Size), nil
}

// Truncate sets the file size.
func (f *File) Truncate(p *des.Proc, size int64) error {
	sz := uint64(size)
	if ac := f.c.attrCache; ac != nil {
		ac.invalidate(f.fh)
	}
	return f.c.NFS.SetAttr(p, f.fh, nfs3.SAttr{Size: &sz})
}
