package core

import (
	"strings"
	"testing"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func TestMetricsSnapshot(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxDDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		Backend: BackendDisk, PageCacheBytes: 16 << 20, Clients: 2,
	})
	cluster.Start("io", func(p *des.Proc) {
		cl := cluster.Clients[0]
		f, _ := cl.Create(p, "m")
		buf := cl.NewBuffer(1 << 20)
		for i := 0; i < 32; i++ {
			f.WriteAt(p, buf, 0, int64(i)<<20, 1<<20, false)
		}
		for i := 0; i < 32; i++ {
			f.ReadAt(p, buf, 0, int64(i)<<20, 1<<20, true)
		}
		m := cluster.Metrics(0)
		if m.SimTime <= 0 {
			t.Error("no simulated time")
		}
		if m.Registration.CacheHits == 0 {
			t.Error("no cache activity recorded")
		}
		if m.DiskBytesRead == 0 {
			t.Error("disk traffic not recorded")
		}
		if len(m.ClientCPUPct) != 2 {
			t.Errorf("client CPU entries = %d", len(m.ClientCPUPct))
		}
		if m.ServerExposedEver != 0 {
			t.Error("read-write server should never expose MRs")
		}
		var sb strings.Builder
		m.Write(&sb)
		for _, want := range []string{"server:", "registration:", "disk:", "fabric"} {
			if !strings.Contains(sb.String(), want) {
				t.Errorf("report missing %q:\n%s", want, sb.String())
			}
		}
	})
	cluster.Run()
}

// TestMetricsWindowing pins the regression where CPU utilizations ignored
// the snapshot's `since` argument: a window opened after all the work is
// done must report idle CPUs on every host, client and server alike, while
// the full-run snapshot still shows the activity.
func TestMetricsWindowing(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular, Clients: 2,
	})
	cluster.Start("windowed-io", func(p *des.Proc) {
		cl := cluster.Clients[0]
		f, err := cl.Create(p, "w")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewBuffer(256 << 10)
		for i := 0; i < 16; i++ {
			if _, err := f.WriteAt(p, buf, 0, int64(i)<<18, 256<<10, false); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
		busyEnd := p.Now()
		p.Sleep(des.Duration(busyEnd)) // an equally long fully idle tail

		full := cluster.Metrics(0)
		tail := cluster.Metrics(busyEnd)
		if full.ClientCPUPct[0] <= 0 {
			t.Fatalf("full-run client CPU = %v, want > 0", full.ClientCPUPct[0])
		}
		if full.ServerCPUPct <= 0 {
			t.Fatalf("full-run server CPU = %v, want > 0", full.ServerCPUPct)
		}
		for i, u := range tail.ClientCPUPct {
			if u > 0.01 {
				t.Errorf("idle-window client%d CPU = %v%%, want ~0 (since ignored?)", i, u)
			}
		}
		if tail.ServerCPUPct > 0.01 {
			t.Errorf("idle-window server CPU = %v%%, want ~0 (since ignored?)", tail.ServerCPUPct)
		}
		// The busy half alone must show at least the full-run average.
		if half := cluster.Metrics(0); half.ClientCPUPct[0] < tail.ClientCPUPct[0] {
			t.Errorf("window inversion: full %v < tail %v", half.ClientCPUPct[0], tail.ClientCPUPct[0])
		}
	})
	cluster.Run()
}

func TestTraceStreamsEvents(t *testing.T) {
	cluster := NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Regular,
	})
	var sb strings.Builder
	cluster.EnableTrace(&sb)
	cluster.Start("io", func(p *des.Proc) {
		cl := cluster.Clients[0]
		f, _ := cl.Create(p, "t")
		buf := cl.NewBuffer(4096)
		f.WriteAt(p, buf, 0, 0, 4096, false)
	})
	cluster.Run()
	out := sb.String()
	if !strings.Contains(out, "rpcrdma call") || !strings.Contains(out, "rpcrdma serve") {
		t.Fatalf("trace missing protocol events:\n%.500s", out)
	}
}
