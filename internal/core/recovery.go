package core

import (
	"errors"
	"time"

	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/rpcrdma"
	"repro/internal/trace"
)

// RetryPolicy tunes transparent connection recovery (EnableRecovery).
type RetryPolicy struct {
	// MaxReconnects bounds how many reconnect+replay cycles one call may
	// drive before its transport error surfaces to the application.
	MaxReconnects int

	// Backoff is the wait before the first reconnect attempt; it doubles
	// per cycle (exponential backoff, mirroring the transport's per-call
	// retransmission policy one layer down).
	Backoff des.Duration

	// MaxBackoff caps the doubling. With large MaxReconnects budgets —
	// chaos soaks ride out whole server outages — an uncapped exponential
	// would sleep for simulated hours (and eventually overflow).
	MaxBackoff des.Duration
}

func (r RetryPolicy) withDefaults() RetryPolicy {
	if r.MaxReconnects <= 0 {
		r.MaxReconnects = 4
	}
	if r.Backoff <= 0 {
		r.Backoff = 100 * time.Microsecond
	}
	if r.MaxBackoff <= 0 {
		r.MaxBackoff = 100 * time.Millisecond
	}
	return r
}

// recoveringTransport wraps the client's RDMA transport with transparent
// reconnect-and-replay: a call that fails with a transport-level error
// (connection death, exhausted retransmissions) re-establishes the
// connection and replays the request with its original XID, so the
// server's duplicate request cache suppresses re-execution of
// non-idempotent procedures. Callers — the NFS client above — never see
// the failure unless the retry policy is exhausted.
type recoveringTransport struct {
	cl     *Client
	policy RetryPolicy

	// reconnecting coordinates single-flight reconnection: while non-nil, a
	// reconnect is in progress and other failing calls wait on it instead
	// of racing to replace the same connection.
	reconnecting *des.Event

	reconnects int64
	replays    int64
}

var _ oncrpc.Transport = (*recoveringTransport)(nil)

// isTransportError reports whether err means the connection (not the call)
// failed: such calls are safe to replay on a fresh connection because the
// server's DRC answers retransmissions of anything that already executed.
func isTransportError(err error) bool {
	return errors.Is(err, rpcrdma.ErrTransport) ||
		errors.Is(err, rpcrdma.ErrClosed) ||
		errors.Is(err, rpcrdma.ErrTimeout)
}

// Roundtrip implements oncrpc.Transport.
func (r *recoveringTransport) Roundtrip(p *des.Proc, req *oncrpc.Request) (*oncrpc.Response, error) {
	backoff := r.policy.Backoff
	for attempt := 0; ; attempt++ {
		resp, err := r.cl.RDMA.Roundtrip(p, req)
		if err == nil || !isTransportError(err) {
			return resp, err
		}
		if attempt >= r.policy.MaxReconnects {
			return nil, err
		}
		p.Sleep(backoff)
		backoff *= 2
		if backoff > r.policy.MaxBackoff {
			backoff = r.policy.MaxBackoff
		}
		if rerr := r.ensureConnected(p); rerr != nil {
			// Redial failed (server still down): burn this cycle and keep
			// backing off. The next Roundtrip on the closed transport fails
			// fast with ErrClosed, so the loop costs only the backoff sleeps
			// until either the server returns or the budget runs out.
			continue
		}
		r.replays++
		if tr := r.cl.cluster.Sim.Tracer(); tr != nil {
			tr.Instant(int64(p.Now()), trace.LayerCore, trace.KindReplay,
				r.cl.Node.Name(), "replay", uint64(req.XID), int64(attempt))
		}
	}
}

// Close implements oncrpc.Transport.
func (r *recoveringTransport) Close() { r.cl.RDMA.Close() }

// ensureConnected replaces a broken connection, single-flight: concurrent
// failing calls wait for the one reconnect instead of each dialing.
func (r *recoveringTransport) ensureConnected(p *des.Proc) error {
	for r.reconnecting != nil {
		r.reconnecting.Wait(p)
	}
	if !r.cl.RDMA.Broken() {
		return nil // someone else already reconnected
	}
	ev := des.NewEvent(r.cl.cluster.Sim)
	r.reconnecting = ev
	start := p.Now()
	err := r.cl.Reconnect(p)
	if tr := r.cl.cluster.Sim.Tracer(); tr != nil {
		errFlag := int64(0)
		if err != nil {
			errFlag = 1
		}
		tr.Span(int64(start), int64(p.Now()), trace.LayerCore, trace.KindReconnect,
			r.cl.Node.Name(), "reconnect", uint64(r.reconnects+1), errFlag)
	}
	r.reconnecting = nil
	ev.Fire(nil)
	if err != nil {
		return err
	}
	r.reconnects++
	return nil
}

// EnableRecovery installs transparent reconnect-and-replay on the client's
// RDMA transport. Call it after the cluster is wired (inside Start) and
// before issuing I/O. The per-call timeout that detects silent failures is
// configured separately, via Profile.RDMAClient.CallTimeout/RetryLimit.
func (c *Client) EnableRecovery(policy RetryPolicy) {
	if c.RDMA == nil {
		panic("core: recovery applies to RDMA transports only")
	}
	r := &recoveringTransport{cl: c, policy: policy.withDefaults()}
	c.recovery = r
	c.Transport = r
	c.NFS.SetTransport(r)
}

// RecoveryStats returns (reconnects, replays) performed by the recovery
// layer, or zeros when EnableRecovery was not called.
func (c *Client) RecoveryStats() (reconnects, replays int64) {
	if c.recovery == nil {
		return 0, 0
	}
	return c.recovery.reconnects, c.recovery.replays
}
