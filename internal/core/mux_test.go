package core

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func muxConfig(design rpcrdma.Design, clients int) Config {
	return Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: design, RegMode: memreg.Regular, CopyData: true,
		Clients: clients, Multiplex: true, ServerShards: 2,
	}
}

// TestMuxClusterIntegrity is the full-stack multiplexed-mode check: several
// clients attached as endpoints on shared shard QPs write and read back
// patterned files through the whole NFS/RPC/RDMA stack, in both bulk
// designs. Also pins the memory story at cluster level: receive-side state
// scales with shards, not with clients (each extra client costs one slot
// entry, not a QP context plus a credit window of ring buffers).
func TestMuxClusterIntegrity(t *testing.T) {
	for _, design := range []rpcrdma.Design{rpcrdma.ReadWrite, rpcrdma.ReadRead} {
		t.Run(design.String(), func(t *testing.T) {
			cluster := NewCluster(muxConfig(design, 4))
			cluster.Start("t", func(p *des.Proc) {
				for i, cl := range cluster.Clients {
					f, err := cl.Create(p, "f")
					if err != nil {
						t.Errorf("client %d create: %v", i, err)
						return
					}
					const size = 96 << 10
					wbuf := cl.NewMaterializedBuffer(size)
					for j, d := 0, wbuf.Bytes(); j < size; j++ {
						d[j] = byte(j*7 + i)
					}
					if _, err := f.WriteAt(p, wbuf, 0, 0, size, true); err != nil {
						t.Errorf("client %d write: %v", i, err)
						return
					}
					rbuf := cl.NewMaterializedBuffer(size)
					n, _, err := f.ReadAt(p, rbuf, 0, 0, size, true)
					if err != nil || n != size {
						t.Errorf("client %d read: n=%d err=%v", i, n, err)
						return
					}
					for j, got := range rbuf.Bytes() {
						if got != byte(j*7+i) {
							t.Errorf("client %d byte %d = %#x, want %#x", i, j, got, byte(j*7+i))
							return
						}
					}
				}
				eps := 0
				for _, st := range cluster.Server.RDMA.ShardStats() {
					eps += st.Endpoints
				}
				if eps != cluster.Cfg.Clients {
					t.Errorf("live endpoints = %d, want %d", eps, cluster.Cfg.Clients)
				}
			})
			cluster.Run()
		})
	}
}

// TestMuxRecvStateScalesWithShardsNotClients pins the tentpole memory claim
// at cluster level by measuring the marginal receive-state cost of adding
// clients. Multiplexed: each extra client costs exactly one endpoint slot
// entry. Per-connection sharded dispatch: each costs a full QP context —
// O(connections) state the shared QPs eliminate.
func TestMuxRecvStateScalesWithShardsNotClients(t *testing.T) {
	recvState := func(mux bool, clients int) int64 {
		cfg := muxConfig(rpcrdma.ReadWrite, clients)
		cfg.Multiplex = mux
		cluster := NewCluster(cfg)
		var got int64
		cluster.Start("t", func(p *des.Proc) {
			got = cluster.Server.RDMA.RecvStateBytes()
		})
		cluster.Run()
		return got
	}
	const extra = 8
	if diff := recvState(true, 12) - recvState(true, 4); diff != extra*ibsim.EndpointSlotBytes {
		t.Errorf("mux marginal cost of %d clients = %d B, want %d (one slot entry each)",
			extra, diff, extra*ibsim.EndpointSlotBytes)
	}
	if diff := recvState(false, 12) - recvState(false, 4); diff != extra*ibsim.QPContextBytes {
		t.Errorf("per-conn marginal cost of %d clients = %d B, want %d (one QP context each)",
			extra, diff, extra*ibsim.QPContextBytes)
	}
}

// TestMuxReconnectRestoresService: killing one endpoint's QP must break only
// that client, and Reconnect must re-attach through the same admission path
// (TryAttach) and restore service — with the freed slot reused, not leaked.
func TestMuxReconnectRestoresService(t *testing.T) {
	cluster := NewCluster(muxConfig(rpcrdma.ReadWrite, 3))
	cl := cluster.Clients[0]
	bystander := cluster.Clients[1]
	cluster.Start("t", func(p *des.Proc) {
		f, err := cl.Create(p, "persist")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewMaterializedBuffer(4096)
		copy(buf.Bytes(), "survives the reconnect")
		if _, err := f.WriteAt(p, buf, 0, 0, 4096, true); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		slotsBefore := muxSlotTotal(cluster)

		breakConnection(p, cl)
		if !cl.RDMA.Broken() {
			t.Error("connection should report broken after protection error")
		}
		p.Sleep(time.Millisecond) // let the shard observe the endpoint death
		// Blast radius: the sibling endpoint on the shared QP still works.
		if _, err := bystander.Stat(p, "persist"); err != nil {
			t.Errorf("bystander on shared QP broken by sibling death: %v", err)
		}

		if err := cl.Reconnect(p); err != nil {
			t.Errorf("reconnect: %v", err)
			return
		}
		rbuf := cl.NewMaterializedBuffer(4096)
		n, _, err := f.ReadAt(p, rbuf, 0, 0, 4096, false)
		if err != nil || n != 4096 {
			t.Errorf("read after reconnect: n=%d err=%v", n, err)
			return
		}
		if string(rbuf.Bytes()[:22]) != "survives the reconnect" {
			t.Error("data lost across reconnect")
		}
		// The redial rotates to the next shard, so the freed slot may sit on
		// a different shard than the new endpoint — but one reconnect can
		// grow the total slot population by at most one.
		if got := muxSlotTotal(cluster); got > slotsBefore+1 {
			t.Errorf("slot table grew %d -> %d across one reconnect; freed slot not reused", slotsBefore, got)
		}
	})
	cluster.Run()
}

func muxSlotTotal(c *Cluster) int {
	total := 0
	for _, st := range c.Server.RDMA.ShardStats() {
		total += st.MuxSlots
	}
	return total
}

// TestMuxClientChurnNoSlotLeak drives repeated break/reconnect cycles on one
// client: every cycle must detach the dead endpoint (freeing its slot and its
// credit sub-account) before the redial attaches a fresh one, so the shared
// QP's slot table stays at its initial size no matter how many times clients
// come and go.
func TestMuxClientChurnNoSlotLeak(t *testing.T) {
	cluster := NewCluster(muxConfig(rpcrdma.ReadWrite, 2))
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		f, err := cl.Create(p, "churn")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewMaterializedBuffer(4096)
		baseline := muxSlotTotal(cluster)
		for cycle := 0; cycle < 12; cycle++ {
			breakConnection(p, cl)
			p.Sleep(500 * time.Microsecond)
			if err := cl.Reconnect(p); err != nil {
				t.Fatalf("cycle %d reconnect: %v", cycle, err)
			}
			if _, err := f.WriteAt(p, buf, 0, 0, 4096, true); err != nil {
				t.Fatalf("cycle %d write: %v", cycle, err)
			}
		}
		// Redials rotate across shards, so each shard's table can reach the
		// concurrent-endpoint high water (= Clients); what a detach leak
		// would show is growth proportional to the cycle count.
		bound := cluster.Cfg.Clients * len(cluster.Server.RDMA.ShardStats())
		if got := muxSlotTotal(cluster); got > bound {
			t.Errorf("slot table grew %d -> %d over 12 churn cycles (bound %d); endpoint detach leaks slots", baseline, got, bound)
		}
		if got := cluster.Server.RDMA.LiveConns(); got != cluster.Cfg.Clients {
			t.Errorf("live conns = %d after churn, want %d", got, cluster.Cfg.Clients)
		}
	})
	cluster.Run()
}

// TestMuxCrashRestartRecovery runs the crash/restart primitive with shared
// QPs: the crash flushes every endpoint through its shard's shared QP, the
// restarted transport arms fresh shared QPs, and recovery re-attaches every
// client and replays so no write is lost. Exercises Shutdown's shared-QP
// teardown and RestartServer inheriting the multiplexed config.
func TestMuxCrashRestartRecovery(t *testing.T) {
	cfg := muxConfig(rpcrdma.ReadWrite, 2)
	cfg.Profile = recoveryProfile()
	cluster := NewCluster(cfg)
	cl := cluster.Clients[0]
	const (
		records = 8
		recSize = 64 << 10
	)
	cluster.Start("t", func(p *des.Proc) {
		for _, c := range cluster.Clients {
			c.EnableRecovery(RetryPolicy{
				MaxReconnects: 20, Backoff: 50 * time.Microsecond, MaxBackoff: 500 * time.Microsecond,
			})
		}
		cluster.ScheduleServerCrash(p.Now()+des.Time(500*time.Microsecond), 300*time.Microsecond)

		f, err := cl.Create(p, "data")
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		buf := cl.NewMaterializedBuffer(recSize)
		for rec := 0; rec < records; rec++ {
			fill := byte(1 + rec)
			b := buf.Bytes()
			for i := range b {
				b[i] = fill
			}
			n, err := f.WriteAt(p, buf, 0, int64(rec)*recSize, recSize, true)
			if err != nil || n != recSize {
				t.Errorf("write %d: n=%d err=%v", rec, n, err)
			}
		}
		if cluster.Crashes != 1 {
			t.Errorf("Crashes = %d, want 1", cluster.Crashes)
		}
		rc, _ := cl.RecoveryStats()
		if rc < 1 {
			t.Errorf("reconnects = %d, want >= 1 (crash did not land on the burst?)", rc)
		}
		rbuf := cl.NewMaterializedBuffer(recSize)
		for rec := 0; rec < records; rec++ {
			n, _, err := f.ReadAt(p, rbuf, 0, int64(rec)*recSize, recSize, false)
			if err != nil || n != recSize {
				t.Errorf("read %d: n=%d err=%v", rec, n, err)
				continue
			}
			want := byte(1 + rec)
			for i, got := range rbuf.Bytes() {
				if got != want {
					t.Errorf("rec %d byte %d = %#x, want %#x", rec, i, got, want)
					break
				}
			}
		}
	})
	cluster.RunUntil(des.Time(2 * time.Second))
}
