package core

import (
	"repro/internal/des"
	"repro/internal/nfs3"
	"repro/internal/trace"
)

// Client-side metadata caching: the attribute cache and lookup (dnlc)
// cache every real NFS client carries. The paper's introduction motivates
// NFS/RDMA partly by the limits of client *data* caching (memory pressure,
// coherence cost at scale); metadata caching, by contrast, is cheap and
// standard, and without it path resolution would dominate small-file
// workloads. Both caches use a simple time-to-live, like actimeo.

// AttrCache caches fattr3 results and directory lookups with a TTL.
type AttrCache struct {
	sim   *des.Sim
	ttl   des.Duration
	track string // client node name, for trace instants

	attrs   map[nfs3.FH]attrEntry
	lookups map[lookupKey]lookupEntry

	// Stats.
	AttrHits, AttrMisses     int64
	LookupHits, LookupMisses int64
}

type attrEntry struct {
	attr    nfs3.FAttr
	expires des.Time
}

type lookupKey struct {
	dir  nfs3.FH
	name string
}

type lookupEntry struct {
	fh      nfs3.FH
	expires des.Time
}

// EnableAttrCache turns on metadata caching for this client with the given
// TTL (NFS actimeo is typically 3-60 seconds).
func (c *Client) EnableAttrCache(ttl des.Duration) *AttrCache {
	c.attrCache = &AttrCache{
		sim:     c.Node.Sim(),
		ttl:     ttl,
		track:   c.Node.Name(),
		attrs:   make(map[nfs3.FH]attrEntry),
		lookups: make(map[lookupKey]lookupEntry),
	}
	return c.attrCache
}

// AttrCacheStats returns the cache, or nil when disabled.
func (c *Client) AttrCacheStats() *AttrCache { return c.attrCache }

func (ac *AttrCache) putAttr(fh nfs3.FH, attr nfs3.FAttr) {
	ac.attrs[fh] = attrEntry{attr: attr, expires: ac.sim.Now() + des.Time(ac.ttl)}
}

// mark emits a cache hit/miss instant when tracing is on.
func (ac *AttrCache) mark(kind trace.Kind, name string) {
	if tr := ac.sim.Tracer(); tr != nil {
		tr.Instant(int64(ac.sim.Now()), trace.LayerCore, kind, ac.track, name, 0, 0)
	}
}

func (ac *AttrCache) getAttr(fh nfs3.FH) (nfs3.FAttr, bool) {
	e, ok := ac.attrs[fh]
	if !ok || ac.sim.Now() >= e.expires {
		ac.AttrMisses++
		ac.mark(trace.KindCacheMiss, "attr-miss")
		return nfs3.FAttr{}, false
	}
	ac.AttrHits++
	ac.mark(trace.KindCacheHit, "attr-hit")
	return e.attr, true
}

func (ac *AttrCache) invalidate(fh nfs3.FH) {
	delete(ac.attrs, fh)
}

func (ac *AttrCache) putLookup(dir nfs3.FH, name string, fh nfs3.FH) {
	ac.lookups[lookupKey{dir, name}] = lookupEntry{fh: fh, expires: ac.sim.Now() + des.Time(ac.ttl)}
}

func (ac *AttrCache) getLookup(dir nfs3.FH, name string) (nfs3.FH, bool) {
	e, ok := ac.lookups[lookupKey{dir, name}]
	if !ok || ac.sim.Now() >= e.expires {
		ac.LookupMisses++
		ac.mark(trace.KindCacheMiss, "lookup-miss")
		return nfs3.FH{}, false
	}
	ac.LookupHits++
	ac.mark(trace.KindCacheHit, "lookup-hit")
	return e.fh, true
}

func (ac *AttrCache) invalidateLookup(dir nfs3.FH, name string) {
	delete(ac.lookups, lookupKey{dir, name})
}

// lookup resolves one path component through the cache.
func (c *Client) lookup(p *des.Proc, dir nfs3.FH, name string) (nfs3.FH, nfs3.FAttr, error) {
	if c.attrCache != nil {
		if fh, ok := c.attrCache.getLookup(dir, name); ok {
			if attr, ok := c.attrCache.getAttr(fh); ok {
				return fh, attr, nil
			}
			// Handle cached but attributes stale: one GETATTR beats a
			// LOOKUP (it skips directory traversal server-side).
			attr, err := c.NFS.GetAttr(p, fh)
			if err == nil {
				c.attrCache.putAttr(fh, attr)
				return fh, attr, nil
			}
			// Stale handle: fall through to a fresh lookup.
			c.attrCache.invalidateLookup(dir, name)
		}
	}
	fh, attr, err := c.NFS.Lookup(p, dir, name)
	if err != nil {
		return nfs3.FH{}, nfs3.FAttr{}, err
	}
	if c.attrCache != nil {
		c.attrCache.putLookup(dir, name, fh)
		c.attrCache.putAttr(fh, attr)
	}
	return fh, attr, nil
}

// Stat returns the attributes at path, served from the attribute cache when
// fresh.
func (c *Client) Stat(p *des.Proc, path string) (nfs3.FAttr, error) {
	dir, name, err := c.resolvePath(p, path)
	if err != nil {
		return nfs3.FAttr{}, err
	}
	if name == "." {
		return c.NFS.GetAttr(p, dir)
	}
	_, attr, err := c.lookup(p, dir, name)
	return attr, err
}
