package core

import (
	"testing"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/trace"
)

// runTraced builds a fault-free traced cluster in the given design, runs a
// small mixed workload (bulk direct-I/O reads, buffered writes, metadata),
// and returns the complete event stream.
func runTraced(t *testing.T, design rpcrdma.Design) []trace.Event {
	t.Helper()
	cluster := NewCluster(Config{
		Profile: profiles.SolarisSDR(), Transport: TransportRDMA,
		Design: design, RegMode: memreg.Regular, CopyData: true,
	})
	tr := cluster.EnableTracing(1 << 20)
	cluster.Start("traceinv-io", func(p *des.Proc) {
		cl := cluster.Clients[0]
		f, err := cl.Create(p, "data")
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		buf := cl.NewBuffer(128 << 10)
		for i := 0; i < 8; i++ {
			if _, err := f.WriteAt(p, buf, 0, int64(i)<<17, 128<<10, false); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		for i := 0; i < 8; i++ {
			if _, _, err := f.ReadAt(p, buf, 0, int64(i)<<17, 128<<10, design == rpcrdma.ReadWrite); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		if _, err := cl.Stat(p, "data"); err != nil {
			t.Errorf("stat: %v", err)
		}
	})
	cluster.Run()
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("ring dropped %d events; invariant checks need a complete stream", d)
	}
	return tr.Events()
}

// TestTraceInvariantsReadWrite checks the full stack's trace discipline in
// the Read-Write design: every WQE completes exactly once, every exposed
// client MR dies with its RPC, and the server never installs a remotely
// accessible region — the paper's §4.2 security property, read off the
// event stream of a real run.
func TestTraceInvariantsReadWrite(t *testing.T) {
	events := runTraced(t, rpcrdma.ReadWrite)
	if err := trace.CheckWQECQE(events); err != nil {
		t.Errorf("WQE/CQE pairing: %v", err)
	}
	if err := trace.CheckExposureBounds(events); err != nil {
		t.Errorf("exposure bounds: %v", err)
	}
	if err := trace.CheckNoRemoteExposure(events, "server"); err != nil {
		t.Errorf("read-write server exposed memory: %v", err)
	}
}

// TestTraceInvariantsReadRead checks the same discipline in the Read-Read
// design — and that the §4.1 exposure is *visible*: the server stages
// replies in remotely readable buffers, so CheckNoRemoteExposure must fail
// on the server track.
func TestTraceInvariantsReadRead(t *testing.T) {
	events := runTraced(t, rpcrdma.ReadRead)
	if err := trace.CheckWQECQE(events); err != nil {
		t.Errorf("WQE/CQE pairing: %v", err)
	}
	if err := trace.CheckExposureBounds(events); err != nil {
		t.Errorf("exposure bounds: %v", err)
	}
	if err := trace.CheckNoRemoteExposure(events, "server"); err == nil {
		t.Error("read-read server staged no remotely readable reply buffers; §4.1 exposure should be visible in the trace")
	}
}
