package core

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
)

func dataCacheCluster(clients int) *Cluster {
	return NewCluster(Config{
		Profile: profiles.LinuxSDR(), Transport: TransportRDMA,
		Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		Clients: clients, CopyData: true,
	})
}

func TestDataCacheReadHitAvoidsRPC(t *testing.T) {
	cluster := dataCacheCluster(1)
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableDataCache(8 << 20)
		f, _ := cl.Create(p, "f")
		payload := make([]byte, 200<<10)
		for i := range payload {
			payload[i] = byte(i * 11)
		}
		wbuf := cl.NewMaterializedBuffer(len(payload))
		copy(wbuf.Bytes(), payload)
		f.WriteAt(p, wbuf, 0, 0, len(payload), true)

		dst := make([]byte, len(payload))
		n, eof, err := f.ReadAtCached(p, dst, 0)
		if err != nil || n != len(payload) || !eof {
			t.Errorf("first read: n=%d eof=%v err=%v", n, eof, err)
			return
		}
		if !bytes.Equal(dst, payload) {
			t.Error("first cached read corrupted")
			return
		}
		readsBefore := cluster.Server.NFS.Ops[nfs3.ProcRead]
		for i := 0; i < 10; i++ {
			n, _, err := f.ReadAtCached(p, dst, 0)
			if err != nil || n != len(payload) {
				t.Errorf("re-read %d: n=%d err=%v", i, n, err)
				return
			}
		}
		if got := cluster.Server.NFS.Ops[nfs3.ProcRead] - readsBefore; got != 0 {
			t.Errorf("%d READ RPCs for fully cached re-reads", got)
		}
		if !bytes.Equal(dst, payload) {
			t.Error("cached re-read corrupted")
		}
	})
	cluster.Run()
}

func TestDataCacheWriteBackAndFlush(t *testing.T) {
	cluster := dataCacheCluster(1)
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		cl.EnableDataCache(8 << 20)
		f, _ := cl.Create(p, "wb")
		payload := make([]byte, 150<<10) // crosses page boundaries, partial tail
		for i := range payload {
			payload[i] = byte(i * 7)
		}
		writesBefore := cluster.Server.NFS.Ops[nfs3.ProcWrite]
		if _, err := f.WriteAtCached(p, payload, 0); err != nil {
			t.Errorf("cached write: %v", err)
			return
		}
		if got := cluster.Server.NFS.Ops[nfs3.ProcWrite] - writesBefore; got != 0 {
			t.Errorf("%d WRITE RPCs before flush (write-back expected)", got)
		}
		if err := f.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		if got := cluster.Server.NFS.Ops[nfs3.ProcWrite] - writesBefore; got == 0 {
			t.Error("flush pushed nothing")
		}
		// Server now has the bytes: read them back uncached.
		rbuf := cl.NewMaterializedBuffer(len(payload))
		n, _, err := f.ReadAt(p, rbuf, 0, 0, len(payload), false)
		if err != nil || n != len(payload) {
			t.Errorf("verify read: n=%d err=%v", n, err)
			return
		}
		if !bytes.Equal(rbuf.Bytes(), payload) {
			t.Error("flushed data corrupted at server")
		}
	})
	cluster.Run()
}

// TestDataCacheCloseToOpenConsistency: client B's write must become visible
// to client A after A's validator expires (mtime changed → pages dropped).
func TestDataCacheCloseToOpenConsistency(t *testing.T) {
	cluster := dataCacheCluster(2)
	a, b := cluster.Clients[0], cluster.Clients[1]
	cluster.Start("t", func(p *des.Proc) {
		a.EnableAttrCache(time.Millisecond) // short actimeo
		a.EnableDataCache(8 << 20)
		fa, _ := a.Create(p, "shared")
		one := bytes.Repeat([]byte{1}, 64<<10)
		wbuf := a.NewMaterializedBuffer(len(one))
		copy(wbuf.Bytes(), one)
		fa.WriteAt(p, wbuf, 0, 0, len(one), true)

		dst := make([]byte, len(one))
		fa.ReadAtCached(p, dst, 0) // warm A's cache
		if dst[0] != 1 {
			t.Error("warm read wrong")
			return
		}

		// B overwrites via the server.
		p.Sleep(2 * time.Millisecond)
		fb, err := b.Open(p, "shared")
		if err != nil {
			t.Errorf("open from B: %v", err)
			return
		}
		two := bytes.Repeat([]byte{2}, 64<<10)
		wb := b.NewMaterializedBuffer(len(two))
		copy(wb.Bytes(), two)
		fb.WriteAt(p, wb, 0, 0, len(two), true)

		// A's attr entry has expired; the next cached read revalidates,
		// sees the new mtime, drops its pages and refetches.
		p.Sleep(2 * time.Millisecond)
		n, _, err := fa.ReadAtCached(p, dst, 0)
		if err != nil || n != len(one) {
			t.Errorf("post-update read: n=%d err=%v", n, err)
			return
		}
		if dst[0] != 2 {
			t.Errorf("stale data served after validator change: %d", dst[0])
		}
		if a.DataCacheStats().Invalidations == 0 {
			t.Error("no invalidation recorded")
		}
	})
	cluster.Run()
}

func TestDataCacheBounded(t *testing.T) {
	cluster := dataCacheCluster(1)
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		dc := cl.EnableDataCache(256 << 10) // 4 pages
		f, _ := cl.Create(p, "big")
		payload := make([]byte, 2<<20)
		wbuf := cl.NewMaterializedBuffer(len(payload))
		f.WriteAt(p, wbuf, 0, 0, len(payload), true)
		dst := make([]byte, 64<<10)
		for off := int64(0); off < 2<<20; off += 64 << 10 {
			if _, _, err := f.ReadAtCached(p, dst, off); err != nil {
				t.Errorf("read at %d: %v", off, err)
				return
			}
			if dc.CachedBytes() > 256<<10 {
				t.Fatalf("cache grew to %d bytes past its bound", dc.CachedBytes())
			}
		}
	})
	cluster.Run()
}

func TestDataCacheDirtyEvictionWritesBack(t *testing.T) {
	cluster := dataCacheCluster(1)
	cl := cluster.Clients[0]
	cluster.Start("t", func(p *des.Proc) {
		dc := cl.EnableDataCache(128 << 10) // 2 pages
		f, _ := cl.Create(p, "dirty")
		// Dirty 6 pages: 4 must be written back by eviction pressure.
		payload := make([]byte, 384<<10)
		for i := range payload {
			payload[i] = byte(i * 3)
		}
		if _, err := f.WriteAtCached(p, payload, 0); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if dc.WritebackPages == 0 {
			t.Error("eviction should have written dirty pages back")
		}
		if err := f.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		rbuf := cl.NewMaterializedBuffer(len(payload))
		n, _, _ := f.ReadAt(p, rbuf, 0, 0, len(payload), false)
		if n != len(payload) || !bytes.Equal(rbuf.Bytes(), payload) {
			t.Error("data lost through dirty eviction")
		}
	})
	cluster.Run()
}
