package core

import (
	"fmt"

	"repro/internal/nfs3"
	"repro/internal/telemetry"
)

// EnableTelemetry attaches a virtual-time sampling engine to the cluster and
// registers probes from every layer. Probes read live cluster state through
// the cluster pointer (not captured objects), so they keep working across a
// server crash/restart that replaces Server.RDMA or a client reconnect that
// replaces its transport. Idempotent: a second call returns the existing
// engine. Workloads start/stop the sampler around their measurement window.
func (c *Cluster) EnableTelemetry(opts telemetry.Options) *telemetry.Engine {
	if c.tel != nil {
		return c.tel
	}
	e := telemetry.New(c.Sim, opts)
	c.tel = e

	srv := c.Server

	// ibsim: receive-pool and memory-exposure state. SRQ totals are zero for
	// unsharded designs; MR exposure tracks the registered-bytes attack
	// surface the paper's registration modes trade off.
	e.Gauge("ibsim.srq_avail", func() float64 {
		if c.serverDown || srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.SRQAvailTotal())
	})
	e.Counter("ibsim.srq_posted", func() float64 {
		if srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.SRQPostedTotal())
	})
	e.Counter("ibsim.srq_starved", func() float64 {
		if srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.SRQStarvedTotal())
	})
	e.Gauge("ibsim.mux_endpoints", func() float64 {
		if c.serverDown || srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.MuxEndpointsTotal())
	})
	for i := 0; i < c.Cfg.ServerShards; i++ {
		shard := i
		e.Gauge(fmt.Sprintf("ibsim.shard%d.endpoints", shard), func() float64 {
			if c.serverDown || srv.RDMA == nil {
				return 0
			}
			return float64(srv.RDMA.ShardEndpoints(shard))
		})
	}
	e.Gauge("ibsim.mr_exposed_bytes", func() float64 {
		return float64(srv.Node.HCA.RemoteExposedBytes())
	})

	// rpcrdma: credit and queue state across all client transports plus the
	// server's dispatch counters.
	e.Gauge("rpcrdma.inflight", func() float64 {
		n := 0
		for _, cl := range c.Clients {
			if cl.RDMA != nil {
				n += cl.RDMA.OutstandingCalls()
			}
		}
		return float64(n)
	})
	e.Gauge("rpcrdma.credit_occupancy", func() float64 {
		out, granted := 0, 0
		for _, cl := range c.Clients {
			if cl.RDMA != nil {
				out += cl.RDMA.OutstandingCalls()
				granted += cl.RDMA.GrantedCredits()
			}
		}
		if granted == 0 {
			return 0
		}
		return float64(out) / float64(granted)
	})
	e.Gauge("rpcrdma.parked_replies", func() float64 {
		if c.serverDown || srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.ParkedReplies())
	})
	e.Gauge("rpcrdma.live_conns", func() float64 {
		if c.serverDown || srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.LiveConns())
	})
	e.Counter("rpcrdma.requests", func() float64 {
		if srv.RDMA == nil {
			return 0
		}
		return float64(srv.RDMA.Requests)
	})
	e.Counter("rpcrdma.retransmits", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			_, r := cl.TransportStats()
			n += r
		}
		return float64(n)
	})
	e.Counter("rpcrdma.timeouts", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			t, _ := cl.TransportStats()
			n += t
		}
		return float64(n)
	})

	// oncrpc: duplicate request cache occupancy and effectiveness.
	e.Gauge("oncrpc.drc_entries", func() float64 {
		return float64(srv.Dispatcher.DRCEntries())
	})
	e.Counter("oncrpc.drc_hits", func() float64 {
		h, _ := srv.Dispatcher.DRCStats()
		return float64(h)
	})
	e.Counter("oncrpc.drc_misses", func() float64 {
		_, m := srv.Dispatcher.DRCStats()
		return float64(m)
	})

	// nfs3: per-procedure op rates (null..commit).
	for proc := uint32(0); proc <= nfs3.ProcCommit; proc++ {
		i := proc
		e.Counter("nfs3."+nfs3.ProcName(proc)+"_ops", func() float64 {
			return float64(srv.NFS.Ops[i])
		})
	}

	// cpu: the server's scheduler. Utilization is a rate over cumulative
	// busy-seconds, so it survives the measurement-window resets workloads
	// issue; d(core-seconds)/dt over core count is the windowed fraction.
	cores := float64(srv.Node.CPU.Cores())
	e.Counter("cpu.utilization", func() float64 {
		return srv.Node.CPU.TotalBusySeconds() / cores
	})
	e.Counter("cpu.migrations", func() float64 {
		return float64(srv.Node.CPU.Migrations())
	})
	e.Counter("cpu.local_wakes", func() float64 {
		return float64(srv.Node.CPU.LocalWakes())
	})

	// core: client-cache effectiveness, recovery traffic, crash count.
	e.Counter("core.attr_hits", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			if ac := cl.AttrCacheStats(); ac != nil {
				n += ac.AttrHits + ac.LookupHits
			}
		}
		return float64(n)
	})
	e.Counter("core.attr_misses", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			if ac := cl.AttrCacheStats(); ac != nil {
				n += ac.AttrMisses + ac.LookupMisses
			}
		}
		return float64(n)
	})
	e.Counter("core.data_hits", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			if dc := cl.DataCacheStats(); dc != nil {
				n += dc.Hits
			}
		}
		return float64(n)
	})
	e.Counter("core.data_misses", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			if dc := cl.DataCacheStats(); dc != nil {
				n += dc.Misses
			}
		}
		return float64(n)
	})
	e.Counter("core.reconnects", func() float64 {
		var n int64
		for _, cl := range c.Clients {
			r, _ := cl.RecoveryStats()
			n += r
		}
		return float64(n)
	})
	e.Gauge("core.crashes", func() float64 { return float64(c.Crashes) })

	// vfs: server page cache, when configured.
	if srv.Cache != nil {
		e.Counter("vfs.pagecache_hits", func() float64 {
			return float64(srv.Cache.Hits)
		})
		e.Counter("vfs.pagecache_misses", func() float64 {
			return float64(srv.Cache.Misses)
		})
	}

	return e
}

// Telemetry returns the cluster's engine, nil (the disabled engine) when
// EnableTelemetry was never called.
func (c *Cluster) Telemetry() *telemetry.Engine { return c.tel }

// SLOBudgetUS is the p99 latency budget the standard SLO-burn detector
// judges runs against: 1ms, comfortably above healthy service latency and
// well below the post-knee queueing regime.
const SLOBudgetUS = 1000

// TelemetryReport snapshots the cluster's telemetry into a report and runs
// the standard detectors over the conventional series names (knee onset and
// SLO burn on the open-loop latency window, credit- and SRQ-starvation
// windows). Returns nil when telemetry was never enabled.
func (c *Cluster) TelemetryReport() *telemetry.Report {
	if c.tel == nil {
		return nil
	}
	r := c.tel.Report()
	if f, ok := r.DetectKneeOnset("workload.lat.p99_us", "workload.inflight"); ok {
		r.Findings = append(r.Findings, f)
	}
	r.Findings = append(r.Findings, r.DetectAboveThreshold(
		"credit-starve", "rpcrdma.credit_occupancy", 0.95, 3)...)
	r.Findings = append(r.Findings, r.DetectAboveThreshold(
		"srq-starve", "ibsim.srq_starved", 1, 1)...)
	if f, ok := r.DetectSLOBurn("workload.lat.p99_us", SLOBudgetUS); ok {
		r.Findings = append(r.Findings, f)
	}
	return r
}
