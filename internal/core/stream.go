package core

import (
	"fmt"

	"repro/internal/des"
)

// Sequential streaming with pipelining: real NFS clients keep several READ
// requests outstanding (readahead) and issue WRITEs unstable with a closing
// COMMIT (write-behind), which is how a single application thread fills a
// high-latency or slow link. The synchronous one-request-at-a-time File API
// models IOzone's O_DIRECT behaviour; these helpers model the kernel
// client's normal buffered behaviour.

// StreamConfig tunes a sequential transfer.
type StreamConfig struct {
	// RecordSize is the per-RPC transfer size (default 128 KiB).
	RecordSize int
	// Depth is the number of outstanding RPCs (default 4; 1 = synchronous).
	Depth int
	// DirectIO selects zero-copy placement for reads.
	DirectIO bool
	// Stable forces FILE_SYNC writes instead of unstable + COMMIT.
	Stable bool
}

func (c *StreamConfig) defaults() {
	if c.RecordSize <= 0 {
		c.RecordSize = 128 << 10
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
}

// ReadSequential reads [0, length) of the file with pipelined readahead and
// returns the bytes transferred. Each pipeline slot owns its buffer, so
// data is not accumulated — this is the throughput-measurement shape (use
// ReadAt for data access).
func (f *File) ReadSequential(p *des.Proc, length int64, cfg StreamConfig) (int64, error) {
	cfg.defaults()
	return f.stream(p, length, cfg, false)
}

// WriteSequential writes [0, length) with pipelined write-behind. Unless
// cfg.Stable is set, writes go out UNSTABLE and a single COMMIT closes the
// stream, per NFSv3 semantics.
func (f *File) WriteSequential(p *des.Proc, length int64, cfg StreamConfig) (int64, error) {
	cfg.defaults()
	n, err := f.stream(p, length, cfg, true)
	if err != nil {
		return n, err
	}
	if !cfg.Stable {
		if err := f.Commit(p); err != nil {
			return n, err
		}
	}
	return n, nil
}

// stream fans length bytes across cfg.Depth worker processes, each owning a
// buffer and striding through the offset space — equivalent in throughput
// to a readahead window of Depth requests.
func (f *File) stream(p *des.Proc, length int64, cfg StreamConfig, write bool) (int64, error) {
	sim := p.Sim()
	records := (length + int64(cfg.RecordSize) - 1) / int64(cfg.RecordSize)
	depth := cfg.Depth
	if int64(depth) > records {
		depth = int(records)
	}
	if depth == 0 {
		return 0, nil
	}
	var moved int64
	var firstErr error
	events := make([]*des.Event, depth)
	for w := 0; w < depth; w++ {
		w := w
		ev := des.NewEvent(sim)
		events[w] = ev
		sim.Spawn(fmt.Sprintf("stream-%d", w), func(wp *des.Proc) {
			defer ev.Fire(nil)
			buf := f.c.NewBuffer(cfg.RecordSize)
			for rec := int64(w); rec < records; rec += int64(depth) {
				off := rec * int64(cfg.RecordSize)
				n := cfg.RecordSize
				if rem := length - off; int64(n) > rem {
					n = int(rem)
				}
				var err error
				var got int
				if write {
					got, err = f.WriteAt(wp, buf, 0, off, n, cfg.Stable)
				} else {
					got, _, err = f.ReadAt(wp, buf, 0, off, n, cfg.DirectIO)
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				moved += int64(got)
			}
		})
	}
	des.WaitAll(p, events...)
	return moved, firstErr
}
