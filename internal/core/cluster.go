// Package core assembles the paper's system: an NFSv3 server exporting a
// tmpfs or RAID-backed file system over the RPC/RDMA transport (Read-Write
// or Read-Read design, any §4.3 registration strategy) or over the NFS/TCP
// baseline, plus clients with a file API that includes the zero-copy
// direct-I/O read path. A Cluster is one experiment instance: simulated
// hosts on one fabric, fully wired, ready for workloads.
package core

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/oncrpc"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/tcpsim"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Transport selects the wire protocol of a cluster.
type Transport int

// Transports. The TCP baselines differ in the NIC they run over: IPoIB uses
// the InfiniBand port, GigE a 125 MB/s Ethernet port.
const (
	TransportRDMA Transport = iota
	TransportIPoIB
	TransportGigE
)

func (t Transport) String() string {
	switch t {
	case TransportRDMA:
		return "rdma"
	case TransportIPoIB:
		return "ipoib"
	case TransportGigE:
		return "gige"
	}
	return fmt.Sprintf("transport(%d)", int(t))
}

// Backend selects the server's file store.
type Backend int

// Backends: memory-speed tmpfs (§5.1/§5.2) or the page-cached RAID-0 array
// (§5.3).
const (
	BackendTmpfs Backend = iota
	BackendDisk
)

func (b Backend) String() string {
	if b == BackendDisk {
		return "disk"
	}
	return "tmpfs"
}

// Config describes one cluster/experiment instance.
type Config struct {
	Profile   profiles.Profile
	Transport Transport
	Design    rpcrdma.Design
	RegMode   memreg.Mode
	Clients   int
	Backend   Backend

	// PageCacheBytes overrides the profile's server page-cache capacity
	// (disk backend only).
	PageCacheBytes int64

	// CopyData materializes and moves real payload bytes (integrity tests);
	// large experiments leave it off.
	CopyData bool

	// CacheMaxBytes bounds the registration-cache slab on both endpoints
	// (RegMode Cache only; 0 = the memreg default).
	CacheMaxBytes int64

	// DRCEntries bounds the server's per-client duplicate request cache.
	// 0 selects the default (256 entries per client machine); negative
	// disables the cache entirely, making retransmitted non-idempotent
	// calls re-execute (for ablation only).
	DRCEntries int

	// FSCapacity is the advertised export size.
	FSCapacity int64

	// ServerShards enables the server transport's sharded dispatch path:
	// connections hash across this many shards, each owning a shared
	// receive queue (SRQ), a completion-polling loop, and a slice of the
	// worker pool. Zero keeps the per-connection receive path. Required in
	// practice beyond a few tens of clients — per-connection receive rings
	// scale memory and polling linearly with connection count.
	ServerShards int

	// MaxConns caps live server connections (admission control). Dialing
	// clients beyond the cap are rejected and retry with exponential
	// backoff until a slot frees. Zero means unlimited.
	MaxConns int

	// Multiplex shares one server-side QP per dispatch shard across all
	// clients (DCT-style endpoints demultiplexed by stream id), making
	// server connection cost O(shards) instead of O(connections). Implies
	// sharded dispatch (ServerShards, default 8). RDMA transport only.
	Multiplex bool

	// Affinity pins each shard's reply processing to its completion CPU
	// (see rpcrdma.Config.Affinity). Sharded dispatch only.
	Affinity bool

	// SRQDepth overrides the per-shard shared receive queue depth. The
	// capacity sweep uses it to provision per-connection mode honestly
	// (receive buffers for every client's full credit window) while
	// multiplexed mode keeps the fixed default.
	SRQDepth int

	// MigrationCost overrides the server's cross-CPU completion-handoff
	// penalty (zero keeps the profile's value; see cpu.Model.Migrate).
	MigrationCost des.Duration

	// Security posture knobs, exercised by the adversary engine. The
	// defaults are the hardened configuration; the three Trust*/Sequential
	// switches re-open the pre-hardening holes so attacks can be measured.
	// SequentialRkeys makes every node allocate steering tags sequentially
	// (trivially guessable); FMRKeyRotate rotates FMR tags per remap;
	// TrustStreamClaims/TrustCredDRC/QuarantineThreshold map onto
	// rpcrdma.Config (see there).
	SequentialRkeys     bool
	FMRKeyRotate        bool
	TrustStreamClaims   bool
	TrustCredDRC        bool
	QuarantineThreshold int

	Seed uint64
}

func (c *Config) defaults() {
	if c.Clients <= 0 {
		c.Clients = 1
	}
	if c.FSCapacity <= 0 {
		c.FSCapacity = 1 << 44
	}
	if c.PageCacheBytes <= 0 {
		c.PageCacheBytes = c.Profile.PageCacheBytes
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Server is the simulated NFS server host.
type Server struct {
	Node  *ibsim.Node
	FS    *vfs.Namespace
	NFS   *nfs3.Server
	Mount *nfs3.MountServer
	Mgr   *memreg.Manager

	RDMA       *rpcrdma.ServerTransport
	TCP        *tcpsim.Listener
	Dispatcher *oncrpc.Dispatcher

	Disk  *vfs.DiskArray
	Cache *vfs.PageCache
}

// Cluster is one fully wired experiment instance.
type Cluster struct {
	Cfg     Config
	Sim     *des.Sim
	Fabric  *ibsim.Fabric
	Server  *Server
	Clients []*Client

	// Crashes counts server crash/restart cycles driven through CrashServer
	// (see crash.go).
	Crashes int64

	ready *des.Event

	// serverRDMACfg is the resolved server transport configuration, kept so
	// RestartServer can rebuild an identical transport after a crash.
	serverRDMACfg rpcrdma.Config
	serverDown    bool

	// tel is the telemetry engine attached by EnableTelemetry (nil — the
	// disabled engine — otherwise; see telemetry.go).
	tel *telemetry.Engine
}

// NewCluster builds the hosts and schedules the wiring (managers and
// transports are created inside the simulation, since FMR pools and
// connections take simulated time). Workloads started with Start run after
// wiring completes.
func NewCluster(cfg Config) *Cluster {
	cfg.defaults()
	sim := des.New()
	fab := ibsim.NewFabric(sim, cfg.CopyData)
	c := &Cluster{Cfg: cfg, Sim: sim, Fabric: fab, ready: des.NewEvent(sim)}

	serverNodeCfg := cfg.Profile.Server
	clientNodeCfg := cfg.Profile.Client
	if cfg.Transport == TransportGigE {
		serverNodeCfg.PortBandwidth = profiles.GigEPortBandwidth
		serverNodeCfg.PortLatency = profiles.GigEPortLatency
		clientNodeCfg.PortBandwidth = profiles.GigEPortBandwidth
		clientNodeCfg.PortLatency = profiles.GigEPortLatency
	}
	serverNodeCfg.Name = "server"
	serverNodeCfg.Seed = cfg.Seed * 31
	serverNodeCfg.SequentialRkeys = cfg.SequentialRkeys
	serverNodeCfg.FMRKeyRotate = cfg.FMRKeyRotate
	clientNodeCfg.SequentialRkeys = cfg.SequentialRkeys
	clientNodeCfg.FMRKeyRotate = cfg.FMRKeyRotate
	if cfg.MigrationCost > 0 {
		serverNodeCfg.MigrationCost = cfg.MigrationCost
	}
	srvNode := fab.AddNode(serverNodeCfg)

	srv := &Server{Node: srvNode}
	var store vfs.Store
	switch cfg.Backend {
	case BackendTmpfs:
		store = vfs.NewMemStore(cfg.CopyData)
	case BackendDisk:
		srv.Disk = vfs.NewDiskArray(sim, "server-raid", cfg.Profile.Disk)
		srv.Cache = vfs.NewPageCache(srv.Disk, vfs.PageCacheConfig{
			CapacityBytes: cfg.PageCacheBytes,
		})
		store = vfs.NewDiskStore(srv.Cache)
	}
	srv.FS = vfs.NewNamespace(sim, store, cfg.FSCapacity)
	srv.NFS = nfs3.NewServer(srv.FS, nfs3.ServerConfig{
		CPU:      srvNode.CPU,
		PerOpCPU: cfg.Profile.NFSPerOpCPU,
	})
	srv.Mount = nfs3.NewMountServer(srv.NFS)
	c.Server = srv

	dispatcher := oncrpc.NewDispatcher()
	dispatcher.Register(srv.NFS)
	dispatcher.Register(srv.Mount)
	srv.Dispatcher = dispatcher
	if cfg.DRCEntries >= 0 {
		entries := cfg.DRCEntries
		if entries == 0 {
			entries = 256
		}
		dispatcher.EnableDRC(entries)
	}

	for i := 0; i < cfg.Clients; i++ {
		nodeCfg := clientNodeCfg
		nodeCfg.Name = fmt.Sprintf("client%d", i)
		nodeCfg.Seed = cfg.Seed*101 + uint64(i)
		c.Clients = append(c.Clients, &Client{
			cluster: c,
			Index:   i,
			Node:    fab.AddNode(nodeCfg),
		})
	}

	sim.Spawn("cluster-setup", func(p *des.Proc) {
		srv.Mgr = memreg.NewManager(p, srvNode, memreg.Config{Mode: cfg.RegMode, CacheMaxBytes: cfg.CacheMaxBytes})
		switch cfg.Transport {
		case TransportRDMA:
			sCfg := cfg.Profile.RDMAServer
			sCfg.Design = cfg.Design
			sCfg.Shards = cfg.ServerShards
			sCfg.MaxConns = cfg.MaxConns
			sCfg.Multiplex = cfg.Multiplex
			sCfg.Affinity = cfg.Affinity
			sCfg.TrustStreamClaims = cfg.TrustStreamClaims
			sCfg.TrustCredDRC = cfg.TrustCredDRC
			sCfg.QuarantineThreshold = cfg.QuarantineThreshold
			if cfg.SRQDepth > 0 {
				sCfg.SRQDepth = cfg.SRQDepth
			}
			c.serverRDMACfg = sCfg
			srv.RDMA = rpcrdma.NewServerTransport(p, srvNode, srv.Mgr, dispatcher, sCfg)
			for _, cl := range c.Clients {
				cl.Mgr = memreg.NewManager(p, cl.Node, memreg.Config{Mode: cfg.RegMode, CacheMaxBytes: cfg.CacheMaxBytes})
				t, err := connectRDMA(p, cl)
				if err != nil {
					panic(err.Error())
				}
				cl.RDMA = t
				cl.Transport = cl.RDMA
			}
		case TransportIPoIB, TransportGigE:
			tcpCfg := cfg.Profile.TCP
			if cfg.Transport == TransportGigE {
				tcpCfg = profiles.GigETCP()
			}
			srv.TCP = tcpsim.NewListener(srvNode, dispatcher, tcpCfg)
			for _, cl := range c.Clients {
				cl.Mgr = memreg.NewManager(p, cl.Node, memreg.Config{Mode: cfg.RegMode, CacheMaxBytes: cfg.CacheMaxBytes})
				cl.Transport = tcpsim.Dial(cl.Node, srv.TCP)
			}
		}
		for _, cl := range c.Clients {
			cl.NFS = nfs3.NewClient(cl.Transport, cl.Node.Name())
			cl.NFS.AttachSim(sim)
			// Bootstrap through the MOUNT protocol, as a real client would.
			mc := nfs3.NewMountClient(cl.Transport, cl.Node.Name())
			root, err := mc.Mount(p, "/")
			if err != nil {
				panic(fmt.Sprintf("core: mount failed for %s: %v", cl.Node.Name(), err))
			}
			cl.Root = root
		}
		c.ready.Fire(nil)
	})
	return c
}

// newClientTransport builds an RPC/RDMA client endpoint with the cluster's
// configured design, shared by initial wiring and Reconnect. In multiplexed
// mode the transport is sized to the server's initial credit grant (its
// sub-account of the shard's pooled receives) and honors regrants carried in
// replies.
func newClientTransport(p *des.Proc, cq *ibsim.QP, cl *Client, grant int) *rpcrdma.ClientTransport {
	cfg := cl.cluster.Cfg.Profile.RDMAClient
	cfg.Design = cl.cluster.Cfg.Design
	if cl.cluster.Cfg.Multiplex {
		cfg.Multiplex = true
		if grant > 0 && grant < cfg.Credits {
			cfg.Credits = grant
		}
	}
	return rpcrdma.NewClientTransport(p, cq, cl.Mgr, cfg)
}

// connectRDMA dials the server for one client, honouring admission control:
// a rejected connection is closed and redialled with exponential backoff
// until the server has room. Used by both initial wiring and Reconnect, in
// both connection modes — a dedicated QP pair per client, or (Multiplex) a
// lightweight endpoint attached to a shard's shared QP. The retry budget is
// finite; a nil transport and an error mean every attempt was rejected —
// because MaxConns starves this client, or because the server is down
// (crashed) for longer than the whole dial window. Initial wiring treats
// that as fatal; the recovery layer keeps redialling.
func connectRDMA(p *des.Proc, cl *Client) (*rpcrdma.ClientTransport, error) {
	cluster := cl.cluster
	// One admission attempt; both modes share the surrounding backoff loop
	// so redial policy cannot drift between them.
	dial := func() (*ibsim.QP, int, bool) {
		if cluster.Cfg.Multiplex {
			return cluster.Server.RDMA.TryAttach(cl.Node)
		}
		cq, sq := cluster.Fabric.Connect(cl.Node, cluster.Server.Node, ibsim.QPConfig{})
		if !cluster.Server.RDMA.TryServe(sq) {
			cq.Close()
			return nil, 0, false
		}
		return cq, 0, true
	}
	backoff := admissionBackoffBase
	for attempt := 0; ; attempt++ {
		if cq, grant, ok := dial(); ok {
			return newClientTransport(p, cq, cl, grant), nil
		}
		if attempt >= admissionRetryLimit {
			return nil, fmt.Errorf("core: %s rejected by server %d times (MaxConns=%d too small for %d clients, or server down?)",
				cl.Node.Name(), attempt+1, cluster.Cfg.MaxConns, cluster.Cfg.Clients)
		}
		p.Sleep(backoff)
		backoff *= 2
	}
}

// Admission-control redial policy.
const (
	admissionBackoffBase des.Duration = 50_000 // 50µs, doubling per attempt
	admissionRetryLimit               = 12
)

// EnableTracing installs a structured tracer on the cluster's simulation
// and returns it. Call before Run; capacity <= 0 selects the default ring
// size. Every layer — kernel, fabric, transport, RPC, NFS, core — starts
// emitting into it immediately.
func (c *Cluster) EnableTracing(capacity int) *trace.Tracer {
	tr := trace.New(capacity)
	c.Sim.SetTracer(tr)
	return tr
}

// Start spawns a workload process that begins once the cluster is wired.
func (c *Cluster) Start(name string, fn func(p *des.Proc)) {
	c.Sim.Spawn(name, func(p *des.Proc) {
		c.ready.Wait(p)
		fn(p)
	})
}

// Run drives the simulation to completion and returns the final virtual
// time.
func (c *Cluster) Run() des.Time { return c.Sim.Run() }

// RunUntil bounds a runaway simulation.
func (c *Cluster) RunUntil(limit des.Time) des.Time { return c.Sim.RunUntil(limit) }
