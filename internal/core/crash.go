package core

import (
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/rpcrdma"
)

// Server crash and restart. NFSv3 is stateless by design, so a crash kills
// exactly the server's volatile memory and nothing a client cannot recover
// from:
//
//	dies with the server      survives the crash
//	-------------------       ------------------------------------------
//	DRC replay windows        the exported tree + stable file contents
//	registration cache/MRs    file handles (FSID + FileID, no generation)
//	parked replies (RR)       cumulative per-procedure Ops counters
//	SRQ pools, work queues    client-side state (XID stream, caches)
//	page cache (dirty too)
//	write verifier (bumped)
//
// Clients notice the crash as QP deaths, reconnect through the existing
// EnableRecovery path once TryServe accepts again, and replay in-flight
// calls with their original XIDs. Because the DRC died, a replayed
// non-idempotent call (WRITE, RENAME, ...) RE-EXECUTES — the NFSv3
// semantics the data-integrity oracle in internal/chaos makes explicit:
// re-executed WRITEs are idempotent at the data level (same bytes, same
// offset), while a re-executed RENAME of an already-renamed file surfaces
// as ENOENT inside the crash window.

// ServerDown reports whether the server is currently crashed.
func (c *Cluster) ServerDown() bool { return c.serverDown }

// CrashServer kills the server at the current virtual instant: every live
// connection's QP errors (clients observe the death immediately), parked
// replies and work queues are torn down, and all volatile server state —
// DRC, registration manager, page cache — is wiped. The server stays down,
// rejecting dials, until RestartServer. RDMA transport only; no-op if
// already down.
func (c *Cluster) CrashServer(p *des.Proc) {
	if c.serverDown || c.Server.RDMA == nil {
		return
	}
	c.serverDown = true
	c.Crashes++
	c.Server.RDMA.Shutdown(p)
	c.Server.Dispatcher.DropDRC()
	if c.Server.Cache != nil {
		c.Server.Cache.Crash()
	}
}

// RestartServer boots the server back up: a fresh registration manager
// (the old one's cached registrations died with the HCA state), a fresh
// server transport built from the same configuration as initial wiring, and
// a bumped NFSv3 write verifier so clients can detect the reboot. Dialing
// clients are accepted again from this instant on.
func (c *Cluster) RestartServer(p *des.Proc) {
	if !c.serverDown {
		return
	}
	srv := c.Server
	srv.Mgr = memreg.NewManager(p, srv.Node, memreg.Config{Mode: c.Cfg.RegMode, CacheMaxBytes: c.Cfg.CacheMaxBytes})
	srv.RDMA = rpcrdma.NewServerTransport(p, srv.Node, srv.Mgr, srv.Dispatcher, c.serverRDMACfg)
	srv.NFS.Restart(uint64(c.Crashes))
	c.serverDown = false
}

// ScheduleServerCrash arms a crash at virtual time at, followed by a
// restart after downtime. Crashes are serialized through the serverDown
// flag: a crash scheduled while the server is already down is a no-op (and
// its restart, finding the server already up, is too).
func (c *Cluster) ScheduleServerCrash(at des.Time, downtime des.Duration) {
	c.Sim.SpawnAt(at, "server-crash", func(p *des.Proc) {
		if c.serverDown {
			return
		}
		c.CrashServer(p)
		p.Sleep(downtime)
		c.RestartServer(p)
	})
}
