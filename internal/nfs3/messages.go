package nfs3

import (
	"repro/internal/xdr"
)

// This file defines the argument and result messages of every NFSv3
// procedure with symmetric Encode/Decode, shared by the client stubs and
// the server dispatcher so the two sides cannot drift.
//
// READ results and WRITE arguments deliberately exclude the data payload:
// it travels through the transport's direct-data-placement path (RDMA
// chunks, or appended inline by the stream transport), exactly like the
// page-list part of the kernel xdr_buf.

// GetAttrArgs is GETATTR3args.
type GetAttrArgs struct{ FH FH }

// Encode marshals the args.
func (a *GetAttrArgs) Encode(e *xdr.Encoder) { a.FH.Encode(e) }

// DecodeGetAttrArgs unmarshals GETATTR3args.
func DecodeGetAttrArgs(d *xdr.Decoder) (GetAttrArgs, error) {
	fh, err := DecodeFH(d)
	return GetAttrArgs{FH: fh}, err
}

// GetAttrRes is GETATTR3res.
type GetAttrRes struct {
	Status Status
	Attr   FAttr
}

// Encode marshals the result.
func (r *GetAttrRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Attr.Encode(e)
	}
}

// DecodeGetAttrRes unmarshals GETATTR3res.
func DecodeGetAttrRes(d *xdr.Decoder) (GetAttrRes, error) {
	var r GetAttrRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Status == OK {
		r.Attr, err = DecodeFAttr(d)
	}
	return r, err
}

// SetAttrArgs is SETATTR3args. Guard, when non-nil, is the sattrguard3
// ctime: the server applies the change only if the object's current ctime
// matches, else NFS3ERR_NOT_SYNC (the optimistic-concurrency check real
// clients use to serialize attribute updates).
type SetAttrArgs struct {
	FH    FH
	Attr  SAttr
	Guard *NFSTime
}

// Encode marshals the args.
func (a *SetAttrArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	a.Attr.Encode(e)
	e.Bool(a.Guard != nil)
	if a.Guard != nil {
		a.Guard.encode(e)
	}
}

// DecodeSetAttrArgs unmarshals SETATTR3args.
func DecodeSetAttrArgs(d *xdr.Decoder) (SetAttrArgs, error) {
	var a SetAttrArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	if a.Attr, err = DecodeSAttr(d); err != nil {
		return a, err
	}
	guard, err := d.Bool()
	if err != nil {
		return a, err
	}
	if guard {
		t, err := decodeTime(d)
		if err != nil {
			return a, err
		}
		a.Guard = &t
	}
	return a, nil
}

// WccRes is the common "status + wcc_data" result shape (SETATTR, REMOVE,
// RMDIR).
type WccRes struct {
	Status Status
	Wcc    WccData
}

// Encode marshals the result.
func (r *WccRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
}

// DecodeWccRes unmarshals a status + wcc_data result.
func DecodeWccRes(d *xdr.Decoder) (WccRes, error) {
	var r WccRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	r.Wcc, err = DecodeWccData(d)
	return r, err
}

// DirOpArgs is diropargs3 (LOOKUP, REMOVE, RMDIR and friends).
type DirOpArgs struct {
	Dir  FH
	Name string
}

// Encode marshals the args.
func (a *DirOpArgs) Encode(e *xdr.Encoder) {
	a.Dir.Encode(e)
	e.String(a.Name)
}

// DecodeDirOpArgs unmarshals diropargs3.
func DecodeDirOpArgs(d *xdr.Decoder) (DirOpArgs, error) {
	var a DirOpArgs
	var err error
	if a.Dir, err = DecodeFH(d); err != nil {
		return a, err
	}
	a.Name, err = d.String()
	return a, err
}

// LookupRes is LOOKUP3res.
type LookupRes struct {
	Status  Status
	Object  FH
	ObjAttr PostOpAttr
	DirAttr PostOpAttr
}

// Encode marshals the result.
func (r *LookupRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		r.Object.Encode(e)
		r.ObjAttr.Encode(e)
	}
	r.DirAttr.Encode(e)
}

// DecodeLookupRes unmarshals LOOKUP3res.
func DecodeLookupRes(d *xdr.Decoder) (LookupRes, error) {
	var r LookupRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Status == OK {
		if r.Object, err = DecodeFH(d); err != nil {
			return r, err
		}
		if r.ObjAttr, err = DecodePostOpAttr(d); err != nil {
			return r, err
		}
	}
	r.DirAttr, err = DecodePostOpAttr(d)
	return r, err
}

// AccessArgs is ACCESS3args.
type AccessArgs struct {
	FH     FH
	Access uint32
}

// Encode marshals the args.
func (a *AccessArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	e.Uint32(a.Access)
}

// DecodeAccessArgs unmarshals ACCESS3args.
func DecodeAccessArgs(d *xdr.Decoder) (AccessArgs, error) {
	var a AccessArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	a.Access, err = d.Uint32()
	return a, err
}

// AccessRes is ACCESS3res.
type AccessRes struct {
	Status Status
	Attr   PostOpAttr
	Access uint32
}

// Encode marshals the result.
func (r *AccessRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.Uint32(r.Access)
	}
}

// DecodeAccessRes unmarshals ACCESS3res.
func DecodeAccessRes(d *xdr.Decoder) (AccessRes, error) {
	var r AccessRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status == OK {
		r.Access, err = d.Uint32()
	}
	return r, err
}

// ReadLinkRes is READLINK3res.
type ReadLinkRes struct {
	Status Status
	Attr   PostOpAttr
	Path   string
}

// Encode marshals the result.
func (r *ReadLinkRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.String(r.Path)
	}
}

// DecodeReadLinkRes unmarshals READLINK3res.
func DecodeReadLinkRes(d *xdr.Decoder) (ReadLinkRes, error) {
	var r ReadLinkRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status == OK {
		r.Path, err = d.String()
	}
	return r, err
}

// ReadArgs is READ3args.
type ReadArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode marshals the args.
func (a *ReadArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeReadArgs unmarshals READ3args.
func DecodeReadArgs(d *xdr.Decoder) (ReadArgs, error) {
	var a ReadArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	if a.Offset, err = d.Uint64(); err != nil {
		return a, err
	}
	a.Count, err = d.Uint32()
	return a, err
}

// ReadRes is READ3res with the data payload carried out of band.
type ReadRes struct {
	Status Status
	Attr   PostOpAttr
	Count  uint32
	EOF    bool
}

// Encode marshals the result.
func (r *ReadRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Bool(r.EOF)
		e.Uint32(r.Count) // data<> length; bytes travel via placement
	}
}

// DecodeReadRes unmarshals READ3res.
func DecodeReadRes(d *xdr.Decoder) (ReadRes, error) {
	var r ReadRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status == OK {
		if r.Count, err = d.Uint32(); err != nil {
			return r, err
		}
		if r.EOF, err = d.Bool(); err != nil {
			return r, err
		}
		if _, err = d.Uint32(); err != nil { // data<> length
			return r, err
		}
	}
	return r, nil
}

// WriteArgs is WRITE3args with the data payload carried out of band.
type WriteArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
	Stable uint32
}

// Encode marshals the args.
func (a *WriteArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
	e.Uint32(a.Stable)
	e.Uint32(a.Count) // data<> length; bytes travel via placement
}

// DecodeWriteArgs unmarshals WRITE3args.
func DecodeWriteArgs(d *xdr.Decoder) (WriteArgs, error) {
	var a WriteArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	if a.Offset, err = d.Uint64(); err != nil {
		return a, err
	}
	if a.Count, err = d.Uint32(); err != nil {
		return a, err
	}
	if a.Stable, err = d.Uint32(); err != nil {
		return a, err
	}
	_, err = d.Uint32() // data<> length
	return a, err
}

// WriteRes is WRITE3res.
type WriteRes struct {
	Status    Status
	Wcc       WccData
	Count     uint32
	Committed uint32
	Verf      uint64
}

// Encode marshals the result.
func (r *WriteRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
	if r.Status == OK {
		e.Uint32(r.Count)
		e.Uint32(r.Committed)
		e.Uint64(r.Verf)
	}
}

// DecodeWriteRes unmarshals WRITE3res.
func DecodeWriteRes(d *xdr.Decoder) (WriteRes, error) {
	var r WriteRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Wcc, err = DecodeWccData(d); err != nil {
		return r, err
	}
	if r.Status == OK {
		if r.Count, err = d.Uint32(); err != nil {
			return r, err
		}
		if r.Committed, err = d.Uint32(); err != nil {
			return r, err
		}
		if r.Verf, err = d.Uint64(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// CreateArgs is CREATE3args / MKDIR3args (mode UNCHECKED).
type CreateArgs struct {
	Where DirOpArgs
	Attr  SAttr
}

// Encode marshals the args.
func (a *CreateArgs) Encode(e *xdr.Encoder) {
	a.Where.Encode(e)
	e.Uint32(0) // createmode3 UNCHECKED
	a.Attr.Encode(e)
}

// DecodeCreateArgs unmarshals CREATE3args.
func DecodeCreateArgs(d *xdr.Decoder) (CreateArgs, error) {
	var a CreateArgs
	var err error
	if a.Where, err = DecodeDirOpArgs(d); err != nil {
		return a, err
	}
	if _, err = d.Uint32(); err != nil { // createmode3
		return a, err
	}
	a.Attr, err = DecodeSAttr(d)
	return a, err
}

// MkdirArgs is MKDIR3args (same shape minus createmode).
type MkdirArgs struct {
	Where DirOpArgs
	Attr  SAttr
}

// Encode marshals the args.
func (a *MkdirArgs) Encode(e *xdr.Encoder) {
	a.Where.Encode(e)
	a.Attr.Encode(e)
}

// DecodeMkdirArgs unmarshals MKDIR3args.
func DecodeMkdirArgs(d *xdr.Decoder) (MkdirArgs, error) {
	var a MkdirArgs
	var err error
	if a.Where, err = DecodeDirOpArgs(d); err != nil {
		return a, err
	}
	a.Attr, err = DecodeSAttr(d)
	return a, err
}

// SymlinkArgs is SYMLINK3args.
type SymlinkArgs struct {
	Where  DirOpArgs
	Attr   SAttr
	Target string
}

// Encode marshals the args.
func (a *SymlinkArgs) Encode(e *xdr.Encoder) {
	a.Where.Encode(e)
	a.Attr.Encode(e)
	e.String(a.Target)
}

// DecodeSymlinkArgs unmarshals SYMLINK3args.
func DecodeSymlinkArgs(d *xdr.Decoder) (SymlinkArgs, error) {
	var a SymlinkArgs
	var err error
	if a.Where, err = DecodeDirOpArgs(d); err != nil {
		return a, err
	}
	if a.Attr, err = DecodeSAttr(d); err != nil {
		return a, err
	}
	a.Target, err = d.String()
	return a, err
}

// CreateRes is CREATE3res / MKDIR3res / SYMLINK3res.
type CreateRes struct {
	Status    Status
	FHPresent bool
	FH        FH
	Attr      PostOpAttr
	DirWcc    WccData
}

// Encode marshals the result.
func (r *CreateRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	if r.Status == OK {
		e.Bool(r.FHPresent)
		if r.FHPresent {
			r.FH.Encode(e)
		}
		r.Attr.Encode(e)
	}
	r.DirWcc.Encode(e)
}

// DecodeCreateRes unmarshals CREATE3res.
func DecodeCreateRes(d *xdr.Decoder) (CreateRes, error) {
	var r CreateRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Status == OK {
		if r.FHPresent, err = d.Bool(); err != nil {
			return r, err
		}
		if r.FHPresent {
			if r.FH, err = DecodeFH(d); err != nil {
				return r, err
			}
		}
		if r.Attr, err = DecodePostOpAttr(d); err != nil {
			return r, err
		}
	}
	r.DirWcc, err = DecodeWccData(d)
	return r, err
}

// RenameArgs is RENAME3args.
type RenameArgs struct {
	From DirOpArgs
	To   DirOpArgs
}

// Encode marshals the args.
func (a *RenameArgs) Encode(e *xdr.Encoder) {
	a.From.Encode(e)
	a.To.Encode(e)
}

// DecodeRenameArgs unmarshals RENAME3args.
func DecodeRenameArgs(d *xdr.Decoder) (RenameArgs, error) {
	var a RenameArgs
	var err error
	if a.From, err = DecodeDirOpArgs(d); err != nil {
		return a, err
	}
	a.To, err = DecodeDirOpArgs(d)
	return a, err
}

// RenameRes is RENAME3res.
type RenameRes struct {
	Status  Status
	FromWcc WccData
	ToWcc   WccData
}

// Encode marshals the result.
func (r *RenameRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.FromWcc.Encode(e)
	r.ToWcc.Encode(e)
}

// DecodeRenameRes unmarshals RENAME3res.
func DecodeRenameRes(d *xdr.Decoder) (RenameRes, error) {
	var r RenameRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.FromWcc, err = DecodeWccData(d); err != nil {
		return r, err
	}
	r.ToWcc, err = DecodeWccData(d)
	return r, err
}

// LinkArgs is LINK3args.
type LinkArgs struct {
	FH   FH
	Link DirOpArgs
}

// Encode marshals the args.
func (a *LinkArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	a.Link.Encode(e)
}

// DecodeLinkArgs unmarshals LINK3args.
func DecodeLinkArgs(d *xdr.Decoder) (LinkArgs, error) {
	var a LinkArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	a.Link, err = DecodeDirOpArgs(d)
	return a, err
}

// LinkRes is LINK3res.
type LinkRes struct {
	Status  Status
	Attr    PostOpAttr
	LinkWcc WccData
}

// Encode marshals the result.
func (r *LinkRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	r.LinkWcc.Encode(e)
}

// DecodeLinkRes unmarshals LINK3res.
func DecodeLinkRes(d *xdr.Decoder) (LinkRes, error) {
	var r LinkRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	r.LinkWcc, err = DecodeWccData(d)
	return r, err
}

// ReadDirArgs is READDIR3args / READDIRPLUS3args (maxcount collapsed).
type ReadDirArgs struct {
	Dir        FH
	Cookie     uint64
	CookieVerf uint64
	Count      uint32
	Plus       bool // READDIRPLUS
}

// Encode marshals the args.
func (a *ReadDirArgs) Encode(e *xdr.Encoder) {
	a.Dir.Encode(e)
	e.Uint64(a.Cookie)
	e.Uint64(a.CookieVerf)
	if a.Plus {
		e.Uint32(a.Count) // dircount
	}
	e.Uint32(a.Count) // (max)count
}

// DecodeReadDirArgs unmarshals READDIR3args.
func DecodeReadDirArgs(d *xdr.Decoder, plus bool) (ReadDirArgs, error) {
	a := ReadDirArgs{Plus: plus}
	var err error
	if a.Dir, err = DecodeFH(d); err != nil {
		return a, err
	}
	if a.Cookie, err = d.Uint64(); err != nil {
		return a, err
	}
	if a.CookieVerf, err = d.Uint64(); err != nil {
		return a, err
	}
	if plus {
		if _, err = d.Uint32(); err != nil { // dircount
			return a, err
		}
	}
	a.Count, err = d.Uint32()
	return a, err
}

// DirEntry3 is one READDIR(PLUS) entry.
type DirEntry3 struct {
	FileID uint64
	Name   string
	Cookie uint64
	// READDIRPLUS extras.
	Attr      PostOpAttr
	FHPresent bool
	FH        FH
}

// ReadDirRes is READDIR3res / READDIRPLUS3res.
type ReadDirRes struct {
	Status     Status
	DirAttr    PostOpAttr
	CookieVerf uint64
	Entries    []DirEntry3
	EOF        bool
	Plus       bool
}

// Encode marshals the result.
func (r *ReadDirRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.DirAttr.Encode(e)
	if r.Status != OK {
		return
	}
	e.Uint64(r.CookieVerf)
	for i := range r.Entries {
		ent := &r.Entries[i]
		e.Bool(true)
		e.Uint64(ent.FileID)
		e.String(ent.Name)
		e.Uint64(ent.Cookie)
		if r.Plus {
			ent.Attr.Encode(e)
			e.Bool(ent.FHPresent)
			if ent.FHPresent {
				ent.FH.Encode(e)
			}
		}
	}
	e.Bool(false) // end of list
	e.Bool(r.EOF)
}

// DecodeReadDirRes unmarshals READDIR3res.
func DecodeReadDirRes(d *xdr.Decoder, plus bool) (ReadDirRes, error) {
	r := ReadDirRes{Plus: plus}
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.DirAttr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status != OK {
		return r, nil
	}
	if r.CookieVerf, err = d.Uint64(); err != nil {
		return r, err
	}
	for {
		more, err := d.Bool()
		if err != nil {
			return r, err
		}
		if !more {
			break
		}
		var ent DirEntry3
		if ent.FileID, err = d.Uint64(); err != nil {
			return r, err
		}
		if ent.Name, err = d.String(); err != nil {
			return r, err
		}
		if ent.Cookie, err = d.Uint64(); err != nil {
			return r, err
		}
		if plus {
			if ent.Attr, err = DecodePostOpAttr(d); err != nil {
				return r, err
			}
			if ent.FHPresent, err = d.Bool(); err != nil {
				return r, err
			}
			if ent.FHPresent {
				if ent.FH, err = DecodeFH(d); err != nil {
					return r, err
				}
			}
		}
		r.Entries = append(r.Entries, ent)
	}
	r.EOF, err = d.Bool()
	return r, err
}

// FSStatRes is FSSTAT3res.
type FSStatRes struct {
	Status Status
	Attr   PostOpAttr
	TBytes uint64
	FBytes uint64
	ABytes uint64
	TFiles uint64
	FFiles uint64
	AFiles uint64
}

// Encode marshals the result.
func (r *FSStatRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.Uint64(r.TBytes)
		e.Uint64(r.FBytes)
		e.Uint64(r.ABytes)
		e.Uint64(r.TFiles)
		e.Uint64(r.FFiles)
		e.Uint64(r.AFiles)
		e.Uint32(0) // invarsec
	}
}

// DecodeFSStatRes unmarshals FSSTAT3res.
func DecodeFSStatRes(d *xdr.Decoder) (FSStatRes, error) {
	var r FSStatRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status != OK {
		return r, nil
	}
	vals := []*uint64{&r.TBytes, &r.FBytes, &r.ABytes, &r.TFiles, &r.FFiles, &r.AFiles}
	for _, v := range vals {
		if *v, err = d.Uint64(); err != nil {
			return r, err
		}
	}
	_, err = d.Uint32() // invarsec
	return r, err
}

// FSInfoRes is FSINFO3res.
type FSInfoRes struct {
	Status      Status
	Attr        PostOpAttr
	RTMax       uint32
	RTPref      uint32
	WTMax       uint32
	WTPref      uint32
	DTPref      uint32
	MaxFileSize uint64
}

// Encode marshals the result.
func (r *FSInfoRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.Uint32(r.RTMax)
		e.Uint32(r.RTPref)
		e.Uint32(1) // rtmult
		e.Uint32(r.WTMax)
		e.Uint32(r.WTPref)
		e.Uint32(1) // wtmult
		e.Uint32(r.DTPref)
		e.Uint64(r.MaxFileSize)
		NFSTime{Sec: 0, NSec: 1}.encode(e) // time_delta
		e.Uint32(0x1b)                     // properties: LINK|SYMLINK|HOMOGENEOUS|CANSETTIME
	}
}

// DecodeFSInfoRes unmarshals FSINFO3res.
func DecodeFSInfoRes(d *xdr.Decoder) (FSInfoRes, error) {
	var r FSInfoRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status != OK {
		return r, nil
	}
	if r.RTMax, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.RTPref, err = d.Uint32(); err != nil {
		return r, err
	}
	if _, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.WTMax, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.WTPref, err = d.Uint32(); err != nil {
		return r, err
	}
	if _, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.DTPref, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.MaxFileSize, err = d.Uint64(); err != nil {
		return r, err
	}
	if _, err = decodeTime(d); err != nil {
		return r, err
	}
	_, err = d.Uint32()
	return r, err
}

// PathConfRes is PATHCONF3res.
type PathConfRes struct {
	Status  Status
	Attr    PostOpAttr
	LinkMax uint32
	NameMax uint32
}

// Encode marshals the result.
func (r *PathConfRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Attr.Encode(e)
	if r.Status == OK {
		e.Uint32(r.LinkMax)
		e.Uint32(r.NameMax)
		e.Bool(true)  // no_trunc
		e.Bool(false) // chown_restricted
		e.Bool(false) // case_insensitive
		e.Bool(true)  // case_preserving
	}
}

// DecodePathConfRes unmarshals PATHCONF3res.
func DecodePathConfRes(d *xdr.Decoder) (PathConfRes, error) {
	var r PathConfRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Attr, err = DecodePostOpAttr(d); err != nil {
		return r, err
	}
	if r.Status != OK {
		return r, nil
	}
	if r.LinkMax, err = d.Uint32(); err != nil {
		return r, err
	}
	if r.NameMax, err = d.Uint32(); err != nil {
		return r, err
	}
	for i := 0; i < 4; i++ {
		if _, err = d.Bool(); err != nil {
			return r, err
		}
	}
	return r, nil
}

// CommitArgs is COMMIT3args.
type CommitArgs struct {
	FH     FH
	Offset uint64
	Count  uint32
}

// Encode marshals the args.
func (a *CommitArgs) Encode(e *xdr.Encoder) {
	a.FH.Encode(e)
	e.Uint64(a.Offset)
	e.Uint32(a.Count)
}

// DecodeCommitArgs unmarshals COMMIT3args.
func DecodeCommitArgs(d *xdr.Decoder) (CommitArgs, error) {
	var a CommitArgs
	var err error
	if a.FH, err = DecodeFH(d); err != nil {
		return a, err
	}
	if a.Offset, err = d.Uint64(); err != nil {
		return a, err
	}
	a.Count, err = d.Uint32()
	return a, err
}

// CommitRes is COMMIT3res.
type CommitRes struct {
	Status Status
	Wcc    WccData
	Verf   uint64
}

// Encode marshals the result.
func (r *CommitRes) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(r.Status))
	r.Wcc.Encode(e)
	if r.Status == OK {
		e.Uint64(r.Verf)
	}
}

// DecodeCommitRes unmarshals COMMIT3res.
func DecodeCommitRes(d *xdr.Decoder) (CommitRes, error) {
	var r CommitRes
	st, err := d.Uint32()
	if err != nil {
		return r, err
	}
	r.Status = Status(st)
	if r.Wcc, err = DecodeWccData(d); err != nil {
		return r, err
	}
	if r.Status == OK {
		r.Verf, err = d.Uint64()
	}
	return r, err
}
