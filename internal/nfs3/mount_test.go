package nfs3

import (
	"errors"
	"testing"

	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
)

func mountPair(t *testing.T) (*des.Sim, *MountClient, *MountServer, *Server) {
	t.Helper()
	sim := des.New()
	fs := vfs.NewNamespace(sim, vfs.NewMemStore(true), 1<<40)
	srv := NewServer(fs, ServerConfig{})
	ms := NewMountServer(srv)
	d := oncrpc.NewDispatcher()
	d.Register(srv)
	d.Register(ms)
	return sim, NewMountClient(&loopback{d: d}, "clientA"), ms, srv
}

func TestMountReturnsRootHandle(t *testing.T) {
	sim, mc, ms, srv := mountPair(t)
	sim.Spawn("m", func(p *des.Proc) {
		fh, err := mc.Mount(p, "/")
		if err != nil {
			t.Errorf("mount: %v", err)
			return
		}
		if fh != srv.RootFH() {
			t.Errorf("fh = %+v, want root %+v", fh, srv.RootFH())
		}
		if ms.ActiveMounts("clientA") != 1 {
			t.Errorf("active mounts = %d", ms.ActiveMounts("clientA"))
		}
		if err := mc.Unmount(p, "/"); err != nil {
			t.Errorf("umnt: %v", err)
		}
		if ms.ActiveMounts("clientA") != 0 {
			t.Errorf("mounts after umnt = %d", ms.ActiveMounts("clientA"))
		}
	})
	sim.Run()
}

func TestMountUnknownExport(t *testing.T) {
	sim, mc, _, _ := mountPair(t)
	sim.Spawn("m", func(p *des.Proc) {
		_, err := mc.Mount(p, "/nope")
		var se *StatusError
		if !errors.As(err, &se) || se.Status != ErrNoEnt {
			t.Errorf("err = %v, want NOENT", err)
		}
	})
	sim.Run()
}

func TestMountSubExport(t *testing.T) {
	sim, mc, ms, srv := mountPair(t)
	sim.Spawn("m", func(p *des.Proc) {
		// Create a subdirectory and export it.
		fs := srv.fs
		id, _, err := fs.Mkdir(p, fs.Root(), "projects", 0755)
		if err != nil {
			t.Fatal(err)
		}
		ms.AddExport("/projects", id)
		fh, err := mc.Mount(p, "/projects")
		if err != nil {
			t.Errorf("mount sub: %v", err)
			return
		}
		if fh.FileID != uint64(id) {
			t.Errorf("fh.FileID = %d, want %d", fh.FileID, id)
		}
		exports, err := mc.Exports(p)
		if err != nil || len(exports) != 2 {
			t.Errorf("exports = %v %v", exports, err)
		}
	})
	sim.Run()
}
