package nfs3

import (
	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/xdr"
)

// procTraceNames/procHistNames are precomputed so the traced call path never
// builds a string per RPC.
var (
	procTraceNames [22]string
	procHistNames  [22]string
)

func init() {
	for i := range procTraceNames {
		procTraceNames[i] = ProcName(uint32(i))
		procHistNames[i] = "nfs." + procTraceNames[i]
	}
}

// Client provides typed NFSv3 procedure stubs over an ONC RPC client.
// Payload placement (READ data destinations, WRITE data sources) is passed
// through to the transport untouched: the RPC/RDMA transport turns it into
// chunk lists, the stream transport into inline data.
type Client struct {
	rpc     *oncrpc.Client
	machine string

	// latency, when non-nil, records one histogram per procedure.
	latency []*stats.Histogram
	sim     *des.Sim
}

// AttachSim binds the client to its simulation so the call path can reach
// the structured tracer (EnableLatencyStats does the same as a side effect).
func (c *Client) AttachSim(sim *des.Sim) { c.sim = sim }

// EnableLatencyStats starts per-procedure latency recording.
func (c *Client) EnableLatencyStats(sim *des.Sim) {
	c.sim = sim
	c.latency = make([]*stats.Histogram, 22)
	for i := range c.latency {
		c.latency[i] = &stats.Histogram{}
	}
}

// Latency returns the histogram for a procedure, or nil when recording is
// off.
func (c *Client) Latency(proc uint32) *stats.Histogram {
	if c.latency == nil || int(proc) >= len(c.latency) {
		return nil
	}
	return c.latency[proc]
}

// call wraps the RPC with latency recording and procedure-span tracing.
func (c *Client) call(p *des.Proc, proc uint32, args []byte, opts oncrpc.CallOpts) ([]byte, int, error) {
	var tr *trace.Tracer
	if c.sim != nil {
		tr = c.sim.Tracer()
	}
	if c.latency == nil && tr == nil {
		return c.rpc.Call(p, proc, args, opts)
	}
	start := p.Now()
	res, n, err := c.rpc.Call(p, proc, args, opts)
	elapsed := float64(p.Now()-start) / 1e3
	if c.latency != nil && int(proc) < len(c.latency) {
		c.latency[proc].Observe(elapsed)
	}
	if tr != nil && int(proc) < len(procTraceNames) {
		var errFlag int64
		if err != nil {
			errFlag = 1
		}
		tr.Span(int64(start), int64(p.Now()), trace.LayerNFS, trace.KindNFSProc, c.machine, procTraceNames[proc], uint64(proc), errFlag)
		tr.Observe(procHistNames[proc], elapsed)
	}
	return res, n, err
}

// NewClient wraps transport t as an NFSv3 client.
func NewClient(t oncrpc.Transport, machine string) *Client {
	cred := oncrpc.Auth{Flavor: oncrpc.AuthSys, Machine: machine, UID: 0, GID: 0}
	return &Client{rpc: oncrpc.NewClient(t, Program, Version, cred), machine: machine}
}

// Close shuts the transport down.
func (c *Client) Close() { c.rpc.Close() }

// SetTransport swaps the transport under the client (reconnect), keeping
// XID continuity.
func (c *Client) SetTransport(t oncrpc.Transport) { c.rpc.SetTransport(t) }

func enc(fn func(e *xdr.Encoder)) []byte {
	e := xdr.NewEncoder(nil)
	fn(e)
	return e.Bytes()
}

// Null performs NULL (transport ping).
func (c *Client) Null(p *des.Proc) error {
	_, _, err := c.call(p, ProcNull, nil, oncrpc.CallOpts{})
	return err
}

// GetAttr performs GETATTR.
func (c *Client) GetAttr(p *des.Proc, fh FH) (FAttr, error) {
	res, _, err := c.call(p, ProcGetAttr, enc(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }), oncrpc.CallOpts{})
	if err != nil {
		return FAttr{}, err
	}
	r, err := DecodeGetAttrRes(xdr.NewDecoder(res))
	if err != nil {
		return FAttr{}, err
	}
	return r.Attr, r.Status.Err()
}

// SetAttr performs SETATTR.
func (c *Client) SetAttr(p *des.Proc, fh FH, attr SAttr) error {
	args := SetAttrArgs{FH: fh, Attr: attr}
	res, _, err := c.call(p, ProcSetAttr, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return err
	}
	r, err := DecodeWccRes(xdr.NewDecoder(res))
	if err != nil {
		return err
	}
	return r.Status.Err()
}

// Lookup performs LOOKUP.
func (c *Client) Lookup(p *des.Proc, dir FH, name string) (FH, FAttr, error) {
	args := DirOpArgs{Dir: dir, Name: name}
	res, _, err := c.call(p, ProcLookup, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return FH{}, FAttr{}, err
	}
	r, err := DecodeLookupRes(xdr.NewDecoder(res))
	if err != nil {
		return FH{}, FAttr{}, err
	}
	return r.Object, r.ObjAttr.Attr, r.Status.Err()
}

// Access performs ACCESS.
func (c *Client) Access(p *des.Proc, fh FH, mask uint32) (uint32, error) {
	args := AccessArgs{FH: fh, Access: mask}
	res, _, err := c.call(p, ProcAccess, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return 0, err
	}
	r, err := DecodeAccessRes(xdr.NewDecoder(res))
	if err != nil {
		return 0, err
	}
	return r.Access, r.Status.Err()
}

// ReadLink performs READLINK. Large link targets make the reply exceed the
// inline threshold, exercising the transport's long-reply path.
func (c *Client) ReadLink(p *des.Proc, fh FH) (string, error) {
	res, _, err := c.call(p, ProcReadLink,
		enc(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }),
		oncrpc.CallOpts{LongReplyCap: 4096})
	if err != nil {
		return "", err
	}
	r, err := DecodeReadLinkRes(xdr.NewDecoder(res))
	if err != nil {
		return "", err
	}
	return r.Path, r.Status.Err()
}

// Read performs READ. dst describes the payload destination: its Len is the
// requested count; Data (when non-nil) receives the bytes; Handle may carry
// a placement token for the RDMA transport. directIO marks dst as
// application memory for the zero-copy path.
func (c *Client) Read(p *des.Proc, fh FH, offset uint64, dst *oncrpc.Bulk, directIO bool) (ReadRes, error) {
	args := ReadArgs{FH: fh, Offset: offset, Count: uint32(dst.Len)}
	res, n, err := c.call(p, ProcRead, enc(args.Encode), oncrpc.CallOpts{
		RecvBulk: dst,
		DirectIO: directIO,
	})
	if err != nil {
		return ReadRes{}, err
	}
	r, err := DecodeReadRes(xdr.NewDecoder(res))
	if err != nil {
		return ReadRes{}, err
	}
	if int(r.Count) > n {
		// Placement must have delivered every byte the reply claims.
		r.Count = uint32(n)
	}
	return r, r.Status.Err()
}

// Write performs WRITE. src describes the payload source.
func (c *Client) Write(p *des.Proc, fh FH, offset uint64, src *oncrpc.Bulk, stable uint32) (WriteRes, error) {
	args := WriteArgs{FH: fh, Offset: offset, Count: uint32(src.Len), Stable: stable}
	res, _, err := c.call(p, ProcWrite, enc(args.Encode), oncrpc.CallOpts{
		SendBulk: src,
	})
	if err != nil {
		return WriteRes{}, err
	}
	r, err := DecodeWriteRes(xdr.NewDecoder(res))
	if err != nil {
		return WriteRes{}, err
	}
	return r, r.Status.Err()
}

// Create performs CREATE (UNCHECKED).
func (c *Client) Create(p *des.Proc, dir FH, name string, mode uint32) (FH, FAttr, error) {
	args := CreateArgs{Where: DirOpArgs{Dir: dir, Name: name}, Attr: SAttr{Mode: &mode}}
	res, _, err := c.call(p, ProcCreate, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return FH{}, FAttr{}, err
	}
	r, err := DecodeCreateRes(xdr.NewDecoder(res))
	if err != nil {
		return FH{}, FAttr{}, err
	}
	return r.FH, r.Attr.Attr, r.Status.Err()
}

// Mkdir performs MKDIR.
func (c *Client) Mkdir(p *des.Proc, dir FH, name string, mode uint32) (FH, FAttr, error) {
	args := MkdirArgs{Where: DirOpArgs{Dir: dir, Name: name}, Attr: SAttr{Mode: &mode}}
	res, _, err := c.call(p, ProcMkdir, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return FH{}, FAttr{}, err
	}
	r, err := DecodeCreateRes(xdr.NewDecoder(res))
	if err != nil {
		return FH{}, FAttr{}, err
	}
	return r.FH, r.Attr.Attr, r.Status.Err()
}

// Symlink performs SYMLINK.
func (c *Client) Symlink(p *des.Proc, dir FH, name, target string) (FH, error) {
	args := SymlinkArgs{Where: DirOpArgs{Dir: dir, Name: name}, Target: target}
	res, _, err := c.call(p, ProcSymlink, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return FH{}, err
	}
	r, err := DecodeCreateRes(xdr.NewDecoder(res))
	if err != nil {
		return FH{}, err
	}
	return r.FH, r.Status.Err()
}

// Remove performs REMOVE.
func (c *Client) Remove(p *des.Proc, dir FH, name string) error {
	args := DirOpArgs{Dir: dir, Name: name}
	res, _, err := c.call(p, ProcRemove, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return err
	}
	r, err := DecodeWccRes(xdr.NewDecoder(res))
	if err != nil {
		return err
	}
	return r.Status.Err()
}

// Rmdir performs RMDIR.
func (c *Client) Rmdir(p *des.Proc, dir FH, name string) error {
	args := DirOpArgs{Dir: dir, Name: name}
	res, _, err := c.call(p, ProcRmdir, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return err
	}
	r, err := DecodeWccRes(xdr.NewDecoder(res))
	if err != nil {
		return err
	}
	return r.Status.Err()
}

// Rename performs RENAME.
func (c *Client) Rename(p *des.Proc, fromDir FH, fromName string, toDir FH, toName string) error {
	args := RenameArgs{From: DirOpArgs{Dir: fromDir, Name: fromName}, To: DirOpArgs{Dir: toDir, Name: toName}}
	res, _, err := c.call(p, ProcRename, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return err
	}
	r, err := DecodeRenameRes(xdr.NewDecoder(res))
	if err != nil {
		return err
	}
	return r.Status.Err()
}

// Link performs LINK.
func (c *Client) Link(p *des.Proc, fh FH, dir FH, name string) error {
	args := LinkArgs{FH: fh, Link: DirOpArgs{Dir: dir, Name: name}}
	res, _, err := c.call(p, ProcLink, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return err
	}
	r, err := DecodeLinkRes(xdr.NewDecoder(res))
	if err != nil {
		return err
	}
	return r.Status.Err()
}

// ReadDir performs READDIR (or READDIRPLUS when plus is set). Directory
// listings larger than the inline threshold exercise the transport's
// long-reply path — the paper's RPC Long Reply.
func (c *Client) ReadDir(p *des.Proc, dir FH, cookie uint64, count uint32, plus bool) (ReadDirRes, error) {
	proc := uint32(ProcReadDir)
	if plus {
		proc = ProcReadDirPlus
	}
	args := ReadDirArgs{Dir: dir, Cookie: cookie, Count: count, Plus: plus}
	res, _, err := c.call(p, proc, enc(args.Encode), oncrpc.CallOpts{
		LongReplyCap: int(count) + 512,
	})
	if err != nil {
		return ReadDirRes{}, err
	}
	r, err := DecodeReadDirRes(xdr.NewDecoder(res), plus)
	if err != nil {
		return ReadDirRes{}, err
	}
	return r, r.Status.Err()
}

// FSStat performs FSSTAT.
func (c *Client) FSStat(p *des.Proc, fh FH) (FSStatRes, error) {
	res, _, err := c.call(p, ProcFSStat, enc(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }), oncrpc.CallOpts{})
	if err != nil {
		return FSStatRes{}, err
	}
	r, err := DecodeFSStatRes(xdr.NewDecoder(res))
	if err != nil {
		return FSStatRes{}, err
	}
	return r, r.Status.Err()
}

// FSInfo performs FSINFO.
func (c *Client) FSInfo(p *des.Proc, fh FH) (FSInfoRes, error) {
	res, _, err := c.call(p, ProcFSInfo, enc(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }), oncrpc.CallOpts{})
	if err != nil {
		return FSInfoRes{}, err
	}
	r, err := DecodeFSInfoRes(xdr.NewDecoder(res))
	if err != nil {
		return FSInfoRes{}, err
	}
	return r, r.Status.Err()
}

// PathConf performs PATHCONF.
func (c *Client) PathConf(p *des.Proc, fh FH) (PathConfRes, error) {
	res, _, err := c.call(p, ProcPathConf, enc(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }), oncrpc.CallOpts{})
	if err != nil {
		return PathConfRes{}, err
	}
	r, err := DecodePathConfRes(xdr.NewDecoder(res))
	if err != nil {
		return PathConfRes{}, err
	}
	return r, r.Status.Err()
}

// Commit performs COMMIT.
func (c *Client) Commit(p *des.Proc, fh FH, offset uint64, count uint32) (CommitRes, error) {
	args := CommitArgs{FH: fh, Offset: offset, Count: count}
	res, _, err := c.call(p, ProcCommit, enc(args.Encode), oncrpc.CallOpts{})
	if err != nil {
		return CommitRes{}, err
	}
	r, err := DecodeCommitRes(xdr.NewDecoder(res))
	if err != nil {
		return CommitRes{}, err
	}
	return r, r.Status.Err()
}
