package nfs3

import (
	"repro/internal/cpu"
	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// ServerConfig tunes the NFS service.
type ServerConfig struct {
	// FSID identifies the exported file system in handles and fattr3.
	FSID uint64
	// CPU, when non-nil, is charged PerOpCPU for every procedure plus copy
	// cost for moving payload between the file system and staging buffers.
	CPU *cpu.Model
	// PerOpCPU is the protocol + VFS processing cost per call.
	PerOpCPU des.Duration
	// MaxRead / MaxWrite bound transfer sizes (rtmax / wtmax).
	MaxRead  int
	MaxWrite int
}

func (c *ServerConfig) defaults() {
	if c.FSID == 0 {
		c.FSID = 0x5eed
	}
	if c.MaxRead <= 0 {
		c.MaxRead = 1 << 20
	}
	if c.MaxWrite <= 0 {
		c.MaxWrite = 1 << 20
	}
}

// Server is the NFSv3 service: it decodes procedures, drives a vfs.FS, and
// encodes replies. It implements oncrpc.Service.
type Server struct {
	fs        vfs.FS
	cfg       ServerConfig
	writeVerf uint64

	// Ops counts handled procedures by number.
	Ops [22]int64
}

var _ oncrpc.Service = (*Server)(nil)

// NewServer exports fs over NFSv3.
func NewServer(fs vfs.FS, cfg ServerConfig) *Server {
	cfg.defaults()
	return &Server{fs: fs, cfg: cfg, writeVerf: 0xc0ffee ^ cfg.FSID}
}

// Restart bumps the write verifier to a fresh epoch-derived value, as a
// rebooted NFSv3 server must: any client comparing WRITE/COMMIT verifiers
// across the restart sees the change and knows its uncommitted unstable
// writes may have been lost. File handles (FSID+FileID) and the exported
// tree survive — NFSv3 servers are otherwise stateless.
func (s *Server) Restart(epoch uint64) {
	s.writeVerf = (0xc0ffee ^ s.cfg.FSID) + epoch*0x9e3779b97f4a7c15
}

// WriteVerf returns the current write verifier (tests compare it across
// restarts).
func (s *Server) WriteVerf() uint64 { return s.writeVerf }

// Name implements oncrpc.Service.
func (s *Server) Name() string { return "nfs3" }

// Program implements oncrpc.Service.
func (s *Server) Program() uint32 { return Program }

// Version implements oncrpc.Service.
func (s *Server) Version() uint32 { return Version }

// ProcName implements oncrpc.ProcNamer so dispatch trace spans carry the
// NFS procedure name instead of the bare service name.
func (s *Server) ProcName(proc uint32) string { return ProcName(proc) }

// NonIdempotent implements oncrpc.IdempotencyClassifier: these procedures
// mutate namespace or data in ways a replay would corrupt (a re-executed
// REMOVE returns ENOENT, a re-executed WRITE can clobber newer data, a
// re-executed CREATE with exclusive semantics fails), so the DRC must
// answer their retransmissions from cache. Reads and attribute queries are
// safe to re-execute and stay out of the cache — their bulk-carrying
// replies reference transport staging that is recycled after the first
// send.
func (s *Server) NonIdempotent(proc uint32) bool {
	switch proc {
	case ProcSetAttr, ProcWrite, ProcCreate, ProcMkdir, ProcSymlink,
		ProcMknod, ProcRemove, ProcRmdir, ProcRename, ProcLink:
		return true
	}
	return false
}

// RootFH returns the export root handle.
func (s *Server) RootFH() FH {
	return FH{FSID: s.cfg.FSID, FileID: uint64(s.fs.Root())}
}

// fh validates a handle and returns the file id.
func (s *Server) fh(h FH) (vfs.FileID, Status) {
	if h.FSID != s.cfg.FSID {
		return 0, ErrBadHandle
	}
	return vfs.FileID(h.FileID), OK
}

func (s *Server) mkFH(id vfs.FileID) FH {
	return FH{FSID: s.cfg.FSID, FileID: uint64(id)}
}

func (s *Server) postAttr(p *des.Proc, id vfs.FileID) PostOpAttr {
	a, err := s.fs.GetAttr(p, id)
	if err != nil {
		return PostOpAttr{}
	}
	return PostOpAttr{Present: true, Attr: AttrFromVFS(s.cfg.FSID, a)}
}

func (s *Server) wcc(p *des.Proc, id vfs.FileID) WccData {
	return WccData{Post: s.postAttr(p, id)}
}

// preOp captures wcc_attr before a mutation so the reply can carry full
// weak-cache-consistency data.
func (s *Server) preOp(p *des.Proc, id vfs.FileID) (WccAttr, bool) {
	a, err := s.fs.GetAttr(p, id)
	if err != nil {
		return WccAttr{}, false
	}
	return WccAttr{
		Size:  uint64(a.Size),
		Mtime: TimeFromSim(a.Mtime),
		Ctime: TimeFromSim(a.Ctime),
	}, true
}

// wccFrom builds wcc_data from a captured pre-op state plus fresh post-op
// attributes.
func (s *Server) wccFrom(p *des.Proc, id vfs.FileID, pre WccAttr, ok bool) WccData {
	return WccData{PrePresent: ok, Pre: pre, Post: s.postAttr(p, id)}
}

// Handle implements oncrpc.Service: it decodes the procedure, runs it
// against the file system, and returns the encoded result.
func (s *Server) Handle(p *des.Proc, req *oncrpc.ServerRequest) *oncrpc.ServerResponse {
	if s.cfg.CPU != nil {
		s.cfg.CPU.Work(p, s.cfg.PerOpCPU)
	}
	proc := req.Header.Proc
	if proc < uint32(len(s.Ops)) {
		s.Ops[proc]++
	}
	d := xdr.NewDecoder(req.Args)
	e := xdr.NewEncoder(nil)
	var bulk *oncrpc.Bulk
	switch proc {
	case ProcNull:
		// void -> void
	case ProcGetAttr:
		s.getattr(p, d, e)
	case ProcSetAttr:
		s.setattr(p, d, e)
	case ProcLookup:
		s.lookup(p, d, e)
	case ProcAccess:
		s.access(p, d, e)
	case ProcReadLink:
		s.readlink(p, d, e)
	case ProcRead:
		bulk = s.read(p, d, e, req)
	case ProcWrite:
		s.write(p, d, e, req.Bulk)
	case ProcCreate:
		s.create(p, d, e)
	case ProcMkdir:
		s.mkdir(p, d, e)
	case ProcSymlink:
		s.symlink(p, d, e)
	case ProcRemove:
		s.remove(p, d, e, false)
	case ProcRmdir:
		s.remove(p, d, e, true)
	case ProcRename:
		s.rename(p, d, e)
	case ProcLink:
		s.link(p, d, e)
	case ProcReadDir:
		s.readdir(p, d, e, false)
	case ProcReadDirPlus:
		s.readdir(p, d, e, true)
	case ProcFSStat:
		s.fsstat(p, d, e)
	case ProcFSInfo:
		s.fsinfo(p, d, e)
	case ProcPathConf:
		s.pathconf(p, d, e)
	case ProcCommit:
		s.commit(p, d, e)
	case ProcMknod:
		(&WccRes{Status: ErrNotSupp}).Encode(e)
	default:
		return &oncrpc.ServerResponse{Stat: oncrpc.ProcUnavail}
	}
	return &oncrpc.ServerResponse{Stat: oncrpc.Success, Results: e.Bytes(), Bulk: bulk}
}

func (s *Server) getattr(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeGetAttrArgs(d)
	if err != nil {
		(&GetAttrRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&GetAttrRes{Status: st}).Encode(e)
		return
	}
	a, verr := s.fs.GetAttr(p, id)
	if verr != nil {
		(&GetAttrRes{Status: StatusFromVFS(verr)}).Encode(e)
		return
	}
	(&GetAttrRes{Status: OK, Attr: AttrFromVFS(s.cfg.FSID, a)}).Encode(e)
}

func (s *Server) setattr(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeSetAttrArgs(d)
	if err != nil {
		(&WccRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&WccRes{Status: st}).Encode(e)
		return
	}
	pre, preOK := s.preOp(p, id)
	if args.Guard != nil && preOK && *args.Guard != pre.Ctime {
		// sattrguard3 mismatch: someone changed the object since the client
		// sampled its ctime.
		(&WccRes{Status: ErrNotSync, Wcc: s.wccFrom(p, id, pre, preOK)}).Encode(e)
		return
	}
	var sa vfs.SetAttr
	sa.Mode = args.Attr.Mode
	sa.UID = args.Attr.UID
	sa.GID = args.Attr.GID
	if args.Attr.Size != nil {
		sz := int64(*args.Attr.Size)
		sa.Size = &sz
	}
	sa.SetTime = args.Attr.SetMtime
	_, verr := s.fs.SetAttr(p, id, sa)
	(&WccRes{Status: StatusFromVFS(verr), Wcc: s.wccFrom(p, id, pre, preOK)}).Encode(e)
}

func (s *Server) lookup(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeDirOpArgs(d)
	if err != nil {
		(&LookupRes{Status: ErrInval}).Encode(e)
		return
	}
	dir, st := s.fh(args.Dir)
	if st != OK {
		(&LookupRes{Status: st}).Encode(e)
		return
	}
	id, attr, verr := s.fs.Lookup(p, dir, args.Name)
	res := LookupRes{Status: StatusFromVFS(verr), DirAttr: s.postAttr(p, dir)}
	if verr == nil {
		res.Object = s.mkFH(id)
		res.ObjAttr = PostOpAttr{Present: true, Attr: AttrFromVFS(s.cfg.FSID, attr)}
	}
	res.Encode(e)
}

func (s *Server) access(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeAccessArgs(d)
	if err != nil {
		(&AccessRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&AccessRes{Status: st}).Encode(e)
		return
	}
	// The simulated export has no permission model: grant what was asked.
	(&AccessRes{Status: OK, Attr: s.postAttr(p, id), Access: args.Access}).Encode(e)
}

func (s *Server) readlink(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeGetAttrArgs(d)
	if err != nil {
		(&ReadLinkRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&ReadLinkRes{Status: st}).Encode(e)
		return
	}
	target, verr := s.fs.ReadLink(p, id)
	(&ReadLinkRes{Status: StatusFromVFS(verr), Attr: s.postAttr(p, id), Path: target}).Encode(e)
}

// read runs READ: payload goes to the transport-provided staging buffer
// (req.ReplyBuf) when present, charged as one server-side copy out of the
// file system.
func (s *Server) read(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder, req *oncrpc.ServerRequest) *oncrpc.Bulk {
	args, err := DecodeReadArgs(d)
	if err != nil {
		(&ReadRes{Status: ErrInval}).Encode(e)
		return nil
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&ReadRes{Status: st}).Encode(e)
		return nil
	}
	count := int(args.Count)
	if count > s.cfg.MaxRead {
		count = s.cfg.MaxRead
	}
	if req.RecvBulkCap > 0 && count > req.RecvBulkCap {
		count = req.RecvBulkCap
	}
	bulk := req.ReplyBuf
	if bulk == nil {
		bulk = &oncrpc.Bulk{Data: make([]byte, count)}
	}
	var dst []byte
	if bulk.Data != nil {
		dst = bulk.Data[:min(count, len(bulk.Data))]
	}
	n, eof, verr := s.fs.Read(p, id, int64(args.Offset), count, dst)
	if verr != nil {
		(&ReadRes{Status: StatusFromVFS(verr), Attr: s.postAttr(p, id)}).Encode(e)
		return nil
	}
	bulk.Len = n
	if s.cfg.CPU != nil {
		s.cfg.CPU.Copy(p, n) // file system -> staging buffer
	}
	(&ReadRes{Status: OK, Attr: s.postAttr(p, id), Count: uint32(n), EOF: eof}).Encode(e)
	return bulk
}

func (s *Server) write(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder, bulk *oncrpc.Bulk) {
	args, err := DecodeWriteArgs(d)
	if err != nil {
		(&WriteRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&WriteRes{Status: st}).Encode(e)
		return
	}
	count := int(args.Count)
	if bulk == nil || bulk.Len < count {
		if bulk != nil {
			count = bulk.Len
		} else {
			count = 0
		}
	}
	if count > s.cfg.MaxWrite {
		count = s.cfg.MaxWrite
	}
	var data []byte
	if bulk != nil && bulk.Data != nil {
		data = bulk.Data[:count]
	}
	if s.cfg.CPU != nil {
		s.cfg.CPU.Copy(p, count) // staging buffer -> file system
	}
	pre, preOK := s.preOp(p, id)
	n, verr := s.fs.Write(p, id, int64(args.Offset), count, data, args.Stable == FileSync)
	res := WriteRes{
		Status: StatusFromVFS(verr), Wcc: s.wccFrom(p, id, pre, preOK),
		Count: uint32(n), Committed: args.Stable, Verf: s.writeVerf,
	}
	if verr == nil && args.Stable == Unstable {
		res.Committed = Unstable
	}
	res.Encode(e)
}

func (s *Server) create(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeCreateArgs(d)
	if err != nil {
		(&CreateRes{Status: ErrInval}).Encode(e)
		return
	}
	dir, st := s.fh(args.Where.Dir)
	if st != OK {
		(&CreateRes{Status: st}).Encode(e)
		return
	}
	mode := uint32(0644)
	if args.Attr.Mode != nil {
		mode = *args.Attr.Mode
	}
	pre, preOK := s.preOp(p, dir)
	id, attr, verr := s.fs.Create(p, dir, args.Where.Name, mode)
	res := CreateRes{Status: StatusFromVFS(verr), DirWcc: s.wccFrom(p, dir, pre, preOK)}
	if verr == nil {
		res.FHPresent = true
		res.FH = s.mkFH(id)
		res.Attr = PostOpAttr{Present: true, Attr: AttrFromVFS(s.cfg.FSID, attr)}
	}
	res.Encode(e)
}

func (s *Server) mkdir(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeMkdirArgs(d)
	if err != nil {
		(&CreateRes{Status: ErrInval}).Encode(e)
		return
	}
	dir, st := s.fh(args.Where.Dir)
	if st != OK {
		(&CreateRes{Status: st}).Encode(e)
		return
	}
	mode := uint32(0755)
	if args.Attr.Mode != nil {
		mode = *args.Attr.Mode
	}
	pre, preOK := s.preOp(p, dir)
	id, attr, verr := s.fs.Mkdir(p, dir, args.Where.Name, mode)
	res := CreateRes{Status: StatusFromVFS(verr), DirWcc: s.wccFrom(p, dir, pre, preOK)}
	if verr == nil {
		res.FHPresent = true
		res.FH = s.mkFH(id)
		res.Attr = PostOpAttr{Present: true, Attr: AttrFromVFS(s.cfg.FSID, attr)}
	}
	res.Encode(e)
}

func (s *Server) symlink(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeSymlinkArgs(d)
	if err != nil {
		(&CreateRes{Status: ErrInval}).Encode(e)
		return
	}
	dir, st := s.fh(args.Where.Dir)
	if st != OK {
		(&CreateRes{Status: st}).Encode(e)
		return
	}
	pre, preOK := s.preOp(p, dir)
	id, attr, verr := s.fs.Symlink(p, dir, args.Where.Name, args.Target)
	res := CreateRes{Status: StatusFromVFS(verr), DirWcc: s.wccFrom(p, dir, pre, preOK)}
	if verr == nil {
		res.FHPresent = true
		res.FH = s.mkFH(id)
		res.Attr = PostOpAttr{Present: true, Attr: AttrFromVFS(s.cfg.FSID, attr)}
	}
	res.Encode(e)
}

func (s *Server) remove(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder, rmdir bool) {
	args, err := DecodeDirOpArgs(d)
	if err != nil {
		(&WccRes{Status: ErrInval}).Encode(e)
		return
	}
	dir, st := s.fh(args.Dir)
	if st != OK {
		(&WccRes{Status: st}).Encode(e)
		return
	}
	pre, preOK := s.preOp(p, dir)
	var verr error
	if rmdir {
		verr = s.fs.Rmdir(p, dir, args.Name)
	} else {
		verr = s.fs.Remove(p, dir, args.Name)
	}
	(&WccRes{Status: StatusFromVFS(verr), Wcc: s.wccFrom(p, dir, pre, preOK)}).Encode(e)
}

func (s *Server) rename(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeRenameArgs(d)
	if err != nil {
		(&RenameRes{Status: ErrInval}).Encode(e)
		return
	}
	from, st := s.fh(args.From.Dir)
	if st != OK {
		(&RenameRes{Status: st}).Encode(e)
		return
	}
	to, st := s.fh(args.To.Dir)
	if st != OK {
		(&RenameRes{Status: st}).Encode(e)
		return
	}
	fromPre, fromOK := s.preOp(p, from)
	toPre, toOK := s.preOp(p, to)
	verr := s.fs.Rename(p, from, args.From.Name, to, args.To.Name)
	(&RenameRes{
		Status:  StatusFromVFS(verr),
		FromWcc: s.wccFrom(p, from, fromPre, fromOK),
		ToWcc:   s.wccFrom(p, to, toPre, toOK),
	}).Encode(e)
}

func (s *Server) link(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeLinkArgs(d)
	if err != nil {
		(&LinkRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&LinkRes{Status: st}).Encode(e)
		return
	}
	dir, st := s.fh(args.Link.Dir)
	if st != OK {
		(&LinkRes{Status: st}).Encode(e)
		return
	}
	pre, preOK := s.preOp(p, dir)
	_, verr := s.fs.Link(p, id, dir, args.Link.Name)
	(&LinkRes{Status: StatusFromVFS(verr), Attr: s.postAttr(p, id), LinkWcc: s.wccFrom(p, dir, pre, preOK)}).Encode(e)
}

func (s *Server) readdir(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder, plus bool) {
	args, err := DecodeReadDirArgs(d, plus)
	if err != nil {
		(&ReadDirRes{Status: ErrInval, Plus: plus}).Encode(e)
		return
	}
	dir, st := s.fh(args.Dir)
	if st != OK {
		(&ReadDirRes{Status: st, Plus: plus}).Encode(e)
		return
	}
	// Entry budget from the reply byte budget: ~64 bytes per plain entry,
	// ~160 with attributes and handle.
	per := 64
	if plus {
		per = 160
	}
	maxEntries := int(args.Count) / per
	if maxEntries < 1 {
		maxEntries = 1
	}
	ents, eof, verr := s.fs.ReadDir(p, dir, int64(args.Cookie), maxEntries)
	res := ReadDirRes{
		Status:  StatusFromVFS(verr),
		DirAttr: s.postAttr(p, dir),
		EOF:     eof,
		Plus:    plus,
	}
	if verr == nil {
		for _, ent := range ents {
			e3 := DirEntry3{FileID: uint64(ent.FileID), Name: ent.Name, Cookie: uint64(ent.Cookie)}
			if plus {
				e3.Attr = s.postAttr(p, ent.FileID)
				e3.FHPresent = true
				e3.FH = s.mkFH(ent.FileID)
			}
			res.Entries = append(res.Entries, e3)
		}
	}
	res.Encode(e)
}

func (s *Server) fsstat(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeGetAttrArgs(d)
	if err != nil {
		(&FSStatRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&FSStatRes{Status: st}).Encode(e)
		return
	}
	total, free := s.fs.FSStat()
	(&FSStatRes{
		Status: OK, Attr: s.postAttr(p, id),
		TBytes: uint64(total), FBytes: uint64(free), ABytes: uint64(free),
		TFiles: 1 << 20, FFiles: 1 << 19, AFiles: 1 << 19,
	}).Encode(e)
}

func (s *Server) fsinfo(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeGetAttrArgs(d)
	if err != nil {
		(&FSInfoRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&FSInfoRes{Status: st}).Encode(e)
		return
	}
	(&FSInfoRes{
		Status: OK, Attr: s.postAttr(p, id),
		RTMax: uint32(s.cfg.MaxRead), RTPref: uint32(s.cfg.MaxRead),
		WTMax: uint32(s.cfg.MaxWrite), WTPref: uint32(s.cfg.MaxWrite),
		DTPref: 64 << 10, MaxFileSize: 1 << 62,
	}).Encode(e)
}

func (s *Server) pathconf(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeGetAttrArgs(d)
	if err != nil {
		(&PathConfRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&PathConfRes{Status: st}).Encode(e)
		return
	}
	(&PathConfRes{Status: OK, Attr: s.postAttr(p, id), LinkMax: 32000, NameMax: vfs.MaxNameLen}).Encode(e)
}

func (s *Server) commit(p *des.Proc, d *xdr.Decoder, e *xdr.Encoder) {
	args, err := DecodeCommitArgs(d)
	if err != nil {
		(&CommitRes{Status: ErrInval}).Encode(e)
		return
	}
	id, st := s.fh(args.FH)
	if st != OK {
		(&CommitRes{Status: st}).Encode(e)
		return
	}
	pre, preOK := s.preOp(p, id)
	verr := s.fs.Commit(p, id, int64(args.Offset), int(args.Count))
	(&CommitRes{Status: StatusFromVFS(verr), Wcc: s.wccFrom(p, id, pre, preOK), Verf: s.writeVerf}).Encode(e)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
