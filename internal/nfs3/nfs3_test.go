package nfs3

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// loopback dispatches calls straight into a Dispatcher, bulk payloads
// copied as a stream transport would.
type loopback struct{ d *oncrpc.Dispatcher }

func (lt *loopback) Roundtrip(p *des.Proc, req *oncrpc.Request) (*oncrpc.Response, error) {
	cap := 0
	if req.RecvBulk != nil {
		cap = req.RecvBulk.Len
	}
	reply, bulkOut, err := lt.d.Dispatch(p, req.Header, oncrpc.DispatchOpts{Bulk: req.SendBulk, RecvBulkCap: cap})
	if err != nil {
		return nil, err
	}
	n := 0
	if bulkOut != nil && req.RecvBulk != nil {
		n = bulkOut.Len
		if req.RecvBulk.Data != nil && bulkOut.Data != nil {
			copy(req.RecvBulk.Data, bulkOut.Data[:n])
		}
	}
	return &oncrpc.Response{Header: reply, BulkLen: n}, nil
}

func (lt *loopback) Close() {}

func newPair(t *testing.T) (*des.Sim, *Client, *Server) {
	t.Helper()
	sim := des.New()
	fs := vfs.NewNamespace(sim, vfs.NewMemStore(true), 1<<40)
	srv := NewServer(fs, ServerConfig{})
	d := oncrpc.NewDispatcher()
	d.Register(srv)
	return sim, NewClient(&loopback{d: d}, "testclient"), srv
}

func TestEndToEndFileLifecycle(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, attr, err := c.Create(p, root, "data.bin", 0644)
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if attr.Type != TypeReg {
			t.Errorf("type = %v", attr.Type)
		}
		payload := []byte("0123456789abcdef0123456789abcdef")
		wres, err := c.Write(p, fh, 0, oncrpc.NewBulk(payload), FileSync)
		if err != nil || wres.Count != uint32(len(payload)) {
			t.Errorf("write: %+v %v", wres, err)
		}
		got, gattr, err := c.Lookup(p, root, "data.bin")
		if err != nil || got != fh {
			t.Errorf("lookup: %v %v", got, err)
		}
		if gattr.Size != uint64(len(payload)) {
			t.Errorf("size = %d", gattr.Size)
		}
		dst := &oncrpc.Bulk{Data: make([]byte, 64), Len: 64}
		rres, err := c.Read(p, fh, 0, dst, false)
		if err != nil || !rres.EOF {
			t.Errorf("read: %+v %v", rres, err)
		}
		if !bytes.Equal(dst.Data[:rres.Count], payload) {
			t.Errorf("data = %q", dst.Data[:rres.Count])
		}
		if err := c.Remove(p, root, "data.bin"); err != nil {
			t.Errorf("remove: %v", err)
		}
		if _, _, err := c.Lookup(p, root, "data.bin"); !isStatus(err, ErrNoEnt) {
			t.Errorf("lookup after remove: %v", err)
		}
	})
	sim.Run()
}

func isStatus(err error, want Status) bool {
	var se *StatusError
	return errors.As(err, &se) && se.Status == want
}

func TestReadOffsetsAndEOF(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, _, _ := c.Create(p, root, "f", 0644)
		content := make([]byte, 1000)
		for i := range content {
			content[i] = byte(i)
		}
		c.Write(p, fh, 0, oncrpc.NewBulk(content), Unstable)
		// Mid-file read.
		dst := &oncrpc.Bulk{Data: make([]byte, 100), Len: 100}
		r, err := c.Read(p, fh, 200, dst, false)
		if err != nil || r.Count != 100 || r.EOF {
			t.Errorf("mid read: %+v %v", r, err)
		}
		if !bytes.Equal(dst.Data[:100], content[200:300]) {
			t.Error("mid read data mismatch")
		}
		// Tail read crossing EOF.
		dst = &oncrpc.Bulk{Data: make([]byte, 100), Len: 100}
		r, err = c.Read(p, fh, 950, dst, false)
		if err != nil || r.Count != 50 || !r.EOF {
			t.Errorf("tail read: %+v %v", r, err)
		}
		// Read past EOF.
		r, err = c.Read(p, fh, 5000, &oncrpc.Bulk{Data: make([]byte, 10), Len: 10}, false)
		if err != nil || r.Count != 0 || !r.EOF {
			t.Errorf("past-eof read: %+v %v", r, err)
		}
	})
	sim.Run()
}

func TestDirOpsOverWire(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		d1, _, err := c.Mkdir(p, root, "sub", 0755)
		if err != nil {
			t.Errorf("mkdir: %v", err)
		}
		for i := 0; i < 40; i++ {
			if _, _, err := c.Create(p, d1, fmt.Sprintf("file%02d", i), 0644); err != nil {
				t.Errorf("create %d: %v", i, err)
			}
		}
		var names []string
		cookie := uint64(0)
		for {
			res, err := c.ReadDir(p, d1, cookie, 1024, false)
			if err != nil {
				t.Errorf("readdir: %v", err)
				return
			}
			for _, ent := range res.Entries {
				names = append(names, ent.Name)
				cookie = ent.Cookie
			}
			if res.EOF {
				break
			}
		}
		if len(names) != 40 {
			t.Errorf("listed %d names", len(names))
		}
		// READDIRPLUS carries attributes and handles.
		res, err := c.ReadDir(p, d1, 0, 4096, true)
		if err != nil {
			t.Errorf("readdirplus: %v", err)
		}
		for _, ent := range res.Entries {
			if !ent.Attr.Present || !ent.FHPresent {
				t.Errorf("readdirplus entry %q missing attr/fh", ent.Name)
			}
		}
	})
	sim.Run()
}

func TestSymlinkReadLink(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		lfh, err := c.Symlink(p, root, "ln", "/very/long/target")
		if err != nil {
			t.Errorf("symlink: %v", err)
		}
		target, err := c.ReadLink(p, lfh)
		if err != nil || target != "/very/long/target" {
			t.Errorf("readlink: %q %v", target, err)
		}
	})
	sim.Run()
}

func TestRenameLinkAccessPathConf(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, _, _ := c.Create(p, root, "a", 0644)
		if err := c.Rename(p, root, "a", root, "b"); err != nil {
			t.Errorf("rename: %v", err)
		}
		if err := c.Link(p, fh, root, "b2"); err != nil {
			t.Errorf("link: %v", err)
		}
		attr, err := c.GetAttr(p, fh)
		if err != nil || attr.Nlink != 2 {
			t.Errorf("nlink = %d %v", attr.Nlink, err)
		}
		mask, err := c.Access(p, fh, AccessRead|AccessModify)
		if err != nil || mask != AccessRead|AccessModify {
			t.Errorf("access: %#x %v", mask, err)
		}
		pc, err := c.PathConf(p, fh)
		if err != nil || pc.NameMax != vfs.MaxNameLen {
			t.Errorf("pathconf: %+v %v", pc, err)
		}
	})
	sim.Run()
}

func TestSetAttrTruncate(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, _, _ := c.Create(p, root, "f", 0644)
		c.Write(p, fh, 0, oncrpc.NewBulk(make([]byte, 100)), Unstable)
		sz := uint64(10)
		if err := c.SetAttr(p, fh, SAttr{Size: &sz}); err != nil {
			t.Errorf("setattr: %v", err)
		}
		attr, _ := c.GetAttr(p, fh)
		if attr.Size != 10 {
			t.Errorf("size = %d", attr.Size)
		}
	})
	sim.Run()
}

func TestFSStatFSInfoCommit(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		st, err := c.FSStat(p, root)
		if err != nil || st.TBytes == 0 {
			t.Errorf("fsstat: %+v %v", st, err)
		}
		fi, err := c.FSInfo(p, root)
		if err != nil || fi.RTMax == 0 || fi.WTMax == 0 {
			t.Errorf("fsinfo: %+v %v", fi, err)
		}
		fh, _, _ := c.Create(p, root, "f", 0644)
		c.Write(p, fh, 0, oncrpc.NewBulk([]byte("x")), Unstable)
		cr, err := c.Commit(p, fh, 0, 0)
		if err != nil || cr.Verf == 0 {
			t.Errorf("commit: %+v %v", cr, err)
		}
	})
	sim.Run()
}

func TestBadHandleRejected(t *testing.T) {
	sim, c, _ := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		bad := FH{FSID: 0xbad, FileID: 1}
		if _, err := c.GetAttr(p, bad); !isStatus(err, ErrBadHandle) {
			t.Errorf("getattr bad fsid: %v", err)
		}
		stale := FH{FSID: 0x5eed, FileID: 9999}
		if _, err := c.GetAttr(p, stale); !isStatus(err, ErrStale) {
			t.Errorf("getattr stale: %v", err)
		}
	})
	sim.Run()
}

func TestWccDataPresent(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, _, _ := c.Create(p, root, "f", 0644)
		res, err := c.Write(p, fh, 0, oncrpc.NewBulk([]byte("abc")), Unstable)
		if err != nil {
			t.Errorf("write: %v", err)
		}
		if !res.Wcc.Post.Present {
			t.Error("write reply missing post-op attributes")
		}
		if res.Committed != Unstable {
			t.Errorf("committed = %d", res.Committed)
		}
	})
	sim.Run()
}

func TestMknodNotSupported(t *testing.T) {
	sim, _, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		req := &oncrpc.ServerRequest{
			Header: &oncrpc.CallHeader{Proc: ProcMknod},
			Args:   nil,
		}
		resp := srv.Handle(p, req)
		r, err := DecodeWccRes(xdr.NewDecoder(resp.Results))
		if err != nil || r.Status != ErrNotSupp {
			t.Errorf("mknod: %+v %v", r, err)
		}
	})
	sim.Run()
}

func TestFHRoundTrip(t *testing.T) {
	f := func(fsid, fileid uint64) bool {
		e := xdr.NewEncoder(nil)
		FH{FSID: fsid, FileID: fileid}.Encode(e)
		d := xdr.NewDecoder(e.Bytes())
		h, err := DecodeFH(d)
		return err == nil && h.FSID == fsid && h.FileID == fileid && d.Remaining() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickFAttrRoundTrip(t *testing.T) {
	f := func(mode, nlink, uid, gid uint32, size, fileid uint64) bool {
		a := FAttr{Type: TypeReg, Mode: mode, Nlink: nlink, UID: uid, GID: gid, Size: size, FileID: fileid}
		e := xdr.NewEncoder(nil)
		a.Encode(e)
		got, err := DecodeFAttr(xdr.NewDecoder(e.Bytes()))
		return err == nil && got == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSAttrRoundTrip(t *testing.T) {
	f := func(hasMode, hasSize bool, mode uint32, size uint64, setM bool) bool {
		var s SAttr
		if hasMode {
			s.Mode = &mode
		}
		if hasSize {
			s.Size = &size
		}
		s.SetMtime = setM
		e := xdr.NewEncoder(nil)
		s.Encode(e)
		got, err := DecodeSAttr(xdr.NewDecoder(e.Bytes()))
		if err != nil {
			return false
		}
		if (got.Mode == nil) != (s.Mode == nil) || (got.Size == nil) != (s.Size == nil) {
			return false
		}
		if s.Mode != nil && *got.Mode != *s.Mode {
			return false
		}
		if s.Size != nil && *got.Size != *s.Size {
			return false
		}
		return got.SetMtime == s.SetMtime
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickReadDirResRoundTrip(t *testing.T) {
	f := func(names []string, eof bool) bool {
		res := ReadDirRes{Status: OK, CookieVerf: 7, EOF: eof}
		for i, n := range names {
			if len(n) > 200 {
				n = n[:200]
			}
			res.Entries = append(res.Entries, DirEntry3{FileID: uint64(i + 1), Name: n, Cookie: uint64(i + 1)})
		}
		e := xdr.NewEncoder(nil)
		res.Encode(e)
		got, err := DecodeReadDirRes(xdr.NewDecoder(e.Bytes()), false)
		if err != nil || got.EOF != eof || len(got.Entries) != len(res.Entries) {
			return false
		}
		for i := range got.Entries {
			if got.Entries[i].Name != res.Entries[i].Name {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSetAttrGuard(t *testing.T) {
	sim, c, srv := newPair(t)
	sim.Spawn("client", func(p *des.Proc) {
		root := srv.RootFH()
		fh, _, _ := c.Create(p, root, "g", 0644)
		attr, _ := c.GetAttr(p, fh)
		p.Sleep(time.Microsecond) // let virtual time advance so ctime moves
		// Guarded SETATTR with the current ctime succeeds.
		mode := uint32(0600)
		args := SetAttrArgs{FH: fh, Attr: SAttr{Mode: &mode}, Guard: &attr.Ctime}
		res, _, err := c.rpc.Call(p, ProcSetAttr, enc(args.Encode), oncrpc.CallOpts{})
		if err != nil {
			t.Errorf("guarded setattr: %v", err)
			return
		}
		r, _ := DecodeWccRes(xdr.NewDecoder(res))
		if r.Status != OK {
			t.Errorf("matching guard rejected: %v", r.Status)
		}
		// The first SETATTR bumped ctime: replaying the stale guard fails.
		res, _, err = c.rpc.Call(p, ProcSetAttr, enc(args.Encode), oncrpc.CallOpts{})
		if err != nil {
			t.Errorf("stale-guard call: %v", err)
			return
		}
		r, _ = DecodeWccRes(xdr.NewDecoder(res))
		if r.Status != ErrNotSync {
			t.Errorf("stale guard status = %v, want NFS3ERR_NOT_SYNC", r.Status)
		}
	})
	sim.Run()
}
