package nfs3

import (
	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// The MOUNT version 3 protocol (RFC 1813 appendix I): how a real NFS
// client obtains the root file handle of an export instead of receiving it
// out of band. It is a separate ONC RPC program sharing the transport.

// MOUNT program identity.
const (
	MountProgram = 100005
	MountVersion = 3
)

// MOUNT procedures (the subset real clients use).
const (
	MountProcNull   = 0
	MountProcMnt    = 1
	MountProcDump   = 2
	MountProcUmnt   = 3
	MountProcExport = 5
)

// Mount status codes.
const (
	MountOK             = 0
	MountErrNoEnt       = 2
	MountErrAcces       = 13
	MountErrNotDir      = 20
	MountErrServerFault = 10006
)

// MountServer implements the MOUNT program over an export table.
// It implements oncrpc.Service.
type MountServer struct {
	nfs *Server
	// exports maps export path -> directory FileID within the server FS.
	exports map[string]vfs.FileID
	// mounts records active mounts per client machine name.
	mounts map[string][]string
}

var _ oncrpc.Service = (*MountServer)(nil)

// NewMountServer exports the NFS server's root as "/" plus any additional
// named exports.
func NewMountServer(nfs *Server) *MountServer {
	return &MountServer{
		nfs:     nfs,
		exports: map[string]vfs.FileID{"/": vfs.FileID(nfs.RootFH().FileID)},
		mounts:  make(map[string][]string),
	}
}

// AddExport exposes the directory with the given file id under path.
func (m *MountServer) AddExport(path string, dir vfs.FileID) {
	m.exports[path] = dir
}

// Name implements oncrpc.Service.
func (m *MountServer) Name() string { return "mountd" }

// Program implements oncrpc.Service.
func (m *MountServer) Program() uint32 { return MountProgram }

// Version implements oncrpc.Service.
func (m *MountServer) Version() uint32 { return MountVersion }

// ActiveMounts returns the number of recorded mounts for a machine.
func (m *MountServer) ActiveMounts(machine string) int { return len(m.mounts[machine]) }

// Handle implements oncrpc.Service.
func (m *MountServer) Handle(p *des.Proc, req *oncrpc.ServerRequest) *oncrpc.ServerResponse {
	e := xdr.NewEncoder(nil)
	switch req.Header.Proc {
	case MountProcNull:
	case MountProcMnt:
		d := xdr.NewDecoder(req.Args)
		path, err := d.String()
		if err != nil {
			e.Uint32(MountErrServerFault)
			break
		}
		dir, ok := m.exports[path]
		if !ok {
			e.Uint32(MountErrNoEnt)
			break
		}
		e.Uint32(MountOK)
		FH{FSID: m.nfs.cfg.FSID, FileID: uint64(dir)}.Encode(e)
		e.Uint32(1) // auth flavor count
		e.Uint32(uint32(oncrpc.AuthSys))
		m.mounts[req.Header.Cred.Machine] = append(m.mounts[req.Header.Cred.Machine], path)
	case MountProcUmnt:
		d := xdr.NewDecoder(req.Args)
		path, _ := d.String()
		list := m.mounts[req.Header.Cred.Machine]
		for i, have := range list {
			if have == path {
				m.mounts[req.Header.Cred.Machine] = append(list[:i], list[i+1:]...)
				break
			}
		}
	case MountProcExport:
		// XDR list of exports: "/" first, then the rest (iteration order of
		// additional exports is observable only with >2 exports; the
		// simulator's tests use sorted adds).
		e.Bool(true)
		e.String("/")
		e.Bool(false) // no groups
		for path := range m.exports {
			if path == "/" {
				continue
			}
			e.Bool(true)
			e.String(path)
			e.Bool(false)
		}
		e.Bool(false) // end of list
	case MountProcDump:
		for machine, paths := range m.mounts {
			for _, path := range paths {
				e.Bool(true)
				e.String(machine)
				e.String(path)
			}
		}
		e.Bool(false)
	default:
		return &oncrpc.ServerResponse{Stat: oncrpc.ProcUnavail}
	}
	return &oncrpc.ServerResponse{Stat: oncrpc.Success, Results: e.Bytes()}
}

// MountClient speaks the MOUNT program.
type MountClient struct {
	rpc     *oncrpc.Client
	machine string
}

// NewMountClient wraps a transport as a MOUNT client.
func NewMountClient(t oncrpc.Transport, machine string) *MountClient {
	cred := oncrpc.Auth{Flavor: oncrpc.AuthSys, Machine: machine}
	return &MountClient{rpc: oncrpc.NewClient(t, MountProgram, MountVersion, cred), machine: machine}
}

// Mount obtains the root file handle of the export at path.
func (c *MountClient) Mount(p *des.Proc, path string) (FH, error) {
	args := xdr.NewEncoder(nil)
	args.String(path)
	res, _, err := c.rpc.Call(p, MountProcMnt, args.Bytes(), oncrpc.CallOpts{})
	if err != nil {
		return FH{}, err
	}
	d := xdr.NewDecoder(res)
	st, err := d.Uint32()
	if err != nil {
		return FH{}, err
	}
	if st != MountOK {
		return FH{}, Status(st).Err()
	}
	fh, err := DecodeFH(d)
	if err != nil {
		return FH{}, err
	}
	return fh, nil
}

// Unmount releases a mount record at the server.
func (c *MountClient) Unmount(p *des.Proc, path string) error {
	args := xdr.NewEncoder(nil)
	args.String(path)
	_, _, err := c.rpc.Call(p, MountProcUmnt, args.Bytes(), oncrpc.CallOpts{})
	return err
}

// Exports lists the server's export paths.
func (c *MountClient) Exports(p *des.Proc) ([]string, error) {
	res, _, err := c.rpc.Call(p, MountProcExport, nil, oncrpc.CallOpts{})
	if err != nil {
		return nil, err
	}
	d := xdr.NewDecoder(res)
	var out []string
	for {
		more, err := d.Bool()
		if err != nil {
			return nil, err
		}
		if !more {
			return out, nil
		}
		path, err := d.String()
		if err != nil {
			return nil, err
		}
		// Group list (empty in this implementation).
		for {
			g, err := d.Bool()
			if err != nil {
				return nil, err
			}
			if !g {
				break
			}
			if _, err := d.String(); err != nil {
				return nil, err
			}
		}
		out = append(out, path)
	}
}
