package nfs3

import (
	"testing"

	"repro/internal/des"
	"repro/internal/oncrpc"
	"repro/internal/xdr"
)

// Robustness: every decoder must return an error — never panic, never
// fabricate values — for arbitrarily truncated input, and the server must
// answer garbage argument bytes with a protocol-level error status.

func TestDecodersSurviveTruncation(t *testing.T) {
	// Build one valid encoding of each message, then decode every prefix.
	type enc struct {
		name  string
		bytes []byte
		dec   func([]byte) error
	}
	fh := FH{FSID: 1, FileID: 2}
	encode := func(fn func(e *xdr.Encoder)) []byte {
		e := xdr.NewEncoder(nil)
		fn(e)
		return e.Bytes()
	}
	mode := uint32(0644)
	size := uint64(100)
	msgs := []enc{
		{"GetAttrArgs", encode(func(e *xdr.Encoder) { (&GetAttrArgs{FH: fh}).Encode(e) }),
			func(b []byte) error { _, err := DecodeGetAttrArgs(xdr.NewDecoder(b)); return err }},
		{"SetAttrArgs", encode(func(e *xdr.Encoder) {
			(&SetAttrArgs{FH: fh, Attr: SAttr{Mode: &mode, Size: &size, SetMtime: true}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeSetAttrArgs(xdr.NewDecoder(b)); return err }},
		{"DirOpArgs", encode(func(e *xdr.Encoder) { (&DirOpArgs{Dir: fh, Name: "file"}).Encode(e) }),
			func(b []byte) error { _, err := DecodeDirOpArgs(xdr.NewDecoder(b)); return err }},
		{"AccessArgs", encode(func(e *xdr.Encoder) { (&AccessArgs{FH: fh, Access: 7}).Encode(e) }),
			func(b []byte) error { _, err := DecodeAccessArgs(xdr.NewDecoder(b)); return err }},
		{"ReadArgs", encode(func(e *xdr.Encoder) { (&ReadArgs{FH: fh, Offset: 1, Count: 2}).Encode(e) }),
			func(b []byte) error { _, err := DecodeReadArgs(xdr.NewDecoder(b)); return err }},
		{"WriteArgs", encode(func(e *xdr.Encoder) { (&WriteArgs{FH: fh, Offset: 1, Count: 2}).Encode(e) }),
			func(b []byte) error { _, err := DecodeWriteArgs(xdr.NewDecoder(b)); return err }},
		{"CreateArgs", encode(func(e *xdr.Encoder) {
			(&CreateArgs{Where: DirOpArgs{Dir: fh, Name: "x"}, Attr: SAttr{Mode: &mode}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeCreateArgs(xdr.NewDecoder(b)); return err }},
		{"RenameArgs", encode(func(e *xdr.Encoder) {
			(&RenameArgs{From: DirOpArgs{Dir: fh, Name: "a"}, To: DirOpArgs{Dir: fh, Name: "b"}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeRenameArgs(xdr.NewDecoder(b)); return err }},
		{"LinkArgs", encode(func(e *xdr.Encoder) {
			(&LinkArgs{FH: fh, Link: DirOpArgs{Dir: fh, Name: "l"}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeLinkArgs(xdr.NewDecoder(b)); return err }},
		{"ReadDirArgs", encode(func(e *xdr.Encoder) {
			(&ReadDirArgs{Dir: fh, Cookie: 3, Count: 512}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeReadDirArgs(xdr.NewDecoder(b), false); return err }},
		{"CommitArgs", encode(func(e *xdr.Encoder) { (&CommitArgs{FH: fh, Offset: 9, Count: 8}).Encode(e) }),
			func(b []byte) error { _, err := DecodeCommitArgs(xdr.NewDecoder(b)); return err }},
		{"GetAttrRes", encode(func(e *xdr.Encoder) {
			(&GetAttrRes{Status: OK, Attr: FAttr{Type: TypeReg}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeGetAttrRes(xdr.NewDecoder(b)); return err }},
		{"LookupRes", encode(func(e *xdr.Encoder) {
			(&LookupRes{Status: OK, Object: fh, ObjAttr: PostOpAttr{Present: true, Attr: FAttr{}}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeLookupRes(xdr.NewDecoder(b)); return err }},
		{"WriteRes", encode(func(e *xdr.Encoder) {
			(&WriteRes{Status: OK, Count: 1, Verf: 2, Wcc: WccData{PrePresent: true}}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeWriteRes(xdr.NewDecoder(b)); return err }},
		{"ReadDirRes", encode(func(e *xdr.Encoder) {
			(&ReadDirRes{Status: OK, Entries: []DirEntry3{{FileID: 1, Name: "n", Cookie: 1}}, EOF: true}).Encode(e)
		}),
			func(b []byte) error { _, err := DecodeReadDirRes(xdr.NewDecoder(b), false); return err }},
		{"FSStatRes", encode(func(e *xdr.Encoder) { (&FSStatRes{Status: OK, TBytes: 1}).Encode(e) }),
			func(b []byte) error { _, err := DecodeFSStatRes(xdr.NewDecoder(b)); return err }},
		{"FSInfoRes", encode(func(e *xdr.Encoder) { (&FSInfoRes{Status: OK, RTMax: 1}).Encode(e) }),
			func(b []byte) error { _, err := DecodeFSInfoRes(xdr.NewDecoder(b)); return err }},
		{"PathConfRes", encode(func(e *xdr.Encoder) { (&PathConfRes{Status: OK, LinkMax: 1}).Encode(e) }),
			func(b []byte) error { _, err := DecodePathConfRes(xdr.NewDecoder(b)); return err }},
		{"CommitRes", encode(func(e *xdr.Encoder) { (&CommitRes{Status: OK, Verf: 7}).Encode(e) }),
			func(b []byte) error { _, err := DecodeCommitRes(xdr.NewDecoder(b)); return err }},
	}
	for _, m := range msgs {
		// The full message must decode cleanly...
		if err := m.dec(m.bytes); err != nil {
			t.Errorf("%s: full decode failed: %v", m.name, err)
			continue
		}
		// ...and every strict prefix must error without panicking.
		for cut := 0; cut < len(m.bytes); cut++ {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Fatalf("%s: panic at prefix %d: %v", m.name, cut, r)
					}
				}()
				if err := m.dec(m.bytes[:cut]); err == nil && cut < len(m.bytes)-3 {
					// Trailing-padding prefixes may still decode; anything
					// shorter must not.
					t.Errorf("%s: prefix %d/%d decoded without error", m.name, cut, len(m.bytes))
				}
			}()
		}
	}
}

func TestServerRejectsGarbageArgs(t *testing.T) {
	sim, _, srv := newPair(t)
	sim.Spawn("g", func(p *des.Proc) {
		garbage := []byte{0xde, 0xad}
		for proc := uint32(1); proc <= ProcCommit; proc++ {
			resp := srv.Handle(p, &oncrpc.ServerRequest{
				Header: &oncrpc.CallHeader{Proc: proc},
				Args:   garbage,
			})
			if resp.Stat != oncrpc.Success {
				continue // RPC-level rejection is also acceptable
			}
			d := xdr.NewDecoder(resp.Results)
			st, err := d.Uint32()
			if err != nil {
				t.Errorf("proc %s: unreadable status", ProcName(proc))
				continue
			}
			if Status(st) == OK {
				t.Errorf("proc %s accepted garbage args", ProcName(proc))
			}
		}
	})
	sim.Run()
}
