// Package nfs3 implements the NFS version 3 protocol (RFC 1813): wire
// types, all 22 procedures, a server that dispatches onto a vfs.FS, and a
// client with typed stubs. Bulk payloads (READ reply data, WRITE call data)
// travel through the transport's direct-data-placement path rather than
// inline XDR, mirroring the kernel xdr_buf page-list split that RPC/RDMA
// chunking is built on.
package nfs3

import (
	"errors"
	"fmt"

	"repro/internal/des"
	"repro/internal/vfs"
	"repro/internal/xdr"
)

// Program identity.
const (
	Program = 100003
	Version = 3
)

// Procedure numbers.
const (
	ProcNull        = 0
	ProcGetAttr     = 1
	ProcSetAttr     = 2
	ProcLookup      = 3
	ProcAccess      = 4
	ProcReadLink    = 5
	ProcRead        = 6
	ProcWrite       = 7
	ProcCreate      = 8
	ProcMkdir       = 9
	ProcSymlink     = 10
	ProcMknod       = 11
	ProcRemove      = 12
	ProcRmdir       = 13
	ProcRename      = 14
	ProcLink        = 15
	ProcReadDir     = 16
	ProcReadDirPlus = 17
	ProcFSStat      = 18
	ProcFSInfo      = 19
	ProcPathConf    = 20
	ProcCommit      = 21
)

// ProcName returns the conventional name of a procedure number.
func ProcName(proc uint32) string {
	names := []string{
		"NULL", "GETATTR", "SETATTR", "LOOKUP", "ACCESS", "READLINK",
		"READ", "WRITE", "CREATE", "MKDIR", "SYMLINK", "MKNOD",
		"REMOVE", "RMDIR", "RENAME", "LINK", "READDIR", "READDIRPLUS",
		"FSSTAT", "FSINFO", "PATHCONF", "COMMIT",
	}
	if int(proc) < len(names) {
		return names[proc]
	}
	return fmt.Sprintf("PROC%d", proc)
}

// Status is an nfsstat3 result code.
type Status uint32

// nfsstat3 values.
const (
	OK             Status = 0
	ErrPerm        Status = 1
	ErrNoEnt       Status = 2
	ErrIO          Status = 5
	ErrAcces       Status = 13
	ErrExist       Status = 17
	ErrNotDir      Status = 20
	ErrIsDir       Status = 21
	ErrInval       Status = 22
	ErrFBig        Status = 27
	ErrNoSpc       Status = 28
	ErrROFS        Status = 30
	ErrNameTooLong Status = 63
	ErrNotEmpty    Status = 66
	ErrStale       Status = 70
	ErrBadHandle   Status = 10001
	ErrNotSync     Status = 10002
	ErrNotSupp     Status = 10004
	ErrTooSmall    Status = 10005
	ErrServerFault Status = 10006
)

func (s Status) String() string {
	switch s {
	case OK:
		return "NFS3_OK"
	case ErrPerm:
		return "NFS3ERR_PERM"
	case ErrNoEnt:
		return "NFS3ERR_NOENT"
	case ErrIO:
		return "NFS3ERR_IO"
	case ErrAcces:
		return "NFS3ERR_ACCES"
	case ErrExist:
		return "NFS3ERR_EXIST"
	case ErrNotDir:
		return "NFS3ERR_NOTDIR"
	case ErrIsDir:
		return "NFS3ERR_ISDIR"
	case ErrInval:
		return "NFS3ERR_INVAL"
	case ErrFBig:
		return "NFS3ERR_FBIG"
	case ErrNoSpc:
		return "NFS3ERR_NOSPC"
	case ErrROFS:
		return "NFS3ERR_ROFS"
	case ErrNameTooLong:
		return "NFS3ERR_NAMETOOLONG"
	case ErrNotEmpty:
		return "NFS3ERR_NOTEMPTY"
	case ErrStale:
		return "NFS3ERR_STALE"
	case ErrBadHandle:
		return "NFS3ERR_BADHANDLE"
	case ErrNotSync:
		return "NFS3ERR_NOT_SYNC"
	case ErrNotSupp:
		return "NFS3ERR_NOTSUPP"
	case ErrTooSmall:
		return "NFS3ERR_TOOSMALL"
	case ErrServerFault:
		return "NFS3ERR_SERVERFAULT"
	}
	return fmt.Sprintf("NFS3ERR(%d)", uint32(s))
}

// Err converts a non-OK status into a Go error.
func (s Status) Err() error {
	if s == OK {
		return nil
	}
	return &StatusError{Status: s}
}

// StatusError wraps a non-OK NFS status as an error.
type StatusError struct{ Status Status }

func (e *StatusError) Error() string { return e.Status.String() }

// StatusFromVFS maps substrate errors to protocol status codes.
func StatusFromVFS(err error) Status {
	switch {
	case err == nil:
		return OK
	case errors.Is(err, vfs.ErrNotExist):
		return ErrNoEnt
	case errors.Is(err, vfs.ErrExist):
		return ErrExist
	case errors.Is(err, vfs.ErrNotDir):
		return ErrNotDir
	case errors.Is(err, vfs.ErrIsDir):
		return ErrIsDir
	case errors.Is(err, vfs.ErrNotEmpty):
		return ErrNotEmpty
	case errors.Is(err, vfs.ErrStale):
		return ErrStale
	case errors.Is(err, vfs.ErrInval):
		return ErrInval
	case errors.Is(err, vfs.ErrNoSpace):
		return ErrNoSpc
	case errors.Is(err, vfs.ErrROFS):
		return ErrROFS
	case errors.Is(err, vfs.ErrNameTooLong):
		return ErrNameTooLong
	default:
		return ErrServerFault
	}
}

// FH is an nfs_fh3 file handle: fsid + fileid, opaque on the wire.
type FH struct {
	FSID   uint64
	FileID uint64
}

// MaxFHSize is the nfs_fh3 opaque bound.
const MaxFHSize = 64

// Encode writes the handle as opaque data.
func (h FH) Encode(e *xdr.Encoder) {
	inner := xdr.NewEncoder(make([]byte, 0, 16))
	inner.Uint64(h.FSID)
	inner.Uint64(h.FileID)
	e.Opaque(inner.Bytes())
}

// DecodeFH reads an nfs_fh3.
func DecodeFH(d *xdr.Decoder) (FH, error) {
	b, err := d.Opaque()
	if err != nil {
		return FH{}, err
	}
	if len(b) != 16 {
		return FH{}, fmt.Errorf("nfs3: bad handle length %d", len(b))
	}
	id := xdr.NewDecoder(b)
	var h FH
	if h.FSID, err = id.Uint64(); err != nil {
		return FH{}, err
	}
	if h.FileID, err = id.Uint64(); err != nil {
		return FH{}, err
	}
	return h, nil
}

// FType is ftype3.
type FType uint32

// ftype3 values.
const (
	TypeReg  FType = 1
	TypeDir  FType = 2
	TypeBlk  FType = 3
	TypeChr  FType = 4
	TypeLnk  FType = 5
	TypeSock FType = 6
	TypeFifo FType = 7
)

// NFSTime is nfstime3.
type NFSTime struct {
	Sec  uint32
	NSec uint32
}

// TimeFromSim converts virtual time to nfstime3.
func TimeFromSim(t des.Time) NFSTime {
	return NFSTime{Sec: uint32(int64(t) / 1e9), NSec: uint32(int64(t) % 1e9)}
}

func (t NFSTime) encode(e *xdr.Encoder) {
	e.Uint32(t.Sec)
	e.Uint32(t.NSec)
}

func decodeTime(d *xdr.Decoder) (NFSTime, error) {
	var t NFSTime
	var err error
	if t.Sec, err = d.Uint32(); err != nil {
		return t, err
	}
	if t.NSec, err = d.Uint32(); err != nil {
		return t, err
	}
	return t, nil
}

// FAttr is fattr3.
type FAttr struct {
	Type                 FType
	Mode                 uint32
	Nlink                uint32
	UID                  uint32
	GID                  uint32
	Size                 uint64
	Used                 uint64
	RdevMajor, RdevMinor uint32
	FSID                 uint64
	FileID               uint64
	Atime                NFSTime
	Mtime                NFSTime
	Ctime                NFSTime
}

// Encode writes fattr3.
func (a *FAttr) Encode(e *xdr.Encoder) {
	e.Uint32(uint32(a.Type))
	e.Uint32(a.Mode)
	e.Uint32(a.Nlink)
	e.Uint32(a.UID)
	e.Uint32(a.GID)
	e.Uint64(a.Size)
	e.Uint64(a.Used)
	e.Uint32(a.RdevMajor)
	e.Uint32(a.RdevMinor)
	e.Uint64(a.FSID)
	e.Uint64(a.FileID)
	a.Atime.encode(e)
	a.Mtime.encode(e)
	a.Ctime.encode(e)
}

// DecodeFAttr reads fattr3.
func DecodeFAttr(d *xdr.Decoder) (FAttr, error) {
	var a FAttr
	read32 := func(dst *uint32) error {
		v, err := d.Uint32()
		*dst = v
		return err
	}
	read64 := func(dst *uint64) error {
		v, err := d.Uint64()
		*dst = v
		return err
	}
	var ty uint32
	steps := []func() error{
		func() error { return read32(&ty) },
		func() error { return read32(&a.Mode) },
		func() error { return read32(&a.Nlink) },
		func() error { return read32(&a.UID) },
		func() error { return read32(&a.GID) },
		func() error { return read64(&a.Size) },
		func() error { return read64(&a.Used) },
		func() error { return read32(&a.RdevMajor) },
		func() error { return read32(&a.RdevMinor) },
		func() error { return read64(&a.FSID) },
		func() error { return read64(&a.FileID) },
	}
	for _, s := range steps {
		if err := s(); err != nil {
			return a, err
		}
	}
	a.Type = FType(ty)
	var err error
	if a.Atime, err = decodeTime(d); err != nil {
		return a, err
	}
	if a.Mtime, err = decodeTime(d); err != nil {
		return a, err
	}
	if a.Ctime, err = decodeTime(d); err != nil {
		return a, err
	}
	return a, nil
}

// AttrFromVFS converts substrate attributes to fattr3.
func AttrFromVFS(fsid uint64, a vfs.Attr) FAttr {
	return FAttr{
		Type:   FType(a.Type),
		Mode:   a.Mode,
		Nlink:  a.Nlink,
		UID:    a.UID,
		GID:    a.GID,
		Size:   uint64(a.Size),
		Used:   uint64(a.Size),
		FSID:   fsid,
		FileID: uint64(a.FileID),
		Atime:  TimeFromSim(a.Atime),
		Mtime:  TimeFromSim(a.Mtime),
		Ctime:  TimeFromSim(a.Ctime),
	}
}

// PostOpAttr is post_op_attr: optional fattr3.
type PostOpAttr struct {
	Present bool
	Attr    FAttr
}

// Encode writes post_op_attr.
func (a *PostOpAttr) Encode(e *xdr.Encoder) {
	e.Bool(a.Present)
	if a.Present {
		a.Attr.Encode(e)
	}
}

// DecodePostOpAttr reads post_op_attr.
func DecodePostOpAttr(d *xdr.Decoder) (PostOpAttr, error) {
	var a PostOpAttr
	ok, err := d.Bool()
	if err != nil {
		return a, err
	}
	a.Present = ok
	if ok {
		a.Attr, err = DecodeFAttr(d)
	}
	return a, err
}

// WccAttr is wcc_attr (pre-op attributes subset).
type WccAttr struct {
	Size  uint64
	Mtime NFSTime
	Ctime NFSTime
}

// WccData is wcc_data (weak cache consistency).
type WccData struct {
	PrePresent bool
	Pre        WccAttr
	Post       PostOpAttr
}

// Encode writes wcc_data.
func (w *WccData) Encode(e *xdr.Encoder) {
	e.Bool(w.PrePresent)
	if w.PrePresent {
		e.Uint64(w.Pre.Size)
		w.Pre.Mtime.encode(e)
		w.Pre.Ctime.encode(e)
	}
	w.Post.Encode(e)
}

// DecodeWccData reads wcc_data.
func DecodeWccData(d *xdr.Decoder) (WccData, error) {
	var w WccData
	ok, err := d.Bool()
	if err != nil {
		return w, err
	}
	w.PrePresent = ok
	if ok {
		if w.Pre.Size, err = d.Uint64(); err != nil {
			return w, err
		}
		if w.Pre.Mtime, err = decodeTime(d); err != nil {
			return w, err
		}
		if w.Pre.Ctime, err = decodeTime(d); err != nil {
			return w, err
		}
	}
	w.Post, err = DecodePostOpAttr(d)
	return w, err
}

// SAttr is sattr3 (settable attributes).
type SAttr struct {
	Mode *uint32
	UID  *uint32
	GID  *uint32
	Size *uint64
	// Atime/Mtime handling collapsed to "set to server time" flags.
	SetAtime bool
	SetMtime bool
}

// Encode writes sattr3.
func (s *SAttr) Encode(e *xdr.Encoder) {
	enc32 := func(v *uint32) {
		e.Bool(v != nil)
		if v != nil {
			e.Uint32(*v)
		}
	}
	enc32(s.Mode)
	enc32(s.UID)
	enc32(s.GID)
	e.Bool(s.Size != nil)
	if s.Size != nil {
		e.Uint64(*s.Size)
	}
	encTimeHow := func(set bool) {
		if set {
			e.Uint32(1) // SET_TO_SERVER_TIME
		} else {
			e.Uint32(0) // DONT_CHANGE
		}
	}
	encTimeHow(s.SetAtime)
	encTimeHow(s.SetMtime)
}

// DecodeSAttr reads sattr3.
func DecodeSAttr(d *xdr.Decoder) (SAttr, error) {
	var s SAttr
	dec32 := func() (*uint32, error) {
		ok, err := d.Bool()
		if err != nil || !ok {
			return nil, err
		}
		v, err := d.Uint32()
		if err != nil {
			return nil, err
		}
		return &v, nil
	}
	var err error
	if s.Mode, err = dec32(); err != nil {
		return s, err
	}
	if s.UID, err = dec32(); err != nil {
		return s, err
	}
	if s.GID, err = dec32(); err != nil {
		return s, err
	}
	ok, err := d.Bool()
	if err != nil {
		return s, err
	}
	if ok {
		v, err := d.Uint64()
		if err != nil {
			return s, err
		}
		s.Size = &v
	}
	decTimeHow := func() (bool, error) {
		how, err := d.Uint32()
		if err != nil {
			return false, err
		}
		if how == 2 { // SET_TO_CLIENT_TIME carries a time value
			if _, err := decodeTime(d); err != nil {
				return false, err
			}
			return true, nil
		}
		return how == 1, nil
	}
	if s.SetAtime, err = decTimeHow(); err != nil {
		return s, err
	}
	if s.SetMtime, err = decTimeHow(); err != nil {
		return s, err
	}
	return s, nil
}

// ACCESS bits.
const (
	AccessRead    = 0x01
	AccessLookup  = 0x02
	AccessModify  = 0x04
	AccessExtend  = 0x08
	AccessDelete  = 0x10
	AccessExecute = 0x20
)

// Write stability levels.
const (
	Unstable = 0
	DataSync = 1
	FileSync = 2
)
