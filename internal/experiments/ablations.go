package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file holds ablations for the design parameters the paper identifies
// but does not sweep: the IRD/ORD limit, physical-memory contiguity under
// all-physical registration, the inline threshold, and the per-interrupt
// cost behind the Read-Write design's interrupt-elimination argument.
// Like the figures, every ablation fans its independent sweep points out
// through internal/experiments/runner with index-keyed results.

// AblationORD sweeps the outstanding-RDMA-Read limit (the Mellanox HCAs
// allow 8; §4.1 blames the limit for Read-Read serialization and Fig. 9b
// for all-physical WRITE degradation). It reports WRITE throughput (server
// pulls via RDMA Read) and Read-Read READ throughput (client pulls) at 8
// threads.
func AblationORD(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: IRD/ORD limit (8 threads, 128 KiB records, Linux profile)",
		"maxORD", "RW write MB/s (all-physical)", "RR read MB/s")
	fileSize := scale.div64(64 << 20)
	ords := []int{1, 2, 4, 8, 16, 32}
	// Two configurations per ORD value: the write-side (Read-Write design,
	// all-physical) and the read-side (Read-Read, regular registration).
	pts := runner.Grid(len(ords), 2)
	results := pmap(len(pts), func(i int) workload.IOzoneResult {
		c := pts[i]
		prof := profiles.LinuxSDR()
		prof.Client.MaxORD = ords[c[0]]
		prof.Server.MaxORD = ords[c[0]]
		cfg := core.Config{Profile: prof, Transport: core.TransportRDMA}
		if c[1] == 0 {
			// All-physical fragments records into several read segments,
			// pressing the limit hardest.
			cfg.Design, cfg.RegMode = rpcrdma.ReadWrite, memreg.AllPhysical
		} else {
			cfg.Design, cfg.RegMode = rpcrdma.ReadRead, memreg.Regular
		}
		return runIOzone(cfg, workload.IOzoneConfig{Threads: 8, FileSize: fileSize, RecordSize: 128 << 10})
	})
	for i, ord := range ords {
		t.AddRow(ord, results[i*2].Write.MBps, results[i*2+1].Read.MBps)
	}
	return t
}

// AblationPhysicalContiguity sweeps the mean physically contiguous run
// length — the degree of fragmentation all-physical registration suffers.
// Long runs approach single-segment behaviour; page-sized runs make every
// record a storm of small RDMA Reads.
func AblationPhysicalContiguity(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: physical contiguity under all-physical registration (8 threads, 128 KiB records)",
		"mean run", "write MB/s", "read MB/s", "reads/op")
	fileSize := scale.div64(64 << 20)
	runs := []int{4 << 10, 16 << 10, 32 << 10, 128 << 10, 1 << 20}
	type contigResult struct {
		res        workload.IOzoneResult
		readsPerOp float64
	}
	results := pmap(len(runs), func(i int) contigResult {
		prof := profiles.LinuxSDR()
		prof.Client.MeanPhysRun = runs[i]
		prof.Server.MeanPhysRun = runs[i]
		cluster := core.NewCluster(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.AllPhysical,
		})
		var out contigResult
		cluster.Start("drv", func(p *des.Proc) {
			out.res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10,
			})
		})
		cluster.Run()
		if reqs := cluster.Server.RDMA.Requests; reqs > 0 {
			out.readsPerOp = float64(cluster.Server.RDMA.BulkReads) / float64(reqs) * 2
		}
		return out
	})
	for i, run := range runs {
		t.AddRow(memFmt(run), results[i].res.Write.MBps, results[i].res.Read.MBps, results[i].readsPerOp)
	}
	return t
}

// AblationInlineThreshold sweeps the inline threshold: below the typical
// header+args size every call becomes an RPC Long Call (an extra RDMA Read
// round trip); far above it, nothing changes for bulk-dominated workloads.
func AblationInlineThreshold(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: inline threshold (8 threads, 128 KiB records, Solaris profile)",
		"threshold", "read MB/s", "long calls", "long replies")
	fileSize := scale.div64(64 << 20)
	thresholds := []int{128, 256, 1024, 4096}
	type inlineResult struct {
		res                    workload.IOzoneResult
		longCalls, longReplies int64
	}
	results := pmap(len(thresholds), func(i int) inlineResult {
		prof := profiles.SolarisSDR()
		prof.RDMAClient.InlineThreshold = thresholds[i]
		prof.RDMAServer.InlineThreshold = thresholds[i]
		cluster := core.NewCluster(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		})
		var out inlineResult
		cluster.Start("drv", func(p *des.Proc) {
			out.res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10, DirectIO: true,
			})
		})
		cluster.Run()
		out.longCalls = cluster.Server.RDMA.LongCalls
		out.longReplies = cluster.Server.RDMA.LongReplies
		return out
	})
	for i, thresh := range thresholds {
		t.AddRow(thresh, results[i].res.Read.MBps, results[i].longCalls, results[i].longReplies)
	}
	return t
}

// AblationInterruptCost sweeps the per-interrupt cost: the Read-Read design
// takes an extra interrupt per operation (the DONE completion), so its gap
// to Read-Write widens with interrupt cost — quantifying the paper's
// interrupt-elimination argument.
func AblationInterruptCost(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: interrupt cost vs design gap (1 thread, 128 KiB records, Solaris profile)",
		"intr cost", "RR read MB/s", "RW read MB/s", "RW gain %")
	fileSize := scale.div64(32 << 20)
	costs := []des.Duration{0, 3 * time.Microsecond, 6 * time.Microsecond, 12 * time.Microsecond, 24 * time.Microsecond}
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite}
	pts := runner.Grid(len(costs), len(designs))
	results := pmap(len(pts), func(i int) float64 {
		c := pts[i]
		prof := profiles.SolarisSDR()
		prof.Client.InterruptCost = costs[c[0]]
		prof.Server.InterruptCost = costs[c[0]]
		res := runIOzone(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: designs[c[1]], RegMode: memreg.Regular,
		}, workload.IOzoneConfig{Threads: 1, FileSize: fileSize, RecordSize: 128 << 10, DirectIO: true})
		return res.Read.MBps
	})
	for i, cost := range costs {
		rr, rw := results[i*2], results[i*2+1]
		t.AddRow(cost, rr, rw, rw/rr*100-100)
	}
	return t
}

// AblationCacheBound sweeps the registration-cache byte bound: an
// undersized slab evicts and re-registers, degrading toward dynamic
// registration — the static-limit pathology §4.3 warns about.
func AblationCacheBound(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: registration cache bound (8 threads, 128 KiB records, Solaris profile)",
		"cache bytes", "read MB/s", "hits", "misses", "evictions")
	fileSize := scale.div64(64 << 20)
	bounds := []int64{256 << 10, 1 << 20, 4 << 20, 64 << 20}
	type cacheResult struct {
		res workload.IOzoneResult
		st  memreg.Stats
	}
	results := pmap(len(bounds), func(i int) cacheResult {
		cluster := core.NewCluster(core.Config{
			Profile: profiles.SolarisSDR(), Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
			CacheMaxBytes: bounds[i],
		})
		var out cacheResult
		cluster.Start("drv", func(p *des.Proc) {
			out.res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10,
			})
		})
		cluster.Run()
		out.st = cluster.Server.Mgr.Stats()
		return out
	})
	for i, bound := range bounds {
		r := results[i]
		t.AddRow(memFmt(int(bound)), r.res.Read.MBps, r.st.CacheHits, r.st.CacheMisses, r.st.Evictions)
	}
	return t
}

func memFmt(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// AblationClientCache quantifies the paper's motivating claim: client-side
// data caching helps only while the working set fits client memory. A
// working set is re-read under increasing client cache sizes; once the
// cache covers it, server READ traffic vanishes — below that, the client
// hits the wire at nearly full rate, which is why uncached server access
// speed (the paper's subject) matters.
func AblationClientCache(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: client data cache size vs server READ traffic (8 MiB working set, 3 re-read passes)",
		"client cache", "server READ RPCs", "hit ratio")
	workingSet := scale.div64(8 << 20)
	// Sweep relative to the working set: an undersized cache thrashes under
	// cyclic re-reads (LRU worst case), a covering cache eliminates traffic.
	fracs := []struct {
		label string
		bytes int64
	}{
		{"none", 0},
		{"ws/4", workingSet / 4},
		{"ws/2", workingSet / 2},
		{"2*ws", 2 * workingSet},
	}
	type clientCacheResult struct {
		reads int64
		ratio float64
	}
	results := pmap(len(fracs), func(i int) clientCacheResult {
		cacheBytes := fracs[i].bytes
		cluster := core.NewCluster(core.Config{
			Profile: profiles.LinuxSDR(), Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		})
		cl := cluster.Clients[0]
		var out clientCacheResult
		cluster.Start("drv", func(p *des.Proc) {
			var dc *core.DataCache
			if cacheBytes > 0 {
				dc = cl.EnableDataCache(cacheBytes)
			}
			f, _ := cl.Create(p, "ws")
			wbuf := cl.NewBuffer(1 << 20)
			for off := int64(0); off < workingSet; off += 1 << 20 {
				f.WriteAt(p, wbuf, 0, off, 1<<20, false)
			}
			before := cluster.Server.NFS.Ops[6] // ProcRead
			dst := make([]byte, 64<<10)
			rbuf := cl.NewBuffer(64 << 10)
			for pass := 0; pass < 3; pass++ {
				for off := int64(0); off < workingSet; off += 64 << 10 {
					if dc != nil {
						f.ReadAtCached(p, dst, off)
					} else {
						f.ReadAt(p, rbuf, 0, off, 64<<10, false)
					}
				}
			}
			out.reads = cluster.Server.NFS.Ops[6] - before
			if dc != nil {
				if tot := dc.Hits + dc.Misses; tot > 0 {
					out.ratio = float64(dc.Hits) / float64(tot)
				}
			}
		})
		cluster.Run()
		return out
	})
	for i, frac := range fracs {
		t.AddRow(frac.label, results[i].reads, results[i].ratio)
	}
	return t
}
