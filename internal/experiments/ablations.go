package experiments

import (
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// This file holds ablations for the design parameters the paper identifies
// but does not sweep: the IRD/ORD limit, physical-memory contiguity under
// all-physical registration, the inline threshold, and the per-interrupt
// cost behind the Read-Write design's interrupt-elimination argument.

// AblationORD sweeps the outstanding-RDMA-Read limit (the Mellanox HCAs
// allow 8; §4.1 blames the limit for Read-Read serialization and Fig. 9b
// for all-physical WRITE degradation). It reports WRITE throughput (server
// pulls via RDMA Read) and Read-Read READ throughput (client pulls) at 8
// threads.
func AblationORD(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: IRD/ORD limit (8 threads, 128 KiB records, Linux profile)",
		"maxORD", "RW write MB/s (all-physical)", "RR read MB/s")
	fileSize := scale.div64(64 << 20)
	for _, ord := range []int{1, 2, 4, 8, 16, 32} {
		prof := profiles.LinuxSDR()
		prof.Client.MaxORD = ord
		prof.Server.MaxORD = ord
		// All-physical fragments records into several read segments,
		// pressing the limit hardest.
		w := runIOzone(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.AllPhysical,
		}, workload.IOzoneConfig{Threads: 8, FileSize: fileSize, RecordSize: 128 << 10})
		r := runIOzone(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadRead, RegMode: memreg.Regular,
		}, workload.IOzoneConfig{Threads: 8, FileSize: fileSize, RecordSize: 128 << 10})
		t.AddRow(ord, w.Write.MBps, r.Read.MBps)
	}
	return t
}

// AblationPhysicalContiguity sweeps the mean physically contiguous run
// length — the degree of fragmentation all-physical registration suffers.
// Long runs approach single-segment behaviour; page-sized runs make every
// record a storm of small RDMA Reads.
func AblationPhysicalContiguity(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: physical contiguity under all-physical registration (8 threads, 128 KiB records)",
		"mean run", "write MB/s", "read MB/s", "reads/op")
	fileSize := scale.div64(64 << 20)
	for _, run := range []int{4 << 10, 16 << 10, 32 << 10, 128 << 10, 1 << 20} {
		prof := profiles.LinuxSDR()
		prof.Client.MeanPhysRun = run
		prof.Server.MeanPhysRun = run
		cfg := core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.AllPhysical,
		}
		cluster := core.NewCluster(cfg)
		var res workload.IOzoneResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10,
			})
		})
		cluster.Run()
		readsPerOp := 0.0
		if reqs := cluster.Server.RDMA.Requests; reqs > 0 {
			readsPerOp = float64(cluster.Server.RDMA.BulkReads) / float64(reqs) * 2
		}
		t.AddRow(memFmt(run), res.Write.MBps, res.Read.MBps, readsPerOp)
	}
	return t
}

// AblationInlineThreshold sweeps the inline threshold: below the typical
// header+args size every call becomes an RPC Long Call (an extra RDMA Read
// round trip); far above it, nothing changes for bulk-dominated workloads.
func AblationInlineThreshold(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: inline threshold (8 threads, 128 KiB records, Solaris profile)",
		"threshold", "read MB/s", "long calls", "long replies")
	fileSize := scale.div64(64 << 20)
	for _, thresh := range []int{128, 256, 1024, 4096} {
		prof := profiles.SolarisSDR()
		prof.RDMAClient.InlineThreshold = thresh
		prof.RDMAServer.InlineThreshold = thresh
		cfg := core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		}
		cluster := core.NewCluster(cfg)
		var res workload.IOzoneResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10, DirectIO: true,
			})
		})
		cluster.Run()
		t.AddRow(thresh, res.Read.MBps, cluster.Server.RDMA.LongCalls, cluster.Server.RDMA.LongReplies)
	}
	return t
}

// AblationInterruptCost sweeps the per-interrupt cost: the Read-Read design
// takes an extra interrupt per operation (the DONE completion), so its gap
// to Read-Write widens with interrupt cost — quantifying the paper's
// interrupt-elimination argument.
func AblationInterruptCost(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: interrupt cost vs design gap (1 thread, 128 KiB records, Solaris profile)",
		"intr cost", "RR read MB/s", "RW read MB/s", "RW gain %")
	fileSize := scale.div64(32 << 20)
	for _, cost := range []des.Duration{0, 3 * time.Microsecond, 6 * time.Microsecond, 12 * time.Microsecond, 24 * time.Microsecond} {
		row := map[rpcrdma.Design]float64{}
		for _, d := range []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite} {
			prof := profiles.SolarisSDR()
			prof.Client.InterruptCost = cost
			prof.Server.InterruptCost = cost
			res := runIOzone(core.Config{
				Profile: prof, Transport: core.TransportRDMA,
				Design: d, RegMode: memreg.Regular,
			}, workload.IOzoneConfig{Threads: 1, FileSize: fileSize, RecordSize: 128 << 10, DirectIO: true})
			row[d] = res.Read.MBps
		}
		gain := row[rpcrdma.ReadWrite]/row[rpcrdma.ReadRead]*100 - 100
		t.AddRow(cost, row[rpcrdma.ReadRead], row[rpcrdma.ReadWrite], gain)
	}
	return t
}

// AblationCacheBound sweeps the registration-cache byte bound: an
// undersized slab evicts and re-registers, degrading toward dynamic
// registration — the static-limit pathology §4.3 warns about.
func AblationCacheBound(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: registration cache bound (8 threads, 128 KiB records, Solaris profile)",
		"cache bytes", "read MB/s", "hits", "misses", "evictions")
	fileSize := scale.div64(64 << 20)
	for _, bound := range []int64{256 << 10, 1 << 20, 4 << 20, 64 << 20} {
		prof := profiles.SolarisSDR()
		cluster := core.NewCluster(core.Config{
			Profile: prof, Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
			CacheMaxBytes: bound,
		})
		var res workload.IOzoneResult
		cluster.Start("drv", func(p *des.Proc) {
			res, _ = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
				Threads: 8, FileSize: fileSize, RecordSize: 128 << 10,
			})
		})
		cluster.Run()
		st := cluster.Server.Mgr.Stats()
		t.AddRow(memFmt(int(bound)), res.Read.MBps, st.CacheHits, st.CacheMisses, st.Evictions)
	}
	return t
}

func memFmt(n int) string {
	switch {
	case n >= 1<<20:
		return itoa(n>>20) + "MiB"
	case n >= 1<<10:
		return itoa(n>>10) + "KiB"
	}
	return itoa(n) + "B"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// AblationClientCache quantifies the paper's motivating claim: client-side
// data caching helps only while the working set fits client memory. A
// working set is re-read under increasing client cache sizes; once the
// cache covers it, server READ traffic vanishes — below that, the client
// hits the wire at nearly full rate, which is why uncached server access
// speed (the paper's subject) matters.
func AblationClientCache(scale Scale) *stats.Table {
	t := stats.NewTable("Ablation: client data cache size vs server READ traffic (8 MiB working set, 3 re-read passes)",
		"client cache", "server READ RPCs", "hit ratio")
	workingSet := scale.div64(8 << 20)
	// Sweep relative to the working set: an undersized cache thrashes under
	// cyclic re-reads (LRU worst case), a covering cache eliminates traffic.
	for _, frac := range []struct {
		label string
		bytes int64
	}{
		{"none", 0},
		{"ws/4", workingSet / 4},
		{"ws/2", workingSet / 2},
		{"2*ws", 2 * workingSet},
	} {
		cacheBytes := frac.bytes
		cluster := core.NewCluster(core.Config{
			Profile: profiles.LinuxSDR(), Transport: core.TransportRDMA,
			Design: rpcrdma.ReadWrite, RegMode: memreg.Cache,
		})
		cl := cluster.Clients[0]
		var reads int64
		var ratio float64
		cluster.Start("drv", func(p *des.Proc) {
			var dc *core.DataCache
			if cacheBytes > 0 {
				dc = cl.EnableDataCache(cacheBytes)
			}
			f, _ := cl.Create(p, "ws")
			wbuf := cl.NewBuffer(1 << 20)
			for off := int64(0); off < workingSet; off += 1 << 20 {
				f.WriteAt(p, wbuf, 0, off, 1<<20, false)
			}
			before := cluster.Server.NFS.Ops[6] // ProcRead
			dst := make([]byte, 64<<10)
			rbuf := cl.NewBuffer(64 << 10)
			for pass := 0; pass < 3; pass++ {
				for off := int64(0); off < workingSet; off += 64 << 10 {
					if dc != nil {
						f.ReadAtCached(p, dst, off)
					} else {
						f.ReadAt(p, rbuf, 0, off, 64<<10, false)
					}
				}
			}
			reads = cluster.Server.NFS.Ops[6] - before
			if dc != nil {
				if tot := dc.Hits + dc.Misses; tot > 0 {
					ratio = float64(dc.Hits) / float64(tot)
				}
			}
		})
		cluster.Run()
		t.AddRow(frac.label, reads, ratio)
	}
	return t
}
