package experiments

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
)

// AdversaryPoint is one (design, registration mode) cell of the attack
// sweep, run in both security postures.
type AdversaryPoint struct {
	Design   rpcrdma.Design
	Mode     memreg.Mode
	Vuln     *adversary.Result
	Hardened *adversary.Result
}

// Adversary is the attack-sweep result.
type Adversary struct {
	Points []AdversaryPoint
	Table  *stats.Table
}

// ttcCell renders a time-to-compromise column: a censored value (the run
// ended uncompromised) prints as a lower bound.
func ttcCell(r *adversary.Result) string {
	if !r.Compromised {
		return fmt.Sprintf(">%v", time.Duration(r.FinalTime))
	}
	return fmt.Sprintf("%v via %s", time.Duration(r.TimeToCompromise), r.CompromiseVia)
}

// RunAdversary sweeps the rkey-scanning attack (with stale-window re-probes
// of every discovered key) across every transfer design and registration
// mode, once against the vulnerable posture
// (sequential rkeys, trusted stream claims, credential-keyed DRC) and once
// hardened. The table is the paper's security argument made measurable:
// all-physical falls to a scan almost immediately, regular registration's
// transient windows resist it, and the hardened stack holds every cell with
// zero victim corruption.
func RunAdversary(scale Scale) *Adversary {
	out := &Adversary{
		Table: stats.NewTable("Adversary sweep: rkey scan + stale-window probes per design x registration mode, vulnerable vs hardened posture",
			"design", "regmode", "ttc (vuln)", "ttc (hardened)", "probes", "xfrees v/h", "blast v/h", "quarantines"),
	}
	// The probe budget must stay large enough that the regular-registration
	// runs are clearly censored — that censoring IS the measurement the
	// all-physical comparison is made against.
	probes := int(scale.div64(4800))
	if probes < 1200 {
		probes = 1200
	}
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite, rpcrdma.ReplyFetch}
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache, memreg.AllPhysical}
	cells := runner.Grid(len(designs), len(modes), 2)

	results := pmap(len(cells), func(i int) *adversary.Result {
		c := cells[i]
		return adversary.Run(adversary.Config{
			Seed:        uint64(17 + c[0]*len(modes) + c[1]),
			Design:      designs[c[0]],
			RegMode:     modes[c[1]],
			Clients:     2,
			Hardened:    c[2] == 1,
			// Scan + stale-window probing only: the scan must start at
			// warmup for time-to-compromise to measure the registration
			// mode rather than the attack schedule. Spoofed DONEs and
			// forged credentials have dedicated experiments in the
			// adversary package itself.
			Attacks:     adversary.AttackRkeyScan | adversary.AttackStaleProbe,
			ProbeBudget: probes,
		})
	})

	for i := 0; i < len(cells); i += 2 {
		c := cells[i]
		pt := AdversaryPoint{
			Design: designs[c[0]], Mode: modes[c[1]],
			Vuln: results[i], Hardened: results[i+1],
		}
		out.Points = append(out.Points, pt)
		out.Table.AddRow(pt.Design.String(), pt.Mode.String(),
			ttcCell(pt.Vuln), ttcCell(pt.Hardened),
			fmt.Sprintf("%d/%d", pt.Vuln.ProbeHits, pt.Vuln.Probes),
			fmt.Sprintf("%d/%d", pt.Vuln.CrossClientFrees, pt.Hardened.CrossClientFrees),
			fmt.Sprintf("%d/%d", pt.Vuln.BlastRadius, pt.Hardened.BlastRadius),
			pt.Hardened.Quarantines)
	}
	return out
}

// FastestCompromise returns the shortest vulnerable-posture TTC for mode
// across all designs, censored values included.
func (a *Adversary) FastestCompromise(mode memreg.Mode) des.Time {
	best := des.Time(1<<62 - 1)
	for _, pt := range a.Points {
		if pt.Mode == mode && pt.Vuln.TimeToCompromise < best {
			best = pt.Vuln.TimeToCompromise
		}
	}
	return best
}
