package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/memreg"
)

// adversaryDigest flattens a sweep to a comparable string. Points hold
// result pointers, so the digest goes through the per-run fingerprints
// (which encode every counter) rather than %+v.
func adversaryDigest(r *Adversary) string {
	var b strings.Builder
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%v/%v vuln{%s} hard{%s}\n", pt.Design, pt.Mode,
			pt.Vuln.Fingerprint, pt.Hardened.Fingerprint)
	}
	b.WriteString(r.Table.String())
	return b.String()
}

// TestAdversarySweep is the attack-sweep acceptance check: the table covers
// every design x registration mode, the all-physical strategy falls to the
// scan orders of magnitude before regular registration does, and the
// hardened posture holds every cell — no compromise, no victim corruption,
// no cross-client frees.
func TestAdversarySweep(t *testing.T) {
	r := RunAdversary(testScale)
	if len(r.Points) != 12 {
		t.Fatalf("points = %d, want 12 (3 designs x 4 registration modes)", len(r.Points))
	}
	apCompromised := false
	for _, pt := range r.Points {
		if pt.Mode == memreg.AllPhysical && pt.Vuln.Compromised {
			apCompromised = true
		}
		if pt.Mode == memreg.Regular && pt.Vuln.Compromised {
			t.Errorf("%v/regular: transient registrations fell to the scan: %s",
				pt.Design, pt.Vuln.Fingerprint)
		}
		if pt.Hardened.Compromised {
			t.Errorf("%v/%v: hardened posture compromised: %s",
				pt.Design, pt.Mode, pt.Hardened.Fingerprint)
		}
		if n := len(pt.Hardened.Violations); n != 0 {
			t.Errorf("%v/%v: hardened victims corrupted: %v", pt.Design, pt.Mode, pt.Hardened.Violations)
		}
		if pt.Hardened.CrossClientFrees != 0 || pt.Hardened.BlastRadius != 0 {
			t.Errorf("%v/%v: hardened cross-frees=%d blast=%d, want 0/0",
				pt.Design, pt.Mode, pt.Hardened.CrossClientFrees, pt.Hardened.BlastRadius)
		}
		if pt.Vuln.Load.WritesAcked == 0 || pt.Hardened.Load.WritesAcked == 0 {
			t.Errorf("%v/%v: victim load did not run", pt.Design, pt.Mode)
		}
	}
	if !apCompromised {
		t.Error("no all-physical cell was compromised; the sweep lost its headline result")
	}
	ap, reg := r.FastestCompromise(memreg.AllPhysical), r.FastestCompromise(memreg.Regular)
	if ap*100 > reg {
		t.Errorf("all-physical TTC %d not two orders of magnitude under regular (censored %d)", ap, reg)
	}
}

// TestAdversarySweepSequentialAndParallelIdentical asserts the sweep is
// deterministic across worker counts, like every other sweep in the package.
func TestAdversarySweepSequentialAndParallelIdentical(t *testing.T) {
	SetParallelism(1)
	seq := RunAdversary(testScale)
	SetParallelism(8)
	par := RunAdversary(testScale)
	SetParallelism(0)

	if ds, dp := adversaryDigest(seq), adversaryDigest(par); ds != dp {
		t.Fatalf("sequential and parallel adversary sweeps diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", ds, dp)
	}
}
