package experiments

import (
	"fmt"
	"testing"

	"repro/internal/ibsim"
)

// muxCapDigest folds every observable output of a mux capacity sweep into
// one comparable string.
func muxCapDigest(r *MuxCapacity) string {
	return fmt.Sprintf("%+v\n%s\n%s", r.Points, r.Curves.String(), r.Memory.String())
}

// muxCapTestClients returns the populations these tests sweep and the
// largest of them. The plain build runs the real 10240-client point (the
// tier-1 suite and mux-check's uninstrumented full-scale pass); under the
// race detector, whose instrumentation multiplies host cost roughly
// tenfold, the top population is capped at 2048 so `make check` stays
// inside the test timeout. Every assertion below is written against the
// returned counts, so both builds check the same invariants.
func muxCapTestClients() (counts []int, big int) {
	if raceDetectorOn {
		return []int{512, 1024, 2048}, 2048
	}
	return []int{512, 2048, 10240}, 10240
}

// TestMuxCapacitySameSeed10240 pins determinism at the sweep's largest
// configuration: two same-seed runs of the 10240-client point — shared QPs
// demultiplexing ten thousand endpoints across 8 shards — must be
// byte-identical, tables included. (Race builds cap the population; see
// muxCapTestClients.)
func TestMuxCapacitySameSeed10240(t *testing.T) {
	_, big := muxCapTestClients()
	opts := MuxCapacityOptions{
		ClientCounts:         []int{big},
		AggregateOfferedMBps: []float64{1200},
		Seed:                 7,
	}
	a := muxCapDigest(RunMuxCapacityWith(testScale, opts))
	b := muxCapDigest(RunMuxCapacityWith(testScale, opts))
	if a != b {
		t.Fatalf("same-seed %d-client mux capacity runs differ:\n%s\n---\n%s", big, a, b)
	}
}

// TestMuxCapacitySeqVsParallel checks the sweep's parallel fan-out is
// invisible in the results at full scale: one worker and eight must produce
// byte-identical output for the 10240-client grid.
func TestMuxCapacitySeqVsParallel(t *testing.T) {
	_, big := muxCapTestClients()
	opts := MuxCapacityOptions{
		ClientCounts:         []int{512, big},
		AggregateOfferedMBps: []float64{1200},
		Seed:                 3,
	}
	SetParallelism(1)
	defer SetParallelism(0)
	seq := muxCapDigest(RunMuxCapacityWith(testScale, opts))
	SetParallelism(8)
	par := muxCapDigest(RunMuxCapacityWith(testScale, opts))
	if seq != par {
		t.Fatalf("sequential and parallel mux capacity sweeps differ:\n%s\n---\n%s", seq, par)
	}
}

// TestMuxCapacityMemoryScaling is the tentpole assertion on the sweep's own
// output: multiplexed receive-side state is O(shards) — the marginal cost of
// going from 512 to 10240 clients is one slot entry per extra client, while
// the per-connection server pays a full QP context each, and the honest
// per-connection receive provisioning (SRQ sized for every client's credit
// window) dwarfs the fixed multiplexed pool.
func TestMuxCapacityMemoryScaling(t *testing.T) {
	counts, big := muxCapTestClients()
	opts := MuxCapacityOptions{
		ClientCounts:         counts,
		AggregateOfferedMBps: []float64{1200},
		Seed:                 5,
	}
	r := RunMuxCapacityWith(testScale, opts)
	t.Logf("\n%s\n%s", r.Curves.String(), r.Memory.String())

	byKey := map[[2]interface{}]MuxCapacityPoint{}
	for _, p := range r.Points {
		if p.Completed == 0 {
			t.Errorf("%d clients mux=%v %s: no completions", p.Clients, p.Multiplex, p.Design)
		}
		key := [2]interface{}{p.Clients, p.Multiplex}
		if old, ok := byKey[key]; !ok || p.AchievedMBps > old.AchievedMBps {
			byKey[key] = p
		}
	}
	for _, n := range opts.ClientCounts {
		mux := byKey[[2]interface{}{n, true}]
		per := byKey[[2]interface{}{n, false}]
		// The multiplexed pool is a fixed cost, so it only undercuts honest
		// per-connection provisioning once the population is large enough to
		// dominate — the crossover sits below 2048 clients.
		if n >= 2048 && mux.RecvStateBytes >= per.RecvStateBytes {
			t.Errorf("%d clients: mux recv state %d B not below per-conn %d B",
				n, mux.RecvStateBytes, per.RecvStateBytes)
		}
		if mux.Endpoints != n {
			t.Errorf("%d clients: %d live endpoints", n, mux.Endpoints)
		}
	}
	// O(shards) vs O(connections), measured: marginal cost per extra client.
	mux512 := byKey[[2]interface{}{512, true}]
	muxBig := byKey[[2]interface{}{big, true}]
	extra := int64(big - 512)
	if diff := muxBig.RecvStateBytes - mux512.RecvStateBytes; diff != extra*ibsim.EndpointSlotBytes {
		t.Errorf("mux marginal recv state for %d extra clients = %d B, want %d (one slot entry each)",
			extra, diff, extra*ibsim.EndpointSlotBytes)
	}
	per512 := byKey[[2]interface{}{512, false}]
	perBig := byKey[[2]interface{}{big, false}]
	perDiff := perBig.RecvStateBytes - per512.RecvStateBytes
	if perDiff < extra*ibsim.QPContextBytes {
		t.Errorf("per-conn marginal recv state for %d extra clients = %d B, want >= %d (a QP context each)",
			extra, perDiff, extra*ibsim.QPContextBytes)
	}
	// The saving must widen with the population: per-conn state grows with
	// clients, multiplexed state only with slot entries.
	r512 := float64(per512.RecvStateBytes) / float64(mux512.RecvStateBytes)
	rBig := float64(perBig.RecvStateBytes) / float64(muxBig.RecvStateBytes)
	if rBig <= r512 {
		t.Errorf("memory saving did not widen with clients: %.2fx at 512, %.2fx at %d", r512, rBig, big)
	}
}
