package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/trace"
)

// TestTraceFigure4EndToEnd runs the traced latency-anatomy experiment and
// checks the acceptance shape: a valid Chrome trace-event document with
// spans from at least four stack layers, per-procedure latency quantiles,
// and a complete (undropped) event stream.
func TestTraceFigure4EndToEnd(t *testing.T) {
	r := RunFigure4(Scale(16))

	if d := r.Tracer.Dropped(); d != 0 {
		t.Fatalf("fig4 ring dropped %d events; raise figure4TraceCapacity", d)
	}

	perProc := r.PerProc.String()
	for _, proc := range []string{"READ", "WRITE", "LOOKUP", "p50", "p95", "p99"} {
		if !strings.Contains(perProc, proc) {
			t.Errorf("per-procedure table missing %q:\n%s", proc, perProc)
		}
	}
	transport := r.Transport.String()
	for _, h := range []string{"cq.deliver", "reg.register", "nfs.READ"} {
		if !strings.Contains(transport, h) {
			t.Errorf("transport table missing %q:\n%s", h, transport)
		}
	}

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf, r.Tracer.Events()); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not valid JSON: %v", err)
	}
	layers := map[string]bool{}
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" && e.Cat != "" {
			layers[e.Cat] = true
		}
	}
	for _, want := range []string{"des", "ibsim", "rpcrdma", "nfs3"} {
		if !layers[want] {
			t.Errorf("no complete spans from layer %q (got %v)", want, layers)
		}
	}
	if len(layers) < 4 {
		t.Fatalf("spans from %d layers, want >= 4: %v", len(layers), layers)
	}
}
