package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// MuxCapacityPoint is one (client count, connection mode, design, offered
// load) measurement of the multiplexing capacity sweep.
type MuxCapacityPoint struct {
	Clients      int
	Multiplex    bool
	Design       rpcrdma.Design
	OfferedMBps  float64
	AchievedMBps float64
	P50          float64 // µs
	P99          float64 // µs
	Issued       int64
	Completed    int64
	Dropped      int64
	ServerCPUPct float64

	// RecvStateBytes is the server's measured receive-side control memory
	// with the full client population attached; PerConnEquivBytes is what
	// the same population would pin on dedicated per-client connections
	// (clients × (QP context + private receive ring)).
	RecvStateBytes    int64
	PerConnEquivBytes int64

	// Completion-to-CPU affinity evidence over the measurement window.
	Migrations int64
	LocalWakes int64

	// Endpoints/MuxSlots aggregate the shards' shared-QP population
	// (multiplexed mode only).
	Endpoints int
	MuxSlots  int

	// Telemetry is the point's time-series report with detector findings;
	// nil unless MuxCapacityOptions.TelemetryInterval was set.
	Telemetry *telemetry.Report
}

// MuxCapacity is the connection-scaling sweep result: throughput/p99 curves
// per connection mode and the server-memory-vs-clients table that is the
// tentpole claim — receive-side state O(shards) multiplexed versus
// O(connections) dedicated.
type MuxCapacity struct {
	Points []MuxCapacityPoint
	Curves *stats.Table
	Memory *stats.Table
}

// MuxCapacityOptions tunes the sweep; the zero value reproduces the default
// grid.
type MuxCapacityOptions struct {
	// ClientCounts is the set of concurrent client hosts (default
	// {512, 2048, 10240} — past the point where per-connection receive
	// state dominates server memory).
	ClientCounts []int

	// AggregateOfferedMBps is the offered-load axis (default {600, 1200},
	// straddling the stack's ~900 MB/s ceiling).
	AggregateOfferedMBps []float64

	// Shards is the server dispatch shard count (default 8).
	Shards int

	// Affinity pins shard reply processing to the completion CPU (default
	// on; set NoAffinity to measure the migration-heavy baseline).
	NoAffinity bool

	// Seed derives the cluster and every client's arrival process.
	Seed uint64

	// TelemetryInterval enables per-point virtual-time sampling at this
	// period and runs the series detectors on each point (zero disables).
	TelemetryInterval des.Duration
}

func (o *MuxCapacityOptions) defaults() {
	if len(o.ClientCounts) == 0 {
		o.ClientCounts = []int{512, 2048, 10240}
	}
	if len(o.AggregateOfferedMBps) == 0 {
		o.AggregateOfferedMBps = []float64{600, 1200}
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// RunMuxCapacity sweeps client count × connection mode × transfer design
// with the open-loop generator: dedicated per-client connections (sharded
// SRQ dispatch, receive rings provisioned honestly for every client's credit
// window) head-to-head against shared-QP multiplexing (DCT-style endpoints,
// fixed SRQ). The sweep produces the throughput-vs-p99 curves and the
// server-memory-vs-clients table at the heart of the scaling argument.
func RunMuxCapacity(scale Scale) *MuxCapacity {
	return RunMuxCapacityWith(scale, MuxCapacityOptions{})
}

// RunMuxCapacityWith is RunMuxCapacity with an explicit grid.
func RunMuxCapacityWith(scale Scale, opts MuxCapacityOptions) *MuxCapacity {
	opts.defaults()
	out := &MuxCapacity{
		Curves: stats.NewTable("Mux capacity: open-loop offered load vs achieved throughput and latency, per-connection vs multiplexed server, Linux DDR profile",
			"clients", "mode", "design", "offered MB/s", "achieved MB/s", "p50 µs", "p99 µs", "srv CPU%", "dropped", "migrations", "local wakes"),
		Memory: stats.NewTable("Mux capacity: server receive-side control memory vs client count (measured with population attached)",
			"clients", "per-conn bytes", "mux bytes", "saving", "mux endpoints", "mux slots"),
	}
	modes := []bool{false, true} // per-conn, multiplexed
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite, rpcrdma.ReplyFetch}
	pts := runner.Grid(len(opts.ClientCounts), len(modes), len(designs), len(opts.AggregateOfferedMBps))
	results := pmap(len(pts), func(i int) MuxCapacityPoint {
		c := pts[i]
		return runMuxCapacityPoint(opts.ClientCounts[c[0]], modes[c[1]], designs[c[2]],
			opts.AggregateOfferedMBps[c[3]], scale, opts)
	})
	for i := range pts {
		r := results[i]
		out.Points = append(out.Points, r)
		mode := "per-conn"
		if r.Multiplex {
			mode = "mux"
		}
		out.Curves.AddRow(r.Clients, mode, r.Design.String(), r.OfferedMBps, r.AchievedMBps,
			r.P50, r.P99, r.ServerCPUPct, r.Dropped, r.Migrations, r.LocalWakes)
	}
	// Memory rows: one per client count, from the first-load Read-Write
	// point of each mode (receive-side state does not depend on load).
	loads := len(opts.AggregateOfferedMBps)
	idx := func(ci, mode, di, li int) int {
		return ((ci*len(modes)+mode)*len(designs)+di)*loads + li
	}
	for ci, n := range opts.ClientCounts {
		perConn := out.Points[idx(ci, 0, 1, 0)]
		mux := out.Points[idx(ci, 1, 1, 0)]
		saving := "-"
		if mux.RecvStateBytes > 0 {
			saving = fmt.Sprintf("%.1fx", float64(perConn.RecvStateBytes)/float64(mux.RecvStateBytes))
		}
		out.Memory.AddRow(n, perConn.RecvStateBytes, mux.RecvStateBytes, saving,
			mux.Endpoints, mux.MuxSlots)
	}
	return out
}

// runMuxCapacityPoint builds one cluster in the requested connection mode
// and measures one open-loop point.
func runMuxCapacityPoint(clients int, mux bool, design rpcrdma.Design, aggMBps float64, scale Scale, opts MuxCapacityOptions) MuxCapacityPoint {
	const recSize = 64 << 10
	fileSize := scale.div64(4 << 20)
	if fileSize < recSize {
		fileSize = recSize
	}
	duration := des.Duration(scale.div64(int64(400 * time.Millisecond)))
	if duration < des.Duration(5*time.Millisecond) {
		duration = des.Duration(5 * time.Millisecond)
	}

	prof := profiles.LinuxDDR()
	prof.RDMAServer.ReplyBufPool = 4 * clients
	if w := 4 * opts.Shards; w > prof.RDMAServer.Workers {
		prof.RDMAServer.Workers = w
	}

	cfg := core.Config{
		Profile:      prof,
		Transport:    core.TransportRDMA,
		Design:       design,
		RegMode:      memreg.AllPhysical,
		Clients:      clients,
		Backend:      core.BackendDisk,
		ServerShards: opts.Shards,
		MaxConns:     clients,
		Multiplex:    mux,
		Affinity:     !opts.NoAffinity,
		Seed:         opts.Seed,
	}
	if !mux {
		// Honest per-connection provisioning: the shared SRQ must hold every
		// client's full credit window, or the comparison would starve the
		// dedicated-connection server instead of charging it for memory.
		credits := prof.RDMAClient.Credits
		if credits <= 0 {
			credits = 32
		}
		cfg.SRQDepth = clients * credits / opts.Shards
	}
	cluster := core.NewCluster(cfg)
	if opts.TelemetryInterval > 0 {
		cluster.EnableTelemetry(telemetry.Options{Interval: opts.TelemetryInterval})
	}

	pt := MuxCapacityPoint{
		Clients: clients, Multiplex: mux, Design: design,
		PerConnEquivBytes: int64(clients) * rpcrdma.PerConnRecvBytes(prof.RDMAServer),
	}
	cluster.Start("muxcap-driver", func(p *des.Proc) {
		res, err := workload.RunOpenLoop(p, cluster, workload.OpenLoopConfig{
			RecordSize:          recSize,
			FileSize:            fileSize,
			OfferedPerClientBps: aggMBps * 1e6 / float64(clients),
			Duration:            duration,
			MaxOutstanding:      32,
			Seed:                opts.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("muxcap: open-loop run failed: %v", err))
		}
		pt.OfferedMBps = res.OfferedMBps
		pt.AchievedMBps = res.AchievedMBps
		pt.P50, pt.P99 = res.P50, res.P99
		pt.Issued, pt.Completed, pt.Dropped = res.Issued, res.Completed, res.Dropped
		pt.ServerCPUPct = res.ServerCPUPct
		pt.RecvStateBytes = res.ServerRecvStateBytes
		pt.Migrations, pt.LocalWakes = res.ServerMigrations, res.ServerLocalWakes
		for _, s := range cluster.Server.RDMA.ShardStats() {
			pt.Endpoints += s.Endpoints
			pt.MuxSlots += s.MuxSlots
		}
		pt.Telemetry = cluster.TelemetryReport()
	})
	cluster.Run()
	return pt
}
