package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/telemetry"
)

const testTelemetryInterval = des.Duration(100 * time.Microsecond)

// telemetryDigest folds a point's full telemetry output — CSV, JSON, and
// detector findings — into one comparable string.
func telemetryDigest(r *telemetry.Report) string {
	if r == nil {
		return "<nil>"
	}
	var csv, js bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		return "csv error: " + err.Error()
	}
	if err := r.WriteJSON(&js); err != nil {
		return "json error: " + err.Error()
	}
	var b strings.Builder
	b.WriteString(csv.String())
	b.WriteString(js.String())
	for _, f := range r.Findings {
		fmt.Fprintf(&b, "%s\n", f)
	}
	return b.String()
}

// sweepTelemetryDigest digests a whole telemetry-enabled capacity sweep:
// the result tables plus every point's series and findings.
func sweepTelemetryDigest(r *Capacity) string {
	var b strings.Builder
	b.WriteString(r.Curves.String())
	b.WriteString(r.Knee.String())
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "--- %d %s %.0f\n%s", pt.Clients, pt.Design, pt.OfferedMBps,
			telemetryDigest(pt.Telemetry))
	}
	return b.String()
}

// TestCapacityTelemetryDeterminism pins the telemetry byte-identity
// contract: two same-seed telemetry-enabled runs must produce identical
// CSV and JSON series and identical detector findings.
func TestCapacityTelemetryDeterminism(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{32},
		AggregateOfferedMBps: []float64{2400},
		Seed:                 7,
		TelemetryInterval:    testTelemetryInterval,
	}
	a := sweepTelemetryDigest(RunCapacityWith(testScale, opts))
	b := sweepTelemetryDigest(RunCapacityWith(testScale, opts))
	if a != b {
		t.Fatalf("same-seed telemetry-enabled runs differ:\n%s\n---\n%s", a, b)
	}
	if !strings.Contains(a, "time_s,") {
		t.Fatal("digest contains no CSV header — telemetry did not sample")
	}
}

// TestCapacityTelemetryDoesNotPerturb pins sampler neutrality: the sampler
// rides the same virtual clock as the workload but must never reorder it,
// so a telemetry-enabled run's result tables are byte-identical to the
// same seed run with telemetry off.
func TestCapacityTelemetryDoesNotPerturb(t *testing.T) {
	base := CapacityOptions{
		ClientCounts:         []int{8},
		AggregateOfferedMBps: []float64{600},
		Seed:                 5,
	}
	withTel := base
	withTel.TelemetryInterval = testTelemetryInterval
	off := RunCapacityWith(testScale, base)
	on := RunCapacityWith(testScale, withTel)
	if off.Curves.String() != on.Curves.String() {
		t.Fatalf("telemetry perturbed the run:\noff:\n%s\non:\n%s",
			off.Curves.String(), on.Curves.String())
	}
	if on.Points[0].Telemetry == nil || len(on.Points[0].Telemetry.TimesS) == 0 {
		t.Fatal("telemetry-enabled point has no samples")
	}
	if off.Points[0].Telemetry != nil {
		t.Fatal("telemetry-disabled point unexpectedly has a report")
	}
}

// TestCapacityTelemetrySeqVsParallel checks that the sweep fan-out is
// invisible in the telemetry too: one worker and eight workers must produce
// byte-identical series and findings for every point.
func TestCapacityTelemetrySeqVsParallel(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{8, 32},
		AggregateOfferedMBps: []float64{2400},
		Seed:                 3,
		TelemetryInterval:    testTelemetryInterval,
	}
	SetParallelism(1)
	defer SetParallelism(0)
	seq := sweepTelemetryDigest(RunCapacityWith(testScale, opts))
	SetParallelism(8)
	par := sweepTelemetryDigest(RunCapacityWith(testScale, opts))
	if seq != par {
		t.Fatalf("sequential and parallel telemetry sweeps differ:\n%s\n---\n%s", seq, par)
	}
}

// TestCapacityKneeOnsetAgreesWithTable is the acceptance cross-check
// between the two independent saturation detectors: the sweep-level Knee
// table (achieved-vs-offered gain analysis across load steps) and the
// per-run knee-onset detector (p99 rise + inflight build-up inside one
// run's time series). At the offered-load step where the table places the
// knee, the time-series detector must also find an onset; at the lowest
// load — well under the server ceiling — it must stay quiet.
func TestCapacityKneeOnsetAgreesWithTable(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{512},
		AggregateOfferedMBps: []float64{300, 600, 1200, 2400},
		Seed:                 7,
		TelemetryInterval:    testTelemetryInterval,
	}
	r := RunCapacityWith(testScale, opts)
	t.Logf("\n%s\n%s", r.Curves.String(), r.Knee.String())

	hasOnset := func(pt CapacityPoint) bool {
		if pt.Telemetry == nil {
			t.Fatalf("point %d %s %.0f has no telemetry", pt.Clients, pt.Design, pt.OfferedMBps)
		}
		for _, f := range pt.Telemetry.Findings {
			if f.Detector == "knee-onset" {
				return true
			}
		}
		return false
	}

	loads := len(opts.AggregateOfferedMBps)
	for g := 0; g+loads <= len(r.Points); g += loads {
		run := r.Points[g : g+loads]
		// Recompute the table's knee step with the sweep's own definition.
		peak := run[0]
		for _, p := range run {
			if p.AchievedMBps > peak.AchievedMBps {
				peak = p
			}
		}
		kneeIdx := -1
		for i := 1; i < len(run); i++ {
			gain := run[i].AchievedMBps - run[i-1].AchievedMBps
			step := run[i].OfferedMBps - run[i-1].OfferedMBps
			if gain < kneeGainRatio*step && run[i].AchievedMBps >= kneePeakRatio*peak.AchievedMBps {
				kneeIdx = i
				break
			}
		}
		if kneeIdx < 0 {
			t.Errorf("%d clients %s: table found no knee up to %.0f MB/s offered",
				run[0].Clients, run[0].Design, run[loads-1].OfferedMBps)
			continue
		}
		if !hasOnset(run[kneeIdx]) {
			t.Errorf("%d clients %s: table knee at %.0f MB/s but no knee-onset finding in that run's series:\n%v",
				run[kneeIdx].Clients, run[kneeIdx].Design, run[kneeIdx].OfferedMBps,
				run[kneeIdx].Telemetry.Findings)
		}
		if hasOnset(run[0]) {
			t.Errorf("%d clients %s: knee-onset fired at the lowest load %.0f MB/s (pre-knee)",
				run[0].Clients, run[0].Design, run[0].OfferedMBps)
		}
	}
}
