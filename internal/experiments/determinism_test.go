package experiments

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/workload"
)

// runFig5Point runs one representative Figure 5 sweep point (4 threads,
// 128 KiB records, Read-Write design, direct I/O) with the given seed and
// returns the final virtual time plus a digest of every observable output:
// the structured result, the server's RDMA counters, and the registration
// statistics.
func runFig5Point(seed uint64) (des.Time, string) {
	cluster := core.NewCluster(core.Config{
		Profile:   profiles.SolarisSDR(),
		Transport: core.TransportRDMA,
		Design:    rpcrdma.ReadWrite,
		RegMode:   memreg.Regular,
		Seed:      seed,
	})
	var res workload.IOzoneResult
	var err error
	cluster.Start("iozone-driver", func(p *des.Proc) {
		res, err = workload.RunIOzone(p, cluster, workload.IOzoneConfig{
			Threads: 4, FileSize: (128 << 20) / int64(testScale), RecordSize: 128 << 10, DirectIO: true,
		})
	})
	end := cluster.Run()
	if err != nil {
		panic(fmt.Sprintf("determinism test point failed: %v", err))
	}
	rdma := cluster.Server.RDMA
	digest := fmt.Sprintf("%+v|req=%d reads=%d writes=%d lc=%d lr=%d|%+v",
		res, rdma.Requests, rdma.BulkReads, rdma.BulkWrites, rdma.LongCalls, rdma.LongReplies,
		cluster.Server.Mgr.Stats())
	return end, digest
}

// TestSameSeedSameResults is the determinism regression test for the typed
// event kernel: two runs of the same sweep point with the same seed must
// produce bit-identical virtual end times and stats digests.
func TestSameSeedSameResults(t *testing.T) {
	end1, dig1 := runFig5Point(7)
	end2, dig2 := runFig5Point(7)
	if end1 != end2 {
		t.Fatalf("virtual end times diverged: %v vs %v", end1, end2)
	}
	if dig1 != dig2 {
		t.Fatalf("stats digests diverged:\n%s\n%s", dig1, dig2)
	}
	// Sanity: a different seed must actually reach this code path with a
	// meaningful digest (non-empty, non-trivial), or the assertions above
	// prove nothing.
	if len(dig1) < 20 {
		t.Fatalf("suspiciously small digest %q", dig1)
	}
}

// TestSequentialAndParallelSweepsIdentical runs a full Figure 5/6 sweep
// through the sequential reference path and through the parallel runner and
// asserts byte-identical structured results and rendered tables — the
// determinism contract of internal/experiments/runner.
func TestSequentialAndParallelSweepsIdentical(t *testing.T) {
	digest := func(r *Figure5and6) string {
		return fmt.Sprintf("%+v\n%s%s%s", r.Points, r.Read, r.Write, r.CPU)
	}

	SetParallelism(1)
	seq := RunFigure5and6(testScale)
	SetParallelism(8)
	par := RunFigure5and6(testScale)
	SetParallelism(0) // restore the per-core default for other tests

	if ds, dp := digest(seq), digest(par); ds != dp {
		t.Fatalf("sequential and parallel sweeps diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", ds, dp)
	}
}
