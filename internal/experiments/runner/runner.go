// Package runner fans independent simulation sweep points out across the
// machine's cores.
//
// Every figure in the paper's evaluation is a parameter sweep whose points
// are independent simulations: each point builds its own des.Sim, its own
// fabric, hosts, and RNGs, all seeded from the point's configuration alone.
// Nothing is shared between points, so they can execute concurrently — the
// des kernel guarantees bit-identical virtual-time results regardless of
// which OS thread a simulation happens to run on.
//
// Determinism of the *aggregate* result is preserved by construction:
// results are keyed by point index, never by completion order, so a sweep
// run with 1 worker and with 64 workers produces byte-identical output.
package runner

import (
	"fmt"
	"runtime"
	"sync"
)

// Workers is the default worker count for Map: one per available core.
func Workers() int { return runtime.GOMAXPROCS(0) }

// Map runs fn(i) for every i in [0, n) across min(Workers(), n) goroutines
// and returns the results ordered by index. It is the parallel equivalent
// of
//
//	out := make([]T, n)
//	for i := range out { out[i] = fn(i) }
//
// and produces the identical slice. A panic in any fn is captured and
// re-thrown on the caller's goroutine after all workers have drained, so
// partial sweeps never leak goroutines.
func Map[T any](n int, fn func(i int) T) []T {
	return MapWorkers(Workers(), n, fn)
}

// MapWorkers is Map with an explicit worker count. workers <= 1 runs the
// sweep sequentially on the calling goroutine — the reference path the
// determinism tests compare the parallel path against.
func MapWorkers[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	if n == 0 {
		return out
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}

	var (
		next    int64 // next unclaimed point index; accessed under mu
		mu      sync.Mutex
		wg      sync.WaitGroup
		panicMu sync.Mutex
		panics  []any
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if int(next) >= n {
			return 0, false
		}
		i := int(next)
		next++
		return i, true
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicMu.Lock()
							panics = append(panics, fmt.Sprintf("point %d: %v", i, r))
							panicMu.Unlock()
						}
					}()
					out[i] = fn(i)
				}()
			}
		}()
	}
	wg.Wait()
	if len(panics) > 0 {
		panic(fmt.Sprintf("runner: %d sweep point(s) panicked; first: %v", len(panics), panics[0]))
	}
	return out
}

// Grid enumerates the cross product of axis lengths in row-major order
// (last axis fastest) and returns every coordinate tuple. It turns nested
// sweep loops into a flat, Map-able point list:
//
//	pts := runner.Grid(8, 2, 2) // threads × record × design
//	res := runner.Map(len(pts), func(i int) R { c := pts[i]; ... })
func Grid(dims ...int) [][]int {
	n := 1
	for _, d := range dims {
		if d <= 0 {
			return nil
		}
		n *= d
	}
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		coord := make([]int, len(dims))
		rem := i
		for a := len(dims) - 1; a >= 0; a-- {
			coord[a] = rem % dims[a]
			rem /= dims[a]
		}
		out[i] = coord
	}
	return out
}
