package runner

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrdersResultsByIndex(t *testing.T) {
	// Make early indices finish last so completion order inverts submission
	// order: results must still land by index.
	out := MapWorkers(8, 16, func(i int) int {
		time.Sleep(time.Duration(16-i) * time.Millisecond)
		return i * i
	})
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapSequentialAndParallelIdentical(t *testing.T) {
	fn := func(i int) string { return strings.Repeat("x", i) }
	seq := MapWorkers(1, 32, fn)
	par := MapWorkers(8, 32, fn)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("index %d differs: %q vs %q", i, seq[i], par[i])
		}
	}
}

func TestMapRunsEveryPointExactlyOnce(t *testing.T) {
	var counts [100]int64
	MapWorkers(7, len(counts), func(i int) struct{} {
		atomic.AddInt64(&counts[i], 1)
		return struct{}{}
	})
	for i, c := range counts {
		if c != 1 {
			t.Fatalf("point %d ran %d times", i, c)
		}
	}
}

func TestMapZeroAndSmallN(t *testing.T) {
	if out := Map(0, func(i int) int { return i }); len(out) != 0 {
		t.Fatalf("n=0 returned %v", out)
	}
	if out := MapWorkers(64, 1, func(i int) int { return 7 }); len(out) != 1 || out[0] != 7 {
		t.Fatalf("n=1 returned %v", out)
	}
}

func TestMapPanicPropagatesAfterDrain(t *testing.T) {
	var completed int64
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected panic to propagate")
		}
		if !strings.Contains(r.(string), "point 3") {
			t.Fatalf("panic message %v does not name the failing point", r)
		}
		// All non-panicking points still ran: workers drained before rethrow.
		if n := atomic.LoadInt64(&completed); n != 7 {
			t.Fatalf("completed %d points, want 7", n)
		}
	}()
	MapWorkers(4, 8, func(i int) int {
		if i == 3 {
			panic("boom")
		}
		atomic.AddInt64(&completed, 1)
		return i
	})
}

func TestGridRowMajorOrder(t *testing.T) {
	pts := Grid(2, 3)
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(pts) != len(want) {
		t.Fatalf("len = %d, want %d", len(pts), len(want))
	}
	for i := range want {
		if pts[i][0] != want[i][0] || pts[i][1] != want[i][1] {
			t.Fatalf("pts[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
	if Grid(3, 0) != nil {
		t.Fatal("degenerate axis should yield nil")
	}
	if n := len(Grid(4, 2, 2)); n != 16 {
		t.Fatalf("Grid(4,2,2) has %d points, want 16", n)
	}
}

func TestWorkersPositive(t *testing.T) {
	if Workers() < 1 {
		t.Fatalf("Workers() = %d", Workers())
	}
}
