//go:build !race

package experiments

// raceDetectorOn reports whether this test binary was built with -race.
// See race_enabled_test.go.
const raceDetectorOn = false
