package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// CapacityPoint is one (client count, design, offered load) measurement of
// the open-loop capacity sweep.
type CapacityPoint struct {
	Clients      int
	Design       rpcrdma.Design
	OfferedMBps  float64 // aggregate offered load
	AchievedMBps float64
	P50          float64 // µs
	P99          float64 // µs
	Issued       int64
	Completed    int64
	Dropped      int64
	ServerCPUPct float64
	// Shard-path evidence aggregated over the server's shards.
	SRQStarved     int64
	SRQLimitEvents int64
	MaxQueueDepth  int

	// Telemetry is the point's time-series report with detector findings
	// (knee onset, starvation windows, SLO burn); nil unless
	// CapacityOptions.TelemetryInterval was set.
	Telemetry *telemetry.Report
}

// Capacity is the scale-out capacity sweep result: the full
// throughput-vs-latency curves plus a per-(clients, design) saturation-knee
// summary.
type Capacity struct {
	Points []CapacityPoint
	Curves *stats.Table
	Knee   *stats.Table
}

// CapacityOptions tunes the sweep; the zero value reproduces the default
// grid.
type CapacityOptions struct {
	// ClientCounts is the set of concurrent client hosts (default
	// {8, 32, 128, 512}).
	ClientCounts []int

	// AggregateOfferedMBps is the rising offered-load axis, aggregate
	// across all clients (default {300, 600, 1200, 2400} — straddling the
	// server stack's ~900 MB/s ceiling so every client count crosses its
	// knee).
	AggregateOfferedMBps []float64

	// Shards is the server transport's dispatch shard count (default 8).
	Shards int

	// Seed derives the cluster and every client's arrival process.
	Seed uint64

	// TelemetryInterval enables per-point virtual-time sampling at this
	// period and runs the series detectors on each point (zero disables).
	TelemetryInterval des.Duration
}

func (o *CapacityOptions) defaults() {
	if len(o.ClientCounts) == 0 {
		o.ClientCounts = []int{8, 32, 128, 512}
	}
	if len(o.AggregateOfferedMBps) == 0 {
		o.AggregateOfferedMBps = []float64{300, 600, 1200, 2400}
	}
	if o.Shards <= 0 {
		o.Shards = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Saturation-knee definition. A point is past the knee when raising offered
// load stops buying throughput: the achieved gain over the previous load is
// below kneeGainRatio of the offered increment while achieved already sits
// within kneePeakRatio of the curve's maximum (the second condition rejects
// low-load measurement-window artifacts). saturationRatio is the coarser
// per-point check — achieved below this fraction of offered means the
// server is shedding the difference.
const (
	kneeGainRatio   = 0.5
	kneePeakRatio   = 0.8
	saturationRatio = 0.9
)

// RunCapacity sweeps client count × offered load for all three transfer designs
// on the DDR multi-client testbed (RAID-0 + page cache backend) with the
// sharded SRQ server path, producing throughput-vs-p99 curves and a
// saturation-knee summary. An open-loop generator (workload.RunOpenLoop)
// keeps offering load past the knee, which is what exposes it: a
// closed-loop client would slow down to match capacity and the curve would
// never bend.
func RunCapacity(scale Scale) *Capacity {
	return RunCapacityWith(scale, CapacityOptions{})
}

// RunCapacityWith is RunCapacity with an explicit grid.
func RunCapacityWith(scale Scale, opts CapacityOptions) *Capacity {
	opts.defaults()
	out := &Capacity{
		Curves: stats.NewTable("Capacity: open-loop offered load vs achieved throughput and latency, Linux DDR profile, RAID-0 + page cache, sharded SRQ server",
			"clients", "design", "offered MB/s", "achieved MB/s", "p50 µs", "p99 µs", "srv CPU%", "issued", "dropped", "srq starved", "maxQ"),
		Knee: stats.NewTable("Capacity: saturation knee per client count (first offered load whose achieved gain falls below half the offered increment)",
			"clients", "design", "knee MB/s", "peak MB/s", "p99@peak µs"),
	}
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite, rpcrdma.ReplyFetch}
	pts := runner.Grid(len(opts.ClientCounts), len(designs), len(opts.AggregateOfferedMBps))
	results := pmap(len(pts), func(i int) CapacityPoint {
		c := pts[i]
		return runCapacityPoint(opts.ClientCounts[c[0]], designs[c[1]],
			opts.AggregateOfferedMBps[c[2]], scale, opts)
	})
	for i := range pts {
		r := results[i]
		out.Points = append(out.Points, r)
		out.Curves.AddRow(r.Clients, r.Design.String(), r.OfferedMBps, r.AchievedMBps,
			r.P50, r.P99, r.ServerCPUPct, r.Issued, r.Dropped, r.SRQStarved, r.MaxQueueDepth)
	}
	// Knee summary: points arrive in row-major grid order, so each
	// (clients, design) group is a contiguous run over the load axis.
	loads := len(opts.AggregateOfferedMBps)
	for g := 0; g+loads <= len(out.Points); g += loads {
		run := out.Points[g : g+loads]
		peak := run[0]
		for _, r := range run {
			if r.AchievedMBps > peak.AchievedMBps {
				peak = r
			}
		}
		knee := "-"
		for i := 1; i < len(run); i++ {
			gain := run[i].AchievedMBps - run[i-1].AchievedMBps
			step := run[i].OfferedMBps - run[i-1].OfferedMBps
			if gain < kneeGainRatio*step && run[i].AchievedMBps >= kneePeakRatio*peak.AchievedMBps {
				knee = fmt.Sprintf("%.0f", run[i].OfferedMBps)
				break
			}
		}
		out.Knee.AddRow(run[0].Clients, run[0].Design.String(), knee,
			peak.AchievedMBps, peak.P99)
	}
	return out
}

// runCapacityPoint builds one cluster and measures one open-loop point.
func runCapacityPoint(clients int, design rpcrdma.Design, aggMBps float64, scale Scale, opts CapacityOptions) CapacityPoint {
	const recSize = 64 << 10
	fileSize := scale.div64(4 << 20)
	if fileSize < recSize {
		fileSize = recSize
	}
	duration := des.Duration(scale.div64(int64(800 * time.Millisecond)))
	if duration < des.Duration(10*time.Millisecond) {
		duration = des.Duration(10 * time.Millisecond)
	}

	prof := profiles.LinuxDDR()
	// RR parks every reply until the client's DONE; at hundreds of clients
	// the default pool would throttle long before the stack ceiling, so
	// scale it with the connection count. Workers likewise: each shard
	// needs a few to keep its slice of connections busy.
	prof.RDMAServer.ReplyBufPool = 4 * clients
	if w := 4 * opts.Shards; w > prof.RDMAServer.Workers {
		prof.RDMAServer.Workers = w
	}

	cluster := core.NewCluster(core.Config{
		Profile:      prof,
		Transport:    core.TransportRDMA,
		Design:       design,
		RegMode:      memreg.AllPhysical,
		Clients:      clients,
		Backend:      core.BackendDisk,
		ServerShards: opts.Shards,
		MaxConns:     clients,
		Seed:         opts.Seed,
	})

	if opts.TelemetryInterval > 0 {
		cluster.EnableTelemetry(telemetry.Options{Interval: opts.TelemetryInterval})
	}

	pt := CapacityPoint{Clients: clients, Design: design}
	cluster.Start("capacity-driver", func(p *des.Proc) {
		res, err := workload.RunOpenLoop(p, cluster, workload.OpenLoopConfig{
			RecordSize:          recSize,
			FileSize:            fileSize,
			OfferedPerClientBps: aggMBps * 1e6 / float64(clients),
			Duration:            duration,
			MaxOutstanding:      32,
			Seed:                opts.Seed,
		})
		if err != nil {
			panic(fmt.Sprintf("capacity: open-loop run failed: %v", err))
		}
		pt.OfferedMBps = res.OfferedMBps
		pt.AchievedMBps = res.AchievedMBps
		pt.P50, pt.P99 = res.P50, res.P99
		pt.Issued, pt.Completed, pt.Dropped = res.Issued, res.Completed, res.Dropped
		pt.ServerCPUPct = res.ServerCPUPct
		for _, s := range cluster.Server.RDMA.ShardStats() {
			pt.SRQStarved += s.SRQStarved
			pt.SRQLimitEvents += s.SRQLimitEvents
			if s.MaxQueueDepth > pt.MaxQueueDepth {
				pt.MaxQueueDepth = s.MaxQueueDepth
			}
		}
		pt.Telemetry = cluster.TelemetryReport()
	})
	cluster.Run()
	return pt
}
