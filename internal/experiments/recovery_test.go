package experiments

import (
	"fmt"
	"testing"
)

// TestRecoveryAblation is the end-to-end recovery acceptance check: the
// workload completes across every injected-failure count (including >= 3
// faults) with byte-exact data and zero duplicate side effects, on all
// three transfer designs.
func TestRecoveryAblation(t *testing.T) {
	r := RunRecovery(testScale)
	if len(r.Points) != 12 {
		t.Fatalf("points = %d, want 12 (4 fault counts x 3 designs)", len(r.Points))
	}
	for _, p := range r.Points {
		if !p.DataOK {
			t.Errorf("faults=%d design=%v: data corrupt", p.Faults, p.Design)
		}
		if p.ServerWrites != p.WritesIssued {
			t.Errorf("faults=%d design=%v: server executed %d WRITEs, issued %d (duplicate side effects)",
				p.Faults, p.Design, p.ServerWrites, p.WritesIssued)
		}
		if int64(p.Faults) != p.Reconnects {
			t.Errorf("faults=%d design=%v: reconnects = %d, want one per fault",
				p.Faults, p.Design, p.Reconnects)
		}
		if p.Faults > 0 && p.Replays < p.Reconnects {
			t.Errorf("faults=%d design=%v: replays = %d < reconnects = %d",
				p.Faults, p.Design, p.Replays, p.Reconnects)
		}
	}
}

// TestRecoverySequentialAndParallelIdentical asserts the recovery sweep is
// deterministic across worker counts — the -workers 1 vs -workers N
// acceptance criterion.
func TestRecoverySequentialAndParallelIdentical(t *testing.T) {
	digest := func(r *Recovery) string {
		return fmt.Sprintf("%+v\n%s", r.Points, r.Table)
	}

	SetParallelism(1)
	seq := RunRecovery(testScale)
	SetParallelism(8)
	par := RunRecovery(testScale)
	SetParallelism(0)

	if ds, dp := digest(seq), digest(par); ds != dp {
		t.Fatalf("sequential and parallel recovery sweeps diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", ds, dp)
	}
}
