//go:build race

package experiments

// raceDetectorOn reports whether this test binary was built with -race.
// A handful of large-population sweeps scale themselves down under the
// detector (~10x per-instruction host cost) so `make check` stays inside
// the test timeout; the plain build runs them at full scale.
const raceDetectorOn = true
