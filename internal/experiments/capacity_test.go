package experiments

import (
	"fmt"
	"testing"

	"repro/internal/rpcrdma"
)

// capacityDigest folds every observable output of a capacity sweep into one
// comparable string.
func capacityDigest(r *Capacity) string {
	return fmt.Sprintf("%+v\n%s\n%s", r.Points, r.Curves.String(), r.Knee.String())
}

// TestCapacitySameSeed512 pins determinism at the sweep's largest
// configuration: two same-seed runs of the 512-client point must be
// byte-identical, tables included.
func TestCapacitySameSeed512(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{512},
		AggregateOfferedMBps: []float64{2400},
		Seed:                 7,
	}
	a := capacityDigest(RunCapacityWith(testScale, opts))
	b := capacityDigest(RunCapacityWith(testScale, opts))
	if a != b {
		t.Fatalf("same-seed 512-client capacity runs differ:\n%s\n---\n%s", a, b)
	}
}

// TestCapacitySeqVsParallel checks that the sweep's parallel fan-out is
// invisible in the results: one worker and eight workers must produce
// byte-identical output.
func TestCapacitySeqVsParallel(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{8, 32},
		AggregateOfferedMBps: []float64{300, 2400},
		Seed:                 3,
	}
	SetParallelism(1)
	defer SetParallelism(0)
	seq := capacityDigest(RunCapacityWith(testScale, opts))
	SetParallelism(8)
	par := capacityDigest(RunCapacityWith(testScale, opts))
	if seq != par {
		t.Fatalf("sequential and parallel capacity sweeps differ:\n%s\n---\n%s", seq, par)
	}
}

// TestCapacityKneeAndDesignOrdering smoke-checks the sweep's physics on a
// reduced grid: every (clients, design) curve must show a saturation knee
// (achieved falls below offered at the top load), and Read-Write must
// sustain at least Read-Read's peak throughput at every client count —
// Read-Read pays an extra server round (RDMA Read + DONE) per transfer.
func TestCapacityKneeAndDesignOrdering(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{8, 32},
		AggregateOfferedMBps: []float64{300, 1200, 2400},
		Seed:                 5,
	}
	r := RunCapacityWith(testScale, opts)
	t.Logf("\n%s\n%s", r.Curves.String(), r.Knee.String())

	loads := len(opts.AggregateOfferedMBps)
	wantPoints := len(opts.ClientCounts) * 3 * loads
	if len(r.Points) != wantPoints {
		t.Fatalf("got %d points, want %d", len(r.Points), wantPoints)
	}
	peak := map[[2]interface{}]float64{}
	for g := 0; g+loads <= len(r.Points); g += loads {
		run := r.Points[g : g+loads]
		top := run[loads-1]
		if top.AchievedMBps >= saturationRatio*top.OfferedMBps {
			t.Errorf("%d clients %s: no knee — achieved %.1f of offered %.1f MB/s at top load",
				top.Clients, top.Design, top.AchievedMBps, top.OfferedMBps)
		}
		for _, p := range run {
			if p.Completed == 0 {
				t.Errorf("%d clients %s offered %.0f: no completions", p.Clients, p.Design, p.OfferedMBps)
			}
			if p.Completed > 0 && (p.P99 < p.P50 || p.P50 <= 0) {
				t.Errorf("%d clients %s offered %.0f: bad quantiles p50=%.1f p99=%.1f",
					p.Clients, p.Design, p.OfferedMBps, p.P50, p.P99)
			}
			key := [2]interface{}{p.Clients, p.Design}
			if p.AchievedMBps > peak[key] {
				peak[key] = p.AchievedMBps
			}
		}
	}
	for _, n := range opts.ClientCounts {
		rr := peak[[2]interface{}{n, rpcrdma.ReadRead}]
		rw := peak[[2]interface{}{n, rpcrdma.ReadWrite}]
		if rw < rr {
			t.Errorf("%d clients: Read-Write peak %.1f MB/s below Read-Read peak %.1f MB/s", n, rw, rr)
		}
	}
	if len(r.Knee.String()) == 0 {
		t.Fatal("empty knee table")
	}
}

// TestCapacityReplyFetchServerCPU512 pins reply-fetch's payoff at the
// sweep's largest population: with 512 clients the server's CPU cost per
// completed op must be strictly lower under reply-fetch than under either
// Send-based reply path — no reply Send to post, no send completion to
// wait on, no completion interrupt to take.
func TestCapacityReplyFetchServerCPU512(t *testing.T) {
	opts := CapacityOptions{
		ClientCounts:         []int{512},
		AggregateOfferedMBps: []float64{2400},
		Seed:                 7,
	}
	r := RunCapacityWith(testScale, opts)
	perOp := map[rpcrdma.Design]float64{}
	for _, p := range r.Points {
		if p.Completed == 0 {
			t.Fatalf("%s: no completions", p.Design)
		}
		perOp[p.Design] = p.ServerCPUPct / float64(p.Completed)
		t.Logf("%-11s srvCPU=%.2f%% completed=%d cpu/op=%.6f", p.Design, p.ServerCPUPct, p.Completed, perOp[p.Design])
	}
	rfp := perOp[rpcrdma.ReplyFetch]
	for _, d := range []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite} {
		if rfp >= perOp[d] {
			t.Errorf("reply-fetch server CPU/op %.6f not below %s's %.6f", rfp, d, perOp[d])
		}
	}
}
