package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
)

// RecoveryPoint is one measured fault-rate configuration.
type RecoveryPoint struct {
	Faults     int
	Design     rpcrdma.Design
	WriteMBps  float64
	Reconnects int64
	Replays    int64
	// Transport-level fault evidence: call timeouts and retransmissions
	// accumulated across every connection the client used (reconnects swap
	// transports; TransportStats banks the retired counters), plus server
	// RDMA Write attempts cut short by a dying connection.
	Timeouts    int64
	Retransmits int64
	ShortWrites int64
	// ServerWrites is the number of WRITE procedures the server actually
	// executed; equality with the number issued proves the duplicate
	// request cache suppressed every replayed side effect.
	ServerWrites int64
	WritesIssued int64
	DataOK       bool
}

// Recovery is the fault-injection ablation result.
type Recovery struct {
	Points []RecoveryPoint
	Table  *stats.Table
}

// RunRecovery sweeps injected connection failures against all three
// transfer designs and reports throughput degradation alongside correctness
// evidence: every byte of a two-pass overwrite workload (plus a rename
// chain of non-idempotent metadata operations) must land exactly once,
// with the transparent reconnect/replay layer absorbing every fault.
//
// Faults fire at fixed workload milestones (after every total/(n+1)
// completed writes) rather than at wall-clock offsets, so every scale and
// fault count puts the failures mid-burst, with calls in flight.
func RunRecovery(scale Scale) *Recovery {
	out := &Recovery{
		Table: stats.NewTable("Recovery ablation: injected connection failures, 4 writers, 128 KiB records, Linux profile",
			"faults", "design", "write MB/s", "reconnects", "replays", "timeouts", "retrans", "shortw", "WRITEs exec/issued", "data"),
	}
	faultCounts := []int{0, 1, 3, 6}
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite, rpcrdma.ReplyFetch}
	fileSize := scale.div64(8 << 20)
	pts := runner.Grid(len(faultCounts), len(designs))
	results := pmap(len(pts), func(i int) RecoveryPoint {
		c := pts[i]
		return runRecoveryPoint(faultCounts[c[0]], designs[c[1]], fileSize)
	})
	for i, c := range pts {
		r := results[i]
		ok := "ok"
		if !r.DataOK {
			ok = "CORRUPT"
		}
		out.Points = append(out.Points, r)
		out.Table.AddRow(faultCounts[c[0]], r.Design.String(), r.WriteMBps,
			r.Reconnects, r.Replays, r.Timeouts, r.Retransmits, r.ShortWrites,
			fmt.Sprintf("%d/%d", r.ServerWrites, r.WritesIssued), ok)
	}
	return out
}

// runRecoveryPoint runs one cluster: two full write passes over the file
// (so every record is overwritten — a replayed duplicate WRITE from pass 1
// executing during pass 2 would corrupt data), a rename chain between the
// passes, and a byte-exact read-back of the final contents.
func runRecoveryPoint(faults int, design rpcrdma.Design, fileSize int64) RecoveryPoint {
	const (
		workers = 4
		recSize = 128 << 10
	)
	records := int(fileSize / recSize)
	if records < workers {
		records = workers
	}
	const renames = 8
	totalWrites := 2 * records

	prof := profiles.LinuxSDR()
	prof.RDMAClient.CallTimeout = 5 * time.Millisecond
	prof.RDMAClient.RetryLimit = 6
	cluster := core.NewCluster(core.Config{
		Profile: prof, Transport: core.TransportRDMA,
		Design: design, RegMode: memreg.Regular, CopyData: true,
	})
	cl := cluster.Clients[0]

	// Milestones: fault k fires when the (k+1)*total/(n+1)-th write
	// completes, spreading failures through both passes.
	milestones := make([]int, faults)
	for k := range milestones {
		milestones[k] = (k + 1) * totalWrites / (faults + 1)
	}
	completed, fired := 0, 0
	afterWrite := func() {
		completed++
		// Fire at most one fault per completion, and only on a healthy
		// QP; a milestone crossed while the transport is already errored
		// (several same-instant completions — reply-fetch doorbell wakes
		// batch more than the Send paths) defers to the next completion
		// rather than being silently dropped, so every scheduled fault
		// lands exactly once.
		if fired < len(milestones) && completed >= milestones[fired] {
			if qp := cl.RDMA.QP(); qp.Err() == nil {
				qp.InjectError(nil)
				fired++
			}
		}
	}

	fill := func(pass, rec int) byte { return byte(1 + pass*97 + rec) }
	pt := RecoveryPoint{Faults: faults, Design: design, WritesIssued: int64(totalWrites), DataOK: true}

	cluster.Start("recovery-driver", func(p *des.Proc) {
		cl.EnableRecovery(core.RetryPolicy{})
		f, err := cl.Create(p, "data")
		if err != nil {
			panic(fmt.Sprintf("recovery: create: %v", err))
		}
		sim := p.Sim()
		writePass := func(pass int) {
			events := make([]*des.Event, workers)
			for w := 0; w < workers; w++ {
				w := w
				ev := des.NewEvent(sim)
				events[w] = ev
				sim.Spawn(fmt.Sprintf("rec-writer-%d", w), func(wp *des.Proc) {
					defer ev.Fire(nil)
					buf := cl.NewMaterializedBuffer(recSize)
					for rec := w; rec < records; rec += workers {
						b := buf.Bytes()
						for i := range b {
							b[i] = fill(pass, rec)
						}
						n, err := f.WriteAt(wp, buf, 0, int64(rec)*recSize, recSize, true)
						if err != nil || n != recSize {
							panic(fmt.Sprintf("recovery: pass %d write %d: n=%d err=%v", pass, rec, n, err))
						}
						afterWrite()
					}
				})
			}
			des.WaitAll(p, events...)
		}

		start := p.Now()
		writePass(0)

		// A chain of renames: each is non-idempotent, so a re-executed
		// replay would fail (source name gone) and break the chain.
		if _, err := cl.Create(p, "chain0"); err != nil {
			panic(fmt.Sprintf("recovery: chain create: %v", err))
		}
		for i := 0; i < renames; i++ {
			from, to := fmt.Sprintf("chain%d", i), fmt.Sprintf("chain%d", i+1)
			if err := cl.NFS.Rename(p, cl.Root, from, cl.Root, to); err != nil {
				panic(fmt.Sprintf("recovery: rename %s->%s: %v", from, to, err))
			}
		}

		writePass(1)
		elapsed := p.Now() - start
		pt.WriteMBps = stats.MBps(int64(totalWrites)*recSize, elapsed.Seconds())

		// Verify: final bytes are pass-1 fills, the rename chain ended at
		// its final link, and no intermediate name survived.
		rbuf := cl.NewMaterializedBuffer(recSize)
		for rec := 0; rec < records; rec++ {
			n, _, err := f.ReadAt(p, rbuf, 0, int64(rec)*recSize, recSize, false)
			if err != nil || n != recSize {
				pt.DataOK = false
				break
			}
			for _, got := range rbuf.Bytes() {
				if got != fill(1, rec) {
					pt.DataOK = false
					break
				}
			}
		}
		if _, err := cl.Open(p, fmt.Sprintf("chain%d", renames)); err != nil {
			pt.DataOK = false
		}
		if _, err := cl.Open(p, "chain0"); err == nil {
			pt.DataOK = false
		}
		pt.Reconnects, pt.Replays = cl.RecoveryStats()
		pt.Timeouts, pt.Retransmits = cl.TransportStats()
		pt.ShortWrites = cluster.Server.RDMA.ShortWrites
		pt.ServerWrites = cluster.Server.NFS.Ops[nfs3.ProcWrite]
		if cluster.Server.NFS.Ops[nfs3.ProcRename] != renames {
			pt.DataOK = false
		}
		if faults > 0 && pt.Reconnects == 0 {
			// Faults that never landed mean the sweep measured nothing.
			panic("recovery: no reconnects despite injected faults")
		}
	})
	cluster.Run()
	return pt
}
