package experiments

import (
	"fmt"
	"testing"
)

// TestChaosSweep is the chaos soak acceptance check at test scale: every
// (design, server mode) cell — per-connection, sharded, and shared-QP
// multiplexed — runs its seeds clean — zero oracle violations, zero trace
// invariant failures — while actually doing recovery work.
func TestChaosSweep(t *testing.T) {
	r := RunChaos(testScale * 2) // 4 seeds per cell; the full soak lives in internal/chaos
	if len(r.Points) != 9 {
		t.Fatalf("points = %d, want 9 (3 designs x 3 server modes)", len(r.Points))
	}
	muxCells := 0
	for _, p := range r.Points {
		if p.Multiplex {
			muxCells++
		}
		if p.Failures != 0 {
			t.Errorf("design=%v shards=%d mux=%v: %d failing seeds %v",
				p.Design, p.Shards, p.Multiplex, p.Failures, p.FailedSeeds)
		}
		if p.Crashes == 0 || p.Reconnects == 0 {
			t.Errorf("design=%v shards=%d mux=%v: crashes=%d reconnects=%d; schedules did not land",
				p.Design, p.Shards, p.Multiplex, p.Crashes, p.Reconnects)
		}
		if p.WritesAcked == 0 || p.OracleReads == 0 {
			t.Errorf("design=%v shards=%d mux=%v: writes=%d reads=%d; workload did not run",
				p.Design, p.Shards, p.Multiplex, p.WritesAcked, p.OracleReads)
		}
	}
	if muxCells != 3 {
		t.Errorf("mux cells = %d, want 3", muxCells)
	}
}

// TestChaosSweepSequentialAndParallelIdentical asserts the chaos sweep is
// deterministic across worker counts, like every other sweep in the package.
func TestChaosSweepSequentialAndParallelIdentical(t *testing.T) {
	digest := func(r *Chaos) string {
		return fmt.Sprintf("%+v\n%s", r.Points, r.Table)
	}

	SetParallelism(1)
	seq := RunChaos(testScale * 2)
	SetParallelism(8)
	par := RunChaos(testScale * 2)
	SetParallelism(0)

	if ds, dp := digest(seq), digest(par); ds != dp {
		t.Fatalf("sequential and parallel chaos sweeps diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", ds, dp)
	}
}
