package experiments

import (
	"fmt"
	"testing"
)

// TestChaosSweep is the chaos soak acceptance check at test scale: every
// (design, shards) cell runs its seeds clean — zero oracle violations, zero
// trace invariant failures — while actually doing recovery work.
func TestChaosSweep(t *testing.T) {
	r := RunChaos(testScale * 2) // 4 seeds per cell; the full soak lives in internal/chaos
	if len(r.Points) != 4 {
		t.Fatalf("points = %d, want 4 (2 designs x 2 shard counts)", len(r.Points))
	}
	for _, p := range r.Points {
		if p.Failures != 0 {
			t.Errorf("design=%v shards=%d: %d failing seeds %v",
				p.Design, p.Shards, p.Failures, p.FailedSeeds)
		}
		if p.Crashes == 0 || p.Reconnects == 0 {
			t.Errorf("design=%v shards=%d: crashes=%d reconnects=%d; schedules did not land",
				p.Design, p.Shards, p.Crashes, p.Reconnects)
		}
		if p.WritesAcked == 0 || p.OracleReads == 0 {
			t.Errorf("design=%v shards=%d: writes=%d reads=%d; workload did not run",
				p.Design, p.Shards, p.WritesAcked, p.OracleReads)
		}
	}
}

// TestChaosSweepSequentialAndParallelIdentical asserts the chaos sweep is
// deterministic across worker counts, like every other sweep in the package.
func TestChaosSweepSequentialAndParallelIdentical(t *testing.T) {
	digest := func(r *Chaos) string {
		return fmt.Sprintf("%+v\n%s", r.Points, r.Table)
	}

	SetParallelism(1)
	seq := RunChaos(testScale * 2)
	SetParallelism(8)
	par := RunChaos(testScale * 2)
	SetParallelism(0)

	if ds, dp := digest(seq), digest(par); ds != dp {
		t.Fatalf("sequential and parallel chaos sweeps diverged:\n--- sequential ---\n%s\n--- parallel ---\n%s", ds, dp)
	}
}
