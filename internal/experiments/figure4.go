package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/nfs3"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/workload"
)

// Figure4 is the latency-anatomy experiment: one fully traced cluster
// running a mixed workload (bulk IOzone direct I/O plus a metadata-heavy
// small-op mix), reported as per-procedure NFS latency distributions and
// transport-internal latency histograms. The paper's Fig. 4 shows the
// RPC/RDMA exchange structure; this experiment measures where the time in
// that exchange actually goes, layer by layer.
type Figure4 struct {
	PerProc   *stats.Table // per-NFS-procedure latency quantiles
	Transport *stats.Table // transport-internal histograms (CQ delivery, registration, ...)
	Counters  *stats.Table // transport fault/overflow counters

	// Tracer holds the structured event stream of the run, for Chrome
	// trace-event export and invariant checking by the caller.
	Tracer *trace.Tracer
}

// figure4TraceCapacity keeps the whole run (not just the tail) in the ring,
// so exported traces show every layer from time zero.
const figure4TraceCapacity = 1 << 20

// RunFigure4 runs the single traced cluster with the paper's Read-Write
// design. Unlike the sweep figures this is one simulation, so it always
// runs sequentially regardless of the configured parallelism.
func RunFigure4(scale Scale) *Figure4 {
	return RunFigure4Design(scale, rpcrdma.ReadWrite)
}

// RunFigure4Design is the latency anatomy under an explicit transfer
// design, so the three designs' exchange structures (server Send vs
// client pull vs doorbell fetch) can be compared layer by layer.
func RunFigure4Design(scale Scale, design rpcrdma.Design) *Figure4 {
	cluster := core.NewCluster(core.Config{
		Profile:   profiles.SolarisSDR(),
		Transport: core.TransportRDMA,
		Design:    design,
		RegMode:   memreg.Regular,
	})
	tr := cluster.EnableTracing(figure4TraceCapacity)
	cl := cluster.Clients[0]

	cluster.Start("figure4-driver", func(p *des.Proc) {
		cl.NFS.EnableLatencyStats(cluster.Sim)
		if _, err := workload.RunIOzone(p, cluster, workload.IOzoneConfig{
			Threads: 2, FileSize: scale.div64(16 << 20), RecordSize: 128 << 10, DirectIO: true,
		}); err != nil {
			panic(fmt.Sprintf("experiments: figure4 iozone: %v", err))
		}
		ops := int(scale.div64(400))
		if ops < 50 {
			ops = 50
		}
		if _, err := workload.RunMetadata(p, cluster, workload.MetadataConfig{
			Threads: 2, Dirs: 4, Files: 16, Ops: ops, UseCache: true, Seed: 4,
		}); err != nil {
			panic(fmt.Sprintf("experiments: figure4 metadata: %v", err))
		}
	})
	cluster.Run()

	out := &Figure4{
		PerProc: stats.NewTable(fmt.Sprintf("Figure 4: per-procedure NFS latency, Solaris, %s, Regular registration (µs)", design),
			"procedure", "count", "mean", "p50", "p95", "p99", "max"),
		Transport: stats.NewTable(fmt.Sprintf("Figure 4: transport-internal latency histograms, %s (µs)", design),
			"histogram", "count", "mean", "p50", "p95", "p99", "max"),
		Counters: stats.NewTable(fmt.Sprintf("Figure 4: transport counters, %s", design),
			"counter", "value"),
		Tracer: tr,
	}
	for proc := uint32(0); proc < 22; proc++ {
		h := cl.NFS.Latency(proc)
		if h == nil || h.Count() == 0 {
			continue
		}
		out.PerProc.AddRow(nfs3.ProcName(proc), h.Count(), h.Mean(),
			h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max())
	}
	for _, nh := range tr.Histograms() {
		out.Transport.AddRow(nh.Name, nh.Hist.Count(), nh.Hist.Mean(),
			nh.Hist.Quantile(0.50), nh.Hist.Quantile(0.95), nh.Hist.Quantile(0.99), nh.Hist.Max())
	}
	timeouts, retransmits := cl.TransportStats()
	out.Counters.AddRow("client timeouts", timeouts)
	out.Counters.AddRow("client retransmits", retransmits)
	out.Counters.AddRow("server short writes", cluster.Server.RDMA.ShortWrites)
	out.Counters.AddRow("server deposits", cluster.Server.RDMA.Deposits)
	out.Counters.AddRow("trace events kept", out.Tracer.Len())
	out.Counters.AddRow("trace events dropped", out.Tracer.Dropped())
	return out
}
