package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/memreg"
	"repro/internal/rpcrdma"
)

// Smoke tests run the sweeps at a heavy scale divisor: tiny workloads,
// same code paths, assert the paper's qualitative orderings.

const testScale = Scale(32)

func at(points []IOzonePoint, threads, rec int, d rpcrdma.Design, m memreg.Mode) *IOzonePoint {
	for i := range points {
		pt := &points[i]
		if pt.Threads == threads && pt.RecordSize == rec && pt.Design == d && pt.Mode == m {
			return pt
		}
	}
	return nil
}

func TestFigure5and6Orderings(t *testing.T) {
	r := RunFigure5and6(testScale)
	if len(r.Points) != 8*2*2 {
		t.Fatalf("points = %d", len(r.Points))
	}
	rr := at(r.Points, 8, 128<<10, rpcrdma.ReadRead, memreg.Regular)
	rw := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.Regular)
	if rr == nil || rw == nil {
		t.Fatal("missing points")
	}
	if rw.Result.Read.MBps <= rr.Result.Read.MBps {
		t.Errorf("read-write (%.1f) should beat read-read (%.1f)",
			rw.Result.Read.MBps, rr.Result.Read.MBps)
	}
	if rr.Result.Read.ClientCPUPct <= rw.Result.Read.ClientCPUPct {
		t.Errorf("read-read client CPU (%.1f%%) should exceed read-write (%.1f%%)",
			rr.Result.Read.ClientCPUPct, rw.Result.Read.ClientCPUPct)
	}
	// Tables render without panicking and carry all 8 thread rows.
	if n := strings.Count(r.Read.String(), "\n"); n < 10 {
		t.Errorf("read table too short:\n%s", r.Read)
	}
}

func TestFigure7Orderings(t *testing.T) {
	r := RunFigure7(testScale)
	reg := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.Regular)
	fmr := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.FMR)
	cache := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.Cache)
	if reg == nil || fmr == nil || cache == nil {
		t.Fatal("missing points")
	}
	if !(cache.Result.Read.MBps > fmr.Result.Read.MBps && fmr.Result.Read.MBps > reg.Result.Read.MBps) {
		t.Errorf("ordering violated: cache %.1f, fmr %.1f, register %.1f",
			cache.Result.Read.MBps, fmr.Result.Read.MBps, reg.Result.Read.MBps)
	}
	if cache.Result.Read.MBps < 1.5*reg.Result.Read.MBps {
		t.Errorf("cache (%.1f) should be a large multiple of register (%.1f)",
			cache.Result.Read.MBps, reg.Result.Read.MBps)
	}
}

func TestFigure9Orderings(t *testing.T) {
	r := RunFigure9(testScale)
	reg := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.Regular)
	fmr := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.FMR)
	phys := at(r.Points, 8, 128<<10, rpcrdma.ReadWrite, memreg.AllPhysical)
	if reg == nil || fmr == nil || phys == nil {
		t.Fatal("missing points")
	}
	if !(phys.Result.Read.MBps > fmr.Result.Read.MBps && fmr.Result.Read.MBps > reg.Result.Read.MBps) {
		t.Errorf("read ordering violated: phys %.1f, fmr %.1f, register %.1f",
			phys.Result.Read.MBps, fmr.Result.Read.MBps, reg.Result.Read.MBps)
	}
	if phys.Result.Write.MBps >= fmr.Result.Write.MBps {
		t.Errorf("all-physical write (%.1f) should degrade below FMR (%.1f)",
			phys.Result.Write.MBps, fmr.Result.Write.MBps)
	}
}

func TestFigure8CacheWins(t *testing.T) {
	r := RunFigure8(Scale(64))
	for _, mode := range []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache} {
		if len(r.Series[mode]) == 0 {
			t.Fatalf("no series for %v", mode)
		}
	}
	last := func(m memreg.Mode) float64 {
		pts := r.Series[m]
		return pts[len(pts)-1].Result.OpsPerSec
	}
	if last(memreg.Cache) <= last(memreg.Regular) {
		t.Errorf("cache ops/s (%.0f) should beat register (%.0f)",
			last(memreg.Cache), last(memreg.Regular))
	}
}

func TestFigure10KneeAndOrdering(t *testing.T) {
	// Scale 32: 32 MiB files, ~96 MiB cache (4 GB server) -> knee at 3.
	r := RunFigure10(Scale(32), 4<<30, 5)
	rdma := r.Series[core.TransportRDMA]
	if len(rdma) != 5 {
		t.Fatalf("rdma points = %d", len(rdma))
	}
	peak, tail := 0.0, rdma[len(rdma)-1].Result.AggregateReadMBps
	for _, pt := range rdma {
		if pt.Result.AggregateReadMBps > peak {
			peak = pt.Result.AggregateReadMBps
		}
	}
	if tail >= peak/2 {
		t.Errorf("no cache-overflow collapse: peak %.1f, tail %.1f", peak, tail)
	}
	ipoibPeak := 0.0
	for _, pt := range r.Series[core.TransportIPoIB] {
		if v := pt.Result.AggregateReadMBps; v > ipoibPeak {
			ipoibPeak = v
		}
	}
	gigePeak := 0.0
	for _, pt := range r.Series[core.TransportGigE] {
		if v := pt.Result.AggregateReadMBps; v > gigePeak {
			gigePeak = v
		}
	}
	if !(peak > ipoibPeak && ipoibPeak > gigePeak) {
		t.Errorf("transport ordering violated: rdma %.1f, ipoib %.1f, gige %.1f",
			peak, ipoibPeak, gigePeak)
	}
}

func TestTable1Renders(t *testing.T) {
	s := Table1().String()
	for _, want := range []string{"Receive buffer exposed", "Steering tag", "Rendezvous"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}
