package experiments

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/experiments/runner"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
)

// ChaosPoint aggregates one (design, shards) cell of the chaos soak: N
// seeded fault schedules, each judged by the data-integrity oracle and the
// trace invariant checkers.
type ChaosPoint struct {
	Design      rpcrdma.Design
	Shards      int
	Multiplex   bool
	Seeds       int
	Crashes     int64
	Reconnects  int64
	Replays     int64
	WritesAcked int64
	OracleReads int64
	RenamesOK   int64
	Failures    int      // runs with oracle or invariant violations
	FailedSeeds []uint64 // which seeds failed (reproduce with nfsrdma-bench -chaos-seed)
}

// Chaos is the chaos soak result.
type Chaos struct {
	Points []ChaosPoint
	Table  *stats.Table
}

// chaosSeedsFor derives the soak width from the scale divisor: the paper-
// scale run (-scale 1) soaks 32 seeds per cell, the default -scale 4 eight.
func chaosSeedsFor(scale Scale) int {
	n := int(scale.div64(32))
	if n < 2 {
		n = 2
	}
	return n
}

// RunChaos soaks seeded fault schedules — QP errors, link flaps, server
// crash/restart cycles — against all three transfer designs and all three server
// receive paths (per-connection, SRQ-sharded, and shared-QP multiplexed).
// Every run must satisfy the data-integrity oracle (every READ byte
// explained by the write history, non-idempotent replays legal only across
// a crash window) and the trace invariant checkers from the tracing layer.
// The table reports recovery work done and a failure count that should read
// zero.
func RunChaos(scale Scale) *Chaos {
	out := &Chaos{
		Table: stats.NewTable("Chaos soak: seeded fault schedules (QP errors, link flaps, server crashes), 2 clients, integrity oracle + trace invariants",
			"design", "mode", "seeds", "crashes", "reconnects", "replays", "writes", "oracle reads", "renames", "failures"),
	}
	seeds := chaosSeedsFor(scale)
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite, rpcrdma.ReplyFetch}
	type serverMode struct {
		name   string
		shards int
		mux    bool
	}
	modes := []serverMode{{"per-conn", 0, false}, {"sharded", 2, false}, {"mux", 2, true}}
	cells := runner.Grid(len(designs), len(modes))

	results := pmap(len(cells)*seeds, func(i int) *chaos.Result {
		c := cells[i/seeds]
		m := modes[c[1]]
		return chaos.Run(chaos.Config{
			Seed:          uint64(i%seeds + 1),
			Design:        designs[c[0]],
			Shards:        m.shards,
			Multiplex:     m.mux,
			Affinity:      m.mux,
			Faults:        4,
			TraceCapacity: 1 << 20,
		})
	})

	for ci, c := range cells {
		pt := ChaosPoint{Design: designs[c[0]], Shards: modes[c[1]].shards,
			Multiplex: modes[c[1]].mux, Seeds: seeds}
		for s := 0; s < seeds; s++ {
			r := results[ci*seeds+s]
			pt.Crashes += r.Crashes
			pt.Reconnects += r.Reconnects
			pt.Replays += r.Replays
			pt.WritesAcked += r.Load.WritesAcked
			pt.OracleReads += r.OracleReads
			pt.RenamesOK += r.Load.RenamesOK
			if r.Failed() {
				pt.Failures++
				pt.FailedSeeds = append(pt.FailedSeeds, r.Schedule.Seed)
			}
		}
		out.Points = append(out.Points, pt)
		failures := "0"
		if pt.Failures > 0 {
			failures = fmt.Sprintf("%d (seeds %v)", pt.Failures, pt.FailedSeeds)
		}
		out.Table.AddRow(pt.Design.String(), modes[c[1]].name, pt.Seeds, pt.Crashes,
			pt.Reconnects, pt.Replays, pt.WritesAcked, pt.OracleReads, pt.RenamesOK, failures)
	}
	return out
}
