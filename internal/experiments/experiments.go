// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbeds. Each FigureN function runs the
// corresponding parameter sweep and returns both structured series (for
// assertions in benchmarks/tests) and formatted tables mirroring the
// paper's axes.
package experiments

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale divides the workload sizes to trade fidelity for wall-clock speed:
// 1 reproduces the paper's sizes exactly; tests use larger divisors.
type Scale int

func (s Scale) div64(v int64) int64 {
	if s <= 1 {
		return v
	}
	return v / int64(s)
}

// IOzonePoint is one measured IOzone configuration.
type IOzonePoint struct {
	Threads    int
	RecordSize int
	Design     rpcrdma.Design
	Mode       memreg.Mode
	Result     workload.IOzoneResult
}

// runIOzone builds a cluster and runs one IOzone configuration.
func runIOzone(cfg core.Config, io workload.IOzoneConfig) workload.IOzoneResult {
	cluster := core.NewCluster(cfg)
	var res workload.IOzoneResult
	var err error
	cluster.Start("iozone-driver", func(p *des.Proc) {
		res, err = workload.RunIOzone(p, cluster, io)
	})
	cluster.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: iozone run failed: %v", err))
	}
	return res
}

// Figure5and6 reproduces Figs. 5 and 6: IOzone READ and WRITE bandwidth
// with direct I/O on the OpenSolaris testbed, Read-Read vs Read-Write,
// record sizes 128 KiB and 1 MiB, 1-8 threads, plus client CPU utilization.
type Figure5and6 struct {
	Points []IOzonePoint
	Read   *stats.Table // Fig. 5
	Write  *stats.Table // Fig. 6
	CPU    *stats.Table // client CPU (read phase)
}

// RunFigure5and6 executes the sweep.
func RunFigure5and6(scale Scale) *Figure5and6 {
	out := &Figure5and6{
		Read:  stats.NewTable("Figure 5: IOzone Read bandwidth, Solaris tmpfs, direct I/O (MB/s)", "threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"),
		Write: stats.NewTable("Figure 6: IOzone Write bandwidth, Solaris tmpfs, direct I/O (MB/s)", "threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"),
		CPU:   stats.NewTable("Figures 5/6: client CPU utilization, read phase (%)", "threads", "Read-Read", "Read-Write"),
	}
	fileSize := scale.div64(128 << 20)
	for threads := 1; threads <= 8; threads++ {
		row := map[string]workload.IOzoneResult{}
		for _, rec := range []int{128 << 10, 1 << 20} {
			for _, design := range []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite} {
				cfg := core.Config{
					Profile:   profiles.SolarisSDR(),
					Transport: core.TransportRDMA,
					Design:    design,
					RegMode:   memreg.Regular,
				}
				res := runIOzone(cfg, workload.IOzoneConfig{
					Threads: threads, FileSize: fileSize, RecordSize: rec, DirectIO: true,
				})
				key := fmt.Sprintf("%v-%d", design, rec)
				row[key] = res
				out.Points = append(out.Points, IOzonePoint{
					Threads: threads, RecordSize: rec, Design: design,
					Mode: memreg.Regular, Result: res,
				})
			}
		}
		k128, m1 := 128<<10, 1<<20
		out.Read.AddRow(threads,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadRead, k128)].Read.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadWrite, k128)].Read.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadRead, m1)].Read.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadWrite, m1)].Read.MBps)
		out.Write.AddRow(threads,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadRead, k128)].Write.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadWrite, k128)].Write.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadRead, m1)].Write.MBps,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadWrite, m1)].Write.MBps)
		out.CPU.AddRow(threads,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadRead, k128)].Read.ClientCPUPct,
			row[fmt.Sprintf("%v-%d", rpcrdma.ReadWrite, k128)].Read.ClientCPUPct)
	}
	return out
}

// Figure7 reproduces Fig. 7: IOzone bandwidth under the registration
// strategies on Solaris (Read-Write design, 128 KiB records, buffered
// client I/O so the client-side arena participates in the strategy).
type Figure7 struct {
	Points []IOzonePoint
	Read   *stats.Table
	Write  *stats.Table
	CPU    *stats.Table
}

// RunFigure7 executes the sweep.
func RunFigure7(scale Scale) *Figure7 {
	out := &Figure7{
		Read:  stats.NewTable("Figure 7a: IOzone Read bandwidth by registration strategy, Solaris (MB/s)", "threads", "Register", "FMR", "Cache"),
		Write: stats.NewTable("Figure 7b: IOzone Write bandwidth by registration strategy, Solaris (MB/s)", "threads", "Register", "FMR", "Cache"),
		CPU:   stats.NewTable("Figure 7: client CPU utilization, read phase (%)", "threads", "Register", "FMR", "Cache"),
	}
	fileSize := scale.div64(128 << 20)
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache}
	for threads := 1; threads <= 8; threads++ {
		results := map[memreg.Mode]workload.IOzoneResult{}
		for _, mode := range modes {
			cfg := core.Config{
				Profile:   profiles.SolarisSDR(),
				Transport: core.TransportRDMA,
				Design:    rpcrdma.ReadWrite,
				RegMode:   mode,
			}
			res := runIOzone(cfg, workload.IOzoneConfig{
				Threads: threads, FileSize: fileSize, RecordSize: 128 << 10,
			})
			results[mode] = res
			out.Points = append(out.Points, IOzonePoint{
				Threads: threads, RecordSize: 128 << 10,
				Design: rpcrdma.ReadWrite, Mode: mode, Result: res,
			})
		}
		out.Read.AddRow(threads, results[memreg.Regular].Read.MBps, results[memreg.FMR].Read.MBps, results[memreg.Cache].Read.MBps)
		out.Write.AddRow(threads, results[memreg.Regular].Write.MBps, results[memreg.FMR].Write.MBps, results[memreg.Cache].Write.MBps)
		out.CPU.AddRow(threads, results[memreg.Regular].Read.ClientCPUPct, results[memreg.FMR].Read.ClientCPUPct, results[memreg.Cache].Read.ClientCPUPct)
	}
	return out
}

// Figure8 reproduces Fig. 8: the FileBench-style OLTP workload (mean I/O
// 128 KiB) under the registration schemes, throughput (ops/s) and client
// CPU µs/op versus number of readers.
type Figure8 struct {
	Table  *stats.Table
	Series map[memreg.Mode][]OLTPPoint
}

// OLTPPoint is one OLTP measurement.
type OLTPPoint struct {
	Readers int
	Mode    memreg.Mode
	Result  workload.OLTPResult
}

// RunFigure8 executes the sweep.
func RunFigure8(scale Scale) *Figure8 {
	out := &Figure8{
		Table:  stats.NewTable("Figure 8: FileBench OLTP (mean I/O 128 KiB), Solaris", "readers", "Register ops/s", "FMR ops/s", "Cache ops/s", "Register uscpu/op", "Cache uscpu/op"),
		Series: map[memreg.Mode][]OLTPPoint{},
	}
	duration := 2 * time.Second
	if scale > 1 {
		duration = time.Duration(int64(duration) / int64(scale))
	}
	readerCounts := []int{50, 100, 150, 200}
	for _, readers := range readerCounts {
		results := map[memreg.Mode]workload.OLTPResult{}
		for _, mode := range []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache} {
			cluster := core.NewCluster(core.Config{
				Profile:   profiles.SolarisSDR(),
				Transport: core.TransportRDMA,
				Design:    rpcrdma.ReadWrite,
				RegMode:   mode,
			})
			var res workload.OLTPResult
			var err error
			cluster.Start("oltp-driver", func(p *des.Proc) {
				res, err = workload.RunOLTP(p, cluster, workload.OLTPConfig{
					Readers: readers, Writers: readers / 10, MeanIO: 128 << 10,
					FileSize: scale.div64(512 << 20), Duration: duration, Seed: uint64(readers),
				})
			})
			cluster.Run()
			if err != nil {
				panic(fmt.Sprintf("experiments: oltp failed: %v", err))
			}
			results[mode] = res
			out.Series[mode] = append(out.Series[mode], OLTPPoint{Readers: readers, Mode: mode, Result: res})
		}
		out.Table.AddRow(readers,
			results[memreg.Regular].OpsPerSec, results[memreg.FMR].OpsPerSec, results[memreg.Cache].OpsPerSec,
			results[memreg.Regular].ClientUSPerOp, results[memreg.Cache].ClientUSPerOp)
	}
	return out
}

// Figure9 reproduces Fig. 9: registration strategies on the Linux port —
// all-physical yields the best READ throughput but degrades WRITE through
// physical fragmentation hitting the IRD/ORD limit.
type Figure9 struct {
	Points []IOzonePoint
	Read   *stats.Table
	Write  *stats.Table
	CPU    *stats.Table
}

// RunFigure9 executes the sweep.
func RunFigure9(scale Scale) *Figure9 {
	out := &Figure9{
		Read:  stats.NewTable("Figure 9a: IOzone Read bandwidth by registration strategy, Linux (MB/s)", "threads", "Register", "FMR", "All-Physical"),
		Write: stats.NewTable("Figure 9b: IOzone Write bandwidth by registration strategy, Linux (MB/s)", "threads", "Register", "FMR", "All-Physical"),
		CPU:   stats.NewTable("Figure 9: client CPU utilization, read phase (%)", "threads", "Register", "FMR", "All-Physical"),
	}
	fileSize := scale.div64(128 << 20)
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.AllPhysical}
	for threads := 1; threads <= 8; threads++ {
		results := map[memreg.Mode]workload.IOzoneResult{}
		for _, mode := range modes {
			cfg := core.Config{
				Profile:   profiles.LinuxSDR(),
				Transport: core.TransportRDMA,
				Design:    rpcrdma.ReadWrite,
				RegMode:   mode,
			}
			res := runIOzone(cfg, workload.IOzoneConfig{
				Threads: threads, FileSize: fileSize, RecordSize: 128 << 10,
			})
			results[mode] = res
			out.Points = append(out.Points, IOzonePoint{
				Threads: threads, RecordSize: 128 << 10,
				Design: rpcrdma.ReadWrite, Mode: mode, Result: res,
			})
		}
		out.Read.AddRow(threads, results[memreg.Regular].Read.MBps, results[memreg.FMR].Read.MBps, results[memreg.AllPhysical].Read.MBps)
		out.Write.AddRow(threads, results[memreg.Regular].Write.MBps, results[memreg.FMR].Write.MBps, results[memreg.AllPhysical].Write.MBps)
		out.CPU.AddRow(threads, results[memreg.Regular].Read.ClientCPUPct, results[memreg.FMR].Read.ClientCPUPct, results[memreg.AllPhysical].Read.ClientCPUPct)
	}
	return out
}

// Figure10 reproduces Fig. 10: multi-client aggregate read bandwidth with
// the RAID-0 back end, RDMA vs NFS/TCP on IPoIB and GigE, server page cache
// of 4 GB (a) and 8 GB (b).
type Figure10 struct {
	Table  *stats.Table
	Series map[core.Transport][]MultiClientPoint
}

// MultiClientPoint is one multi-client measurement.
type MultiClientPoint struct {
	Clients   int
	Transport core.Transport
	Result    workload.MultiClientResult
}

// RunFigure10 executes one server-memory configuration. serverMemBytes is
// the machine's RAM; roughly 1 GB goes to the kernel and daemons, the rest
// to the page cache.
func RunFigure10(scale Scale, serverMemBytes int64, maxClients int) *Figure10 {
	out := &Figure10{
		Table: stats.NewTable(
			fmt.Sprintf("Figure 10 (%d GB server): multi-client IOzone aggregate Read bandwidth (MB/s)", serverMemBytes>>30),
			"clients", "RDMA", "IPoIB", "GigE"),
		Series: map[core.Transport][]MultiClientPoint{},
	}
	cacheBytes := scale.div64(serverMemBytes - 1<<30)
	fileSize := scale.div64(1 << 30)
	for clients := 1; clients <= maxClients; clients++ {
		results := map[core.Transport]workload.MultiClientResult{}
		for _, tr := range []core.Transport{core.TransportRDMA, core.TransportIPoIB, core.TransportGigE} {
			cluster := core.NewCluster(core.Config{
				Profile:        profiles.LinuxDDR(),
				Transport:      tr,
				Design:         rpcrdma.ReadWrite,
				RegMode:        memreg.AllPhysical,
				Clients:        clients,
				Backend:        core.BackendDisk,
				PageCacheBytes: cacheBytes,
			})
			var res workload.MultiClientResult
			var err error
			cluster.Start("multiclient-driver", func(p *des.Proc) {
				res, err = workload.RunMultiClient(p, cluster, workload.MultiClientConfig{
					FileSize: fileSize, RecordSize: 1 << 20,
				})
			})
			cluster.Run()
			if err != nil {
				panic(fmt.Sprintf("experiments: multiclient failed: %v", err))
			}
			results[tr] = res
			out.Series[tr] = append(out.Series[tr], MultiClientPoint{Clients: clients, Transport: tr, Result: res})
		}
		out.Table.AddRow(clients,
			results[core.TransportRDMA].AggregateReadMBps,
			results[core.TransportIPoIB].AggregateReadMBps,
			results[core.TransportGigE].AggregateReadMBps)
	}
	return out
}

// Table1 renders the communication-primitive property matrix, verified by
// the fabric's semantic tests (internal/ibsim).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: Communication primitive properties",
		"property", "Channel (Send/Recv)", "Memory (RDMA R/W)")
	t.AddRow("Receive buffer exposed", "no", "yes")
	t.AddRow("Receive buffer pre-posted", "yes", "no")
	t.AddRow("Steering tag", "no", "yes")
	t.AddRow("Rendezvous (addr+stag exchange)", "no", "yes")
	return t
}
