// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated testbeds. Each FigureN function runs the
// corresponding parameter sweep and returns both structured series (for
// assertions in benchmarks/tests) and formatted tables mirroring the
// paper's axes.
//
// Sweep points are independent simulations (each builds its own des.Sim,
// fabric, and RNGs from the point's configuration alone), so every FigureN
// fans its points out across the machine's cores through
// internal/experiments/runner. Results are keyed by point index, never by
// completion order: a sweep run sequentially and one run on 64 workers
// produce byte-identical structured results and tables. SetParallelism
// pins the worker count (1 forces the sequential reference path).
package experiments

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/des"
	"repro/internal/experiments/runner"
	"repro/internal/memreg"
	"repro/internal/profiles"
	"repro/internal/rpcrdma"
	"repro/internal/stats"
	"repro/internal/workload"
)

// Scale divides the workload sizes to trade fidelity for wall-clock speed:
// 1 reproduces the paper's sizes exactly; tests use larger divisors.
type Scale int

func (s Scale) div64(v int64) int64 {
	if s <= 1 {
		return v
	}
	return v / int64(s)
}

// sweepWorkers overrides the sweep worker count; 0 means one per core.
var sweepWorkers atomic.Int64

// SetParallelism pins the number of concurrent simulations per sweep.
// n <= 0 restores the default (one worker per core); n == 1 forces the
// sequential reference path. Results are identical either way — only
// wall-clock time changes.
func SetParallelism(n int) { sweepWorkers.Store(int64(n)) }

// Parallelism reports the effective sweep worker count.
func Parallelism() int {
	if w := int(sweepWorkers.Load()); w > 0 {
		return w
	}
	return runner.Workers()
}

// pmap fans fn across the configured number of sweep workers.
func pmap[T any](n int, fn func(i int) T) []T {
	return runner.MapWorkers(Parallelism(), n, fn)
}

// IOzonePoint is one measured IOzone configuration.
type IOzonePoint struct {
	Threads    int
	RecordSize int
	Design     rpcrdma.Design
	Mode       memreg.Mode
	Result     workload.IOzoneResult
}

// runIOzone builds a cluster and runs one IOzone configuration.
func runIOzone(cfg core.Config, io workload.IOzoneConfig) workload.IOzoneResult {
	cluster := core.NewCluster(cfg)
	var res workload.IOzoneResult
	var err error
	cluster.Start("iozone-driver", func(p *des.Proc) {
		res, err = workload.RunIOzone(p, cluster, io)
	})
	cluster.Run()
	if err != nil {
		panic(fmt.Sprintf("experiments: iozone run failed: %v", err))
	}
	return res
}

// Figure5and6 reproduces Figs. 5 and 6: IOzone READ and WRITE bandwidth
// with direct I/O on the OpenSolaris testbed, Read-Read vs Read-Write,
// record sizes 128 KiB and 1 MiB, 1-8 threads, plus client CPU utilization.
type Figure5and6 struct {
	Points []IOzonePoint
	Read   *stats.Table // Fig. 5
	Write  *stats.Table // Fig. 6
	CPU    *stats.Table // client CPU (read phase)
}

// RunFigure5and6 executes the sweep.
func RunFigure5and6(scale Scale) *Figure5and6 {
	out := &Figure5and6{
		Read:  stats.NewTable("Figure 5: IOzone Read bandwidth, Solaris tmpfs, direct I/O (MB/s)", "threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"),
		Write: stats.NewTable("Figure 6: IOzone Write bandwidth, Solaris tmpfs, direct I/O (MB/s)", "threads", "RR-128K", "RW-128K", "RR-1M", "RW-1M"),
		CPU:   stats.NewTable("Figures 5/6: client CPU utilization, read phase (%)", "threads", "Read-Read", "Read-Write"),
	}
	fileSize := scale.div64(128 << 20)
	records := []int{128 << 10, 1 << 20}
	designs := []rpcrdma.Design{rpcrdma.ReadRead, rpcrdma.ReadWrite}
	pts := runner.Grid(8, len(records), len(designs))
	results := pmap(len(pts), func(i int) workload.IOzoneResult {
		c := pts[i]
		return runIOzone(core.Config{
			Profile:   profiles.SolarisSDR(),
			Transport: core.TransportRDMA,
			Design:    designs[c[2]],
			RegMode:   memreg.Regular,
		}, workload.IOzoneConfig{
			Threads: c[0] + 1, FileSize: fileSize, RecordSize: records[c[1]], DirectIO: true,
		})
	})
	for i, c := range pts {
		out.Points = append(out.Points, IOzonePoint{
			Threads: c[0] + 1, RecordSize: records[c[1]], Design: designs[c[2]],
			Mode: memreg.Regular, Result: results[i],
		})
	}
	// Row assembly: point index for (threads t, record r, design d).
	at := func(t, r, d int) workload.IOzoneResult {
		return results[((t-1)*len(records)+r)*len(designs)+d]
	}
	for t := 1; t <= 8; t++ {
		out.Read.AddRow(t,
			at(t, 0, 0).Read.MBps, at(t, 0, 1).Read.MBps,
			at(t, 1, 0).Read.MBps, at(t, 1, 1).Read.MBps)
		out.Write.AddRow(t,
			at(t, 0, 0).Write.MBps, at(t, 0, 1).Write.MBps,
			at(t, 1, 0).Write.MBps, at(t, 1, 1).Write.MBps)
		out.CPU.AddRow(t, at(t, 0, 0).Read.ClientCPUPct, at(t, 0, 1).Read.ClientCPUPct)
	}
	return out
}

// Figure7 reproduces Fig. 7: IOzone bandwidth under the registration
// strategies on Solaris (Read-Write design, 128 KiB records, buffered
// client I/O so the client-side arena participates in the strategy).
type Figure7 struct {
	Points []IOzonePoint
	Read   *stats.Table
	Write  *stats.Table
	CPU    *stats.Table
}

// RunFigure7 executes the sweep.
func RunFigure7(scale Scale) *Figure7 {
	out := &Figure7{
		Read:  stats.NewTable("Figure 7a: IOzone Read bandwidth by registration strategy, Solaris (MB/s)", "threads", "Register", "FMR", "Cache"),
		Write: stats.NewTable("Figure 7b: IOzone Write bandwidth by registration strategy, Solaris (MB/s)", "threads", "Register", "FMR", "Cache"),
		CPU:   stats.NewTable("Figure 7: client CPU utilization, read phase (%)", "threads", "Register", "FMR", "Cache"),
	}
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache}
	out.Points = regStrategySweep(scale, profiles.SolarisSDR, modes, out.Read, out.Write, out.CPU)
	return out
}

// regStrategySweep runs the shared Figure 7/9 shape: threads 1-8 ×
// registration modes, Read-Write design, 128 KiB records, one testbed
// profile. It fills the three tables and returns the point list.
func regStrategySweep(scale Scale, profile func() profiles.Profile, modes []memreg.Mode, read, write, cpu *stats.Table) []IOzonePoint {
	fileSize := scale.div64(128 << 20)
	pts := runner.Grid(8, len(modes))
	results := pmap(len(pts), func(i int) workload.IOzoneResult {
		c := pts[i]
		return runIOzone(core.Config{
			Profile:   profile(),
			Transport: core.TransportRDMA,
			Design:    rpcrdma.ReadWrite,
			RegMode:   modes[c[1]],
		}, workload.IOzoneConfig{
			Threads: c[0] + 1, FileSize: fileSize, RecordSize: 128 << 10,
		})
	})
	points := make([]IOzonePoint, 0, len(pts))
	for i, c := range pts {
		points = append(points, IOzonePoint{
			Threads: c[0] + 1, RecordSize: 128 << 10,
			Design: rpcrdma.ReadWrite, Mode: modes[c[1]], Result: results[i],
		})
	}
	for t := 1; t <= 8; t++ {
		row := make([]any, 0, len(modes)+1)
		row = append(row, t)
		for m := range modes {
			row = append(row, results[(t-1)*len(modes)+m].Read.MBps)
		}
		read.AddRow(row...)
		row = row[:1]
		for m := range modes {
			row = append(row, results[(t-1)*len(modes)+m].Write.MBps)
		}
		write.AddRow(row...)
		row = row[:1]
		for m := range modes {
			row = append(row, results[(t-1)*len(modes)+m].Read.ClientCPUPct)
		}
		cpu.AddRow(row...)
	}
	return points
}

// Figure8 reproduces Fig. 8: the FileBench-style OLTP workload (mean I/O
// 128 KiB) under the registration schemes, throughput (ops/s) and client
// CPU µs/op versus number of readers.
type Figure8 struct {
	Table  *stats.Table
	Series map[memreg.Mode][]OLTPPoint
}

// OLTPPoint is one OLTP measurement.
type OLTPPoint struct {
	Readers int
	Mode    memreg.Mode
	Result  workload.OLTPResult
}

// RunFigure8 executes the sweep.
func RunFigure8(scale Scale) *Figure8 {
	out := &Figure8{
		Table:  stats.NewTable("Figure 8: FileBench OLTP (mean I/O 128 KiB), Solaris", "readers", "Register ops/s", "FMR ops/s", "Cache ops/s", "Register uscpu/op", "Cache uscpu/op"),
		Series: map[memreg.Mode][]OLTPPoint{},
	}
	duration := 2 * time.Second
	if scale > 1 {
		duration = time.Duration(int64(duration) / int64(scale))
	}
	readerCounts := []int{50, 100, 150, 200}
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.Cache}
	pts := runner.Grid(len(readerCounts), len(modes))
	results := pmap(len(pts), func(i int) workload.OLTPResult {
		c := pts[i]
		readers := readerCounts[c[0]]
		cluster := core.NewCluster(core.Config{
			Profile:   profiles.SolarisSDR(),
			Transport: core.TransportRDMA,
			Design:    rpcrdma.ReadWrite,
			RegMode:   modes[c[1]],
		})
		var res workload.OLTPResult
		var err error
		cluster.Start("oltp-driver", func(p *des.Proc) {
			res, err = workload.RunOLTP(p, cluster, workload.OLTPConfig{
				Readers: readers, Writers: readers / 10, MeanIO: 128 << 10,
				FileSize: scale.div64(512 << 20), Duration: duration, Seed: uint64(readers),
			})
		})
		cluster.Run()
		if err != nil {
			panic(fmt.Sprintf("experiments: oltp failed: %v", err))
		}
		return res
	})
	at := func(r, m int) workload.OLTPResult { return results[r*len(modes)+m] }
	for ri, readers := range readerCounts {
		for mi, mode := range modes {
			out.Series[mode] = append(out.Series[mode], OLTPPoint{Readers: readers, Mode: mode, Result: at(ri, mi)})
		}
		out.Table.AddRow(readers,
			at(ri, 0).OpsPerSec, at(ri, 1).OpsPerSec, at(ri, 2).OpsPerSec,
			at(ri, 0).ClientUSPerOp, at(ri, 2).ClientUSPerOp)
	}
	return out
}

// Figure9 reproduces Fig. 9: registration strategies on the Linux port —
// all-physical yields the best READ throughput but degrades WRITE through
// physical fragmentation hitting the IRD/ORD limit.
type Figure9 struct {
	Points []IOzonePoint
	Read   *stats.Table
	Write  *stats.Table
	CPU    *stats.Table
}

// RunFigure9 executes the sweep.
func RunFigure9(scale Scale) *Figure9 {
	out := &Figure9{
		Read:  stats.NewTable("Figure 9a: IOzone Read bandwidth by registration strategy, Linux (MB/s)", "threads", "Register", "FMR", "All-Physical"),
		Write: stats.NewTable("Figure 9b: IOzone Write bandwidth by registration strategy, Linux (MB/s)", "threads", "Register", "FMR", "All-Physical"),
		CPU:   stats.NewTable("Figure 9: client CPU utilization, read phase (%)", "threads", "Register", "FMR", "All-Physical"),
	}
	modes := []memreg.Mode{memreg.Regular, memreg.FMR, memreg.AllPhysical}
	out.Points = regStrategySweep(scale, profiles.LinuxSDR, modes, out.Read, out.Write, out.CPU)
	return out
}

// Figure10 reproduces Fig. 10: multi-client aggregate read bandwidth with
// the RAID-0 back end, RDMA vs NFS/TCP on IPoIB and GigE, server page cache
// of 4 GB (a) and 8 GB (b).
type Figure10 struct {
	Table  *stats.Table
	Series map[core.Transport][]MultiClientPoint
}

// MultiClientPoint is one multi-client measurement.
type MultiClientPoint struct {
	Clients   int
	Transport core.Transport
	Result    workload.MultiClientResult
}

// RunFigure10 executes one server-memory configuration. serverMemBytes is
// the machine's RAM; roughly 1 GB goes to the kernel and daemons, the rest
// to the page cache.
func RunFigure10(scale Scale, serverMemBytes int64, maxClients int) *Figure10 {
	out := &Figure10{
		Table: stats.NewTable(
			fmt.Sprintf("Figure 10 (%d GB server): multi-client IOzone aggregate Read bandwidth (MB/s)", serverMemBytes>>30),
			"clients", "RDMA", "IPoIB", "GigE"),
		Series: map[core.Transport][]MultiClientPoint{},
	}
	cacheBytes := scale.div64(serverMemBytes - 1<<30)
	fileSize := scale.div64(1 << 30)
	transports := []core.Transport{core.TransportRDMA, core.TransportIPoIB, core.TransportGigE}
	pts := runner.Grid(maxClients, len(transports))
	results := pmap(len(pts), func(i int) workload.MultiClientResult {
		c := pts[i]
		cluster := core.NewCluster(core.Config{
			Profile:        profiles.LinuxDDR(),
			Transport:      transports[c[1]],
			Design:         rpcrdma.ReadWrite,
			RegMode:        memreg.AllPhysical,
			Clients:        c[0] + 1,
			Backend:        core.BackendDisk,
			PageCacheBytes: cacheBytes,
		})
		var res workload.MultiClientResult
		var err error
		cluster.Start("multiclient-driver", func(p *des.Proc) {
			res, err = workload.RunMultiClient(p, cluster, workload.MultiClientConfig{
				FileSize: fileSize, RecordSize: 1 << 20,
			})
		})
		cluster.Run()
		if err != nil {
			panic(fmt.Sprintf("experiments: multiclient failed: %v", err))
		}
		return res
	})
	at := func(cl, tr int) workload.MultiClientResult { return results[(cl-1)*len(transports)+tr] }
	for clients := 1; clients <= maxClients; clients++ {
		for ti, tr := range transports {
			out.Series[tr] = append(out.Series[tr], MultiClientPoint{Clients: clients, Transport: tr, Result: at(clients, ti)})
		}
		out.Table.AddRow(clients,
			at(clients, 0).AggregateReadMBps,
			at(clients, 1).AggregateReadMBps,
			at(clients, 2).AggregateReadMBps)
	}
	return out
}

// Table1 renders the communication-primitive property matrix, verified by
// the fabric's semantic tests (internal/ibsim).
func Table1() *stats.Table {
	t := stats.NewTable("Table 1: Communication primitive properties",
		"property", "Channel (Send/Recv)", "Memory (RDMA R/W)")
	t.AddRow("Receive buffer exposed", "no", "yes")
	t.AddRow("Receive buffer pre-posted", "yes", "no")
	t.AddRow("Steering tag", "no", "yes")
	t.AddRow("Rendezvous (addr+stag exchange)", "no", "yes")
	return t
}
