package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// SeriesData is one exported series: values aligned to the report's sample
// clock starting at index Start (a series registered mid-run has no samples
// before that).
type SeriesData struct {
	Name   string    `json:"name"`
	Kind   string    `json:"kind"`
	Start  int       `json:"start"`
	Values []float64 `json:"values"`
}

// Report is an immutable snapshot of an engine's series plus any detector
// findings, ready for export. Building one after the run keeps the engine's
// sample path free of formatting work.
type Report struct {
	IntervalUS float64      `json:"interval_us"`
	TimesS     []float64    `json:"times_s"`
	Series     []SeriesData `json:"series"`
	Findings   []Finding    `json:"findings"`
}

// Report snapshots the engine's retained samples into an exportable form.
// Series appear in registration order; a nil engine yields an empty report.
func (e *Engine) Report() *Report {
	r := &Report{}
	if e == nil || e.count == 0 {
		return r
	}
	r.IntervalUS = float64(e.interval) / 1e3
	first := 0
	if e.count > e.capacity {
		first = e.count - e.capacity
	}
	for j := first; j < e.count; j++ {
		r.TimesS = append(r.TimesS, float64(e.times[j%e.capacity])/1e9)
	}
	for _, s := range e.series {
		sd := SeriesData{Name: s.Name, Kind: s.Kind.String()}
		lo := first
		if s.start > lo {
			lo = s.start
		}
		sd.Start = lo - first
		for j := lo; j < e.count; j++ {
			sd.Values = append(sd.Values, s.vals[(j-s.start)%e.capacity])
		}
		r.Series = append(r.Series, sd)
	}
	return r
}

// Get returns the named series, or nil.
func (r *Report) Get(name string) *SeriesData {
	if r == nil {
		return nil
	}
	for i := range r.Series {
		if r.Series[i].Name == name {
			return &r.Series[i]
		}
	}
	return nil
}

// at returns the series value at report sample index j, and whether the
// series had a sample there.
func (sd *SeriesData) at(j int) (float64, bool) {
	if sd == nil || j < sd.Start || j-sd.Start >= len(sd.Values) {
		return 0, false
	}
	return sd.Values[j-sd.Start], true
}

// WriteCSV writes the report as one row per sample: a time_s column then
// one column per series (registration order). Cells before a series'
// registration are empty. Output is byte-stable for a deterministic run.
func (r *Report) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("time_s")
	for _, s := range r.Series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	for j, t := range r.TimesS {
		fmt.Fprintf(&b, "%.9f", t)
		for i := range r.Series {
			b.WriteByte(',')
			if v, ok := r.Series[i].at(j); ok {
				fmt.Fprintf(&b, "%.6g", v)
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON writes the full report (series and findings) as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// sparkRunes are the eight vertical-bar glyphs a sparkline is built from.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkWidth is the fixed dashboard sparkline width; longer series are
// bucket-max downsampled into it.
const sparkWidth = 32

// sparkline renders vals as a fixed-width bar string normalized to the
// series' own [min, max] range.
func sparkline(vals []float64) string {
	if len(vals) == 0 {
		return ""
	}
	width := sparkWidth
	if len(vals) < width {
		width = len(vals)
	}
	lo, hi := vals[0], vals[0]
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		// Bucket [start, end) of samples feeding column c; keep the max so
		// short spikes survive downsampling.
		start := c * len(vals) / width
		end := (c + 1) * len(vals) / width
		if end <= start {
			end = start + 1
		}
		v := vals[start]
		for _, x := range vals[start:end] {
			if x > v {
				v = x
			}
		}
		idx := 0
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// seriesStats returns (min, mean, max, last) of vals.
func seriesStats(vals []float64) (lo, mean, hi, last float64) {
	if len(vals) == 0 {
		return
	}
	lo, hi = vals[0], vals[0]
	var sum float64
	for _, v := range vals {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
		sum += v
	}
	return lo, sum / float64(len(vals)), hi, vals[len(vals)-1]
}

// Dashboard renders an aligned text view: one sparkline row per series
// (all-zero series are elided) followed by the findings. Deterministic for
// a deterministic run.
func (r *Report) Dashboard() string {
	var b strings.Builder
	if r == nil || len(r.TimesS) == 0 {
		return "telemetry: no samples\n"
	}
	span := r.TimesS[len(r.TimesS)-1] - r.TimesS[0]
	fmt.Fprintf(&b, "telemetry: %d samples @ %.0fµs over %.3fms\n",
		len(r.TimesS), r.IntervalUS, span*1e3)
	nameW := 0
	for _, s := range r.Series {
		if len(s.Name) > nameW {
			nameW = len(s.Name)
		}
	}
	for _, s := range r.Series {
		lo, mean, hi, last := seriesStats(s.Values)
		if lo == 0 && hi == 0 {
			continue // never moved; keep the dashboard readable
		}
		spark := sparkline(s.Values)
		// Pad by rune count: the bar glyphs are multi-byte, so %-*s would
		// misalign the stat columns.
		pad := strings.Repeat(" ", sparkWidth-len([]rune(spark)))
		fmt.Fprintf(&b, "  %-*s %s%s  min %.6g  mean %.6g  max %.6g  last %.6g\n",
			nameW, s.Name, spark, pad, lo, mean, hi, last)
	}
	if len(r.Findings) > 0 {
		b.WriteString("findings:\n")
		for _, f := range r.Findings {
			b.WriteString("  " + f.String() + "\n")
		}
	}
	return b.String()
}
