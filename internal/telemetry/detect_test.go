package telemetry

import (
	"strings"
	"testing"
)

// synthReport builds a report with n samples at 100µs spacing and the given
// named series, all starting at index 0.
func synthReport(n int, series map[string][]float64) *Report {
	r := &Report{IntervalUS: 100}
	for j := 0; j < n; j++ {
		r.TimesS = append(r.TimesS, float64(j)*100e-6)
	}
	// Deterministic order: fixed list keeps tests stable regardless of map
	// iteration.
	for _, name := range []string{"p99", "inflight", "rate", "occ"} {
		if vals, ok := series[name]; ok {
			r.Series = append(r.Series, SeriesData{Name: name, Kind: "gauge", Values: vals})
		}
	}
	return r
}

func TestDetectKneeOnset(t *testing.T) {
	// 16 windows: quiet p99 ~100µs for 8, then a sustained jump to 400µs
	// while inflight plateaus at its max.
	p99 := make([]float64, 16)
	infl := make([]float64, 16)
	for j := 0; j < 16; j++ {
		if j < 8 {
			p99[j] = 100
			infl[j] = 10
		} else {
			p99[j] = 400
			infl[j] = 100
		}
	}
	r := synthReport(16, map[string][]float64{"p99": p99, "inflight": infl})
	f, ok := r.DetectKneeOnset("p99", "inflight")
	if !ok {
		t.Fatal("knee not detected")
	}
	if f.Detector != "knee-onset" || f.StartS != r.TimesS[8] || f.Value != r.TimesS[8] {
		t.Fatalf("onset = %+v, want start at sample 8 (%.6fs)", f, r.TimesS[8])
	}
}

func TestDetectKneeOnsetQuietRun(t *testing.T) {
	// Flat p99, inflight never plateaus relative to its max rise: no knee.
	p99 := make([]float64, 16)
	infl := make([]float64, 16)
	for j := 0; j < 16; j++ {
		p99[j] = 100
		infl[j] = float64(j)
	}
	r := synthReport(16, map[string][]float64{"p99": p99, "inflight": infl})
	if f, ok := r.DetectKneeOnset("p99", "inflight"); ok {
		t.Fatalf("knee detected on a quiet run: %+v", f)
	}
}

func TestDetectKneeOnsetShortSpike(t *testing.T) {
	// A 2-window spike must not trip the kneeSustain=3 requirement.
	p99 := []float64{100, 100, 100, 100, 100, 100, 400, 400, 100, 100, 100, 100}
	infl := []float64{50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50, 50}
	r := synthReport(12, map[string][]float64{"p99": p99, "inflight": infl})
	if f, ok := r.DetectKneeOnset("p99", "inflight"); ok {
		t.Fatalf("knee detected on a 2-window spike: %+v", f)
	}
}

func TestDetectAboveThreshold(t *testing.T) {
	occ := []float64{0, 0, 0.95, 0.97, 1.0, 0.2, 0, 0.96, 0, 0.99, 0.99, 0.99}
	r := synthReport(12, map[string][]float64{"occ": occ})
	fs := r.DetectAboveThreshold("credit-starve", "occ", 0.95, 2)
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2: %+v", len(fs), fs)
	}
	if fs[0].StartS != r.TimesS[2] || fs[0].EndS != r.TimesS[4] || fs[0].Value != 1.0 {
		t.Fatalf("first window = %+v", fs[0])
	}
	if fs[1].StartS != r.TimesS[9] || fs[1].EndS != r.TimesS[11] {
		t.Fatalf("second window = %+v", fs[1])
	}
}

func TestDetectSLOBurn(t *testing.T) {
	p99 := []float64{100, 100, 300, 300, 100, 300, 100, 100}
	r := synthReport(8, map[string][]float64{"p99": p99})
	f, ok := r.DetectSLOBurn("p99", 200)
	if !ok {
		t.Fatal("no SLO burn finding")
	}
	if f.Value != 3.0/8.0 {
		t.Fatalf("burn fraction = %v, want 0.375", f.Value)
	}
	if _, ok := r.DetectSLOBurn("p99", 1000); ok {
		t.Fatal("burn reported under a generous budget")
	}
}

func TestAnnotateFaults(t *testing.T) {
	// Rate: healthy 100/s, crash at sample 6 drops to 0 until sample 10,
	// recovers to 80 after.
	rate := []float64{100, 100, 100, 100, 100, 100, 0, 0, 0, 0, 80, 90, 100, 100}
	r := synthReport(14, map[string][]float64{"rate": rate})
	faults := []FaultWindow{
		{Name: "crash srv", StartS: r.TimesS[6], EndS: r.TimesS[9]},
		{Name: "qperr late", StartS: r.TimesS[13], EndS: r.TimesS[13] + 1},
	}
	fs := r.AnnotateFaults(faults, "rate")
	if len(fs) != 2 {
		t.Fatalf("got %d findings, want 2", len(fs))
	}
	// First fault: recovery at sample 10 (first rate >= 50 at/after EndS).
	want := r.TimesS[10] - r.TimesS[6]
	if fs[0].Value != want {
		t.Fatalf("recovery duration = %v, want %v (%+v)", fs[0].Value, want, fs[0])
	}
	if !strings.Contains(fs[0].Detail, "recovered in") {
		t.Fatalf("detail = %q", fs[0].Detail)
	}
	// Second fault window extends past the run: unrecovered.
	if fs[1].Value != -1 || !strings.Contains(fs[1].Detail, "not recovered") {
		t.Fatalf("late fault = %+v, want unrecovered", fs[1])
	}
}

func TestDetectorsMissingSeries(t *testing.T) {
	r := synthReport(8, map[string][]float64{})
	if _, ok := r.DetectKneeOnset("p99", "inflight"); ok {
		t.Fatal("knee on empty report")
	}
	if fs := r.DetectAboveThreshold("x", "occ", 1, 1); fs != nil {
		t.Fatal("threshold findings on empty report")
	}
	if _, ok := r.DetectSLOBurn("p99", 1); ok {
		t.Fatal("SLO burn on empty report")
	}
	if fs := r.AnnotateFaults([]FaultWindow{{Name: "f"}}, "rate"); fs != nil {
		t.Fatal("fault annotation on empty report")
	}
}
