package telemetry

import (
	"fmt"
	"sort"
)

// Finding is one detector verdict anchored to a virtual-time window of the
// run. Detectors are pure functions of a Report's series, so findings are
// byte-identical across same-seed runs.
type Finding struct {
	Detector string  `json:"detector"`
	Series   string  `json:"series,omitempty"`
	StartS   float64 `json:"start_s"`
	EndS     float64 `json:"end_s"`
	Value    float64 `json:"value"`
	Detail   string  `json:"detail"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%-16s t=[%.6fs, %.6fs]  %s", f.Detector, f.StartS, f.EndS, f.Detail)
}

// Knee-onset detection constants. Onset is declared at the first sample
// from which kneeSustain consecutive windows all show p99 at least
// kneeRiseRatio times the early-run baseline while in-flight requests sit
// within kneePlateauRatio of their run maximum — the open-loop signature of
// a server past its knee: latency climbing because queues, not load, grow.
const (
	kneeRiseRatio    = 2.0
	kneePlateauRatio = 0.6
	kneeSustain      = 3
)

// median returns the median of vs (0 for an empty slice). vs is copied.
func median(vs []float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	s := append([]float64(nil), vs...)
	sort.Float64s(s)
	return s[len(s)/2]
}

// DetectKneeOnset walks a windowed p99 series against an in-flight gauge
// and reports the saturation-knee onset time: sustained p99 rise over the
// early-run baseline coinciding with an in-flight plateau. Returns false
// when the run never saturates (or is too short to judge).
func (r *Report) DetectKneeOnset(p99Name, inflightName string) (Finding, bool) {
	p99 := r.Get(p99Name)
	infl := r.Get(inflightName)
	if p99 == nil || infl == nil || len(r.TimesS) < 2*kneeSustain {
		return Finding{}, false
	}
	n := len(r.TimesS)

	// Baseline: median of the positive p99 samples in the first quarter of
	// the run (the pre-knee service latency). A run that saturates from the
	// first window has no quiet quarter; fall back to the smallest positive
	// sample so onset is still reportable.
	q := n / 4
	if q < 2 {
		q = 2
	}
	var early []float64
	for j := 0; j < q && j < n; j++ {
		if v, ok := p99.at(j); ok && v > 0 {
			early = append(early, v)
		}
	}
	baseline := median(early)
	if baseline == 0 {
		for j := 0; j < n; j++ {
			if v, ok := p99.at(j); ok && v > 0 && (baseline == 0 || v < baseline) {
				baseline = v
			}
		}
	}
	if baseline == 0 {
		return Finding{}, false
	}

	maxInfl := 0.0
	for j := 0; j < n; j++ {
		if v, ok := infl.at(j); ok && v > maxInfl {
			maxInfl = v
		}
	}
	if maxInfl == 0 {
		return Finding{}, false
	}

	saturated := func(j int) bool {
		p, okP := p99.at(j)
		f, okF := infl.at(j)
		return okP && okF && p >= kneeRiseRatio*baseline && f >= kneePlateauRatio*maxInfl
	}
	for j := 0; j+kneeSustain <= n; j++ {
		run := true
		for k := j; k < j+kneeSustain; k++ {
			if !saturated(k) {
				run = false
				break
			}
		}
		if run {
			p, _ := p99.at(j)
			return Finding{
				Detector: "knee-onset",
				Series:   p99Name,
				StartS:   r.TimesS[j],
				EndS:     r.TimesS[n-1],
				Value:    r.TimesS[j],
				Detail: fmt.Sprintf("sustained p99 rise with inflight plateau (baseline %.6gµs, p99 %.6gµs, inflight >= %.6g)",
					baseline, p, kneePlateauRatio*maxInfl),
			}, true
		}
	}
	return Finding{}, false
}

// DetectAboveThreshold reports every window where the named series sat at
// or above threshold for at least minRun consecutive samples — the
// starvation-window primitive (SRQ starvation via a starved-rate series,
// credit starvation via an occupancy gauge).
func (r *Report) DetectAboveThreshold(detector, seriesName string, threshold float64, minRun int) []Finding {
	sd := r.Get(seriesName)
	if sd == nil {
		return nil
	}
	if minRun < 1 {
		minRun = 1
	}
	var out []Finding
	n := len(r.TimesS)
	for j := 0; j < n; {
		v, ok := sd.at(j)
		if !ok || v < threshold {
			j++
			continue
		}
		start := j
		peak := v
		for j < n {
			v, ok = sd.at(j)
			if !ok || v < threshold {
				break
			}
			if v > peak {
				peak = v
			}
			j++
		}
		if j-start >= minRun {
			out = append(out, Finding{
				Detector: detector,
				Series:   seriesName,
				StartS:   r.TimesS[start],
				EndS:     r.TimesS[j-1],
				Value:    peak,
				Detail: fmt.Sprintf("%s >= %.6g for %d windows (peak %.6g)",
					seriesName, threshold, j-start, peak),
			})
		}
	}
	return out
}

// DetectSLOBurn reports the fraction of sampled windows whose p99 exceeded
// budgetUS. Windows before the series registered are excluded; a zero-burn
// run yields no finding.
func (r *Report) DetectSLOBurn(p99Name string, budgetUS float64) (Finding, bool) {
	sd := r.Get(p99Name)
	if sd == nil || len(sd.Values) == 0 {
		return Finding{}, false
	}
	over := 0
	for _, v := range sd.Values {
		if v > budgetUS {
			over++
		}
	}
	if over == 0 {
		return Finding{}, false
	}
	frac := float64(over) / float64(len(sd.Values))
	n := len(r.TimesS)
	return Finding{
		Detector: "slo-burn",
		Series:   p99Name,
		StartS:   r.TimesS[0],
		EndS:     r.TimesS[n-1],
		Value:    frac,
		Detail: fmt.Sprintf("p99 over %.6gµs budget in %d/%d windows (%.1f%%)",
			budgetUS, over, len(sd.Values), frac*100),
	}, true
}

// FaultWindow is one injected fault's span of virtual time, in seconds
// (Start == End for instantaneous faults like QP kills and link flaps).
// The chaos schedule converts to this form so telemetry stays independent
// of the chaos package.
type FaultWindow struct {
	Name   string
	StartS float64
	EndS   float64
}

// recoveredRatio is the fraction of the pre-fault baseline rate at which a
// post-fault window counts as recovered.
const recoveredRatio = 0.5

// AnnotateFaults overlays fault windows on an op-rate series and measures
// each fault's recovery time: from fault onset until the rate first returns
// to recoveredRatio of its pre-fault baseline at or after the fault clears.
// A fault the run never recovers from is annotated with Value -1. One
// finding is emitted per fault, in schedule order.
func (r *Report) AnnotateFaults(faults []FaultWindow, rateSeries string) []Finding {
	sd := r.Get(rateSeries)
	if sd == nil || len(r.TimesS) == 0 {
		return nil
	}
	n := len(r.TimesS)
	var out []Finding
	for _, f := range faults {
		// Baseline: median positive rate before the fault hit.
		var pre []float64
		for j := 0; j < n && r.TimesS[j] < f.StartS; j++ {
			if v, ok := sd.at(j); ok && v > 0 {
				pre = append(pre, v)
			}
		}
		baseline := median(pre)
		if baseline == 0 {
			// Fault before the workload produced anything measurable: fall
			// back to the whole run's median so early faults still annotate.
			var all []float64
			for j := 0; j < n; j++ {
				if v, ok := sd.at(j); ok && v > 0 {
					all = append(all, v)
				}
			}
			baseline = median(all)
		}
		fd := Finding{
			Detector: "chaos-recovery",
			Series:   rateSeries,
			StartS:   f.StartS,
			EndS:     r.TimesS[n-1],
			Value:    -1,
			Detail:   fmt.Sprintf("%s: not recovered within the sampled run", f.Name),
		}
		if baseline > 0 {
			for j := 0; j < n; j++ {
				if r.TimesS[j] < f.EndS {
					continue
				}
				if v, ok := sd.at(j); ok && v >= recoveredRatio*baseline {
					fd.EndS = r.TimesS[j]
					fd.Value = fd.EndS - f.StartS
					fd.Detail = fmt.Sprintf("%s: recovered in %.6fs (rate %.6g >= %.6g)",
						f.Name, fd.Value, v, recoveredRatio*baseline)
					break
				}
			}
		}
		out = append(out, fd)
	}
	return out
}
