package telemetry

import (
	"testing"
	"time"

	"repro/internal/des"
)

// benchEngine builds an engine with a probe mix shaped like a real cluster:
// gauges, rate counters and latency windows across several layers.
func benchEngine() (*Engine, []*Window) {
	sim := des.New()
	e := New(sim, Options{Interval: 100 * time.Microsecond})
	var c1, c2, c3, g1, g2 float64
	for _, name := range []string{"ibsim.srq_avail", "rpcrdma.inflight", "cpu.utilization"} {
		n := name
		e.Gauge(n, func() float64 { g1++; return g1 + g2 })
	}
	for _, name := range []string{"rpcrdma.requests", "oncrpc.drc_hits", "nfs3.read_ops", "nfs3.write_ops"} {
		n := name
		_ = n
		e.Counter(name, func() float64 { c1 += 3; return c1 + c2 + c3 })
	}
	var ws []*Window
	for _, name := range []string{"workload.lat", "workload.write_lat"} {
		ws = append(ws, e.LatencyWindow(name))
	}
	return e, ws
}

// TestSampleAllocFree pins the acceptance criterion: the steady-state sample
// path performs zero allocations.
func TestSampleAllocFree(t *testing.T) {
	e, ws := benchEngine()
	var now int64
	// Prime rate series and wrap the ring once so the measured path is pure
	// steady state.
	for i := 0; i < e.capacity+8; i++ {
		now += 100_000
		e.sampleOnce(now)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for _, w := range ws {
			w.Observe(42)
			w.Observe(137)
		}
		now += 100_000
		e.sampleOnce(now)
	})
	if allocs != 0 {
		t.Fatalf("sample path allocates %v allocs/op, want 0", allocs)
	}
}

// BenchmarkTelemetrySample measures one engine tick over the representative
// probe set; run with -benchmem to see the pinned 0 allocs/op.
func BenchmarkTelemetrySample(b *testing.B) {
	e, ws := benchEngine()
	var now int64
	for i := 0; i < e.capacity+8; i++ {
		now += 100_000
		e.sampleOnce(now)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, w := range ws {
			w.Observe(42)
			w.Observe(137)
		}
		now += 100_000
		e.sampleOnce(now)
	}
}
