// Package telemetry is the simulator's virtual-time time-series layer: a
// sampling engine that polls registered probes — gauges and cumulative
// counters from every layer of the stack — on a des timer and records them
// into fixed-capacity ring-buffer series. Where the trace layer answers
// "what happened to this one request", telemetry answers "what was the
// system doing between t=0 and t=end": credit starvation onset, SRQ pool
// drain, the saturation knee forming, chaos fault windows and the recovery
// after them.
//
// Design constraints mirror internal/trace, in order:
//
//  1. Disabled telemetry must cost a nil check. All methods are safe on a
//     nil receiver — a nil *Engine IS the disabled state — so workloads
//     call Observe/Start/Stop unconditionally.
//  2. The steady-state sample path must not allocate. Probes are closures
//     registered up front (allocation at registration time is fine); one
//     sample tick iterates a preallocated slice and writes into
//     preallocated rings. BenchmarkTelemetrySample pins allocs/op at zero.
//  3. Sampling must not perturb the simulation. Probes only read state;
//     the sampler's timer events interleave with workload events but never
//     reorder them (the kernel's heap is keyed by time then sequence), so
//     same-seed runs stay byte-identical with telemetry on or off.
//
// On top of the series sit a run-report builder (CSV/JSON export, an
// aligned text dashboard of sparkline windows — report.go) and detectors
// that walk the series to emit findings (saturation-knee onset, starvation
// windows, SLO burn, chaos fault annotation — detect.go).
package telemetry

import (
	"time"

	"repro/internal/des"
	"repro/internal/stats"
)

// Kind distinguishes how a probe's readings become series values.
type Kind uint8

const (
	// Gauge samples the probe's instantaneous value.
	Gauge Kind = iota
	// Rate samples a cumulative counter and stores the per-second rate of
	// change over the elapsed interval. A reading below the previous one
	// (counter reset across a server restart or window reset) restarts the
	// baseline instead of going negative.
	Rate
)

func (k Kind) String() string {
	if k == Rate {
		return "rate"
	}
	return "gauge"
}

// Options parameterizes an Engine.
type Options struct {
	// Interval is the virtual-time sampling period (default 100µs).
	Interval des.Duration

	// Capacity is the per-series ring size in samples (default 4096);
	// older samples are overwritten once a run outlives the ring.
	Capacity int
}

// DefaultInterval is the sampling period used when Options.Interval is
// non-positive.
const DefaultInterval = 100 * time.Microsecond

// DefaultCapacity is the ring size used when Options.Capacity is
// non-positive: at the default interval it holds ~400ms of virtual time.
const DefaultCapacity = 4096

// Series is one named time series: a probe plus the ring of sampled
// values. Values align with the engine's shared sample clock; a series
// registered after sampling began simply starts at a later sample index.
type Series struct {
	Name string
	Kind Kind

	probe func() float64
	vals  []float64
	start int // engine sample count at registration

	// Rate state.
	prev   float64
	primed bool
}

// Window is a per-interval latency aggregator: Observe feeds a histogram
// that is quantile-sampled and reset on every engine tick, yielding p50/p99
// series (µs) plus an observation-rate series. All methods are safe on a
// nil receiver.
type Window struct {
	hist  stats.Histogram
	total int64 // cumulative observations (feeds the rate series)
}

// Observe records one latency sample in microseconds.
func (w *Window) Observe(us float64) {
	if w == nil {
		return
	}
	w.hist.Observe(us)
	w.total++
}

// Engine is one simulation's telemetry instance. It inherits the
// simulation's single-threaded discipline: registration and sampling happen
// on simulation processes, readers (Report) run after the simulation
// completes. All methods are safe on a nil receiver.
type Engine struct {
	sim      *des.Sim
	interval des.Duration
	capacity int

	series    []*Series
	byName    map[string]*Series
	windows   []*Window
	winByName map[string]*Window

	times []int64 // shared sample clock ring, virtual ns
	count int     // samples taken (may exceed capacity)
	lastT int64

	running bool
	// gen identifies the current sampler incarnation. Each Start bumps it
	// and the spawned loop captures the value; a loop whose generation no
	// longer matches exits without sampling. This is what makes
	// Stop-then-Start safe: the old sampler may not see the stop until its
	// next timer tick, and by then a restart has already spawned its
	// replacement — without the generation check both would keep sampling
	// forever, doubling the tick rate off-phase.
	gen int
}

// New creates an engine bound to sim. The engine does not sample until
// Start is called (typically by the workload at measurement start).
func New(sim *des.Sim, opts Options) *Engine {
	if opts.Interval <= 0 {
		opts.Interval = DefaultInterval
	}
	if opts.Capacity <= 0 {
		opts.Capacity = DefaultCapacity
	}
	return &Engine{
		sim:       sim,
		interval:  opts.Interval,
		capacity:  opts.Capacity,
		byName:    make(map[string]*Series),
		winByName: make(map[string]*Window),
		times:     make([]int64, opts.Capacity),
	}
}

// Interval returns the sampling period (zero on a nil engine).
func (e *Engine) Interval() des.Duration {
	if e == nil {
		return 0
	}
	return e.interval
}

// Samples returns how many sample ticks have run.
func (e *Engine) Samples() int {
	if e == nil {
		return 0
	}
	return e.count
}

// register adds a series under name, or re-points an existing one's probe
// (a workload re-run on the same cluster re-registers its series).
func (e *Engine) register(name string, kind Kind, probe func() float64) *Series {
	if e == nil {
		return nil
	}
	if s := e.byName[name]; s != nil {
		s.probe = probe
		return s
	}
	s := &Series{
		Name:  name,
		Kind:  kind,
		probe: probe,
		vals:  make([]float64, e.capacity),
		start: e.count,
	}
	e.series = append(e.series, s)
	e.byName[name] = s
	return s
}

// Gauge registers an instantaneous-value probe under name (convention:
// "layer.metric"). Safe on a nil receiver (returns nil).
func (e *Engine) Gauge(name string, probe func() float64) *Series {
	return e.register(name, Gauge, probe)
}

// Counter registers a cumulative-counter probe under name; its series holds
// per-second rates. Safe on a nil receiver (returns nil).
func (e *Engine) Counter(name string, probe func() float64) *Series {
	return e.register(name, Rate, probe)
}

// LatencyWindow registers a per-interval latency aggregator producing the
// series name.p50_us, name.p99_us and name.rate. A repeat call with the
// same name returns the existing Window, mirroring register's re-point
// semantics — a workload re-run on the same cluster must not leak a second
// aggregator (reset every tick forever) or restart the .rate baseline.
// Safe on a nil receiver (returns nil, whose Observe is a no-op).
func (e *Engine) LatencyWindow(name string) *Window {
	if e == nil {
		return nil
	}
	if w := e.winByName[name]; w != nil {
		return w
	}
	w := &Window{}
	e.register(name+".p50_us", Gauge, func() float64 { return w.hist.Quantile(0.50) })
	e.register(name+".p99_us", Gauge, func() float64 { return w.hist.Quantile(0.99) })
	e.register(name+".rate", Rate, func() float64 { return float64(w.total) })
	e.windows = append(e.windows, w)
	e.winByName[name] = w
	return w
}

// Start begins sampling: an immediate baseline sample, then one every
// interval until Stop. Idempotent while running; restarting after Stop
// resumes on the same rings. The new sampler supersedes any stopped one
// still waiting out its final timer tick (see Engine.gen).
func (e *Engine) Start(p *des.Proc) {
	if e == nil || e.running {
		return
	}
	e.running = true
	e.gen++
	gen := e.gen
	e.sampleOnce(int64(p.Now()))
	e.sim.Spawn("telemetry-sampler", func(sp *des.Proc) {
		for {
			sp.Sleep(e.interval)
			if gen != e.gen || !e.running {
				return
			}
			e.sampleOnce(int64(sp.Now()))
		}
	})
}

// Stop takes one final tail sample at the current instant and stops the
// sampler (it exits on its next timer tick without sampling again).
func (e *Engine) Stop() {
	if e == nil || !e.running {
		return
	}
	e.running = false
	e.sampleOnce(int64(e.sim.Now()))
}

// sampleOnce polls every probe at virtual time now. Allocation-free: it
// writes into preallocated rings and resets window histograms by value.
// A duplicate tick at the same instant (Stop racing the timer) is skipped.
func (e *Engine) sampleOnce(now int64) {
	if e.count > 0 && now == e.lastT {
		return
	}
	dt := float64(now-e.lastT) / 1e9
	e.times[e.count%e.capacity] = now
	for _, s := range e.series {
		v := s.probe()
		out := v
		if s.Kind == Rate {
			d := v - s.prev
			if d < 0 {
				// Counter reset (server restart, measurement-window reset):
				// the new reading is the delta since the reset.
				d = v
			}
			s.prev = v
			if !s.primed || dt <= 0 {
				s.primed = true
				out = 0
			} else {
				out = d / dt
			}
		}
		s.vals[(e.count-s.start)%e.capacity] = out
	}
	for _, w := range e.windows {
		w.hist = stats.Histogram{}
	}
	e.count++
	e.lastT = now
}
