package telemetry

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/des"
)

// TestNilEngineIsDisabled pins the nil-receiver contract: every method of a
// nil engine (and the nil windows/series it hands out) is a no-op.
func TestNilEngineIsDisabled(t *testing.T) {
	var e *Engine
	if e.Interval() != 0 || e.Samples() != 0 {
		t.Fatal("nil engine reported non-zero state")
	}
	if s := e.Gauge("x", func() float64 { return 1 }); s != nil {
		t.Fatal("nil engine returned a series")
	}
	if s := e.Counter("x", func() float64 { return 1 }); s != nil {
		t.Fatal("nil engine returned a series")
	}
	w := e.LatencyWindow("x")
	if w != nil {
		t.Fatal("nil engine returned a window")
	}
	w.Observe(5) // must not panic
	e.Stop()
	r := e.Report()
	if len(r.TimesS) != 0 || len(r.Series) != 0 {
		t.Fatal("nil engine produced samples")
	}
	if got := r.Dashboard(); !strings.Contains(got, "no samples") {
		t.Fatalf("empty dashboard = %q", got)
	}
}

// TestSamplingGaugeAndRate drives a sim where a counter advances at a known
// rate and checks the gauge and rate series against the arithmetic.
func TestSamplingGaugeAndRate(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	var counter, level float64
	e.Counter("test.counter", func() float64 { return counter })
	e.Gauge("test.level", func() float64 { return level })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		for i := 0; i < 5; i++ {
			p.Sleep(10 * time.Microsecond)
			counter += 100 // 100 per 10µs = 1e7/s
			level = float64(i + 1)
		}
		p.Sleep(time.Microsecond)
		e.Stop()
	})
	sim.Run()

	r := e.Report()
	if len(r.TimesS) < 6 {
		t.Fatalf("got %d samples, want >= 6", len(r.TimesS))
	}
	rate := r.Get("test.counter")
	if rate == nil {
		t.Fatal("rate series missing")
	}
	// First sample is the baseline (rate 0); interior samples see 100 per
	// 10µs = 1e7/s. Tick ordering at the shared instants is deterministic
	// (sampler sleeps were scheduled before the driver's), so the sampler
	// reads the counter before the driver bumps it — the exact phase does
	// not matter here, only that steady-state windows report 1e7/s.
	if got := rate.Values[0]; got != 0 {
		t.Fatalf("baseline rate = %v, want 0", got)
	}
	saw := false
	for _, v := range rate.Values[1:] {
		if v > 0.99e7 && v < 1.01e7 {
			saw = true
		}
	}
	if !saw {
		t.Fatalf("no steady-state window at 1e7/s: %v", rate.Values)
	}
	lvl := r.Get("test.level")
	if lvl == nil || lvl.Values[len(lvl.Values)-1] != 5 {
		t.Fatalf("gauge tail = %v, want 5", lvl.Values)
	}
}

// TestRateCounterReset checks that a cumulative probe dropping to zero (a
// server restart wiping its counters) restarts the baseline instead of
// producing a negative rate.
func TestRateCounterReset(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	var counter float64
	e.Counter("test.counter", func() float64 { return counter })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		counter = 500
		p.Sleep(10*time.Microsecond + time.Nanosecond)
		counter = 40 // reset + 40 new events
		p.Sleep(10 * time.Microsecond)
		e.Stop()
	})
	sim.Run()
	for _, v := range e.Report().Get("test.counter").Values {
		if v < 0 {
			t.Fatalf("negative rate after counter reset: %v", v)
		}
	}
}

// TestRingWrap keeps only the newest capacity samples and keeps times and
// values aligned across the wrap.
func TestRingWrap(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond, Capacity: 4})
	// Probe the virtual clock itself: after the wrap, each retained value
	// must equal its own sample time, proving times and values stay aligned.
	e.Gauge("test.clock_s", func() float64 { return sim.Now().Seconds() })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		p.Sleep(90 * time.Microsecond)
		e.Stop()
	})
	sim.Run()
	r := e.Report()
	if len(r.TimesS) != 4 {
		t.Fatalf("retained %d samples, want 4", len(r.TimesS))
	}
	if r.TimesS[0] == 0 {
		t.Fatalf("oldest samples not evicted: times=%v", r.TimesS)
	}
	sd := r.Get("test.clock_s")
	for i, ts := range r.TimesS {
		if v, ok := sd.at(i); !ok || v != ts {
			t.Fatalf("sample %d: value %v misaligned with time %v", i, v, ts)
		}
	}
}

// TestLatencyWindow checks the per-interval quantile series and that the
// window resets between ticks.
func TestLatencyWindow(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	var w *Window
	sim.Spawn("driver", func(p *des.Proc) {
		w = e.LatencyWindow("lat")
		e.Start(p)
		for i := 0; i < 3; i++ {
			// Window i observes latencies around 100*(i+1) µs. Sleep a hair
			// past the sampling interval so each tick sees exactly one batch
			// (at a shared instant the driver runs before the sampler and
			// would merge adjacent batches).
			for k := 0; k < 10; k++ {
				w.Observe(100 * float64(i+1))
			}
			p.Sleep(10*time.Microsecond + 10*time.Nanosecond)
		}
		e.Stop()
	})
	sim.Run()
	r := e.Report()
	p99 := r.Get("lat.p99_us")
	rate := r.Get("lat.rate")
	if p99 == nil || rate == nil {
		t.Fatal("window series missing")
	}
	// Baseline sample at t=0 sees an empty window (Start samples before the
	// driver observes); each subsequent tick sees exactly one batch.
	var distinct []float64
	for _, v := range p99.Values {
		if v > 0 && (len(distinct) == 0 || distinct[len(distinct)-1] != v) {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) < 3 {
		t.Fatalf("windows did not reset between ticks: p99=%v", p99.Values)
	}
	for i := 1; i < len(distinct); i++ {
		if distinct[i] <= distinct[i-1] {
			t.Fatalf("p99 windows out of order: %v", distinct)
		}
	}
	saw := false
	for _, v := range rate.Values {
		if v > 0.99e6 && v < 1.01e6 { // 10 obs / 10µs = 1e6/s
			saw = true
		}
	}
	if !saw {
		t.Fatalf("window rate never hit 1e6/s: %v", rate.Values)
	}
}

// runDeterministic builds one engine over a canned sim and returns its
// CSV, JSON and dashboard bytes.
func runDeterministic(t *testing.T) (string, string, string) {
	t.Helper()
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	var counter float64
	var w *Window
	e.Counter("test.counter", func() float64 { return counter })
	sim.Spawn("driver", func(p *des.Proc) {
		w = e.LatencyWindow("lat")
		e.Start(p)
		for i := 0; i < 6; i++ {
			counter += float64(10 * (i + 1))
			w.Observe(float64(50 * (i + 1)))
			p.Sleep(10 * time.Microsecond)
		}
		e.Stop()
	})
	sim.Run()
	r := e.Report()
	r.Findings = append(r.Findings, r.DetectAboveThreshold("hot", "test.counter", 1, 1)...)
	var csv, js bytes.Buffer
	if err := r.WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	return csv.String(), js.String(), r.Dashboard()
}

// TestExportDeterminism pins byte-identical CSV/JSON/dashboard output for
// identical runs.
func TestExportDeterminism(t *testing.T) {
	c1, j1, d1 := runDeterministic(t)
	c2, j2, d2 := runDeterministic(t)
	if c1 != c2 {
		t.Fatalf("CSV differs:\n%s\n---\n%s", c1, c2)
	}
	if j1 != j2 {
		t.Fatalf("JSON differs:\n%s\n---\n%s", j1, j2)
	}
	if d1 != d2 {
		t.Fatalf("dashboard differs:\n%s\n---\n%s", d1, d2)
	}
	if !strings.HasPrefix(c1, "time_s,test.counter,lat.p50_us,lat.p99_us,lat.rate\n") {
		t.Fatalf("CSV header = %q", strings.SplitN(c1, "\n", 2)[0])
	}
	if !strings.Contains(d1, "findings:") {
		t.Fatalf("dashboard missing findings:\n%s", d1)
	}
}

// TestLateRegistrationPadsCSV checks that a series registered mid-run gets
// empty CSV cells before its first sample, not zeros.
func TestLateRegistrationPadsCSV(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	e.Gauge("early", func() float64 { return 1 })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		p.Sleep(25 * time.Microsecond)
		e.Gauge("late", func() float64 { return 2 })
		p.Sleep(20 * time.Microsecond)
		e.Stop()
	})
	sim.Run()
	var csv bytes.Buffer
	if err := e.Report().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) < 4 {
		t.Fatalf("too few CSV rows:\n%s", csv.String())
	}
	first := strings.Split(lines[1], ",")
	if first[2] != "" {
		t.Fatalf("pre-registration cell = %q, want empty", first[2])
	}
	last := strings.Split(lines[len(lines)-1], ",")
	if last[2] != "2" {
		t.Fatalf("post-registration cell = %q, want 2", last[2])
	}
}

// TestStopStartNoDoubleSampler is the regression test for the
// Start-after-Stop double-sampler leak: Stop's signal was only seen by the
// old sampler on its NEXT timer tick, so a restart landing before that tick
// cleared the signal and spawned a second sampler — both then ran forever,
// doubling the sample rate with off-phase ticks. Post-fix, Samples() must
// advance at exactly one tick per interval after the restart.
func TestStopStartNoDoubleSampler(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	e.Gauge("g", func() float64 { return 1 })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		p.Sleep(15 * time.Microsecond)
		e.Stop() // the old sampler's next tick would land at t=20µs
		p.Sleep(1 * time.Microsecond)
		e.Start(p) // restart at t=16µs, before that tick
		base := e.Samples()
		p.Sleep(100 * time.Microsecond)
		e.Stop()
		// One sampler, restarted at t=16µs: interior ticks at t=26..106µs
		// (9 of them), then the Stop tail sample at t=116µs. A leaked second
		// sampler would roughly double this.
		if got := e.Samples() - base; got != 10 {
			t.Errorf("samples advanced %d over 100µs at a 10µs interval; want 10 (one per interval + tail)", got)
		}
	})
	sim.Run()
}

// TestLatencyWindowReuse is the regression test for the LatencyWindow
// re-registration leak: a second call with the same name used to re-point
// the p50/p99/rate probes at a fresh Window while appending it to
// e.windows — leaking the old aggregator (reset every tick forever) and
// restarting the .rate series' cumulative baseline. It must reuse the
// existing Window, mirroring register's re-point semantics.
func TestLatencyWindowReuse(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	sim.Spawn("driver", func(p *des.Proc) {
		w1 := e.LatencyWindow("lat")
		e.Start(p)
		w1.Observe(100)
		p.Sleep(10*time.Microsecond + 10*time.Nanosecond)
		e.Stop()
		// Second measurement phase on the same engine (a workload re-run on
		// one cluster registers its series again).
		w2 := e.LatencyWindow("lat")
		if w2 != w1 {
			t.Error("LatencyWindow re-registration returned a fresh aggregator")
		}
		if len(e.windows) != 1 {
			t.Errorf("aggregator leak: %d windows registered under one name", len(e.windows))
		}
		e.Start(p)
		w2.Observe(200)
		p.Sleep(10*time.Microsecond + 10*time.Nanosecond)
		e.Stop()
	})
	sim.Run()
	// The reused window's cumulative total spans both phases, so the .rate
	// baseline never restarts and both observation batches are visible.
	rate := e.Report().Get("lat.rate")
	if rate == nil {
		t.Fatal("rate series missing")
	}
	positive := 0
	for _, v := range rate.Values {
		if v < 0 {
			t.Fatalf("negative rate after re-registration: %v", rate.Values)
		}
		if v > 0 {
			positive++
		}
	}
	if positive < 2 {
		t.Fatalf("rate lost a phase's observations: %v", rate.Values)
	}
}

// TestStopStartResumes checks that a second Start (a second measurement
// phase on the same cluster) keeps appending to the same rings.
func TestStopStartResumes(t *testing.T) {
	sim := des.New()
	e := New(sim, Options{Interval: 10 * time.Microsecond})
	e.Gauge("g", func() float64 { return 1 })
	sim.Spawn("driver", func(p *des.Proc) {
		e.Start(p)
		p.Sleep(15 * time.Microsecond)
		e.Stop()
		n1 := e.Samples()
		p.Sleep(100 * time.Microsecond)
		e.Start(p)
		p.Sleep(15 * time.Microsecond)
		e.Stop()
		if e.Samples() <= n1 {
			t.Errorf("second phase added no samples (%d -> %d)", n1, e.Samples())
		}
	})
	sim.Run()
}
