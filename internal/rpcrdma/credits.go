package rpcrdma

import (
	"repro/internal/des"
)

// Credit-based flow control. The RPC/RDMA header carries a credit field
// (Figure 2: "Flow Control Field"); with static credits it simply reports
// the configured receive depth. The paper's future-work section proposes
// dynamic credit management to improve multi-client scalability, which
// Config.DynamicCredits enables: the server advertises its *current*
// capacity in every reply — the configured depth minus reply buffers still
// parked awaiting RDMA_DONE — and the client throttles its in-flight calls
// to the latest grant. Under a buffer-pinning attack (§4.1) honest load
// then backs off before the server wedges.

// creditGate bounds in-flight calls by a grant that can change at runtime
// (a plain counting semaphore cannot shrink). Waiters queue in a ring
// buffer so draining the front drops the fired events instead of pinning
// them in the slice's backing array.
type creditGate struct {
	sim         *des.Sim
	granted     int
	outstanding int
	waiters     des.Ring[*des.Event]
}

func newCreditGate(sim *des.Sim, initial int) *creditGate {
	return &creditGate{sim: sim, granted: initial}
}

// acquire blocks until a credit is available, then consumes it.
func (g *creditGate) acquire(p *des.Proc) {
	for g.outstanding >= g.granted {
		ev := des.NewEvent(g.sim)
		g.waiters.Push(ev)
		ev.Wait(p)
	}
	g.outstanding++
}

// release returns a credit and wakes waiters up to the grant.
func (g *creditGate) release() {
	g.outstanding--
	g.wake()
}

// setGranted installs a new grant (minimum 1: the protocol never revokes
// the last credit, or progress would stop). Outstanding calls above a
// shrunken grant drain naturally; only new calls throttle.
func (g *creditGate) setGranted(n int) {
	if n < 1 {
		n = 1
	}
	if n != g.granted {
		g.granted = n
		g.wake()
	}
}

// wake releases as many queued waiters as the grant currently allows; a
// woken waiter re-checks the condition, so extra wakeups are harmless.
func (g *creditGate) wake() {
	free := g.granted - g.outstanding
	for free > 0 && g.waiters.Len() > 0 {
		g.waiters.Pop().Fire(nil)
		free--
	}
}

// Granted returns the current grant (for tests and metrics).
func (g *creditGate) Granted() int { return g.granted }

// Outstanding returns the in-flight call count.
func (g *creditGate) Outstanding() int { return g.outstanding }
