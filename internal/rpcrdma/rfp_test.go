package rpcrdma

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
	"repro/internal/trace"
)

// rfpEnv is newEnv with a tracer, a DRC, and per-side config overrides —
// the harness for the reply-fetch recovery and exposure tests.
type rfpEnv struct {
	env
	tr *trace.Tracer
}

func newRFPEnv(t *testing.T, ccfg, scfg Config, body func(p *des.Proc, e *env)) *rfpEnv {
	t.Helper()
	sim := des.New()
	tr := trace.New(1 << 20)
	sim.SetTracer(tr)
	fab := ibsim.NewFabric(sim, true)
	nodeCfg := ibsim.NodeConfig{
		Cores: 4, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond,
		RegPerPageCPU: 200 * time.Nanosecond, RegBase: 5 * time.Microsecond, RegPerPageBus: 200 * time.Nanosecond,
		DeregPerPageCPU: 100 * time.Nanosecond, DeregBase: 2 * time.Microsecond, DeregPerPageBus: 100 * time.Nanosecond,
		FMRMapCPU: 100 * time.Nanosecond, WQEOverhead: 300 * time.Nanosecond,
	}
	cCfg, sCfg := nodeCfg, nodeCfg
	cCfg.Name, cCfg.Seed = "client", 11
	sCfg.Name, sCfg.Seed = "server", 22
	e := &rfpEnv{tr: tr}
	e.sim, e.fab = sim, fab
	e.client = fab.AddNode(cCfg)
	e.server = fab.AddNode(sCfg)
	e.svc = &blobService{}
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(e.client, e.server, ibsim.QPConfig{})
		cmgr := memreg.NewManager(p, e.client, memreg.Config{})
		smgr := memreg.NewManager(p, e.server, memreg.Config{})
		disp := oncrpc.NewDispatcher()
		disp.Register(e.svc)
		disp.EnableDRC(256)
		e.st = NewServerTransport(p, e.server, smgr, disp, scfg)
		e.st.Serve(sq)
		e.ct = NewClientTransport(p, cq, cmgr, ccfg)
		e.rpc = oncrpc.NewClient(e.ct, 4242, 1, oncrpc.Auth{})
		body(p, &e.env)
	})
	sim.Run()
	return e
}

// TestReplyFetchNoServerSend pins the design's whole point: the server
// deposits every reply and posts no Send, never blocks on a send
// completion, and never exposes a byte of its own memory.
func TestReplyFetchNoServerSend(t *testing.T) {
	newEnv(t, ReplyFetch, memreg.Regular, func(p *des.Proc, e *env) {
		payload := pattern(64<<10, 1)
		if _, _, err := e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)}); err != nil {
			t.Fatalf("put: %v", err)
		}
		dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
		if _, n, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil || n != 64<<10 {
			t.Fatalf("get: n=%d err=%v", n, err)
		}
		if !bytes.Equal(dst.Data, payload) {
			t.Fatal("payload corrupted end to end")
		}
		if e.st.Deposits != 2 {
			t.Errorf("deposits = %d, want 2", e.st.Deposits)
		}
		if got := e.server.HCA.RemoteExposedBytes(); got != 0 {
			t.Errorf("reply-fetch server exposed %d bytes", got)
		}
		p.Sleep(time.Millisecond) // let the DONEs drain
		if e.st.ParkedReplies() != 0 {
			t.Errorf("parked replies = %d after DONEs", e.st.ParkedReplies())
		}
		if e.ct.DoneSent != 2 {
			t.Errorf("client DONEs = %d, want 2", e.ct.DoneSent)
		}
	})
}

// TestReplyFetchClientExposedByDesign is the security ledger entry RFP
// pays: even a small inline call opens a remotely writable client MR (the
// reply slot), where Read-Write client-side exposure only ever follows
// bulk advertisement. The slot MR must still die with its RPC.
func TestReplyFetchClientExposedByDesign(t *testing.T) {
	for _, tc := range []struct {
		design  Design
		exposed bool
	}{{ReadWrite, false}, {ReplyFetch, true}} {
		tc := tc
		t.Run(tc.design.String(), func(t *testing.T) {
			e := newRFPEnv(t, Config{Design: tc.design}, Config{Design: tc.design, Workers: 4},
				func(p *des.Proc, e *env) {
					for i := 0; i < 3; i++ {
						if _, _, err := e.rpc.Call(p, 4, []byte("ping"), oncrpc.CallOpts{}); err != nil {
							t.Errorf("echo: %v", err)
						}
					}
				})
			err := trace.CheckNoRemoteExposure(e.tr.Events(), "client")
			if tc.exposed && err == nil {
				t.Error("reply-fetch client should trip CheckNoRemoteExposure (slot MR is remotely writable)")
			}
			if !tc.exposed && err != nil {
				t.Errorf("read-write inline calls should expose nothing: %v", err)
			}
			if err := trace.CheckNoRemoteExposure(e.tr.Events(), "server"); err != nil {
				t.Errorf("server exposure under %v: %v", tc.design, err)
			}
			if err := trace.CheckExposureBounds(e.tr.Events()); err != nil {
				t.Errorf("exposure bounds under %v: %v", tc.design, err)
			}
		})
	}
}

// TestReplyFetchRetransmitReArm drives the watchdog through a mid-fetch
// timeout: the deposit lands, but the client's poll loop (slowed far past
// the call timeout) has not consumed it when the timer fires. The
// retransmission re-arms the slot (doorbell zeroed, same registration,
// same wire bytes), the server answers it from the DRC with a second,
// byte-identical deposit after retiring the stale park, and the single
// RDMA_DONE that follows must leave nothing parked. The slot MR still
// dies inside the RPC span — CheckExposureBounds stays clean.
func TestReplyFetchRetransmitReArm(t *testing.T) {
	ccfg := Config{
		Design:         ReplyFetch,
		FetchPollDelay: 500 * time.Microsecond,
		CallTimeout:    200 * time.Microsecond,
		RetryLimit:     2,
	}
	e := newRFPEnv(t, ccfg, Config{Design: ReplyFetch, Workers: 4}, func(p *des.Proc, e *env) {
		args := pattern(600, 9)
		res, _, err := e.rpc.Call(p, 4, args, oncrpc.CallOpts{})
		if err != nil {
			t.Fatalf("echo through retransmit: %v", err)
		}
		if !bytes.Equal(res, args) {
			t.Fatal("reply corrupted across re-armed slot")
		}
		if e.ct.Timeouts != 1 || e.ct.Retransmits != 1 {
			t.Errorf("timeouts=%d retransmits=%d, want 1/1", e.ct.Timeouts, e.ct.Retransmits)
		}
		if e.st.Deposits != 2 {
			t.Errorf("deposits = %d, want 2 (original + DRC replay)", e.st.Deposits)
		}
		p.Sleep(time.Millisecond)
		if e.st.ParkedReplies() != 0 {
			t.Errorf("parked replies = %d, want 0 (stale park retired, fresh park DONEd)", e.st.ParkedReplies())
		}
	})
	if err := trace.CheckExposureBounds(e.tr.Events()); err != nil {
		t.Errorf("exposure bounds across retransmit: %v", err)
	}
	if err := trace.CheckNoRemoteExposure(e.tr.Events(), "server"); err != nil {
		t.Errorf("server exposure: %v", err)
	}
}

// TestReplyFetchDropDonePinsDeposits is §4.1 transplanted onto RFP: a
// client that withholds RDMA_DONE pins the server's parked deposit staging
// — the resource-pinning half of the vulnerability survives even though
// the exposure half moved to the client.
func TestReplyFetchDropDonePinsDeposits(t *testing.T) {
	newEnv(t, ReplyFetch, memreg.Regular, func(p *des.Proc, e *env) {
		e.ct.DropDone = true
		for i := 0; i < 5; i++ {
			if _, _, err := e.rpc.Call(p, 4, []byte("hi"), oncrpc.CallOpts{}); err != nil {
				t.Errorf("echo %d: %v", i, err)
			}
		}
		p.Sleep(time.Millisecond)
		if e.st.ParkedReplies() != 5 {
			t.Errorf("parked deposits = %d, want 5 (withheld DONEs pin staging)", e.st.ParkedReplies())
		}
		if got := e.server.HCA.RemoteExposedBytes(); got != 0 {
			t.Errorf("pinned deposits exposed %d bytes (reply-fetch parks are local-only)", got)
		}
	})
}
