package rpcrdma

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

// blobService stores and returns payloads: proc 1 = PUT (bulk in), proc 2 =
// GET (bulk out), proc 3 = BIGREPLY (large inline results), proc 4 = ECHO.
type blobService struct {
	stored []byte
}

func (s *blobService) Name() string    { return "blob" }
func (s *blobService) Program() uint32 { return 4242 }
func (s *blobService) Version() uint32 { return 1 }

func (s *blobService) Handle(p *des.Proc, req *oncrpc.ServerRequest) *oncrpc.ServerResponse {
	switch req.Header.Proc {
	case 1: // PUT
		if req.Bulk != nil {
			if req.Bulk.Data != nil {
				s.stored = append([]byte(nil), req.Bulk.Data[:req.Bulk.Len]...)
			} else {
				s.stored = make([]byte, req.Bulk.Len)
			}
		}
		return &oncrpc.ServerResponse{Stat: oncrpc.Success}
	case 2: // GET
		n := len(s.stored)
		if req.RecvBulkCap > 0 && n > req.RecvBulkCap {
			n = req.RecvBulkCap
		}
		bulk := req.ReplyBuf
		if bulk == nil {
			bulk = &oncrpc.Bulk{Data: make([]byte, n)}
		}
		if bulk.Data != nil {
			copy(bulk.Data, s.stored[:n])
		}
		bulk.Len = n
		return &oncrpc.ServerResponse{Stat: oncrpc.Success, Bulk: bulk}
	case 3: // BIGREPLY: inline results larger than the inline threshold
		big := make([]byte, 8000)
		for i := range big {
			big[i] = byte(i * 7)
		}
		return &oncrpc.ServerResponse{Stat: oncrpc.Success, Results: big}
	case 4: // ECHO args
		return &oncrpc.ServerResponse{Stat: oncrpc.Success, Results: append([]byte(nil), req.Args...)}
	}
	return &oncrpc.ServerResponse{Stat: oncrpc.ProcUnavail}
}

type env struct {
	sim    *des.Sim
	fab    *ibsim.Fabric
	client *ibsim.Node
	server *ibsim.Node
	ct     *ClientTransport
	st     *ServerTransport
	rpc    *oncrpc.Client
	svc    *blobService
}

// newEnv wires a full client/server pair over the fabric inside a setup
// process, then runs body as a client process.
func newEnv(t *testing.T, design Design, mode memreg.Mode, body func(p *des.Proc, e *env)) *env {
	t.Helper()
	sim := des.New()
	fab := ibsim.NewFabric(sim, true)
	nodeCfg := ibsim.NodeConfig{
		Cores: 4, PortBandwidth: 900e6, PortLatency: 3 * time.Microsecond,
		RegPerPageCPU: 200 * time.Nanosecond, RegBase: 5 * time.Microsecond, RegPerPageBus: 200 * time.Nanosecond,
		DeregPerPageCPU: 100 * time.Nanosecond, DeregBase: 2 * time.Microsecond, DeregPerPageBus: 100 * time.Nanosecond,
		FMRMapCPU: 100 * time.Nanosecond, WQEOverhead: 300 * time.Nanosecond,
	}
	cCfg, sCfg := nodeCfg, nodeCfg
	cCfg.Name, cCfg.Seed = "client", 11
	sCfg.Name, sCfg.Seed = "server", 22
	e := &env{sim: sim, fab: fab}
	e.client = fab.AddNode(cCfg)
	e.server = fab.AddNode(sCfg)
	e.svc = &blobService{}
	sim.Spawn("setup", func(p *des.Proc) {
		cq, sq := fab.Connect(e.client, e.server, ibsim.QPConfig{})
		cmgr := memreg.NewManager(p, e.client, memreg.Config{Mode: mode})
		smgr := memreg.NewManager(p, e.server, memreg.Config{Mode: mode})
		disp := oncrpc.NewDispatcher()
		disp.Register(e.svc)
		e.st = NewServerTransport(p, e.server, smgr, disp, Config{Design: design, Workers: 4})
		e.st.Serve(sq)
		e.ct = NewClientTransport(p, cq, cmgr, Config{Design: design})
		e.rpc = oncrpc.NewClient(e.ct, 4242, 1, oncrpc.Auth{})
		body(p, e)
	})
	sim.Run()
	return e
}

func pattern(n int, seed byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = seed + byte(i%241)
	}
	return b
}

func testBothDesigns(t *testing.T, fn func(t *testing.T, design Design)) {
	for _, d := range []Design{ReadWrite, ReadRead, ReplyFetch} {
		d := d
		t.Run(d.String(), func(t *testing.T) { fn(t, d) })
	}
}

func TestInlineEcho(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		newEnv(t, design, memreg.Regular, func(p *des.Proc, e *env) {
			res, _, err := e.rpc.Call(p, 4, []byte("hello rdma"), oncrpc.CallOpts{})
			if err != nil {
				t.Errorf("call: %v", err)
				return
			}
			if string(res) != "hello rdma" {
				t.Errorf("res = %q", res)
			}
		})
	})
}

func TestBulkPutGetRoundTrip(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		newEnv(t, design, memreg.Regular, func(p *des.Proc, e *env) {
			payload := pattern(128<<10, 5)
			// PUT: client-side bulk travels as read chunks (server pulls).
			_, _, err := e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)})
			if err != nil {
				t.Errorf("put: %v", err)
				return
			}
			if !bytes.Equal(e.svc.stored, payload) {
				t.Error("server received corrupted payload")
				return
			}
			// GET: reply bulk via write chunks (RW) or server read chunks (RR).
			dst := &oncrpc.Bulk{Data: make([]byte, 128<<10), Len: 128 << 10}
			_, n, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
			if err != nil || n != 128<<10 {
				t.Errorf("get: n=%d err=%v", n, err)
				return
			}
			if !bytes.Equal(dst.Data, payload) {
				t.Error("client received corrupted payload")
			}
		})
	})
}

func TestBulkAllModes(t *testing.T) {
	for _, mode := range []memreg.Mode{memreg.Regular, memreg.FMR, memreg.AllPhysical, memreg.Cache} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			testBothDesigns(t, func(t *testing.T, design Design) {
				newEnv(t, design, mode, func(p *des.Proc, e *env) {
					payload := pattern(200<<10, 9)
					if _, _, err := e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)}); err != nil {
						t.Errorf("put: %v", err)
						return
					}
					dst := &oncrpc.Bulk{Data: make([]byte, 200<<10), Len: 200 << 10}
					_, n, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
					if err != nil || n != 200<<10 {
						t.Errorf("get: n=%d err=%v", n, err)
						return
					}
					if !bytes.Equal(dst.Data, payload) {
						t.Error("payload corrupted end to end")
					}
				})
			})
		})
	}
}

func TestLongReply(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		newEnv(t, design, memreg.Regular, func(p *des.Proc, e *env) {
			res, _, err := e.rpc.Call(p, 3, nil, oncrpc.CallOpts{LongReplyCap: 16 << 10})
			if err != nil {
				t.Errorf("bigreply: %v", err)
				return
			}
			if len(res) != 8000 {
				t.Errorf("len = %d, want 8000", len(res))
				return
			}
			for i := range res {
				if res[i] != byte(i*7) {
					t.Errorf("long reply corrupted at %d", i)
					return
				}
			}
			if design == ReplyFetch {
				// The slot subsumes the long-reply chunk: the whole message is
				// deposited, never sent as a NOMSG long reply.
				if e.st.LongReplies != 0 || e.st.Deposits == 0 {
					t.Errorf("reply-fetch: long replies = %d, deposits = %d", e.st.LongReplies, e.st.Deposits)
				}
			} else if e.st.LongReplies != 1 {
				t.Errorf("server long replies = %d", e.st.LongReplies)
			}
		})
	})
}

func TestLongCall(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		newEnv(t, design, memreg.Regular, func(p *des.Proc, e *env) {
			bigArgs := pattern(6000, 3) // well past the 1 KiB inline threshold
			res, _, err := e.rpc.Call(p, 4, bigArgs, oncrpc.CallOpts{LongReplyCap: 8 << 10})
			if err != nil {
				t.Errorf("long call: %v", err)
				return
			}
			if !bytes.Equal(res, bigArgs) {
				t.Error("long call echo corrupted")
			}
			if e.st.LongCalls != 1 {
				t.Errorf("server long calls = %d", e.st.LongCalls)
			}
		})
	})
}

// TestReadWriteNeverExposesServer is the paper's core security claim: under
// the Read-Write design no server memory is ever remotely accessible.
func TestReadWriteNeverExposesServer(t *testing.T) {
	newEnv(t, ReadWrite, memreg.Regular, func(p *des.Proc, e *env) {
		payload := pattern(64<<10, 1)
		e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)})
		dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
		e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		e.rpc.Call(p, 3, nil, oncrpc.CallOpts{LongReplyCap: 16 << 10})
		if got := e.server.HCA.RemoteExposedBytes(); got != 0 {
			t.Errorf("Read-Write server exposed %d bytes", got)
		}
	})
}

// TestReadReadExposesServer shows the counterpart: the Read-Read design
// necessarily exposes server buffers while replies are in flight.
func TestReadReadExposesServer(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		payload := pattern(64<<10, 1)
		e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)})
		if e.fab.Counters.Get("mr.remote_exposed") == 0 {
			// PUT only pulls client chunks; do a GET to force exposure.
		}
		dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
		e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		exposedEver := false
		for _, cv := range e.fab.Counters.Snapshot() {
			if cv.Name == "mr.remote_exposed" && cv.Value > 0 {
				exposedEver = true
			}
		}
		if !exposedEver {
			t.Error("Read-Read design should have exposed server buffers")
		}
	})
}

// TestDoneReleasesServerBuffers verifies the DONE lifecycle, and that a
// malicious client that withholds DONE pins server reply buffers until the
// pool exhausts (§4.1).
func TestDoneReleasesServerBuffers(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		e.svc.stored = pattern(32<<10, 2)
		dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
		if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
			t.Errorf("get: %v", err)
		}
		p.Sleep(time.Millisecond) // let the DONE drain
		if e.st.ParkedReplies() != 0 {
			t.Errorf("parked replies = %d after DONE", e.st.ParkedReplies())
		}
		if e.ct.DoneSent == 0 {
			t.Error("client sent no DONE")
		}
	})
}

func TestMaliciousClientPinsServerBuffers(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		e.ct.DropDone = true
		e.svc.stored = pattern(32<<10, 2)
		for i := 0; i < 5; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Errorf("get %d: %v", i, err)
			}
		}
		p.Sleep(time.Millisecond)
		if e.st.ParkedReplies() != 5 {
			t.Errorf("parked replies = %d, want 5 (withheld DONEs pin buffers)", e.st.ParkedReplies())
		}
		if e.server.HCA.RemoteExposedBytes() == 0 {
			t.Error("pinned reply buffers should remain exposed")
		}
	})
}

func TestConcurrentCallsShareTransport(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		sim := des.New()
		fab := ibsim.NewFabric(sim, true)
		client := fab.AddNode(ibsim.NodeConfig{Name: "client", Cores: 4})
		server := fab.AddNode(ibsim.NodeConfig{Name: "server", Cores: 4})
		svc := &blobService{stored: pattern(64<<10, 7)}
		doneCount := 0
		sim.Spawn("setup", func(p *des.Proc) {
			cq, sq := fab.Connect(client, server, ibsim.QPConfig{})
			cmgr := memreg.NewManager(p, client, memreg.Config{})
			smgr := memreg.NewManager(p, server, memreg.Config{})
			disp := oncrpc.NewDispatcher()
			disp.Register(svc)
			st := NewServerTransport(p, server, smgr, disp, Config{Design: design, Workers: 8})
			st.Serve(sq)
			ct := NewClientTransport(p, cq, cmgr, Config{Design: design})
			rpc := oncrpc.NewClient(ct, 4242, 1, oncrpc.Auth{})
			for i := 0; i < 8; i++ {
				sim.Spawn("thread", func(tp *des.Proc) {
					for j := 0; j < 5; j++ {
						dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
						_, n, err := rpc.Call(tp, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
						if err != nil || n != 64<<10 {
							t.Errorf("thread call: n=%d err=%v", n, err)
							return
						}
						if !bytes.Equal(dst.Data, svc.stored) {
							t.Error("concurrent call corrupted data")
							return
						}
						doneCount++
					}
				})
			}
		})
		sim.Run()
		if doneCount != 40 {
			t.Fatalf("completed %d calls, want 40", doneCount)
		}
	})
}

// TestReadWriteFasterThanReadRead checks the headline performance claim on
// a single-threaded READ-heavy exchange: fewer messages + no DONE round
// trip means lower per-op latency.
func TestReadWriteFasterThanReadRead(t *testing.T) {
	elapsed := map[Design]des.Time{}
	for _, d := range []Design{ReadWrite, ReadRead} {
		var start, end des.Time
		newEnv(t, d, memreg.Regular, func(p *des.Proc, e *env) {
			e.svc.stored = pattern(128<<10, 4)
			start = p.Now()
			for i := 0; i < 20; i++ {
				dst := &oncrpc.Bulk{Data: make([]byte, 128<<10), Len: 128 << 10}
				if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
					t.Errorf("get: %v", err)
					return
				}
			}
			end = p.Now()
		})
		elapsed[d] = end - start
	}
	if elapsed[ReadWrite] >= elapsed[ReadRead] {
		t.Fatalf("read-write (%v) should beat read-read (%v)", elapsed[ReadWrite], elapsed[ReadRead])
	}
}

// TestDirectIOZeroCopy verifies the zero-copy path registers the caller's
// buffer and lands data in place without a staging copy.
func TestDirectIOZeroCopy(t *testing.T) {
	newEnv(t, ReadWrite, memreg.Regular, func(p *des.Proc, e *env) {
		e.svc.stored = pattern(64<<10, 8)
		user := e.client.Mem.AllocMaterialized(64 << 10)
		dst := &oncrpc.Bulk{Data: user.Data(), Len: 64 << 10, Handle: user}
		before := e.client.CPU.BusySeconds()
		_, n, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst, DirectIO: true})
		if err != nil || n != 64<<10 {
			t.Fatalf("direct get: n=%d err=%v", n, err)
		}
		if !bytes.Equal(user.Data(), e.svc.stored) {
			t.Fatal("direct I/O data corrupted")
		}
		_ = before
	})
}

func TestHeaderRoundTripQuick(t *testing.T) {
	f := func(xid, credits uint32, rl []uint32, wl []uint32) bool {
		h := Header{XID: xid, Credits: credits, Type: MsgRDMA}
		for i, v := range rl {
			if i >= 16 {
				break
			}
			h.ReadList = append(h.ReadList, ReadSeg{Position: v % 4096, Segment: Segment{Rkey: v, Length: v % 100000, Addr: uint64(v) << 12}})
		}
		for i, v := range wl {
			if i >= 16 {
				break
			}
			h.WriteList = append(h.WriteList, Segment{Rkey: v, Length: v % 100000, Addr: uint64(v) << 8})
		}
		body := []byte{1, 2, 3, 4}
		wire := append(h.Encode(), body...)
		got, gotBody, err := DecodeHeader(wire)
		if err != nil || got.XID != xid || got.Credits != credits {
			return false
		}
		if len(got.ReadList) != len(h.ReadList) || len(got.WriteList) != len(h.WriteList) {
			return false
		}
		for i := range h.ReadList {
			if got.ReadList[i] != h.ReadList[i] {
				return false
			}
		}
		return bytes.Equal(gotBody, body)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeHeaderHostileInput(t *testing.T) {
	// Truncations and absurd counts must error, never panic.
	h := Header{XID: 1, Type: MsgRDMA, ReadList: []ReadSeg{{Position: 4, Segment: Segment{Rkey: 2, Length: 3, Addr: 4}}}}
	wire := h.Encode()
	for i := 0; i < len(wire); i += 2 {
		if _, _, err := DecodeHeader(wire[:i]); err == nil {
			t.Fatalf("truncated header at %d decoded", i)
		}
	}
	// Claim 2^32-1 read segments.
	bad := append([]byte(nil), wire[:16]...)
	bad = append(bad, 0xff, 0xff, 0xff, 0xff)
	if _, _, err := DecodeHeader(bad); err == nil {
		t.Fatal("hostile segment count accepted")
	}
}

// TestOversizedReplySqueezedInline covers the robustness fallback: a reply
// slightly over the inline threshold with no reply chunk advertised still
// gets delivered through the posted receive's headroom.
func TestOversizedReplySqueezedInline(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		newEnv(t, design, memreg.Regular, func(p *des.Proc, e *env) {
			// Proc 4 echoes args: send ~1.2 KiB so the reply exceeds the
			// 1 KiB threshold but fits in threshold+512 receives. Note the
			// CALL goes as a long call (also >1 KiB), which is fine.
			args := pattern(1200, 6)
			res, _, err := e.rpc.Call(p, 4, args, oncrpc.CallOpts{})
			if err != nil {
				t.Errorf("oversized echo: %v", err)
				return
			}
			if !bytes.Equal(res, args) {
				t.Error("squeezed-inline reply corrupted")
			}
			if e.st.LongReplies != 0 {
				t.Errorf("long replies = %d, want 0 (no reply chunk advertised)", e.st.LongReplies)
			}
		})
	})
}

// TestDynamicCreditsOffByDefault pins the default behaviour: without the
// option, grants never move.
func TestDynamicCreditsOffByDefault(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		e.svc.stored = pattern(16<<10, 3)
		before := e.ct.GrantedCredits()
		e.ct.DropDone = true
		for i := 0; i < 4; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
			e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
		}
		if e.ct.GrantedCredits() != before {
			t.Errorf("grant moved from %d to %d with dynamic credits off", before, e.ct.GrantedCredits())
		}
	})
}
