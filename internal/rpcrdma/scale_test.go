package rpcrdma

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

// scaleEnv is a multi-client test fixture: one server transport, N client
// nodes each with their own connection.
type scaleEnv struct {
	sim     *des.Sim
	fab     *ibsim.Fabric
	server  *ibsim.Node
	clients []*ibsim.Node
	st      *ServerTransport
	svc     *blobService
}

func newScaleEnv(sim *des.Sim, nclients int) *scaleEnv {
	fab := ibsim.NewFabric(sim, true)
	e := &scaleEnv{sim: sim, fab: fab, svc: &blobService{}}
	e.server = fab.AddNode(ibsim.NodeConfig{Name: "server", Cores: 8, Seed: 22})
	for i := 0; i < nclients; i++ {
		e.clients = append(e.clients, fab.AddNode(ibsim.NodeConfig{Name: "client", Cores: 2, Seed: uint64(100 + i)}))
	}
	return e
}

func (e *scaleEnv) startServer(p *des.Proc, cfg Config) {
	smgr := memreg.NewManager(p, e.server, memreg.Config{})
	disp := oncrpc.NewDispatcher()
	disp.Register(e.svc)
	e.st = NewServerTransport(p, e.server, smgr, disp, cfg)
}

// dial connects client i; ok reports whether admission accepted it.
func (e *scaleEnv) dial(p *des.Proc, i int, cfg Config) (*ClientTransport, *oncrpc.Client, *ibsim.QP, bool) {
	cq, sq := e.fab.Connect(e.clients[i], e.server, ibsim.QPConfig{})
	if !e.st.TryServe(sq) {
		return nil, nil, cq, false
	}
	cmgr := memreg.NewManager(p, e.clients[i], memreg.Config{})
	ct := NewClientTransport(p, cq, cmgr, cfg)
	return ct, oncrpc.NewClient(ct, 4242, 1, oncrpc.Auth{}), cq, true
}

// TestReleaseParkedPrunesParkedOrder is the regression test for the
// parkedOrder leak: releaseParked used to leave released XIDs in the
// park-order slice, so it grew without bound on a long-lived Read-Read
// connection. The invariant is len(parkedOrder) == parked at all times.
func TestReleaseParkedPrunesParkedOrder(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		e.svc.stored = pattern(32<<10, 2)
		// Phase 1: honest traffic — every parked reply is released by DONE.
		for i := 0; i < 3; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		p.Sleep(time.Millisecond) // drain trailing DONEs
		conn := e.st.conns[0]
		if conn.parked != 0 || len(conn.parkedOrder) != 0 {
			t.Fatalf("after DONE-released cycle: parked=%d len(parkedOrder)=%d, want 0/0",
				conn.parked, len(conn.parkedOrder))
		}
		// Phase 2: withhold DONEs — entries still parked must stay listed.
		e.ct.DropDone = true
		for i := 0; i < 2; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("pinned get %d: %v", i, err)
			}
		}
		p.Sleep(time.Millisecond)
		if conn.parked != 2 || len(conn.parkedOrder) != conn.parked {
			t.Fatalf("after park/release cycle: parked=%d len(parkedOrder)=%d, want equal at 2",
				conn.parked, len(conn.parkedOrder))
		}
	})
}

// TestAdmissionControl verifies the MaxConns gate: connections beyond the
// cap are terminated with ErrAdmission (visible on both endpoints), and a
// slot freed by a dead connection can be reused.
func TestAdmissionControl(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 3)
	cfg := Config{Design: ReadWrite, Workers: 2, Shards: 1, SRQDepth: 64, MaxConns: 1}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		_, rpc0, cq0, ok := e.dial(p, 0, cfg)
		if !ok {
			t.Fatal("first connection rejected under the cap")
		}
		if _, _, err := rpc0.Call(p, 4, []byte("hi"), oncrpc.CallOpts{}); err != nil {
			t.Fatalf("call on admitted conn: %v", err)
		}
		// Second connection: over the cap.
		_, _, cq1, ok := e.dial(p, 1, cfg)
		if ok {
			t.Fatal("second connection admitted over MaxConns=1")
		}
		if e.st.ConnsRejected != 1 || e.st.ConnsAccepted != 1 {
			t.Fatalf("accepted=%d rejected=%d, want 1/1", e.st.ConnsAccepted, e.st.ConnsRejected)
		}
		if !errors.Is(cq1.Err(), ErrAdmission) {
			t.Fatalf("client QP error %v does not classify as ErrAdmission", cq1.Err())
		}
		// Kill the admitted connection; its slot frees and a redial succeeds.
		cq0.InjectError(nil)
		p.Sleep(time.Millisecond)
		if e.st.LiveConns() != 0 {
			t.Fatalf("live conns = %d after death, want 0", e.st.LiveConns())
		}
		_, rpc2, _, ok := e.dial(p, 2, cfg)
		if !ok {
			t.Fatal("redial rejected after the slot freed")
		}
		if _, _, err := rpc2.Call(p, 4, []byte("again"), oncrpc.CallOpts{}); err != nil {
			t.Fatalf("call on re-admitted conn: %v", err)
		}
	})
	sim.Run()
}

// TestShardedDispatchServesManyConns runs bulk traffic from four clients
// over two shards and checks correctness plus the shard bookkeeping:
// connections hash evenly, every request flows through a shard receive
// loop, and the pooled SRQ is what feeds them.
func TestShardedDispatchServesManyConns(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		sim := des.New()
		e := newScaleEnv(sim, 4)
		cfg := Config{Design: design, Workers: 4, Shards: 2, SRQDepth: 64}
		completed := 0
		sim.Spawn("setup", func(p *des.Proc) {
			e.startServer(p, cfg)
			e.svc.stored = pattern(64<<10, 7)
			for i := 0; i < 4; i++ {
				i := i
				_, rpc, _, ok := e.dial(p, i, cfg)
				if !ok {
					t.Errorf("conn %d rejected", i)
					return
				}
				sim.Spawn("client", func(cp *des.Proc) {
					for j := 0; j < 4; j++ {
						dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
						_, n, err := rpc.Call(cp, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
						if err != nil || n != 64<<10 {
							t.Errorf("conn %d call %d: n=%d err=%v", i, j, n, err)
							return
						}
						if !bytes.Equal(dst.Data, e.svc.stored) {
							t.Errorf("conn %d call %d corrupted", i, j)
							return
						}
						completed++
					}
				})
			}
		})
		sim.Run()
		if completed != 16 {
			t.Fatalf("completed %d calls, want 16", completed)
		}
		st := e.st.ShardStats()
		if len(st) != 2 {
			t.Fatalf("shard stats = %d entries, want 2", len(st))
		}
		var reqs, consumed int64
		for _, s := range st {
			if s.Conns != 2 {
				t.Errorf("shard %d conns = %d, want 2 (hash by conn id)", s.Shard, s.Conns)
			}
			if s.Requests == 0 {
				t.Errorf("shard %d dispatched no requests", s.Shard)
			}
			reqs += s.Requests
			consumed += s.SRQConsumed
		}
		// Every message (16 calls, plus DONEs under Read-Read) consumed a
		// pooled WQE and was dispatched by a shard loop.
		if reqs < 16 || consumed < reqs {
			t.Fatalf("shard requests=%d srq consumed=%d, want >=16 and consumed>=requests", reqs, consumed)
		}
		if e.st.Requests != 16 {
			t.Fatalf("server requests = %d, want 16", e.st.Requests)
		}
	})
}

// TestShardSurvivesConnDeath kills one of two connections sharing a shard
// mid-traffic: the shard's receive loop must release the dead connection's
// parked replies and keep serving the survivor.
func TestShardSurvivesConnDeath(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 2)
	cfg := Config{Design: ReadRead, Workers: 2, Shards: 1, SRQDepth: 64}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		e.svc.stored = pattern(32<<10, 3)
		ct0, rpc0, cq0, _ := e.dial(p, 0, cfg)
		_, rpc1, _, _ := e.dial(p, 1, cfg)
		// Pin two replies on conn 0, then kill it.
		ct0.DropDone = true
		for i := 0; i < 2; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := rpc0.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("pin %d: %v", i, err)
			}
		}
		if e.st.ParkedReplies() != 2 {
			t.Fatalf("parked = %d before death, want 2", e.st.ParkedReplies())
		}
		cq0.InjectError(nil)
		p.Sleep(time.Millisecond)
		if e.st.ParkedReplies() != 0 {
			t.Fatalf("parked = %d after conn death, want 0 (released)", e.st.ParkedReplies())
		}
		if e.st.LiveConns() != 1 {
			t.Fatalf("live conns = %d, want 1", e.st.LiveConns())
		}
		// The surviving connection on the same shard still works, DONE
		// lifecycle included.
		dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
		if _, n, err := rpc1.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil || n != 32<<10 {
			t.Fatalf("survivor call: n=%d err=%v", n, err)
		}
		p.Sleep(time.Millisecond)
		if e.st.ParkedReplies() != 0 {
			t.Fatalf("survivor's DONE not processed: parked = %d", e.st.ParkedReplies())
		}
	})
	sim.Run()
}

// TestHoardingClientClampedGrant audits the clamp-to-1 path of
// advertiseCredits under dynamic credits: a client pinning parked replies
// beyond its credit depth is throttled to the 1-credit floor — it can keep
// making one call at a time, never starve — while a second, honest
// connection keeps its full grant.
func TestHoardingClientClampedGrant(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 2)
	cfg := Config{Design: ReadRead, Credits: 4, ReplyBufPool: 8, DynamicCredits: true, Workers: 4, Shards: 2, SRQDepth: 64}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		e.svc.stored = pattern(16<<10, 5)
		hoardCT, hoardRPC, _, _ := e.dial(p, 0, cfg)
		honestCT, honestRPC, _, _ := e.dial(p, 1, cfg)
		hoardCT.DropDone = true
		// Pin more replies than the credit depth: the per-conn pool (8)
		// still has room, so calls proceed, but the grant hits the floor.
		for i := 0; i < 5; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
			if _, _, err := hoardRPC.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("hoarder call %d: %v", i, err)
			}
		}
		if got := hoardCT.GrantedCredits(); got != 1 {
			t.Fatalf("hoarder grant = %d, want the 1-credit floor", got)
		}
		// The honest connection is untouched: its own pool, its own grant.
		for i := 0; i < 3; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
			if _, _, err := honestRPC.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("honest call %d: %v", i, err)
			}
			p.Sleep(500 * time.Microsecond) // let each DONE drain
		}
		if got := honestCT.GrantedCredits(); got != int(cfg.Credits) {
			t.Fatalf("honest grant = %d, want full %d", got, cfg.Credits)
		}
		// And the floor still admits work: the hoarder can make progress.
		dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
		if _, _, err := hoardRPC.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
			t.Fatalf("hoarder post-clamp call: %v", err)
		}
	})
	sim.Run()
}
