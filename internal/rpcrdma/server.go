package rpcrdma

import (
	"encoding/binary"
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
	"repro/internal/trace"
)

// connXID keys per-connection transaction state.
type connXID struct {
	conn *serverConn
	xid  uint32
}

// parkedReply holds server resources pinned until the client's RDMA_DONE
// (Read-Read design only). The chunks stay registered — and remotely
// readable — for as long as the client withholds the DONE, which is the
// §4.1 resource-pinning and exposure vulnerability.
type parkedReply struct {
	chunks []*memreg.Chunk
}

// serverTask is one received message queued for the worker pool.
type serverTask struct {
	conn *serverConn
	hdr  *Header
	body []byte
}

// serverConn is one client connection at the server.
type serverConn struct {
	srv *ServerTransport
	qp  *ibsim.QP
	id  uint64 // connection ordinal; XIDs repeat across clients, conn.id<<32|xid does not

	// stream is the connection's demultiplex id on its shard's shared QP
	// (multiplexed mode); zero on a dedicated-QP connection. Everything the
	// server sends toward this client must be stamped with it.
	stream uint32

	// peerName is the transport-authenticated node name behind this
	// connection, recorded at accept time. The DRC keys replay state by it
	// (unless Config.TrustCredDRC), so a forged AUTH_SYS machine credential
	// cannot collide with another client's replay keys.
	peerName string

	// misbehavior scores protocol violations attributed to this connection
	// (rejected DONEs, spoofed stream claims); quarantined latches once the
	// score crosses Config.QuarantineThreshold and the connection is
	// terminated, so the Quarantines stat counts each offender once.
	misbehavior int
	quarantined bool

	// dead marks the connection's lifecycle state: once set (by connDead)
	// the transport drops this connection's queued tasks instead of serving
	// them and releases replies instead of parking them — no reply can ever
	// be delivered and no RDMA_DONE can ever arrive.
	dead bool

	// parkedOrder records the XIDs parked for this connection, in park
	// order, so teardown releases them deterministically (iterating the
	// shared parked map would leak map ordering into the event schedule).
	// releaseParked prunes entries as DONEs arrive, keeping the invariant
	// len(parkedOrder) == parked.
	parkedOrder []uint32

	// Per-connection reply-buffer accounting, used when dynamic credits
	// are enabled: a client that pins replies exhausts only its own pool
	// and only its own grant.
	parked     int
	replySlots *des.Resource

	// shard is the dispatch shard this connection is assigned to (nil on
	// the legacy per-connection receive path).
	shard *serverShard
}

// post sends a work request toward this connection's client, stamping the
// stream id that selects its endpoint on a shared QP (a no-op stamp on
// dedicated connections, where stream is 0).
func (c *serverConn) post(w *ibsim.SendWQE) {
	w.Stream = c.stream
	c.qp.PostSend(w)
}

// postAndWait is post plus a blocking wait for the completion.
func (c *serverConn) postAndWait(p *des.Proc, w *ibsim.SendWQE) *ibsim.CQE {
	w.Stream = c.stream
	return c.qp.PostAndWait(p, w)
}

// pruneParkedOrder removes the first occurrence of xid from the park-order
// slice. Without the prune the slice grows for the life of a Read-Read
// connection: releaseParked used to delete the map entry and decrement the
// counter but leave the XID in place, so a long-lived connection leaked one
// slice slot per parked reply.
func (c *serverConn) pruneParkedOrder(xid uint32) {
	for i, v := range c.parkedOrder {
		if v == xid {
			c.parkedOrder = append(c.parkedOrder[:i], c.parkedOrder[i+1:]...)
			return
		}
	}
}

// ServerTransport is the server endpoint of the RPC/RDMA transport: it
// accepts connections, decodes the header, pulls read chunks, dispatches to
// the RPC layer through a worker pool (the paper's server task queue,
// Figure 1), and sends replies per the configured design.
type ServerTransport struct {
	node       *ibsim.Node
	mgr        *memreg.Manager
	cfg        Config
	dispatcher *oncrpc.Dispatcher
	workQ      *des.Queue
	parked     map[connXID]*parkedReply
	replySlots *des.Resource // Read-Read reply-buffer pool
	serial     *des.Resource // serialized send/receive path (nil when disabled)
	closed     bool
	draining   bool // Shutdown in progress: shards must not re-arm shared QPs
	connSeq    uint64
	workerSeq  int // round-robin worker CPU placement when affinity is off

	// Sharded dispatch (cfg.Shards > 0): connections hash across shards,
	// each with its own CQ-polling loop, SRQ, and worker slice.
	shards []*serverShard

	// Admission control.
	conns     []*serverConn // every accepted connection, in accept order
	liveConns int           // accepted minus dead

	// Stats.
	ConnsAccepted int64
	ConnsRejected int64
	Requests      int64
	LongCalls     int64
	LongReplies   int64
	BulkReads     int64
	BulkWrites    int64
	DoneRecv      int64
	ShortWrites   int64 // replies whose bulk exceeded the client's chunk capacity
	TasksDropped  int64 // queued tasks discarded because their connection died
	Deposits      int64 // reply-fetch replies deposited into client slots (no Send)

	// Hardening stats (see the adversary engine).
	DoneRejected     int64 // DONEs naming no parked reply on the sender's connection
	SpoofDrops       int64 // mux receives dropped for a forged stream claim
	CrossClientFrees int64 // parked replies freed by a DONE from a different endpoint (trust mode only)
	Quarantines      int64 // connections terminated by misbehavior scoring
}

// NewServerTransport creates the server engine and starts its worker pool.
func NewServerTransport(p *des.Proc, node *ibsim.Node, mgr *memreg.Manager, dispatcher *oncrpc.Dispatcher, cfg Config) *ServerTransport {
	cfg.defaults()
	s := &ServerTransport{
		node:       node,
		mgr:        mgr,
		cfg:        cfg,
		dispatcher: dispatcher,
		workQ:      des.NewQueue(node.Sim(), node.Name()+"/rpcrdma-workq"),
		parked:     make(map[connXID]*parkedReply),
		replySlots: des.NewResource(node.Sim(), node.Name()+"/rpcrdma-replypool", cfg.ReplyBufPool),
	}
	if cfg.hasSerial() {
		s.serial = des.NewResource(node.Sim(), node.Name()+"/rpcrdma-serial", 1)
	}
	if cfg.Shards > 0 {
		for i := 0; i < cfg.Shards; i++ {
			s.shards = append(s.shards, newServerShard(s, i))
		}
	} else {
		for i := 0; i < cfg.Workers; i++ {
			node.Sim().Spawn(fmt.Sprintf("%s/nfsd-%d", node.Name(), i), s.worker)
		}
	}
	return s
}

// Node returns the server's node.
func (s *ServerTransport) Node() *ibsim.Node { return s.node }

// Manager returns the registration manager.
func (s *ServerTransport) Manager() *memreg.Manager { return s.mgr }

// ParkedReplies returns the number of reply buffers awaiting RDMA_DONE.
func (s *ServerTransport) ParkedReplies() int { return len(s.parked) }

// Close stops accepting work.
func (s *ServerTransport) Close() {
	if !s.closed {
		s.closed = true
		s.workQ.Close()
		for _, sh := range s.shards {
			sh.workQ.Close()
		}
	}
}

// LiveConns returns the number of accepted, not-yet-dead connections.
func (s *ServerTransport) LiveConns() int { return s.liveConns }

// SRQAvailTotal returns free receive slots summed across shard SRQs, zero
// for unsharded designs (per-connection receive rings). Allocation-free:
// telemetry probes call it every sample tick.
func (s *ServerTransport) SRQAvailTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.srq.Avail()
	}
	return n
}

// SRQPostedTotal returns cumulative successful SRQ PostRecv calls across
// shards.
func (s *ServerTransport) SRQPostedTotal() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.srq.Posted
	}
	return n
}

// SRQStarvedTotal returns cumulative SRQ takes that found the pool empty
// (RNR at the QP) across shards.
func (s *ServerTransport) SRQStarvedTotal() int64 {
	var n int64
	for _, sh := range s.shards {
		n += sh.srq.Starved
	}
	return n
}

// MuxEndpointsTotal returns live multiplexed endpoints summed across shards
// (zero when clients get dedicated QPs).
func (s *ServerTransport) MuxEndpointsTotal() int {
	n := 0
	for _, sh := range s.shards {
		n += len(sh.eps)
	}
	return n
}

// ShardEndpoints returns live endpoints (multiplexed mode) or connections
// (dedicated QPs) attached to shard i, zero when i is out of range.
func (s *ServerTransport) ShardEndpoints(i int) int {
	if i < 0 || i >= len(s.shards) {
		return 0
	}
	sh := s.shards[i]
	if sh.eps != nil {
		return len(sh.eps)
	}
	return len(sh.conns)
}

// Shutdown models the transport side of a server crash at the current
// virtual instant: every live connection's QP is terminated (peers observe
// the death on their own queue pairs and reconnect through recovery), every
// parked reply is released via the usual connection-death path, the work
// queues close, and the shard CQs are destroyed so flush completions still
// in flight when the crash hit are dropped rather than delivered to a dead
// server. The transport object is unusable afterwards; a restart builds a
// fresh one.
func (s *ServerTransport) Shutdown(p *des.Proc) {
	if s.closed {
		return
	}
	s.draining = true
	for _, conn := range s.conns {
		if !conn.dead && conn.qp.Err() == nil {
			// On a multiplexed shard the first connection's Terminate kills
			// the shared QP — and with it every sibling endpoint; the rest of
			// the loop sees the QP already in error and just runs teardown.
			conn.qp.Terminate(fmt.Errorf("%w: server crashed", ErrClosed))
		}
		s.connDead(p, conn)
	}
	s.Close()
	for _, sh := range s.shards {
		sh.cq.Close()
	}
}

// Serve attaches an accepted connection, ignoring admission: callers that
// predate admission control (and tests that must not race it) keep the old
// contract. With MaxConns unset the two entry points are identical.
func (s *ServerTransport) Serve(qp *ibsim.QP) { s.TryServe(qp) }

// TryServe attaches an accepted connection and reports whether admission
// control let it in. A rejected QP is terminated with ErrAdmission — the
// peer observes the error on its own queue pair and is expected to back
// off and redial. Accepted connections either join a dispatch shard
// (sharded mode) or get the legacy private receive ring plus a dedicated
// receive loop.
func (s *ServerTransport) TryServe(qp *ibsim.QP) bool {
	if s.closed {
		// Crashed (or closing) server: refuse like a host with no listener.
		// Dialers observe the termination and back off through the same
		// redial machinery admission rejections use.
		s.ConnsRejected++
		qp.Terminate(fmt.Errorf("%w: server not serving", ErrClosed))
		return false
	}
	if s.cfg.MaxConns > 0 && s.liveConns >= s.cfg.MaxConns {
		s.ConnsRejected++
		qp.Terminate(fmt.Errorf("%w: %d live connections", ErrAdmission, s.liveConns))
		return false
	}
	s.connSeq++
	s.liveConns++
	s.ConnsAccepted++
	conn := &serverConn{srv: s, qp: qp, id: s.connSeq}
	if peer := qp.Peer(); peer != nil {
		conn.peerName = peer.Node().Name()
	}
	if s.cfg.DynamicCredits {
		conn.replySlots = des.NewResource(s.node.Sim(), s.node.Name()+"/conn-replypool", s.cfg.ReplyBufPool)
	}
	s.conns = append(s.conns, conn)
	if len(s.shards) > 0 {
		s.shards[int(conn.id)%len(s.shards)].attach(conn)
		return true
	}
	for i := 0; i < s.cfg.Credits; i++ {
		qp.PostRecv(uint64(i), s.cfg.recvBufSize())
	}
	s.node.Sim().Spawn(s.node.Name()+"/conn-recv", func(p *des.Proc) {
		for {
			cqe := qp.RecvCQ.Wait(p)
			if cqe == nil || cqe.Err != nil {
				s.connDead(p, conn)
				return
			}
			if conn.dead {
				// A crash (Shutdown) marked the connection dead while data
				// completions were still queued ahead of the error CQE; the
				// work queue is closed, so drop them and exit.
				return
			}
			qp.PostRecv(cqe.WRID, s.cfg.recvBufSize())
			hdr, body, err := DecodeHeader(cqe.Payload)
			if err != nil {
				continue
			}
			if hdr.Type == MsgDone {
				// Served inline: a DONE queued behind data calls can
				// deadlock the reply-slot pool (see handleDone).
				s.handleDone(p, conn, hdr.XID, cqe.SrcStream)
				continue
			}
			s.workQ.Put(&serverTask{conn: conn, hdr: hdr, body: body})
		}
	})
	return true
}

// TryAttach admits a multiplexed client: instead of a dedicated QP pair the
// client gets a lightweight endpoint on one shard's shared QP, and the
// server-side cost of the connection is a slot-table entry plus bookkeeping.
// It returns the client-side endpoint QP, the initial credit grant (the
// endpoint's sub-account of the shard's pooled receives — the client should
// size its transport to it), and whether admission let the client in.
func (s *ServerTransport) TryAttach(client *ibsim.Node) (*ibsim.QP, int, bool) {
	if !s.cfg.Multiplex || len(s.shards) == 0 {
		panic("rpcrdma: TryAttach needs Config.Multiplex")
	}
	if s.closed {
		s.ConnsRejected++
		return nil, 0, false
	}
	if s.cfg.MaxConns > 0 && s.liveConns >= s.cfg.MaxConns {
		s.ConnsRejected++
		return nil, 0, false
	}
	s.connSeq++
	sh := s.shards[int(s.connSeq)%len(s.shards)]
	ep, err := s.node.Fabric().AttachEndpoint(client, sh.muxQP, ibsim.QPConfig{})
	if err != nil {
		// Shared QP down (mid-crash) or slot table exhausted: refuse like an
		// admission rejection; the dialer backs off and redials.
		s.ConnsRejected++
		return nil, 0, false
	}
	s.liveConns++
	s.ConnsAccepted++
	conn := &serverConn{srv: s, qp: sh.muxQP, id: s.connSeq, stream: ep.Stream(), shard: sh, peerName: client.Name()}
	if s.cfg.DynamicCredits {
		conn.replySlots = des.NewResource(s.node.Sim(), s.node.Name()+"/conn-replypool", s.cfg.ReplyBufPool)
	}
	s.conns = append(s.conns, conn)
	sh.eps[conn.stream] = conn
	sh.nconns++
	return ep, int(s.advertiseCredits(conn)), true
}

// worker is one server thread (nfsd): the paper's two-part state machine —
// receive path (allocate buffers, pull chunks, call the file system) and
// the return path (register reply buffers, push data, reply).
func (s *ServerTransport) worker(p *des.Proc) {
	for {
		v, ok := s.workQ.Get(p)
		if !ok {
			return
		}
		task := v.(*serverTask)
		s.handle(p, task, -1)
	}
}

// migrate charges the completion-to-CPU affinity cost of resuming this task
// on worker CPU wcpu after a completion serviced on its shard's completion
// CPU. Legacy (unsharded) workers pass wcpu -1: no placement is modelled.
func (s *ServerTransport) migrate(p *des.Proc, conn *serverConn, wcpu int) {
	if wcpu < 0 || conn.shard == nil {
		return
	}
	s.node.CPU.Migrate(p, conn.shard.cpuID, wcpu)
}

// connDead transitions a connection to the dead state and releases every
// reply still parked for it — an RDMA_DONE can never arrive on a broken
// connection. It is idempotent, and releases follow park order so the
// resulting reply-pool wakeups are deterministic.
func (s *ServerTransport) connDead(p *des.Proc, conn *serverConn) {
	if conn.dead {
		return
	}
	conn.dead = true
	s.liveConns--
	if conn.shard != nil {
		conn.shard.nconns--
		if conn.stream != 0 {
			// Free the demux entry; the ibsim slot was already recycled by
			// endpointDead, so the server-side leak check is this map plus
			// nconns returning to baseline.
			delete(conn.shard.eps, conn.stream)
		}
	}
	// Snapshot then detach the order slice before iterating: releaseParked
	// prunes conn.parkedOrder in place, which would corrupt a range over the
	// live slice.
	order := conn.parkedOrder
	conn.parkedOrder = nil
	for _, xid := range order {
		s.releaseParked(p, connXID{conn, xid})
	}
}

// traceKey builds the trace pairing id of one (connection, XID) exchange.
func (c *serverConn) traceKey(xid uint32) uint64 { return c.id<<32 | uint64(xid) }

// handleDone releases the reply parked for an RDMA_DONE. It is called
// inline from the receive loops rather than through the worker queue:
// queueing DONEs behind data calls deadlocks the Read-Read design under
// open-loop overload — every worker blocks reserving a reply slot while the
// DONEs that would free the slots sit unserved behind them.
//
// src is the fabric-authenticated source stream of the message (CQE.
// SrcStream): zero on dedicated connections, the sender's own slot id on a
// shared QP. conn is the connection the DONE *claims* to speak for; with
// stream-claim validation on, the two always agree by the time the message
// gets here, but in trust mode (Config.TrustStreamClaims) a forged claim
// reaches this point and a mismatched release is a cross-client free — the
// spoofed-DONE attack landing.
func (s *ServerTransport) handleDone(p *des.Proc, conn *serverConn, xid uint32, src uint32) {
	s.DoneRecv++
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindDone, s.node.Name(), "done-recv", conn.traceKey(xid), 0)
	}
	// DONE processing crosses the same serialized receive path as any
	// other message — part of why the Read-Read server saturates below
	// the Read-Write one even at full pipeline depth (§5.1).
	if s.serial != nil {
		s.serial.Use(p, 1, s.cfg.SerialBase)
	}
	released := s.releaseParked(p, connXID{conn, xid})
	forged := src != 0 && src != conn.stream
	if !released {
		// No reply is parked under this (connection, XID) pair: a guessed
		// or replayed XID — or an honest DONE for a reply that had nothing
		// to park (inline Read-Read replies carry no chunks, but the client
		// acknowledges unconditionally). The park map is keyed by
		// connection, so even in trust mode a forged XID alone cannot free
		// another client's reply — the forgery has to spoof the stream
		// claim too.
		s.DoneRejected++
	} else if forged {
		// Trust mode released a park on the strength of a forged stream
		// claim: the attacker just freed a reply it does not own.
		s.CrossClientFrees++
	}
	// Only a provably forged message scores misbehavior: a missing park is
	// indistinguishable from a benign inline-reply acknowledgement, and
	// punishing it would let an attacker get honest clients quarantined —
	// or quarantine them outright (the fabric-stamped source is the one
	// thing the sender cannot fake).
	if forged {
		s.penalize(p, s.offender(conn, src))
	}
}

// offender resolves the connection to blame for a bad message: the
// authenticated source endpoint when the message arrived on a shared QP
// under a forged claim, else the connection it arrived on.
func (s *ServerTransport) offender(conn *serverConn, src uint32) *serverConn {
	if src != 0 && src != conn.stream && conn.shard != nil {
		if c := conn.shard.eps[src]; c != nil {
			return c
		}
	}
	return conn
}

// penalize bumps a connection's misbehavior score and, once it crosses the
// configured threshold, terminates the offender — endpoint-scoped on a
// shared QP, so quarantining an attacker never takes innocent endpoints
// down with it.
func (s *ServerTransport) penalize(p *des.Proc, conn *serverConn) {
	if conn == nil {
		return
	}
	conn.misbehavior++
	if s.cfg.QuarantineThreshold <= 0 || conn.quarantined || conn.dead ||
		conn.misbehavior < s.cfg.QuarantineThreshold {
		return
	}
	conn.quarantined = true
	s.Quarantines++
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindDone, s.node.Name(), "quarantine", conn.traceKey(0), int64(conn.misbehavior))
	}
	if conn.stream != 0 {
		conn.qp.TerminateEndpoint(conn.stream, ErrQuarantined)
	} else {
		conn.qp.Terminate(ErrQuarantined)
	}
}

// handle wraps the real handler in a serve span while tracing. wcpu is the
// worker's CPU placement for the affinity model (-1 when not modelled).
// Serve spans land on the connection's shard track when sharded, so the
// exported trace shows per-shard dispatch balance as separate rows.
func (s *ServerTransport) handle(p *des.Proc, task *serverTask, wcpu int) {
	tr := s.node.Sim().Tracer()
	if tr == nil {
		s.handle1(p, task, wcpu)
		return
	}
	track := s.node.Name()
	if task.conn.shard != nil {
		track = task.conn.shard.track
	}
	start := p.Now()
	s.handle1(p, task, wcpu)
	tr.Span(int64(start), int64(p.Now()), trace.LayerRPC, trace.KindServe, track,
		task.hdr.Type.String(), task.conn.traceKey(task.hdr.XID), 0)
}

func (s *ServerTransport) handle1(p *des.Proc, task *serverTask, wcpu int) {
	hdr := task.hdr
	if task.conn.dead {
		// The connection died while this message sat in the work queue;
		// serving it would park a reply nothing can ever release.
		s.TasksDropped++
		return
	}
	if hdr.Type == MsgDone {
		s.handleDone(p, task.conn, hdr.XID, 0)
		return
	}
	s.Requests++
	p.Logf("rpcrdma serve xid=%#x type=%v readsegs=%d writesegs=%d",
		hdr.XID, hdr.Type, len(hdr.ReadList), len(hdr.WriteList))
	s.node.CPU.Work(p, s.cfg.PerOpCPU)

	// --- Receive path ---
	callBytes := task.body
	if hdr.Type == MsgNoMsg {
		// RPC Long Call: pull the message body advertised at position 0.
		s.LongCalls++
		var err error
		callBytes, err = s.pullLongCall(p, task, wcpu)
		if err != nil {
			return // connection-level failure; QP is already in error
		}
	}

	// Pull WRITE-class payload (read chunks at positions > 0). The server
	// thread blocks until its RDMA Reads complete: InfiniBand gives no
	// ordering between a Read and a later Send, so there is no overlap to
	// exploit (§4.1).
	var bulkIn *oncrpc.Bulk
	var bulkInChk *memreg.Chunk
	dataLen := 0
	for _, seg := range hdr.ReadList {
		if seg.Position > 0 {
			dataLen += int(seg.Length)
		}
	}
	if dataLen > 0 {
		pullStart := p.Now()
		// The receive path — buffer allocation, registration, chunk pulls —
		// runs under the serialized section when modelled; the synchronous
		// RDMA Read wait is additionally held inside it when
		// SerializeSyncRead is set.
		if s.serial != nil {
			s.serial.Acquire(p, 1)
			p.Sleep(s.cfg.SerialBase)
		}
		bulkInChk = s.mgr.GetUnregistered(p, dataLen, ibsim.AccessLocalWrite)
		s.mgr.RegisterChunk(p, bulkInChk, dataLen) // must precede the DMA
		off := 0
		var events []*des.Event
		for _, seg := range hdr.ReadList {
			if seg.Position == 0 {
				continue
			}
			s.BulkReads++
			ev := des.NewEvent(s.node.Sim())
			wqe := &ibsim.SendWQE{
				WRID: uint64(hdr.XID), Op: ibsim.OpRead,
				Local:     []ibsim.LocalSeg{{Buf: bulkInChk.Buf, Off: off, Len: int(seg.Length)}},
				RemoteKey: seg.Rkey, RemoteAddr: seg.Addr,
			}
			postWithEvent(task.conn, wqe, ev)
			events = append(events, ev)
			off += int(seg.Length)
		}
		if s.serial != nil && !s.cfg.SerializeSyncRead {
			s.serial.Release(1)
		}
		failed := false
		for _, ev := range events {
			cqe := ev.Wait(p).(*ibsim.CQE)
			if cqe.Err != nil {
				failed = true
			}
		}
		s.node.CPU.Interrupt(p) // the completion that unblocks the thread
		s.migrate(p, task.conn, wcpu)
		if s.serial != nil && s.cfg.SerializeSyncRead {
			s.serial.Release(1)
		}
		if tr := s.node.Sim().Tracer(); tr != nil {
			tr.Span(int64(pullStart), int64(p.Now()), trace.LayerRPC, trace.KindBulkRead, s.node.Name(),
				"bulk-read", task.conn.traceKey(hdr.XID), int64(dataLen))
		}
		if failed {
			s.mgr.Put(p, bulkInChk)
			return
		}
		var data []byte
		if d := bulkInChk.Data(); d != nil {
			data = d[:dataLen]
		}
		bulkIn = &oncrpc.Bulk{Data: data, Len: dataLen, Handle: bulkInChk.Buf}
	}

	// Reply-payload staging: allocated on the receive path, registered when
	// control returns from the file system (§4.3, Figure 1).
	recvCap := 0
	for _, seg := range hdr.WriteList {
		recvCap += int(seg.Length)
	}
	if s.cfg.Design == ReadRead {
		recvCap = s.cfg.MaxBulk
	}
	var replyStaging *memreg.Chunk
	var replyBuf *oncrpc.Bulk
	if recvCap > 0 {
		replyStaging = s.mgr.GetUnregistered(p, recvCap, s.replyAccess())
		replyBuf = &oncrpc.Bulk{Data: replyStaging.Data(), Len: 0, Handle: replyStaging.Buf}
		if replyBuf.Data != nil && recvCap < len(replyBuf.Data) {
			replyBuf.Data = replyBuf.Data[:recvCap]
		}
	}

	// --- File system ---
	peer := task.conn.peerName
	if s.cfg.TrustCredDRC {
		peer = "" // fall back to the forgeable credential machine name
	}
	reply, bulkOut, err := s.dispatcher.Dispatch(p, callBytes, oncrpc.DispatchOpts{
		Bulk:        bulkIn,
		RecvBulkCap: recvCap,
		ReplyBuf:    replyBuf,
		Peer:        peer,
	})
	if bulkInChk != nil {
		s.mgr.Put(p, bulkInChk)
	}
	if err != nil || reply == nil {
		// err: dispatch failure. reply == nil: the dispatcher suppressed a
		// duplicate of a call still executing (DRC in-progress entry) — the
		// original execution will produce the reply; this copy just drops.
		if replyStaging != nil {
			s.mgr.Put(p, replyStaging)
		}
		return
	}

	// --- Return path ---
	switch s.cfg.Design {
	case ReadWrite:
		s.replyReadWrite(p, task, hdr, reply, bulkOut, replyStaging, wcpu)
	case ReadRead:
		s.replyReadRead(p, task, hdr, reply, bulkOut, replyStaging, wcpu)
	case ReplyFetch:
		s.replyReplyFetch(p, task, hdr, reply, bulkOut, replyStaging)
	}
}

// replyAccess is the access mode of reply staging buffers: the Read-Write
// design keeps them local-only (never exposed); the Read-Read design must
// grant remote read — the vulnerability.
func (s *ServerTransport) replyAccess() ibsim.Access {
	if s.cfg.Design == ReadRead {
		return ibsim.AccessLocalWrite | ibsim.AccessRemoteRead
	}
	return ibsim.AccessLocalWrite
}

// pullLongCall fetches an RDMA_NOMSG call body.
func (s *ServerTransport) pullLongCall(p *des.Proc, task *serverTask, wcpu int) ([]byte, error) {
	n := 0
	for _, seg := range task.hdr.ReadList {
		if seg.Position == 0 {
			n += int(seg.Length)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: NOMSG call without position-0 chunk", ErrBadHeader)
	}
	if tr := s.node.Sim().Tracer(); tr != nil {
		pullStart := p.Now()
		defer func() {
			tr.Span(int64(pullStart), int64(p.Now()), trace.LayerRPC, trace.KindBulkRead, s.node.Name(),
				"long-call-read", task.conn.traceKey(task.hdr.XID), int64(n))
		}()
	}
	staging := s.mgr.Get(p, n, ibsim.AccessLocalWrite)
	defer s.mgr.Put(p, staging)
	off := 0
	for _, seg := range task.hdr.ReadList {
		if seg.Position != 0 {
			continue
		}
		s.BulkReads++
		cqe := task.conn.postAndWait(p, &ibsim.SendWQE{
			WRID: uint64(task.hdr.XID), Op: ibsim.OpRead,
			Local:     []ibsim.LocalSeg{{Buf: staging.Buf, Off: off, Len: int(seg.Length)}},
			RemoteKey: seg.Rkey, RemoteAddr: seg.Addr,
		})
		s.migrate(p, task.conn, wcpu)
		if cqe.Err != nil {
			return nil, fmt.Errorf("%w: long call read: %v", ErrTransport, cqe.Err)
		}
		off += int(seg.Length)
	}
	return append([]byte(nil), staging.Data()[:n]...), nil
}

// replyReadWrite sends a Read-Write design reply: RDMA Write data to the
// client's advertised chunks, then the inline (or NOMSG long) reply. The
// send completion guarantees the writes are placed, so every buffer is
// released immediately — no DONE, no parking, no exposure.
func (s *ServerTransport) replyReadWrite(p *des.Proc, task *serverTask, call *Header, reply []byte, bulkOut *oncrpc.Bulk, staging *memreg.Chunk, wcpu int) {
	rh := &Header{XID: call.XID, Credits: s.advertiseCredits(task.conn), Type: MsgRDMA}
	conn := task.conn

	// The send path — reply marshalling, registration on return from the
	// file system, push posting — runs under the serialized section.
	outLen := 0
	if bulkOut != nil {
		outLen = bulkOut.Len
	}
	if s.serial != nil {
		s.serial.Acquire(p, 1)
		p.Sleep(s.cfg.serialHold(outLen))
	}

	if bulkOut != nil && bulkOut.Len > 0 && len(call.WriteList) > 0 {
		// Registration happens now — on return from the file system — which
		// is what makes the slab cache's hit path free.
		if staging != nil {
			s.mgr.RegisterChunk(p, staging, bulkOut.Len)
		}
		srcBuf := staging.Buf
		pushed, residual := s.pushBulk(p, conn, srcBuf, bulkOut.Len, call.WriteList)
		if residual > 0 {
			// The client's advertised write chunks cannot hold the payload.
			// The annotated WriteList already tells the client how much
			// landed; count the truncation so it is visible server-side too.
			s.ShortWrites++
			s.traceShortWrite(p, task, call.XID, residual)
		}
		rh.WriteList = pushed
	}

	var longChk *memreg.Chunk
	switch {
	case len(reply) <= s.cfg.InlineThreshold:
		// Inline reply.
	case len(call.ReplyChunk) == 0:
		// Slightly oversized reply with no reply chunk advertised: the
		// posted receives carry headroom beyond the threshold, so squeeze
		// it inline rather than dropping the call. Truly oversized replies
		// without placement cannot be delivered.
		if len(reply) > s.cfg.recvBufSize() {
			if s.serial != nil {
				s.serial.Release(1)
			}
			if staging != nil {
				s.mgr.Put(p, staging)
			}
			return
		}
	default:
		// RPC Long Reply: write the whole message into the client's reply
		// chunk and send a NOMSG notification.
		s.LongReplies++
		longChk = s.mgr.Get(p, len(reply), ibsim.AccessLocalWrite)
		if d := longChk.Data(); d != nil {
			copy(d, reply)
		}
		s.node.CPU.Copy(p, len(reply))
		var residual int
		rh.ReplyChunk, residual = s.pushBulk(p, conn, longChk.Buf, len(reply), call.ReplyChunk)
		if residual > 0 {
			s.ShortWrites++
			s.traceShortWrite(p, task, call.XID, residual)
		}
		rh.Type = MsgNoMsg
		reply = nil
	}

	wire := append(rh.Encode(), reply...)
	ev := des.NewEvent(s.node.Sim())
	postWithEvent(conn, &ibsim.SendWQE{WRID: uint64(call.XID), Op: ibsim.OpSend, Payload: wire}, ev)
	if s.serial != nil {
		s.serial.Release(1) // posting done; the wire drains without the lock
	}
	ev.Wait(p)
	s.node.CPU.Interrupt(p)
	s.migrate(p, conn, wcpu)
	// Send completion => prior RDMA Writes placed; deregister and release.
	if staging != nil {
		s.mgr.Put(p, staging)
	}
	if longChk != nil {
		s.mgr.Put(p, longChk)
	}
}

// pushBulk RDMA-Writes n bytes from src into the peer segments, returning
// the segments annotated with actual lengths plus the residual byte count
// that did not fit in the peer's advertised capacity (0 on a full push).
// Writes are unsignaled except implicitly through the following send
// (Write-then-Send ordering).
func (s *ServerTransport) pushBulk(p *des.Proc, conn *serverConn, src *ibsim.Buffer, n int, dst []Segment) ([]Segment, int) {
	var out []Segment
	off := 0
	for _, seg := range dst {
		if n <= 0 {
			break
		}
		l := int(seg.Length)
		if l > n {
			l = n
		}
		s.BulkWrites++
		if tr := s.node.Sim().Tracer(); tr != nil {
			tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindBulkWrite, s.node.Name(), "bulk-write", uint64(seg.Rkey), int64(l))
		}
		conn.post(&ibsim.SendWQE{
			WRID: 0, Op: ibsim.OpWrite,
			Local:     []ibsim.LocalSeg{{Buf: src, Off: off, Len: l}},
			RemoteKey: seg.Rkey, RemoteAddr: seg.Addr,
		})
		out = append(out, Segment{Rkey: seg.Rkey, Length: uint32(l), Addr: seg.Addr})
		off += l
		n -= l
	}
	return out, n
}

// replyReadRead sends a Read-Read design reply: expose the reply data (and
// long replies) as read chunks, park the buffers, and wait for RDMA_DONE to
// release them.
func (s *ServerTransport) replyReadRead(p *des.Proc, task *serverTask, call *Header, reply []byte, bulkOut *oncrpc.Bulk, staging *memreg.Chunk, wcpu int) {
	rh := &Header{XID: call.XID, Credits: s.advertiseCredits(task.conn), Type: MsgRDMA}
	conn := task.conn
	var park []*memreg.Chunk

	outLen := 0
	if bulkOut != nil {
		outLen = bulkOut.Len
	}
	// Reserve the reply-buffer slot BEFORE the serialized send path: a
	// blocked reservation (pool exhausted by unacknowledged replies) must
	// park only this worker, never the whole send path.
	willPark := outLen > 0 || len(reply) > s.cfg.InlineThreshold && len(reply) > s.cfg.recvBufSize()
	if len(reply) > s.cfg.InlineThreshold {
		willPark = true
	}
	if willPark {
		if task.conn.replySlots != nil {
			task.conn.replySlots.Acquire(p, 1)
		} else {
			s.replySlots.Acquire(p, 1)
		}
	}
	if s.serial != nil {
		s.serial.Acquire(p, 1)
		p.Sleep(s.cfg.serialHold(outLen))
	}

	if bulkOut != nil && bulkOut.Len > 0 && staging != nil {
		s.mgr.RegisterChunk(p, staging, bulkOut.Len) // exposes the buffer (RemoteRead)
		pos := uint32(len(reply))
		for _, seg := range clampSegs(staging.Reg.Segments(), bulkOut.Len) {
			rh.ReadList = append(rh.ReadList, ReadSeg{Position: pos, Segment: Segment{Rkey: seg.Rkey, Length: uint32(seg.Len), Addr: seg.Addr}})
		}
		park = append(park, staging)
		staging = nil
	}

	if len(reply) > s.cfg.InlineThreshold && len(reply) <= s.cfg.recvBufSize() {
		// Oversized-but-deliverable reply: the posted receives carry
		// headroom beyond the threshold, so send it inline.
	} else if len(reply) > s.cfg.InlineThreshold {
		// Long reply: expose the whole message for the client to read.
		s.LongReplies++
		longChk := s.mgr.Get(p, len(reply), ibsim.AccessLocalWrite|ibsim.AccessRemoteRead)
		if d := longChk.Data(); d != nil {
			copy(d, reply)
		}
		s.node.CPU.Copy(p, len(reply))
		rh.Type = MsgNoMsg
		rh.ReadList = rh.ReadList[:0] // a NOMSG reply carries only itself
		for _, seg := range clampSegs(longChk.Reg.Segments(), len(reply)) {
			rh.ReadList = append(rh.ReadList, ReadSeg{Position: 0, Segment: Segment{Rkey: seg.Rkey, Length: uint32(seg.Len), Addr: seg.Addr}})
		}
		park = append(park, longChk)
		reply = nil
	}

	if staging != nil {
		s.mgr.Put(p, staging) // no payload produced; release unregistered
	}

	switch {
	case len(park) > 0 && task.conn.dead:
		// The connection died while this reply was being built: no DONE can
		// ever release it, so free the buffers and the slot immediately
		// instead of parking (the leak this lifecycle state machine closes).
		for _, c := range park {
			s.mgr.Put(p, c)
		}
		if task.conn.replySlots != nil {
			task.conn.replySlots.Release(1)
		} else {
			s.replySlots.Release(1)
		}
	case len(park) > 0:
		// The reply-buffer pool bounds how many replies can sit waiting for
		// DONE (slot reserved above). With the original design's single
		// shared pool, a client that never sends DONE pins slots until the
		// server stops serving anyone (§4.1); with dynamic credits the pool
		// — and the grant — are per connection, so a misbehaving client
		// wedges only itself.
		task.conn.parked++
		task.conn.parkedOrder = append(task.conn.parkedOrder, call.XID)
		s.parked[connXID{task.conn, call.XID}] = &parkedReply{chunks: park}
		if tr := s.node.Sim().Tracer(); tr != nil {
			tr.Begin(int64(p.Now()), trace.LayerRPC, trace.KindParked, s.node.Name(), "parked",
				task.conn.traceKey(call.XID), int64(len(park)))
		}
	case willPark:
		// Reserved but nothing ended up parked (e.g. squeezed inline).
		if task.conn.replySlots != nil {
			task.conn.replySlots.Release(1)
		} else {
			s.replySlots.Release(1)
		}
	}

	wire := append(rh.Encode(), reply...)
	ev := des.NewEvent(s.node.Sim())
	postWithEvent(conn, &ibsim.SendWQE{WRID: uint64(call.XID), Op: ibsim.OpSend, Payload: wire}, ev)
	if s.serial != nil {
		s.serial.Release(1)
	}
	ev.Wait(p)
	s.node.CPU.Interrupt(p)
	s.migrate(p, conn, wcpu)
}

// replyReplyFetch delivers a reply-fetch (RFP) design reply: bulk is
// RDMA-Written into the client's write list exactly as in Read-Write, then
// the whole reply message is deposited into the client's advertised reply
// slot with two more RDMA Writes — the encoded reply at slot+8, then the
// doorbell word (wireLen+1) at slot+0. In-order Write delivery means the
// doorbell's arrival implies everything before it is placed, so NO Send is
// posted and the worker never blocks on a completion interrupt: the entire
// send-processing + interrupt cost of the reply path disappears from the
// server. The deposit staging stays parked until the client's RDMA_DONE
// confirms it read the slot (same recycle flow as Read-Read).
func (s *ServerTransport) replyReplyFetch(p *des.Proc, task *serverTask, call *Header, reply []byte, bulkOut *oncrpc.Bulk, staging *memreg.Chunk) {
	rh := &Header{XID: call.XID, Credits: s.advertiseCredits(task.conn), Type: MsgRDMA}
	conn := task.conn
	if len(call.ReplyChunk) == 0 {
		// No slot advertised: an RFP reply is undeliverable.
		if staging != nil {
			s.mgr.Put(p, staging)
		}
		return
	}
	slot := call.ReplyChunk[0]

	outLen := 0
	if bulkOut != nil {
		outLen = bulkOut.Len
	}
	// Every RFP reply parks its deposit staging, so reserve the slot up
	// front, before the serialized send path (same discipline as Read-Read).
	if conn.replySlots != nil {
		conn.replySlots.Acquire(p, 1)
	} else {
		s.replySlots.Acquire(p, 1)
	}
	// A retransmission answered from the DRC can deposit again while the
	// first deposit still sits parked (the client never fetched it, so no
	// DONE came). Retire the stale park first — one DONE will arrive for
	// this XID at most, and it must release the fresh deposit, not leak it.
	s.releaseParked(p, connXID{conn, call.XID})
	if s.serial != nil {
		s.serial.Acquire(p, 1)
		p.Sleep(s.cfg.serialHold(outLen))
	}

	var park []*memreg.Chunk
	if bulkOut != nil && bulkOut.Len > 0 && len(call.WriteList) > 0 {
		if staging != nil {
			s.mgr.RegisterChunk(p, staging, bulkOut.Len)
		}
		pushed, residual := s.pushBulk(p, conn, staging.Buf, bulkOut.Len, call.WriteList)
		if residual > 0 {
			s.ShortWrites++
			s.traceShortWrite(p, task, call.XID, residual)
		}
		rh.WriteList = pushed
		park = append(park, staging)
		staging = nil
	}
	if staging != nil {
		s.mgr.Put(p, staging) // no payload produced; release unregistered
	}

	wire := append(rh.Encode(), reply...)
	if len(wire)+doorbellBytes > int(slot.Length) {
		// The reply outgrew the client's slot; it cannot be delivered. The
		// client's watchdog will time out and the retransmission hits the
		// DRC — same terminal behaviour as an undeliverable long reply.
		s.ShortWrites++
		s.traceShortWrite(p, task, call.XID, len(wire)+doorbellBytes-int(slot.Length))
		for _, c := range park {
			s.mgr.Put(p, c)
		}
		if conn.replySlots != nil {
			conn.replySlots.Release(1)
		} else {
			s.replySlots.Release(1)
		}
		if s.serial != nil {
			s.serial.Release(1)
		}
		return
	}

	// Stage the deposit: [doorbell word | wire bytes] in one local-only
	// chunk (staging is always materialized, so the bytes really cross).
	depChk := s.mgr.Get(p, doorbellBytes+len(wire), ibsim.AccessLocalWrite)
	if d := depChk.Data(); d != nil {
		binary.LittleEndian.PutUint64(d[:doorbellBytes], uint64(len(wire))+1)
		copy(d[doorbellBytes:], wire)
	}
	s.node.CPU.Copy(p, len(wire))
	s.Deposits++
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindBulkWrite, s.node.Name(), "deposit",
			conn.traceKey(call.XID), int64(len(wire)))
	}
	// Body first, doorbell last: the QP launches these in order and the
	// port serializes their data, so the doorbell can only land after the
	// reply (and any bulk pushed above) is already in client memory.
	conn.post(&ibsim.SendWQE{
		WRID: uint64(call.XID), Op: ibsim.OpWrite,
		Local:     []ibsim.LocalSeg{{Buf: depChk.Buf, Off: doorbellBytes, Len: len(wire)}},
		RemoteKey: slot.Rkey, RemoteAddr: slot.Addr + doorbellBytes,
	})
	conn.post(&ibsim.SendWQE{
		WRID: uint64(call.XID), Op: ibsim.OpWrite,
		Local:     []ibsim.LocalSeg{{Buf: depChk.Buf, Off: 0, Len: doorbellBytes}},
		RemoteKey: slot.Rkey, RemoteAddr: slot.Addr,
	})
	if s.serial != nil {
		s.serial.Release(1)
	}
	park = append(park, depChk)

	if conn.dead {
		// Died while the reply was being built: no DONE can ever release
		// the park, so free everything now.
		for _, c := range park {
			s.mgr.Put(p, c)
		}
		if conn.replySlots != nil {
			conn.replySlots.Release(1)
		} else {
			s.replySlots.Release(1)
		}
		return
	}
	conn.parked++
	conn.parkedOrder = append(conn.parkedOrder, call.XID)
	s.parked[connXID{conn, call.XID}] = &parkedReply{chunks: park}
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.Begin(int64(p.Now()), trace.LayerRPC, trace.KindParked, s.node.Name(), "parked",
			conn.traceKey(call.XID), int64(len(park)))
	}
}

// advertiseCredits computes the flow-control grant carried in reply
// headers: the static depth, or — under dynamic credits — the depth minus
// the reply buffers THIS connection still has pinned awaiting RDMA_DONE,
// so a client that hoards buffers throttles only itself.
// Under multiplexing the grant is additionally capped by the connection's
// sub-account of its shard's pooled receives: SRQDepth split across the
// shard's endpoints (never below 1). That sub-accounting is what lets the
// SRQ stay at a fixed depth while client count grows — aggregate in-flight
// traffic per shard stays bounded by the pool, with no per-client rings.
func (s *ServerTransport) advertiseCredits(conn *serverConn) uint32 {
	free := s.cfg.Credits
	if s.cfg.DynamicCredits {
		free = s.cfg.Credits - conn.parked
		if free < 1 {
			free = 1
		}
	}
	if s.cfg.Multiplex && conn.shard != nil && conn.stream != 0 {
		share := 1
		if conn.shard.nconns > 0 {
			share = s.cfg.SRQDepth / conn.shard.nconns
		}
		if share < 1 {
			share = 1
		}
		if free > share {
			free = share
		}
	}
	return uint32(free)
}

// traceShortWrite records a reply truncation instant.
func (s *ServerTransport) traceShortWrite(p *des.Proc, task *serverTask, xid uint32, residual int) {
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindShortWrite, s.node.Name(), "short-write",
			task.conn.traceKey(xid), int64(residual))
	}
}

// releaseParked frees the buffers of one acknowledged reply, reporting
// whether anything was parked under the key.
func (s *ServerTransport) releaseParked(p *des.Proc, key connXID) bool {
	pr, ok := s.parked[key]
	if !ok {
		return false
	}
	delete(s.parked, key)
	if tr := s.node.Sim().Tracer(); tr != nil {
		tr.End(int64(p.Now()), trace.LayerRPC, trace.KindParked, s.node.Name(), "parked",
			key.conn.traceKey(key.xid), 0)
	}
	for _, c := range pr.chunks {
		s.mgr.Put(p, c)
	}
	key.conn.pruneParkedOrder(key.xid)
	key.conn.parked--
	if key.conn.replySlots != nil {
		key.conn.replySlots.Release(1)
	} else {
		s.replySlots.Release(1)
	}
	return true
}

// postWithEvent posts a WQE toward conn's client; its completion fires ev.
func postWithEvent(conn *serverConn, w *ibsim.SendWQE, ev *des.Event) {
	w.Signaled = false
	w.Done = ev
	conn.post(w)
}

// RecvStateBytes models the server's receive-side control memory: what a
// driver would pin to be able to accept traffic from the current client
// population. Dedicated connections each cost a QP context plus a private
// receive ring (Credits buffers); sharded dispatch replaces the rings with
// each shard's SRQ (counted at its allocated high-water) but still pays one
// QP context per connection; multiplexing collapses even that to one shared
// QP context plus a slot entry per endpoint — O(shards), not O(connections).
// PerConnRecvBytes is what one dedicated (non-multiplexed, non-sharded)
// connection pins on the server: a QP context plus a private receive ring of
// Credits buffers. Capacity tables use it as the O(connections) yardstick
// that RecvStateBytes is measured against.
func PerConnRecvBytes(cfg Config) int64 {
	if cfg.Credits <= 0 {
		cfg.Credits = 32 // defaults() mirror; Config may be pre-resolution
	}
	return ibsim.QPContextBytes + int64(cfg.Credits*cfg.recvBufSize())
}

func (s *ServerTransport) RecvStateBytes() int64 {
	var n int64
	if len(s.shards) > 0 {
		for _, sh := range s.shards {
			n += sh.srq.CommittedBytes()
			if sh.muxQP != nil {
				n += sh.muxQP.RecvStateBytes()
			}
		}
		if !s.cfg.Multiplex {
			n += int64(s.liveConns) * ibsim.QPContextBytes
		}
		return n
	}
	n = int64(s.liveConns) * (ibsim.QPContextBytes + int64(s.cfg.Credits*s.cfg.recvBufSize()))
	return n
}
