package rpcrdma

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
	"repro/internal/trace"
)

// Config tunes an RPC/RDMA endpoint (client or server side).
type Config struct {
	Design Design

	// InlineThreshold is the largest message sent inline with RDMA Send;
	// larger messages use long calls / long replies.
	InlineThreshold int

	// Credits bounds in-flight RPCs per connection: the client posts this
	// many receives and never exceeds it with outstanding calls.
	Credits int

	// MaxBulk is the largest single bulk payload (rtmax/wtmax analogue).
	MaxBulk int

	// PerOpCPU is protocol processing cost charged per call at this
	// endpoint.
	PerOpCPU des.Duration

	// Workers is the server worker-thread count (server side only).
	Workers int

	// ReplyBufPool bounds parked reply buffers awaiting RDMA_DONE in the
	// Read-Read design (server side only). A malicious client that
	// withholds DONE messages pins this pool — the §4.1 vulnerability.
	ReplyBufPool int

	// SerialBase and SerialPerByteNs model a serialized RPC/RDMA code path
	// (the OpenSolaris taskq of Figure 1): every call holds a single lock
	// for SerialBase plus SerialPerByteNs nanoseconds per bulk byte while
	// marshalling chunks and registering buffers. Zero values disable the
	// stage (the Linux profile's independent svc threads).
	SerialBase      des.Duration
	SerialPerByteNs float64

	// SerializeSyncRead, when set, holds the serial stage across the
	// synchronous RDMA Read wait on the server's receive path — the §4.1
	// "synchronous RDMA Read limitation" at its worst.
	SerializeSyncRead bool

	// DynamicCredits enables the credit flow-control scheme of the paper's
	// future-work section: the server advertises its live capacity in every
	// reply and the client throttles to the latest grant (see credits.go).
	DynamicCredits bool

	// CallTimeout arms a per-call timer (client side only): a call whose
	// reply has not arrived within the deadline is retransmitted with the
	// same XID, and the deadline doubles on each attempt (exponential
	// backoff, as the kernel RPC layer's timeo/retrans do). Zero disables
	// timeouts entirely — calls wait forever, the pre-recovery behaviour.
	CallTimeout des.Duration

	// RetryLimit bounds XID-stable retransmissions after the first send.
	// Once exhausted the call fails with ErrTimeout and the connection is
	// left for the recovery layer to replace. Zero means no retransmits
	// (first timeout is fatal) when CallTimeout is set.
	RetryLimit int

	// Shards enables sharded dispatch (server side only): connections hash
	// across this many shards, each owning a completion-polling loop, a
	// shared receive queue, and Workers/Shards worker threads. Zero keeps
	// the legacy one-receive-loop-per-connection path.
	Shards int

	// MaxConns caps live connections at the server (admission control);
	// connections beyond it are rejected with ErrAdmission. Zero means
	// unlimited.
	MaxConns int

	// SRQDepth and SRQLimit size each shard's shared receive queue: depth
	// bounds pooled receive WQEs, limit is the low watermark that wakes the
	// refill loop. Both take scale-appropriate defaults when Shards > 0.
	SRQDepth int
	SRQLimit int

	// Multiplex shares one server-side queue pair per dispatch shard across
	// every client on it (DCT-style): clients attach lightweight endpoints
	// demultiplexed by stream id, so per-client receive state collapses from
	// a full QP context to a slot-table entry and server connection cost is
	// O(shards), not O(connections). Server side it changes admission
	// (TryAttach instead of TryServe) and sub-divides each reply's credit
	// grant by the shard's endpoint count, keeping the fixed-depth SRQ
	// sufficient at any client count. Client side it makes the transport
	// honor those shrinking grants. Implies Shards (default 8).
	Multiplex bool

	// FetchPollDelay is the reply-fetch doorbell poll granularity (client
	// side, ReplyFetch design only): the gap between the server's deposit
	// landing in the reply slot and the client's poll loop observing it.
	// Defaults to 1µs.
	FetchPollDelay des.Duration

	// Affinity pins each dispatch shard's reply processing to the CPU that
	// services its completions (the shard's completion-vector CPU), so a
	// worker wakes warm-cache on the core where the interrupt ran. Without
	// it workers spread round-robin across cores and every completion
	// handoff that crosses CPUs pays the node's MigrationCost — the
	// completion-to-CPU affinity effect of the xprtrdma receive path.
	// Server side, sharded dispatch only.
	Affinity bool

	// TrustStreamClaims disables the server's authenticated-source check on
	// multiplexed receives. By default a message whose claimed stream
	// (SendWQE.Stream, attacker-controlled) differs from the fabric-stamped
	// source endpoint (CQE.SrcStream) is dropped and the real sender
	// penalized; with this set the server believes the claim — the
	// pre-hardening behaviour the adversary experiments measure. Server
	// side, multiplexed mode only.
	TrustStreamClaims bool

	// TrustCredDRC keys the duplicate request cache by the call's AUTH_SYS
	// machine-name credential (forgeable by any client) instead of the
	// transport-authenticated peer node name. Pre-hardening behaviour, kept
	// for the adversary's DRC-forgery measurements. Server side only.
	TrustCredDRC bool

	// QuarantineThreshold terminates a connection once its misbehavior
	// score (rejected DONEs, spoofed stream claims) reaches this value. On
	// a shared mux QP the termination is endpoint-scoped — only the
	// offender dies. Zero disables quarantine. Server side only.
	QuarantineThreshold int
}

// hasSerial reports whether the serialized-path model is enabled.
func (c *Config) hasSerial() bool {
	return c.SerialBase > 0 || c.SerialPerByteNs > 0 || c.SerializeSyncRead
}

// serialHold returns the serial-stage occupancy for a call moving n bulk
// bytes.
func (c *Config) serialHold(n int) des.Duration {
	return c.SerialBase + des.Duration(float64(n)*c.SerialPerByteNs)
}

func (c *Config) defaults() {
	if c.InlineThreshold <= 0 {
		c.InlineThreshold = 1024
	}
	if c.Credits <= 0 {
		c.Credits = 32
	}
	if c.MaxBulk <= 0 {
		c.MaxBulk = 1 << 20
	}
	if c.Workers <= 0 {
		c.Workers = 8
	}
	if c.ReplyBufPool <= 0 {
		c.ReplyBufPool = c.Credits
	}
	if c.FetchPollDelay <= 0 {
		c.FetchPollDelay = time.Microsecond
	}
	if c.Multiplex && c.Shards <= 0 {
		c.Shards = 8
	}
	if c.Shards > 0 {
		if c.SRQDepth <= 0 {
			c.SRQDepth = 4096
		}
		if c.SRQLimit <= 0 {
			c.SRQLimit = c.SRQDepth / 8
		}
	}
}

// recvBufSize is the posted receive capacity: inline threshold plus header
// room.
func (c *Config) recvBufSize() int { return c.InlineThreshold + 512 }

type rtResult struct {
	body    []byte
	bulkLen int
	err     error
}

type pending struct {
	req  *oncrpc.Request
	done *des.Event

	// aborted is set once Roundtrip has returned: a reply handler still in
	// flight must not fire the (already consumed) done event. handling
	// counts reply handlers currently working on this call; while it is
	// non-zero Roundtrip defers teardown to the last handler, so an RDMA
	// Read in flight never lands in a released staging buffer.
	aborted  bool
	handling int

	// Destination for reply payload placement.
	destBuf  *ibsim.Buffer
	destOff  int
	destReg  *memreg.Registration // external registration (direct I/O)
	destChk  *memreg.Chunk        // arena staging (buffered path)
	needCopy bool                 // staging -> caller copy after placement

	// Source registration for call payload.
	srcReg *memreg.Registration
	srcChk *memreg.Chunk

	// Long call / long reply staging.
	longCall *memreg.Chunk
	replyChk *memreg.Chunk

	// Reply-fetch slot (ReplyFetch design): a remotely writable chunk the
	// server deposits the whole reply into, plus the doorbell watch the
	// fetch poller blocks on.
	slotChk    *memreg.Chunk
	fetchWatch *ibsim.WriteWatch
}

// doorbellBytes is the reply-fetch doorbell word size: the first 8 bytes of
// every reply slot. The server writes wireLen+1 there (nonzero even for an
// empty reply) after the reply body, in a separate RDMA Write whose
// in-order delivery makes the doorbell's arrival imply the body is placed.
const doorbellBytes = 8

// ClientTransport is the client endpoint of one RPC/RDMA connection. It
// implements oncrpc.Transport and is safe for use by many simulated client
// threads concurrently (the multi-threaded IOzone workloads share one
// mount's transport, as in the paper).
type ClientTransport struct {
	node     *ibsim.Node
	qp       *ibsim.QP
	mgr      *memreg.Manager
	cfg      Config
	inflight *creditGate
	serial   *des.Resource // serialized send path (nil when disabled)
	pending  map[uint32]*pending
	closed   bool

	// DropDone simulates the malicious/malfunctioning client of §4.1 that
	// never sends RDMA_DONE, pinning server reply buffers.
	DropDone bool

	// Stats.
	Calls       int64
	DoneSent    int64
	BulkReads   int64
	Timeouts    int64 // per-call timer expiries
	Retransmits int64 // XID-stable retransmissions sent
}

// QP exposes the underlying queue pair (tests and failure injection).
func (t *ClientTransport) QP() *ibsim.QP { return t.qp }

// Config returns the transport's effective configuration (after defaults).
func (t *ClientTransport) Config() Config { return t.cfg }

// Design returns the chunking design the transport runs.
func (t *ClientTransport) Design() Design { return t.cfg.Design }

// Broken reports whether the connection has failed (QP in error state).
func (t *ClientTransport) Broken() bool { return t.closed || t.qp.Err() != nil }

// GrantedCredits returns the client's current flow-control grant.
func (t *ClientTransport) GrantedCredits() int { return t.inflight.Granted() }

// OutstandingCalls returns the in-flight call count.
func (t *ClientTransport) OutstandingCalls() int { return t.inflight.Outstanding() }

var _ oncrpc.Transport = (*ClientTransport)(nil)

// NewClientTransport builds the client endpoint over an established QP.
// It posts the connection's receive credits and starts the reply receiver.
func NewClientTransport(p *des.Proc, qp *ibsim.QP, mgr *memreg.Manager, cfg Config) *ClientTransport {
	cfg.defaults()
	t := &ClientTransport{
		node:     qp.Node(),
		qp:       qp,
		mgr:      mgr,
		cfg:      cfg,
		inflight: newCreditGate(qp.Node().Sim(), cfg.Credits),
		pending:  make(map[uint32]*pending),
	}
	if cfg.hasSerial() {
		t.serial = des.NewResource(qp.Node().Sim(), qp.Node().Name()+"/rpcrdma-serial", 1)
	}
	for i := 0; i < cfg.Credits; i++ {
		qp.PostRecv(uint64(i), cfg.recvBufSize())
	}
	qp.Node().Sim().Spawn(qp.Node().Name()+"/rpcrdma-recv", t.receiver)
	return t
}

// Close shuts the transport down.
func (t *ClientTransport) Close() {
	t.closed = true
	t.qp.Close()
}

// bulkBuffer resolves the simulator buffer backing a Bulk, when the caller
// provided one (the direct-I/O and core staging paths).
func bulkBuffer(b *oncrpc.Bulk) (*ibsim.Buffer, int) {
	if b == nil {
		return nil, 0
	}
	if buf, ok := b.Handle.(*ibsim.Buffer); ok {
		return buf, b.Off
	}
	return nil, 0
}

// Roundtrip implements oncrpc.Transport: one full RPC exchange under the
// configured design.
func (t *ClientTransport) Roundtrip(p *des.Proc, req *oncrpc.Request) (*oncrpc.Response, error) {
	if t.closed {
		return nil, ErrClosed
	}
	if err := t.qp.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTransport, err)
	}
	t.Calls++
	tr := t.node.Sim().Tracer()
	rtStart := p.Now()
	t.node.CPU.Work(p, t.cfg.PerOpCPU)
	creditStart := p.Now()
	t.inflight.acquire(p)
	if tr != nil && p.Now() > creditStart {
		tr.Span(int64(creditStart), int64(p.Now()), trace.LayerRPC, trace.KindCreditWait, t.node.Name(), "credit-wait", uint64(req.XID), int64(t.inflight.Granted()))
	}
	defer t.inflight.release()

	pend := &pending{req: req, done: des.NewEvent(t.node.Sim())}
	hdr := &Header{XID: req.XID, Credits: uint32(t.cfg.Credits), Type: MsgRDMA}

	// The client send path — chunk marshalling, registrations, posting —
	// runs under the transport's serialized section when modelled.
	if t.serial != nil {
		t.serial.Acquire(p, 1)
		bulkBytes := 0
		if req.SendBulk != nil {
			bulkBytes += req.SendBulk.Len
		}
		if req.RecvBulk != nil {
			bulkBytes += req.RecvBulk.Len
		}
		p.Sleep(t.cfg.serialHold(bulkBytes))
	}

	// Call payload (e.g. WRITE data): advertised as a read chunk list for
	// the server to pull, in both designs.
	if req.SendBulk != nil && req.SendBulk.Len > 0 {
		buf, off := bulkBuffer(req.SendBulk)
		var segs []memreg.Segment
		if buf != nil {
			pend.srcReg = t.mgr.RegisterExternal(p, buf, off, req.SendBulk.Len, ibsim.AccessRemoteRead)
			segs = pend.srcReg.Segments()
		} else {
			pend.srcChk = t.mgr.Get(p, req.SendBulk.Len, ibsim.AccessRemoteRead)
			if d := pend.srcChk.Data(); d != nil && req.SendBulk.Data != nil {
				copy(d, req.SendBulk.Data[:req.SendBulk.Len])
			}
			t.node.CPU.Copy(p, req.SendBulk.Len)
			segs = clampSegs(pend.srcChk.Reg.Segments(), req.SendBulk.Len)
		}
		t.traceExpose(p, req.XID, segs)
		pos := uint32(len(req.Header))
		for _, s := range segs {
			hdr.ReadList = append(hdr.ReadList, ReadSeg{Position: pos, Segment: Segment{Rkey: s.Rkey, Length: uint32(s.Len), Addr: s.Addr}})
		}
	}

	// Reply payload placement (e.g. READ data).
	if req.RecvBulk != nil && req.RecvBulk.Len > 0 {
		t.setupRecvPlacement(p, pend, req, hdr)
	}

	// Long reply staging (Read-Write design): the client must advertise a
	// reply chunk big enough for the whole reply message.
	if req.LongReplyCap > 0 && t.cfg.Design == ReadWrite {
		capBytes := req.LongReplyCap + 256
		pend.replyChk = t.mgr.Get(p, capBytes, ibsim.AccessLocalWrite|ibsim.AccessRemoteWrite)
		hdr.ReplyChunk = clampSegsWire(pend.replyChk.Reg.Segments(), capBytes)
		t.traceExposeWire(p, req.XID, hdr.ReplyChunk)
	}

	// Reply slot (ReplyFetch design): every call pre-registers a remotely
	// writable slot — doorbell word plus reply capacity — and advertises it
	// as the reply chunk. The whole reply (header, inline body, long
	// replies included) is deposited there, so the slot subsumes the
	// Read-Write long-reply chunk. This per-call MR is RFP's structural
	// exposure: it is the *client* that opens its memory, which is exactly
	// what the expose instants below let the invariant checkers price.
	if t.cfg.Design == ReplyFetch {
		capBytes := doorbellBytes + t.cfg.recvBufSize()
		if req.LongReplyCap > 0 && req.LongReplyCap+256 > t.cfg.recvBufSize() {
			capBytes = doorbellBytes + req.LongReplyCap + 256
		}
		pend.slotChk = t.mgr.Get(p, capBytes, ibsim.AccessLocalWrite|ibsim.AccessRemoteWrite)
		hdr.ReplyChunk = clampSegsWire(pend.slotChk.Reg.Segments(), capBytes)
		t.traceExposeWire(p, req.XID, hdr.ReplyChunk)
		t.armFetch(pend, hdr.ReplyChunk[0])
	}

	// Long call: an oversized call travels as a position-0 read chunk under
	// RDMA_NOMSG; the server pulls the message body with RDMA Read.
	inline := req.Header
	if len(req.Header) > t.cfg.InlineThreshold {
		pend.longCall = t.mgr.Get(p, len(req.Header), ibsim.AccessRemoteRead)
		if d := pend.longCall.Data(); d != nil {
			copy(d, req.Header)
		} else {
			panic("rpcrdma: long-call staging must be materialized")
		}
		t.node.CPU.Copy(p, len(req.Header))
		hdr.Type = MsgNoMsg
		lsegs := clampSegs(pend.longCall.Reg.Segments(), len(req.Header))
		t.traceExpose(p, req.XID, lsegs)
		for _, s := range lsegs {
			hdr.ReadList = append(hdr.ReadList, ReadSeg{Position: 0, Segment: Segment{Rkey: s.Rkey, Length: uint32(s.Len), Addr: s.Addr}})
		}
		inline = nil
	}

	t.pending[req.XID] = pend
	wire := append(hdr.Encode(), inline...)
	p.Logf("rpcrdma call xid=%#x type=%v inline=%dB readsegs=%d writesegs=%d",
		req.XID, hdr.Type, len(inline), len(hdr.ReadList), len(hdr.WriteList))
	attempt := 0
	t.armTimer(pend.done, t.attemptTimeout(attempt))
	t.qp.PostSend(&ibsim.SendWQE{WRID: uint64(req.XID), Op: ibsim.OpSend, Payload: wire})
	if t.serial != nil {
		t.serial.Release(1)
	}

	// Wait for the reply, retransmitting on timer expiry. Registrations and
	// wire bytes are built once above: a retransmission reuses them verbatim
	// (same XID, same chunk advertisements), which is what lets the server's
	// DRC recognise the duplicate. Each attempt gets a fresh done event; a
	// reply racing the timer fires whichever event is current (TryFire), so
	// a late reply to an earlier attempt still completes the call.
	var res *rtResult
	for {
		res = pend.done.Wait(p).(*rtResult)
		if res.err == nil || !errors.Is(res.err, ErrTimeout) {
			break
		}
		t.Timeouts++
		if tr != nil {
			tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindTimeout, t.node.Name(), "timeout", uint64(req.XID), int64(attempt))
		}
		if attempt >= t.cfg.RetryLimit || t.Broken() {
			break
		}
		attempt++
		t.Retransmits++
		if tr != nil {
			tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindRetransmit, t.node.Name(), "retransmit", uint64(req.XID), int64(attempt))
		}
		pend.done = des.NewEvent(t.node.Sim())
		if t.cfg.Design == ReplyFetch && pend.slotChk != nil {
			// Re-arm the reply slot: zero the doorbell so the retransmitted
			// call (same slot advertisement, same XID) gets a fresh deposit
			// signal. The registration is reused verbatim — the wire bytes
			// must be identical for the server's DRC to recognise the
			// duplicate.
			if d := pend.slotChk.Data(); d != nil {
				for i := 0; i < doorbellBytes; i++ {
					d[i] = 0
				}
			}
		}
		t.armTimer(pend.done, t.attemptTimeout(attempt))
		t.qp.PostSend(&ibsim.SendWQE{WRID: uint64(req.XID), Op: ibsim.OpSend, Payload: wire})
	}
	if res.err != nil && errors.Is(res.err, ErrTimeout) && attempt >= t.cfg.RetryLimit {
		// Every retransmission timed out: surface the typed terminal error
		// rather than a bare timeout, which would read as "retry later".
		res.err = fmt.Errorf("%w: %w (%d attempts)", ErrRetriesExhausted, res.err, attempt+1)
	}
	delete(t.pending, req.XID)
	pend.aborted = true
	p.Logf("rpcrdma done xid=%#x bulk=%dB err=%v", req.XID, res.bulkLen, res.err)
	endRPC := func() {
		if tr == nil {
			return
		}
		var errFlag int64
		if res.err != nil {
			errFlag = 1
		}
		tr.Span(int64(rtStart), int64(p.Now()), trace.LayerRPC, trace.KindRPC, t.node.Name(), "rpc", uint64(req.XID), errFlag)
	}
	if pend.handling > 0 {
		// A reply handler is still pulling chunks for this call; it owns
		// the buffer release now (see handleReply) so its in-flight RDMA
		// Reads cannot land in recycled staging. The staging copy still
		// happens here, while the chunk is guaranteed alive.
		t.stagingCopy(p, pend, res)
		endRPC()
		if res.err != nil {
			return nil, res.err
		}
		return &oncrpc.Response{Header: res.body, BulkLen: res.bulkLen}, nil
	}
	t.teardown(p, pend, res)
	endRPC()
	if res.err != nil {
		return nil, res.err
	}
	return &oncrpc.Response{Header: res.body, BulkLen: res.bulkLen}, nil
}

// traceExpose records, one instant per segment, that the call advertised a
// remotely accessible rkey to the peer. The instants are what the
// MR-exposure invariant (trace.CheckExposureBounds) anchors on.
func (t *ClientTransport) traceExpose(p *des.Proc, xid uint32, segs []memreg.Segment) {
	tr := t.node.Sim().Tracer()
	if tr == nil {
		return
	}
	for _, s := range segs {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindExpose, t.node.Name(), "expose", uint64(xid), int64(s.Rkey))
	}
}

// traceExposeWire is traceExpose over wire-format segments.
func (t *ClientTransport) traceExposeWire(p *des.Proc, xid uint32, segs []Segment) {
	tr := t.node.Sim().Tracer()
	if tr == nil {
		return
	}
	for _, s := range segs {
		tr.Instant(int64(p.Now()), trace.LayerRPC, trace.KindExpose, t.node.Name(), "expose", uint64(xid), int64(s.Rkey))
	}
}

// attemptTimeout returns the deadline for the given attempt: CallTimeout
// doubled per retransmission (exponential backoff), zero when disabled.
func (t *ClientTransport) attemptTimeout(attempt int) des.Duration {
	if t.cfg.CallTimeout <= 0 {
		return 0
	}
	if attempt > 16 {
		attempt = 16 // clamp the shift; deadlines beyond this are academic
	}
	return t.cfg.CallTimeout << attempt
}

// armTimer spawns a watchdog that fires done with ErrTimeout at the
// deadline. Losing the race to a real reply makes it a harmless no-op, so
// stale timers from completed attempts never need cancelling.
func (t *ClientTransport) armTimer(done *des.Event, d des.Duration) {
	if d <= 0 {
		return
	}
	t.node.Sim().Spawn(t.node.Name()+"/rpcrdma-timer", func(tp *des.Proc) {
		tp.Sleep(d)
		done.TryFire(&rtResult{err: fmt.Errorf("%w after %v", ErrTimeout, d)})
	})
}

// setupRecvPlacement prepares the reply-payload destination per design.
func (t *ClientTransport) setupRecvPlacement(p *des.Proc, pend *pending, req *oncrpc.Request, hdr *Header) {
	n := req.RecvBulk.Len
	buf, off := bulkBuffer(req.RecvBulk)
	switch t.cfg.Design {
	case ReadWrite, ReplyFetch:
		// ReplyFetch keeps the Read-Write bulk path: data still lands by
		// server RDMA Write into the advertised write list; only the reply
		// *message* moves to the slot-deposit flow.
		if buf != nil && req.DirectIO {
			// Zero-copy direct I/O: expose the caller's buffer for the
			// server's RDMA Write; data lands in place.
			pend.destBuf, pend.destOff = buf, off
			pend.destReg = t.mgr.RegisterExternal(p, buf, off, n, ibsim.AccessLocalWrite|ibsim.AccessRemoteWrite)
			hdr.WriteList = clampSegsWire(pend.destReg.Segments(), n)
			t.traceExposeWire(p, req.XID, hdr.WriteList)
		} else {
			// Buffered path: server writes into transport staging; one copy
			// to the caller afterwards.
			pend.destChk = t.mgr.Get(p, n, ibsim.AccessLocalWrite|ibsim.AccessRemoteWrite)
			pend.destBuf, pend.destOff = pend.destChk.Buf, 0
			pend.needCopy = true
			hdr.WriteList = clampSegsWire(pend.destChk.Reg.Segments(), n)
			t.traceExposeWire(p, req.XID, hdr.WriteList)
		}
	case ReadRead:
		// Nothing is advertised: the server will expose chunks in its reply
		// and this client pulls them into local staging, then copies out —
		// the Read-Read design has no zero-copy path (§5.1).
		pend.destChk = t.mgr.Get(p, n, ibsim.AccessLocalWrite)
		pend.destBuf, pend.destOff = pend.destChk.Buf, 0
		pend.needCopy = true
	}
}

// armFetch spawns the reply-fetch poller for one call: it waits for the
// server's deposit to land in the slot (write-watch on the doorbell word),
// models the poll-loop detection delay, then decodes the deposited reply
// and completes the call exactly as a received Send would. One poller spans
// every retransmission attempt — the slot advertisement never changes.
func (t *ClientTransport) armFetch(pend *pending, slot Segment) {
	watch := t.node.HCA.WatchWrite(slot.Rkey, slot.Addr, doorbellBytes)
	pend.fetchWatch = watch
	t.node.Sim().Spawn(t.node.Name()+"/rpcrdma-fetch", func(fp *des.Proc) {
		for {
			if !watch.Wait(fp) || pend.aborted || t.closed {
				return
			}
			d := pend.slotChk.Data()
			if d == nil {
				return
			}
			// Read the doorbell at the delivery instant: a retransmission
			// racing this wakeup may zero it again, but the reply body
			// behind it is never reset, so the captured length stays valid.
			word := int(binary.LittleEndian.Uint64(d[:doorbellBytes]))
			if word == 0 {
				// The reset won the race; watch for the next deposit (the
				// retransmitted call will be answered from the server DRC).
				watch = t.node.HCA.WatchWrite(slot.Rkey, slot.Addr, doorbellBytes)
				pend.fetchWatch = watch
				continue
			}
			wireLen := word - 1
			if wireLen < 0 || doorbellBytes+wireLen > len(d) {
				return // corrupt deposit; the watchdog will retransmit
			}
			wire := append([]byte(nil), d[doorbellBytes:doorbellBytes+wireLen]...)
			// The poll loop notices the doorbell one granularity later and
			// copies the reply out of the slot on the client CPU — the fetch
			// cost RFP shifts from server to client.
			fp.Sleep(t.cfg.FetchPollDelay)
			t.node.CPU.Copy(fp, wireLen)
			if pend.aborted || t.closed {
				return
			}
			hdr, body, err := DecodeHeader(wire)
			if err != nil || hdr.XID != pend.req.XID {
				return // undecodable deposit; the watchdog will retransmit
			}
			if t.cfg.DynamicCredits {
				t.inflight.setGranted(int(hdr.Credits))
			} else if t.cfg.Multiplex {
				g := int(hdr.Credits)
				if g > t.cfg.Credits {
					g = t.cfg.Credits
				}
				t.inflight.setGranted(g)
			}
			t.handleReply(fp, pend, hdr, body)
			return
		}
	})
}

// teardown performs the staging copy and releases per-call registrations.
func (t *ClientTransport) teardown(p *des.Proc, pend *pending, res *rtResult) {
	t.stagingCopy(p, pend, res)
	t.release(p, pend)
}

// stagingCopy moves a buffered reply payload from transport staging to the
// caller's buffer.
func (t *ClientTransport) stagingCopy(p *des.Proc, pend *pending, res *rtResult) {
	if pend.needCopy && res.err == nil && res.bulkLen > 0 && pend.req.RecvBulk != nil {
		// The staging-to-caller copy runs in the client's RPC completion
		// path; under the serialized-stack model it holds the same lock as
		// the send path, which is what keeps the buffered read path well
		// below the direct-I/O one on the Solaris profile.
		if t.serial != nil {
			t.serial.Acquire(p, 1)
		}
		t.node.CPU.Copy(p, res.bulkLen)
		if t.serial != nil {
			t.serial.Release(1)
		}
		if d := pend.destChk.Data(); d != nil && pend.req.RecvBulk.Data != nil {
			copy(pend.req.RecvBulk.Data, d[:min(res.bulkLen, len(d))])
		}
	}
}

// release frees the call's registrations and staging chunks.
func (t *ClientTransport) release(p *des.Proc, pend *pending) {
	if pend.destReg != nil {
		t.mgr.DeregisterExternal(p, pend.destReg)
	}
	if pend.destChk != nil {
		t.mgr.Put(p, pend.destChk)
	}
	if pend.srcReg != nil {
		t.mgr.DeregisterExternal(p, pend.srcReg)
	}
	if pend.srcChk != nil {
		t.mgr.Put(p, pend.srcChk)
	}
	if pend.longCall != nil {
		t.mgr.Put(p, pend.longCall)
	}
	if pend.replyChk != nil {
		t.mgr.Put(p, pend.replyChk)
	}
	if pend.fetchWatch != nil {
		// Wake and retire the fetch poller before the slot goes away.
		pend.fetchWatch.Cancel()
	}
	if pend.slotChk != nil {
		t.mgr.Put(p, pend.slotChk)
	}
}

// receiver is the client-side reply handler: it matches replies to pending
// calls, performs Read-Read chunk pulls plus RDMA_DONE, and reconstructs
// long replies.
func (t *ClientTransport) receiver(p *des.Proc) {
	for {
		cqe := t.qp.RecvCQ.Wait(p)
		if cqe == nil {
			return
		}
		if cqe.Err != nil {
			t.failAll(fmt.Errorf("%w: %v", ErrTransport, cqe.Err))
			return
		}
		t.qp.PostRecv(cqe.WRID, t.cfg.recvBufSize())
		hdr, body, err := DecodeHeader(cqe.Payload)
		if err != nil {
			continue // drop undecodable frames
		}
		if t.cfg.DynamicCredits {
			t.inflight.setGranted(int(hdr.Credits))
		} else if t.cfg.Multiplex {
			// The grant is this endpoint's sub-account of the shard's pooled
			// receives and shrinks as clients join the shard. Clamp to the
			// receives actually posted here: a grant can also grow back when
			// clients leave, but never past this connection's ring.
			g := int(hdr.Credits)
			if g > t.cfg.Credits {
				g = t.cfg.Credits
			}
			t.inflight.setGranted(g)
		}
		pend, ok := t.pending[hdr.XID]
		if !ok {
			continue // duplicate or cancelled
		}
		// Handle each reply on its own process so one reply's RDMA Reads
		// (Read-Read design) do not serialize the others — though they all
		// still contend for the connection's ORD slots, which is exactly
		// the bottleneck the paper describes.
		h, b := hdr, body
		t.node.Sim().Spawn(t.node.Name()+"/reply", func(rp *des.Proc) {
			t.handleReply(rp, pend, h, b)
		})
	}
}

func (t *ClientTransport) handleReply(p *des.Proc, pend *pending, hdr *Header, body []byte) {
	if pend.aborted {
		return // caller gave up; staging buffers already released
	}
	pend.handling++
	res := &rtResult{}
	switch hdr.Type {
	case MsgRDMA:
		res.body = body
		switch t.cfg.Design {
		case ReadWrite:
			for _, s := range hdr.WriteList {
				res.bulkLen += int(s.Length)
			}
		case ReplyFetch:
			for _, s := range hdr.WriteList {
				res.bulkLen += int(s.Length)
			}
			// The deposit is consumed; recycle the server's parked staging.
			t.sendDone(hdr.XID)
		case ReadRead:
			res.bulkLen, res.err = t.pullChunks(p, pend, hdr)
		}
	case MsgNoMsg:
		switch t.cfg.Design {
		case ReadWrite:
			// The long reply was RDMA-Written into our advertised reply
			// chunk before this message was sent; Write-then-Send ordering
			// makes it visible now.
			if pend.replyChk == nil || len(hdr.ReplyChunk) == 0 {
				res.err = fmt.Errorf("%w: unexpected long reply", ErrBadHeader)
				break
			}
			n := 0
			for _, s := range hdr.ReplyChunk {
				n += int(s.Length)
			}
			d := pend.replyChk.Data()
			if n > len(d) {
				res.err = fmt.Errorf("%w: long reply overruns chunk", ErrBadHeader)
				break
			}
			res.body = append([]byte(nil), d[:n]...)
		case ReadRead:
			// Pull the whole reply message from the server's exposed
			// buffer, then release it with RDMA_DONE.
			res.body, res.err = t.pullLongReply(p, hdr)
		}
	default:
		res.err = fmt.Errorf("%w: reply type %v", ErrBadHeader, hdr.Type)
	}
	pend.handling--
	if pend.aborted {
		if pend.handling == 0 {
			// Roundtrip returned while we were in flight and deferred the
			// buffer release to us (the staging copy, if any, already ran).
			t.release(p, pend)
		}
		return
	}
	// TryFire: a retransmission timer may have consumed this attempt's
	// event already; if Roundtrip re-armed, pend.done is the live attempt
	// and this (valid, XID-matched) reply completes it.
	pend.done.TryFire(res)
}

// pullChunks performs the Read-Read data pull: RDMA Read each advertised
// chunk into the staging destination, then send RDMA_DONE.
func (t *ClientTransport) pullChunks(p *des.Proc, pend *pending, hdr *Header) (int, error) {
	total := 0
	dstOff := pend.destOff
	for _, seg := range hdr.ReadList {
		if seg.Position == 0 {
			continue
		}
		n := int(seg.Length)
		if pend.destBuf == nil || dstOff+n > pend.destBuf.Size {
			return total, fmt.Errorf("%w: chunk overruns destination", ErrBadHeader)
		}
		t.BulkReads++
		brStart := p.Now()
		cqe := t.qp.PostAndWait(p, &ibsim.SendWQE{
			WRID: uint64(hdr.XID), Op: ibsim.OpRead,
			Local:     []ibsim.LocalSeg{{Buf: pend.destBuf, Off: dstOff, Len: n}},
			RemoteKey: seg.Rkey, RemoteAddr: seg.Addr,
		})
		if tr := t.node.Sim().Tracer(); tr != nil {
			tr.Span(int64(brStart), int64(p.Now()), trace.LayerRPC, trace.KindBulkRead, t.node.Name(), "bulk-read", uint64(hdr.XID), int64(n))
		}
		if pend.aborted {
			return total, fmt.Errorf("%w: call abandoned mid-pull", ErrClosed)
		}
		if cqe.Err != nil {
			return total, fmt.Errorf("%w: chunk read: %v", ErrTransport, cqe.Err)
		}
		dstOff += n
		total += n
	}
	t.sendDone(hdr.XID)
	return total, nil
}

// pullLongReply fetches a Read-Read long reply (position-0 chunks).
func (t *ClientTransport) pullLongReply(p *des.Proc, hdr *Header) ([]byte, error) {
	n := 0
	for _, seg := range hdr.ReadList {
		if seg.Position == 0 {
			n += int(seg.Length)
		}
	}
	if n == 0 {
		return nil, fmt.Errorf("%w: empty long reply", ErrBadHeader)
	}
	staging := t.mgr.Get(p, n, ibsim.AccessLocalWrite)
	defer t.mgr.Put(p, staging)
	off := 0
	for _, seg := range hdr.ReadList {
		if seg.Position != 0 {
			continue
		}
		t.BulkReads++
		brStart := p.Now()
		cqe := t.qp.PostAndWait(p, &ibsim.SendWQE{
			WRID: uint64(hdr.XID), Op: ibsim.OpRead,
			Local:     []ibsim.LocalSeg{{Buf: staging.Buf, Off: off, Len: int(seg.Length)}},
			RemoteKey: seg.Rkey, RemoteAddr: seg.Addr,
		})
		if tr := t.node.Sim().Tracer(); tr != nil {
			tr.Span(int64(brStart), int64(p.Now()), trace.LayerRPC, trace.KindBulkRead, t.node.Name(), "long-reply-read", uint64(hdr.XID), int64(seg.Length))
		}
		if cqe.Err != nil {
			return nil, fmt.Errorf("%w: long reply read: %v", ErrTransport, cqe.Err)
		}
		off += int(seg.Length)
	}
	t.sendDone(hdr.XID)
	return append([]byte(nil), staging.Data()[:n]...), nil
}

// sendDone emits RDMA_DONE unless the transport is configured to misbehave.
func (t *ClientTransport) sendDone(xid uint32) {
	if t.DropDone {
		return
	}
	t.DoneSent++
	if tr := t.node.Sim().Tracer(); tr != nil {
		tr.Instant(int64(t.node.Sim().Now()), trace.LayerRPC, trace.KindDone, t.node.Name(), "done-sent", uint64(xid), 0)
	}
	done := &Header{XID: xid, Credits: uint32(t.cfg.Credits), Type: MsgDone}
	t.qp.PostSend(&ibsim.SendWQE{WRID: uint64(xid), Op: ibsim.OpSend, Payload: done.Encode()})
}

// failAll completes every pending call with err. Calls fail in ascending
// XID order so the resulting wakeups are deterministic (map iteration order
// would leak into the event schedule otherwise).
func (t *ClientTransport) failAll(err error) {
	xids := make([]uint32, 0, len(t.pending))
	for xid := range t.pending {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })
	for _, xid := range xids {
		pend := t.pending[xid]
		delete(t.pending, xid)
		pend.done.TryFire(&rtResult{err: err})
	}
}

// clampSegs truncates registration segments to cover exactly n bytes.
func clampSegs(segs []memreg.Segment, n int) []memreg.Segment {
	var out []memreg.Segment
	for _, s := range segs {
		if n <= 0 {
			break
		}
		if s.Len > n {
			s.Len = n
		}
		out = append(out, s)
		n -= s.Len
	}
	return out
}

// clampSegsWire is clampSegs producing wire segments.
func clampSegsWire(segs []memreg.Segment, n int) []Segment {
	var out []Segment
	for _, s := range clampSegs(segs, n) {
		out = append(out, Segment{Rkey: s.Rkey, Length: uint32(s.Len), Addr: s.Addr})
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
