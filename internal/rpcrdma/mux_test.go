package rpcrdma

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/ibsim"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

// dialMux attaches client i as a multiplexed endpoint: the server spends a
// slot entry, the client builds a normal transport over its endpoint QP,
// sized to the initial credit grant.
func (e *scaleEnv) dialMux(p *des.Proc, i int, cfg Config) (*ClientTransport, *oncrpc.Client, bool) {
	ep, grant, ok := e.st.TryAttach(e.clients[i])
	if !ok {
		return nil, nil, false
	}
	ccfg := cfg
	ccfg.Credits = grant
	ccfg.Shards, ccfg.Workers = 0, 0
	cmgr := memreg.NewManager(p, e.clients[i], memreg.Config{})
	ct := NewClientTransport(p, ep, cmgr, ccfg)
	return ct, oncrpc.NewClient(ct, 4242, 1, oncrpc.Auth{}), true
}

// TestMuxTransportRoundtrips runs PUT and GET bulk traffic from four
// multiplexed clients over two shared QPs (one per shard), in both designs:
// data integrity end to end, every endpoint demultiplexed correctly, and the
// server's receive state independent of client count.
func TestMuxTransportRoundtrips(t *testing.T) {
	testBothDesigns(t, func(t *testing.T, design Design) {
		sim := des.New()
		e := newScaleEnv(sim, 4)
		cfg := Config{Design: design, Multiplex: true, Shards: 2, Workers: 4, SRQDepth: 64}
		var recvAt1, recvAt4 int64
		sim.Spawn("setup", func(p *des.Proc) {
			e.startServer(p, cfg)
			payload := pattern(64<<10, 7)
			_, rpc0, ok := e.dialMux(p, 0, cfg)
			if !ok {
				t.Error("first mux dial rejected")
				return
			}
			recvAt1 = e.st.RecvStateBytes()
			if _, _, err := rpc0.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: &oncrpc.Bulk{Data: payload, Len: len(payload)}}); err != nil {
				t.Errorf("put: %v", err)
				return
			}
			for i := 1; i < 4; i++ {
				i := i
				_, rpc, ok := e.dialMux(p, i, cfg)
				if !ok {
					t.Errorf("mux dial %d rejected", i)
					return
				}
				sim.Spawn("client", func(cp *des.Proc) {
					for j := 0; j < 3; j++ {
						dst := &oncrpc.Bulk{Data: make([]byte, 64<<10), Len: 64 << 10}
						_, n, err := rpc.Call(cp, 2, nil, oncrpc.CallOpts{RecvBulk: dst})
						if err != nil || n != 64<<10 {
							t.Errorf("client %d get %d: n=%d err=%v", i, j, n, err)
							return
						}
						if !bytes.Equal(dst.Data, payload) {
							t.Errorf("client %d get %d corrupted", i, j)
							return
						}
					}
				})
			}
			recvAt4 = e.st.RecvStateBytes()
		})
		sim.Run()
		// Three extra clients cost three slot entries, not three QP contexts
		// and rings.
		if recvAt4 != recvAt1+3*ibsim.EndpointSlotBytes {
			t.Fatalf("recv state grew %d->%d across 3 attaches, want +%d (slot entries only)",
				recvAt1, recvAt4, 3*ibsim.EndpointSlotBytes)
		}
		var eps int
		for _, st := range e.st.ShardStats() {
			if st.Conns == 0 {
				t.Fatalf("shard %d got no connections (hash skew)", st.Shard)
			}
			eps += st.Endpoints
		}
		if eps != 4 {
			t.Fatalf("live endpoints across shards = %d, want 4", eps)
		}
	})
}

// TestMuxCreditSubAccounting checks that the per-endpoint grant is the
// shard's SRQ depth divided by its endpoint count: as clients pile on, each
// one's advertised window shrinks so aggregate in-flight stays bounded by
// the fixed pool.
func TestMuxCreditSubAccounting(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 8)
	cfg := Config{Design: ReadWrite, Multiplex: true, Credits: 8, Shards: 1, Workers: 4, SRQDepth: 16}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		e.svc.stored = pattern(4<<10, 5)
		var cts []*ClientTransport
		var rpcs []*oncrpc.Client
		for i := 0; i < 8; i++ {
			ct, rpc, ok := e.dialMux(p, i, cfg)
			if !ok {
				t.Fatalf("dial %d rejected", i)
			}
			cts = append(cts, ct)
			rpcs = append(rpcs, rpc)
		}
		// The first client attached alone: its initial grant was the full
		// credit depth (16/1 clamped to 8).
		if got := cts[0].GrantedCredits(); got != 8 {
			t.Fatalf("initial grant = %d, want 8", got)
		}
		// After one reply with all 8 endpoints on the shard, the grant is the
		// sub-account: 16/8 = 2.
		dst := &oncrpc.Bulk{Data: make([]byte, 4<<10), Len: 4 << 10}
		if _, _, err := rpcs[0].Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
			t.Fatalf("call: %v", err)
		}
		if got := cts[0].GrantedCredits(); got != 2 {
			t.Fatalf("grant with 8 endpoints = %d, want 16/8 = 2", got)
		}
	})
	sim.Run()
}

// TestMuxEndpointChurnNoLeak is the endpoint-detach leak test: clients
// attach, work, and close, over and over; every piece of per-client server
// state — live conns, demux entries, slot table — must return to baseline,
// with closed endpoints' slots recycled rather than accreted.
func TestMuxEndpointChurnNoLeak(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 1)
	cfg := Config{Design: ReadWrite, Multiplex: true, Shards: 1, Workers: 2, SRQDepth: 64}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		e.svc.stored = pattern(8<<10, 9)
		for i := 0; i < 10; i++ {
			ct, rpc, ok := e.dialMux(p, 0, cfg)
			if !ok {
				t.Fatalf("dial %d rejected", i)
			}
			dst := &oncrpc.Bulk{Data: make([]byte, 8<<10), Len: 8 << 10}
			if _, n, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil || n != 8<<10 {
				t.Fatalf("cycle %d call: n=%d err=%v", i, n, err)
			}
			ct.Close()
			p.Sleep(time.Millisecond) // detach CQE -> connDead
			if e.st.LiveConns() != 0 {
				t.Fatalf("cycle %d: live conns = %d after close, want 0", i, e.st.LiveConns())
			}
		}
		st := e.st.ShardStats()[0]
		if st.Endpoints != 0 {
			t.Fatalf("endpoints = %d after churn, want 0", st.Endpoints)
		}
		if len(e.st.shards[0].eps) != 0 {
			t.Fatalf("demux table holds %d entries after churn, want 0", len(e.st.shards[0].eps))
		}
		if st.MuxSlots != 1 {
			t.Fatalf("slot table = %d after 10 attach/close cycles, want 1 (leak)", st.MuxSlots)
		}
	})
	sim.Run()
}

// TestMuxSharedQPDeathScopedToShard kills one shard's shared QP under a
// four-client population spread over two shards: only that shard's clients
// die, the other shard keeps serving, and the wounded shard re-arms a fresh
// shared QP that accepts redials.
func TestMuxSharedQPDeathScopedToShard(t *testing.T) {
	sim := des.New()
	e := newScaleEnv(sim, 6)
	cfg := Config{Design: ReadWrite, Multiplex: true, Shards: 2, Workers: 4, SRQDepth: 64}
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		e.svc.stored = pattern(8<<10, 4)
		var cts []*ClientTransport
		var rpcs []*oncrpc.Client
		for i := 0; i < 4; i++ {
			ct, rpc, ok := e.dialMux(p, i, cfg)
			if !ok {
				t.Fatalf("dial %d rejected", i)
			}
			cts = append(cts, ct)
			rpcs = append(rpcs, rpc)
		}
		// connSeq is 1-based: clients 0,2 landed on shard 0 (seq 2,4);
		// clients 1,3 on shard 1 (seq 1,3... seq%2). Verify via conn shards.
		shardOf := func(i int) int {
			return e.st.conns[i].shard.id
		}
		victim := e.st.shards[0]
		victim.muxQP.InjectError(nil)
		p.Sleep(time.Millisecond)
		for i := range cts {
			if shardOf(i) == 0 {
				if !cts[i].Broken() {
					t.Fatalf("client %d on the dead shard survived", i)
				}
			} else {
				if cts[i].Broken() {
					t.Fatalf("client %d on the healthy shard died", i)
				}
				dst := &oncrpc.Bulk{Data: make([]byte, 8<<10), Len: 8 << 10}
				if _, n, err := rpcs[i].Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil || n != 8<<10 {
					t.Fatalf("survivor %d call: n=%d err=%v", i, n, err)
				}
			}
		}
		if victim.muxQP.Err() != nil {
			t.Fatal("shard did not re-arm a fresh shared QP")
		}
		// Redial until a client lands on the re-armed shard and verify it
		// round-trips.
		for i := 4; i < 6; i++ {
			_, rpc, ok := e.dialMux(p, i, cfg)
			if !ok {
				t.Fatalf("redial %d rejected", i)
			}
			dst := &oncrpc.Bulk{Data: make([]byte, 8<<10), Len: 8 << 10}
			if _, n, err := rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil || n != 8<<10 {
				t.Fatalf("redial %d call: n=%d err=%v", i, n, err)
			}
		}
		if e.st.shards[0].nconns == 0 {
			t.Fatal("no redial reached the re-armed shard")
		}
	})
	sim.Run()
}

// TestMuxAffinityMigrations pins the completion-to-CPU affinity model: with
// workers spread across cores, completions handled on the shard's CPU wake
// workers elsewhere and pay MigrationCost; with affinity on, every handoff
// is a warm-cache local wake and the run finishes no later.
func TestMuxAffinityMigrations(t *testing.T) {
	run := func(affinity bool) (migrations, localWakes int64, end des.Time) {
		sim := des.New()
		fab := ibsim.NewFabric(sim, false)
		server := fab.AddNode(ibsim.NodeConfig{Name: "server", Cores: 4, MigrationCost: 2 * time.Microsecond, Seed: 22})
		svc := &blobService{stored: pattern(16<<10, 3)}
		cfg := Config{Design: ReadWrite, Multiplex: true, Shards: 2, Workers: 8, SRQDepth: 64, Affinity: affinity}
		var st *ServerTransport
		sim.Spawn("setup", func(p *des.Proc) {
			smgr := memreg.NewManager(p, server, memreg.Config{})
			disp := oncrpc.NewDispatcher()
			disp.Register(svc)
			st = NewServerTransport(p, server, smgr, disp, cfg)
			for i := 0; i < 4; i++ {
				cn := fab.AddNode(ibsim.NodeConfig{Name: "client", Cores: 2, Seed: uint64(100 + i)})
				ep, grant, ok := st.TryAttach(cn)
				if !ok {
					t.Errorf("dial %d rejected", i)
					return
				}
				ccfg := cfg
				ccfg.Credits, ccfg.Shards, ccfg.Workers = grant, 0, 0
				cmgr := memreg.NewManager(p, cn, memreg.Config{})
				rpc := oncrpc.NewClient(NewClientTransport(p, ep, cmgr, ccfg), 4242, 1, oncrpc.Auth{})
				sim.Spawn("client", func(cp *des.Proc) {
					for j := 0; j < 8; j++ {
						dst := &oncrpc.Bulk{Data: make([]byte, 16<<10), Len: 16 << 10}
						if _, _, err := rpc.Call(cp, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
							t.Errorf("call: %v", err)
							return
						}
					}
				})
			}
		})
		sim.Run()
		return server.CPU.Migrations(), server.CPU.LocalWakes(), sim.Now()
	}
	mSpread, _, endSpread := run(false)
	mPinned, lPinned, endPinned := run(true)
	if mSpread == 0 {
		t.Fatal("spread workers charged no migrations")
	}
	if mPinned != 0 {
		t.Fatalf("affinity-pinned workers charged %d migrations, want 0", mPinned)
	}
	if lPinned == 0 {
		t.Fatal("affinity-pinned workers counted no local wakes")
	}
	if endPinned > endSpread {
		t.Fatalf("affinity run finished at %v, later than spread %v", endPinned, endSpread)
	}
}

// TestMuxDemuxZeroAlloc pins the per-completion demultiplex path — stream id
// to connection — at zero allocations: it runs once per arriving message on
// the shard receive loop.
func TestMuxDemuxZeroAlloc(t *testing.T) {
	res := testing.Benchmark(BenchmarkMuxDemux)
	if a := res.AllocsPerOp(); a != 0 {
		t.Fatalf("demux allocates %d objects/op, want 0", a)
	}
}

func BenchmarkMuxDemux(b *testing.B) {
	sim := des.New()
	e := newScaleEnv(sim, 64)
	cfg := Config{Design: ReadWrite, Multiplex: true, Shards: 1, Workers: 2, SRQDepth: 256}
	var streams []uint32
	sim.Spawn("setup", func(p *des.Proc) {
		e.startServer(p, cfg)
		for i := 0; i < 64; i++ {
			ep, _, ok := e.st.TryAttach(e.clients[i])
			if !ok {
				b.Error("attach rejected")
				return
			}
			streams = append(streams, ep.Stream())
		}
	})
	sim.Run()
	sh := e.st.shards[0]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conn := sh.eps[streams[i%len(streams)]]
		if conn == nil || conn.dead {
			b.Fatal("demux failed to resolve a live endpoint")
		}
	}
}
