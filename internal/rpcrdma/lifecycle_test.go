package rpcrdma

import (
	"testing"
	"time"

	"repro/internal/des"
	"repro/internal/memreg"
	"repro/internal/oncrpc"
)

// When a connection dies, every reply parked for it awaiting RDMA_DONE must
// be released — in park order, idempotently — leaving the reply pool whole.
func TestConnDeathReleasesParkedReplies(t *testing.T) {
	newEnv(t, ReadRead, memreg.Regular, func(p *des.Proc, e *env) {
		e.ct.DropDone = true // withhold DONE: replies stay parked
		payload := pattern(32<<10, 9)
		if _, _, err := e.rpc.Call(p, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)}); err != nil {
			t.Fatalf("put: %v", err)
		}
		for i := 0; i < 3; i++ {
			dst := &oncrpc.Bulk{Data: make([]byte, 32<<10), Len: 32 << 10}
			if _, _, err := e.rpc.Call(p, 2, nil, oncrpc.CallOpts{RecvBulk: dst}); err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
		}
		if got := e.st.ParkedReplies(); got != 3 {
			t.Fatalf("ParkedReplies = %d before death, want 3", got)
		}
		e.ct.QP().InjectError(nil)
		p.Sleep(time.Millisecond) // let conn-recv observe and tear down
		if got := e.st.ParkedReplies(); got != 0 {
			t.Errorf("ParkedReplies = %d after death, want 0", got)
		}
		if got := e.st.replySlots.InUse(); got != 0 {
			t.Errorf("reply pool slots still held after death: %d", got)
		}
	})
}

// Tasks still sitting in the work queue when their connection dies must be
// dropped, not served: serving them would park replies nothing can release.
func TestConnDeathDropsQueuedTasks(t *testing.T) {
	newEnv(t, ReadWrite, memreg.Regular, func(p *des.Proc, e *env) {
		// 8 concurrent PUTs against 4 workers: 4 execute (blocked on their
		// chunk pulls when the fault hits), 4 wait in the queue.
		payload := pattern(256<<10, 3)
		done := des.NewEvent(e.sim)
		finished := 0
		for i := 0; i < 8; i++ {
			e.sim.Spawn("caller", func(cp *des.Proc) {
				e.rpc.Call(cp, 1, nil, oncrpc.CallOpts{SendBulk: oncrpc.NewBulk(payload)})
				if finished++; finished == 8 {
					done.Fire(nil)
				}
			})
		}
		p.Sleep(100 * time.Microsecond)
		e.ct.QP().InjectError(nil)
		done.Wait(p)
		p.Sleep(time.Millisecond)
		if e.st.TasksDropped == 0 {
			t.Errorf("TasksDropped = 0, want > 0 (queued tasks on a dead connection)")
		}
		if got := e.st.ParkedReplies(); got != 0 {
			t.Errorf("ParkedReplies = %d, want 0", got)
		}
	})
}
