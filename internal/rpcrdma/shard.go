package rpcrdma

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
)

// serverShard is one dispatch shard of a scaled-out server transport. Each
// shard owns a shared receive CQ, an SRQ feeding every connection assigned
// to it (hash by connection id), a work queue, and a slice of the worker
// pool. Receive-side resources therefore scale with shard count and SRQ
// depth, not with connection count — the per-connection receive rings that
// stop RDMA servers from scaling past tens of connections (RDMAvisor) are
// gone, and completion processing parallelizes across shards instead of
// funnelling through one receive loop per connection.
type serverShard struct {
	srv   *ServerTransport
	id    int
	cq    *ibsim.CQ
	srq   *ibsim.SRQ
	workQ *des.Queue
	conns map[*ibsim.QP]*serverConn

	nextWRID uint64

	// Stats.
	nconns        int   // live connections attached to this shard
	requests      int64 // messages dispatched by this shard's receive loop
	maxQueueDepth int   // high-water mark of the shard work queue
}

func newServerShard(s *ServerTransport, id int) *serverShard {
	node := s.node
	sh := &serverShard{
		srv:   s,
		id:    id,
		cq:    ibsim.NewCQ(node, fmt.Sprintf("%s/shard%d/rcq", node.Name(), id)),
		workQ: des.NewQueue(node.Sim(), fmt.Sprintf("%s/shard%d/workq", node.Name(), id)),
		conns: make(map[*ibsim.QP]*serverConn),
	}
	sh.srq = ibsim.NewSRQ(node, fmt.Sprintf("%s/shard%d/srq", node.Name(), id),
		ibsim.SRQConfig{Depth: s.cfg.SRQDepth, Limit: s.cfg.SRQLimit})
	for sh.srq.PostRecv(sh.nextWRID, s.cfg.recvBufSize()) {
		sh.nextWRID++
	}
	workers := s.cfg.Workers / s.cfg.Shards
	if workers < 1 {
		workers = 1
	}
	node.Sim().Spawn(fmt.Sprintf("%s/shard%d/recv", node.Name(), id), sh.recvLoop)
	node.Sim().Spawn(fmt.Sprintf("%s/shard%d/refill", node.Name(), id), sh.refillLoop)
	for i := 0; i < workers; i++ {
		node.Sim().Spawn(fmt.Sprintf("%s/shard%d/nfsd-%d", node.Name(), id, i), sh.worker)
	}
	return sh
}

// attach assigns a connection to this shard: the QP's completions land on
// the shard CQ and its receives draw from the shard SRQ.
func (sh *serverShard) attach(conn *serverConn) {
	conn.shard = sh
	conn.qp.SetRecvCQ(sh.cq)
	conn.qp.AttachSRQ(sh.srq)
	sh.conns[conn.qp] = conn
	sh.nconns++
}

// recvLoop is the shard's completion-polling loop: one loop serves every
// connection on the shard, demultiplexing by CQE.QP. A connection error
// kills only that connection; the shard — and every other connection on it
// — keeps running.
func (sh *serverShard) recvLoop(p *des.Proc) {
	s := sh.srv
	for {
		cqe := sh.cq.Wait(p)
		if cqe == nil {
			return
		}
		conn := sh.conns[cqe.QP]
		if cqe.Err != nil {
			if conn != nil {
				s.connDead(p, conn)
			}
			continue
		}
		// Return the consumed WQE to the shared pool straight away; the
		// refill loop is only a safety net for bursts that outrun this.
		sh.srq.PostRecv(cqe.WRID, s.cfg.recvBufSize())
		if conn == nil || conn.dead {
			continue
		}
		hdr, body, err := DecodeHeader(cqe.Payload)
		if err != nil {
			continue
		}
		if hdr.Type == MsgDone {
			// Served inline: a DONE queued behind data calls can deadlock
			// the reply-slot pool (see handleDone).
			s.handleDone(p, conn, hdr.XID)
			continue
		}
		sh.requests++
		if d := sh.workQ.Len(); d > sh.maxQueueDepth {
			sh.maxQueueDepth = d
		}
		sh.workQ.Put(&serverTask{conn: conn, hdr: hdr, body: body})
	}
}

// refillLoop tops the SRQ back up whenever the low-watermark limit event
// fires — the IB SRQ_LIMIT asynchronous-event pattern.
func (sh *serverShard) refillLoop(p *des.Proc) {
	for {
		sh.srq.ArmLimit().Wait(p)
		for sh.srq.PostRecv(sh.nextWRID, sh.srv.cfg.recvBufSize()) {
			sh.nextWRID++
		}
	}
}

// worker drains the shard work queue through the shared handler.
func (sh *serverShard) worker(p *des.Proc) {
	for {
		v, ok := sh.workQ.Get(p)
		if !ok {
			return
		}
		sh.srv.handle(p, v.(*serverTask))
	}
}

// ShardStat is one shard's externally visible counters.
type ShardStat struct {
	Shard         int
	Conns         int   // live connections currently attached
	Requests      int64 // messages dispatched
	MaxQueueDepth int   // work-queue high-water mark
	SRQPosted     int64
	SRQConsumed   int64
	SRQLimitEvents int64
	SRQStarved    int64 // takes that found the pool empty (RNR stalls)
}

// ShardStats snapshots per-shard counters; empty when dispatch is not
// sharded.
func (s *ServerTransport) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, len(s.shards))
	for _, sh := range s.shards {
		out = append(out, ShardStat{
			Shard:          sh.id,
			Conns:          sh.nconns,
			Requests:       sh.requests,
			MaxQueueDepth:  sh.maxQueueDepth,
			SRQPosted:      sh.srq.Posted,
			SRQConsumed:    sh.srq.Consumed,
			SRQLimitEvents: sh.srq.LimitEvents,
			SRQStarved:     sh.srq.Starved,
		})
	}
	return out
}
