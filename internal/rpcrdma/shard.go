package rpcrdma

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/ibsim"
)

// serverShard is one dispatch shard of a scaled-out server transport. Each
// shard owns a shared receive CQ, an SRQ feeding every connection assigned
// to it (hash by connection id), a work queue, and a slice of the worker
// pool. Receive-side resources therefore scale with shard count and SRQ
// depth, not with connection count — the per-connection receive rings that
// stop RDMA servers from scaling past tens of connections (RDMAvisor) are
// gone, and completion processing parallelizes across shards instead of
// funnelling through one receive loop per connection.
type serverShard struct {
	srv   *ServerTransport
	id    int
	cq    *ibsim.CQ
	srq   *ibsim.SRQ
	workQ *des.Queue
	conns map[*ibsim.QP]*serverConn

	// track is the shard's trace track ("<node>/shard<i>"): serve spans land
	// on per-shard rows so a trace viewer shows dispatch balance directly.
	track string

	// Multiplexed mode: the shard owns one shared QP that every client on it
	// attaches a lightweight endpoint to, and eps demultiplexes arrivals by
	// CQE stream id. muxQP is nil when clients get dedicated QPs.
	muxQP *ibsim.QP
	eps   map[uint32]*serverConn

	// cpuID is the CPU servicing this shard's completion vector; the
	// affinity model charges a migration whenever a worker on another CPU
	// resumes off one of this shard's completions.
	cpuID int

	nextWRID uint64

	// Stats.
	nconns        int   // live connections attached to this shard
	requests      int64 // messages dispatched by this shard's receive loop
	maxQueueDepth int   // high-water mark of the shard work queue
}

func newServerShard(s *ServerTransport, id int) *serverShard {
	node := s.node
	sh := &serverShard{
		srv:   s,
		id:    id,
		cq:    ibsim.NewCQ(node, fmt.Sprintf("%s/shard%d/rcq", node.Name(), id)),
		workQ: des.NewQueue(node.Sim(), fmt.Sprintf("%s/shard%d/workq", node.Name(), id)),
		conns: make(map[*ibsim.QP]*serverConn),
		cpuID: node.CPU.PinFor(id),
		track: fmt.Sprintf("%s/shard%d", node.Name(), id),
	}
	sh.srq = ibsim.NewSRQ(node, fmt.Sprintf("%s/shard%d/srq", node.Name(), id),
		ibsim.SRQConfig{Depth: s.cfg.SRQDepth, Limit: s.cfg.SRQLimit})
	for sh.srq.PostRecv(sh.nextWRID, s.cfg.recvBufSize()) {
		sh.nextWRID++
	}
	if s.cfg.Multiplex {
		sh.eps = make(map[uint32]*serverConn)
		sh.armMuxQP()
	}
	workers := s.cfg.Workers / s.cfg.Shards
	if workers < 1 {
		workers = 1
	}
	node.Sim().Spawn(fmt.Sprintf("%s/shard%d/recv", node.Name(), id), sh.recvLoop)
	node.Sim().Spawn(fmt.Sprintf("%s/shard%d/refill", node.Name(), id), sh.refillLoop)
	for i := 0; i < workers; i++ {
		// With affinity on, the shard's workers live on its completion CPU
		// (warm-cache local wakes); off, they spread round-robin over all
		// cores and completions migrate to reach them.
		wcpu := sh.cpuID
		if !s.cfg.Affinity {
			wcpu = node.CPU.PinFor(s.workerSeq)
			s.workerSeq++
		}
		node.Sim().Spawn(fmt.Sprintf("%s/shard%d/nfsd-%d", node.Name(), id, i), func(p *des.Proc) {
			sh.worker(p, wcpu)
		})
	}
	return sh
}

// armMuxQP installs a fresh shared QP on the shard, wired to the shard CQ
// and SRQ. Called at construction and again if the shared QP ever dies while
// the transport is still serving (rearming is what keeps one poisoned QP
// from permanently wedging a shard's whole client population).
func (sh *serverShard) armMuxQP() {
	node := sh.srv.node
	sh.muxQP = node.Fabric().NewMuxQP(node, ibsim.QPConfig{})
	sh.muxQP.SetRecvCQ(sh.cq)
	sh.muxQP.AttachSRQ(sh.srq)
}

// attach assigns a connection to this shard: the QP's completions land on
// the shard CQ and its receives draw from the shard SRQ.
func (sh *serverShard) attach(conn *serverConn) {
	conn.shard = sh
	conn.qp.SetRecvCQ(sh.cq)
	conn.qp.AttachSRQ(sh.srq)
	sh.conns[conn.qp] = conn
	sh.nconns++
}

// recvLoop is the shard's completion-polling loop: one loop serves every
// connection on the shard, demultiplexing by CQE.QP (dedicated connections)
// or CQE.Stream (endpoints on the shared QP). A connection error kills only
// that connection; the shard — and every other connection on it — keeps
// running. Only a shared-QP-scope error (mux CQE with stream 0) takes the
// whole shard's population down, and even then the shard re-arms a fresh
// shared QP so redialing clients can come back.
func (sh *serverShard) recvLoop(p *des.Proc) {
	s := sh.srv
	for {
		cqe := sh.cq.Wait(p)
		if cqe == nil {
			return
		}
		var conn *serverConn
		if cqe.QP != nil && cqe.QP.IsMux() {
			if cqe.QP != sh.muxQP {
				continue // flush stragglers from a replaced shared QP
			}
			if cqe.Err != nil {
				if cqe.Stream == 0 {
					sh.sharedQPDead(p)
					continue
				}
				if c := sh.eps[cqe.Stream]; c != nil {
					s.connDead(p, c)
				}
				continue
			}
			conn = sh.eps[cqe.Stream]
		} else {
			conn = sh.conns[cqe.QP]
			if cqe.Err != nil {
				if conn != nil {
					s.connDead(p, conn)
				}
				continue
			}
		}
		// Return the consumed WQE to the shared pool straight away; the
		// refill loop is only a safety net for bursts that outrun this.
		sh.srq.PostRecv(cqe.WRID, s.cfg.recvBufSize())
		if cqe.SrcStream != 0 && cqe.Stream != cqe.SrcStream && !s.cfg.TrustStreamClaims {
			// The sender's claimed stream differs from the slot the fabric
			// says it actually posted from: a spoofed message trying to
			// speak as another endpoint (forged DONEs, forged calls against
			// the DRC). Drop it and score the *authentic* sender — the
			// claimed endpoint is the victim, not the offender.
			s.SpoofDrops++
			s.penalize(p, sh.eps[cqe.SrcStream])
			continue
		}
		if conn == nil || conn.dead {
			continue
		}
		hdr, body, err := DecodeHeader(cqe.Payload)
		if err != nil {
			continue
		}
		if hdr.Type == MsgDone {
			// Served inline: a DONE queued behind data calls can deadlock
			// the reply-slot pool (see handleDone).
			s.handleDone(p, conn, hdr.XID, cqe.SrcStream)
			continue
		}
		sh.requests++
		if d := sh.workQ.Len(); d > sh.maxQueueDepth {
			sh.maxQueueDepth = d
		}
		sh.workQ.Put(&serverTask{conn: conn, hdr: hdr, body: body})
	}
}

// sharedQPDead handles the shard's shared QP entering the error state:
// every endpoint on it is gone (the QP-scope flush already killed their
// client-side QPs), so tear their connections down in accept order, then —
// unless the transport is closing — arm a replacement shared QP for the
// reconnects that follow.
func (sh *serverShard) sharedQPDead(p *des.Proc) {
	s := sh.srv
	for _, conn := range s.conns {
		if conn.shard == sh && conn.stream != 0 && !conn.dead {
			s.connDead(p, conn)
		}
	}
	if !s.closed && !s.draining {
		sh.armMuxQP()
	}
}

// refillLoop tops the SRQ back up whenever the low-watermark limit event
// fires — the IB SRQ_LIMIT asynchronous-event pattern.
func (sh *serverShard) refillLoop(p *des.Proc) {
	for {
		sh.srq.ArmLimit().Wait(p)
		for sh.srq.PostRecv(sh.nextWRID, sh.srv.cfg.recvBufSize()) {
			sh.nextWRID++
		}
	}
}

// worker drains the shard work queue through the shared handler. wcpu is
// where this worker runs; picking a task enqueued by the shard's completion
// loop is itself a completion handoff, so it pays the affinity toll before
// any protocol work starts.
func (sh *serverShard) worker(p *des.Proc, wcpu int) {
	for {
		v, ok := sh.workQ.Get(p)
		if !ok {
			return
		}
		task := v.(*serverTask)
		sh.srv.migrate(p, task.conn, wcpu)
		sh.srv.handle(p, task, wcpu)
	}
}

// ShardStat is one shard's externally visible counters.
type ShardStat struct {
	Shard          int
	Conns          int   // live connections currently attached
	Requests       int64 // messages dispatched
	MaxQueueDepth  int   // work-queue high-water mark
	SRQPosted      int64
	SRQConsumed    int64
	SRQLimitEvents int64
	SRQStarved     int64 // takes that found the pool empty (RNR stalls)
	Endpoints      int   // live endpoints on the shared QP (multiplexed mode)
	MuxSlots       int   // shared-QP slot-table high water (leak check)
}

// ShardStats snapshots per-shard counters; empty when dispatch is not
// sharded.
func (s *ServerTransport) ShardStats() []ShardStat {
	out := make([]ShardStat, 0, len(s.shards))
	for _, sh := range s.shards {
		st := ShardStat{
			Shard:          sh.id,
			Conns:          sh.nconns,
			Requests:       sh.requests,
			MaxQueueDepth:  sh.maxQueueDepth,
			SRQPosted:      sh.srq.Posted,
			SRQConsumed:    sh.srq.Consumed,
			SRQLimitEvents: sh.srq.LimitEvents,
			SRQStarved:     sh.srq.Starved,
		}
		if sh.muxQP != nil {
			st.Endpoints = sh.muxQP.Endpoints()
			st.MuxSlots = sh.muxQP.SlotTableSize()
		}
		out = append(out, st)
	}
	return out
}
